// Command idxsim runs one cluster simulation of an application workload
// under a chosen runtime configuration and prints the makespan, throughput
// and resource usage:
//
//	idxsim -app circuit -nodes 512 -dcr -idx -tracing
//	idxsim -app soleil-full -nodes 32 -dcr -idx -checks=false
//	idxsim -app stencil -metrics 127.0.0.1:8080   # live /metrics + summary
//	idxsim -app stencil -heartbeat 2e-4 -outage 3:5:6   # detector suspect/rejoin
//	idxsim -app circuit -speculate 0.9 -straggler-every 40   # straggler rescue
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/apps/soleil"
	"indexlaunch/internal/apps/stencil"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/sim"
)

func main() {
	app := flag.String("app", "circuit", "workload: circuit | stencil | soleil-fluid | soleil-full")
	nodes := flag.Int("nodes", 64, "cluster size")
	iters := flag.Int("iters", 20, "timesteps")
	dcr := flag.Bool("dcr", true, "dynamic control replication")
	idx := flag.Bool("idx", true, "index launches")
	tracing := flag.Bool("tracing", true, "runtime tracing")
	checks := flag.Bool("checks", true, "dynamic projection-functor checks")
	weak := flag.Bool("weak", true, "weak scaling (fixed per-node problem); false = strong")
	overdecompose := flag.Int("overdecompose", 1, "tasks per node (circuit)")
	breakdown := flag.Bool("breakdown", false, "print per-launch processor-time breakdown")
	profile := flag.String("profile", "", "write a pipeline profile of the run as Chrome trace JSON (view with idxprof)")
	metricsAddr := flag.String("metrics", "", "serve live /metrics, /metrics.json and /statusz on this address during the run and print a metrics summary after it")
	heartbeat := flag.Float64("heartbeat", 0, "self-healing heartbeat period in simulated seconds (0 = detector off)")
	outage := flag.String("outage", "", "silence one node's heartbeats for a window of detector rounds, as node:from:rounds (requires -heartbeat)")
	speculate := flag.Float64("speculate", 0, "straggler-speculation latency quantile (0 = off)")
	stragglerEvery := flag.Int64("straggler-every", 0, "make every Nth point task a straggler (0 = none)")
	stragglerFactor := flag.Float64("straggler-factor", 10, "straggler slowdown factor")
	flag.Parse()

	var prog sim.Program
	var describe func(res sim.Result)
	switch *app {
	case "circuit":
		wiresPerTask := 2e5 / float64(*overdecompose)
		if !*weak {
			wiresPerTask = 5.1e6 / float64(*nodes**overdecompose)
		}
		prog = circuit.SimProgram(circuit.SimParams{
			Nodes: *nodes, TasksPerNode: *overdecompose, WiresPerTask: wiresPerTask, Iters: *iters,
		})
		total := wiresPerTask * float64(*nodes**overdecompose)
		describe = func(res sim.Result) {
			fmt.Printf("throughput: %.3g wires/s (%.3g per node)\n",
				circuit.WiresPerSecond(total, *iters, res.MakespanSec),
				circuit.WiresPerSecond(total, *iters, res.MakespanSec)/float64(*nodes))
		}
	case "stencil":
		cells := 9e8
		if !*weak {
			cells = 9e8 / float64(*nodes)
		}
		prog = stencil.SimProgram(stencil.SimParams{Nodes: *nodes, CellsPerTask: cells, Iters: *iters})
		total := cells * float64(*nodes)
		describe = func(res sim.Result) {
			fmt.Printf("throughput: %.3g cells/s (%.3g per node)\n",
				stencil.CellsPerSecond(total, *iters, res.MakespanSec),
				stencil.CellsPerSecond(total, *iters, res.MakespanSec)/float64(*nodes))
		}
	case "soleil-fluid", "soleil-full":
		full := *app == "soleil-full"
		prog = soleil.SimProgram(soleil.SimParams{
			Nodes: *nodes, DOM: full, Particles: full, Iters: *iters,
		})
		describe = func(res sim.Result) {
			fmt.Printf("throughput: %.3f iter/s per node\n",
				soleil.IterPerSecondPerNode(*iters, res.MakespanSec))
		}
	default:
		fmt.Fprintf(os.Stderr, "idxsim: unknown app %q\n", *app)
		os.Exit(2)
	}

	cfg := sim.Config{
		Machine: machine.PizDaint(*nodes), Cost: sim.DefaultCosts(),
		DCR: *dcr, IDX: *idx, Tracing: *tracing, DynChecks: *checks,
	}
	cfg.Cost.HeartbeatPeriod = *heartbeat
	cfg.Cost.SpeculationQuantile = *speculate
	cfg.Faults.StragglerEvery = *stragglerEvery
	cfg.Faults.StragglerFactor = *stragglerFactor
	if *outage != "" {
		if *heartbeat == 0 {
			fmt.Fprintln(os.Stderr, "idxsim: -outage requires -heartbeat")
			os.Exit(2)
		}
		var o sim.Outage
		if _, err := fmt.Sscanf(*outage, "%d:%d:%d", &o.Node, &o.FromRound, &o.Rounds); err != nil {
			fmt.Fprintf(os.Stderr, "idxsim: bad -outage %q (want node:from:rounds)\n", *outage)
			os.Exit(2)
		}
		cfg.Faults.Outages = []sim.Outage{o}
	}
	var rec *obs.Recorder
	if *profile != "" {
		rec = obs.NewRecorder("sim", *nodes, 1<<14)
		cfg.Profile = rec
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
		srv, err := metrics.Serve(*metricsAddr, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idxsim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving %s/metrics (watch with: idxprof watch %s)\n", srv.URL(), srv.Addr())
	}
	res, err := sim.Run(cfg, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("config:     %s, tracing=%v, checks=%v, %d nodes\n", cfg.Label(), *tracing, *checks, *nodes)
	fmt.Printf("makespan:   %.6f s for %d iterations (%d launches, %d tasks)\n",
		res.MakespanSec, *iters, res.Launches, res.Tasks)
	describe(res)
	fmt.Printf("runtime cores busy: %.4f s total; processors busy: %.4f s; dynamic checks: %.6f s\n",
		res.RuntimeBusySec, res.GPUBusySec, res.CheckSec)
	if *heartbeat > 0 {
		fmt.Printf("self-healing: %d heartbeat rounds, %d suspects, %d rejoins\n",
			res.HeartbeatRounds, res.Suspects, res.Rejoins)
	}
	if *speculate > 0 {
		fmt.Printf("speculation: %d backups launched, %d won, %d wasted\n",
			res.SpecLaunched, res.SpecWon, res.SpecWasted)
	}
	if rec != nil {
		p := rec.Snapshot()
		if err := p.WriteFile(*profile); err != nil {
			fmt.Fprintf(os.Stderr, "idxsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile: wrote %s (%d events); inspect with: idxprof %s\n",
			*profile, len(p.Events), *profile)
	}
	if reg != nil {
		fmt.Println("metrics (simulated clock):")
		fmt.Print(metrics.RenderDelta(metrics.Snapshot{}, reg.Gather()))
	}
	if *breakdown {
		names := make([]string, 0, len(res.BusyByLaunch))
		for name := range res.BusyByLaunch {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("processor time by launch:")
		for _, name := range names {
			busy := res.BusyByLaunch[name]
			fmt.Printf("  %-24s %10.4f s (%5.1f%%)\n", name, busy, busy/res.GPUBusySec*100)
		}
	}
}
