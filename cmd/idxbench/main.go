// Command idxbench regenerates the paper's evaluation tables and figures
// from the command line:
//
//	idxbench                 # everything (Figures 4–10, Tables 2–3)
//	idxbench -fig 5          # one figure
//	idxbench -table 2        # one table
//	idxbench -iters 30       # longer simulated runs
//	idxbench -max-nodes 128  # cap the node sweep (faster)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"indexlaunch/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (4-10)")
	table := flag.Int("table", 0, "regenerate only this table (2-3)")
	extension := flag.Bool("extension", false, "also run the bulk-tracing extension experiment")
	chart := flag.Bool("chart", false, "render figures as ASCII charts instead of tables")
	iters := flag.Int("iters", 0, "simulated timesteps per data point (0 = default)")
	maxNodes := flag.Int("max-nodes", 0, "cap the node sweep (0 = paper's range)")
	profile := flag.String("profile", "", "with -fig: also profile the figure's DCR+IDX configuration and write a Chrome trace (view with idxprof)")
	flag.Parse()

	render := func(f bench.Figure) string {
		if *chart {
			return f.RenderChart()
		}
		return f.Render()
	}

	opts := bench.Options{Iters: *iters, MaxNodes: *maxNodes}
	figures := bench.Figures()
	tables := bench.Tables()

	switch {
	case *fig != 0:
		gen, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "idxbench: no figure %d (have 4-10)\n", *fig)
			os.Exit(1)
		}
		fmt.Print(render(gen(opts)))
		if *profile != "" {
			p, err := bench.ProfileFigure(*fig, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
				os.Exit(1)
			}
			if err := p.WriteFile(*profile); err != nil {
				fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("profile: wrote %s (%d events, %d nodes); inspect with: idxprof %s\n",
				*profile, len(p.Events), p.Nodes, *profile)
		}
	case *profile != "":
		fmt.Fprintln(os.Stderr, "idxbench: -profile requires -fig")
		os.Exit(2)
	case *table != 0:
		gen, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "idxbench: no table %d (have 2-3)\n", *table)
			os.Exit(1)
		}
		fmt.Print(gen().Render())
	default:
		var figIDs []int
		for id := range figures {
			figIDs = append(figIDs, id)
		}
		sort.Ints(figIDs)
		for _, id := range figIDs {
			fmt.Print(render(figures[id](opts)))
			fmt.Println()
		}
		var tabIDs []int
		for id := range tables {
			tabIDs = append(tabIDs, id)
		}
		sort.Ints(tabIDs)
		for _, id := range tabIDs {
			fmt.Print(tables[id]().Render())
			fmt.Println()
		}
		if *extension {
			fmt.Print(render(bench.FigBulkTracing(opts)))
		}
	}
}
