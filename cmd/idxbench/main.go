// Command idxbench regenerates the paper's evaluation tables and figures
// from the command line:
//
//	idxbench                         # everything (Figures 4–10, Tables 2–3)
//	idxbench -fig 5                  # one figure
//	idxbench -table 2                # one table
//	idxbench -iters 30               # longer simulated runs
//	idxbench -max-nodes 128          # cap the node sweep (faster)
//	idxbench -fig 5 -json out        # also write out/BENCH_fig5.json
//	idxbench -metrics 127.0.0.1:8080 # serve live /metrics while running
//	idxbench -fig 5 -heartbeat 2e-4  # self-healing detector overhead on a sweep
//
// The BENCH_<fig>.json snapshots feed the `idxprof diff` regression gate:
// run the same figure twice and diff the two files to see which series
// points moved beyond a threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"indexlaunch/internal/bench"
	"indexlaunch/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure (4-10)")
	table := flag.Int("table", 0, "regenerate only this table (2-3)")
	extension := flag.Bool("extension", false, "also run the bulk-tracing extension experiment")
	chart := flag.Bool("chart", false, "render figures as ASCII charts instead of tables")
	iters := flag.Int("iters", 0, "simulated timesteps per data point (0 = default)")
	maxNodes := flag.Int("max-nodes", 0, "cap the node sweep (0 = paper's range)")
	profile := flag.String("profile", "", "with -fig: also profile the figure's DCR+IDX configuration and write a Chrome trace (view with idxprof)")
	jsonDir := flag.String("json", "", "write machine-readable BENCH_<fig>.json snapshots into this directory (compare runs with: idxprof diff)")
	metricsAddr := flag.String("metrics", "", "serve live /metrics, /metrics.json and /statusz on this address while figures run (watch with: idxprof watch)")
	heartbeat := flag.Float64("heartbeat", 0, "enable the self-healing failure detector in every simulation at this heartbeat period in simulated seconds (0 = off)")
	speculate := flag.Float64("speculate", 0, "enable straggler speculation in every simulation at this latency quantile (0 = off)")
	flag.Parse()

	render := func(f bench.Figure) string {
		if *chart {
			return f.RenderChart()
		}
		return f.Render()
	}

	opts := bench.Options{Iters: *iters, MaxNodes: *maxNodes, Heartbeat: *heartbeat, Speculate: *speculate}
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		srv, err := metrics.Serve(*metricsAddr, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		opts.Metrics = reg
		fmt.Printf("metrics: serving %s/metrics (watch with: idxprof watch %s)\n", srv.URL(), srv.Addr())
	}
	writeSnap := func(f bench.Figure) {
		if *jsonDir == "" {
			return
		}
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
			os.Exit(1)
		}
		snap := bench.BenchFromFigure(f)
		snap.CreatedUnix = time.Now().Unix()
		path := filepath.Join(*jsonDir, "BENCH_"+snap.Name+".json")
		if err := snap.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench: wrote %s (%d values); compare runs with: idxprof diff\n", path, len(snap.Values))
	}

	figures := bench.Figures()
	tables := bench.Tables()

	switch {
	case *fig != 0:
		gen, ok := figures[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "idxbench: no figure %d (have 4-10)\n", *fig)
			os.Exit(1)
		}
		f := gen(opts)
		fmt.Print(render(f))
		writeSnap(f)
		if *profile != "" {
			p, err := bench.ProfileFigure(*fig, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
				os.Exit(1)
			}
			if err := p.WriteFile(*profile); err != nil {
				fmt.Fprintf(os.Stderr, "idxbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("profile: wrote %s (%d events, %d nodes); inspect with: idxprof %s\n",
				*profile, len(p.Events), p.Nodes, *profile)
		}
	case *profile != "":
		fmt.Fprintln(os.Stderr, "idxbench: -profile requires -fig")
		os.Exit(2)
	case *table != 0:
		gen, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "idxbench: no table %d (have 2-3)\n", *table)
			os.Exit(1)
		}
		fmt.Print(gen().Render())
	default:
		var figIDs []int
		for id := range figures {
			figIDs = append(figIDs, id)
		}
		sort.Ints(figIDs)
		for _, id := range figIDs {
			f := figures[id](opts)
			fmt.Print(render(f))
			writeSnap(f)
			fmt.Println()
		}
		var tabIDs []int
		for id := range tables {
			tabIDs = append(tabIDs, id)
		}
		sort.Ints(tabIDs)
		for _, id := range tabIDs {
			fmt.Print(tables[id]().Render())
			fmt.Println()
		}
		if *extension {
			f := bench.FigBulkTracing(opts)
			fmt.Print(render(f))
			writeSnap(f)
		}
	}
}
