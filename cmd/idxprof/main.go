// Command idxprof analyzes the observability artifacts of idxbench, idxsim
// and idxlang.
//
// Profile mode (the default) reads a profile dumped by a -profile flag (or
// by any program using internal/obs): it prints per-node ASCII timelines,
// per-stage and per-launch aggregation tables, and the critical path
// through the recorded dependence graph. The input is Chrome trace_event
// JSON, so the same file also loads directly in chrome://tracing or
// Perfetto.
//
//	idxprof p.json
//	idxprof -width 120 -steps 20 p.json
//
// Diff mode compares two BENCH_<fig>.json snapshots written by `idxbench
// -json` and flags values that moved in their worse direction beyond a
// threshold — the CI bench-regression gate. The exit status is 1 when a
// regression is found unless -warn is set.
//
//	idxprof diff old/BENCH_fig5.json new/BENCH_fig5.json
//	idxprof diff -threshold 0.10 -warn old.json new.json
//
// Watch mode polls a live /metrics.json endpoint (served by a -metrics
// flag) and prints what changed between polls — a terminal top(1) for the
// runtime pipeline.
//
//	idxprof watch 127.0.0.1:8080
//	idxprof watch -interval 1s -count 10 http://127.0.0.1:8080
//	idxprof watch -heartbeat -speculate 127.0.0.1:8080   # only health_*/spec_* families
//
// Trace mode renders a retained end-to-end job trace (the GET /trace/{id}
// payload of idxserve's tracing layer) as an indented cross-layer timeline:
// one line per span, nested by parent, sched admission through runtime
// stages to transport hops.
//
//	idxprof trace 127.0.0.1:8080 3        # fetch and render job 3's trace
//	idxprof trace http://host:8080/trace/1a2b3c
//	idxprof trace trace.json              # render a saved trace payload
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			runDiff(os.Args[2:])
			return
		case "watch":
			runWatch(os.Args[2:])
			return
		case "trace":
			runTraceRender(os.Args[2:])
			return
		}
	}
	width := flag.Int("width", 80, "timeline width in columns")
	steps := flag.Int("steps", 12, "critical-path chain steps to print")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: idxprof [-width n] [-steps n] profile.json")
		fmt.Fprintln(os.Stderr, "       idxprof diff [-threshold f] [-warn] [-all] old.json new.json")
		fmt.Fprintln(os.Stderr, "       idxprof watch [-interval d] [-count n] host:port")
		fmt.Fprintln(os.Stderr, "       idxprof trace trace.json | <url> | host:port <id>")
		os.Exit(2)
	}
	p, err := obs.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(obs.RenderSummary(p))
	fmt.Println()
	fmt.Print(obs.RenderTimeline(p, *width))
	fmt.Println()
	fmt.Print(obs.CriticalPath(p).Render(p.WallNS, *steps))
}

// runTraceRender renders a retained job trace as a cross-layer timeline.
// The source is a saved JSON payload, a full /trace/{id} URL, or a
// host:port plus trace/job ID pair.
func runTraceRender(args []string) {
	fs := flag.NewFlagSet("idxprof trace", flag.ExitOnError)
	_ = fs.Parse(args)
	var data []byte
	var err error
	switch fs.NArg() {
	case 1:
		src := fs.Arg(0)
		if strings.Contains(src, "://") {
			data, err = fetchBytes(src)
		} else {
			data, err = os.ReadFile(src)
		}
	case 2:
		host := fs.Arg(0)
		if !strings.Contains(host, "://") {
			host = "http://" + host
		}
		data, err = fetchBytes(strings.TrimRight(host, "/") + "/trace/" + fs.Arg(1))
	default:
		fmt.Fprintln(os.Stderr, "usage: idxprof trace trace.json | idxprof trace <url> | idxprof trace host:port <id>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	var tr trace.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: parse trace: %v\n", err)
		os.Exit(1)
	}
	if err := tr.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("stages: %s\n", strings.Join(tr.Stages(), " "))
}

func fetchBytes(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// runDiff compares two bench snapshots and gates on regressions.
func runDiff(args []string) {
	fs := flag.NewFlagSet("idxprof diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.05, "relative change beyond which a value counts as moved")
	warn := fs.Bool("warn", false, "report regressions but exit 0 (non-blocking gate)")
	all := fs.Bool("all", false, "also print values that did not move beyond the threshold")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: idxprof diff [-threshold f] [-warn] [-all] old.json new.json")
		os.Exit(2)
	}
	old, err := metrics.ReadBenchFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	cur, err := metrics.ReadBenchFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	deltas := metrics.BenchDiff(old, cur, *threshold)
	fmt.Print(metrics.RenderBenchDiff(old, cur, deltas, !*all))
	if n := metrics.Regressions(deltas); n > 0 {
		fmt.Printf("%d regression(s) beyond %.1f%%\n", n, *threshold*100)
		if !*warn {
			os.Exit(1)
		}
	}
}

// runWatch polls a live /metrics.json endpoint and prints per-interval
// deltas.
func runWatch(args []string) {
	fs := flag.NewFlagSet("idxprof watch", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	count := fs.Int("count", 0, "number of polls (0 = until interrupted)")
	heartbeat := fs.Bool("heartbeat", false, "show only the failure-detector families (health_*)")
	speculate := fs.Bool("speculate", false, "show only the straggler-speculation families (spec_*)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: idxprof watch [-interval d] [-count n] [-heartbeat] [-speculate] host:port")
		os.Exit(2)
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics.json") {
		url = strings.TrimRight(url, "/") + "/metrics.json"
	}
	var prev metrics.Snapshot
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := fetchSnapshot(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- %s\n", time.Now().Format(time.TimeOnly))
		out := metrics.RenderDelta(prev, snap)
		if *heartbeat || *speculate {
			out = filterFamilies(out, *heartbeat, *speculate)
		}
		fmt.Print(out)
		prev = snap
	}
}

// filterFamilies keeps only the RenderDelta lines of the self-healing
// families: health_* when heartbeat is set, spec_* when speculate is set.
func filterFamilies(table string, heartbeat, speculate bool) string {
	var b strings.Builder
	for _, line := range strings.Split(table, "\n") {
		if heartbeat && strings.HasPrefix(line, "health_") ||
			speculate && strings.HasPrefix(line, "spec_") {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func fetchSnapshot(url string) (metrics.Snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metrics.Snapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return metrics.ReadJSONSnapshot(resp.Body)
}
