// Command idxprof analyzes a profile dumped by the -profile flag of
// idxbench, idxsim or idxlang (or by any program using internal/obs): it
// prints per-node ASCII timelines, per-stage and per-launch aggregation
// tables, and the critical path through the recorded dependence graph. The
// input is Chrome trace_event JSON, so the same file also loads directly in
// chrome://tracing or Perfetto.
//
//	idxprof p.json
//	idxprof -width 120 -steps 20 p.json
package main

import (
	"flag"
	"fmt"
	"os"

	"indexlaunch/internal/obs"
)

func main() {
	width := flag.Int("width", 80, "timeline width in columns")
	steps := flag.Int("steps", 12, "critical-path chain steps to print")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: idxprof [-width n] [-steps n] profile.json")
		os.Exit(2)
	}
	p, err := obs.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxprof: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(obs.RenderSummary(p))
	fmt.Println()
	fmt.Print(obs.RenderTimeline(p, *width))
	fmt.Println()
	fmt.Print(obs.CriticalPath(p).Render(p.WallNS, *steps))
}
