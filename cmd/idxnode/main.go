// Command idxnode is the cluster worker daemon: one process per mesh node.
// It opens a TCP wire fabric, joins the mesh rooted at the launcher
// (idxserve -cluster), registers the task kinds it can execute, and serves
// remote point executions and slice-descriptor deliveries until signalled.
//
//	idxnode -node 1 -nodes 3 -listen 127.0.0.1:7101
//	idxnode -node 2 -nodes 3 -listen 127.0.0.1:7102
//	idxserve -cluster 127.0.0.1:7101,127.0.0.1:7102 ...
//
// Workers do not need each other's addresses: the launcher's handshake
// Hello carries the full address table, and sibling links dial lazily when
// the broadcast tree first routes through them. With -addr the worker also
// serves /metrics (the wire_* families) and /statusz (its peer table).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sched"
	"indexlaunch/internal/wire"
)

func main() {
	node := flag.Int("node", 0, "this worker's mesh node id (1..nodes-1; node 0 is the launcher)")
	nodes := flag.Int("nodes", 0, "total mesh size including the launcher")
	listen := flag.String("listen", "127.0.0.1:0", "wire listen address (host:port; :0 picks a port)")
	addr := flag.String("addr", "", "optionally serve /metrics and /statusz on this address")
	flag.Parse()

	if *node < 1 || *nodes < 2 || *node >= *nodes {
		fatal(fmt.Errorf("need -node in [1, nodes) and -nodes >= 2; got -node %d -nodes %d", *node, *nodes))
	}

	fab, err := wire.NewTCP(wire.TCPConfig{Self: *node, Listen: *listen})
	if err != nil {
		fatal(err)
	}

	reg := metrics.NewRegistry()
	w := &worker{self: *node}
	m, err := wire.NewMesh(wire.MeshConfig{
		Self:    *node,
		Nodes:   *nodes,
		Fabric:  fab,
		Metrics: reg,
		Deliver: w.deliver,
		Exec:    w.exec,
	})
	if err != nil {
		fatal(err)
	}
	w.mesh = m

	if *addr != "" {
		srv, err := metrics.Serve(*addr, reg, w.status)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("idxnode: metrics on http://%s\n", srv.Addr())
	}

	// The banner is parsed by the cluster smoke harness: keep the format.
	fmt.Printf("idxnode: node %d/%d listening on %s\n", *node, *nodes, fab.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Printf("idxnode: node %d stopping: %d points executed, %d slices received\n",
		*node, w.executedCount(), w.sliceCount())
	_ = m.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idxnode:", err)
	os.Exit(1)
}

// worker is the daemon's execution state: the task-kind registry plus the
// slice descriptors the launcher has shipped it.
type worker struct {
	self int
	mesh *wire.Mesh

	mu       sync.Mutex
	executed int64
	slices   []rt.ClusterMsg
	epoch    int64
}

// exec serves one remote point execution. The kind registry is static: the
// synthetic spin task is the one workload the scheduler service launches
// remotely today; unknown kinds fail the attempt (the launcher's retry
// ladder and local fallback decide what happens next).
func (w *worker) exec(task string, point domain.Point, args []byte) ([]byte, error) {
	switch task {
	case sched.SyntheticTaskName:
		w.mu.Lock()
		w.executed++
		w.mu.Unlock()
		return sched.SyntheticEval(point.X()), nil
	default:
		return nil, fmt.Errorf("idxnode: node %d has no task kind %q", w.self, task)
	}
}

// deliver receives broadcast payloads: slice descriptors telling this
// worker what it owns, and resync epochs after a rejoin.
func (w *worker) deliver(node int, tag string, payload []byte) {
	msg, err := rt.DecodeClusterPayload(payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "idxnode: node %d: bad payload on %q: %v\n", w.self, tag, err)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch msg.Kind {
	case "slice":
		w.slices = append(w.slices, msg)
		if len(w.slices) > 1024 {
			w.slices = w.slices[len(w.slices)-1024:]
		}
	case "resync":
		w.epoch = msg.Epoch
	}
}

func (w *worker) executedCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.executed
}

func (w *worker) sliceCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.slices)
}

// status is the /statusz payload: identity, counters and the live peer
// table with its socket byte counts.
func (w *worker) status() any {
	w.mu.Lock()
	executed, slices, epoch := w.executed, len(w.slices), w.epoch
	w.mu.Unlock()
	return struct {
		Node     int               `json:"node"`
		Nodes    int               `json:"nodes"`
		Executed int64             `json:"executed"`
		Slices   int               `json:"slices"`
		Epoch    int64             `json:"epoch,omitempty"`
		Peers    []wire.PeerStatus `json:"peers,omitempty"`
	}{w.self, w.mesh.Nodes(), executed, slices, epoch, w.mesh.Peers()}
}
