// Command idxlang compiles Regent-like programs with the hybrid
// index-launch optimizer and reports, per loop, whether it becomes a static
// index launch, a dynamically guarded one, or a task loop (paper §4).
//
//	idxlang file.rg           # print the optimizer report
//	idxlang -run file.rg      # also execute against a synthetic binding
//	idxlang -demo             # compile the built-in demo program
//	idxlang -run -demo -metrics 127.0.0.1:8080  # live /metrics + /statusz
//
// In -run mode, every partition named by the program is bound to a fresh
// 1-d collection (-elems elements split into -blocks blocks) and every task
// to a no-op body; the execution statistics show which path each loop took.
package main

import (
	"flag"
	"fmt"
	"os"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/lang"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

const demo = `-- Listing 1 of the paper: a trivial and a non-trivial functor.
task foo(r) where reads(r), writes(r) do end
task bar(q) where reads(q), writes(q) do end

var N = 10
for i = 0, N do -- parallel
  foo(p[i])
end

for i = 0, N do -- parallel
  bar(q[(3*i+2) % 32])
end

-- Listing 2 of the paper: statically rejected.
task baz(c1, c2) where reads(c1), writes(c2) do end
for i = 0, 5 do
  baz(p[i], q[i % 3])
end
`

func main() {
	runIt := flag.Bool("run", false, "execute the plan against a synthetic binding")
	useDemo := flag.Bool("demo", false, "compile the built-in demo program")
	blocks := flag.Int("blocks", 32, "blocks per synthetic partition in -run mode")
	elems := flag.Int64("elems", 1024, "elements per synthetic collection in -run mode")
	profile := flag.String("profile", "", "with -run: write a pipeline profile as Chrome trace JSON (view with idxprof)")
	metricsAddr := flag.String("metrics", "", "with -run: serve the runtime's live /metrics, /metrics.json and /statusz on this address during execution")
	heartbeat := flag.Int64("heartbeat", 0, "with -run: run a failure-detector round every N issued points (0 = off)")
	speculate := flag.Float64("speculate", 0, "with -run: straggler-speculation latency quantile (0 = off)")
	flag.Parse()

	src := demo
	switch {
	case *useDemo:
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: idxlang [-run] [-demo] [file.rg]")
		os.Exit(2)
	}

	plan, err := lang.Compile(src)
	if err != nil {
		fail(err)
	}
	fmt.Print(plan.Report())

	if !*runIt {
		if *profile != "" {
			fmt.Fprintln(os.Stderr, "idxlang: -profile requires -run")
			os.Exit(2)
		}
		if *metricsAddr != "" {
			fmt.Fprintln(os.Stderr, "idxlang: -metrics requires -run")
			os.Exit(2)
		}
		if *heartbeat != 0 || *speculate != 0 {
			fmt.Fprintln(os.Stderr, "idxlang: -heartbeat/-speculate require -run")
			os.Exit(2)
		}
		return
	}
	var rec *obs.Recorder
	if *profile != "" {
		rec = obs.NewRecorder("rt", 4, 1<<14)
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
	}
	b, err := syntheticBinding(plan, *blocks, *elems, rec, reg,
		rt.HeartbeatPolicy{Every: *heartbeat}, rt.SpeculationPolicy{Quantile: *speculate})
	if err != nil {
		fail(err)
	}
	if reg != nil {
		srv, err := metrics.Serve(*metricsAddr, reg, func() any { return b.RT.Status() })
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving %s/metrics and %s/statusz (watch with: idxprof watch %s)\n",
			srv.URL(), srv.URL(), srv.Addr())
	}
	stats, err := lang.Exec(plan, b)
	if err != nil {
		fail(err)
	}
	if rec != nil {
		b.RT.Fence()
		rec.SetWall(rec.Now())
		p := rec.Snapshot()
		if err := p.WriteFile(*profile); err != nil {
			fail(err)
		}
		fmt.Printf("profile: wrote %s (%d events); inspect with: idxprof %s\n",
			*profile, len(p.Events), *profile)
	}
	fmt.Printf("\nexecution: %d index launches, %d dynamic checks (%d functor evals), %d task loops, %d single tasks\n",
		stats.IndexLaunches, stats.DynamicBranches, stats.CheckEvals, stats.TaskLoops, stats.SingleTasks)
	rtStats := b.RT.Stats()
	fmt.Printf("runtime:   %d tasks executed, %d version-map queries, %d dependence edges\n",
		rtStats.TasksExecuted, rtStats.VersionQueries, rtStats.DepEdges)
	if *heartbeat > 0 {
		fmt.Printf("health:    %d probes (%d failed), %s\n",
			rtStats.HealthProbes, rtStats.HealthProbeFails, b.RT.HealthCounts())
	}
	if *speculate > 0 {
		fmt.Printf("speculation: %d backups launched, %d won, %d wasted\n",
			rtStats.SpecLaunched, rtStats.SpecWon, rtStats.SpecWasted)
	}
}

// syntheticBinding builds a no-op task for every declared task and a fresh
// partitioned collection for every partition name the plan references.
func syntheticBinding(plan *lang.Plan, blocks int, elems int64, rec *obs.Recorder, reg *metrics.Registry, hb rt.HeartbeatPolicy, spec rt.SpeculationPolicy) (*lang.Binding, error) {
	r, err := rt.New(rt.Config{Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Profile: rec, Metrics: reg, Heartbeat: hb, Speculate: spec})
	if err != nil {
		return nil, err
	}
	b := &lang.Binding{
		RT:    r,
		Tasks: map[string]core.TaskID{},
		Parts: map[string]*region.Partition{},
	}
	for _, td := range plan.Checked.Program.Tasks {
		id, err := r.RegisterTask(td.Name, func(*rt.Context) ([]byte, error) { return nil, nil })
		if err != nil {
			return nil, err
		}
		b.Tasks[td.Name] = id
	}
	for _, name := range partitionNames(plan) {
		fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
		tree, err := region.NewTree(name, domain.Range1(0, elems-1), fs)
		if err != nil {
			return nil, err
		}
		part, err := tree.PartitionEqual(tree.Root(), name, blocks)
		if err != nil {
			return nil, err
		}
		b.Parts[name] = part
	}
	return b, nil
}

func partitionNames(plan *lang.Plan) []string {
	seen := map[string]bool{}
	var names []string
	var walk func(ops []lang.PlanOp)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	walk = func(ops []lang.PlanOp) {
		for _, op := range ops {
			switch o := op.(type) {
			case *lang.OpCandidateLoop:
				for _, lp := range o.Launches {
					for _, a := range lp.Args {
						add(a.Partition)
					}
				}
			case *lang.OpControlLoop:
				walk(o.Body)
			case *lang.OpSingleLaunch:
				for _, a := range o.Stmt.Args {
					add(a.Partition)
				}
			}
		}
	}
	walk(plan.Ops)
	return names
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "idxlang: %v\n", err)
	os.Exit(1)
}
