package main

import (
	"fmt"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/wire"
)

// runWireBench measures the wire layer: codec encode/decode throughput on a
// representative data frame, and the remote-execution round trip over the
// in-process loopback fabric versus real localhost TCP sockets. The codec
// numbers are pure compute; the RTT numbers are wall clock — the CI gate
// diffs the snapshot with -warn, documenting the trend without blocking on
// scheduler noise.
func runWireBench(jsonDir string) error {
	frame := &wire.Frame{
		Kind:  wire.KindData,
		Src:   0,
		Dst:   5,
		Seq:   12345,
		Gen:   3,
		Key:   77,
		Route: []int{1, 3, 5},
		Tag:   "bench",
		Body:  make([]byte, 256),
	}
	for i := range frame.Body {
		frame.Body[i] = byte(i)
	}

	const codecIters = 200000
	buf := wire.EncodeFrame(frame)
	start := time.Now()
	for i := 0; i < codecIters; i++ {
		buf = wire.AppendFrame(buf[:0], frame)
	}
	encNS := float64(time.Since(start).Nanoseconds()) / codecIters

	start = time.Now()
	for i := 0; i < codecIters; i++ {
		if _, _, err := wire.DecodeFrame(buf); err != nil {
			return err
		}
	}
	decNS := float64(time.Since(start).Nanoseconds()) / codecIters

	loopNS, err := execRTT(func(self int, hub *wire.Hub) (wire.Fabric, error) {
		return hub.Fabric(self), nil
	})
	if err != nil {
		return err
	}
	tcpNS, err := execRTT(nil)
	if err != nil {
		return err
	}

	snap := metrics.BenchSnapshot{
		Name:        "wire",
		CreatedUnix: time.Now().Unix(),
		Meta: map[string]string{
			"title": "Wire codec throughput and exec RTT, loopback vs localhost TCP (wall clock; diff with -warn)",
		},
		Values: []metrics.BenchValue{
			{Name: "wire/codec/encode_ns_per_frame", Value: encNS, Better: "lower"},
			{Name: "wire/codec/decode_ns_per_frame", Value: decNS, Better: "lower"},
			{Name: "wire/exec/loopback_ns_per_rtt", Value: loopNS, Better: "lower"},
			{Name: "wire/exec/tcp_ns_per_rtt", Value: tcpNS, Better: "lower"},
		},
	}
	fmt.Printf("%-24s %8.0f ns encode  %8.0f ns decode (256B data frame)\n", "wire/codec", encNS, decNS)
	fmt.Printf("%-24s %8.0f ns loopback  %8.0f ns tcp (exec round trip)\n", "wire/exec", loopNS, tcpNS)
	if jsonDir != "" {
		path := jsonDir + "/BENCH_wire.json"
		if err := snap.WriteFile(path); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

// execRTT times the remote-execution round trip on a 2-node mesh. mkFabric
// nil means localhost TCP; otherwise the fabrics come from a loopback hub.
func execRTT(mkFabric func(self int, hub *wire.Hub) (wire.Fabric, error)) (float64, error) {
	echo := func(task string, point domain.Point, args []byte) ([]byte, error) {
		return args, nil
	}
	var fabs [2]wire.Fabric
	if mkFabric != nil {
		hub := wire.NewHub()
		for i := range fabs {
			f, err := mkFabric(i, hub)
			if err != nil {
				return 0, err
			}
			fabs[i] = f
		}
	} else {
		worker, err := wire.NewTCP(wire.TCPConfig{Self: 1, Listen: "127.0.0.1:0"})
		if err != nil {
			return 0, err
		}
		launcher, err := wire.NewTCP(wire.TCPConfig{
			Self: 0, Listen: "127.0.0.1:0",
			Peers: map[int]string{1: worker.Addr()}, Epoch: 1,
		})
		if err != nil {
			return 0, err
		}
		fabs[0], fabs[1] = launcher, worker
	}
	var meshes [2]*wire.Mesh
	for i := range meshes {
		m, err := wire.NewMesh(wire.MeshConfig{Self: i, Nodes: 2, Fabric: fabs[i], Exec: echo})
		if err != nil {
			return 0, err
		}
		meshes[i] = m
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()
	args := make([]byte, 64)
	// Warm the connection (TCP dial + handshake) outside the timed loop.
	if _, err := meshes[0].Exec(1, "echo", domain.Pt1(0), args); err != nil {
		return 0, err
	}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := meshes[0].Exec(1, "echo", domain.Pt1(int64(i)), args); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / iters, nil
}
