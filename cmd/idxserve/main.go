// Command idxserve runs the multi-tenant job scheduler as a service: a
// bounded executor pool of index-launch runtimes behind admission control,
// with a job-submission HTTP API and live metrics.
//
//	idxserve -addr 127.0.0.1:8080 -executors 4 -queue fair -weights a=1,b=2,c=4
//	curl -s -X POST localhost:8080/jobs -d '{"tenant":"a","tasks":64,"rounds":4}'
//	curl -s localhost:8080/statusz        # per-tenant queue table
//	curl -s localhost:8080/metrics | grep sched_
//
// With -trace-sample (and optionally -trace-dir for a durable store) every
// job is traced end to end — sched admission, runtime pipeline stages,
// transport hops — and the tail sampler retains failed, preempted, retried,
// slow and head-sampled traces for the /trace query API:
//
//	idxserve -trace-sample 0.1 -trace-dir /tmp/idxtraces
//	curl -s localhost:8080/trace          # retained-trace summaries
//	curl -s localhost:8080/trace/3        # job 3's span tree (if retained)
//
// Two offline modes share the flag set:
//
//	idxserve -trace -seed 42 -jobs 400    # print the deterministic decision log
//	idxserve -bench -json bench-out       # write BENCH_sched.json
//
// The trace mode replays a seeded arrival trace through the policy core on
// a virtual clock; its output is byte-identical per seed, which is what the
// CI scheduler seed matrix locks in.
//
// With -data DIR the scheduler is durable: every admission decision is
// journaled to a write-ahead log before it is acknowledged, and a restart
// recovers queue, quota and terminal-job state from the directory. -fsync
// picks the sync policy (always | interval | never). Durable trace mode
// (-trace -data DIR) resumes a killed run and still prints the byte-exact
// crash-free decision log — the property the CI crash-recovery matrix
// SIGKILLs the process mid-run to verify; -op-delay paces it so the kill
// lands mid-trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sched"
	"indexlaunch/internal/trace"
	"indexlaunch/internal/wal"
	"indexlaunch/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "serve the job API, /metrics and /statusz on this address")
	executors := flag.Int("executors", 2, "executor pool size (jobs running concurrently)")
	nodes := flag.Int("nodes", 4, "simulated nodes per executor runtime")
	procs := flag.Int("procs", 2, "processors per simulated node")
	dcr := flag.Bool("dcr", false, "dynamic control replication in executor runtimes (off keeps the centralized path, whose message transport is reused across jobs)")
	cluster := flag.String("cluster", "", "cluster mode: comma-separated idxnode wire addresses; this process becomes mesh node 0 and launch points map onto the workers over TCP (forces -executors 1, overrides -nodes, excludes -dcr)")
	queue := flag.String("queue", "fifo", "queue discipline: fifo | priority | fair")
	weights := flag.String("weights", "", "fair-share weights as tenant=weight[,tenant=weight...]")
	rate := flag.Float64("rate", 0, "default per-tenant admission rate in jobs/tick (0 = unlimited)")
	burst := flag.Float64("burst", 0, "default admission burst (0 = max(rate, 1))")
	maxQueued := flag.Int("max-queued", 1024, "global queue bound")
	preempt := flag.Bool("preempt", false, "cooperative preemption of lower-priority running jobs")
	tick := flag.Duration("tick", 5*time.Millisecond, "scheduler tick period (bucket refill + health capacity feedback)")

	dataDir := flag.String("data", "", "durable mode: journal scheduler state into this directory (empty = in-memory)")
	fsync := flag.String("fsync", "interval", "with -data: journal sync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "with -fsync interval: coalescing window")
	snapEvery := flag.Int("snapshot-every", 0, "with -data: snapshot cadence in journaled ops (0 = default 4096)")
	opDelay := flag.Duration("op-delay", 0, "with -trace -data: pause after each journaled op (crash-harness pacing)")

	traceSample := flag.Float64("trace-sample", 0, "serve mode: enable end-to-end job tracing, head-sampling this fraction of traces (failed, preempted, retried and slow jobs are always retained)")
	traceDir := flag.String("trace-dir", "", "serve mode: persist retained traces in a wal store rooted here (implies tracing)")
	traceSeed := flag.Uint64("trace-seed", 1, "serve mode: trace-ID derivation seed")

	traceMode := flag.Bool("trace", false, "replay a seeded trace through the policy core and print the decision log")
	bench := flag.Bool("bench", false, "run the deterministic scheduler benchmarks")
	jsonDir := flag.String("json", "", "with -bench: write BENCH_sched.json into this directory")
	seed := flag.Int64("seed", 42, "with -trace: trace seed")
	jobs := flag.Int("jobs", 400, "with -trace: trace length")
	flag.Parse()

	pol, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	durable := sched.DurableOptions{
		Dir:           *dataDir,
		Fsync:         pol,
		FsyncInterval: *fsyncEvery,
		SnapshotEvery: *snapEvery,
		OpDelay:       *opDelay,
	}

	w, err := parseWeights(*weights)
	if err != nil {
		fatal(err)
	}
	adm := sched.Admission{
		MaxQueued: *maxQueued,
		Default:   sched.Quota{Rate: *rate, Burst: *burst},
		Tenants:   map[string]sched.Quota{},
	}
	for tenant, wt := range w {
		adm.Tenants[tenant] = sched.Quota{Rate: *rate, Burst: *burst, Weight: wt}
	}
	mkQueue := func() (sched.Queue, error) {
		switch *queue {
		case "fifo":
			return sched.NewFIFO(), nil
		case "priority":
			return sched.NewStrictPriority(), nil
		case "fair":
			return sched.NewWeightedFair(1, adm.Weights(), 1), nil
		default:
			return nil, fmt.Errorf("unknown -queue %q (want fifo, priority or fair)", *queue)
		}
	}

	switch {
	case *traceMode:
		q, err := mkQueue()
		if err != nil {
			fatal(err)
		}
		if err := runTrace(*seed, *jobs, q, adm, durable); err != nil {
			fatal(err)
		}
	case *bench:
		if err := runBench(*jsonDir); err != nil {
			fatal(err)
		}
	default:
		q, err := mkQueue()
		if err != nil {
			fatal(err)
		}
		cfg := sched.Config{
			Executors:  *executors,
			Runtime:    rt.Config{Nodes: *nodes, ProcsPerNode: *procs, DCR: *dcr, IndexLaunches: true},
			Setup:      sched.SyntheticSetup,
			Queue:      q,
			Admission:  adm,
			Preemption: *preempt,
			TickEvery:  *tick,
			Durable:    durable,
		}
		if *traceSample > 0 || *traceDir != "" {
			// Tracing needs a recorder (spans reach the tracer through its
			// sink) and a shared registry (the trace_* families must land in
			// the registry /metrics serves).
			reg := metrics.NewRegistry()
			tr, err := trace.New(trace.Config{
				HeadRate: *traceSample,
				Dir:      *traceDir,
				Registry: reg,
			})
			if err != nil {
				fatal(err)
			}
			cfg.Metrics = reg
			cfg.Profile = obs.NewRecorder("idxserve", *nodes, 4096)
			cfg.Trace = tr
			cfg.TraceSeed = *traceSeed
		}
		var mesh *wire.Mesh
		if *cluster != "" {
			mesh, err = joinCluster(*cluster, &cfg)
			if err != nil {
				fatal(err)
			}
		}
		if err := serve(*addr, cfg, mesh); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idxserve:", err)
	os.Exit(1)
}

func parseWeights(s string) (map[string]int, error) {
	w := map[string]int{}
	if s == "" {
		return w, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -weights entry %q (want tenant=weight)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %q", kv[1], kv[0])
		}
		w[kv[0]] = n
	}
	return w, nil
}

// joinCluster turns the service into mesh node 0 of a real multi-process
// cluster: it opens a TCP wire fabric, lists the idxnode workers as peers
// 1..N (the handshake Hello carries this table, so workers learn their
// sibling addresses from it), and attaches the resulting mesh to the
// executor runtime template. The executor pool is forced to one — a mesh
// is a single node-0 resource and cannot be shared across runtimes.
func joinCluster(workers string, cfg *sched.Config) (*wire.Mesh, error) {
	if cfg.Runtime.DCR {
		return nil, fmt.Errorf("-cluster excludes -dcr: only the centralized path ships slices")
	}
	peers := map[int]string{}
	for i, a := range strings.Split(workers, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("-cluster: empty worker address at position %d", i+1)
		}
		peers[i+1] = a
	}
	fab, err := wire.NewTCP(wire.TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: peers, Epoch: 1})
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		// The wire_* families must land in the registry /metrics serves.
		cfg.Metrics = metrics.NewRegistry()
	}
	mesh, err := wire.NewMesh(wire.MeshConfig{
		Self:    0,
		Nodes:   len(peers) + 1,
		Fabric:  fab,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	cfg.Executors = 1
	cfg.Runtime.Nodes = len(peers) + 1
	cfg.Runtime.Cluster = mesh
	return mesh, nil
}

// serve runs the scheduler service until SIGINT/SIGTERM, then drains
// gracefully and shuts down. mesh is non-nil in cluster mode and closed on
// the way out.
func serve(addr string, cfg sched.Config, mesh *wire.Mesh) error {
	s, err := sched.New(cfg)
	if err != nil {
		return err
	}
	srv, err := sched.Serve(addr, s, nil)
	if err != nil {
		return err
	}
	if cfg.Durable.Dir != "" {
		rep := s.Recovery()
		fmt.Fprintf(os.Stderr, "idxserve: journal %s (fsync=%s): recovered=%v replayed=%d requeued=%d resumed=%d decisions=%d\n",
			cfg.Durable.Dir, cfg.Durable.Fsync, rep.Recovered, rep.ReplayedOps,
			rep.RequeuedJobs, rep.ResumedJobs, rep.Decisions)
	}
	fmt.Printf("idxserve: %d executors (%d nodes x %d procs each), %s queue\n",
		cfg.Executors, cfg.Runtime.Nodes, cfg.Runtime.ProcsPerNode, s.Status().Queue)
	if mesh != nil {
		// The banner is parsed by the cluster smoke harness: keep the format.
		fmt.Printf("idxserve: cluster mode — node 0 of %d, %d workers over TCP\n",
			mesh.Nodes(), mesh.Nodes()-1)
	}
	fmt.Printf("idxserve: job API and metrics on http://%s (POST /jobs, /statusz, /metrics)\n", srv.Addr())
	if cfg.Trace != nil {
		fmt.Printf("idxserve: tracing on — GET /trace lists retained traces, GET /trace/{id} returns one\n")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("idxserve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "idxserve: drain:", err)
	}
	s.Shutdown()
	_ = srv.Close()
	_ = cfg.Trace.Close()
	if mesh != nil {
		_ = mesh.Close()
	}
	st := s.Status()
	var done int64
	for _, ts := range st.Tenants {
		done += ts.Completed
	}
	fmt.Printf("idxserve: stopped after %d decisions, %d jobs completed\n", st.Decisions, done)
	return nil
}

// runTrace prints the deterministic decision log for one seeded trace —
// byte-identical per (seed, flags), the property the CI seed matrix checks.
// With a journal directory the run is durable and resumable: a killed run
// re-invoked with the same flags continues from the journal and the final
// stdout is still byte-identical to an uninterrupted run's (recovery chatter
// goes to stderr).
func runTrace(seed int64, jobs int, q sched.Queue, adm sched.Admission, durable sched.DurableOptions) error {
	tr := sched.GenTrace(seed, sched.TraceOptions{
		Jobs: jobs, MaxPriority: 3, MaxInterArrival: 2, MaxCost: 4,
		MinService: 2, MaxService: 10,
	})
	cfg := sched.TraceConfig{Executors: 3, Queue: q, Admission: adm}
	var res sched.TraceResult
	if durable.Dir != "" {
		dres, err := sched.RunTraceDurable(tr, cfg, durable)
		if err != nil {
			return err
		}
		rep := dres.Report
		fmt.Fprintf(os.Stderr, "idxserve: journal %s: recovered=%v replayed=%d ops=%d\n",
			durable.Dir, rep.Recovered, rep.ReplayedOps, dres.Ops)
		res = dres.TraceResult
	} else {
		res = sched.RunTrace(tr, cfg)
	}
	fmt.Print(sched.RenderLog(res.Log))
	tenants := make([]string, 0, len(res.Completed))
	for t := range res.Completed {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Printf("# seed %d: makespan %d ticks, %.2f jobs/ktick, p99 wait %d ticks\n",
		seed, res.Makespan, res.JobsPerKTick, res.P99Wait())
	for _, t := range tenants {
		fmt.Printf("# tenant %s: completed %d rejected %d expired %d served-cost %d\n",
			t, res.Completed[t], res.Rejected[t], res.Expired[t], res.ServedCost[t])
	}
	return nil
}

// runBench derives the scheduler's deterministic benchmark snapshot from
// virtual-time runs: throughput (higher is better) and p99 queue wait
// (lower is better) per discipline. Purely a function of the seeds, so CI
// can diff it against the committed baseline with zero noise.
func runBench(jsonDir string) error {
	weights := map[string]int{"a": 1, "b": 2, "c": 4}
	adm := sched.Admission{
		MaxQueued: 4096,
		Tenants: map[string]sched.Quota{
			"a": {Weight: 1}, "b": {Weight: 2}, "c": {Weight: 4},
		},
	}
	disciplines := []struct {
		name string
		mk   func() sched.Queue
	}{
		{"fifo", sched.NewFIFO},
		{"priority", sched.NewStrictPriority},
		{"fair", func() sched.Queue { return sched.NewWeightedFair(1, weights, 1) }},
	}
	snap := metrics.BenchSnapshot{
		Name:        "sched",
		CreatedUnix: time.Now().Unix(),
		Meta: map[string]string{
			"title": "Scheduler virtual-time throughput and queue waits (seeds 1,7,42)",
		},
	}
	for _, d := range disciplines {
		for _, seed := range []int64{1, 7, 42} {
			tr := sched.GenTrace(seed, sched.TraceOptions{
				Jobs: 2000, MaxPriority: 3, MaxInterArrival: 1, MaxCost: 3,
				MinService: 1, MaxService: 6,
			})
			res := sched.RunTrace(tr, sched.TraceConfig{
				Executors: 4, Queue: d.mk(), Admission: adm,
			})
			prefix := fmt.Sprintf("sched/%s/seed%d", d.name, seed)
			snap.Values = append(snap.Values,
				metrics.BenchValue{Name: prefix + "/jobs_per_ktick", Value: res.JobsPerKTick, Better: "higher"},
				metrics.BenchValue{Name: prefix + "/p99_wait_ticks", Value: float64(res.P99Wait()), Better: "lower"},
				metrics.BenchValue{Name: prefix + "/makespan_ticks", Value: float64(res.Makespan), Better: "lower"},
			)
			fmt.Printf("%-24s %8.2f jobs/ktick  p99 wait %5d  makespan %6d\n",
				prefix, res.JobsPerKTick, res.P99Wait(), res.Makespan)
		}
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path := jsonDir + "/BENCH_sched.json"
		if err := snap.WriteFile(path); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if err := runTraceOverheadBench(jsonDir); err != nil {
		return err
	}
	return runWireBench(jsonDir)
}

// runTraceOverheadBench measures the end-to-end tracing layer's marginal
// cost on the runtime's launch pipeline: the same seeded index-launch
// workload executed with the profiler alone versus profiler + tracing
// (every span stamped with a derived context and teed into the tail
// sampler). Wall-clock values, so the CI gate diffs them with -warn — the
// snapshot documents the overhead trend rather than blocking on scheduler
// noise.
func runTraceOverheadBench(jsonDir string) error {
	const (
		points = 256
		rounds = 40
	)
	run := func(traced bool) (nsPerTask float64, err error) {
		// Both modes run with the recorder attached — the profiled pipeline
		// is the baseline, since span stamping only ever happens on it.
		// Traced mode adds what the tracing layer adds: every event carries
		// a derived span context and is teed through the sink into the tail
		// sampler's buffers.
		cfg := rt.Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true}
		rec := obs.NewRecorder("bench", 4, 4096)
		cfg.Profile = rec
		var tr *trace.Tracer
		var root obs.TraceRef
		if traced {
			tr, err = trace.New(trace.Config{HeadRate: 1, MaxRetained: 4})
			if err != nil {
				return 0, err
			}
			rec.SetSink(tr.Sink())
			root = obs.NewTraceRef(42)
			tr.Begin(root, 1, "bench", 0)
		}
		r, err := rt.New(cfg)
		if err != nil {
			return 0, err
		}
		defer r.Shutdown()
		if err := sched.SyntheticSetup(r); err != nil {
			return 0, err
		}
		id, _ := r.TaskNamed(sched.SyntheticTaskName)
		if traced {
			r.SetTraceRef(root.Child(1))
		}
		start := time.Now()
		for round := 0; round < rounds; round++ {
			launch, err := core.Forall(sched.SyntheticTaskName, id, domain.Range1(0, points-1))
			if err != nil {
				return 0, err
			}
			if _, err := r.ExecuteIndex(launch); err != nil {
				return 0, err
			}
		}
		if err := r.FenceErr(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if traced {
			tr.Finish(root, int64(elapsed), trace.Outcome{})
		}
		return float64(elapsed.Nanoseconds()) / float64(points*rounds), nil
	}
	// One discarded warm-up run, then interleaved off/on pairs taking the
	// per-mode minimum: warm-up keeps one-time costs (page faults, registry
	// construction) out of the first measurement, and interleaving keeps
	// slow drift (frequency scaling, scheduler warm-up) from being charged
	// to whichever mode ran first.
	if _, err := run(false); err != nil {
		return err
	}
	var off, on float64
	for i := 0; i < 5; i++ {
		o, err := run(false)
		if err != nil {
			return err
		}
		tr, err := run(true)
		if err != nil {
			return err
		}
		if i == 0 || o < off {
			off = o
		}
		if i == 0 || tr < on {
			on = tr
		}
	}
	overhead := 0.0
	if off > 0 {
		overhead = (on - off) / off * 100
	}
	snap := metrics.BenchSnapshot{
		Name:        "trace",
		CreatedUnix: time.Now().Unix(),
		Meta: map[string]string{
			"title": "End-to-end tracing overhead on the runtime launch pipeline (wall clock; diff with -warn)",
		},
		Values: []metrics.BenchValue{
			{Name: "trace/off/ns_per_task", Value: off, Better: "lower"},
			{Name: "trace/on/ns_per_task", Value: on, Better: "lower"},
			{Name: "trace/overhead_pct", Value: overhead, Better: "lower"},
		},
	}
	fmt.Printf("%-24s %8.0f ns/task off  %8.0f ns/task traced  %+.1f%% overhead\n",
		"trace/pipeline", off, on, overhead)
	if jsonDir != "" {
		path := jsonDir + "/BENCH_trace.json"
		if err := snap.WriteFile(path); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
