// Compiler demo: walk the paper's Listings 1–3 through the Regent-like
// front-end — candidate detection, static functor classification, dynamic
// check emission — then execute the compiled plan against a real runtime
// binding and show which path each loop took.
//
//	go run ./examples/compilerdemo
package main

import (
	"fmt"
	"log"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/lang"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

const src = `
-- Listing 1: trivial and non-trivial projection functors.
task foo(r) where reads(r), writes(r) do end
task bar(q) where reads(q), writes(q) do end

var N = 16
for i = 0, N do
  foo(p[i])            -- identity: statically safe
end
for i = 0, N do
  bar(q[(5*i+3) % 64]) -- coprime stride: only the dynamic check can tell
end

-- Listing 2: i%3 over [0,5) with writes is rejected and stays a task loop.
task baz(c1, c2) where reads(c1), writes(c2) do end
for i = 0, 5 do
  baz(p[i], q[i % 3])
end
`

func main() {
	plan, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== optimizer report ===")
	fmt.Print(plan.Report())

	// Bind partitions and tasks to real runtime objects. The task counts
	// how many blocks it touches by bumping each element.
	runtime := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	mkPart := func(name string, elems int64, blocks int) *region.Partition {
		fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
		tree := region.MustNewTree(name, domain.Range1(0, elems-1), fs)
		part, err := tree.PartitionEqual(tree.Root(), name, blocks)
		if err != nil {
			log.Fatal(err)
		}
		return part
	}
	bump := runtime.MustRegisterTask("bump", func(ctx *rt.Context) ([]byte, error) {
		for i := 0; i < ctx.NumRegions(); i++ {
			pr, _ := ctx.Region(i)
			if !pr.Priv.IsWrite() {
				continue
			}
			acc, err := ctx.WriteF64(i, 0)
			if err != nil {
				return nil, err
			}
			pr.Region.Domain.Each(func(p domain.Point) bool {
				acc.Set(p, acc.Get(p)+1)
				return true
			})
		}
		return nil, nil
	})

	binding := &lang.Binding{
		RT:    runtime,
		Tasks: map[string]core.TaskID{"foo": bump, "bar": bump, "baz": bump},
		Parts: map[string]*region.Partition{
			"p": mkPart("p", 160, 16),
			"q": mkPart("q", 640, 64),
		},
	}
	stats, err := lang.Exec(plan, binding)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== execution ===")
	fmt.Printf("index launches:      %d\n", stats.IndexLaunches)
	fmt.Printf("dynamic checks run:  %d (%d functor evaluations)\n", stats.DynamicBranches, stats.CheckEvals)
	fmt.Printf("task-loop fallbacks: %d (%d individually issued tasks)\n", stats.TaskLoops, stats.SingleTasks)
}
