// Quickstart: the index-launch API end to end.
//
// It builds a collection, partitions it, registers a task, and issues a
// parallel group of tasks as one index launch — forall(D, T, ⟨P, f⟩) — then
// reads back the results through a future map.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/safety"
)

func main() {
	// A runtime with 4 simulated nodes, 2 processors each, running in the
	// paper's best configuration: dynamic control replication + index
	// launches, with launch verification on.
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true,
	})

	// A collection of 1 000 000 elements with one float64 field,
	// partitioned into 100 disjoint blocks.
	const fieldVal region.FieldID = 0
	fields := region.MustFieldSpace(region.Field{ID: fieldVal, Name: "val", Kind: region.F64})
	tree := region.MustNewTree("data", domain.Range1(0, 999_999), fields)
	blocks, err := tree.PartitionEqual(tree.Root(), "blocks", 100)
	if err != nil {
		log.Fatal(err)
	}

	// A task: fill my block with my launch index, return the block sum.
	fill := runtime.MustRegisterTask("fill", func(ctx *rt.Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		var sum float64
		pr.Region.Domain.Each(func(p domain.Point) bool {
			v := float64(ctx.Point.X())
			acc.Set(p, v)
			sum += v
			return true
		})
		return rt.EncodeF64(sum), nil
	})

	// The index launch: 100 parallel tasks, task i receiving block i.
	// forall([0,100), fill, ⟨blocks, λi.i⟩)
	launch := core.MustForall("fill", fill, domain.Range1(0, 99), core.Requirement{
		Partition: blocks,
		Functor:   projection.Identity(1),
		Priv:      privilege.ReadWrite,
		Fields:    []region.FieldID{fieldVal},
	})

	// The representation is O(1): its size does not depend on the number
	// of tasks.
	fmt.Printf("launch represents %d tasks in %d bytes\n", launch.Parallelism(), launch.ReprBytes())

	// The hybrid safety analysis proves this launch safe statically
	// (identity functor over a disjoint partition).
	res := launch.Verify(safety.Options{})
	fmt.Printf("safety: safe=%v via %s analysis (%d dynamic evaluations)\n",
		res.Safe, res.Args[0].Method, res.DynamicEvaluations)

	fm, err := runtime.ExecuteIndex(launch)
	if err != nil {
		log.Fatal(err)
	}
	total, err := fm.SumF64()
	if err != nil {
		log.Fatal(err)
	}
	// Each block holds 10 000 copies of its index: sum = 10000 * (0+..+99).
	fmt.Printf("sum of all task results: %.0f (want %d)\n", total, 10_000*99*100/2)

	stats := runtime.Stats()
	fmt.Printf("runtime: %d tasks executed from %d launch call(s)\n",
		stats.TasksExecuted, stats.LaunchCalls)
}
