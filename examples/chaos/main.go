// Chaos transport: an index-launch program producing fault-free results
// while the centralized distribution path loses, duplicates, reorders and
// delays its slice messages — and an interior broadcast-tree node dies.
//
// On the non-DCR path node 0 ships slices over an O(log N) broadcast tree
// (internal/xport). A seeded ChaosPlan perturbs every link: 15% of
// transmissions are dropped, 25% duplicated, 30% reordered, and the 0→2
// link suffers a transient partition. A seeded FaultInjector additionally
// kills node 1 — an interior relay with two children — mid-run, forcing
// the transport to re-parent the orphaned subtree onto surviving
// ancestors. Ack/timeout retransmission and sequence-numbered dedup make
// all of it invisible to the program: the final field contents are
// byte-identical to a fault-free run.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/xport"
)

func main() {
	// Every chaos decision is a pure hash of (seed, link, sequence,
	// attempt): re-running this program replays the same drops, the same
	// duplicates, the same partition window.
	plan := &xport.ChaosPlan{
		Seed: 42, Drop: 0.15, Dup: 0.25, Reorder: 0.3,
		DelayMax: 100 * time.Microsecond,
		// Link 0→2 goes dark for transmissions 1..3 of its lifetime;
		// retransmissions advance the counter, so the outage heals.
		Partitions: []xport.Partition{{A: 0, B: 2, AfterSends: 1, Sends: 3}},
	}

	// Node 1 relays to children 3 and 4. Killing it after 20 issued points
	// — mid-way through the second launch — re-parents both onto node 0.
	injector := rt.NewFaultInjector(42).KillNode(1, 20)

	runtime := rt.MustNew(rt.Config{
		Nodes: 8, ProcsPerNode: 2, IndexLaunches: true,
		Chaos: plan,
		// Short ack timeouts keep the demo snappy; dropped hops re-send
		// after 200µs instead of the default 1ms.
		Retransmit: xport.RetransmitPolicy{
			Timeout:    200 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond,
		},
		Fault: injector,
	})

	const fieldVal region.FieldID = 0
	fields := region.MustFieldSpace(region.Field{ID: fieldVal, Name: "val", Kind: region.F64})
	tree := region.MustNewTree("data", domain.Range1(0, 159), fields)
	blocks, err := tree.PartitionEqual(tree.Root(), "blocks", 16)
	if err != nil {
		log.Fatal(err)
	}

	inc := runtime.MustRegisterTask("inc", func(ctx *rt.Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, acc.Get(p)+1)
			return true
		})
		return nil, nil
	})

	// Four rounds of 16 point tasks. Each launch's slices ride the chaos
	// transport from node 0 to their destination nodes.
	for round := 0; round < 4; round++ {
		launch := core.MustForall("inc", inc, domain.Range1(0, 15), core.Requirement{
			Partition: blocks,
			Functor:   projection.Identity(1),
			Priv:      privilege.ReadWrite,
			Fields:    []region.FieldID{fieldVal},
		})
		if _, err := runtime.ExecuteIndex(launch); err != nil {
			log.Fatal(err)
		}
	}
	if err := runtime.FenceErr(); err != nil {
		log.Fatalf("launches failed: %v", err)
	}

	// The transport counters show the robustness machinery actually
	// engaged. (Exact counts vary run to run — whether an ack beats a
	// retransmit timer is a wall-clock race — but the delivered outcome
	// below never does.)
	stats := runtime.Stats()
	fmt.Printf("transport: sends=%d retransmits=%d drops=%d dedups=%d\n",
		stats.MsgSends, stats.MsgRetransmits, stats.MsgDrops, stats.MsgDedups)
	fmt.Printf("degradation: node failures=%d, subtree re-parents=%d, re-mapped points=%d\n",
		stats.NodeFailures, stats.Reparents, stats.Remapped)

	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		log.Fatal(err)
	}
	// Every element incremented once per round — exactly the fault-free
	// answer, despite drops, duplicates, a partition and a dead relay.
	fmt.Printf("chaos-mode completion: sum=%.0f (want %d), %d tasks executed\n",
		sum, 4*160, stats.TasksExecuted)
}
