// Metrics: attach a live metrics registry to a real runtime run, serve it
// over the embedded HTTP listener, and scrape the three exposition
// endpoints while the stencil workload runs — /metrics (Prometheus text),
// /metrics.json (what `idxprof watch` polls) and /statusz (live
// introspection: node liveness, broadcast-tree shape, in-flight work). Then
// read the stage-latency histograms back out of the registry and print a
// terminal rendering.
//
//	go run ./examples/metrics
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"indexlaunch/internal/apps/stencil"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/rt"
)

func main() {
	params := stencil.Params{N: 256, TilesX: 4, TilesY: 4}
	const iters = 10

	s, err := stencil.Build(params)
	if err != nil {
		log.Fatal(err)
	}

	// The registry is the only wiring: the runtime records counters and
	// stage latencies into it, the HTTP listener serves it.
	reg := metrics.NewRegistry()
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true, Tracing: true,
		Metrics: reg,
	})
	srv, err := metrics.Serve("127.0.0.1:0", reg, func() any { return runtime.Status() })
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving %s/metrics, /metrics.json and /statusz\n\n", srv.URL())

	app := stencil.NewApp(s, runtime)
	for i := 0; i < iters; i++ {
		if err := runtime.BeginTrace(1); err != nil {
			log.Fatal(err)
		}
		if err := app.Step(); err != nil {
			log.Fatal(err)
		}
		if err := runtime.EndTrace(1); err != nil {
			log.Fatal(err)
		}
	}
	runtime.Fence()

	// Scrape the live endpoints the way Prometheus / idxprof watch would.
	prom := scrape(srv.URL() + "/metrics")
	fmt.Println("=== /metrics (Prometheus text, excerpt) ===")
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, "idx_tasks_executed_total") ||
			strings.HasPrefix(line, "idx_trace_replays_total") ||
			strings.HasPrefix(line, "# TYPE idx_stage_latency_ns") ||
			strings.HasPrefix(line, "idx_stage_latency_ns_count") {
			fmt.Println(line)
		}
	}

	status := scrape(srv.URL() + "/statusz")
	fmt.Println("\n=== /statusz ===")
	fmt.Println(status)

	// The same registry is readable in process: print the stage-latency
	// histogram per pipeline stage.
	fmt.Println("=== stage-latency histogram (in-process read) ===")
	fmt.Printf("%-12s %8s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99")
	snap := reg.Gather()
	for _, f := range snap.Families {
		if f.Name != "idx_stage_latency_ns" {
			continue
		}
		for _, ss := range f.Series {
			fmt.Printf("%-12s %8d %10dns %10dns %10dns\n",
				ss.Labels[0].Value, ss.Count,
				metrics.BucketQuantile(ss.Buckets, ss.Count, 0.50),
				metrics.BucketQuantile(ss.Buckets, ss.Count, 0.95),
				metrics.BucketQuantile(ss.Buckets, ss.Count, 0.99))
		}
	}

	st := runtime.Stats()
	fmt.Printf("\nruntime: %d tasks, %d replays; watch live with: idxprof watch %s\n",
		st.TasksExecuted, st.TraceReplays, srv.Addr())
}

func scrape(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimRight(string(body), "\n")
}
