// Serve: the multi-tenant job scheduler end to end.
//
// Act one starts a scheduler with a weighted fair-share queue over a pool
// of index-launch runtimes, submits a burst of synthetic jobs from three
// tenants through the HTTP API, lets the pool drain, and reads the
// per-tenant outcome back from /statusz — the same table an operator sees.
//
// Act two makes the scheduler durable: jobs submitted with idempotency
// keys are journaled to a write-ahead log, the process "restarts" (the
// scheduler is torn down and reopened on the same directory), and the
// recovered instance answers for the old jobs — same IDs for resubmitted
// keys, terminal states still queryable. The CI crash-recovery matrix
// proves the stronger version of this with SIGKILL mid-run.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"indexlaunch/internal/rt"
	"indexlaunch/internal/sched"
)

func main() {
	// Three tenants with 1:2:4 fair-share weights, a bounded queue, and two
	// executors, each a 4-node simulated machine whose message transport is
	// reused across jobs.
	adm := sched.Admission{
		MaxQueued: 256,
		Tenants: map[string]sched.Quota{
			"bronze": {Weight: 1},
			"silver": {Weight: 2},
			"gold":   {Weight: 4},
		},
	}
	s, err := sched.New(sched.Config{
		Executors: 2,
		Runtime:   rt.Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true},
		Setup:     sched.SyntheticSetup,
		Queue:     sched.NewWeightedFair(1, adm.Weights(), 1),
		Admission: adm,
		TickEvery: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := sched.Serve("127.0.0.1:0", s, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler serving on %s (fair queue, weights 1:2:4)\n", srv.Addr())

	// A burst: every tenant submits 8 synthetic jobs over HTTP.
	for i := 0; i < 8; i++ {
		for _, tenant := range []string{"bronze", "silver", "gold"} {
			body, _ := json.Marshal(sched.SubmitRequest{
				Tenant: tenant, Tasks: 16, Rounds: 2,
			})
			resp, err := http.Post(srv.URL()+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("POST /jobs: %s", resp.Status)
			}
			resp.Body.Close()
		}
	}

	// Graceful drain: admission closes, queued and running jobs finish.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	// The per-tenant table from /statusz, as an operator would read it.
	var sz struct {
		Status sched.Status `json:"status"`
	}
	resp, err := http.Get(srv.URL() + "/statusz")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	fmt.Println("fair-share outcome by tenant:")
	var total int64
	for _, ts := range sz.Status.Tenants {
		fmt.Printf("  %-8s weight %d: enqueued %2d admitted %2d completed %2d failed %d\n",
			ts.Tenant, ts.Weight, ts.Enqueued, ts.Admitted, ts.Completed, ts.Failed)
		total += ts.Completed
	}
	fmt.Printf("completed %d jobs over %d scheduler decisions\n", total, sz.Status.Decisions)

	s.Shutdown()
	_ = srv.Close()

	durableDemo()
}

// durableDemo journals a scheduler's decisions to a write-ahead log,
// restarts it on the same directory, and shows the recovered instance
// answering for jobs the previous incarnation accepted.
func durableDemo() {
	dir, err := os.MkdirTemp("", "serve-journal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := func() sched.Config {
		return sched.Config{
			Executors: 2,
			Runtime:   rt.Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true},
			Setup:     sched.SyntheticSetup,
			Queue:     sched.NewFIFO(),
			Admission: sched.Admission{MaxQueued: 64},
			TickEvery: time.Millisecond,
			Durable:   sched.DurableOptions{Dir: dir},
		}
	}

	// First incarnation: accept jobs under idempotency keys, run them to
	// completion, stop. Every decision went through the journal first.
	s1, err := sched.New(cfg())
	if err != nil {
		log.Fatal(err)
	}
	keys := []string{"nightly-report", "reindex-shard-3"}
	ids := map[string]sched.JobID{}
	for _, key := range keys {
		req := sched.SubmitRequest{Tenant: "ops", Tasks: 16, Rounds: 1}
		id, err := s1.SubmitIdempotent(sched.JobSpec{
			Tenant: req.Tenant, Run: sched.SyntheticRun(req.Tasks, req.Rounds),
			Request: &req,
		}, key)
		if err != nil {
			log.Fatal(err)
		}
		if err := s1.Wait(id); err != nil {
			log.Fatal(err)
		}
		ids[key] = id
	}
	s1.Shutdown()

	// Second incarnation, same directory: the journal replays and the new
	// process answers for the old one.
	s2, err := sched.New(cfg())
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Shutdown()
	rep := s2.Recovery()
	fmt.Printf("durable restart: recovered=%v snapshot=%v decisions=%d\n",
		rep.Recovered, rep.SnapshotLoaded, rep.Decisions)
	for _, key := range keys {
		req := sched.SubmitRequest{Tenant: "ops", Tasks: 16, Rounds: 1}
		id, err := s2.SubmitIdempotent(sched.JobSpec{
			Tenant: req.Tenant, Run: sched.SyntheticRun(req.Tasks, req.Rounds),
			Request: &req,
		}, key)
		if err != nil {
			log.Fatal(err)
		}
		info, res := s2.Lookup(id)
		fmt.Printf("  key %-15s -> job %d (was %d), state after restart: %s (%v)\n",
			key, id, ids[key], info.State, res == sched.LookupFound)
		if id != ids[key] {
			log.Fatalf("idempotency key %q remapped: %d != %d", key, id, ids[key])
		}
	}
}
