// Circuit: the paper's first evaluation code as a runnable example — an
// unstructured-graph circuit simulation with private/ghost node partitions,
// reductions for charge distribution, and three index launches per
// timestep, validated against a sequential reference.
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"
	"math"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

func main() {
	params := circuit.Params{
		Pieces: 8, NodesPerPiece: 200, WiresPerPiece: 600,
		CrossFraction: 0.1, Seed: 7,
	}
	const iters = 20

	// Parallel run on the runtime.
	c, err := circuit.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true,
	})
	app := circuit.NewApp(c, runtime)
	if err := app.Run(iters); err != nil {
		log.Fatal(err)
	}

	// Sequential reference on an identical graph.
	ref, err := circuit.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	circuit.Reference(ref, iters)

	gotV := region.MustFieldF64(c.Nodes.Root(), circuit.FieldVoltage)
	refV := region.MustFieldF64(ref.Nodes.Root(), circuit.FieldVoltage)
	var maxDiff float64
	c.Nodes.Root().Domain.Each(func(p domain.Point) bool {
		if d := math.Abs(gotV.Get(p) - refV.Get(p)); d > maxDiff {
			maxDiff = d
		}
		return true
	})

	stats := runtime.Stats()
	fmt.Printf("circuit: %d pieces × %d wires, %d timesteps\n",
		params.Pieces, params.WiresPerPiece, iters)
	fmt.Printf("total voltage: %+.6f (reference %+.6f, max divergence %.2e)\n",
		c.TotalVoltage(), ref.TotalVoltage(), maxDiff)
	fmt.Printf("runtime: %d index launches, %d tasks, %d dependence edges, %d fallbacks\n",
		stats.IndexLaunched, stats.TasksExecuted, stats.DepEdges, stats.Fallbacks)
	fmt.Printf("all projection functors are trivial: %d dynamic-check evaluations\n",
		stats.DynamicCheckEvals)
}
