// Fault tolerance: an index-launch program surviving panics, transient
// task failures and the loss of a simulated node.
//
// A seeded FaultInjector kills node 3 mid-run; pending point tasks mapped
// to it are re-mapped onto the surviving nodes through the mapper's
// sharding functor. One task panics on its first attempt and another fails
// transiently; both recover under the retry policy. The program completes
// in degraded mode with the same results a fault-free run produces.
//
//	go run ./examples/faulttol
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

func main() {
	// Kill node 3 once 30 point tasks have been issued — mid-way through
	// the second of three launches. The injector is seeded: repeated runs
	// fail identically.
	injector := rt.NewFaultInjector(42).KillNode(3, 30)

	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true,
		Retry: rt.RetryPolicy{Max: 2, Backoff: 100 * time.Microsecond},
		Fault: injector,
	})

	const fieldVal region.FieldID = 0
	fields := region.MustFieldSpace(region.Field{ID: fieldVal, Name: "val", Kind: region.F64})
	tree := region.MustNewTree("data", domain.Range1(0, 99_999), fields)
	blocks, err := tree.PartitionEqual(tree.Root(), "blocks", 20)
	if err != nil {
		log.Fatal(err)
	}

	// The task increments its block. Two deliberate faults on first
	// attempts: point 5 of round 0 panics, point 12 of round 1 errors.
	// Both are transient — the retried attempt succeeds.
	var panicked, errored atomic.Bool
	inc := runtime.MustRegisterTask("inc", func(ctx *rt.Context) ([]byte, error) {
		round := int64(ctx.Args[0])
		switch {
		case round == 0 && ctx.Point.X() == 5 && panicked.CompareAndSwap(false, true):
			panic("simulated crash in task body")
		case round == 1 && ctx.Point.X() == 12 && errored.CompareAndSwap(false, true):
			return nil, fmt.Errorf("simulated transient failure")
		}
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, acc.Get(p)+1)
			return true
		})
		return nil, nil
	})

	// Three dependent rounds of 20 point tasks each; the node dies during
	// round 2, so rounds 2 and 3 run on three nodes instead of four.
	for round := 0; round < 3; round++ {
		launch := core.MustForall("inc", inc, domain.Range1(0, 19), core.Requirement{
			Partition: blocks,
			Functor:   projection.Identity(1),
			Priv:      privilege.ReadWrite,
			Fields:    []region.FieldID{fieldVal},
		})
		launch.Args = []byte{byte(round)}
		if _, err := runtime.ExecuteIndex(launch); err != nil {
			log.Fatal(err)
		}
	}

	// FenceErr aggregates every terminal failure since the last fence;
	// here the retries absorbed all of them.
	if err := runtime.FenceErr(); err != nil {
		log.Fatalf("launches failed: %v", err)
	}

	stats := runtime.Stats()
	fmt.Printf("fault injection: node failures=%d, tasks re-mapped to survivors=%d\n",
		stats.NodeFailures, stats.Remapped)
	fmt.Printf("recovery: panics recovered=%d, retries=%d, terminal failures=%d\n",
		stats.Panics, stats.Retries, stats.TasksFailed)
	fmt.Printf("surviving nodes: %v\n", runtime.AliveNodes())

	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		log.Fatal(err)
	}
	// Every element incremented once per round, exactly as a fault-free
	// run would have it.
	fmt.Printf("degraded-mode completion: sum=%.0f (want %d), %d tasks executed\n",
		sum, 3*100_000, stats.TasksExecuted)
}
