// Stencil: the PRK-style 2-D star stencil with a disjoint tile partition
// and an aliased halo partition, traced across timesteps — the structured
// workload of the paper's Figures 7–8.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"indexlaunch/internal/apps/stencil"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

func main() {
	params := stencil.Params{N: 256, TilesX: 4, TilesY: 4}
	const iters = 10

	s, err := stencil.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true, Tracing: true,
	})
	app := stencil.NewApp(s, runtime)

	// Trace the iteration body: the first timestep captures the
	// dependence analysis, the rest replay it.
	for i := 0; i < iters; i++ {
		if err := runtime.BeginTrace(1); err != nil {
			log.Fatal(err)
		}
		if err := app.Step(); err != nil {
			log.Fatal(err)
		}
		if err := runtime.EndTrace(1); err != nil {
			log.Fatal(err)
		}
	}
	runtime.Fence()

	norm, err := region.SumF64(s.Grid.Root(), stencil.FieldOut)
	if err != nil {
		log.Fatal(err)
	}
	stats := runtime.Stats()
	fmt.Printf("stencil: %dx%d grid, %dx%d tiles, radius %d, %d timesteps\n",
		params.N, params.N, params.TilesX, params.TilesY, stencil.Radius, iters)
	fmt.Printf("output field sum: %.3f\n", norm)
	fmt.Printf("runtime: %d tasks, %d trace captures, %d replays, %d analyses skipped by tracing\n",
		stats.TasksExecuted, stats.TraceCaptures, stats.TraceReplays, stats.AnalysisSkipped)
}
