// Cluster transport: an index launch whose points execute across real TCP
// sockets. Three wire meshes — one per "process" — run in this one binary
// for demo convenience, but they talk exclusively through localhost
// sockets: frames are varint-framed, CRC-protected and ack-retransmitted
// exactly as they are between the real idxserve -cluster and idxnode
// daemons.
//
// Node 0 hosts the runtime: it ships slice descriptors to the workers over
// the mesh broadcast tree, then drives each remote point through a
// request/response Exec round trip. Worker nodes never see the runtime —
// they serve the task kind from their own registry, exactly like
// cmd/idxnode.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/wire"
)

func main() {
	const nodes = 3

	// Worker "processes": each opens its own TCP listener and serves the
	// "square" task kind. Workers learn each other's addresses from the
	// launcher's handshake; only the launcher needs the table below.
	square := func(task string, point domain.Point, args []byte) ([]byte, error) {
		if task != "square" {
			return nil, fmt.Errorf("unknown task kind %q", task)
		}
		return rt.EncodeF64(float64(point.X() * point.X())), nil
	}
	peers := map[int]string{}
	meshes := make([]*wire.Mesh, nodes)
	for n := 1; n < nodes; n++ {
		fab, err := wire.NewTCP(wire.TCPConfig{Self: n, Listen: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		peers[n] = fab.Addr()
		meshes[n], err = wire.NewMesh(wire.MeshConfig{
			Self: n, Nodes: nodes, Fabric: fab, Exec: square,
			Deliver: func(node int, tag string, payload []byte) {
				// Slice descriptors arrive here; cmd/idxnode records them.
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The launcher: mesh node 0, dialing the worker table.
	fab0, err := wire.NewTCP(wire.TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: peers, Epoch: 1})
	if err != nil {
		log.Fatal(err)
	}
	meshes[0], err = wire.NewMesh(wire.MeshConfig{Self: 0, Nodes: nodes, Fabric: fab0})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			_ = m.Close()
		}
	}()

	// A runtime whose machine is the mesh: node-0-local points run the
	// registered body in-process, remote points travel the sockets.
	runtime := rt.MustNew(rt.Config{
		Nodes: nodes, ProcsPerNode: 2, IndexLaunches: true,
		Cluster: meshes[0],
	})
	defer runtime.Shutdown()

	id := runtime.MustRegisterTask("square", func(ctx *rt.Context) ([]byte, error) {
		return rt.EncodeF64(float64(ctx.Point.X() * ctx.Point.X())), nil
	})

	launch := core.MustForall("square", id, domain.Range1(0, 29))
	fm, err := runtime.ExecuteIndex(launch)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := fm.SumF64()
	if err != nil {
		log.Fatal(err)
	}

	// 30 points block-map over 3 nodes: 10 stay on node 0, 20 execute on
	// the workers over TCP. Σ x² for x = 0..29 is 8555.
	var frames int64
	for _, p := range runtime.Status().Peers {
		frames += p.MsgsSent + p.MsgsRecv
	}
	fmt.Printf("cluster completion: sum=%.0f (want 8555) over %d TCP nodes\n", sum, nodes)
	fmt.Printf("wire traffic: %d frames crossed localhost sockets\n", frames)
}
