// Soleil: the miniature multi-physics code (fluid + particles + DOM
// radiation sweeps). The DOM sweeps launch over 3-d diagonal slices of the
// tile grid with the paper's non-trivial 3-d → 2-d plane-projection
// functors — the case where the static analysis must hand off to the
// dynamic check (§6.2.3).
//
//	go run ./examples/soleil
package main

import (
	"fmt"
	"log"

	"indexlaunch/internal/apps/soleil"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

func main() {
	params := soleil.Params{
		TilesX: 2, TilesY: 2, TilesZ: 2,
		Side: 8, ParticlesPerTile: 64, Octants: 8,
	}
	const iters = 5

	s, err := soleil.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true,
	})
	app := soleil.NewApp(s, runtime)
	if err := app.Run(iters); err != nil {
		log.Fatal(err)
	}

	intensity, err := region.SumF64(s.Cells.Root(), soleil.FieldIntensity)
	if err != nil {
		log.Fatal(err)
	}
	ptemp, err := region.SumF64(s.Particles.Root(), soleil.FieldPTemp)
	if err != nil {
		log.Fatal(err)
	}

	stats := runtime.Stats()
	grid := params.Side * int64(params.TilesX)
	fmt.Printf("soleil: %d³ cells over %dx%dx%d tiles, %d octants, %d timesteps\n",
		grid, params.TilesX, params.TilesY, params.TilesZ, params.Octants, iters)
	fmt.Printf("radiation deposited: %.4f; mean particle temperature: %.2f\n",
		intensity, ptemp/float64(s.Particles.Root().Volume()))
	fmt.Printf("runtime: %d launches (%d compact), %d tasks\n",
		stats.LaunchCalls, stats.IndexLaunched, stats.TasksExecuted)
	fmt.Printf("hybrid analysis: %d dynamic-check evaluations, %d fallbacks\n",
		stats.DynamicCheckEvals, stats.Fallbacks)
	fmt.Println("(non-trivial plane projections verified dynamically; zero fallbacks means all launches were valid)")
}
