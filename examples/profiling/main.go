// Profiling: attach an internal/obs recorder to a real runtime run AND to
// the matching cluster simulation, then analyze both event streams with the
// same tools — per-stage tables, ASCII node timelines, and the critical
// path. The dumped trace.json loads directly in chrome://tracing/Perfetto
// and in cmd/idxprof.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

func main() {
	const pieces, iters = 8, 10

	// --- Real run: the circuit app on internal/rt with profiling on.
	rec := obs.NewRecorder("rt", 4, 1<<14)
	c, err := circuit.Build(circuit.Params{
		Pieces: pieces, NodesPerPiece: 100, WiresPerPiece: 300,
		CrossFraction: 0.1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	runtime := rt.MustNew(rt.Config{
		Nodes: 4, ProcsPerNode: 2,
		DCR: true, IndexLaunches: true, VerifyLaunches: true,
		Profile: rec,
	})
	if err := circuit.NewApp(c, runtime).Run(iters); err != nil {
		log.Fatal(err)
	}
	rec.SetWall(rec.Now())
	real := rec.Snapshot()

	fmt.Println("=== real runtime (internal/rt) ===")
	fmt.Print(obs.RenderSummary(real))
	fmt.Println()
	fmt.Print(obs.RenderTimeline(real, 72))
	fmt.Println()
	fmt.Print(obs.CriticalPath(real).Render(real.WallNS, 6))

	// The dump is Chrome trace_event JSON: load it in chrome://tracing,
	// Perfetto, or idxprof.
	out := filepath.Join(os.TempDir(), "profiling-example-trace.json")
	if err := real.WriteFile(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s; view with: go run ./cmd/idxprof %s\n\n", out, out)

	// --- Simulated run: the same workload through the cost model emits the
	// same event vocabulary on the simulated clock.
	simRec := obs.NewRecorder("sim", pieces, 1<<14)
	if _, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(pieces), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, Tracing: true, DynChecks: true,
		Profile: simRec,
	}, circuit.SimProgram(circuit.SimParams{
		Nodes: pieces, TasksPerNode: 1, WiresPerTask: 2e5, Iters: iters,
	})); err != nil {
		log.Fatal(err)
	}
	simProf := simRec.Snapshot()

	fmt.Println("=== simulated cluster (internal/sim) ===")
	fmt.Print(obs.RenderSummary(simProf))
	fmt.Println()
	fmt.Print(obs.RenderTimeline(simProf, 72))
	fmt.Println()
	fmt.Print(obs.CriticalPath(simProf).Render(simProf.WallNS, 6))
}
