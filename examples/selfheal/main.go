// Self-healing: failure detection, quarantine & rejoin, and speculative
// straggler re-launch — with no explicit KillNode call anywhere.
//
// Heartbeat probes ride the same chaos-injected transport as the slice
// messages, so a seeded partition of the 0↔1 link starves node 1's
// heartbeats. The phi-accrual detector suspects it, the mapper re-maps its
// pending point tasks onto the survivors, and when the partition window
// heals the node is quarantined, resynced and readmitted — all observable
// in the detector's transition log. A second launch then deliberately
// straggles on its home node; the runtime's latency baseline triggers a
// speculative backup on another node, the backup's result commits first,
// and the cancelled original is counted wasted. The final field contents
// match a fault-free run exactly.
//
//	go run ./examples/selfheal
package main

import (
	"fmt"
	"log"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/health"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/xport"
)

func main() {
	// The 0↔1 link goes dark for its first 16 transmissions of probe
	// traffic. Node 1 relays heartbeats for its subtree, so the detector
	// sees a correlated silence — exactly what a real partition looks
	// like. Every probe fate is a pure hash of (seed, link, seq, attempt):
	// reruns produce a byte-identical transition log.
	plan := &xport.ChaosPlan{
		Seed:       3,
		Partitions: []xport.Partition{{A: 0, B: 1, AfterSends: 0, Sends: 16}},
	}

	runtime := rt.MustNew(rt.Config{
		Nodes: 8, ProcsPerNode: 2, IndexLaunches: true,
		Chaos: plan,
		// Short ack timeouts keep the demo snappy.
		Retransmit: xport.RetransmitPolicy{
			Timeout:    200 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond,
		},
		// A detector round every 4 issued points; single-attempt probes so
		// the partition starves heartbeats immediately.
		Heartbeat: rt.HeartbeatPolicy{Every: 4, ProbeAttempts: 1},
		// Speculate against tasks exceeding 2× the p90 execute latency,
		// once 16 samples establish a baseline.
		Speculate: rt.SpeculationPolicy{
			Quantile: 0.9, Multiplier: 2, MinSamples: 16,
			MinDelay: 5 * time.Millisecond,
		},
	})
	defer runtime.Shutdown()

	const fieldVal region.FieldID = 0
	fields := region.MustFieldSpace(region.Field{ID: fieldVal, Name: "val", Kind: region.F64})
	tree := region.MustNewTree("data", domain.Range1(0, 159), fields)
	blocks, err := tree.PartitionEqual(tree.Root(), "blocks", 16)
	if err != nil {
		log.Fatal(err)
	}

	inc := runtime.MustRegisterTask("inc", func(ctx *rt.Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, acc.Get(p)+1)
			return true
		})
		return nil, nil
	})

	// Six rounds of 16 point tasks. The detector runs at issuance
	// boundaries, so suspicion, re-mapping, quarantine and rejoin all
	// happen while these launches flow.
	for round := 0; round < 6; round++ {
		launch := core.MustForall("inc", inc, domain.Range1(0, 15), core.Requirement{
			Partition: blocks,
			Functor:   projection.Identity(1),
			Priv:      privilege.ReadWrite,
			Fields:    []region.FieldID{fieldVal},
		})
		if _, err := runtime.ExecuteIndex(launch); err != nil {
			log.Fatal(err)
		}
	}
	if err := runtime.FenceErr(); err != nil {
		log.Fatalf("launches failed: %v", err)
	}

	fmt.Println("detector transitions (round, node, state change — no KillNode was called):")
	fmt.Print(health.RenderLog(runtime.HealthLog()))
	stats := runtime.Stats()
	fmt.Printf("detection: %d probes (%d failed), suspects=%d rejoins=%d, re-mapped points=%d\n",
		stats.HealthProbes, stats.HealthProbeFails, stats.HealthSuspects,
		stats.HealthRejoins, stats.Remapped)
	fmt.Printf("liveness after healing: %s\n", runtime.HealthCounts())

	// Straggler speculation: the task is pure (it returns a payload) and
	// dawdles only on its home node, watching ctx.Cancelled() like any
	// well-behaved speculated body. The backup attempt lands on another
	// node, returns promptly, and wins the commit race.
	slow := runtime.MustRegisterTask("slow", func(ctx *rt.Context) ([]byte, error) {
		if ctx.Point.X() == 5 && ctx.Node == 5 {
			select {
			case <-ctx.Cancelled():
				return nil, fmt.Errorf("cancelled straggler")
			case <-time.After(10 * time.Second):
			}
		}
		return []byte{byte(ctx.Point.X())}, nil
	})
	fm, err := runtime.ExecuteIndex(core.MustForall("straggle", slow, domain.Range1(0, 7)))
	if err != nil {
		log.Fatal(err)
	}
	if err := fm.WaitErr(); err != nil {
		log.Fatalf("speculated launch failed: %v", err)
	}
	// The future completes when the backup commits; the cancelled original
	// drains asynchronously, so give its accounting a moment.
	deadline := time.Now().Add(5 * time.Second)
	stats = runtime.Stats()
	for stats.SpecWasted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		stats = runtime.Stats()
	}
	fmt.Printf("speculation: %d backups launched, %d won, %d wasted\n",
		stats.SpecLaunched, stats.SpecWon, stats.SpecWasted)

	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		log.Fatal(err)
	}
	// Every element incremented once per round — the fault-free answer,
	// despite a partition, a suspected node and a straggler.
	fmt.Printf("self-heal completion: sum=%.0f (want %d), %d tasks executed\n",
		sum, 6*160, stats.TasksExecuted)
}
