// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§6). One benchmark per experiment:
//
//	go test -bench=Table2 -benchtime=1x .   # dynamic self-check timings
//	go test -bench=Fig5   -benchtime=1x .   # circuit weak scaling curves
//	go test -bench=. -benchmem .            # everything
//
// Figure benchmarks print the regenerated series (the same rows the paper
// plots) once, then time regeneration; table benchmarks measure the real
// dynamic-check implementation directly.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"indexlaunch/internal/bench"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/safety"
	"indexlaunch/internal/sched"
)

var printOnce sync.Map

func benchFigure(b *testing.B, id int, opts bench.Options) {
	gen := bench.Figures()[id]
	if gen == nil {
		b.Fatalf("no generator for figure %d", id)
	}
	if _, done := printOnce.LoadOrStore(fmt.Sprintf("fig%d", id), true); !done {
		b.Logf("\n%s", gen(opts).Render())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := gen(opts)
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig4CircuitStrong regenerates Figure 4 (circuit strong scaling,
// 4 configurations, 1–512 nodes).
func BenchmarkFig4CircuitStrong(b *testing.B) {
	benchFigure(b, 4, bench.Options{Iters: 10})
}

// BenchmarkFig5CircuitWeak regenerates Figure 5 (circuit weak scaling,
// 1–1024 nodes).
func BenchmarkFig5CircuitWeak(b *testing.B) {
	benchFigure(b, 5, bench.Options{Iters: 10})
}

// BenchmarkFig6CircuitWeakOverdecomposed regenerates Figure 6 (circuit weak
// scaling, 10× overdecomposition, tracing off).
func BenchmarkFig6CircuitWeakOverdecomposed(b *testing.B) {
	benchFigure(b, 6, bench.Options{Iters: 10})
}

// BenchmarkFig7StencilStrong regenerates Figure 7 (stencil strong scaling).
func BenchmarkFig7StencilStrong(b *testing.B) {
	benchFigure(b, 7, bench.Options{Iters: 10})
}

// BenchmarkFig8StencilWeak regenerates Figure 8 (stencil weak scaling).
func BenchmarkFig8StencilWeak(b *testing.B) {
	benchFigure(b, 8, bench.Options{Iters: 10})
}

// BenchmarkFig9SoleilFluidWeak regenerates Figure 9 (Soleil-X fluid-only
// weak scaling).
func BenchmarkFig9SoleilFluidWeak(b *testing.B) {
	benchFigure(b, 9, bench.Options{Iters: 10})
}

// BenchmarkFig10SoleilFullWeak regenerates Figure 10 (Soleil-X full
// multi-physics weak scaling, dynamic-check vs no-check vs No-IDX).
func BenchmarkFig10SoleilFullWeak(b *testing.B) {
	benchFigure(b, 10, bench.Options{Iters: 10})
}

// Table 2: per-functor self-check timings. Sub-benchmarks sweep the launch
// domain size; ns/op is the paper's "elapsed time" column.
func BenchmarkTable2SelfCheck(b *testing.B) {
	if _, done := printOnce.LoadOrStore("table2", true); !done {
		b.Logf("\n%s", bench.Table2SelfChecks().Render())
	}
	for fi, c := range bench.Table2Functors(1) {
		fi := fi
		b.Run(c.Label, func(b *testing.B) {
			for _, size := range bench.Table2Sizes {
				size := size
				b.Run(fmt.Sprintf("D=%.0e", float64(size)), func(b *testing.B) {
					f := bench.Table2Functors(size)[fi].Functor
					d := domain.Range1(0, size-1)
					bounds := domain.Rect1(0, size-1)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if r := safety.DynamicSelfCheck(d, bounds, f); !r.Injective {
							b.Fatal("Table 2 functors are safe by construction")
						}
					}
				})
			}
		})
	}
}

// Table 3: multi-argument cross-check timings, 2–5 arguments on one shared
// partition.
func BenchmarkTable3CrossCheck(b *testing.B) {
	if _, done := printOnce.LoadOrStore("table3", true); !done {
		b.Logf("\n%s", bench.Table3CrossChecks().Render())
	}
	for n := 2; n <= 5; n++ {
		n := n
		b.Run(fmt.Sprintf("args=%d", n), func(b *testing.B) {
			for _, size := range bench.Table2Sizes {
				size := size
				b.Run(fmt.Sprintf("D=%.0e", float64(size)), func(b *testing.B) {
					d := domain.Range1(0, size-1)
					bounds := domain.Rect1(0, 2*size-1)
					args := bench.Table3Args(n, size)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if r := safety.DynamicCrossCheck(d, bounds, args); !r.Safe {
							b.Fatal("Table 3 arguments are safe by construction")
						}
					}
				})
			}
		})
	}
}

// Ablation: the paper's linear-time single-mask cross-check versus the
// naive pairwise image-intersection baseline it replaces (§4).
func BenchmarkAblationCrossCheckLinearVsPairwise(b *testing.B) {
	const size = int64(1e4)
	d := domain.Range1(0, size-1)
	bounds := domain.Rect1(0, 2*size-1)
	args := bench.Table3Args(4, size)
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			safety.DynamicCrossCheck(d, bounds, args)
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			safety.PairwiseCrossCheck(d, bounds, args)
		}
	})
}

// BenchmarkSchedTrace times the multi-tenant scheduler's virtual-time
// driver over a seeded 2000-job trace per discipline — the deterministic
// workload BENCH_sched.json snapshots (idxserve -bench -json).
func BenchmarkSchedTrace(b *testing.B) {
	weights := map[string]int{"a": 1, "b": 2, "c": 4}
	disciplines := []struct {
		name string
		mk   func() sched.Queue
	}{
		{"fifo", sched.NewFIFO},
		{"priority", sched.NewStrictPriority},
		{"fair", func() sched.Queue { return sched.NewWeightedFair(1, weights, 1) }},
	}
	tr := sched.GenTrace(42, sched.TraceOptions{
		Jobs: 2000, MaxPriority: 3, MaxInterArrival: 1, MaxCost: 3,
		MinService: 1, MaxService: 6,
	})
	for _, d := range disciplines {
		b.Run(d.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sched.RunTrace(tr, sched.TraceConfig{Executors: 4, Queue: d.mk()})
				if res.Makespan == 0 {
					b.Fatal("empty scheduler run")
				}
			}
		})
	}
}
