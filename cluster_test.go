package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"indexlaunch/internal/trace"
)

// Multi-process cluster smoke test: three idxnode worker daemons and one
// idxserve -cluster launcher, each a separate OS process, talking over real
// localhost TCP sockets. A traced synthetic job must run to completion with
// launch points executing on every worker, and its trace.LaunchShape must
// be identical to the same job run on the in-process loopback path — the
// cluster changes where bodies run, never the launch structure.

// buildBinary compiles one cmd/ package into the test's temp dir.
func buildBinary(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// startProc starts bin with args and scans its stdout until every wanted
// banner substring has appeared, returning the full output seen so far.
// The process is SIGKILLed (and reaped) on test cleanup.
func startProc(t *testing.T, bin string, args []string, wants ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGKILL)
		_, _ = cmd.Process.Wait()
	})
	buf := make([]byte, 4096)
	var seen string
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, w := range wants {
			if !strings.Contains(seen, w) {
				all = false
				break
			}
		}
		if all {
			go func() { _, _ = io.Copy(io.Discard, stdout) }()
			return cmd, seen
		}
		n, rerr := stdout.Read(buf)
		seen += string(buf[:n])
		if rerr != nil && n == 0 {
			break
		}
	}
	t.Fatalf("%s banner %q not seen; got: %q", filepath.Base(bin), wants, seen)
	return nil, ""
}

// bannerAddr extracts the address that follows marker on one stdout line.
func bannerAddr(t *testing.T, seen, marker string) string {
	t.Helper()
	i := strings.Index(seen, marker)
	if i < 0 {
		t.Fatalf("marker %q not in %q", marker, seen)
	}
	rest := seen[i+len(marker):]
	if j := strings.IndexAny(rest, " \n"); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}

// runTracedJob submits one synthetic job against base, waits for it to
// finish, and returns its launch shape from the trace API.
func runTracedJob(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"tenant":"a","tasks":24,"rounds":2}`))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var sub struct {
		ID int64 `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.ID == 0 {
		t.Fatalf("submit: id %d code %d err %v", sub.ID, resp.StatusCode, err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, sub.ID))
		if err != nil {
			t.Fatalf("GET /jobs/%d: %v", sub.ID, err)
		}
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %d: %v", sub.ID, err)
		}
		if resp.StatusCode == http.StatusOK && info.State == "done" {
			break
		}
		if info.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job %d state %s", sub.ID, info.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// -trace-sample 1 head-samples everything, so the finished job's trace
	// is retained and queryable by decimal job ID.
	var tr trace.Trace
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/trace/%d", base, sub.ID))
		if err != nil {
			t.Fatalf("GET /trace/%d: %v", sub.ID, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&tr)
		code := resp.StatusCode
		resp.Body.Close()
		if err == nil && code == http.StatusOK && len(tr.Spans) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for job %d never retained (last: %d %v)", sub.ID, code, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return trace.LaunchShape(tr.Spans)
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	idxnode := buildBinary(t, "idxnode")
	idxserve := buildBinary(t, "idxserve")

	// Three workers, mesh nodes 1..3 of 4, each with a metrics endpoint so
	// the test can interrogate its execution counters.
	const nodes = 4
	wireAddrs := make([]string, 0, nodes-1)
	statusAddrs := make([]string, 0, nodes-1)
	for n := 1; n < nodes; n++ {
		_, seen := startProc(t, idxnode, []string{
			"-node", fmt.Sprint(n), "-nodes", fmt.Sprint(nodes),
			"-listen", "127.0.0.1:0", "-addr", "127.0.0.1:0",
		}, "listening on ", "metrics on http://")
		wireAddrs = append(wireAddrs, bannerAddr(t, seen, "listening on "))
		statusAddrs = append(statusAddrs, bannerAddr(t, seen, "metrics on http://"))
	}

	_, seen := startProc(t, idxserve, []string{
		"-addr", "127.0.0.1:0", "-cluster", strings.Join(wireAddrs, ","),
		"-procs", "2", "-tick", "2ms", "-trace-sample", "1",
	}, "http://", "cluster mode")
	base := "http://" + bannerAddr(t, seen, "http://")

	clusterShape := runTracedJob(t, base)
	if !strings.Contains(clusterShape, "issue:"+syntheticTag+" execute=24") {
		t.Fatalf("cluster launch shape: %q", clusterShape)
	}

	// Every worker process must have executed launch points: the job's
	// domain block-maps 24 points over 4 nodes, so nodes 1..3 each own a
	// slice of every round.
	for i, sa := range statusAddrs {
		resp, err := http.Get("http://" + sa + "/statusz")
		if err != nil {
			t.Fatalf("worker %d statusz: %v", i+1, err)
		}
		// metrics.Handler wraps the StatusFunc payload under "status".
		var wrapped struct {
			Status struct {
				Node     int   `json:"node"`
				Executed int64 `json:"executed"`
				Slices   int   `json:"slices"`
			} `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&wrapped)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("worker %d statusz decode: %v", i+1, err)
		}
		st := wrapped.Status
		if st.Node != i+1 || st.Executed == 0 {
			t.Fatalf("worker %d executed %d points (statusz: %+v)", i+1, st.Executed, st)
		}
		if st.Slices == 0 {
			t.Fatalf("worker %d received no slice descriptors", i+1)
		}
	}

	// The same job on the in-process loopback path (same machine shape, no
	// cluster) must produce the identical launch structure.
	_, seen = startProc(t, idxserve, []string{
		"-addr", "127.0.0.1:0", "-nodes", fmt.Sprint(nodes), "-executors", "1",
		"-procs", "2", "-tick", "2ms", "-trace-sample", "1",
	}, "http://")
	loopBase := "http://" + bannerAddr(t, seen, "http://")
	loopShape := runTracedJob(t, loopBase)

	if clusterShape != loopShape {
		t.Fatalf("launch shape diverged:\ncluster:\n%s\nloopback:\n%s", clusterShape, loopShape)
	}
}

const syntheticTag = "sched_spin"
