module indexlaunch

go 1.22
