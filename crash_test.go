package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Crash-injection harness for the durable scheduler: build idxserve, SIGKILL
// it at seeded random points mid-run, restart against the same journal
// directory, and require the final state to be exactly what a crash-free run
// produces.
//
// Two properties are locked:
//
//   - Trace mode: the decision log printed after any number of kills and
//     restarts is byte-identical to the uninterrupted run's (no job lost,
//     none double-executed — either would perturb the log).
//   - Serve mode: a client resubmitting with its Idempotency-Key after the
//     server is killed gets its original job IDs back, and every job reaches
//     a queryable terminal state.
//
// Seeds come from CRASH_SEEDS (comma-separated, default "1,7,42") — the CI
// crash-recovery matrix shards over it. On a trace-mode mismatch the failing
// seed's journal directory is copied to ./crash-artifacts/seed<N> for the
// workflow to upload.

func crashSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("CRASH_SEEDS")
	if env == "" {
		env = "1,7,42"
	}
	var seeds []int64
	for _, part := range strings.Split(env, ",") {
		var s int64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &s); err != nil {
			t.Fatalf("bad CRASH_SEEDS entry %q", part)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// buildIdxserve compiles the binary once per test binary invocation.
func buildIdxserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "idxserve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/idxserve")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build idxserve: %v\n%s", err, out)
	}
	return bin
}

func traceArgs(seed int64, dir string) []string {
	args := []string{"-trace", "-seed", fmt.Sprint(seed), "-jobs", "120",
		"-queue", "fair", "-weights", "a=1,b=2,c=4", "-rate", "4", "-burst", "8"}
	if dir != "" {
		args = append(args, "-data", dir, "-snapshot-every", "64")
	}
	return args
}

// preserveWAL copies the journal directory into ./crash-artifacts/seed<N>
// so CI can upload it from a failing run.
func preserveWAL(t *testing.T, seed int64, dir string) {
	t.Helper()
	dst := filepath.Join("crash-artifacts", fmt.Sprintf("seed%d", seed))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("preserve wal: %v", err)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Logf("preserve wal: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err == nil {
			_ = os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644)
		}
	}
	t.Logf("journal preserved in %s", dst)
}

// TestCrashRecoveryTraceDeterministic is the headline property: SIGKILL the
// durable trace run at seeded random delays, restart until it completes, and
// byte-compare the final decision log (and summary) against the crash-free
// baseline — which is itself byte-compared against the plain in-memory run.
func TestCrashRecoveryTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	bin := buildIdxserve(t)
	for _, seed := range crashSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Baseline 1: plain in-memory run.
			plain, err := exec.Command(bin, traceArgs(seed, "")...).Output()
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			// Baseline 2: durable, uninterrupted.
			cleanDir := t.TempDir()
			clean, err := exec.Command(bin, traceArgs(seed, cleanDir)...).Output()
			if err != nil {
				t.Fatalf("clean durable run: %v", err)
			}
			if !bytes.Equal(plain, clean) {
				t.Fatalf("durable output differs from plain output before any crash:\n%s",
					firstDiff(plain, clean))
			}

			// Crash runs: pace ops, kill at seeded random delays.
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(seed))
			kills := 0
			var out []byte
			for attempt := 0; attempt < 20; attempt++ {
				cmd := exec.Command(bin, append(traceArgs(seed, dir), "-op-delay", "300us")...)
				var stdout bytes.Buffer
				cmd.Stdout = &stdout
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				if kills < 3 {
					// Kill mid-run: the trace takes roughly 120 jobs x ~3
					// ops x 300us ≈ 100ms+; land inside it.
					delay := time.Duration(5+rng.Intn(60)) * time.Millisecond
					time.Sleep(delay)
					_ = cmd.Process.Kill() // SIGKILL: no cleanup, no final sync
					_ = cmd.Wait()
					kills++
					continue
				}
				if err := cmd.Wait(); err != nil {
					t.Fatalf("final resume: %v", err)
				}
				out = stdout.Bytes()
				break
			}
			if out == nil {
				t.Fatal("trace never ran to completion")
			}
			if !bytes.Equal(out, clean) {
				preserveWAL(t, seed, dir)
				t.Fatalf("decision log after %d kills diverged from crash-free run:\n%s",
					kills, firstDiff(clean, out))
			}
			t.Logf("seed %d: byte-identical after %d SIGKILLs", seed, kills)
		})
	}
}

func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, w, g)
		}
	}
	return "(outputs equal?)"
}

// TestCrashRecoveryServeIdempotent covers the live server: submit jobs with
// idempotency keys, SIGKILL the server, restart on the same journal, and
// check resubmitted keys return the original IDs while all submitted jobs
// reach terminal states queryable over HTTP.
func TestCrashRecoveryServeIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	bin := buildIdxserve(t)
	dir := t.TempDir()

	startServer := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dir,
			"-fsync", "always", "-executors", "2", "-tick", "2ms")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Parse the bound address from the startup banner.
		buf := make([]byte, 4096)
		var seen string
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			n, rerr := stdout.Read(buf)
			seen += string(buf[:n])
			if i := strings.Index(seen, "http://"); i >= 0 {
				rest := seen[i+len("http://"):]
				if j := strings.IndexAny(rest, " \n"); j >= 0 {
					go func() { _, _ = io.Copy(io.Discard, stdout) }()
					return cmd, "http://" + rest[:j]
				}
			}
			if rerr != nil {
				break
			}
		}
		t.Fatalf("server banner not seen; got: %q", seen)
		return nil, ""
	}

	type subResp struct {
		ID int64 `json:"id"`
	}
	submit := func(base, key string, tenant string) (int64, int) {
		req, _ := http.NewRequest("POST", base+"/jobs",
			strings.NewReader(fmt.Sprintf(`{"tenant":%q,"tasks":4,"rounds":1}`, tenant)))
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		defer resp.Body.Close()
		var sr subResp
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return sr.ID, resp.StatusCode
	}

	cmd, base := startServer()
	ids := map[string]int64{}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("crash-key-%d", i)
		id, code := submit(base, key, []string{"a", "b"}[i%2])
		if code != http.StatusAccepted || id == 0 {
			t.Fatalf("submit %s = id %d code %d", key, id, code)
		}
		ids[key] = id
	}
	// SIGKILL: no drain, no snapshot, no goodbye.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	cmd2, base2 := startServer()
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGKILL)
		_, _ = cmd2.Process.Wait()
	}()
	// Exactly-once resubmission: every key maps to its original ID.
	for key, want := range ids {
		got, code := submit(base2, key, "a")
		if code != http.StatusAccepted || got != want {
			t.Fatalf("resubmit %s after crash = id %d code %d, want id %d", key, got, code, want)
		}
	}
	// Every job reaches a queryable terminal state (done: the synthetic
	// bodies are deterministic and re-run after recovery if needed).
	deadline := time.Now().Add(30 * time.Second)
	for key, id := range ids {
		for {
			resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", base2, id))
			if err != nil {
				t.Fatalf("GET /jobs/%d: %v", id, err)
			}
			var info struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decode job %d: %v", id, err)
			}
			if resp.StatusCode == http.StatusOK && (info.State == "done" || info.State == "failed") {
				if info.State != "done" {
					t.Errorf("job %d (%s) after recovery: state %s", id, key, info.State)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d (%s) never reached terminal state (last: %d %s)",
					id, key, resp.StatusCode, info.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
