package machine

import (
	"testing"
	"testing/quick"
)

func TestNetworkTransfer(t *testing.T) {
	n := Network{LatencySec: 1e-6, BytesPerSec: 1e9}
	if got := n.Transfer(0, 0, 1e6); got != 0 {
		t.Errorf("intra-node transfer = %v, want 0", got)
	}
	want := 1e-6 + 1e6/1e9
	if got := n.Transfer(0, 1, 1e6); got != want {
		t.Errorf("transfer = %v, want %v", got, want)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := PizDaint(16).Validate(); err != nil {
		t.Errorf("PizDaint spec invalid: %v", err)
	}
	bad := []Spec{
		{Nodes: 0, GPUs: 1, Net: Aries()},
		{Nodes: 1, GPUs: 0, Net: Aries()},
		{Nodes: 1, GPUs: 1, Net: Network{LatencySec: -1, BytesPerSec: 1}},
		{Nodes: 1, GPUs: 1, Net: Network{LatencySec: 0, BytesPerSec: 0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestBroadcastDepth(t *testing.T) {
	want := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3, 15: 4, 1022: 9, 1023: 10}
	for n, d := range want {
		if got := BroadcastDepth(n); got != d {
			t.Errorf("depth(%d) = %d, want %d", n, got, d)
		}
	}
}

func TestTreeDepthLogarithmic(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 1024: 10}
	for n, d := range cases {
		if got := TreeDepth(n); got != d {
			t.Errorf("TreeDepth(%d) = %d, want %d", n, got, d)
		}
	}
}

// Property: broadcast depth grows monotonically and logarithmically.
func TestBroadcastDepthMonotonicProperty(t *testing.T) {
	f := func(a uint16) bool {
		n := int(a)
		return BroadcastDepth(n) <= BroadcastDepth(n+1) &&
			BroadcastDepth(n+1) <= BroadcastDepth(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearCubicFactor(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 12, 16, 27, 32, 64, 100, 512, 1024} {
		a, b, c := NearCubicFactor(n)
		if a*b*c != n {
			t.Errorf("n=%d: %d*%d*%d != n", n, a, b, c)
		}
		if a > b || b > c {
			t.Errorf("n=%d: factors not ordered: %d,%d,%d", n, a, b, c)
		}
	}
	if a, b, c := NearCubicFactor(64); a != 4 || b != 4 || c != 4 {
		t.Errorf("64 = %d*%d*%d, want 4*4*4", a, b, c)
	}
	if a, b, c := NearCubicFactor(8); a != 2 || b != 2 || c != 2 {
		t.Errorf("8 = %d*%d*%d, want 2*2*2", a, b, c)
	}
}

func TestNearSquareFactor(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 12, 16, 100, 512, 1024} {
		a, b := NearSquareFactor(n)
		if a*b != n || a > b {
			t.Errorf("n=%d: %d*%d", n, a, b)
		}
	}
	if a, b := NearSquareFactor(16); a != 4 || b != 4 {
		t.Errorf("16 = %d*%d", a, b)
	}
	if a, b := NearSquareFactor(512); a != 16 || b != 32 {
		t.Errorf("512 = %d*%d, want 16*32", a, b)
	}
}
