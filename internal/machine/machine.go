// Package machine describes the simulated cluster used by the scaling
// experiments: nodes with a dedicated runtime-analysis core and one or more
// accelerator processors, a latency/bandwidth network, and the broadcast
// trees used to distribute slices in centralized (non-DCR) mode.
//
// The machine description stands in for Piz Daint in the paper's evaluation
// (one Xeon + one P100 per node, Aries interconnect); see DESIGN.md for the
// substitution argument.
package machine

import (
	"fmt"
	"math"
)

// Network models a point-to-point interconnect with uniform latency and
// bandwidth. Messages cost Latency + bytes/Bandwidth seconds.
type Network struct {
	// LatencySec is the one-way small-message latency in seconds.
	LatencySec float64
	// BytesPerSec is the per-link bandwidth.
	BytesPerSec float64
}

// Transfer returns the time to move bytes between two distinct nodes.
// Transfers within a node are free.
func (n Network) Transfer(src, dst int, bytes float64) float64 {
	if src == dst {
		return 0
	}
	return n.LatencySec + bytes/n.BytesPerSec
}

// Aries returns network constants loosely modeled on a Cray Aries
// interconnect: ~1.3 µs latency, ~10 GB/s effective per-link bandwidth.
func Aries() Network {
	return Network{LatencySec: 1.3e-6, BytesPerSec: 10e9}
}

// Spec describes a homogeneous cluster.
type Spec struct {
	// Nodes is the node count.
	Nodes int
	// GPUs is the number of accelerator processors per node (Piz Daint: 1).
	GPUs int
	// Net is the interconnect.
	Net Network
}

// PizDaint returns a cluster spec shaped like the paper's machine at the
// given node count.
func PizDaint(nodes int) Spec {
	return Spec{Nodes: nodes, GPUs: 1, Net: Aries()}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("machine: spec requires >= 1 node, got %d", s.Nodes)
	}
	if s.GPUs < 1 {
		return fmt.Errorf("machine: spec requires >= 1 GPU per node, got %d", s.GPUs)
	}
	if s.Net.BytesPerSec <= 0 || s.Net.LatencySec < 0 {
		return fmt.Errorf("machine: invalid network %+v", s.Net)
	}
	return nil
}

// BroadcastDepth returns the number of tree hops from the root (node 0) to
// node n in a binary broadcast tree over nodes 0..Nodes-1: node 0 is depth
// 0, nodes 1–2 depth 1, 3–6 depth 2, and so on. Distributing one message to
// all nodes therefore takes O(log N) hop times, the well-known result the
// paper builds on (§5, §7).
// Nodes are arranged with node i's children at 2i+1 and 2i+2, so the depth
// of node n is floor(log2(n+1)).
func BroadcastDepth(n int) int {
	if n <= 0 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(n) + 1)))
}

// TreeDepth returns the total depth of a binary broadcast tree over n nodes:
// the number of sequential hop rounds needed to reach every node.
func TreeDepth(n int) int {
	if n <= 1 {
		return 0
	}
	return BroadcastDepth(n - 1)
}

// NearCubicFactor factors n into (a, b, c) with a·b·c == n and the three
// factors as close as possible, preferring a <= b <= c. Used to lay out
// node grids for 3-d domains (e.g. DOM sweeps).
func NearCubicFactor(n int) (int, int, int) {
	if n < 1 {
		return 1, 1, 1
	}
	best := [3]int{1, 1, n}
	bestScore := math.Inf(1)
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		rem := n / a
		for b := a; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			c := rem / b
			score := float64(c - a)
			if score < bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// NearSquareFactor factors n into (a, b) with a·b == n, a <= b, minimizing
// b-a. Used for 2-d node grids (stencil).
func NearSquareFactor(n int) (int, int) {
	if n < 1 {
		return 1, 1
	}
	a := int(math.Sqrt(float64(n)))
	for ; a > 1; a-- {
		if n%a == 0 {
			break
		}
	}
	if a < 1 {
		a = 1
	}
	return a, n / a
}
