package sched

import (
	"math"
	"sort"
)

// Seeded arrival traces and the virtual-time driver: the scheduling
// equivalent of the chaos property suite. GenTrace derives a multi-tenant
// arrival sequence from a seed with the same splitmix64 construction the
// chaos plan uses — every value a pure function of (seed, draw index) — and
// RunTrace plays it through the policy core on a virtual clock, so the
// decision log, the fair-share split and the queue-wait distribution are
// pure functions of (trace, config). The CI seed matrix holds RenderLog
// byte-identical across runs, which extends the chaos/soak determinism
// guarantees to scheduling.

// TraceJob is one arrival of a seeded trace.
type TraceJob struct {
	// At is the arrival tick.
	At int64
	// Tenant, Priority, Cost, Deadline mirror JobSpec.
	Tenant   string
	Priority int
	Cost     int64
	Deadline int64
	// Service is the job's execution time in ticks once dispatched.
	Service int64
}

// Trace is a seeded arrival sequence, in arrival order.
type Trace struct {
	Seed int64
	Jobs []TraceJob
}

// TraceOptions shapes GenTrace's arrival process. Zero fields take the
// defaults noted on each.
type TraceOptions struct {
	// Jobs is the number of arrivals; 0 defaults to 1000.
	Jobs int
	// Tenants are the submitting tenants, drawn uniformly; empty defaults
	// to ["a", "b", "c"].
	Tenants []string
	// MaxPriority draws priorities uniformly from [0, MaxPriority]; 0
	// keeps every job at priority 0.
	MaxPriority int
	// MaxInterArrival draws inter-arrival gaps uniformly from
	// [0, MaxInterArrival]; 0 packs all arrivals at tick 0 (a pure
	// backlog, the fair-share convergence regime).
	MaxInterArrival int64
	// MaxCost draws costs uniformly from [1, MaxCost]; 0 fixes cost 1.
	MaxCost int64
	// MinService/MaxService bound the uniform service-time draw in ticks;
	// zero values default to [4, 16].
	MinService, MaxService int64
}

// splitmix64 is the same stateless generator the chaos plan hashes with:
// every draw is a pure function of the evolving state, with no shared
// global stream.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn draws uniformly from [0, n); n <= 0 returns 0.
func (r *splitmix64) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// GenTrace derives a deterministic arrival trace from seed.
func GenTrace(seed int64, opt TraceOptions) Trace {
	if opt.Jobs <= 0 {
		opt.Jobs = 1000
	}
	if len(opt.Tenants) == 0 {
		opt.Tenants = []string{"a", "b", "c"}
	}
	minSvc, maxSvc := opt.MinService, opt.MaxService
	if minSvc <= 0 {
		minSvc = 4
	}
	if maxSvc < minSvc {
		maxSvc = minSvc + 12
	}
	rng := &splitmix64{s: uint64(seed)}
	tr := Trace{Seed: seed, Jobs: make([]TraceJob, 0, opt.Jobs)}
	at := int64(0)
	for i := 0; i < opt.Jobs; i++ {
		if opt.MaxInterArrival > 0 {
			at += rng.intn(opt.MaxInterArrival + 1)
		}
		j := TraceJob{
			At:      at,
			Tenant:  opt.Tenants[rng.intn(int64(len(opt.Tenants)))],
			Cost:    1,
			Service: minSvc + rng.intn(maxSvc-minSvc+1),
		}
		if opt.MaxPriority > 0 {
			j.Priority = int(rng.intn(int64(opt.MaxPriority) + 1))
		}
		if opt.MaxCost > 1 {
			j.Cost = 1 + rng.intn(opt.MaxCost)
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	return tr
}

// TraceConfig configures a virtual-time run.
type TraceConfig struct {
	// Executors is the virtual executor-slot count; 0 defaults to 2.
	Executors int
	// Queue is the discipline; nil defaults to FIFO.
	Queue Queue
	// Admission is the admission config (zero value admits everything up
	// to the default bound).
	Admission Admission
	// CapacityAt, when non-nil, supplies the capacity factor fed to
	// admission at each tick — a deterministic stand-in for the health
	// layer's live-node fraction.
	CapacityAt func(tick int64) float64
}

// TraceResult is a virtual-time run's outcome.
type TraceResult struct {
	// Log is the full decision log; RenderLog(Log) is byte-identical
	// across runs for a fixed (trace, config).
	Log []Decision
	// Completed / Rejected / Expired count outcomes per tenant.
	Completed map[string]int
	Rejected  map[string]int
	Expired   map[string]int
	// ServedCost sums dispatched job cost per tenant — the fair-share
	// measure.
	ServedCost map[string]int64
	// Waits are the queue waits (enqueue to admit) of dispatched jobs, in
	// ticks, in admission order.
	Waits []int64
	// Makespan is the virtual tick the last job completed at.
	Makespan int64
	// JobsPerKTick is completed jobs per 1000 virtual ticks.
	JobsPerKTick float64
}

// P99Wait returns the 99th-percentile queue wait in ticks (0 when nothing
// was dispatched).
func (r TraceResult) P99Wait() int64 { return r.waitQuantile(0.99) }

func (r TraceResult) waitQuantile(q float64) int64 {
	if len(r.Waits) == 0 {
		return 0
	}
	sorted := append([]int64(nil), r.Waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunTrace plays tr through the policy core on a virtual clock. Within each
// tick the order is fixed: completions due this tick (ascending job ID),
// then arrivals, then dispatch until slots or queue run dry; then the clock
// advances (refilling admission buckets). Every step is deterministic, so
// two runs of the same (trace, config) produce byte-identical rendered
// logs.
func RunTrace(tr Trace, cfg TraceConfig) TraceResult {
	slots := cfg.Executors
	if slots < 1 {
		slots = 2
	}
	c := newPolicy(cfg.Queue, newAdmission(cfg.Admission), slots)
	res := TraceResult{
		Completed:  map[string]int{},
		Rejected:   map[string]int{},
		Expired:    map[string]int{},
		ServedCost: map[string]int64{},
	}

	// finishing maps completion tick -> jobs, served in ascending-ID order.
	finishing := map[int64][]*Job{}
	service := map[JobID]int64{}
	inFlight := 0
	next := 0
	var id JobID

	for {
		if cfg.CapacityAt != nil {
			c.adm.setCapacity(cfg.CapacityAt(c.tick))
		}
		// 1. Completions due now.
		if done := finishing[c.tick]; len(done) > 0 {
			sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
			for _, j := range done {
				c.complete(j, nil)
				res.Completed[j.Spec.Tenant]++
				inFlight--
			}
			delete(finishing, c.tick)
		}
		// 2. Arrivals due now.
		for next < len(tr.Jobs) && tr.Jobs[next].At <= c.tick {
			a := tr.Jobs[next]
			next++
			id++
			j := &Job{ID: id, Spec: JobSpec{
				Tenant: a.Tenant, Priority: a.Priority, Cost: a.Cost, Deadline: a.Deadline,
			}}
			service[id] = a.Service
			if _, rej := c.submit(j); rej != nil {
				res.Rejected[a.Tenant]++
			}
		}
		// 3. Dispatch onto free slots.
		for {
			j, expired := c.dispatch()
			for _, e := range expired {
				res.Expired[e.Spec.Tenant]++
			}
			if j == nil {
				break
			}
			res.ServedCost[j.Spec.Tenant] += j.Spec.cost()
			res.Waits = append(res.Waits, c.tick-j.enqueueTick)
			svc := service[j.ID]
			if svc < 1 {
				svc = 1
			}
			finishing[c.tick+svc] = append(finishing[c.tick+svc], j)
			inFlight++
		}
		if next >= len(tr.Jobs) && inFlight == 0 && c.q.Len() == 0 {
			break
		}
		c.advance()
	}
	res.Log = c.log
	res.Makespan = c.tick
	var completed int
	for _, n := range res.Completed {
		completed += n
	}
	if res.Makespan > 0 {
		res.JobsPerKTick = float64(completed) * 1000 / float64(res.Makespan)
	}
	return res
}
