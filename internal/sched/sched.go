package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/trace"
)

// Config configures a live Scheduler.
type Config struct {
	// Executors is the executor-pool size: how many jobs run concurrently,
	// each on its own long-lived rt.Runtime. 0 defaults to 2.
	Executors int
	// Runtime is the executor runtime template — the shared simulated
	// machine every job runs over. The zero value defaults to 4 nodes x 2
	// procs on the centralized path (which gives every executor a reusable
	// message transport).
	Runtime rt.Config
	// Setup, when non-nil, runs once per executor runtime before it serves
	// jobs — the place to register the task variants job bodies launch.
	Setup func(*rt.Runtime) error
	// Queue is the discipline; nil defaults to FIFO. The scheduler
	// serializes access, so implementations need no locking.
	Queue Queue
	// Admission configures backpressure (queue bounds, per-tenant quotas,
	// token-bucket rates).
	Admission Admission
	// Preemption enables cooperative preemption: when a submission's
	// priority exceeds a running job's and no executor is free, the lowest
	// -priority running job is asked to yield (JobContext.Preempted); if
	// its body returns ErrPreempted it is re-queued and re-run later.
	Preemption bool
	// TickEvery is the logical tick period: admission buckets refill and
	// node-health capacity feeds back once per tick. 0 defaults to 5ms.
	TickEvery time.Duration
	// Metrics attaches a live metrics registry; nil keeps the scheduler's
	// counters in a private registry (Status still works) and skips the
	// timing-dependent histogram observations, mirroring rt.Config.Metrics.
	Metrics *metrics.Registry
	// Profile attaches an observability recorder: enqueue marks, admit
	// (queue-residency) spans, preempt marks and drain spans are recorded
	// into the same stream the runtime's pipeline stages go to. Nil
	// disables profiling.
	Profile *obs.Recorder
	// Trace attaches the end-to-end tracing layer: every admitted job gets
	// a root span context derived from TraceSeed and its ID, sched stamps
	// its enqueue/admit/preempt events with child spans, the executor
	// runtime propagates the context through its launch pipeline (and the
	// transport's message headers), and the tracer tail-samples the
	// assembled trace at job finish. Requires Profile — spans reach the
	// tracer through the recorder's sink. Nil disables tracing.
	Trace *trace.Tracer
	// TraceSeed seeds root trace-ID derivation; 0 defaults to 1. Fixed
	// seeds give reproducible trace IDs for seeded workloads.
	TraceSeed uint64
	// TraceSlowQuantile is the live sched_job_latency_ns quantile wired
	// into the tracer as its slow-trace threshold: a finished job whose
	// latency reaches that quantile's current value is retained. 0
	// defaults to 0.99; negative leaves the tracer's own threshold alone.
	TraceSlowQuantile float64
	// Durable configures the write-ahead job journal (Metrics/Prof inside
	// it are ignored — the scheduler supplies its own). An empty Dir runs
	// in-memory only. With a Dir set, every admission decision is journaled
	// before it is acknowledged and New recovers whatever state the
	// directory holds; a journal write failure after startup is fail-stop
	// (panic) — continuing would acknowledge work that could silently
	// vanish.
	Durable DurableOptions
	// Kinds is the registry used to rebuild journaled job bodies at
	// recovery (jobs that arrived through the HTTP API carry their wire
	// request). Nil defaults to DefaultKinds.
	Kinds map[string]KindFunc
	// TerminalRetention bounds how many finished jobs stay queryable; 0
	// defaults to 4096. Evicted (and never-assigned) IDs are still
	// distinguished by Lookup: gone versus unknown.
	TerminalRetention int
}

// tenantState caches one tenant's resolved metric instruments and the
// mutex-guarded counters Status reads back.
type tenantState struct {
	enq, adm, rej, comp, fail int64
	running                   int

	mEnq, mAdm, mComp, mFail *metrics.Counter
	mDepth                   *metrics.Gauge
	mRej                     map[string]*metrics.Counter
}

// executor is one pooled worker: a goroutine owning a long-lived runtime.
type executor struct {
	id int
	rt *rt.Runtime
}

// Child-key layout under a job's root span context. The enqueue mark is a
// fixed child; per-attempt events pack the attempt number above a small
// kind index so preemption re-runs never collide; the runtime's per-attempt
// context hangs off tcJobExec and partitions its own key space below it.
const (
	tcJobEnqueue = 1
	tcJobAdmit   = 2
	tcJobPreempt = 3
	tcJobExec    = 4
)

// attemptTC derives the span context for attempt n's kind-k event.
func attemptTC(root obs.TraceRef, n int, k uint64) obs.TraceRef {
	return root.Child(uint64(n)<<8 | k)
}

// Scheduler is the concurrent front end over the policy core: Submit runs
// admission and wakes the executor pool; executors dispatch from the queue,
// run job bodies on their runtimes, fence, recycle and report back. All
// core access is serialized under mu.
type Scheduler struct {
	cfg       Config
	tickEvery time.Duration

	mu   sync.Mutex
	cond *sync.Cond
	core *policy
	// jobs holds live (queued or running) jobs only; finished jobs move to
	// the terminal ring, with their live *Job kept in finished (same
	// eviction) so Wait and errors.Is see the original error values.
	jobs     map[JobID]*Job
	finished map[JobID]*Job
	terminal *terminalRing
	dedup    *dedupRing
	nextID   JobID

	stopped  bool
	drainNS  int64 // drain-span start, 0 until draining
	capacity float64

	// Durability state: jn is nil when Config.Durable.Dir is empty.
	jn           *journal
	jmx          *metrics.Durability
	report       RecoveryReport
	recoveredRun []*Job // jobs running at the crash, awaiting executor pickup

	execs []*executor

	reg       *metrics.Registry
	mx        *metrics.Scheduler
	mxOn      bool
	prof      *obs.Recorder
	tracer    *trace.Tracer
	traceSeed uint64
	epoch     time.Time

	tenants map[string]*tenantState

	tickStop chan struct{}
	wg       sync.WaitGroup
}

// doneRetention bounds how many completed jobs stay queryable via Job().
const doneRetention = 4096

// New builds and starts a scheduler: the executor pool spins up
// immediately and jobs run as they are admitted.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 5 * time.Millisecond
	}
	rtc := cfg.Runtime
	if rtc.Nodes == 0 {
		rtc = rt.Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// Executors share the scheduler's registry and the caller's recorder:
	// pipeline families are registered idempotently, so the pool aggregates
	// into one set of idx_*/xport_* instruments beside the sched_* families,
	// and /metrics serves both even when the registry is the private one.
	rtc.Metrics = reg
	rtc.Profile = cfg.Profile
	s := &Scheduler{
		cfg:       cfg,
		tickEvery: cfg.TickEvery,
		capacity:  1,
		reg:       reg,
		mx:        metrics.NewScheduler(reg),
		mxOn:      cfg.Metrics != nil,
		prof:      cfg.Profile,
		tracer:    cfg.Trace,
		traceSeed: cfg.TraceSeed,
		epoch:     time.Now(),
		tenants:   map[string]*tenantState{},
		tickStop:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.traceSeed == 0 {
		s.traceSeed = 1
	}
	if s.tracer != nil {
		// Span-stamped events reach the tracer through the recorder's sink
		// tee; untraced events never touch it.
		if s.prof != nil {
			s.prof.SetSink(s.tracer.Sink())
		}
		if q := cfg.TraceSlowQuantile; q >= 0 {
			if q == 0 {
				q = 0.99
			}
			lat := s.mx.JobLatency
			s.tracer.SetSlowThreshold(func() int64 { return lat.Quantile(q) })
		}
	}
	if s.prof != nil {
		// Ring-overflow drops: events overwritten before any snapshot read
		// them. Pull-style so the recorder's record path stays branch-free.
		prof := s.prof
		reg.GaugeFunc("obs_dropped_events",
			"Profile events overwritten in the recorder rings before being snapshot.",
			prof.Dropped)
	}
	if cfg.Durable.Dir != "" {
		kinds := cfg.Kinds
		if kinds == nil {
			kinds = DefaultKinds()
		}
		rebuild := func(req *SubmitRequest) RunFunc {
			kind := req.Kind
			if kind == "" {
				kind = "synthetic"
			}
			kf := kinds[kind]
			if kf == nil {
				return nil
			}
			run, err := kf(*req)
			if err != nil {
				return nil
			}
			return run
		}
		do := cfg.Durable
		s.jmx = metrics.NewDurability(reg)
		do.Metrics = s.jmx
		do.Prof = cfg.Profile
		jn, rc, err := openDurable(do, s.timed(), cfg.Queue, newAdmission(cfg.Admission),
			cfg.Executors, rebuild, cfg.TerminalRetention)
		if err != nil {
			return nil, fmt.Errorf("sched: open journal: %w", err)
		}
		s.jn = jn
		s.core = rc.core
		s.jobs = rc.jobs
		s.finished = map[JobID]*Job{}
		s.terminal = rc.terminal
		s.dedup = rc.dedup
		s.nextID = rc.nextID
		s.report = rc.report
		s.restoreAfterRecovery()
		// A restart opens a new serving epoch: a drain in progress at the
		// crash (its decision stays in the log) does not gate the recovered
		// scheduler's admission.
		s.core.draining = false
	} else {
		s.core = newPolicy(cfg.Queue, newAdmission(cfg.Admission), cfg.Executors)
		s.jobs = map[JobID]*Job{}
		s.finished = map[JobID]*Job{}
		s.terminal = newTerminalRing(cfg.TerminalRetention)
		s.dedup = newDedupRing()
	}
	for i := 0; i < cfg.Executors; i++ {
		r, err := rt.New(rtc)
		if err != nil {
			return nil, fmt.Errorf("sched: executor %d: %w", i, err)
		}
		if cfg.Setup != nil {
			if err := cfg.Setup(r); err != nil {
				return nil, fmt.Errorf("sched: executor %d setup: %w", i, err)
			}
		}
		s.execs = append(s.execs, &executor{id: i, rt: r})
	}
	for _, ex := range s.execs {
		s.wg.Add(1)
		go s.executorLoop(ex)
	}
	s.wg.Add(1)
	go s.tickLoop()
	return s, nil
}

// restoreAfterRecovery rebuilds the live bookkeeping the journal does not
// carry: per-tenant counters recomputed from the recovered decision log
// (process-lifetime metric counters intentionally restart at zero), tenant
// running gauges, and the jobs that were running at the crash queued for
// direct executor pickup — they re-execute without new admit decisions, so
// the decision log stays byte-identical to an uninterrupted run's. Called
// from New before the pool starts.
func (s *Scheduler) restoreAfterRecovery() {
	for _, d := range s.core.log {
		if d.Tenant == "" {
			continue
		}
		ts := s.tenant(d.Tenant)
		switch d.Kind {
		case KindEnqueue:
			ts.enq++
		case KindAdmit:
			ts.adm++
		case KindReject:
			ts.rej++
		case KindComplete:
			if d.Detail == "err" {
				ts.fail++
			} else {
				ts.comp++
			}
		case KindExpire:
			ts.fail++
		}
	}
	ids := make([]JobID, 0, len(s.core.running))
	for id := range s.core.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j := s.core.running[id]
		s.tenant(j.Spec.Tenant).running++
		s.recoveredRun = append(s.recoveredRun, j)
	}
	s.syncDepthGauges("")
}

// Recovery reports what startup recovery found (the zero report when the
// scheduler is not durable or the directory was fresh).
func (s *Scheduler) Recovery() RecoveryReport { return s.report }

// journalOp appends one op to the journal (no-op when not durable) and
// takes the cadence snapshot when due. Journal failure is fail-stop: the
// scheduler cannot keep acknowledging work it can no longer make durable.
// Caller holds mu.
func (s *Scheduler) journalOp(o op) {
	if s.jn == nil {
		return
	}
	if err := s.jn.logOp(o); err != nil {
		panic(fmt.Sprintf("sched: journal append failed (fail-stop): %v", err))
	}
	if s.jn.wantSnapshot() {
		s.snapshotLocked()
	}
}

// snapshotLocked captures and writes a journal snapshot. Caller holds mu.
func (s *Scheduler) snapshotLocked() {
	st, err := captureSnapshot(s.core, s.jobs, s.nextID, s.capacity, s.terminal, s.dedup, nil)
	if err == nil {
		err = s.jn.snapshot(st)
	}
	if err != nil {
		panic(fmt.Sprintf("sched: journal snapshot failed (fail-stop): %v", err))
	}
}

// moveToTerminal retires a finished job into the bounded terminal ring,
// keeping its live *Job queryable (same eviction) so Wait returns original
// error values. Caller holds mu.
func (s *Scheduler) moveToTerminal(j *Job, failed bool, msg string) {
	delete(s.jobs, j.ID)
	for _, old := range s.terminal.add(TerminalJob{
		ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
		Failed: failed, Attempts: j.attempts, Error: msg,
	}) {
		delete(s.finished, old)
	}
	s.finished[j.ID] = j
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Scheduler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the registry the scheduler records into (the caller's,
// or the private one backing Status). Serve it with metrics.Serve — or use
// sched.Serve, which also mounts the job-submission API.
func (s *Scheduler) Registry() *metrics.Registry { return s.reg }

// Tracer returns the attached tracing layer; nil when tracing is off.
// trace's handlers and status methods are nil-safe, so callers may mount
// and query it unconditionally.
func (s *Scheduler) Tracer() *trace.Tracer { return s.tracer }

// nowNS reads the scheduler's timebase: the profiler's clock when attached
// (so admit spans and the runtime's pipeline spans share one axis), wall
// time since creation otherwise.
func (s *Scheduler) nowNS() int64 {
	if s.prof != nil {
		return s.prof.Now()
	}
	return time.Since(s.epoch).Nanoseconds()
}

func (s *Scheduler) timed() bool { return s.prof != nil || s.mxOn }

// tenant returns (creating on first use) the tenant's cached state and
// resolved instruments. Caller holds mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{
			mEnq:   s.mx.Enqueued.With(name),
			mAdm:   s.mx.Admitted.With(name),
			mComp:  s.mx.Completed.With(name),
			mFail:  s.mx.Failed.With(name),
			mDepth: s.mx.TenantQueueDepth.With(name),
			mRej:   map[string]*metrics.Counter{},
		}
		s.tenants[name] = ts
	}
	return ts
}

func (ts *tenantState) rejCounter(s *Scheduler, tenant, reason string) *metrics.Counter {
	c := ts.mRej[reason]
	if c == nil {
		c = s.mx.Rejected.With(tenant, reason)
		ts.mRej[reason] = c
	}
	return c
}

// syncDepthGauges refreshes the queue-depth gauges. Caller holds mu.
func (s *Scheduler) syncDepthGauges(tenant string) {
	s.mx.QueueDepth.Set(int64(s.core.q.Len()))
	s.mx.RunningJobs.Set(int64(len(s.core.running)))
	if tenant != "" {
		s.tenant(tenant).mDepth.Set(int64(s.core.queued[tenant]))
	}
}

// Submit runs admission for spec. On success the job is queued (and an
// executor woken) and its ID returned; on backpressure the error matches
// ErrAdmissionRejected and carries a retry-after hint scaled by the tick
// period.
func (s *Scheduler) Submit(spec JobSpec) (JobID, error) { return s.submitKeyed(spec, "") }

// SubmitIdempotent is Submit carrying an idempotency key: a key the
// scheduler has already accepted a job under returns that job's ID without
// a new submission. The key table is journaled (through submit ops and
// snapshots), so a client resubmitting after a server crash still gets its
// original job — exactly-once submission across restarts. Rejected
// submissions do not consume the key.
func (s *Scheduler) SubmitIdempotent(spec JobSpec, key string) (JobID, error) {
	return s.submitKeyed(spec, key)
}

func (s *Scheduler) submitKeyed(spec JobSpec, key string) (JobID, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.Run == nil {
		return 0, fmt.Errorf("sched: job spec for tenant %q has no Run body", spec.Tenant)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrSchedulerClosed
	}
	if key != "" {
		if id, ok := s.dedup.get(key); ok {
			s.mu.Unlock()
			return id, nil
		}
	}
	s.nextID++
	j := &Job{ID: s.nextID, Spec: spec, done: make(chan struct{})}
	ts := s.tenant(spec.Tenant)
	_, rej := s.core.submit(j)
	if rej != nil {
		rej.RetryAfter = time.Duration(rej.RetryAfterTicks) * s.tickEvery
		ts.rej++
		ts.rejCounter(s, spec.Tenant, rej.Reason).Inc()
		// Journaled even though rejected: replay reproduces the reject
		// decision and keeps ID assignment dense.
		s.journalOp(op{K: opSubmit, Job: j.ID, Spec: wireFromJob(j), Key: key})
		s.mu.Unlock()
		return 0, rej
	}
	j.state = JobQueued
	s.jobs[j.ID] = j
	s.dedup.put(key, j.ID)
	ts.enq++
	ts.mEnq.Inc()
	s.journalOp(op{K: opSubmit, Job: j.ID, Spec: wireFromJob(j), Key: key})
	if s.timed() {
		j.enqueueNS = s.nowNS()
		if s.tracer != nil {
			// Root derivation is a pure function of (seed, ID): a seeded
			// workload reproduces its trace IDs run over run.
			j.tc = obs.NewTraceRef(s.traceSeed ^ uint64(j.ID)*0x9e3779b97f4a7c15)
			s.tracer.Begin(j.tc, uint64(j.ID), spec.Tenant, j.enqueueNS)
		}
		if s.prof != nil {
			s.prof.MarkTC(j.tc.Child(tcJobEnqueue), 0, obs.StageEnqueue, "", "tenant:"+spec.Tenant,
				domain.Pt1(int64(j.ID)), j.enqueueNS)
		}
	}
	s.syncDepthGauges(spec.Tenant)
	if s.cfg.Preemption && s.core.free == 0 {
		s.maybePreempt(spec.Priority)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	return j.ID, nil
}

// maybePreempt asks the lowest-priority running job (strictly below prio,
// deterministic tie-break on job ID) to yield. Caller holds mu.
func (s *Scheduler) maybePreempt(prio int) {
	var victim *Job
	for _, j := range s.core.running {
		if j.preemptRequested || j.Spec.Priority >= prio {
			continue
		}
		if victim == nil || j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.ID < victim.ID) {
			victim = j
		}
	}
	if victim != nil && victim.pctx != nil {
		victim.preemptRequested = true
		close(victim.pctx.preempt)
	}
}

// executorLoop is one pool worker: dispatch under mu, run outside it.
func (s *Scheduler) executorLoop(ex *executor) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		resumed := false
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			// Jobs recovered mid-run resume directly: their admit decision
			// is already in the log, so they bypass dispatch (which would
			// record a second one).
			if len(s.recoveredRun) > 0 {
				j = s.recoveredRun[0]
				s.recoveredRun = s.recoveredRun[1:]
				resumed = true
				break
			}
			var expired []*Job
			j, expired = s.core.dispatch()
			if j != nil || len(expired) > 0 {
				var jid JobID
				if j != nil {
					jid = j.ID
				}
				s.journalOp(op{K: opDispatch, Job: jid})
			}
			s.finishExpiredLocked(expired)
			if j != nil {
				break
			}
			s.cond.Wait()
		}
		j.state = JobRunning
		j.pctx = &JobContext{Job: j.ID, Tenant: j.Spec.Tenant, Attempt: j.attempts,
			Trace: j.tc, preempt: make(chan struct{})}
		ts := s.tenant(j.Spec.Tenant)
		if !resumed {
			ts.adm++
			ts.running++
			ts.mAdm.Inc()
			var admitNS int64
			if s.timed() {
				admitNS = s.nowNS()
				s.mx.QueueWait.ObserveExemplar(admitNS-j.enqueueNS, j.tc.Trace)
				if s.prof != nil {
					// The admit span carries the executor that dispatched the
					// job as its node and the job ID as its point.
					s.prof.SpanTC(attemptTC(j.tc, j.attempts, tcJobAdmit), ex.id,
						obs.StageAdmit, "", "tenant:"+j.Spec.Tenant,
						domain.Pt1(int64(j.ID)), j.enqueueNS, admitNS)
				}
			}
		}
		s.syncDepthGauges(j.Spec.Tenant)
		jc := j.pctx
		s.mu.Unlock()

		err := s.runJob(ex, j, jc)

		s.mu.Lock()
		ts.running--
		if err == ErrPreempted && !s.stopped && !s.core.draining {
			s.core.preempt(j)
			s.journalOp(op{K: opPreempt, Job: j.ID})
			j.state = JobQueued
			j.preemptRequested = false
			j.pctx = nil
			j.preempted = true
			s.mx.Preemptions.Inc()
			if s.prof != nil {
				s.prof.MarkTC(attemptTC(j.tc, j.attempts, tcJobPreempt), ex.id,
					obs.StagePreempt, "", "tenant:"+j.Spec.Tenant,
					domain.Pt1(int64(j.ID)), s.nowNS())
			}
			s.syncDepthGauges(j.Spec.Tenant)
		} else {
			s.finishLocked(j, err)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// runJob executes one attempt: the body, then a fence (any task failure
// becomes the job's error), then a runtime recycle so per-job transport and
// bookkeeping state does not accumulate across the pool's lifetime.
func (s *Scheduler) runJob(ex *executor, j *Job, jc *JobContext) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("sched: job %d panicked: %v", j.ID, rec)
		}
	}()
	if j.Spec.Run == nil {
		// A recovered job whose body could not be rebuilt (submitted
		// programmatically, so no wire form survived the restart).
		return ErrNotRecoverable
	}
	var execTC obs.TraceRef
	var execStart int64
	if j.tc.Valid() {
		// Everything the runtime issues for this attempt hangs off one
		// per-attempt child, so a preemption re-run gets fresh span
		// identities. Recycle below clears it. The attempt span itself is
		// recorded after the body returns — without it the launches' spans
		// would dangle as orphan roots in the assembled tree.
		execTC = attemptTC(j.tc, jc.Attempt, tcJobExec)
		ex.rt.SetTraceRef(execTC)
		execStart = s.nowNS()
	}
	err = j.Spec.Run(jc, ex.rt)
	if execTC.Valid() {
		s.prof.SpanTC(execTC, ex.id, obs.StageExecute, "", "attempt:"+strconv.Itoa(jc.Attempt),
			domain.Pt1(int64(j.ID)), execStart, s.nowNS())
	}
	ferr := ex.rt.FenceErr()
	if err == nil {
		err = ferr
	}
	if rerr := ex.rt.Recycle(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// finishLocked completes j: the core op, the journal append, then the ack
// (closing j.done) — in that order, so a completion is never observable
// before it is durable per the fsync policy. Caller holds mu.
func (s *Scheduler) finishLocked(j *Job, err error) {
	s.core.complete(j, err)
	ts := s.tenant(j.Spec.Tenant)
	msg := ""
	if err != nil {
		j.state = JobFailed
		ts.fail++
		ts.mFail.Inc()
		msg = err.Error()
	} else {
		j.state = JobDone
		ts.comp++
		ts.mComp.Inc()
	}
	j.err = err
	s.journalOp(op{K: opComplete, Job: j.ID, Fail: err != nil, Msg: msg})
	s.moveToTerminal(j, err != nil, msg)
	close(j.done)
	var latNS int64
	if s.timed() && j.enqueueNS > 0 {
		latNS = s.nowNS() - j.enqueueNS
		s.mx.JobLatency.ObserveExemplar(latNS, j.tc.Trace)
	}
	if s.tracer != nil && j.tc.Valid() {
		s.tracer.Finish(j.tc, s.nowNS(), trace.Outcome{
			Failed:    err != nil,
			Preempted: j.preempted,
			Retried:   j.attempts > 1,
			LatencyNS: latNS,
			Err:       msg,
		})
	}
	s.syncDepthGauges(j.Spec.Tenant)
	if s.drainNS != 0 && s.core.idle() && s.prof != nil {
		s.prof.Span(0, obs.StageDrain, "", "drain", domain.Point{}, s.drainNS, s.nowNS())
		s.drainNS = 0
	}
}

// finishExpiredLocked fails jobs dropped past their deadline. The expire
// decisions are part of the dispatch op the caller already journaled.
// Caller holds mu.
func (s *Scheduler) finishExpiredLocked(expired []*Job) {
	for _, j := range expired {
		// Expiry happened at dispatch, before the job took a slot, so only
		// the job's own lifecycle needs closing.
		ts := s.tenant(j.Spec.Tenant)
		j.state = JobFailed
		j.err = ErrDeadlineExpired
		ts.fail++
		ts.mFail.Inc()
		s.mx.Expired.Inc()
		s.moveToTerminal(j, true, ErrDeadlineExpired.Error())
		close(j.done)
		if s.tracer != nil && j.tc.Valid() {
			var latNS int64
			if s.timed() && j.enqueueNS > 0 {
				latNS = s.nowNS() - j.enqueueNS
			}
			s.tracer.Finish(j.tc, s.nowNS(), trace.Outcome{
				Failed: true, LatencyNS: latNS, Err: ErrDeadlineExpired.Error(),
			})
		}
		s.syncDepthGauges(j.Spec.Tenant)
	}
}

// tickLoop advances logical time: capacity feedback from the executor
// runtimes' health state, then a bucket refill.
func (s *Scheduler) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.tickEvery)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
		}
		// Read health outside mu: CapacityFactor takes each runtime's
		// issuance lock, which a running job may hold.
		cap := 1.0
		for _, ex := range s.execs {
			if f := ex.rt.CapacityFactor(); f < cap {
				cap = f
			}
		}
		s.mu.Lock()
		if cap != s.capacity {
			s.journalOp(op{K: opCapacity, Cap: cap})
		}
		s.capacity = cap
		s.core.adm.setCapacity(cap)
		s.mx.CapacityPermille.Set(int64(cap * 1000))
		s.core.advance()
		if s.jn != nil {
			// Empty ticks coalesce: the journal folds the backlog into one
			// advance record ahead of the next real op.
			s.jn.tick()
		}
		s.mu.Unlock()
	}
}

// SetCapacityFactor overrides the health-fed capacity factor until the next
// tick re-reads it — a test hook and an operator brake.
func (s *Scheduler) SetCapacityFactor(f float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f != s.capacity {
		s.journalOp(op{K: opCapacity, Cap: f})
	}
	s.capacity = f
	s.core.adm.setCapacity(f)
	s.mx.CapacityPermille.Set(int64(s.core.adm.capacity * 1000))
}

// Wait blocks until job id finishes and returns its error. Jobs finished
// before this process started (known only from the recovered terminal ring)
// report a reconstructed error; unknown or retired IDs return an error.
func (s *Scheduler) Wait(id JobID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		j, ok = s.finished[id]
	}
	if !ok {
		tj, found := s.terminal.get(id)
		s.mu.Unlock()
		if !found {
			return fmt.Errorf("sched: unknown job %d", id)
		}
		if tj.Failed {
			if tj.Error != "" {
				return errors.New(tj.Error)
			}
			return fmt.Errorf("sched: job %d failed", id)
		}
		return nil
	}
	s.mu.Unlock()
	<-j.done
	return j.err
}

// JobInfo is one job's queryable snapshot (the GET /jobs payload).
type JobInfo struct {
	ID       JobID  `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// Job returns a job's current snapshot.
func (s *Scheduler) Job(id JobID) (JobInfo, bool) {
	info, res := s.Lookup(id)
	return info, res == LookupFound
}

// LookupResult distinguishes why a job snapshot is unavailable: Gone means
// the ID was assigned (finished and evicted from retention, or consumed by
// a rejected submission) while Unknown means it never was — the difference
// between HTTP 410 and 404. IDs are dense, so the split is exact.
type LookupResult uint8

const (
	LookupFound LookupResult = iota
	LookupGone
	LookupUnknown
)

// Lookup returns a job's snapshot, checking live jobs, retained finished
// jobs, and the recovered terminal ring in that order.
func (s *Scheduler) Lookup(id JobID) (JobInfo, LookupResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		j, ok = s.finished[id]
	}
	if ok {
		info := JobInfo{ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
			State: j.state.String(), Attempts: j.attempts}
		if j.err != nil {
			info.Error = j.err.Error()
		}
		return info, LookupFound
	}
	if tj, found := s.terminal.get(id); found {
		state := JobDone
		if tj.Failed {
			state = JobFailed
		}
		return JobInfo{ID: tj.ID, Tenant: tj.Tenant, Priority: tj.Priority,
			State: state.String(), Attempts: tj.Attempts, Error: tj.Error}, LookupFound
	}
	if id >= 1 && id <= s.nextID {
		return JobInfo{}, LookupGone
	}
	return JobInfo{}, LookupUnknown
}

// Log returns a copy of the decision log so far.
func (s *Scheduler) Log() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Decision, len(s.core.log))
	copy(out, s.core.log)
	return out
}

// Drain stops admission (submissions fail with reason "draining") and
// blocks until every queued and running job has finished, or ctx expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	if !s.core.draining {
		s.core.drainNow()
		s.journalOp(op{K: opDrain})
		s.mx.Drains.Inc()
		if s.prof != nil {
			s.drainNS = s.nowNS()
		}
	}
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	for !s.core.idle() && ctx.Err() == nil && !s.stopped {
		s.cond.Wait()
	}
	idle := s.core.idle()
	if idle && s.drainNS != 0 && s.prof != nil {
		s.prof.Span(0, obs.StageDrain, "", "drain", domain.Point{}, s.drainNS, s.nowNS())
		s.drainNS = 0
	}
	s.mu.Unlock()
	if !idle {
		return fmt.Errorf("sched: drain: %w", ctx.Err())
	}
	return nil
}

// Shutdown stops the scheduler: queued jobs that never ran fail with
// ErrSchedulerClosed, running jobs finish, executors exit, and their
// runtimes shut down. Idempotent.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	close(s.tickStop)
	// Fail everything still queued; executors drain their running jobs. The
	// abandon is one journaled core op, so replay reproduces the shutdown
	// rejects exactly.
	abandoned := s.core.abandon()
	s.journalOp(op{K: opAbandon})
	for _, j := range abandoned {
		ts := s.tenant(j.Spec.Tenant)
		ts.rej++
		ts.rejCounter(s, j.Spec.Tenant, ReasonShutdown).Inc()
		j.state = JobFailed
		j.err = ErrSchedulerClosed
		s.moveToTerminal(j, true, ErrSchedulerClosed.Error())
		close(j.done)
		// Abandoned-at-shutdown traces are noise, not signal: discard the
		// buffers instead of retaining one failed trace per queued job.
		s.tracer.Abort(j.tc)
	}
	s.syncDepthGauges("")
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	for _, ex := range s.execs {
		ex.rt.Shutdown()
	}
	if s.jn != nil {
		// Final snapshot bounds the next start's replay, then release the
		// journal. Executors have exited, so no appends race this.
		s.mu.Lock()
		s.snapshotLocked()
		s.mu.Unlock()
		_ = s.jn.log.Close()
	}
}

// TenantStatus is one tenant's row of the /statusz queue table.
type TenantStatus struct {
	Tenant    string `json:"tenant"`
	Weight    int    `json:"weight"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Enqueued  int64  `json:"enqueued"`
	Admitted  int64  `json:"admitted"`
	Rejected  int64  `json:"rejected"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	// Tokens is the admission bucket level; -1 for unlimited tenants.
	Tokens float64 `json:"tokens"`
}

// DurabilityStatus is the /statusz durability panel: live journal position,
// snapshot debt, and what startup recovery rebuilt.
type DurabilityStatus struct {
	Dir           string `json:"dir"`
	Fsync         string `json:"fsync"`
	LastSeq       uint64 `json:"last_seq"`
	SnapshotSeq   uint64 `json:"snapshot_seq"`
	SinceSnapshot int    `json:"since_snapshot"`
	Segments      int    `json:"segments"`
	Appends       uint64 `json:"appends"`
	Snapshots     uint64 `json:"snapshots"`
	// TerminalRetained / DedupKeys size the bounded retention rings.
	TerminalRetained int `json:"terminal_retained"`
	DedupKeys        int `json:"dedup_keys"`
	// Recovery describes what this process rebuilt at startup.
	Recovery RecoveryReport `json:"recovery"`
}

// Status is the scheduler's point-in-time introspection snapshot: the
// /statusz payload, including the per-tenant queue table.
type Status struct {
	Queue            string         `json:"queue"`
	Executors        int            `json:"executors"`
	Draining         bool           `json:"draining,omitempty"`
	QueueDepth       int            `json:"queue_depth"`
	Running          int            `json:"running"`
	CapacityPermille int64          `json:"capacity_permille"`
	Decisions        int64          `json:"decisions"`
	Tenants          []TenantStatus `json:"tenants"`
	// Durability is present when the write-ahead journal is enabled.
	Durability *DurabilityStatus `json:"durability,omitempty"`
	// Tracing is the recent-traces panel, present when a tracer is
	// attached.
	Tracing *trace.Status `json:"tracing,omitempty"`
	// ObsDroppedEvents counts profile events overwritten in the recorder
	// rings before any snapshot read them (present with a recorder).
	ObsDroppedEvents int64 `json:"obs_dropped_events,omitempty"`
}

// Status snapshots the scheduler. Safe for concurrent use; intended as a
// metrics.StatusFunc.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Queue:            s.core.q.Name(),
		Executors:        s.cfg.Executors,
		Draining:         s.core.draining,
		QueueDepth:       s.core.q.Len(),
		Running:          len(s.core.running),
		CapacityPermille: int64(s.capacity * 1000),
		Decisions:        s.core.seq,
	}
	if s.tracer != nil {
		ts := s.tracer.StatusInfo()
		st.Tracing = &ts
	}
	if s.prof != nil {
		st.ObsDroppedEvents = s.prof.Dropped()
	}
	if s.jn != nil {
		ws := s.jn.log.Stats()
		st.Durability = &DurabilityStatus{
			Dir:              s.cfg.Durable.Dir,
			Fsync:            s.cfg.Durable.Fsync.String(),
			LastSeq:          ws.LastSeq,
			SnapshotSeq:      ws.SnapshotSeq,
			SinceSnapshot:    s.jn.sinceSnap,
			Segments:         ws.Segments,
			Appends:          uint64(ws.Appends),
			Snapshots:        uint64(ws.Snapshots),
			TerminalRetained: len(s.terminal.order),
			DedupKeys:        len(s.dedup.order),
			Recovery:         s.report,
		}
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.tenants[name]
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant: name, Weight: s.cfg.Admission.Weight(name),
			Queued: s.core.queued[name], Running: ts.running,
			Enqueued: ts.enq, Admitted: ts.adm, Rejected: ts.rej,
			Completed: ts.comp, Failed: ts.fail,
			Tokens: s.core.adm.tokens(name),
		})
	}
	return st
}
