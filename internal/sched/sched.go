package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
)

// Config configures a live Scheduler.
type Config struct {
	// Executors is the executor-pool size: how many jobs run concurrently,
	// each on its own long-lived rt.Runtime. 0 defaults to 2.
	Executors int
	// Runtime is the executor runtime template — the shared simulated
	// machine every job runs over. The zero value defaults to 4 nodes x 2
	// procs on the centralized path (which gives every executor a reusable
	// message transport).
	Runtime rt.Config
	// Setup, when non-nil, runs once per executor runtime before it serves
	// jobs — the place to register the task variants job bodies launch.
	Setup func(*rt.Runtime) error
	// Queue is the discipline; nil defaults to FIFO. The scheduler
	// serializes access, so implementations need no locking.
	Queue Queue
	// Admission configures backpressure (queue bounds, per-tenant quotas,
	// token-bucket rates).
	Admission Admission
	// Preemption enables cooperative preemption: when a submission's
	// priority exceeds a running job's and no executor is free, the lowest
	// -priority running job is asked to yield (JobContext.Preempted); if
	// its body returns ErrPreempted it is re-queued and re-run later.
	Preemption bool
	// TickEvery is the logical tick period: admission buckets refill and
	// node-health capacity feeds back once per tick. 0 defaults to 5ms.
	TickEvery time.Duration
	// Metrics attaches a live metrics registry; nil keeps the scheduler's
	// counters in a private registry (Status still works) and skips the
	// timing-dependent histogram observations, mirroring rt.Config.Metrics.
	Metrics *metrics.Registry
	// Profile attaches an observability recorder: enqueue marks, admit
	// (queue-residency) spans, preempt marks and drain spans are recorded
	// into the same stream the runtime's pipeline stages go to. Nil
	// disables profiling.
	Profile *obs.Recorder
}

// tenantState caches one tenant's resolved metric instruments and the
// mutex-guarded counters Status reads back.
type tenantState struct {
	enq, adm, rej, comp, fail int64
	running                   int

	mEnq, mAdm, mComp, mFail *metrics.Counter
	mDepth                   *metrics.Gauge
	mRej                     map[string]*metrics.Counter
}

// executor is one pooled worker: a goroutine owning a long-lived runtime.
type executor struct {
	id int
	rt *rt.Runtime
}

// Scheduler is the concurrent front end over the policy core: Submit runs
// admission and wakes the executor pool; executors dispatch from the queue,
// run job bodies on their runtimes, fence, recycle and report back. All
// core access is serialized under mu.
type Scheduler struct {
	cfg       Config
	tickEvery time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	core    *policy
	jobs    map[JobID]*Job
	doneIDs []JobID // completed-job retention ring
	nextID  JobID

	stopped  bool
	drainNS  int64 // drain-span start, 0 until draining
	capacity float64

	execs []*executor

	reg   *metrics.Registry
	mx    *metrics.Scheduler
	mxOn  bool
	prof  *obs.Recorder
	epoch time.Time

	tenants map[string]*tenantState

	tickStop chan struct{}
	wg       sync.WaitGroup
}

// doneRetention bounds how many completed jobs stay queryable via Job().
const doneRetention = 4096

// New builds and starts a scheduler: the executor pool spins up
// immediately and jobs run as they are admitted.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 5 * time.Millisecond
	}
	rtc := cfg.Runtime
	if rtc.Nodes == 0 {
		rtc = rt.Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// Executors share the scheduler's registry and the caller's recorder:
	// pipeline families are registered idempotently, so the pool aggregates
	// into one set of idx_*/xport_* instruments beside the sched_* families,
	// and /metrics serves both even when the registry is the private one.
	rtc.Metrics = reg
	rtc.Profile = cfg.Profile
	s := &Scheduler{
		cfg:       cfg,
		tickEvery: cfg.TickEvery,
		core:      newPolicy(cfg.Queue, newAdmission(cfg.Admission), cfg.Executors),
		jobs:      map[JobID]*Job{},
		capacity:  1,
		reg:       reg,
		mx:        metrics.NewScheduler(reg),
		mxOn:      cfg.Metrics != nil,
		prof:      cfg.Profile,
		epoch:     time.Now(),
		tenants:   map[string]*tenantState{},
		tickStop:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Executors; i++ {
		r, err := rt.New(rtc)
		if err != nil {
			return nil, fmt.Errorf("sched: executor %d: %w", i, err)
		}
		if cfg.Setup != nil {
			if err := cfg.Setup(r); err != nil {
				return nil, fmt.Errorf("sched: executor %d setup: %w", i, err)
			}
		}
		s.execs = append(s.execs, &executor{id: i, rt: r})
	}
	for _, ex := range s.execs {
		s.wg.Add(1)
		go s.executorLoop(ex)
	}
	s.wg.Add(1)
	go s.tickLoop()
	return s, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config) *Scheduler {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the registry the scheduler records into (the caller's,
// or the private one backing Status). Serve it with metrics.Serve — or use
// sched.Serve, which also mounts the job-submission API.
func (s *Scheduler) Registry() *metrics.Registry { return s.reg }

// nowNS reads the scheduler's timebase: the profiler's clock when attached
// (so admit spans and the runtime's pipeline spans share one axis), wall
// time since creation otherwise.
func (s *Scheduler) nowNS() int64 {
	if s.prof != nil {
		return s.prof.Now()
	}
	return time.Since(s.epoch).Nanoseconds()
}

func (s *Scheduler) timed() bool { return s.prof != nil || s.mxOn }

// tenant returns (creating on first use) the tenant's cached state and
// resolved instruments. Caller holds mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{
			mEnq:   s.mx.Enqueued.With(name),
			mAdm:   s.mx.Admitted.With(name),
			mComp:  s.mx.Completed.With(name),
			mFail:  s.mx.Failed.With(name),
			mDepth: s.mx.TenantQueueDepth.With(name),
			mRej:   map[string]*metrics.Counter{},
		}
		s.tenants[name] = ts
	}
	return ts
}

func (ts *tenantState) rejCounter(s *Scheduler, tenant, reason string) *metrics.Counter {
	c := ts.mRej[reason]
	if c == nil {
		c = s.mx.Rejected.With(tenant, reason)
		ts.mRej[reason] = c
	}
	return c
}

// syncDepthGauges refreshes the queue-depth gauges. Caller holds mu.
func (s *Scheduler) syncDepthGauges(tenant string) {
	s.mx.QueueDepth.Set(int64(s.core.q.Len()))
	s.mx.RunningJobs.Set(int64(len(s.core.running)))
	if tenant != "" {
		s.tenant(tenant).mDepth.Set(int64(s.core.queued[tenant]))
	}
}

// Submit runs admission for spec. On success the job is queued (and an
// executor woken) and its ID returned; on backpressure the error matches
// ErrAdmissionRejected and carries a retry-after hint scaled by the tick
// period.
func (s *Scheduler) Submit(spec JobSpec) (JobID, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.Run == nil {
		return 0, fmt.Errorf("sched: job spec for tenant %q has no Run body", spec.Tenant)
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return 0, ErrSchedulerClosed
	}
	s.nextID++
	j := &Job{ID: s.nextID, Spec: spec, done: make(chan struct{})}
	ts := s.tenant(spec.Tenant)
	_, rej := s.core.submit(j)
	if rej != nil {
		rej.RetryAfter = time.Duration(rej.RetryAfterTicks) * s.tickEvery
		ts.rej++
		ts.rejCounter(s, spec.Tenant, rej.Reason).Inc()
		s.mu.Unlock()
		return 0, rej
	}
	j.state = JobQueued
	s.jobs[j.ID] = j
	ts.enq++
	ts.mEnq.Inc()
	if s.timed() {
		j.enqueueNS = s.nowNS()
		if s.prof != nil {
			s.prof.Mark(0, obs.StageEnqueue, "", "tenant:"+spec.Tenant, domain.Point{}, j.enqueueNS)
		}
	}
	s.syncDepthGauges(spec.Tenant)
	if s.cfg.Preemption && s.core.free == 0 {
		s.maybePreempt(spec.Priority)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	return j.ID, nil
}

// maybePreempt asks the lowest-priority running job (strictly below prio,
// deterministic tie-break on job ID) to yield. Caller holds mu.
func (s *Scheduler) maybePreempt(prio int) {
	var victim *Job
	for _, j := range s.core.running {
		if j.preemptRequested || j.Spec.Priority >= prio {
			continue
		}
		if victim == nil || j.Spec.Priority < victim.Spec.Priority ||
			(j.Spec.Priority == victim.Spec.Priority && j.ID < victim.ID) {
			victim = j
		}
	}
	if victim != nil && victim.pctx != nil {
		victim.preemptRequested = true
		close(victim.pctx.preempt)
	}
}

// executorLoop is one pool worker: dispatch under mu, run outside it.
func (s *Scheduler) executorLoop(ex *executor) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			var expired []*Job
			j, expired = s.core.dispatch()
			s.finishExpiredLocked(expired)
			if j != nil {
				break
			}
			s.cond.Wait()
		}
		j.state = JobRunning
		j.pctx = &JobContext{Job: j.ID, Tenant: j.Spec.Tenant, Attempt: j.attempts, preempt: make(chan struct{})}
		ts := s.tenant(j.Spec.Tenant)
		ts.adm++
		ts.running++
		ts.mAdm.Inc()
		var admitNS int64
		if s.timed() {
			admitNS = s.nowNS()
			s.mx.QueueWait.Observe(admitNS - j.enqueueNS)
			if s.prof != nil {
				s.prof.Span(0, obs.StageAdmit, "", "tenant:"+j.Spec.Tenant, domain.Point{}, j.enqueueNS, admitNS)
			}
		}
		s.syncDepthGauges(j.Spec.Tenant)
		jc := j.pctx
		s.mu.Unlock()

		err := s.runJob(ex, j, jc)

		s.mu.Lock()
		ts.running--
		if err == ErrPreempted && !s.stopped && !s.core.draining {
			s.core.preempt(j)
			j.state = JobQueued
			j.preemptRequested = false
			j.pctx = nil
			s.mx.Preemptions.Inc()
			if s.prof != nil {
				s.prof.Mark(0, obs.StagePreempt, "", "tenant:"+j.Spec.Tenant, domain.Point{}, s.nowNS())
			}
			s.syncDepthGauges(j.Spec.Tenant)
		} else {
			s.finishLocked(j, err)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	}
}

// runJob executes one attempt: the body, then a fence (any task failure
// becomes the job's error), then a runtime recycle so per-job transport and
// bookkeeping state does not accumulate across the pool's lifetime.
func (s *Scheduler) runJob(ex *executor, j *Job, jc *JobContext) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("sched: job %d panicked: %v", j.ID, rec)
		}
	}()
	err = j.Spec.Run(jc, ex.rt)
	ferr := ex.rt.FenceErr()
	if err == nil {
		err = ferr
	}
	if rerr := ex.rt.Recycle(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// finishLocked completes j. Caller holds mu.
func (s *Scheduler) finishLocked(j *Job, err error) {
	s.core.complete(j, err)
	ts := s.tenant(j.Spec.Tenant)
	if err != nil {
		j.state = JobFailed
		ts.fail++
		ts.mFail.Inc()
	} else {
		j.state = JobDone
		ts.comp++
		ts.mComp.Inc()
	}
	j.err = err
	close(j.done)
	if s.timed() {
		s.mx.JobLatency.Observe(s.nowNS() - j.enqueueNS)
	}
	s.syncDepthGauges(j.Spec.Tenant)
	s.retireLocked(j.ID)
	if s.drainNS != 0 && s.core.idle() && s.prof != nil {
		s.prof.Span(0, obs.StageDrain, "", "drain", domain.Point{}, s.drainNS, s.nowNS())
		s.drainNS = 0
	}
}

// finishExpiredLocked fails jobs dropped past their deadline. Caller holds
// mu.
func (s *Scheduler) finishExpiredLocked(expired []*Job) {
	for _, j := range expired {
		// Give the slot bookkeeping a complete: expiry happened at
		// dispatch, before the job took a slot, so only the job's own
		// lifecycle needs closing.
		ts := s.tenant(j.Spec.Tenant)
		j.state = JobFailed
		j.err = ErrDeadlineExpired
		ts.fail++
		ts.mFail.Inc()
		s.mx.Expired.Inc()
		close(j.done)
		s.syncDepthGauges(j.Spec.Tenant)
		s.retireLocked(j.ID)
	}
}

// retireLocked records a finished job in the retention ring, evicting the
// oldest beyond the cap. Caller holds mu.
func (s *Scheduler) retireLocked(id JobID) {
	s.doneIDs = append(s.doneIDs, id)
	for len(s.doneIDs) > doneRetention {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// tickLoop advances logical time: capacity feedback from the executor
// runtimes' health state, then a bucket refill.
func (s *Scheduler) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.tickEvery)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
		}
		// Read health outside mu: CapacityFactor takes each runtime's
		// issuance lock, which a running job may hold.
		cap := 1.0
		for _, ex := range s.execs {
			if f := ex.rt.CapacityFactor(); f < cap {
				cap = f
			}
		}
		s.mu.Lock()
		s.capacity = cap
		s.core.adm.setCapacity(cap)
		s.mx.CapacityPermille.Set(int64(cap * 1000))
		s.core.advance()
		s.mu.Unlock()
	}
}

// SetCapacityFactor overrides the health-fed capacity factor until the next
// tick re-reads it — a test hook and an operator brake.
func (s *Scheduler) SetCapacityFactor(f float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = f
	s.core.adm.setCapacity(f)
	s.mx.CapacityPermille.Set(int64(s.core.adm.capacity * 1000))
}

// Wait blocks until job id finishes and returns its error. Unknown IDs
// (never submitted, or retired from the completion ring) return an error.
func (s *Scheduler) Wait(id JobID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("sched: unknown job %d", id)
	}
	<-j.done
	return j.err
}

// JobInfo is one job's queryable snapshot (the GET /jobs payload).
type JobInfo struct {
	ID       JobID  `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
}

// Job returns a job's current snapshot.
func (s *Scheduler) Job(id JobID) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	info := JobInfo{ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
		State: j.state.String(), Attempts: j.attempts}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info, true
}

// Log returns a copy of the decision log so far.
func (s *Scheduler) Log() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Decision, len(s.core.log))
	copy(out, s.core.log)
	return out
}

// Drain stops admission (submissions fail with reason "draining") and
// blocks until every queued and running job has finished, or ctx expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrSchedulerClosed
	}
	if !s.core.draining {
		s.core.drainNow()
		s.mx.Drains.Inc()
		if s.prof != nil {
			s.drainNS = s.nowNS()
		}
	}
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	for !s.core.idle() && ctx.Err() == nil && !s.stopped {
		s.cond.Wait()
	}
	idle := s.core.idle()
	if idle && s.drainNS != 0 && s.prof != nil {
		s.prof.Span(0, obs.StageDrain, "", "drain", domain.Point{}, s.drainNS, s.nowNS())
		s.drainNS = 0
	}
	s.mu.Unlock()
	if !idle {
		return fmt.Errorf("sched: drain: %w", ctx.Err())
	}
	return nil
}

// Shutdown stops the scheduler: queued jobs that never ran fail with
// ErrSchedulerClosed, running jobs finish, executors exit, and their
// runtimes shut down. Idempotent.
func (s *Scheduler) Shutdown() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	close(s.tickStop)
	// Fail everything still queued; executors drain their running jobs.
	for {
		j := s.core.q.Pop()
		if j == nil {
			break
		}
		s.core.queued[j.Spec.Tenant]--
		s.core.record(KindReject, j, "reason="+ReasonShutdown)
		ts := s.tenant(j.Spec.Tenant)
		ts.rej++
		ts.rejCounter(s, j.Spec.Tenant, ReasonShutdown).Inc()
		j.state = JobFailed
		j.err = ErrSchedulerClosed
		close(j.done)
	}
	s.syncDepthGauges("")
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	for _, ex := range s.execs {
		ex.rt.Shutdown()
	}
}

// TenantStatus is one tenant's row of the /statusz queue table.
type TenantStatus struct {
	Tenant    string `json:"tenant"`
	Weight    int    `json:"weight"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Enqueued  int64  `json:"enqueued"`
	Admitted  int64  `json:"admitted"`
	Rejected  int64  `json:"rejected"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	// Tokens is the admission bucket level; -1 for unlimited tenants.
	Tokens float64 `json:"tokens"`
}

// Status is the scheduler's point-in-time introspection snapshot: the
// /statusz payload, including the per-tenant queue table.
type Status struct {
	Queue            string         `json:"queue"`
	Executors        int            `json:"executors"`
	Draining         bool           `json:"draining,omitempty"`
	QueueDepth       int            `json:"queue_depth"`
	Running          int            `json:"running"`
	CapacityPermille int64          `json:"capacity_permille"`
	Decisions        int64          `json:"decisions"`
	Tenants          []TenantStatus `json:"tenants"`
}

// Status snapshots the scheduler. Safe for concurrent use; intended as a
// metrics.StatusFunc.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Queue:            s.core.q.Name(),
		Executors:        s.cfg.Executors,
		Draining:         s.core.draining,
		QueueDepth:       s.core.q.Len(),
		Running:          len(s.core.running),
		CapacityPermille: int64(s.capacity * 1000),
		Decisions:        s.core.seq,
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.tenants[name]
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant: name, Weight: s.cfg.Admission.Weight(name),
			Queued: s.core.queued[name], Running: ts.running,
			Enqueued: ts.enq, Admitted: ts.adm, Rejected: ts.rej,
			Completed: ts.comp, Failed: ts.fail,
			Tokens: s.core.adm.tokens(name),
		})
	}
	return st
}
