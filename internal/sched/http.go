package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/rt"
)

// Job-submission HTTP API, mounted beside the metrics endpoints:
//
//	POST /jobs       submit a job (JSON body, SubmitRequest)
//	GET  /jobs/{id}  one job's state (JobInfo)
//	GET  /trace      recent retained traces (tail-sampled)
//	GET  /trace/{id} one retained trace by hex trace ID or decimal job ID
//	GET  /metrics    Prometheus text, including the sched_* families
//	GET  /statusz    scheduler status with the per-tenant queue table
//
// Backpressure maps onto HTTP the standard way: an admission rejection is a
// 429 with a Retry-After header derived from the scheduler's retry hint,
// jittered so a burst of rejected clients does not stampede back in
// lockstep. POST /jobs honors an Idempotency-Key header: resubmitting a key
// the scheduler accepted a job under returns that job's ID — across server
// restarts when the scheduler is durable, since the key table rides in the
// journal. Job IDs are dense, so GET /jobs/{id} distinguishes IDs that were
// never assigned (404) from assigned IDs whose state is gone — evicted from
// the bounded terminal retention, or consumed by a rejected submission
// (410).

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Tenant, Priority, Cost, DeadlineTicks mirror JobSpec.
	Tenant        string `json:"tenant"`
	Priority      int    `json:"priority"`
	Cost          int64  `json:"cost"`
	DeadlineTicks int64  `json:"deadline_ticks"`
	// Kind selects the job body from the handler's kind registry; empty
	// defaults to "synthetic".
	Kind string `json:"kind"`
	// Tasks and Rounds parameterize the synthetic kind: Rounds index
	// launches of Tasks parallel tasks each.
	Tasks  int `json:"tasks"`
	Rounds int `json:"rounds"`
}

// SubmitResponse is the POST /jobs success payload.
type SubmitResponse struct {
	ID JobID `json:"id"`
}

// KindFunc builds a job body from a submission — how the HTTP API maps
// wire requests onto Go run functions.
type KindFunc func(req SubmitRequest) (RunFunc, error)

// SyntheticTaskName is the task variant SyntheticSetup registers on each
// executor runtime.
const SyntheticTaskName = "sched_spin"

// SyntheticEval is the synthetic spin body for one launch index: a small
// deterministic mix seeded by x. Exported so cluster worker daemons
// (cmd/idxnode) can run the exact same computation for remote points that
// SyntheticSetup registers locally.
func SyntheticEval(x int64) []byte {
	v := uint64(x) + 0x9e3779b97f4a7c15
	for i := 0; i < 64; i++ {
		v ^= v >> 33
		v *= 0xff51afd7ed558ccd
	}
	return rt.EncodeF64(float64(v % 1000))
}

// SyntheticSetup registers the synthetic spin task — the Config.Setup for a
// scheduler serving the synthetic kind. The task is pure compute over its
// launch index, so it needs no region requirements.
func SyntheticSetup(r *rt.Runtime) error {
	_, err := r.RegisterTask(SyntheticTaskName, func(ctx *rt.Context) ([]byte, error) {
		return SyntheticEval(ctx.Point.X()), nil
	})
	return err
}

// SyntheticRun returns a job body issuing rounds index launches of tasks
// parallel tasks each on its executor's runtime, checking for cooperative
// preemption between rounds.
func SyntheticRun(tasks, rounds int) RunFunc {
	if tasks < 1 {
		tasks = 8
	}
	if rounds < 1 {
		rounds = 1
	}
	return func(jc *JobContext, r *rt.Runtime) error {
		id, ok := r.TaskNamed(SyntheticTaskName)
		if !ok {
			return fmt.Errorf("sched: synthetic task %q not registered (use SyntheticSetup)", SyntheticTaskName)
		}
		for round := 0; round < rounds; round++ {
			select {
			case <-jc.Preempted():
				return ErrPreempted
			default:
			}
			launch, err := core.Forall(SyntheticTaskName, id, domain.Range1(0, int64(tasks-1)))
			if err != nil {
				return err
			}
			if _, err := r.ExecuteIndex(launch); err != nil {
				return err
			}
		}
		return nil
	}
}

// DefaultKinds is the kind registry Handler falls back to: just the
// synthetic workload.
func DefaultKinds() map[string]KindFunc {
	return map[string]KindFunc{
		"synthetic": func(req SubmitRequest) (RunFunc, error) {
			return SyntheticRun(req.Tasks, req.Rounds), nil
		},
	}
}

// Handler serves the job API and, underneath it, the metrics endpoints
// (/metrics, /metrics.json, /statusz with the scheduler's tenant table).
// kinds nil defaults to DefaultKinds.
func Handler(s *Scheduler, kinds map[string]KindFunc) http.Handler {
	if kinds == nil {
		kinds = DefaultKinds()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, req *http.Request) {
		var sr SubmitRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
			return
		}
		kind := sr.Kind
		if kind == "" {
			kind = "synthetic"
		}
		kf := kinds[kind]
		if kf == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown job kind %q", kind))
			return
		}
		run, err := kf(sr)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		spec := JobSpec{
			Tenant:   sr.Tenant,
			Priority: sr.Priority,
			Cost:     sr.Cost,
			Deadline: sr.DeadlineTicks,
			Run:      run,
			Request:  &sr,
		}
		id, err := s.SubmitIdempotent(spec, req.Header.Get("Idempotency-Key"))
		if err != nil {
			var rej *RejectError
			switch {
			case errors.As(err, &rej):
				if rej.RetryAfter > 0 {
					d := jitterRetryAfter(rej.RetryAfter, retryJitterSeq.Add(1))
					secs := int64(d.Seconds())
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				}
				httpError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, ErrSchedulerClosed):
				httpError(w, http.StatusServiceUnavailable, err)
			default:
				httpError(w, http.StatusBadRequest, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(SubmitResponse{ID: id})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		id, err := strconv.ParseInt(req.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad job id: %w", err))
			return
		}
		info, res := s.Lookup(JobID(id))
		switch res {
		case LookupGone:
			httpError(w, http.StatusGone, fmt.Errorf("job %d retired from retention", id))
			return
		case LookupUnknown:
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %d", id))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(info)
	})
	// Trace queries; the handler is nil-tracer-safe, so the routes exist
	// (answering 404) even when tracing is off.
	th := s.Tracer().Handler()
	mux.Handle("GET /trace", th)
	mux.Handle("GET /trace/{id}", th)
	mux.Handle("/", metrics.Handler(s.Registry(), func() any { return s.Status() }))
	return mux
}

// retryJitterSeq feeds jitterRetryAfter one draw index per rejection.
var retryJitterSeq atomic.Uint64

// jitterRetryAfter spreads a retry hint over [d, 3d/2): every rejected
// client gets at least the scheduler's estimate, and the extra half-hint of
// splitmix64-hashed jitter de-synchronizes a burst of rejections so they do
// not all retry on the same instant (anti-thundering-herd). Pure function
// of (d, n), which is what the bounds test locks down.
func jitterRetryAfter(d time.Duration, n uint64) time.Duration {
	if d <= 0 {
		return d
	}
	rng := splitmix64{s: n}
	const steps = 1024
	frac := float64(rng.next()%steps) / steps // [0, 1)
	return d + time.Duration(frac*float64(d)/2)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Server is an embedded scheduler API listener started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the job API plus metrics endpoints on addr (":0" selects an
// ephemeral port) until Close.
func Serve(addr string, s *Scheduler, kinds map[string]KindFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sched: listen %s: %w", addr, err)
	}
	srv := &Server{ln: ln, srv: &http.Server{Handler: Handler(s, kinds)}}
	go func() { _ = srv.srv.Serve(ln) }()
	return srv, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
