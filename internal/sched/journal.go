package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/wal"
)

// The job journal: scheduler durability as re-playable values.
//
// Every mutation of the policy core — submit, dispatch, complete, preempt,
// tick advance, capacity change, drain, shutdown-abandon — is one journaled
// op. The core is deterministic, so replaying the op stream through a fresh
// core rebuilds byte-identical state: the same decision log (seq for seq),
// the same queue order, the same token-bucket levels, the same running set.
// A periodic snapshot captures the whole state (queue + tenant quotas +
// token buckets + live jobs + decision history + terminal ring + dedup
// table) so replay cost is bounded by snapshot cadence, and wal compaction
// bounds disk.
//
// Ops are appended under the owner's serialization after the core applied
// them but before the effect is acknowledged (the HTTP response, the
// executor launch). A crash between apply and append loses only
// unacknowledged work, and the deterministic continuation redoes it
// identically — the property the crash-injection harness locks in byte for
// byte.
//
// Empty ticks are coalesced: the tick loop only counts advances, and the
// next journaled op flushes them as a single opAdvance{N}. Ticks that
// produced no op before a crash are unobservable in the decision log, so
// losing them keeps recovery self-consistent.

// opKind enumerates journaled core operations.
type opKind uint8

const (
	opSubmit opKind = iota + 1
	opDispatch
	opComplete
	opPreempt
	opAdvance
	opDrain
	opCapacity
	opAbandon
)

var opNames = map[opKind]string{
	opSubmit: "submit", opDispatch: "dispatch", opComplete: "complete",
	opPreempt: "preempt", opAdvance: "advance", opDrain: "drain",
	opCapacity: "capacity", opAbandon: "abandon",
}

// op is one journal record (JSON-encoded into a wal record).
type op struct {
	K    opKind    `json:"k"`
	Job  JobID     `json:"j,omitempty"`
	Spec *WireSpec `json:"s,omitempty"` // submit: the job's durable form
	Fail bool      `json:"f,omitempty"` // complete: job failed
	Msg  string    `json:"m,omitempty"` // complete: error message
	N    int64     `json:"n,omitempty"` // advance: coalesced tick count
	Cap  float64   `json:"c,omitempty"` // capacity: new factor
	Key  string    `json:"y,omitempty"` // submit: idempotency key
	Arr  int       `json:"a,omitempty"` // submit: trace arrival index
}

// WireSpec is a job's durable form: everything needed to re-create its
// JobSpec after a restart. Run bodies are Go closures and cannot be
// journaled; jobs submitted with a wire Request (the HTTP path) have their
// body rebuilt through the kind registry at recovery, while purely
// programmatic jobs recover as state only — if still queued or running at
// the crash they fail with ErrNotRecoverable when next dispatched.
type WireSpec struct {
	Tenant   string         `json:"tenant,omitempty"`
	Priority int            `json:"priority,omitempty"`
	Cost     int64          `json:"cost,omitempty"`
	Deadline int64          `json:"deadline,omitempty"`
	Service  int64          `json:"service,omitempty"` // trace mode: service ticks
	Request  *SubmitRequest `json:"request,omitempty"` // live mode: rebuildable body
}

// ErrNotRecoverable marks a recovered job whose body could not be rebuilt:
// it was submitted programmatically (no wire-form Request), so only its
// scheduling state survived the restart.
var ErrNotRecoverable = errors.New("sched: job body not recoverable after restart")

// wireFromJob extracts a job's durable form.
func wireFromJob(j *Job) *WireSpec {
	return &WireSpec{
		Tenant:   j.Spec.Tenant,
		Priority: j.Spec.Priority,
		Cost:     j.Spec.Cost,
		Deadline: j.Spec.Deadline,
		Service:  j.service,
		Request:  j.Spec.Request,
	}
}

// jobFromWire re-creates a job from its durable form. rebuild (nil allowed)
// maps the wire Request back to a runnable body.
func jobFromWire(id JobID, ws *WireSpec, rebuild func(*SubmitRequest) RunFunc) *Job {
	j := &Job{
		ID: id,
		Spec: JobSpec{
			Tenant:   ws.Tenant,
			Priority: ws.Priority,
			Cost:     ws.Cost,
			Deadline: ws.Deadline,
			Request:  ws.Request,
		},
		service: ws.Service,
		done:    make(chan struct{}),
	}
	if ws.Request != nil && rebuild != nil {
		j.Spec.Run = rebuild(ws.Request)
	}
	return j
}

// TerminalJob is one finished job's retained state: what GET /jobs/{id}
// serves after the job left the live table, across restarts.
type TerminalJob struct {
	ID       JobID  `json:"id"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
}

// terminalRing is the bounded retention of terminal job states, oldest
// evicted first. Evicted IDs still answer "gone" (410) rather than
// "unknown" (404) because IDs are dense: anything at or below the highest
// assigned ID existed.
type terminalRing struct {
	cap   int
	m     map[JobID]TerminalJob
	order []JobID
}

func newTerminalRing(capacity int) *terminalRing {
	if capacity < 1 {
		capacity = doneRetention
	}
	return &terminalRing{cap: capacity, m: map[JobID]TerminalJob{}}
}

// add retains tj, returning the IDs evicted to stay within the cap.
func (r *terminalRing) add(tj TerminalJob) (evicted []JobID) {
	if _, ok := r.m[tj.ID]; ok {
		return nil
	}
	r.m[tj.ID] = tj
	r.order = append(r.order, tj.ID)
	for len(r.order) > r.cap {
		old := r.order[0]
		delete(r.m, old)
		r.order = r.order[1:]
		evicted = append(evicted, old)
	}
	return evicted
}

func (r *terminalRing) get(id JobID) (TerminalJob, bool) {
	tj, ok := r.m[id]
	return tj, ok
}

func (r *terminalRing) list() []TerminalJob {
	out := make([]TerminalJob, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.m[id])
	}
	return out
}

// dedupRetention bounds the idempotency-key table.
const dedupRetention = 8192

// dedupEntry is one retained idempotency mapping.
type dedupEntry struct {
	Key string `json:"key"`
	Job JobID  `json:"job"`
}

// dedupRing is the bounded idempotency-key table: key → job ID, oldest key
// evicted first. Journaled through submit ops and snapshots, so a client
// resubmitting after a server crash gets its original job back.
type dedupRing struct {
	cap   int
	m     map[string]JobID
	order []string
}

func newDedupRing() *dedupRing { return &dedupRing{cap: dedupRetention, m: map[string]JobID{}} }

func (r *dedupRing) get(key string) (JobID, bool) {
	id, ok := r.m[key]
	return id, ok
}

func (r *dedupRing) put(key string, id JobID) {
	if key == "" {
		return
	}
	if _, ok := r.m[key]; ok {
		return
	}
	r.m[key] = id
	r.order = append(r.order, key)
	for len(r.order) > r.cap {
		delete(r.m, r.order[0])
		r.order = r.order[1:]
	}
}

func (r *dedupRing) list() []dedupEntry {
	out := make([]dedupEntry, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, dedupEntry{Key: k, Job: r.m[k]})
	}
	return out
}

// snapJob is one live (queued or running) job in a snapshot.
type snapJob struct {
	ID          JobID    `json:"id"`
	Spec        WireSpec `json:"spec"`
	EnqueueTick int64    `json:"enqueue_tick"`
	AdmitTick   int64    `json:"admit_tick,omitempty"`
	Attempts    int      `json:"attempts,omitempty"`
	Running     bool     `json:"running,omitempty"`
}

// snapshotState is the full durable scheduler state at one journal seq.
type snapshotState struct {
	Tick     int64   `json:"tick"`
	Seq      int64   `json:"seq"`
	Draining bool    `json:"draining,omitempty"`
	Capacity float64 `json:"capacity"`
	NextID   JobID   `json:"next_id"`

	Buckets map[string]float64 `json:"buckets,omitempty"`

	QueueName string          `json:"queue"`
	Queue     json.RawMessage `json:"queue_state"`
	Jobs      []snapJob       `json:"jobs,omitempty"`

	Log      []Decision    `json:"log,omitempty"`
	Terminal []TerminalJob `json:"terminal,omitempty"`
	Dedup    []dedupEntry  `json:"dedup,omitempty"`

	// Aux is owner-private state: the trace driver parks its arrival cursor
	// here; the live scheduler leaves it empty.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// journal owns the wal.Log plus the scheduler-side bookkeeping around it:
// op encoding, coalesced tick advances, snapshot cadence, and the metrics /
// obs instrumentation. Callers serialize access (the scheduler under its
// mutex, the trace driver single-threaded).
type journal struct {
	log       *wal.Log
	snapEvery int

	pendingTicks int64
	sinceSnap    int

	mx    *metrics.Durability
	last  wal.Stats // last wal stats seen, for counter deltas
	timed bool
	prof  *obs.Recorder
	nowNS func() int64
}

// defaultSnapshotEvery is the snapshot cadence in journaled ops.
const defaultSnapshotEvery = 4096

func newJournal(log *wal.Log, snapEvery int, mx *metrics.Durability, timed bool, prof *obs.Recorder, nowNS func() int64) *journal {
	if snapEvery < 1 {
		snapEvery = defaultSnapshotEvery
	}
	if nowNS == nil {
		epoch := time.Now()
		nowNS = func() int64 { return time.Since(epoch).Nanoseconds() }
	}
	return &journal{log: log, snapEvery: snapEvery, mx: mx, timed: timed, prof: prof, nowNS: nowNS}
}

// tick counts one empty-tick advance; the next logOp flushes the backlog as
// a single coalesced advance record.
func (jn *journal) tick() { jn.pendingTicks++ }

// logOp appends one op (flushing any coalesced advances first) and returns
// once the record is in the journal per the fsync policy. The caller
// acknowledges the operation only after logOp returns.
func (jn *journal) logOp(o op) error {
	if jn.pendingTicks > 0 {
		n := jn.pendingTicks
		jn.pendingTicks = 0
		if err := jn.append(op{K: opAdvance, N: n}); err != nil {
			return err
		}
	}
	return jn.append(o)
}

func (jn *journal) append(o op) error {
	payload, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("sched: journal encode: %w", err)
	}
	var start int64
	if jn.timed {
		start = jn.nowNS()
	}
	if _, err := jn.log.Append(payload); err != nil {
		return fmt.Errorf("sched: journal: %w", err)
	}
	jn.sinceSnap++
	if jn.mx != nil {
		jn.mx.Appends.Inc()
		jn.mx.AppendedBytes.Add(int64(len(payload)))
		jn.mx.SnapshotAgeOps.Set(int64(jn.sinceSnap))
		if jn.timed {
			jn.mx.AppendNS.Observe(jn.nowNS() - start)
		}
		jn.syncStats()
	}
	if jn.prof != nil {
		jn.prof.Mark(0, obs.StageJournal, "", opNames[o.K], domain.Point{}, jn.nowNS())
	}
	return nil
}

// wantSnapshot reports the cadence is due.
func (jn *journal) wantSnapshot() bool { return jn.sinceSnap >= jn.snapEvery }

// snapshot writes st as the journal's snapshot and resets the cadence. Any
// coalesced advances are simply discarded: the snapshot's tick already
// includes them.
func (jn *journal) snapshot(st *snapshotState) error {
	jn.pendingTicks = 0
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("sched: snapshot encode: %w", err)
	}
	var start int64
	if jn.prof != nil || jn.timed {
		start = jn.nowNS()
	}
	if err := jn.log.Snapshot(payload); err != nil {
		return fmt.Errorf("sched: snapshot: %w", err)
	}
	jn.sinceSnap = 0
	if jn.mx != nil {
		jn.mx.Snapshots.Inc()
		jn.mx.SnapshotAgeOps.Set(0)
		jn.syncStats()
	}
	if jn.prof != nil {
		jn.prof.Span(0, obs.StageSnapshot, "", fmt.Sprintf("seq:%d", jn.log.SnapshotSeq()), domain.Point{}, start, jn.nowNS())
	}
	return nil
}

// syncStats folds the wal's cumulative stats into the metric families:
// deltas onto the fsync/rotation counters, the segment count onto its gauge.
func (jn *journal) syncStats() {
	if jn.mx == nil {
		return
	}
	st := jn.log.Stats()
	jn.mx.Fsyncs.Add(int64(st.Fsyncs - jn.last.Fsyncs))
	jn.mx.Rotations.Add(int64(st.Rotations - jn.last.Rotations))
	jn.mx.Segments.Set(int64(st.Segments))
	jn.last = st
}

// captureSnapshot serializes the owner's full state. Caller holds whatever
// serializes core access.
func captureSnapshot(c *policy, jobs map[JobID]*Job, nextID JobID, capacity float64,
	term *terminalRing, ded *dedupRing, aux json.RawMessage) (*snapshotState, error) {
	sq, ok := c.q.(StatefulQueue)
	if !ok {
		return nil, fmt.Errorf("sched: queue %q does not implement StatefulQueue; durability needs a stateful discipline", c.q.Name())
	}
	qstate, err := sq.SaveState()
	if err != nil {
		return nil, fmt.Errorf("sched: save queue state: %w", err)
	}
	st := &snapshotState{
		Tick:      c.tick,
		Seq:       c.seq,
		Draining:  c.draining,
		Capacity:  capacity,
		NextID:    nextID,
		Buckets:   c.adm.bucketLevels(),
		QueueName: c.q.Name(),
		Queue:     qstate,
		Log:       c.log,
		Aux:       aux,
	}
	if term != nil {
		st.Terminal = term.list()
	}
	if ded != nil {
		st.Dedup = ded.list()
	}
	ids := make([]JobID, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		j := jobs[id]
		_, running := c.running[id]
		st.Jobs = append(st.Jobs, snapJob{
			ID:          id,
			Spec:        *wireFromJob(j),
			EnqueueTick: j.enqueueTick,
			AdmitTick:   j.admitTick,
			Attempts:    j.attempts,
			Running:     running,
		})
	}
	return st, nil
}

// RecoveryReport summarizes what startup recovery found and rebuilt — the
// /statusz durability panel's recovery section.
type RecoveryReport struct {
	// Recovered reports that durable state existed (snapshot or records).
	Recovered bool `json:"recovered"`
	// SnapshotLoaded / SnapshotSeq describe the snapshot used, if any.
	SnapshotLoaded bool   `json:"snapshot_loaded,omitempty"`
	SnapshotSeq    uint64 `json:"snapshot_seq,omitempty"`
	// ReplayedOps counts journal records replayed after the snapshot.
	ReplayedOps int `json:"replayed_ops,omitempty"`
	// TruncatedBytes / DroppedSegments describe torn-tail cleanup.
	TruncatedBytes  int64 `json:"truncated_bytes,omitempty"`
	DroppedSegments int   `json:"dropped_segments,omitempty"`
	// RequeuedJobs / ResumedJobs count queued jobs restored into the queue
	// and running jobs handed back to executors.
	RequeuedJobs int `json:"requeued_jobs,omitempty"`
	ResumedJobs  int `json:"resumed_jobs,omitempty"`
	// Decisions is the decision-log length after recovery.
	Decisions int64 `json:"decisions,omitempty"`
}

// recoveredCore is a policy core (plus owner bookkeeping) rebuilt from a
// wal recovery: snapshot load, then op replay.
type recoveredCore struct {
	core     *policy
	jobs     map[JobID]*Job
	nextID   JobID
	capacity float64
	terminal *terminalRing
	dedup    *dedupRing
	aux      json.RawMessage
	// maxArrival is the highest trace arrival index seen in replayed submit
	// ops (-1 when none) — the trace driver resumes after max(aux, this).
	maxArrival int
	report     RecoveryReport
}

// rebuildCore reconstructs scheduler state from a wal recovery. q must be a
// fresh instance of the same discipline the journal was written with;
// rebuild (nil allowed) maps wire requests back to runnable bodies.
func rebuildCore(rec *wal.Recovered, q Queue, adm *admission, slots int,
	rebuild func(*SubmitRequest) RunFunc, termCap int) (*recoveredCore, error) {
	if q == nil {
		q = NewFIFO()
	}
	rc := &recoveredCore{
		jobs:       map[JobID]*Job{},
		capacity:   1,
		terminal:   newTerminalRing(termCap),
		dedup:      newDedupRing(),
		maxArrival: -1,
		report: RecoveryReport{
			Recovered:       !rec.Empty(),
			TruncatedBytes:  rec.TruncatedBytes,
			DroppedSegments: rec.DroppedSegments,
		},
	}
	c := newPolicy(q, adm, slots)

	if rec.Snapshot != nil {
		var st snapshotState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return nil, fmt.Errorf("sched: decode snapshot: %w", err)
		}
		if st.QueueName != q.Name() {
			return nil, fmt.Errorf("sched: journal was written with queue %q, configured queue is %q", st.QueueName, q.Name())
		}
		c.tick, c.seq, c.draining, c.log = st.Tick, st.Seq, st.Draining, st.Log
		rc.capacity = st.Capacity
		c.adm.setCapacity(st.Capacity)
		c.adm.restoreBuckets(st.Buckets)
		rc.nextID = st.NextID
		for _, sj := range st.Jobs {
			ws := sj.Spec
			j := jobFromWire(sj.ID, &ws, rebuild)
			j.enqueueTick, j.admitTick, j.attempts = sj.EnqueueTick, sj.AdmitTick, sj.Attempts
			rc.jobs[sj.ID] = j
			if sj.Running {
				j.state = JobRunning
				c.running[sj.ID] = j
				c.free--
			} else {
				j.state = JobQueued
				c.queued[ws.Tenant]++
			}
		}
		if c.free < 0 {
			// Fewer executors than running jobs in the snapshot (the pool
			// shrank across the restart): the surplus jobs still resume, and
			// slots simply stay saturated until they finish.
			c.free = 0
		}
		sq, ok := q.(StatefulQueue)
		if !ok {
			return nil, fmt.Errorf("sched: queue %q does not implement StatefulQueue", q.Name())
		}
		if err := sq.LoadState(rc.jobs, st.Queue); err != nil {
			return nil, err
		}
		for _, tj := range st.Terminal {
			rc.terminal.add(tj)
		}
		for _, de := range st.Dedup {
			rc.dedup.put(de.Key, de.Job)
		}
		rc.aux = st.Aux
		rc.report.SnapshotLoaded = true
		rc.report.SnapshotSeq = rec.SnapshotSeq
	}

	for i, payload := range rec.Records {
		var o op
		if err := json.Unmarshal(payload, &o); err != nil {
			return nil, fmt.Errorf("sched: decode journal record %d: %w", i, err)
		}
		if err := rc.apply(c, o, rebuild); err != nil {
			return nil, fmt.Errorf("sched: replay record %d (%s): %w", i, opNames[o.K], err)
		}
		rc.report.ReplayedOps++
	}

	rc.core = c
	rc.report.RequeuedJobs = c.q.Len()
	rc.report.ResumedJobs = len(c.running)
	rc.report.Decisions = c.seq
	return rc, nil
}

// apply replays one journaled op against the core. The core is
// deterministic, so every derived outcome (the dispatched job, the reject
// reason, the decision details) reproduces exactly; mismatches mean the
// journal and configuration have diverged and are reported as errors.
func (rc *recoveredCore) apply(c *policy, o op, rebuild func(*SubmitRequest) RunFunc) error {
	switch o.K {
	case opSubmit:
		if o.Spec == nil {
			return fmt.Errorf("submit op for job %d carries no spec", o.Job)
		}
		j := jobFromWire(o.Job, o.Spec, rebuild)
		if o.Job > rc.nextID {
			rc.nextID = o.Job
		}
		if o.Arr >= 0 && o.Arr > rc.maxArrival {
			rc.maxArrival = o.Arr
		}
		if _, rej := c.submit(j); rej == nil {
			j.state = JobQueued
			rc.jobs[j.ID] = j
			rc.dedup.put(o.Key, j.ID)
		}
	case opDispatch:
		j, expired := c.dispatch()
		for _, e := range expired {
			rc.finishReplayed(e, true, ErrDeadlineExpired.Error())
		}
		var got JobID
		if j != nil {
			got = j.ID
			j.state = JobRunning
		}
		if got != o.Job {
			return fmt.Errorf("replayed dispatch chose job %d, journal says %d", got, o.Job)
		}
	case opComplete:
		j := rc.jobs[o.Job]
		if j == nil {
			return fmt.Errorf("complete op for unknown job %d", o.Job)
		}
		var jerr error
		if o.Fail {
			msg := o.Msg
			if msg == "" {
				msg = "job failed"
			}
			jerr = errors.New(msg)
		}
		c.complete(j, jerr)
		rc.finishReplayed(j, o.Fail, o.Msg)
	case opPreempt:
		j := rc.jobs[o.Job]
		if j == nil {
			return fmt.Errorf("preempt op for unknown job %d", o.Job)
		}
		c.preempt(j)
		j.state = JobQueued
	case opAdvance:
		n := o.N
		if n < 1 {
			n = 1
		}
		for i := int64(0); i < n; i++ {
			c.advance()
		}
	case opDrain:
		c.drainNow()
	case opCapacity:
		c.adm.setCapacity(o.Cap)
		rc.capacity = o.Cap
	case opAbandon:
		for _, j := range c.abandon() {
			rc.finishReplayed(j, true, ErrSchedulerClosed.Error())
		}
	default:
		return fmt.Errorf("unknown op kind %d", o.K)
	}
	return nil
}

// finishReplayed retires a job that reached a terminal state during replay.
func (rc *recoveredCore) finishReplayed(j *Job, failed bool, msg string) {
	delete(rc.jobs, j.ID)
	if failed {
		j.state = JobFailed
	} else {
		j.state = JobDone
	}
	rc.terminal.add(TerminalJob{
		ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
		Failed: failed, Attempts: j.attempts, Error: msg,
	})
}
