package sched

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/trace"
)

// End-to-end tracing tests: a traced scheduler run must assemble, for a
// retained job, one span tree crossing all three layers — sched admission,
// the executor runtime's launch pipeline, and the transport's hops — and
// that tree must be reproducible per seed and survive a restart through the
// durable store.

// tracedCfg wires a tracer + recorder + registry into a single-executor
// scheduler. A fixed 1ns slow threshold makes every finished job a "slow"
// retain, deterministically (TraceSlowQuantile -1 keeps sched from
// replacing the threshold with the live latency quantile).
func tracedCfg(t *testing.T, tcfg trace.Config) (Config, *trace.Tracer) {
	t.Helper()
	tr, err := trace.New(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietCfg()
	cfg.Executors = 1
	cfg.Setup = SyntheticSetup
	cfg.Metrics = metrics.NewRegistry()
	cfg.Profile = obs.NewRecorder("sched", 4, 1<<14)
	cfg.Trace = tr
	cfg.TraceSlowQuantile = -1
	return cfg, tr
}

// waitTrace polls for the job's retained trace: Finish runs under the
// scheduler mutex just after the job's done channel closes, so Wait can
// return a beat before the trace is queryable.
func waitTrace(t *testing.T, tr *trace.Tracer, id JobID) *trace.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := tr.Get(strconv.FormatInt(int64(id), 10)); ok {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d trace never retained", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTraceEndToEndCrossesAllLayers(t *testing.T) {
	cfg, tr := tracedCfg(t, trace.Config{SlowThreshold: func() int64 { return 1 }})
	s := MustNew(cfg)
	defer s.Shutdown()

	id, err := s.Submit(JobSpec{Tenant: "acme", Run: SyntheticRun(16, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	got := waitTrace(t, tr, id)
	if got.Why != "slow" {
		t.Fatalf("retained why=%q, want slow", got.Why)
	}
	if got.Tenant != "acme" {
		t.Fatalf("tenant %q", got.Tenant)
	}
	stages := got.Stages()
	has := func(name string) bool {
		for _, st := range stages {
			if st == name {
				return true
			}
		}
		return false
	}
	// The acceptance contract: at least one span from each layer — sched
	// (enqueue/admit), rt (issue/execute), xport (send/recv) — plus the
	// synthesized job root.
	for _, want := range []string{"job", "enqueue", "admit", "issue", "execute", "send", "recv"} {
		if !has(want) {
			t.Errorf("trace missing %s span; stages = %v", want, stages)
		}
	}
	// Every span belongs to this job's trace and descends (transitively)
	// from the root: the tree has exactly one root.
	if roots := trace.Tree(got.Spans); len(roots) != 1 {
		t.Errorf("trace has %d roots, want 1 (job)", len(roots))
	}
	// Two rounds of 16 tasks: the launch-granularity reduction sees both.
	ls := trace.LaunchShape(got.Spans)
	if strings.Count(ls, "issue:"+SyntheticTaskName+" execute=16") != 2 {
		t.Errorf("launch shape:\n%s", ls)
	}

	// The job's Status surfaces the tracing panel and the drop counter.
	st := s.Status()
	if st.Tracing == nil || st.Tracing.Retained != 1 {
		t.Errorf("Status.Tracing = %+v, want 1 retained", st.Tracing)
	}

	// /trace/{id} serves the same payload over HTTP.
	srv, err := Serve("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/trace/" + strconv.FormatInt(int64(id), 10))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), got.TraceID) {
		t.Fatalf("GET /trace/%d = %d: %s", id, resp.StatusCode, body)
	}
}

// TestTraceGoldenSpanTree is the golden determinism check the CI seed
// matrix runs: for every SCHED_SEEDS entry, two schedulers with the same
// trace seed running the same job sequence produce identical canonical
// span-tree shapes.
func TestTraceGoldenSpanTree(t *testing.T) {
	for _, s := range schedSeeds(t) {
		goldenSpanTree(t, uint64(s))
	}
}

func goldenSpanTree(t *testing.T, seed uint64) {
	run := func() []string {
		cfg, tr := tracedCfg(t, trace.Config{HeadRate: 1})
		cfg.TraceSeed = seed
		s := MustNew(cfg)
		defer s.Shutdown()
		var shapes []string
		for i := 0; i < 3; i++ {
			id, err := s.Submit(JobSpec{Tenant: "a", Run: SyntheticRun(8, 1)})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Wait(id); err != nil {
				t.Fatal(err)
			}
			got := waitTrace(t, tr, id)
			shapes = append(shapes, trace.Shape(stableSpans(got.Spans)))
		}
		return shapes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] == "" || !strings.Contains(a[i], "admit") {
			t.Fatalf("job %d shape degenerate: %q", i+1, a[i])
		}
		if a[i] != b[i] {
			t.Errorf("job %d span tree not reproducible for seed %d:\n  run1: %s\n  run2: %s",
				i+1, seed, a[i], b[i])
		}
	}
}

// stableSpans drops the timing-dependent marks (ack-timeout retransmits)
// whose presence varies with machine load; everything else in the tree is
// a pure function of (seed, job ID, launch sequence).
func stableSpans(spans []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(spans))
	for _, ev := range spans {
		if ev.Stage == obs.StageRetransmit {
			continue
		}
		out = append(out, ev)
	}
	return out
}

func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg, tr := tracedCfg(t, trace.Config{SlowThreshold: func() int64 { return 1 }, Dir: dir})
	s := MustNew(cfg)
	id, err := s.Submit(JobSpec{Tenant: "a", Run: SyntheticRun(8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	fid, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { return errors.New("boom") }})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(fid); err == nil {
		t.Fatal("failing job succeeded")
	}
	before := waitTrace(t, tr, id)
	waitTrace(t, tr, fid)
	s.Shutdown()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh tracer over the same directory — the restart — recovers both
	// traces byte-for-byte equal in the fields that matter.
	re, err := trace.New(trace.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Get(strconv.FormatInt(int64(id), 10))
	if !ok {
		t.Fatal("slow trace lost across restart")
	}
	if got.TraceID != before.TraceID || got.Why != before.Why || len(got.Spans) != len(before.Spans) {
		t.Fatalf("trace mangled across restart:\n  before: %s %s %d spans\n  after:  %s %s %d spans",
			before.TraceID, before.Why, len(before.Spans), got.TraceID, got.Why, len(got.Spans))
	}
	failed, ok := re.Get(strconv.FormatInt(int64(fid), 10))
	if !ok || failed.Why != "failed" || failed.Err == "" {
		t.Fatalf("failed trace lost or mangled across restart: %+v, %v", failed, ok)
	}
}
