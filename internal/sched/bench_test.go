package sched

import (
	"testing"
	"time"

	"indexlaunch/internal/rt"
)

// Scheduler overhead benchmarks: the policy core's per-decision cost, the
// virtual-time driver's whole-trace cost, and the live front end's
// submit-to-completion round trip. CI's smoke pass runs these with
// -benchtime=1x, so allocation regressions surface as allocs/op.

func BenchmarkPolicySubmitDispatch(b *testing.B) {
	p := newPolicy(NewWeightedFair(1, map[string]int{"a": 1, "b": 2}, 1),
		newAdmission(Admission{MaxQueued: 1 << 30}), 4)
	tenants := []string{"a", "b", "c"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := &Job{ID: JobID(i + 1), Spec: JobSpec{Tenant: tenants[i%3]}}
		if _, rej := p.submit(j); rej != nil {
			b.Fatal(rej)
		}
		jb, _ := p.dispatch()
		if jb == nil {
			b.Fatal("dispatch returned nil with queued work")
		}
		p.complete(jb, nil)
		if i%16 == 0 {
			p.advance()
		}
	}
}

func BenchmarkRunTrace(b *testing.B) {
	tr := GenTrace(42, TraceOptions{Jobs: 2000, MaxPriority: 3, MaxInterArrival: 1,
		MaxCost: 3, MinService: 1, MaxService: 6})
	weights := map[string]int{"a": 1, "b": 2, "c": 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := RunTrace(tr, TraceConfig{Executors: 4, Queue: NewWeightedFair(1, weights, 1)})
		if res.Makespan == 0 {
			b.Fatal("empty run")
		}
	}
}

func BenchmarkLiveSubmitWait(b *testing.B) {
	s := MustNew(Config{Executors: 2, TickEvery: time.Hour})
	defer s.Shutdown()
	run := func(*JobContext, *rt.Runtime) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Submit(JobSpec{Tenant: "bench", Run: run})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Wait(id); err != nil {
			b.Fatal(err)
		}
	}
}
