package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
)

// Live-scheduler tests: the concurrent front end over the policy core —
// executor pool, backpressure, drain/shutdown, preemption, capacity
// feedback, and the HTTP API end to end.

// quietCfg is a scheduler whose tick loop effectively never fires, so tests
// control capacity and bucket refill deterministically.
func quietCfg() Config {
	return Config{Executors: 2, TickEvery: time.Hour}
}

func TestSchedRunsJobs(t *testing.T) {
	s := MustNew(quietCfg())
	defer s.Shutdown()
	var ran atomic.Int64
	var ids []JobID
	for i := 0; i < 20; i++ {
		id, err := s.Submit(JobSpec{
			Tenant: []string{"a", "b"}[i%2],
			Run: func(jc *JobContext, _ *rt.Runtime) error {
				ran.Add(1)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d jobs, want 20", got)
	}
	st := s.Status()
	var comp int64
	for _, ts := range st.Tenants {
		comp += ts.Completed
	}
	if comp != 20 || st.QueueDepth != 0 || st.Running != 0 {
		t.Fatalf("status = %+v, want 20 completed, idle", st)
	}
	info, ok := s.Job(ids[0])
	if !ok || info.State != "done" {
		t.Fatalf("Job(%d) = %+v, %v", ids[0], info, ok)
	}
}

func TestSchedJobErrorPropagates(t *testing.T) {
	s := MustNew(quietCfg())
	defer s.Shutdown()
	boom := errors.New("boom")
	id, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(id); !errors.Is(got, boom) {
		t.Fatalf("Wait = %v, want boom", got)
	}
	pid, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { panic("eek") }})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Wait(pid); got == nil || !strings.Contains(got.Error(), "panicked") {
		t.Fatalf("Wait after panic = %v, want panic error", got)
	}
}

// blockingJobs fills every executor with jobs that hold until release is
// closed, returning their IDs. Each job is observed to have started (and so
// to have left the queue) before the next is submitted, so queue-depth
// assertions afterwards are race-free.
func blockingJobs(t *testing.T, s *Scheduler, n int, release chan struct{}) []JobID {
	t.Helper()
	started := make(chan struct{})
	var ids []JobID
	for i := 0; i < n; i++ {
		id, err := s.Submit(JobSpec{Tenant: "blk", Run: func(*JobContext, *rt.Runtime) error {
			started <- struct{}{}
			<-release
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		<-started
	}
	return ids
}

func TestSchedBackpressure(t *testing.T) {
	cfg := quietCfg()
	cfg.Admission = Admission{MaxQueued: 2}
	s := MustNew(cfg)
	defer s.Shutdown()
	release := make(chan struct{})
	ids := blockingJobs(t, s, 2, release) // both executors busy
	// Fill the queue to its bound.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "q", Run: func(*JobContext, *rt.Runtime) error { return nil }}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(JobSpec{Tenant: "q", Run: func(*JobContext, *rt.Runtime) error { return nil }})
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("overflow submit = %v, want ErrAdmissionRejected", err)
	}
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("overflow error is %T, want *RejectError", err)
	}
	if rej.Reason != ReasonQueueFull || rej.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v, want queue-full with wall-clock retry hint", rej)
	}
	close(release)
	for _, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSchedTenantQuota(t *testing.T) {
	cfg := quietCfg()
	cfg.Admission = Admission{Tenants: map[string]Quota{"small": {MaxQueued: 1}}}
	s := MustNew(cfg)
	defer s.Shutdown()
	release := make(chan struct{})
	blockingJobs(t, s, 2, release)
	if _, err := s.Submit(JobSpec{Tenant: "small", Run: func(*JobContext, *rt.Runtime) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(JobSpec{Tenant: "small", Run: func(*JobContext, *rt.Runtime) error { return nil }})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonTenantQueueFull {
		t.Fatalf("tenant overflow = %v, want tenant-queue-full", err)
	}
	close(release)
}

func TestSchedDrain(t *testing.T) {
	s := MustNew(quietCfg())
	var done atomic.Int64
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error {
			done.Add(1)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := done.Load(); got != 8 {
		t.Fatalf("drain finished with %d jobs done, want 8", got)
	}
	_, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { return nil }})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonDraining {
		t.Fatalf("submit while draining = %v, want draining rejection", err)
	}
	s.Shutdown()
}

func TestSchedShutdownFailsQueued(t *testing.T) {
	s := MustNew(quietCfg())
	release := make(chan struct{})
	running := blockingJobs(t, s, 2, release)
	var queued []JobID
	for i := 0; i < 3; i++ {
		id, err := s.Submit(JobSpec{Tenant: "q", Run: func(*JobContext, *rt.Runtime) error { return nil }})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}
	close(release)
	s.Shutdown()
	for _, id := range running {
		if err := s.Wait(id); err != nil {
			t.Fatalf("running job %d: %v", id, err)
		}
	}
	for _, id := range queued {
		if err := s.Wait(id); !errors.Is(err, ErrSchedulerClosed) {
			t.Fatalf("queued job %d after shutdown: %v, want ErrSchedulerClosed", id, err)
		}
	}
	if _, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { return nil }}); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit after shutdown = %v", err)
	}
	s.Shutdown() // idempotent
}

func TestSchedPreemption(t *testing.T) {
	cfg := quietCfg()
	cfg.Executors = 1
	cfg.Preemption = true
	cfg.Queue = NewStrictPriority()
	s := MustNew(cfg)
	defer s.Shutdown()

	lowStarted := make(chan struct{}, 2)
	var hiDone atomic.Bool
	low, err := s.Submit(JobSpec{Tenant: "low", Priority: 0, Run: func(jc *JobContext, _ *rt.Runtime) error {
		if jc.Attempt > 1 {
			// Re-run after preemption: the high-priority job has had the
			// executor; finish immediately.
			return nil
		}
		lowStarted <- struct{}{}
		select {
		case <-jc.Preempted():
			return ErrPreempted
		case <-time.After(10 * time.Second):
			return errors.New("low job never preempted")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-lowStarted
	hi, err := s.Submit(JobSpec{Tenant: "hi", Priority: 5, Run: func(*JobContext, *rt.Runtime) error {
		hiDone.Store(true)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(hi); err != nil {
		t.Fatal(err)
	}
	if !hiDone.Load() {
		t.Fatal("high-priority job did not run before the preempted job finished")
	}
	// The low job re-ran and completed on its second attempt.
	if err := s.Wait(low); err != nil {
		t.Fatalf("preempted job second attempt: %v", err)
	}
	info, _ := s.Job(low)
	if info.Attempts != 2 {
		t.Fatalf("low job attempts = %d, want 2", info.Attempts)
	}
}

func TestSchedCapacityFeedback(t *testing.T) {
	cfg := quietCfg()
	cfg.Admission = Admission{Tenants: map[string]Quota{"rl": {Rate: 1, Burst: 1}}}
	s := MustNew(cfg)
	defer s.Shutdown()
	ok := func(*JobContext, *rt.Runtime) error { return nil }
	if _, err := s.Submit(JobSpec{Tenant: "rl", Run: ok}); err != nil {
		t.Fatal(err)
	}
	// Bucket empty. With capacity zeroed (all nodes quarantined), the
	// rejection is no-capacity: no retry hint can help.
	s.SetCapacityFactor(0)
	_, err := s.Submit(JobSpec{Tenant: "rl", Run: ok})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != ReasonNoCapacity {
		t.Fatalf("zero-capacity submit = %v, want no-capacity", err)
	}
	// Restore capacity: same state now yields rate-limited with a hint.
	s.SetCapacityFactor(1)
	_, err = s.Submit(JobSpec{Tenant: "rl", Run: ok})
	if !errors.As(err, &rej) || rej.Reason != ReasonRateLimited || rej.RetryAfter <= 0 {
		t.Fatalf("full-capacity submit = %v, want rate-limited with hint", err)
	}
	if st := s.Status(); st.CapacityPermille != 1000 {
		t.Fatalf("capacity permille = %d, want 1000", st.CapacityPermille)
	}
}

// TestSchedMetricsAndObs wires a registry and recorder through a live run
// and checks the sched_* families and the new pipeline stages show up.
func TestSchedMetricsAndObs(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := obs.NewRecorder("sched", 1, 4096)
	cfg := quietCfg()
	cfg.Metrics = reg
	cfg.Profile = rec
	s := MustNew(cfg)
	var ids []JobID
	for i := 0; i < 6; i++ {
		id, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error { return nil }})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()

	var b strings.Builder
	if err := metrics.WriteProm(&b, reg.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sched_enqueued_total{tenant="a"} 6`,
		`sched_admitted_total{tenant="a"} 6`,
		`sched_completed_total{tenant="a"} 6`,
		"sched_drains_total 1",
		"sched_queue_wait_ns_count 6",
		"sched_job_latency_ns_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	stages := map[obs.Stage]int{}
	for _, ev := range rec.Snapshot().Events {
		stages[ev.Stage]++
	}
	if stages[obs.StageEnqueue] != 6 || stages[obs.StageAdmit] != 6 {
		t.Errorf("obs stages = %v, want 6 enqueue + 6 admit", stages)
	}
	if stages[obs.StageDrain] != 1 {
		t.Errorf("obs stages = %v, want 1 drain span", stages)
	}
}

// TestSchedHTTPEndToEnd drives the full stack over HTTP: synthetic jobs on
// real executor runtimes, the 429 backpressure path, /statusz's tenant
// table and /metrics exposition.
func TestSchedHTTPEndToEnd(t *testing.T) {
	cfg := Config{
		Executors: 2,
		TickEvery: time.Millisecond,
		Setup:     SyntheticSetup,
		Admission: Admission{MaxQueued: 64},
	}
	s := MustNew(cfg)
	defer s.Shutdown()
	srv, err := Serve("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	submit := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL()+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	resp, body := submit(`{"tenant":"acme","tasks":16,"rounds":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil || sr.ID == 0 {
		t.Fatalf("bad submit response %q: %v", body, err)
	}

	// Poll until done.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(fmt.Sprintf("%s/jobs/%d", srv.URL(), sr.ID))
		if err != nil {
			t.Fatal(err)
		}
		var info JobInfo
		err = json.NewDecoder(r2.Body).Decode(&info)
		r2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State == "done" {
			break
		}
		if info.State == "failed" {
			t.Fatalf("job failed: %s", info.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unknown kind and bad payloads.
	if resp, _ := submit(`{"kind":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind = %d, want 400", resp.StatusCode)
	}
	if resp, _ := submit(`{`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", resp.StatusCode)
	}

	// /statusz carries the tenant table.
	r3, err := http.Get(srv.URL() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	szBody, _ := io.ReadAll(r3.Body)
	r3.Body.Close()
	var sz struct {
		Status Status `json:"status"`
	}
	if err := json.Unmarshal(szBody, &sz); err != nil {
		t.Fatalf("statusz decode: %v (%s)", err, szBody)
	}
	foundTenant := false
	for _, ts := range sz.Status.Tenants {
		if ts.Tenant == "acme" && ts.Completed >= 1 {
			foundTenant = true
		}
	}
	if !foundTenant {
		t.Fatalf("statusz tenant table missing acme: %s", szBody)
	}

	// /metrics carries sched_* and the executor runtimes' idx_* families.
	r4, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(r4.Body)
	r4.Body.Close()
	prom := string(promBody)
	for _, want := range []string{"sched_enqueued_total", "sched_queue_depth", "idx_tasks_executed_total"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// HTTP backpressure: block both executors with a tiny queue bound.
	cfg2 := quietCfg()
	cfg2.Admission = Admission{MaxQueued: 1}
	s2 := MustNew(cfg2)
	defer s2.Shutdown()
	srv2, err := Serve("127.0.0.1:0", s2, map[string]KindFunc{
		"block": func(SubmitRequest) (RunFunc, error) {
			return func(jc *JobContext, _ *rt.Runtime) error {
				<-jc.Preempted() // holds until shutdown closes nothing; rely on test end
				return nil
			}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	release := make(chan struct{})
	blockingJobs(t, s2, 2, release)
	if _, err := s2.Submit(JobSpec{Tenant: "q", Run: func(*JobContext, *rt.Runtime) error { return nil }}); err != nil {
		t.Fatal(err)
	}
	r5, err := http.Post(srv2.URL()+"/jobs", "application/json", strings.NewReader(`{"tenant":"q","kind":"block"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r5.Body)
	r5.Body.Close()
	if r5.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429", r5.StatusCode)
	}
	if r5.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	close(release)

	// 404 and 503 paths.
	r6, _ := http.Get(srv.URL() + "/jobs/99999")
	io.Copy(io.Discard, r6.Body)
	r6.Body.Close()
	if r6.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", r6.StatusCode)
	}
}
