// Package sched is the multi-tenant job scheduler and admission layer above
// internal/rt: where the runtime executes one index-launch program, sched
// accepts many concurrent jobs — each tagged with a tenant, a priority
// class, a resource demand and an optional deadline — admits them through
// per-tenant quotas and token-bucket rate limits, orders them with a
// pluggable queue discipline (FIFO, strict priority, or weighted fair share
// with deficit counters), and runs them through a bounded pool of
// rt.Runtime executors over a shared simulated machine.
//
// The package is split the same way internal/health splits detection from
// wiring: a pure, deterministic policy core (core.go, queue.go,
// admission.go) that has no clock of its own — logical time is the tick
// counter, advanced only by its owner — and a concurrent front end
// (sched.go, http.go) that drives the core under a mutex, executes jobs on
// goroutines, and emits obs events and metrics. Every decision the core
// takes (enqueue, reject, admit, complete, preempt, expire, drain) is
// appended to a decision log whose rendered form is canonical: for a fixed
// seeded arrival trace (trace.go) the log is byte-identical across runs,
// which is what lets the chaos/soak matrices extend to scheduling.
package sched

import (
	"errors"

	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
)

// JobID identifies a submitted job. IDs are assigned densely from 1 in
// submission order.
type JobID int64

// JobState is a job's position in its lifecycle.
type JobState uint8

const (
	// JobQueued jobs have been admitted into the queue and await dispatch.
	JobQueued JobState = iota
	// JobRunning jobs occupy an executor.
	JobRunning
	// JobDone jobs completed successfully.
	JobDone
	// JobFailed jobs completed with an error (body error, fence error,
	// panic, or deadline expiry).
	JobFailed
)

var jobStateNames = [...]string{"queued", "running", "done", "failed"}

// String renders the state name used in the HTTP API and /statusz.
func (s JobState) String() string {
	if int(s) < len(jobStateNames) {
		return jobStateNames[s]
	}
	return "unknown"
}

// RunFunc is a job body: an index-launch program issued against the
// executor runtime the scheduler leased to the job. The scheduler fences
// the runtime after Run returns, so bodies need not wait for their own
// launches; any task failure surfaces as the job's error. Bodies that want
// to cooperate with preemption should check ctx.Preempted between launches
// and return ErrPreempted — the job is then re-queued and re-run from the
// start, so bodies must tolerate re-execution.
type RunFunc func(ctx *JobContext, r *rt.Runtime) error

// ErrPreempted is returned by a cooperating job body to yield its executor
// to a higher-priority arrival. The scheduler re-queues the job.
var ErrPreempted = errors.New("sched: job preempted")

// ErrDeadlineExpired marks a job dropped at dispatch because it waited in
// queue past its deadline.
var ErrDeadlineExpired = errors.New("sched: deadline expired in queue")

// ErrSchedulerClosed marks a submission or queued job abandoned because the
// scheduler was shut down.
var ErrSchedulerClosed = errors.New("sched: scheduler closed")

// JobSpec describes one submitted job.
type JobSpec struct {
	// Tenant is the submitting tenant; empty defaults to "default".
	// Admission quotas, rate limits and fair-share weights key off it.
	Tenant string
	// Priority is the job's priority class; higher is more urgent. Only the
	// strict-priority discipline (and preemption) consult it.
	Priority int
	// Cost is the job's resource demand in abstract units (its deficit
	// charge under weighted fair share); values < 1 count as 1.
	Cost int64
	// Deadline bounds the queue wait in scheduler ticks; a job still queued
	// Deadline ticks after enqueue is dropped at dispatch with
	// ErrDeadlineExpired. 0 means no deadline.
	Deadline int64
	// Run is the job body. Trace-driven jobs (trace.go) carry no body.
	Run RunFunc
	// Request is the job's wire form when it arrived through the HTTP API.
	// It is what the journal persists: after a restart the body is rebuilt
	// from Request through the kind registry. Jobs submitted programmatically
	// (Request == nil) recover as scheduling state only.
	Request *SubmitRequest
}

// cost returns the spec's effective cost (>= 1).
func (s JobSpec) cost() int64 {
	if s.Cost < 1 {
		return 1
	}
	return s.Cost
}

// Job is one submitted job's bookkeeping. The core fields (ticks) are
// logical; the live fields (clock, state, done) belong to the concurrent
// scheduler and are guarded by its mutex.
type Job struct {
	ID   JobID
	Spec JobSpec

	// enqueueTick / admitTick stamp the core's logical clock; waited is
	// their difference at admission.
	enqueueTick int64
	admitTick   int64

	// attempts counts dispatches (1 on first run; preemption re-runs bump
	// it).
	attempts int

	// service is the job's service time in ticks for trace-driven jobs
	// (carried so the durable trace driver can rebuild its completion
	// schedule after recovery); 0 for live jobs.
	service int64

	// Live scheduler state.
	enqueueNS        int64
	state            JobState
	err              error
	done             chan struct{}
	pctx             *JobContext
	preemptRequested bool

	// tc is the job's root span context (zero when tracing is off);
	// preempted records that at least one attempt yielded, for the tail
	// sampler's outcome.
	tc        obs.TraceRef
	preempted bool
}

// JobContext is the per-attempt context a job body receives.
type JobContext struct {
	// Job and Tenant identify the attempt's job.
	Job    JobID
	Tenant string
	// Attempt is 1 for the first run and increments per preemption re-run.
	Attempt int
	// Trace is the job's root span context; zero when tracing is off.
	// Bodies that do their own instrumentation may derive children of it.
	Trace obs.TraceRef

	preempt chan struct{}
}

// Preempted returns a channel that closes when the scheduler asks this job
// to yield its executor to a higher-priority arrival. Bodies should check
// it between launches and return ErrPreempted; ignoring it is safe — the
// job simply runs to completion.
func (c *JobContext) Preempted() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.preempt
}
