package sched

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Queue is a pluggable queue discipline. Implementations need no internal
// locking — the scheduler serializes access under its mutex (and the trace
// driver is single-threaded) — but they must be deterministic: the same
// Push/Pop/Requeue sequence yields the same job order, with no dependence
// on map iteration or clocks. That determinism is what makes the decision
// log byte-identical per seed.
type Queue interface {
	// Name identifies the discipline in the decision log and /statusz.
	Name() string
	// Push appends a newly admitted job.
	Push(j *Job)
	// Requeue returns a preempted job; it re-enters at the front of its
	// class/tenant so a preempted job is the next of its peers to run.
	Requeue(j *Job)
	// Pop removes and returns the next job to dispatch, nil when empty.
	Pop() *Job
	// Len returns the number of queued jobs.
	Len() int
}

// StatefulQueue is the optional interface a discipline implements to be
// usable under a durable scheduler (Config.DataDir): SaveState serializes
// the discipline's internal order (job references by ID) into a snapshot,
// and LoadState rebuilds it from the snapshot's job table. Every built-in
// discipline implements it; custom disciplines that don't are rejected when
// durability is enabled.
type StatefulQueue interface {
	Queue
	// SaveState serializes the discipline's state. Jobs are referenced by
	// ID only; their specs travel in the snapshot's job table.
	SaveState() (json.RawMessage, error)
	// LoadState rebuilds the discipline from saved state, resolving job IDs
	// through jobs. Unknown IDs are corruption and must error.
	LoadState(jobs map[JobID]*Job, state json.RawMessage) error
}

// resolveIDs maps saved job IDs back to live jobs, erroring on unknown IDs.
func resolveIDs(jobs map[JobID]*Job, ids []JobID) ([]*Job, error) {
	out := make([]*Job, 0, len(ids))
	for _, id := range ids {
		j, ok := jobs[id]
		if !ok {
			return nil, fmt.Errorf("sched: queue state references unknown job %d", id)
		}
		out = append(out, j)
	}
	return out, nil
}

func jobIDs(jobs []*Job) []JobID {
	ids := make([]JobID, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	return ids
}

// fifo is the building-block job list: append at tail, pop at head.
type fifo struct{ jobs []*Job }

func (f *fifo) push(j *Job)  { f.jobs = append(f.jobs, j) }
func (f *fifo) front(j *Job) { f.jobs = append([]*Job{j}, f.jobs...) }
func (f *fifo) len() int     { return len(f.jobs) }
func (f *fifo) head() *Job {
	if len(f.jobs) == 0 {
		return nil
	}
	return f.jobs[0]
}
func (f *fifo) pop() *Job {
	if len(f.jobs) == 0 {
		return nil
	}
	j := f.jobs[0]
	f.jobs[0] = nil
	f.jobs = f.jobs[1:]
	return j
}

// fifoQueue serves jobs in arrival order, blind to tenant and priority.
type fifoQueue struct{ q fifo }

// NewFIFO returns the arrival-order discipline.
func NewFIFO() Queue { return &fifoQueue{} }

func (f *fifoQueue) Name() string   { return "fifo" }
func (f *fifoQueue) Push(j *Job)    { f.q.push(j) }
func (f *fifoQueue) Requeue(j *Job) { f.q.front(j) }
func (f *fifoQueue) Pop() *Job      { return f.q.pop() }
func (f *fifoQueue) Len() int       { return f.q.len() }

// priorityQueue serves the highest priority class first, FIFO within a
// class. A lower class is never served while a higher class has a queued
// job — the never-inverts property the policy tests lock in.
type priorityQueue struct {
	classes map[int]*fifo
	order   []int // present classes, sorted descending
	n       int
}

// NewStrictPriority returns the strict-priority discipline.
func NewStrictPriority() Queue { return &priorityQueue{classes: map[int]*fifo{}} }

func (p *priorityQueue) Name() string { return "priority" }
func (p *priorityQueue) Len() int     { return p.n }

func (p *priorityQueue) class(prio int) *fifo {
	c := p.classes[prio]
	if c == nil {
		c = &fifo{}
		p.classes[prio] = c
		p.order = append(p.order, prio)
		sort.Sort(sort.Reverse(sort.IntSlice(p.order)))
	}
	return c
}

func (p *priorityQueue) Push(j *Job) {
	p.class(j.Spec.Priority).push(j)
	p.n++
}

func (p *priorityQueue) Requeue(j *Job) {
	p.class(j.Spec.Priority).front(j)
	p.n++
}

func (p *priorityQueue) Pop() *Job {
	for _, prio := range p.order {
		if j := p.classes[prio].pop(); j != nil {
			p.n--
			return j
		}
	}
	return nil
}

// fairQueue is weighted fair share by tenant via deficit round robin: each
// tenant owns a FIFO and a deficit counter; every time the rotor reaches a
// tenant it earns quantum x weight deficit, and its head job is served once
// the deficit covers the job's cost. Over a backlogged interval each
// tenant's served cost converges to its weight share — the ±5% property
// TestFairShareConvergence holds the implementation to. Tenants become
// active in first-arrival order, which keeps the rotor deterministic.
type fairQueue struct {
	quantum   int64
	weights   map[string]int
	defWeight int

	tenants map[string]*tenantQ
	active  []string // tenants with queued jobs, activation order
	cursor  int
	granted bool // current rotor position already earned its quantum
	n       int
}

type tenantQ struct {
	q       fifo
	deficit int64
}

// NewWeightedFair returns the deficit-round-robin fair-share discipline.
// quantum is the deficit earned per rotor visit before weighting (values
// < 1 default to 1); weights maps tenant to weight, defaulting to
// defaultWeight (itself defaulted to 1) for tenants not listed.
func NewWeightedFair(quantum int64, weights map[string]int, defaultWeight int) Queue {
	if quantum < 1 {
		quantum = 1
	}
	if defaultWeight < 1 {
		defaultWeight = 1
	}
	w := make(map[string]int, len(weights))
	for t, v := range weights {
		if v >= 1 {
			w[t] = v
		}
	}
	return &fairQueue{quantum: quantum, weights: w, defWeight: defaultWeight, tenants: map[string]*tenantQ{}}
}

func (f *fairQueue) Name() string { return "fair" }
func (f *fairQueue) Len() int     { return f.n }

func (f *fairQueue) weight(tenant string) int64 {
	if w, ok := f.weights[tenant]; ok {
		return int64(w)
	}
	return int64(f.defWeight)
}

func (f *fairQueue) enqueue(j *Job, front bool) {
	t := j.Spec.Tenant
	tq := f.tenants[t]
	if tq == nil {
		tq = &tenantQ{}
		f.tenants[t] = tq
	}
	if tq.q.len() == 0 {
		f.active = append(f.active, t)
	}
	if front {
		tq.q.front(j)
	} else {
		tq.q.push(j)
	}
	f.n++
}

func (f *fairQueue) Push(j *Job)    { f.enqueue(j, false) }
func (f *fairQueue) Requeue(j *Job) { f.enqueue(j, true) }

// deactivate removes the tenant at active index i, keeping the rotor
// position stable. An idle tenant forfeits its residual deficit — standard
// DRR, so bursty tenants cannot bank credit while absent.
func (f *fairQueue) deactivate(i int) {
	f.tenants[f.active[i]].deficit = 0
	f.active = append(f.active[:i], f.active[i+1:]...)
	if i < f.cursor {
		f.cursor--
	}
	if f.cursor >= len(f.active) {
		f.cursor = 0
	}
	f.granted = false
}

func (f *fairQueue) Pop() *Job {
	if f.n == 0 {
		return nil
	}
	// Deficits grow by quantum x weight per full rotation, so some head job
	// becomes affordable within cost/quantum rotations; the guard is purely
	// defensive.
	for guard := 0; guard < 1<<30; guard++ {
		if f.cursor >= len(f.active) {
			f.cursor = 0
		}
		t := f.active[f.cursor]
		tq := f.tenants[t]
		if !f.granted {
			tq.deficit += f.quantum * f.weight(t)
			f.granted = true
		}
		if head := tq.q.head(); head != nil && tq.deficit >= head.Spec.cost() {
			j := tq.q.pop()
			tq.deficit -= j.Spec.cost()
			f.n--
			if tq.q.len() == 0 {
				f.deactivate(f.cursor)
			}
			// The rotor stays on this tenant while its deficit lasts
			// (granted stays true), serving runs of affordable jobs before
			// rotating on.
			return j
		}
		f.granted = false
		f.cursor++
	}
	panic(fmt.Sprintf("sched: fair queue made no progress over %d jobs", f.n))
}

// --- durable state (StatefulQueue) ---

// SaveState serializes the FIFO as its job IDs in order.
func (f *fifoQueue) SaveState() (json.RawMessage, error) {
	return json.Marshal(jobIDs(f.q.jobs))
}

// LoadState rebuilds the FIFO from saved IDs.
func (f *fifoQueue) LoadState(jobs map[JobID]*Job, state json.RawMessage) error {
	var ids []JobID
	if err := json.Unmarshal(state, &ids); err != nil {
		return fmt.Errorf("sched: fifo state: %w", err)
	}
	resolved, err := resolveIDs(jobs, ids)
	if err != nil {
		return err
	}
	f.q = fifo{jobs: resolved}
	return nil
}

// priorityState is one priority class's saved order.
type priorityState struct {
	Prio int     `json:"prio"`
	IDs  []JobID `json:"ids"`
}

// SaveState serializes non-empty classes highest-priority first.
func (p *priorityQueue) SaveState() (json.RawMessage, error) {
	var classes []priorityState
	for _, prio := range p.order {
		if c := p.classes[prio]; c.len() > 0 {
			classes = append(classes, priorityState{Prio: prio, IDs: jobIDs(c.jobs)})
		}
	}
	return json.Marshal(classes)
}

// LoadState rebuilds the classes; re-pushing in saved order reproduces both
// the per-class FIFO order and the sorted class index.
func (p *priorityQueue) LoadState(jobs map[JobID]*Job, state json.RawMessage) error {
	var classes []priorityState
	if err := json.Unmarshal(state, &classes); err != nil {
		return fmt.Errorf("sched: priority state: %w", err)
	}
	p.classes, p.order, p.n = map[int]*fifo{}, nil, 0
	for _, cs := range classes {
		resolved, err := resolveIDs(jobs, cs.IDs)
		if err != nil {
			return err
		}
		for _, j := range resolved {
			p.class(cs.Prio).push(j)
			p.n++
		}
	}
	return nil
}

// fairState is the DRR discipline's saved rotor: active tenants in
// activation order with their deficits and queued IDs, plus the rotor
// cursor and whether the current position already earned its quantum.
type fairState struct {
	Tenants []fairTenantState `json:"tenants"`
	Cursor  int               `json:"cursor"`
	Granted bool              `json:"granted"`
}

type fairTenantState struct {
	Tenant  string  `json:"tenant"`
	Deficit int64   `json:"deficit"`
	IDs     []JobID `json:"ids"`
}

// SaveState serializes the DRR rotor. Idle tenants carry no state (their
// deficit is forfeited on deactivation), so only active ones are saved.
func (f *fairQueue) SaveState() (json.RawMessage, error) {
	st := fairState{Cursor: f.cursor, Granted: f.granted}
	for _, t := range f.active {
		tq := f.tenants[t]
		st.Tenants = append(st.Tenants, fairTenantState{
			Tenant: t, Deficit: tq.deficit, IDs: jobIDs(tq.q.jobs),
		})
	}
	return json.Marshal(st)
}

// LoadState rebuilds the rotor: pushing tenants in saved activation order
// reproduces the active list, then deficits, cursor and the granted flag
// are restored directly.
func (f *fairQueue) LoadState(jobs map[JobID]*Job, state json.RawMessage) error {
	var st fairState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("sched: fair state: %w", err)
	}
	f.tenants, f.active, f.n = map[string]*tenantQ{}, nil, 0
	for _, ts := range st.Tenants {
		resolved, err := resolveIDs(jobs, ts.IDs)
		if err != nil {
			return err
		}
		for _, j := range resolved {
			f.enqueue(j, false)
		}
		if tq := f.tenants[ts.Tenant]; tq != nil {
			tq.deficit = ts.Deficit
		}
	}
	f.cursor, f.granted = st.Cursor, st.Granted
	if f.cursor > len(f.active) {
		return fmt.Errorf("sched: fair state cursor %d past %d active tenants", f.cursor, len(f.active))
	}
	return nil
}
