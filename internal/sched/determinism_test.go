package sched

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// The scheduling determinism contract, mirroring the chaos/soak seed
// matrices: for every seed in SCHED_SEEDS (default "1,7,42"), replaying the
// same seeded arrival trace through the same configuration must produce a
// byte-identical rendered decision log — across repeats, and across every
// queue discipline. CI runs this under -race for each seed in its matrix.

func schedSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("SCHED_SEEDS")
	if env == "" {
		env = "1,7,42"
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			t.Fatalf("SCHED_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("SCHED_SEEDS is set but empty")
	}
	return seeds
}

// traceConfigs returns the configurations the determinism matrix replays:
// every discipline, with admission limits and a capacity dip in play.
func traceConfigs() map[string]func() TraceConfig {
	adm := Admission{
		MaxQueued: 256,
		Default:   Quota{Rate: 2, Burst: 4},
		Tenants: map[string]Quota{
			"a": {Weight: 1, Rate: 3, Burst: 6, MaxQueued: 128},
			"b": {Weight: 2, Rate: 3, Burst: 6},
			"c": {Weight: 4},
		},
	}
	capDip := func(tick int64) float64 {
		if tick > 40 && tick < 80 {
			return 0.5 // half the nodes quarantined for a window
		}
		return 1
	}
	return map[string]func() TraceConfig{
		"fifo": func() TraceConfig {
			return TraceConfig{Executors: 3, Queue: NewFIFO(), Admission: adm, CapacityAt: capDip}
		},
		"priority": func() TraceConfig {
			return TraceConfig{Executors: 3, Queue: NewStrictPriority(), Admission: adm, CapacityAt: capDip}
		},
		"fair": func() TraceConfig {
			return TraceConfig{Executors: 3, Queue: NewWeightedFair(1, adm.Weights(), 1), Admission: adm, CapacityAt: capDip}
		},
	}
}

func TestSchedDeterministicLog(t *testing.T) {
	opt := TraceOptions{
		Jobs: 400, MaxPriority: 3, MaxInterArrival: 2, MaxCost: 4,
		MinService: 2, MaxService: 10,
	}
	for _, seed := range schedSeeds(t) {
		tr := GenTrace(seed, opt)
		for name, mk := range traceConfigs() {
			first := RunTrace(tr, mk())
			logA := RenderLog(first.Log)
			if logA == "" {
				t.Fatalf("seed %d %s: empty decision log", seed, name)
			}
			for rep := 0; rep < 3; rep++ {
				got := RenderLog(RunTrace(tr, mk()).Log)
				if got != logA {
					t.Fatalf("seed %d %s: decision log differs on replay %d:\nfirst:\n%s\nreplay:\n%s",
						seed, name, rep, head(logA, 20), head(got, 20))
				}
			}
			// The trace itself is a pure function of the seed.
			if got := GenTrace(seed, opt); len(got.Jobs) != len(tr.Jobs) || got.Jobs[0] != tr.Jobs[0] {
				t.Fatalf("seed %d: GenTrace not reproducible", seed)
			}
		}
	}
}

// head returns the first n lines of s, for readable failure output.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestTraceOutcomesDeterministic locks the derived outcome numbers (the
// BENCH_sched.json inputs) to the log: same seed, same result.
func TestTraceOutcomesDeterministic(t *testing.T) {
	for _, seed := range schedSeeds(t) {
		tr := GenTrace(seed, TraceOptions{Jobs: 600, MaxInterArrival: 1})
		cfg := func() TraceConfig {
			return TraceConfig{Executors: 4, Queue: NewWeightedFair(1, map[string]int{"b": 2}, 1)}
		}
		a, b := RunTrace(tr, cfg()), RunTrace(tr, cfg())
		if a.Makespan != b.Makespan || a.JobsPerKTick != b.JobsPerKTick || a.P99Wait() != b.P99Wait() {
			t.Fatalf("seed %d: derived outcomes differ: %+v vs %+v", seed, a, b)
		}
		if a.Makespan <= 0 || a.JobsPerKTick <= 0 {
			t.Fatalf("seed %d: degenerate outcomes: makespan=%d rate=%f", seed, a.Makespan, a.JobsPerKTick)
		}
	}
}
