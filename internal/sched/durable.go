package sched

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/wal"
)

// DurableOptions configures the scheduler's write-ahead journal. The zero
// value of every field takes the default noted on it; the zero Dir disables
// durability entirely.
type DurableOptions struct {
	// Dir is the journal directory; created if missing.
	Dir string
	// Fsync is the sync policy (wal.SyncInterval by default).
	Fsync wal.SyncPolicy
	// FsyncInterval is the coalescing window for wal.SyncInterval; 0
	// defaults to 100ms.
	FsyncInterval time.Duration
	// SegmentBytes caps one journal segment; 0 defaults to 64 MiB.
	SegmentBytes int64
	// SnapshotEvery is the snapshot cadence in journaled ops; 0 defaults to
	// 4096.
	SnapshotEvery int
	// OpDelay pauses after every journaled op — the pacing knob the
	// crash-injection harness uses to make an external SIGKILL land mid-run.
	OpDelay time.Duration
	// MaxOps stops the run after this many journaled ops — the in-process
	// crash for recovery tests. 0 runs to completion.
	MaxOps int

	// Metrics (optional) receives the wal_*/recover_* families; Prof
	// (optional) receives journal/snapshot/recover spans.
	Metrics *metrics.Durability
	Prof    *obs.Recorder
}

// openDurable opens (or creates) the journal at o.Dir and rebuilds
// scheduler state from it: torn-tail cleanup, newest-snapshot load, op
// replay. It reports recovery metrics and the recover span, and returns the
// ready journal plus the rebuilt core.
func openDurable(o DurableOptions, timed bool, q Queue, adm *admission, slots int,
	rebuild func(*SubmitRequest) RunFunc, termCap int) (*journal, *recoveredCore, error) {
	var nowNS func() int64
	if o.Prof != nil {
		nowNS = o.Prof.Now
	}
	start := int64(0)
	if o.Prof != nil {
		start = o.Prof.Now()
	}
	log, rec, err := wal.Open(o.Dir, wal.Options{
		Fsync:        o.Fsync,
		Interval:     o.FsyncInterval,
		SegmentBytes: o.SegmentBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	rc, err := rebuildCore(rec, q, adm, slots, rebuild, termCap)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	if mx := o.Metrics; mx != nil {
		if rc.report.Recovered {
			mx.Recoveries.Inc()
		}
		if rc.report.SnapshotLoaded {
			mx.SnapshotLoads.Inc()
		}
		mx.ReplayedRecords.Add(int64(rc.report.ReplayedOps))
		mx.TruncatedBytes.Add(rc.report.TruncatedBytes)
		mx.RequeuedJobs.Add(int64(rc.report.RequeuedJobs))
		mx.ResumedJobs.Add(int64(rc.report.ResumedJobs))
	}
	if o.Prof != nil {
		o.Prof.Span(0, obs.StageRecover, "",
			fmt.Sprintf("replayed:%d", rc.report.ReplayedOps), domain.Point{}, start, o.Prof.Now())
	}
	jn := newJournal(log, o.SnapshotEvery, o.Metrics, timed, o.Prof, nowNS)
	return jn, rc, nil
}

// DurableTraceResult is RunTraceDurable's outcome: the trace result (every
// field derived from the decision log, so a crash-resumed run reports
// exactly what the crash-free run would), plus what recovery found and
// whether the trace ran to completion.
type DurableTraceResult struct {
	TraceResult
	// Report describes startup recovery.
	Report RecoveryReport
	// Done reports the trace completed (false when MaxOps stopped it).
	Done bool
	// Ops counts the ops journaled by this run (not including replayed
	// history).
	Ops int
}

// traceAux is the trace driver's owner-private snapshot state: the next
// arrival index.
type traceAux struct {
	Next int `json:"next"`
}

// RunTraceDurable is RunTrace with a write-ahead journal underneath: every
// core op is journaled before the virtual clock moves past it, and on start
// the run resumes from whatever consistent prefix the journal holds. Killing
// the process at any point and re-running with the same (trace, config, dir)
// converges on a decision log byte-identical to the crash-free run — the
// determinism contract the crash-injection harness locks in.
func RunTraceDurable(tr Trace, cfg TraceConfig, o DurableOptions) (*DurableTraceResult, error) {
	slots := cfg.Executors
	if slots < 1 {
		slots = 2
	}
	jn, rc, err := openDurable(o, o.Metrics != nil || o.Prof != nil,
		cfg.Queue, newAdmission(cfg.Admission), slots, nil, 0)
	if err != nil {
		return nil, err
	}
	defer jn.log.Close()

	c := rc.core
	jobs := rc.jobs
	id := rc.nextID
	capacity := rc.capacity
	out := &DurableTraceResult{Report: rc.report}

	// Resume the arrival cursor: the snapshot's aux holds it as of the
	// snapshot; replayed submit ops advance it past that.
	next := 0
	if len(rc.aux) > 0 {
		var aux traceAux
		if err := json.Unmarshal(rc.aux, &aux); err != nil {
			return nil, fmt.Errorf("sched: decode trace aux state: %w", err)
		}
		next = aux.Next
	}
	if rc.maxArrival+1 > next {
		next = rc.maxArrival + 1
	}

	// Rebuild the completion schedule for jobs running at the crash: a
	// trace job admitted at tick T with service S completes at T+S.
	finishing := map[int64][]*Job{}
	inFlight := 0
	for _, j := range c.running {
		svc := j.service
		if svc < 1 {
			svc = 1
		}
		finishing[j.admitTick+svc] = append(finishing[j.admitTick+svc], j)
		inFlight++
	}

	logOp := func(op op) error {
		if err := jn.logOp(op); err != nil {
			return err
		}
		out.Ops++
		if o.OpDelay > 0 {
			time.Sleep(o.OpDelay)
		}
		return nil
	}
	stopped := func() bool { return o.MaxOps > 0 && out.Ops >= o.MaxOps }
	snapshot := func() error {
		aux, err := json.Marshal(traceAux{Next: next})
		if err != nil {
			return err
		}
		st, err := captureSnapshot(c, jobs, id, capacity, rc.terminal, rc.dedup, aux)
		if err != nil {
			return err
		}
		return jn.snapshot(st)
	}
	finish := func(j *Job, failed bool, msg string) {
		delete(jobs, j.ID)
		rc.terminal.add(TerminalJob{
			ID: j.ID, Tenant: j.Spec.Tenant, Priority: j.Spec.Priority,
			Failed: failed, Attempts: j.attempts, Error: msg,
		})
	}

	for !stopped() {
		if cfg.CapacityAt != nil {
			if f := cfg.CapacityAt(c.tick); f != capacity {
				capacity = f
				c.adm.setCapacity(f)
				if err := logOp(op{K: opCapacity, Cap: f}); err != nil {
					return nil, err
				}
			}
		}
		// 1. Completions due now.
		if done := finishing[c.tick]; len(done) > 0 {
			sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
			for _, j := range done {
				c.complete(j, nil)
				inFlight--
				finish(j, false, "")
				if err := logOp(op{K: opComplete, Job: j.ID}); err != nil {
					return nil, err
				}
			}
			delete(finishing, c.tick)
		}
		// 2. Arrivals due now. Rejected submissions are journaled too:
		// replay reproduces the reject (and its decision) deterministically.
		for next < len(tr.Jobs) && tr.Jobs[next].At <= c.tick && !stopped() {
			a := tr.Jobs[next]
			arr := next
			next++
			id++
			j := &Job{ID: id, Spec: JobSpec{
				Tenant: a.Tenant, Priority: a.Priority, Cost: a.Cost, Deadline: a.Deadline,
			}, service: a.Service}
			if _, rej := c.submit(j); rej == nil {
				jobs[id] = j
			}
			if err := logOp(op{K: opSubmit, Job: id, Spec: wireFromJob(j), Arr: arr}); err != nil {
				return nil, err
			}
		}
		// 3. Dispatch onto free slots.
		for !stopped() {
			j, expired := c.dispatch()
			for _, e := range expired {
				finish(e, true, ErrDeadlineExpired.Error())
			}
			if j == nil && len(expired) == 0 {
				break
			}
			var jid JobID
			if j != nil {
				jid = j.ID
				svc := j.service
				if svc < 1 {
					svc = 1
				}
				finishing[c.tick+svc] = append(finishing[c.tick+svc], j)
				inFlight++
			}
			if err := logOp(op{K: opDispatch, Job: jid}); err != nil {
				return nil, err
			}
			if j == nil {
				break
			}
		}
		if jn.wantSnapshot() {
			if err := snapshot(); err != nil {
				return nil, err
			}
		}
		if next >= len(tr.Jobs) && inFlight == 0 && c.q.Len() == 0 {
			out.Done = true
			break
		}
		jn.tick()
		c.advance()
	}

	if err := jn.log.Sync(); err != nil {
		return nil, err
	}
	out.TraceResult = deriveResult(c.log)
	return out, nil
}

// deriveResult reconstructs a TraceResult purely from the decision log, so
// a run resumed across any number of crashes reports exactly what one
// uninterrupted run reports. Costs come from enqueue details, waits from
// admit details — both part of the canonical rendered form.
func deriveResult(log []Decision) TraceResult {
	res := TraceResult{
		Completed:  map[string]int{},
		Rejected:   map[string]int{},
		Expired:    map[string]int{},
		ServedCost: map[string]int64{},
		Log:        log,
	}
	cost := map[JobID]int64{}
	for _, d := range log {
		switch d.Kind {
		case KindEnqueue:
			var prio int
			var c int64
			if _, err := fmt.Sscanf(d.Detail, "prio=%d cost=%d", &prio, &c); err == nil {
				cost[d.Job] = c
			}
		case KindAdmit:
			c := cost[d.Job]
			if c < 1 {
				c = 1
			}
			res.ServedCost[d.Tenant] += c
			var wait int64
			if _, err := fmt.Sscanf(d.Detail, "wait=%d", &wait); err == nil {
				res.Waits = append(res.Waits, wait)
			}
		case KindComplete:
			res.Completed[d.Tenant]++
		case KindReject:
			res.Rejected[d.Tenant]++
		case KindExpire:
			res.Expired[d.Tenant]++
		}
		if d.Tick > res.Makespan {
			res.Makespan = d.Tick
		}
	}
	var completed int
	for _, n := range res.Completed {
		completed += n
	}
	if res.Makespan > 0 {
		res.JobsPerKTick = float64(completed) * 1000 / float64(res.Makespan)
	}
	return res
}
