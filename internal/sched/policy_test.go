package sched

import (
	"math"
	"testing"
)

// Policy properties over seeded traces: weighted fair share converges to
// the configured weights, and strict priority never inverts. Both are
// checked against the queue disciplines directly and through the virtual
// -time driver, so the properties hold for the exact code paths the live
// scheduler dispatches through.

// TestFairShareConvergence: three tenants with weights 1:2:4 submit a fully
// backlogged seeded trace; over the window where all tenants stay
// backlogged, each tenant's share of served cost must match its weight
// share within ±5 percentage points.
func TestFairShareConvergence(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 2, "c": 4}
	adm := Admission{
		MaxQueued: 20000,
		Tenants: map[string]Quota{
			"a": {Weight: 1}, "b": {Weight: 2}, "c": {Weight: 4},
		},
	}
	for _, seed := range []int64{1, 7, 42} {
		// 10k jobs, all arriving at tick 0: a pure backlog.
		tr := GenTrace(seed, TraceOptions{
			Jobs: 10000, MaxInterArrival: 0, MaxCost: 3, MinService: 1, MaxService: 2,
		})
		res := RunTrace(tr, TraceConfig{
			Executors: 2,
			Queue:     NewWeightedFair(1, weights, 1),
			Admission: adm,
		})

		// Measure shares over the early admit window, while every tenant is
		// still backlogged. The heaviest tenant (weight 4/7) drains its ~1/3
		// of arrivals first; admits before index 3000 are safely inside the
		// all-backlogged regime.
		const window = 3000
		served := map[string]int64{}
		var total int64
		admits := 0
		for _, d := range res.Log {
			if d.Kind != KindAdmit {
				continue
			}
			if admits >= window {
				break
			}
			admits++
			// Cost is not in the admit record; recover it from the trace by
			// job ID (jobs are numbered in arrival order from 1).
			cost := tr.Jobs[d.Job-1].Cost
			served[d.Tenant] += cost
			total += cost
		}
		if admits < window {
			t.Fatalf("seed %d: only %d admits, want >= %d", seed, admits, window)
		}
		var wsum int64
		for _, w := range weights {
			wsum += int64(w)
		}
		for tenant, w := range weights {
			want := float64(w) / float64(wsum)
			got := float64(served[tenant]) / float64(total)
			if math.Abs(got-want) > 0.05 {
				t.Errorf("seed %d: tenant %s share = %.3f, want %.3f ± 0.05 (served %d of %d)",
					seed, tenant, got, want, served[tenant], total)
			}
		}
	}
}

// TestStrictPriorityNeverInverts drives the priority queue through a seeded
// push/pop interleaving and asserts the queue-level property: a pop never
// returns a job while a strictly higher-priority job is queued.
func TestStrictPriorityNeverInverts(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := &splitmix64{s: uint64(seed)}
		q := NewStrictPriority()
		queued := map[int]int{} // priority -> count
		var id JobID
		for op := 0; op < 20000; op++ {
			if rng.intn(3) > 0 || q.Len() == 0 { // push-biased to build depth
				id++
				prio := int(rng.intn(5))
				q.Push(&Job{ID: id, Spec: JobSpec{Tenant: "t", Priority: prio}})
				queued[prio]++
				continue
			}
			j := q.Pop()
			if j == nil {
				t.Fatalf("seed %d op %d: Pop returned nil with Len=%d", seed, op, q.Len())
			}
			for prio, n := range queued {
				if n > 0 && prio > j.Spec.Priority {
					t.Fatalf("seed %d op %d: popped priority %d while %d jobs at priority %d queued",
						seed, op, j.Spec.Priority, n, prio)
				}
			}
			queued[j.Spec.Priority]--
		}
		// Drain: priorities must come out in non-increasing order.
		last := int(math.MaxInt32)
		for q.Len() > 0 {
			j := q.Pop()
			if j.Spec.Priority > last {
				t.Fatalf("seed %d: drain inverted: %d after %d", seed, j.Spec.Priority, last)
			}
			last = j.Spec.Priority
		}
	}
}

// TestStrictPriorityEndToEnd runs priorities through the trace driver: with
// one executor and a backlog, completion order must respect priority.
func TestStrictPriorityEndToEnd(t *testing.T) {
	tr := GenTrace(42, TraceOptions{Jobs: 200, MaxPriority: 3, MinService: 1, MaxService: 1})
	res := RunTrace(tr, TraceConfig{Executors: 1, Queue: NewStrictPriority()})
	// Replay the log: after the backlog forms (first admit done), any admit
	// must pick the highest priority then queued.
	type qjob struct{ prio int }
	queued := map[JobID]qjob{}
	for _, d := range res.Log {
		switch d.Kind {
		case KindEnqueue:
			queued[d.Job] = qjob{prio: tr.Jobs[d.Job-1].Priority}
		case KindAdmit:
			mine := queued[d.Job]
			delete(queued, d.Job)
			for other, oj := range queued {
				if oj.prio > mine.prio {
					t.Fatalf("admitted j%d (prio %d) while j%d (prio %d) queued",
						d.Job, mine.prio, other, oj.prio)
				}
			}
		}
	}
}

// TestFairQueueRequeueFront: a preempted job re-enters at the front of its
// tenant's line.
func TestFairQueueRequeueFront(t *testing.T) {
	q := NewWeightedFair(1, nil, 1)
	j1 := &Job{ID: 1, Spec: JobSpec{Tenant: "a"}}
	j2 := &Job{ID: 2, Spec: JobSpec{Tenant: "a"}}
	j3 := &Job{ID: 3, Spec: JobSpec{Tenant: "a"}}
	q.Push(j1)
	q.Push(j2)
	q.Requeue(j3)
	if got := q.Pop(); got != j3 {
		t.Fatalf("Pop = j%d, want requeued j3 first", got.ID)
	}
	if got := q.Pop(); got != j1 {
		t.Fatalf("Pop = j%d, want j1", got.ID)
	}
}

// TestAdmissionRetryHints: rejections carry usable retry-after hints and
// match the sentinel.
func TestAdmissionRetryHints(t *testing.T) {
	p := newPolicy(NewFIFO(), newAdmission(Admission{
		MaxQueued: 4,
		Tenants:   map[string]Quota{"rl": {Rate: 0.5, Burst: 1}},
	}), 1)
	// Token bucket: first submit spends the burst, second is rate-limited.
	if _, rej := p.submit(&Job{ID: 1, Spec: JobSpec{Tenant: "rl"}}); rej != nil {
		t.Fatalf("first submit rejected: %v", rej)
	}
	_, rej := p.submit(&Job{ID: 2, Spec: JobSpec{Tenant: "rl"}})
	if rej == nil || rej.Reason != ReasonRateLimited {
		t.Fatalf("second submit: got %+v, want rate-limited", rej)
	}
	if rej.RetryAfterTicks < 1 {
		t.Fatalf("rate-limited rejection has no retry hint: %+v", rej)
	}
	// Refills at 0.5/tick: two ticks restore a token.
	p.advance()
	p.advance()
	if _, rej := p.submit(&Job{ID: 3, Spec: JobSpec{Tenant: "rl"}}); rej != nil {
		t.Fatalf("submit after refill rejected: %v", rej)
	}
	// Zero capacity: no refill can ever admit.
	p.adm.setCapacity(0)
	_, rej = p.submit(&Job{ID: 4, Spec: JobSpec{Tenant: "rl"}})
	if rej == nil || rej.Reason != ReasonNoCapacity {
		t.Fatalf("zero-capacity submit: got %+v, want no-capacity", rej)
	}
	// Queue bound.
	for i := JobID(5); ; i++ {
		_, rej = p.submit(&Job{ID: i, Spec: JobSpec{Tenant: "free"}})
		if rej != nil {
			break
		}
	}
	if rej.Reason != ReasonQueueFull || rej.RetryAfterTicks < 1 {
		t.Fatalf("overflow rejection = %+v, want queue-full with hint", rej)
	}
}

// TestDeadlineExpiry: jobs whose deadline lapses in queue are expired at
// dispatch, not run.
func TestDeadlineExpiry(t *testing.T) {
	tr := Trace{Seed: 0, Jobs: []TraceJob{
		{At: 0, Tenant: "a", Service: 10},
		{At: 0, Tenant: "a", Deadline: 2, Service: 1},
	}}
	res := RunTrace(tr, TraceConfig{Executors: 1})
	if res.Expired["a"] != 1 {
		t.Fatalf("expired = %d, want 1 (log:\n%s)", res.Expired["a"], RenderLog(res.Log))
	}
	if res.Completed["a"] != 1 {
		t.Fatalf("completed = %d, want 1", res.Completed["a"])
	}
}
