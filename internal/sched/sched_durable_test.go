package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"indexlaunch/internal/rt"
)

// Live (concurrent) scheduler durability: journal wiring, idempotent
// resubmission, terminal-state retention across restarts, and the
// drain-vs-append race.

func durableCfg(dir string) Config {
	cfg := quietCfg()
	cfg.Durable.Dir = dir
	return cfg
}

func noopRun(*JobContext, *rt.Runtime) error { return nil }

// TestLiveDurableRestart is the live-mode restart cycle: run jobs, shut
// down, reopen the same directory — terminal states answer queries, the
// idempotency table survives, the decision log continues where it left
// off, and new work flows.
func TestLiveDurableRestart(t *testing.T) {
	dir := t.TempDir()
	s := MustNew(durableCfg(dir))
	var ids []JobID
	for i := 0; i < 8; i++ {
		id, err := s.SubmitIdempotent(JobSpec{Tenant: "a", Run: noopRun}, fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := s.Wait(id); err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
	}
	decisions := s.Status().Decisions
	s.Shutdown()

	s2 := MustNew(durableCfg(dir))
	defer s2.Shutdown()
	rep := s2.Recovery()
	if !rep.Recovered {
		t.Fatal("second open should report recovered state")
	}
	if got := s2.Status().Decisions; got != decisions {
		t.Fatalf("recovered decision count = %d, want %d", got, decisions)
	}
	// Terminal states answer post-restart queries.
	for _, id := range ids {
		info, res := s2.Lookup(id)
		if res != LookupFound || info.State != "done" {
			t.Fatalf("Lookup(%d) after restart = %+v, %v", id, info, res)
		}
		if err := s2.Wait(id); err != nil {
			t.Fatalf("Wait(%d) after restart: %v", id, err)
		}
	}
	// The idempotency table survived: old keys return the original IDs.
	for i, want := range ids {
		got, err := s2.SubmitIdempotent(JobSpec{Tenant: "a", Run: noopRun}, fmt.Sprintf("key-%d", i))
		if err != nil || got != want {
			t.Fatalf("resubmit key-%d = %d, %v; want %d", i, got, err, want)
		}
	}
	// New work runs, with IDs continuing densely.
	id, err := s2.Submit(JobSpec{Tenant: "b", Run: noopRun})
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[len(ids)-1]+1 {
		t.Fatalf("post-restart ID = %d, want %d", id, ids[len(ids)-1]+1)
	}
	if err := s2.Wait(id); err != nil {
		t.Fatal(err)
	}
}

// TestLiveDurableFailedJobState checks failed-job state (error text
// included) survives a restart through the terminal ring.
func TestLiveDurableFailedJobState(t *testing.T) {
	dir := t.TempDir()
	s := MustNew(durableCfg(dir))
	id, err := s.Submit(JobSpec{Tenant: "a", Run: func(*JobContext, *rt.Runtime) error {
		return errors.New("boom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if werr := s.Wait(id); werr == nil {
		t.Fatal("job should fail")
	}
	s.Shutdown()

	s2 := MustNew(durableCfg(dir))
	defer s2.Shutdown()
	info, res := s2.Lookup(id)
	if res != LookupFound || info.State != "failed" || !strings.Contains(info.Error, "boom") {
		t.Fatalf("Lookup after restart = %+v, %v", info, res)
	}
	if werr := s2.Wait(id); werr == nil || !strings.Contains(werr.Error(), "boom") {
		t.Fatalf("Wait after restart = %v", werr)
	}
}

// TestLookupGoneVsUnknown locks the dense-ID contract: assigned-but-evicted
// IDs are Gone, never-assigned IDs are Unknown.
func TestLookupGoneVsUnknown(t *testing.T) {
	cfg := quietCfg()
	cfg.TerminalRetention = 4
	s := MustNew(cfg)
	defer s.Shutdown()
	var ids []JobID
	for i := 0; i < 10; i++ {
		id, err := s.Submit(JobSpec{Tenant: "a", Run: noopRun})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	// The oldest finished jobs fell out of the 4-slot ring.
	if _, res := s.Lookup(ids[0]); res != LookupGone {
		t.Fatalf("Lookup(evicted %d) = %v, want LookupGone", ids[0], res)
	}
	// The newest are still found.
	if info, res := s.Lookup(ids[9]); res != LookupFound || info.State != "done" {
		t.Fatalf("Lookup(recent %d) = %+v, %v", ids[9], info, res)
	}
	// An ID past nextID was never assigned.
	if _, res := s.Lookup(ids[9] + 100); res != LookupUnknown {
		t.Fatalf("Lookup(unassigned) = %v, want LookupUnknown", res)
	}
	if _, res := s.Lookup(0); res != LookupUnknown {
		t.Fatalf("Lookup(0) = %v, want LookupUnknown", res)
	}
}

// TestSubmitIdempotentDedup checks the in-process dedup contract (no
// durability involved): same key, same ID; the key is not consumed by a
// rejected submission.
func TestSubmitIdempotentDedup(t *testing.T) {
	cfg := quietCfg()
	cfg.Admission = Admission{Tenants: map[string]Quota{
		"limited": {Rate: 1, Burst: 1},
	}}
	s := MustNew(cfg)
	defer s.Shutdown()
	a, err := s.SubmitIdempotent(JobSpec{Tenant: "a", Run: noopRun}, "k1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitIdempotent(JobSpec{Tenant: "a", Run: noopRun}, "k1")
	if err != nil || b != a {
		t.Fatalf("duplicate key: got %d, %v; want %d", b, err, a)
	}
	c, err := s.SubmitIdempotent(JobSpec{Tenant: "a", Run: noopRun}, "k2")
	if err != nil || c == a {
		t.Fatalf("fresh key should get a new ID: got %d, %v", c, err)
	}
	// Exhaust the rate-limited tenant's bucket, then submit with a key: the
	// rejection must not bind the key.
	if _, err := s.SubmitIdempotent(JobSpec{Tenant: "limited", Run: noopRun}, "kr"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitIdempotent(JobSpec{Tenant: "limited", Run: noopRun}, "kr2"); err == nil {
		t.Fatal("second limited submission should be rejected")
	}
	// After a refill the same key must submit fresh, not replay the reject.
	s.mu.Lock()
	s.core.adm.refill()
	s.mu.Unlock()
	d, err := s.SubmitIdempotent(JobSpec{Tenant: "limited", Run: noopRun}, "kr2")
	if err != nil || d == 0 {
		t.Fatalf("retry with previously rejected key: %d, %v", d, err)
	}
}

// TestDrainRacesJournalAppend races Drain against concurrent submissions
// and completions, all journaling, under the race detector: the drain must
// settle with the journal consistent (reopenable) and every accepted job
// accounted for.
func TestDrainRacesJournalAppend(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.Executors = 4
	s := MustNew(cfg)

	const submitters = 4
	var wg sync.WaitGroup
	var accepted sync.Map
	start := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				id, err := s.Submit(JobSpec{Tenant: fmt.Sprintf("t%d", g), Run: noopRun})
				if err != nil {
					// Draining (or closed) ends the submitter.
					return
				}
				accepted.Store(id, true)
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	// Every accepted job reached a terminal state.
	accepted.Range(func(k, _ any) bool {
		id := k.(JobID)
		if err := s.Wait(id); err != nil {
			t.Errorf("job %d after drain: %v", id, err)
		}
		return true
	})
	s.Shutdown()

	// The journal reopens cleanly with the full history.
	s2 := MustNew(durableCfg(dir))
	defer s2.Shutdown()
	if !s2.Recovery().Recovered {
		t.Fatal("journal should recover")
	}
	accepted.Range(func(k, _ any) bool {
		id := k.(JobID)
		if _, res := s2.Lookup(id); res != LookupFound {
			t.Errorf("job %d lost across restart: %v", id, res)
		}
		return true
	})
}

// TestHTTPDurableEndpoints exercises the HTTP layer's durability surface:
// Idempotency-Key on POST /jobs, 404 vs 410 on GET /jobs/{id}, and the
// /statusz durability panel.
func TestHTTPDurableEndpoints(t *testing.T) {
	cfg := durableCfg(t.TempDir())
	cfg.TerminalRetention = 2
	cfg.Setup = SyntheticSetup
	s := MustNew(cfg)
	defer s.Shutdown()
	srv, err := Serve("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	post := func(key string) (int, SubmitResponse) {
		req, _ := http.NewRequest("POST", srv.URL()+"/jobs",
			strings.NewReader(`{"tenant":"a","tasks":2,"rounds":1}`))
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr SubmitResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return resp.StatusCode, sr
	}
	code1, r1 := post("same-key")
	if code1 != http.StatusAccepted || r1.ID == 0 {
		t.Fatalf("first POST = %d, %+v", code1, r1)
	}
	code2, r2 := post("same-key")
	if code2 != http.StatusAccepted || r2.ID != r1.ID {
		t.Fatalf("idempotent POST = %d, id %d; want id %d", code2, r2.ID, r1.ID)
	}
	if err := s.Wait(r1.ID); err != nil {
		t.Fatal(err)
	}
	// Churn enough jobs through the 2-slot ring to evict the first.
	var last JobID
	for i := 0; i < 4; i++ {
		_, r := post("")
		last = r.ID
	}
	if err := s.Wait(last); err != nil {
		t.Fatal(err)
	}

	get := func(id int64) int {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", srv.URL(), id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(int64(r1.ID)); got != http.StatusGone {
		t.Errorf("GET evicted job = %d, want 410", got)
	}
	if got := get(int64(last)); got != http.StatusOK {
		t.Errorf("GET retained job = %d, want 200", got)
	}
	if got := get(99999); got != http.StatusNotFound {
		t.Errorf("GET unassigned job = %d, want 404", got)
	}

	resp, err := http.Get(srv.URL() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wrapper struct {
		Status Status `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		t.Fatal(err)
	}
	if d := wrapper.Status.Durability; d == nil || d.Appends == 0 || d.Fsync == "" {
		t.Fatalf("statusz durability panel missing or empty: %+v", wrapper.Status.Durability)
	}
}

// TestJitterRetryAfterBounds locks the jitter contract: the hinted delay is
// never shortened and never stretched past 1.5x.
func TestJitterRetryAfterBounds(t *testing.T) {
	base := 2 * time.Second
	seen := map[time.Duration]bool{}
	for n := uint64(0); n < 2000; n++ {
		got := jitterRetryAfter(base, n)
		if got < base || got >= base+base/2 {
			t.Fatalf("jitter(%v, %d) = %v out of [d, 1.5d)", base, n, got)
		}
		seen[got] = true
	}
	if len(seen) < 16 {
		t.Fatalf("jitter produced only %d distinct values; not spreading", len(seen))
	}
	if got := jitterRetryAfter(0, 7); got != 0 {
		t.Fatalf("jitter(0) = %v, want 0", got)
	}
}
