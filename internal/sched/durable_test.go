package sched

import (
	"os"
	"path/filepath"
	"testing"

	"indexlaunch/internal/wal"
)

// durableConfigs returns the (name, trace options, config-maker) matrix the
// durability suite runs: config instances must be fresh per run because
// queues and admission state are mutable.
type durableConfig struct {
	name string
	opt  TraceOptions
	mk   func() TraceConfig
}

func durableConfigs() []durableConfig {
	adm := Admission{
		MaxQueued: 64,
		Default:   Quota{MaxQueued: 24, Rate: 3, Burst: 6},
		Tenants: map[string]Quota{
			"a": {MaxQueued: 32, Rate: 6, Burst: 12, Weight: 3},
			"b": {MaxQueued: 16, Rate: 2, Burst: 4, Weight: 1},
		},
	}
	capDip := func(tick int64) float64 {
		if tick >= 40 && tick < 80 {
			return 0.25
		}
		return 1.0
	}
	return []durableConfig{
		{
			name: "fifo-default",
			opt:  TraceOptions{Jobs: 200, MaxInterArrival: 2},
			mk:   func() TraceConfig { return TraceConfig{Executors: 3} },
		},
		{
			name: "priority-deadline",
			opt:  TraceOptions{Jobs: 200, MaxPriority: 3, MaxInterArrival: 1},
			mk: func() TraceConfig {
				return TraceConfig{Executors: 2, Queue: NewStrictPriority(), Admission: Admission{MaxQueued: 32}}
			},
		},
		{
			name: "fair-admission-capdip",
			opt:  TraceOptions{Jobs: 250, MaxCost: 4, MaxInterArrival: 2},
			mk: func() TraceConfig {
				return TraceConfig{
					Executors: 3,
					Queue:     NewWeightedFair(4, adm.Weights(), 1),
					Admission: adm,
					CapacityAt: func(tick int64) float64 {
						return capDip(tick)
					},
				}
			},
		},
	}
}

// TestDurableTraceMatchesPlain locks the zero-cost contract: a durable run
// in a fresh dir produces exactly the result a plain RunTrace produces —
// log, summary counters, makespan, everything.
func TestDurableTraceMatchesPlain(t *testing.T) {
	for _, seed := range schedSeeds(t) {
		for _, dc := range durableConfigs() {
			tr := GenTrace(seed, dc.opt)
			plain := RunTrace(tr, dc.mk())
			dur, err := RunTraceDurable(tr, dc.mk(), DurableOptions{Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("seed %d %s: durable run: %v", seed, dc.name, err)
			}
			if !dur.Done {
				t.Fatalf("seed %d %s: durable run did not complete", seed, dc.name)
			}
			if got, want := RenderLog(dur.Log), RenderLog(plain.Log); got != want {
				t.Fatalf("seed %d %s: durable log diverged from plain run:\nplain:\n%s\ndurable:\n%s",
					seed, dc.name, head(want, 12), head(got, 12))
			}
			if dur.Makespan != plain.Makespan {
				t.Errorf("seed %d %s: makespan %d != %d", seed, dc.name, dur.Makespan, plain.Makespan)
			}
			for tenant, n := range plain.Completed {
				if dur.Completed[tenant] != n {
					t.Errorf("seed %d %s: tenant %s completed %d != %d",
						seed, dc.name, tenant, dur.Completed[tenant], n)
				}
			}
			for tenant, c := range plain.ServedCost {
				if dur.ServedCost[tenant] != c {
					t.Errorf("seed %d %s: tenant %s served cost %d != %d",
						seed, dc.name, tenant, dur.ServedCost[tenant], c)
				}
			}
			if len(dur.Waits) != len(plain.Waits) {
				t.Errorf("seed %d %s: %d waits != %d", seed, dc.name, len(dur.Waits), len(plain.Waits))
			}
		}
	}
}

// TestDurableTraceCrashResume is the in-process crash matrix: stop the
// durable run cold at op K (no drain, no final sync beyond the fsync
// policy), restart in the same dir, and require the finished log to be
// byte-identical to the crash-free run's — for several K per seed, with a
// snapshot cadence small enough that stops land before, between, and after
// snapshots.
func TestDurableTraceCrashResume(t *testing.T) {
	for _, seed := range schedSeeds(t) {
		for _, dc := range durableConfigs() {
			tr := GenTrace(seed, dc.opt)
			want := RenderLog(RunTrace(tr, dc.mk()).Log)
			for _, stops := range [][]int{{1}, {37}, {64, 65}, {50, 200, 350}} {
				dir := t.TempDir()
				opts := DurableOptions{Dir: dir, SnapshotEvery: 64}
				for _, maxOps := range stops {
					opts.MaxOps = maxOps
					res, err := RunTraceDurable(tr, dc.mk(), opts)
					if err != nil {
						t.Fatalf("seed %d %s stop@%d: %v", seed, dc.name, maxOps, err)
					}
					if res.Done {
						// The trace finished before the stop point; nothing
						// left to resume.
						break
					}
				}
				opts.MaxOps = 0
				res, err := RunTraceDurable(tr, dc.mk(), opts)
				if err != nil {
					t.Fatalf("seed %d %s final resume: %v", seed, dc.name, err)
				}
				if !res.Done {
					t.Fatalf("seed %d %s: final resume did not complete", seed, dc.name)
				}
				if got := RenderLog(res.Log); got != want {
					t.Fatalf("seed %d %s stops %v: resumed log diverged:\nwant:\n%s\ngot:\n%s",
						seed, dc.name, stops, head(want, 12), head(got, 12))
				}
			}
		}
	}
}

// TestRecoverEmptyMissingTorn covers journal-open edge cases: a missing
// dir, an empty dir, and a torn tail each recover to a clean, usable
// scheduler state.
func TestRecoverEmptyMissingTorn(t *testing.T) {
	tr := GenTrace(7, TraceOptions{Jobs: 60, MaxInterArrival: 2})
	want := RenderLog(RunTrace(tr, TraceConfig{Executors: 2}).Log)

	cases := []struct {
		name string
		prep func(t *testing.T) string
	}{
		{"missing-dir", func(t *testing.T) string {
			return filepath.Join(t.TempDir(), "not-yet-created")
		}},
		{"empty-dir", func(t *testing.T) string {
			return t.TempDir()
		}},
		{"torn-tail", func(t *testing.T) string {
			dir := t.TempDir()
			// Run partway, then tear bytes off the newest segment.
			if _, err := RunTraceDurable(tr, TraceConfig{Executors: 2},
				DurableOptions{Dir: dir, MaxOps: 40}); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments written: %v", err)
			}
			last := segs[len(segs)-1]
			info, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(last, info.Size()-3); err != nil {
				t.Fatal(err)
			}
			return dir
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := tc.prep(t)
			res, err := RunTraceDurable(tr, TraceConfig{Executors: 2}, DurableOptions{Dir: dir})
			if err != nil {
				t.Fatalf("recover from %s: %v", tc.name, err)
			}
			if !res.Done {
				t.Fatalf("%s: run did not complete", tc.name)
			}
			if got := RenderLog(res.Log); got != want {
				t.Fatalf("%s: log diverged:\nwant:\n%s\ngot:\n%s", tc.name, head(want, 8), head(got, 8))
			}
		})
	}
}

// TestRecoverReportsTruncation checks a torn tail surfaces in the recovery
// report (and that the re-run still converges).
func TestRecoverReportsTruncation(t *testing.T) {
	tr := GenTrace(1, TraceOptions{Jobs: 40, MaxInterArrival: 1})
	dir := t.TempDir()
	if _, err := RunTraceDurable(tr, TraceConfig{Executors: 2},
		DurableOptions{Dir: dir, MaxOps: 30}); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	res, err := RunTraceDurable(tr, TraceConfig{Executors: 2}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Recovered {
		t.Error("report should mark state recovered")
	}
	if res.Report.TruncatedBytes == 0 {
		t.Error("report should count truncated bytes")
	}
	if !res.Done {
		t.Error("run should complete after truncation")
	}
}

// TestDurableFsyncPolicies runs the same durable trace under each fsync
// policy; the result is policy-independent (policies trade durability
// against latency, not correctness of a completed run).
func TestDurableFsyncPolicies(t *testing.T) {
	tr := GenTrace(42, TraceOptions{Jobs: 80, MaxInterArrival: 2})
	want := RenderLog(RunTrace(tr, TraceConfig{Executors: 2}).Log)
	for _, pol := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncAlways, wal.SyncNever} {
		res, err := RunTraceDurable(tr, TraceConfig{Executors: 2},
			DurableOptions{Dir: t.TempDir(), Fsync: pol})
		if err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
		if got := RenderLog(res.Log); got != want {
			t.Fatalf("policy %s: log diverged", pol)
		}
	}
}
