package sched

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Admission configures backpressure: a global queue bound plus per-tenant
// quotas and token-bucket rate limits. The zero value admits everything up
// to the default queue bound.
type Admission struct {
	// MaxQueued bounds the total queue; submissions past it are rejected
	// with ErrAdmissionRejected. 0 defaults to 1024.
	MaxQueued int
	// Default is the quota applied to tenants not listed in Tenants.
	Default Quota
	// Tenants maps tenant to its quota.
	Tenants map[string]Quota
}

// Quota is one tenant's admission contract.
type Quota struct {
	// MaxQueued bounds the tenant's queued jobs; 0 means unbounded (up to
	// the global bound).
	MaxQueued int
	// Rate is the tenant's sustained admission rate in jobs per scheduler
	// tick, refilled each tick scaled by the current capacity factor — the
	// health layer's live-node fraction — so quarantined nodes throttle
	// admission before queues overflow. 0 means unlimited.
	Rate float64
	// Burst caps the tenant's token bucket; 0 defaults to max(Rate, 1).
	Burst float64
	// Weight is the tenant's fair-share weight (used by NewWeightedFair
	// via Admission.Weight); values < 1 count as 1.
	Weight int
}

const defaultMaxQueued = 1024

// Rejection reasons, rendered into the decision log and the `reason` label
// of sched_rejected_total.
const (
	ReasonQueueFull       = "queue-full"
	ReasonTenantQueueFull = "tenant-queue-full"
	ReasonRateLimited     = "rate-limited"
	ReasonNoCapacity      = "no-capacity"
	ReasonDraining        = "draining"
	ReasonShutdown        = "shutdown"
)

// ErrAdmissionRejected is the sentinel every backpressure rejection
// matches: errors.Is(err, ErrAdmissionRejected) holds for any *RejectError.
var ErrAdmissionRejected = errors.New("sched: admission rejected")

// RejectError is a backpressured submission: the job was not enqueued, and
// the caller should retry after the hinted delay (or shed the work).
type RejectError struct {
	Tenant string
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfterTicks hints how many scheduler ticks until a retry could
	// succeed; 0 means no estimate (e.g. capacity is gone entirely).
	RetryAfterTicks int64
	// RetryAfter is RetryAfterTicks converted to wall time by the live
	// scheduler's tick period; zero in trace mode.
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	s := fmt.Sprintf("sched: admission rejected: tenant %q: %s", e.Tenant, e.Reason)
	if e.RetryAfterTicks > 0 {
		s += fmt.Sprintf(" (retry after %d tick(s))", e.RetryAfterTicks)
	}
	return s
}

// Is matches ErrAdmissionRejected.
func (e *RejectError) Is(target error) bool { return target == ErrAdmissionRejected }

// Weight returns the configured fair-share weight for tenant (>= 1) — the
// bridge from Admission to NewWeightedFair.
func (a Admission) Weight(tenant string) int {
	q := a.Default
	if tq, ok := a.Tenants[tenant]; ok {
		q = tq
	}
	if q.Weight < 1 {
		return 1
	}
	return q.Weight
}

// Weights collects every explicitly configured tenant weight, for
// NewWeightedFair.
func (a Admission) Weights() map[string]int {
	w := map[string]int{}
	for t := range a.Tenants {
		w[t] = a.Weight(t)
	}
	return w
}

// admission is the live token-bucket state behind an Admission config. Like
// the rest of the core it has no clock: buckets refill once per owner tick.
type admission struct {
	opt      Admission
	capacity float64 // live-node fraction in [0, 1]; scales refill
	buckets  map[string]*bucket
}

type bucket struct{ tokens float64 }

func newAdmission(opt Admission) *admission {
	if opt.MaxQueued <= 0 {
		opt.MaxQueued = defaultMaxQueued
	}
	return &admission{opt: opt, capacity: 1, buckets: map[string]*bucket{}}
}

func (a *admission) maxQueued() int { return a.opt.MaxQueued }

func (a *admission) quota(tenant string) Quota {
	if q, ok := a.opt.Tenants[tenant]; ok {
		return q
	}
	return a.opt.Default
}

func (q Quota) burst() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	return math.Max(q.Rate, 1)
}

func (a *admission) setCapacity(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	a.capacity = f
}

// bucketFor returns the tenant's bucket, created full on first use.
func (a *admission) bucketFor(tenant string) *bucket {
	b := a.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: a.quota(tenant).burst()}
		a.buckets[tenant] = b
	}
	return b
}

// take spends one admission token for tenant. On refusal it reports the
// reason and a retry hint in ticks.
func (a *admission) take(tenant string) (ok bool, reason string, retryTicks int64) {
	q := a.quota(tenant)
	if q.Rate <= 0 {
		return true, "", 0
	}
	b := a.bucketFor(tenant)
	if b.tokens >= 1 {
		b.tokens--
		return true, "", 0
	}
	eff := q.Rate * a.capacity
	if eff <= 0 {
		return false, ReasonNoCapacity, 0
	}
	return false, ReasonRateLimited, int64(math.Ceil((1 - b.tokens) / eff))
}

// refill advances every bucket by one tick of capacity-scaled rate.
func (a *admission) refill() {
	for tenant, b := range a.buckets {
		q := a.quota(tenant)
		b.tokens = math.Min(q.burst(), b.tokens+q.Rate*a.capacity)
	}
}

// bucketLevels snapshots every materialized bucket's level, for the
// durability snapshot.
func (a *admission) bucketLevels() map[string]float64 {
	if len(a.buckets) == 0 {
		return nil
	}
	out := make(map[string]float64, len(a.buckets))
	for tenant, b := range a.buckets {
		out[tenant] = b.tokens
	}
	return out
}

// restoreBuckets rebuilds bucket levels from a snapshot.
func (a *admission) restoreBuckets(levels map[string]float64) {
	a.buckets = make(map[string]*bucket, len(levels))
	for tenant, tokens := range levels {
		a.buckets[tenant] = &bucket{tokens: tokens}
	}
}

// tokens reports the tenant's current bucket level for /statusz; tenants
// with no rate limit report -1.
func (a *admission) tokens(tenant string) float64 {
	if a.quota(tenant).Rate <= 0 {
		return -1
	}
	return a.bucketFor(tenant).tokens
}
