package sched

import (
	"fmt"
	"strings"
)

// Kind classifies one scheduler decision.
type Kind uint8

const (
	// KindEnqueue: a submission passed admission and joined the queue.
	KindEnqueue Kind = iota
	// KindReject: admission refused a submission (backpressure).
	KindReject
	// KindAdmit: a queued job was dispatched onto an executor.
	KindAdmit
	// KindComplete: a running job finished (ok or err).
	KindComplete
	// KindPreempt: a running job yielded its executor and was re-queued.
	KindPreempt
	// KindExpire: a queued job was dropped at dispatch past its deadline.
	KindExpire
	// KindDrain: graceful drain began; later submissions are rejected.
	KindDrain
)

var kindNames = [...]string{"enqueue", "reject", "admit", "complete", "preempt", "expire", "drain"}

// String renders the decision kind used in the canonical log form.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Decision is one scheduler decision, stamped with the logical tick it was
// taken in. The rendered form is intentionally canonical — the determinism
// suite compares rendered decision logs byte for byte, exactly like
// health.RenderLog.
type Decision struct {
	Seq    int64  `json:"seq"`
	Tick   int64  `json:"tick"`
	Kind   Kind   `json:"kind"`
	Job    JobID  `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// String renders the decision canonically:
// "d<seq> t<tick> <kind> j<job> <tenant> <detail>".
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d t%d %s", d.Seq, d.Tick, d.Kind)
	if d.Job > 0 {
		fmt.Fprintf(&b, " j%d %s", d.Job, d.Tenant)
	}
	if d.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(d.Detail)
	}
	return b.String()
}

// RenderLog renders a decision sequence one line per decision — the
// byte-comparable form of a scheduler history.
func RenderLog(log []Decision) string {
	var b strings.Builder
	for _, d := range log {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// core is the deterministic policy state machine: queue discipline plus
// admission plus the decision log, with logical time advanced only by its
// owner (the live scheduler's tick loop, or the trace driver's virtual
// clock). It is not safe for concurrent use.
type policy struct {
	q     Queue
	adm   *admission
	slots int
	free  int

	draining bool
	tick     int64
	seq      int64
	log      []Decision

	queued  map[string]int
	running map[JobID]*Job
}

func newPolicy(q Queue, adm *admission, slots int) *policy {
	if q == nil {
		q = NewFIFO()
	}
	if slots < 1 {
		slots = 1
	}
	return &policy{
		q: q, adm: adm, slots: slots, free: slots,
		queued:  map[string]int{},
		running: map[JobID]*Job{},
	}
}

func (c *policy) record(k Kind, j *Job, detail string) Decision {
	c.seq++
	d := Decision{Seq: c.seq, Tick: c.tick, Kind: k, Detail: detail}
	if j != nil {
		d.Job, d.Tenant = j.ID, j.Spec.Tenant
	}
	c.log = append(c.log, d)
	return d
}

// advance moves logical time one tick forward, refilling admission buckets.
func (c *policy) advance() {
	c.tick++
	c.adm.refill()
}

// submit runs admission for j: on success the job joins the queue and an
// enqueue decision is returned; on backpressure a reject decision is logged
// and the RejectError (with its retry-after hint) is returned.
func (c *policy) submit(j *Job) (Decision, *RejectError) {
	tenant := j.Spec.Tenant
	reject := func(reason string, retry int64) (Decision, *RejectError) {
		detail := fmt.Sprintf("reason=%s", reason)
		if retry > 0 {
			detail += fmt.Sprintf(" retry=%d", retry)
		}
		return c.record(KindReject, j, detail),
			&RejectError{Tenant: tenant, Reason: reason, RetryAfterTicks: retry}
	}
	if c.draining {
		return reject(ReasonDraining, 0)
	}
	if c.q.Len() >= c.adm.maxQueued() {
		// The queue drains at roughly slots jobs per service interval;
		// hint one queue's-worth of ticks, floored at 1.
		return reject(ReasonQueueFull, int64(c.q.Len()/c.slots)+1)
	}
	if tq := c.adm.quota(tenant).MaxQueued; tq > 0 && c.queued[tenant] >= tq {
		return reject(ReasonTenantQueueFull, int64(c.queued[tenant]/c.slots)+1)
	}
	if ok, reason, retry := c.adm.take(tenant); !ok {
		return reject(reason, retry)
	}
	j.enqueueTick = c.tick
	c.queued[tenant]++
	c.q.Push(j)
	return c.record(KindEnqueue, j, fmt.Sprintf("prio=%d cost=%d", j.Spec.Priority, j.Spec.cost())), nil
}

// dispatch pops the next runnable job onto a free slot. Jobs whose deadline
// lapsed in queue are dropped (expired, not run) and returned so the owner
// can fail them. Returns a nil job when no slot is free or the queue is
// empty.
func (c *policy) dispatch() (j *Job, expired []*Job) {
	for c.free > 0 {
		jb := c.q.Pop()
		if jb == nil {
			return nil, expired
		}
		c.queued[jb.Spec.Tenant]--
		waited := c.tick - jb.enqueueTick
		if dl := jb.Spec.Deadline; dl > 0 && waited > dl {
			c.record(KindExpire, jb, fmt.Sprintf("deadline=%d waited=%d", dl, waited))
			expired = append(expired, jb)
			continue
		}
		jb.admitTick = c.tick
		jb.attempts++
		c.free--
		c.running[jb.ID] = jb
		c.record(KindAdmit, jb, fmt.Sprintf("wait=%d", waited))
		return jb, expired
	}
	return nil, expired
}

// complete returns j's slot and logs the outcome.
func (c *policy) complete(j *Job, jobErr error) Decision {
	delete(c.running, j.ID)
	c.free++
	detail := "ok"
	if jobErr != nil {
		detail = "err"
	}
	return c.record(KindComplete, j, detail)
}

// preempt returns j's slot and re-queues it at the front of its peers.
func (c *policy) preempt(j *Job) Decision {
	delete(c.running, j.ID)
	c.free++
	j.enqueueTick = c.tick
	c.queued[j.Spec.Tenant]++
	c.q.Requeue(j)
	return c.record(KindPreempt, j, fmt.Sprintf("attempt=%d", j.attempts))
}

// drainNow flips the core into draining: admission rejects everything while
// queued and running work finishes.
func (c *policy) drainNow() Decision {
	c.draining = true
	return c.record(KindDrain, nil, fmt.Sprintf("queued=%d running=%d", c.q.Len(), len(c.running)))
}

// abandon empties the queue at shutdown: every queued job is rejected with
// reason "shutdown" and returned so the owner can fail it. Kept as a core
// method (rather than ad-hoc queue surgery in Shutdown) so the journal can
// replay it as a single deterministic op.
func (c *policy) abandon() []*Job {
	var out []*Job
	for {
		j := c.q.Pop()
		if j == nil {
			return out
		}
		c.queued[j.Spec.Tenant]--
		c.record(KindReject, j, "reason="+ReasonShutdown)
		out = append(out, j)
	}
}

// idle reports no queued and no running work.
func (c *policy) idle() bool { return c.q.Len() == 0 && len(c.running) == 0 }
