package xport

import (
	"strings"
	"testing"
	"time"

	"indexlaunch/internal/metrics"
)

// Per-link counters and the registry-sharing contract: a transport given a
// registry registers the shared xport_* aggregate families (so a runtime
// holding the same registry reads transport counts with no second
// bookkeeping) plus per-link send/ack/retransmit/drop counters labeled
// "src->dst".

func TestSharedRegistryServesTransportCounters(t *testing.T) {
	const nodes = 8
	reg := metrics.NewRegistry()
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver, Metrics: reg})
	tr.Broadcast("b", allItems(nodes))
	checkDelivered(t, c, nodes)

	st := tr.Stats()
	vals := map[string]int64{}
	for _, f := range reg.Gather().Families {
		if len(f.Series) == 1 && len(f.Series[0].Labels) == 0 {
			vals[f.Name] = f.Series[0].Value
		}
	}
	if st.Sends != 13 {
		t.Fatalf("sends = %d, want 13 (binary tree over 7 destinations)", st.Sends)
	}
	for name, got := range map[string]int64{
		metrics.NameXportSends:       st.Sends,
		metrics.NameXportRetransmits: st.Retransmits,
		metrics.NameXportDrops:       st.Drops,
		metrics.NameXportDedups:      st.Dedups,
		metrics.NameXportReparents:   st.Reparents,
	} {
		if vals[name] != got {
			t.Errorf("registry %s = %d, Stats = %d", name, vals[name], got)
		}
	}
	// Fault-free binary broadcast over 8 nodes: depth(1..7) = max 3 hops.
	if d := vals[metrics.NameXportTreeDepth]; d != 3 {
		t.Errorf("tree depth gauge = %d, want 3", d)
	}
}

func TestPerLinkCounters(t *testing.T) {
	const nodes = 4
	reg := metrics.NewRegistry()
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver, Metrics: reg})
	tr.Broadcast("b", allItems(nodes))
	checkDelivered(t, c, nodes)

	// Binary tree over nodes 0..3: link 0->1 carries node 1's payload plus
	// the relay hop for node 3 (two sends), 0->2 and 1->3 one each; per-link
	// counts must sum to the aggregate, with acks matching sends hop for hop.
	linkVals := func(family string) map[string]int64 {
		out := map[string]int64{}
		for _, f := range reg.Gather().Families {
			if f.Name != family {
				continue
			}
			for _, s := range f.Series {
				out[s.Labels[0].Value] = s.Value
			}
		}
		return out
	}
	sends := linkVals("xport_link_sends_total")
	acks := linkVals("xport_link_acks_total")
	var total int64
	for link, n := range sends {
		if !strings.Contains(link, "->") {
			t.Errorf("malformed link label %q", link)
		}
		total += n
	}
	if total != tr.Stats().Sends {
		t.Errorf("per-link sends sum to %d, aggregate says %d", total, tr.Stats().Sends)
	}
	for link, want := range map[string]int64{"0->1": 2, "0->2": 1, "1->3": 1} {
		if sends[link] != want {
			t.Errorf("link %s sends = %d, want %d", link, sends[link], want)
		}
		if acks[link] != want {
			t.Errorf("link %s acks = %d, want %d", link, acks[link], want)
		}
	}
}

func TestPerLinkRetransmitsAndDropsUnderChaos(t *testing.T) {
	const nodes = 8
	reg := metrics.NewRegistry()
	c := newCollector()
	tr := mustNew(t, nodes, Options{
		Deliver: c.deliver,
		Metrics: reg,
		Chaos:   &ChaosPlan{Seed: 7, Drop: 0.4},
		Retransmit: RetransmitPolicy{
			Timeout: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond,
		},
	})
	for round := 0; round < 4; round++ {
		tr.Broadcast("b", allItems(nodes))
	}
	st := tr.Stats()
	if st.Drops == 0 || st.Retransmits == 0 {
		t.Fatalf("40%% drop produced no faults: %+v", st)
	}
	sum := func(family string) int64 {
		var n int64
		for _, f := range reg.Gather().Families {
			if f.Name != family {
				continue
			}
			for _, s := range f.Series {
				n += s.Value
			}
		}
		return n
	}
	if got := sum("xport_link_retransmits_total"); got != st.Retransmits {
		t.Errorf("per-link retransmits sum to %d, aggregate says %d", got, st.Retransmits)
	}
	if got := sum("xport_link_drops_total"); got != st.Drops {
		t.Errorf("per-link drops sum to %d, aggregate says %d", got, st.Drops)
	}
	if got := sum("xport_link_sends_total"); got != st.Sends {
		t.Errorf("per-link sends sum to %d, aggregate says %d", got, st.Sends)
	}
}

// Without a registry the transport still counts into a private one: Stats
// keeps working and no shared state leaks between transports.
func TestPrivateRegistriesAreIsolated(t *testing.T) {
	c1, c2 := newCollector(), newCollector()
	t1 := mustNew(t, 4, Options{Deliver: c1.deliver})
	t2 := mustNew(t, 4, Options{Deliver: c2.deliver})
	t1.Broadcast("b", allItems(4))
	if s1, s2 := t1.Stats(), t2.Stats(); s1.Sends == 0 || s2.Sends != 0 {
		t.Errorf("private counters leaked: t1=%+v t2=%+v", s1, s2)
	}
}

func TestShapeReflectsLiveness(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver})
	sh := tr.Shape()
	if sh.Live != nodes || sh.Direct || sh.Depth != 3 {
		t.Errorf("healthy shape = %+v, want live=8 depth=3 tree mode", sh)
	}
	// Node 1's subtree (3 and its children) re-parents through node 0.
	tr.MarkDead(1)
	sh = tr.Shape()
	if sh.Live != nodes-1 {
		t.Errorf("live = %d after one death, want %d", sh.Live, nodes-1)
	}
	if sh.Parents[1] != -1 {
		t.Errorf("dead node 1 has parent %d, want -1", sh.Parents[1])
	}
	if sh.Parents[3] != 0 {
		t.Errorf("orphan 3 re-parented to %d, want 0", sh.Parents[3])
	}
	// Kill most of the cluster: broadcasts go direct.
	for n := 2; n < nodes; n++ {
		tr.MarkDead(n)
	}
	sh = tr.Shape()
	if !sh.Direct || sh.Live != 1 {
		t.Errorf("degraded shape = %+v, want direct mode with 1 live node", sh)
	}
}
