package xport

// Heartbeat probes. A probe is a bounded-attempt request/reply round trip
// from node 0 to one destination over the same broadcast-tree routes data
// messages take, so everything a ChaosPlan does to data traffic — drops,
// dropped acks, partitions — starves probes identically. Unlike Broadcast's
// reliable hops, a probe gives up after a fixed per-hop attempt budget and
// reports failure; the failure detector (internal/health) turns those
// reports into suspicion.
//
// Probes are evaluated synchronously, with no timers and no goroutines:
// what the detector needs is *whether* a heartbeat survived its bounded
// retransmission budget, not when its ack arrived, so each attempt is
// resolved directly from the chaos plan's pure decision functions. Probe
// traffic keeps its own per-link sequence numbers and partition-window
// clocks (separate from the data-message counters), which makes the fate of
// the k-th probe on a link a pure function of (plan, k) — independent of
// how slice traffic happened to interleave — and that purity is what lets
// the determinism suite demand byte-identical suspect/rejoin logs across
// runs.

// Probe sends one heartbeat from node 0 to dst and reports whether every
// hop's request and ack survived within maxAttempts transmissions per hop
// (minimum 1). Routes are computed from the current liveness snapshot, with
// dst itself treated as reachable even while marked dead — probing a dead
// node is how a comeback is detected. Callers serialize Probe with
// Broadcast/MarkDead/MarkAlive (internal/rt's issuance lock provides that).
func (t *Transport) Probe(dst int, maxAttempts int) bool {
	if dst <= 0 || dst >= t.nodes {
		return false
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	t.mu.Lock()
	alive := make([]bool, len(t.alive))
	copy(alive, t.alive)
	t.mu.Unlock()

	// Route to dst under the data path's routing rules: direct when the
	// tree is too degraded, nearest-surviving-ancestor chain otherwise.
	// dst's own liveness is overridden so dead nodes stay probeable.
	wasAlive := alive[dst]
	alive[dst] = true
	route := planRoutes(alive, []int{dst}).routes[dst]
	alive[dst] = wasAlive

	t.mx.probes.Inc()
	from := 0
	for _, hop := range route {
		if !t.probeHop(link{src: from, dst: hop}, maxAttempts) {
			t.mx.probeFails.Inc()
			return false
		}
		from = hop
	}
	return true
}

// probeHop resolves one hop of a probe: up to maxAttempts transmissions,
// each succeeding only if both the request and its ack survive the chaos
// plan. Every attempt advances the link pair's probe partition clocks, so
// a partition window over probe traffic always heals.
func (t *Transport) probeHop(lk link, maxAttempts int) bool {
	rk := link{src: lk.dst, dst: lk.src}
	t.mu.Lock()
	seq := t.probeSeq[lk]
	t.probeSeq[lk] = seq + 1
	t.mu.Unlock()
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		reqCut := t.chaos.cut(lk, t.bumpProbeCount(lk))
		ackCut := t.chaos.cut(rk, t.bumpProbeCount(rk))
		if reqCut || t.chaos.dropProbe(lk, seq, attempt) {
			t.mx.drops.Inc()
			t.mx.link(lk).drops.Inc()
			continue
		}
		if ackCut || t.chaos.dropProbeAck(rk, seq, attempt) {
			t.mx.drops.Inc()
			t.mx.link(rk).drops.Inc()
			continue
		}
		return true
	}
	return false
}

// bumpProbeCount advances the link's lifetime probe-transmission counter —
// the clock partition windows run on for probe traffic — and returns its
// pre-increment value.
func (t *Transport) bumpProbeCount(lk link) int64 {
	t.mu.Lock()
	n := t.probeCount[lk]
	t.probeCount[lk] = n + 1
	t.mu.Unlock()
	return n
}

// MarkAlive readmits a node to routing: the next broadcast re-parents its
// subtree back toward the denser original tree shape. The inverse of
// MarkDead; the caller serializes both against Broadcast.
func (t *Transport) MarkAlive(node int) {
	if node < 0 || node >= t.nodes {
		return
	}
	t.mu.Lock()
	t.alive[node] = true
	t.mu.Unlock()
}
