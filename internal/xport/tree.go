package xport

// Broadcast-tree routing. The transport ships payloads from node 0 (the
// issuing node of the paper's non-DCR pipeline, §5) through the same binary
// broadcast tree internal/machine charges for: node i's children are 2i+1
// and 2i+2, so every route is O(log N) hops.
//
// Node death degrades the tree gracefully. A route never relays through a
// dead node: each node's effective parent is its nearest surviving ancestor
// in the original tree, so the orphaned subtree of a killed interior node
// re-parents as a unit and the tree depth never grows. When the tree is too
// degraded to be worth maintaining — fewer than half the configured nodes
// survive — routing falls back to direct node-0 sends, trading the O(log N)
// fan-out for not depending on any interior relay.

// origParent returns node n's parent in the intact broadcast tree.
func origParent(n int) int { return (n - 1) / 2 }

// liveParent returns n's nearest surviving ancestor, walking up the intact
// tree; node 0 is always its own terminus.
func liveParent(n int, alive []bool) int {
	p := origParent(n)
	for p > 0 && !alive[p] {
		p = origParent(p)
	}
	return p
}

// routePlan is one broadcast's routing decision, computed from a liveness
// snapshot before any message moves so that every hop targets a node known
// live at plan time.
type routePlan struct {
	// routes maps each destination to its relay chain from node 0: every
	// interior entry is a live relay, the final entry is the destination.
	routes map[int][]int
	// reparents counts live non-root nodes whose original parent is dead —
	// the orphan adoptions this plan performs.
	reparents int
	// direct reports that the tree was abandoned for direct node-0 sends.
	direct bool
}

// TreeShape is a point-in-time view of the broadcast tree for live
// introspection (/statusz): each node's effective parent under the current
// liveness snapshot, the resulting relay depth, and whether the next
// broadcast would abandon the tree for direct node-0 sends.
type TreeShape struct {
	// Parents[i] is node i's effective parent: its nearest surviving
	// ancestor, or -1 for node 0 and for dead nodes.
	Parents []int `json:"parents"`
	// Depth is the maximum relay-chain length from node 0 to any live node.
	Depth int `json:"depth"`
	// Direct reports that fewer than half the nodes survive, so broadcasts
	// bypass the tree.
	Direct bool `json:"direct"`
	// Live is the number of surviving nodes.
	Live int `json:"live"`
}

// Shape reports the broadcast tree's current shape under the transport's
// liveness snapshot.
func (t *Transport) Shape() TreeShape {
	t.mu.Lock()
	alive := make([]bool, len(t.alive))
	copy(alive, t.alive)
	t.mu.Unlock()
	return ShapeOf(alive)
}

// ShapeOf computes the broadcast tree's shape for a liveness snapshot. It is
// the pure core of Transport.Shape, shared with internal/wire's mesh so the
// socket transport reports the same /statusz tree the in-process one does.
func ShapeOf(alive []bool) TreeShape {
	sh := TreeShape{Parents: make([]int, len(alive))}
	for _, a := range alive {
		if a {
			sh.Live++
		}
	}
	sh.Direct = sh.Live*2 < len(alive)
	for n := range alive {
		sh.Parents[n] = -1
		if n == 0 || !alive[n] {
			continue
		}
		if sh.Direct {
			sh.Parents[n] = 0
			sh.Depth = 1
			continue
		}
		sh.Parents[n] = liveParent(n, alive)
		hops := 0
		for p := n; p != 0; p = liveParent(p, alive) {
			hops++
		}
		if hops > sh.Depth {
			sh.Depth = hops
		}
	}
	return sh
}

// RoutePlan is the exported form of one broadcast's routing decision — what
// PlanRoutes hands to out-of-package transports (internal/wire's mesh) so
// sockets and channels route payloads through the identical tree.
type RoutePlan struct {
	// Routes maps each destination to its relay chain from node 0: every
	// interior entry is a live relay, the final entry is the destination.
	Routes map[int][]int
	// Reparents counts live non-root nodes whose original parent is dead.
	Reparents int
	// Direct reports that the tree was abandoned for direct node-0 sends.
	Direct bool
}

// PlanRoutes computes broadcast-tree routing for one broadcast over a
// liveness snapshot. Destinations must be live, non-zero node ids. The
// decision logic is exactly Transport's own — a wire.Mesh built on it
// re-parents and degrades to direct sends identically.
func PlanRoutes(alive []bool, dsts []int) RoutePlan {
	p := planRoutes(alive, dsts)
	return RoutePlan{Routes: p.routes, Reparents: p.reparents, Direct: p.direct}
}

// planRoutes computes the routing for one broadcast over the given liveness
// snapshot. Destinations must be live, non-zero node ids.
func planRoutes(alive []bool, dsts []int) routePlan {
	plan := routePlan{routes: make(map[int][]int, len(dsts))}
	live := 0
	for _, a := range alive {
		if a {
			live++
		}
	}
	for n := 1; n < len(alive); n++ {
		if alive[n] && !alive[origParent(n)] {
			plan.reparents++
		}
	}
	// Fewer than half the nodes surviving: the tree is too degraded —
	// route every payload straight from node 0.
	plan.direct = live*2 < len(alive)
	for _, d := range dsts {
		if plan.direct {
			plan.routes[d] = []int{d}
			continue
		}
		var rev []int
		for n := d; n > 0; n = liveParent(n, alive) {
			rev = append(rev, n)
		}
		route := make([]int, len(rev))
		for i, n := range rev {
			route[len(rev)-1-i] = n
		}
		plan.routes[d] = route
	}
	return plan
}
