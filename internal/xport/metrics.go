package xport

import (
	"fmt"
	"sync"

	"indexlaunch/internal/metrics"
)

// Transport metrics. The aggregate families use the shared names from
// internal/metrics, so a transport constructed with the runtime's registry
// shares the runtime's counters — rt.Stats reads transport counts straight
// from the registry with no second bookkeeping path. On top of the
// aggregates, each directed link gets its own send/ack/retransmit/drop
// counters (label link="src->dst"), resolved once per link and cached so
// the message path never formats a label twice.

type xportMetrics struct {
	sends, retransmits, drops, dedups, reparents, directs *metrics.Counter
	probes, probeFails                                    *metrics.Counter
	treeDepth                                             *metrics.Gauge

	linkSends, linkAcks, linkRetransmits, linkDrops *metrics.CounterVec

	mu    sync.Mutex
	links map[link]*linkCounters
}

// linkCounters are one directed link's resolved per-link instruments.
type linkCounters struct {
	sends, acks, retransmits, drops *metrics.Counter
}

func newXportMetrics(reg *metrics.Registry) *xportMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &xportMetrics{
		sends:       reg.Counter(metrics.NameXportSends, "hop-level message first transmissions"),
		retransmits: reg.Counter(metrics.NameXportRetransmits, "ack-timeout-driven hop re-sends"),
		drops:       reg.Counter(metrics.NameXportDrops, "transmissions (data and acks) lost to chaos"),
		dedups:      reg.Counter(metrics.NameXportDedups, "received duplicates suppressed by sequence numbers"),
		reparents:   reg.Counter(metrics.NameXportReparents, "broadcast-tree orphan adoptions"),
		directs:     reg.Counter(metrics.NameXportDirectBroadcasts, "broadcasts that abandoned a degraded tree for direct sends"),
		probes:      reg.Counter(metrics.NameHealthProbes, "heartbeat probe round trips attempted"),
		probeFails:  reg.Counter(metrics.NameHealthProbeFails, "heartbeat probes that exhausted their attempt budget"),
		treeDepth:   reg.Gauge(metrics.NameXportTreeDepth, "fan-out depth (max hops) of the last planned broadcast"),

		linkSends:       reg.CounterVec("xport_link_sends_total", "first transmissions per directed link", "link"),
		linkAcks:        reg.CounterVec("xport_link_acks_total", "effective acks received per directed data link", "link"),
		linkRetransmits: reg.CounterVec("xport_link_retransmits_total", "timeout-driven re-sends per directed link", "link"),
		linkDrops:       reg.CounterVec("xport_link_drops_total", "chaos-dropped transmissions per directed link", "link"),

		links: map[link]*linkCounters{},
	}
}

// linkSnapshot deep-copies the per-link counter table into a fresh map of
// value snapshots. Taken under mu so a concurrently-resolving sender never
// races the iteration, and returning copies (never the cached *Counter
// map itself) keeps Stats callers from racing the message path.
func (m *xportMetrics) linkSnapshot() map[string]LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]LinkStats, len(m.links))
	for lk, lc := range m.links {
		out[fmt.Sprintf("%d->%d", lk.src, lk.dst)] = LinkStats{
			Sends:       lc.sends.Value(),
			Acks:        lc.acks.Value(),
			Retransmits: lc.retransmits.Value(),
			Drops:       lc.drops.Value(),
		}
	}
	return out
}

// link resolves (and caches) the per-link counters for lk.
func (m *xportMetrics) link(lk link) *linkCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	lc := m.links[lk]
	if lc == nil {
		label := fmt.Sprintf("%d->%d", lk.src, lk.dst)
		lc = &linkCounters{
			sends:       m.linkSends.With(label),
			acks:        m.linkAcks.With(label),
			retransmits: m.linkRetransmits.With(label),
			drops:       m.linkDrops.With(label),
		}
		m.links[lk] = lc
	}
	return lc
}
