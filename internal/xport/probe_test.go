package xport

import (
	"testing"
)

func probeTransport(t *testing.T, nodes int, chaos *ChaosPlan) *Transport {
	t.Helper()
	tr, err := New(nodes, Options{
		Chaos:   chaos,
		Deliver: func(int, any) {},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestProbeFaultFree(t *testing.T) {
	tr := probeTransport(t, 8, nil)
	for n := 1; n < 8; n++ {
		if !tr.Probe(n, 1) {
			t.Fatalf("fault-free probe of node %d failed", n)
		}
	}
	if tr.Probe(0, 3) {
		t.Fatal("probing the observer should report false")
	}
	if tr.Probe(8, 3) || tr.Probe(-1, 3) {
		t.Fatal("out-of-range probe should report false")
	}
	if got := tr.mx.probes.Value(); got != 7 {
		t.Fatalf("probe counter = %d, want 7", got)
	}
	if got := tr.mx.probeFails.Value(); got != 0 {
		t.Fatalf("probe failure counter = %d, want 0", got)
	}
}

// TestProbePartitionStarvesAndHeals: a partition window over the 0<->1 link
// fails probes of node 1 while it lasts; since every probe attempt advances
// the probe-traffic partition clock, the window always heals.
func TestProbePartitionStarvesAndHeals(t *testing.T) {
	tr := probeTransport(t, 4, &ChaosPlan{
		Seed:       7,
		Partitions: []Partition{{A: 0, B: 1, AfterSends: 0, Sends: 10}},
	})
	fails := 0
	for i := 0; i < 20; i++ {
		if !tr.Probe(1, 2) {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("partitioned link never failed a probe")
	}
	if !tr.Probe(1, 2) {
		t.Fatal("probe still failing after the partition window healed")
	}
	if got := tr.mx.probeFails.Value(); int(got) != fails {
		t.Fatalf("probe failure counter = %d, want %d", got, fails)
	}
}

// TestProbeRoutesThroughTree: killing an interior relay makes probes of its
// subtree route around it, and a partition on the direct 0<->3 link then
// starves them; MarkAlive restores the relay route, which the partition does
// not cover.
func TestProbeRoutesThroughTree(t *testing.T) {
	// 8-node tree: node 3's parent is 1. Partition covers 0<->3 (the
	// re-parented route), not 1->3.
	tr := probeTransport(t, 8, &ChaosPlan{
		Seed:       1,
		Partitions: []Partition{{A: 0, B: 3, AfterSends: 0, Sends: 1 << 30}},
	})
	if !tr.Probe(3, 1) {
		t.Fatal("probe via live relay 1 should not touch the 0<->3 partition")
	}
	tr.MarkDead(1)
	if tr.Probe(3, 3) {
		t.Fatal("probe of node 3 should re-parent onto the partitioned 0->3 link and fail")
	}
	tr.MarkAlive(1)
	if !tr.Probe(3, 1) {
		t.Fatal("probe should succeed again once the relay is readmitted")
	}
}

// TestProbeDeadDestinationReachable: a destination marked dead must stay
// probeable — that is how rejoin is detected.
func TestProbeDeadDestinationReachable(t *testing.T) {
	tr := probeTransport(t, 4, nil)
	tr.MarkDead(2)
	if !tr.Probe(2, 1) {
		t.Fatal("dead destination should still answer a fault-free probe")
	}
}

// TestProbeDeterministicSchedule: with a lossy plan, the sequence of probe
// outcomes is a pure function of the plan and the probe order.
func TestProbeDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		tr := probeTransport(t, 8, &ChaosPlan{Seed: 42, Drop: 0.4})
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, tr.Probe(1+i%7, 2))
		}
		return out
	}
	first := run()
	sawFail := false
	for _, ok := range first {
		if !ok {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("lossy plan never failed a probe; schedule too weak")
	}
	for i := 0; i < 4; i++ {
		got := run()
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d probe %d outcome %v differs from first run %v", i, j, got[j], first[j])
			}
		}
	}
}

// TestProbeIndependentOfDataTraffic: interleaving broadcasts between probes
// must not change probe outcomes — probe traffic has its own sequence and
// partition clocks.
func TestProbeIndependentOfDataTraffic(t *testing.T) {
	plan := &ChaosPlan{Seed: 99, Drop: 0.4}
	probesOnly := func() []bool {
		tr := probeTransport(t, 4, plan)
		var out []bool
		for i := 0; i < 20; i++ {
			out = append(out, tr.Probe(1, 2))
		}
		return out
	}
	interleaved := func() []bool {
		tr := probeTransport(t, 4, plan)
		tr.rp = RetransmitPolicy{Timeout: 200e3, MaxBackoff: 2e6}
		var out []bool
		for i := 0; i < 20; i++ {
			tr.Broadcast("data", []Item{{Dst: 1, Payload: i}})
			out = append(out, tr.Probe(1, 2))
		}
		return out
	}
	a, b := probesOnly(), interleaved()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d outcome changed when data traffic interleaved: %v vs %v", i, a[i], b[i])
		}
	}
}
