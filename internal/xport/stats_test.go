package xport

import (
	"sync"
	"testing"
)

// TestStatsSnapshotRace locks in the deep-copy contract of Stats.PerLink: a
// caller iterating a snapshot must never share a map with the message path,
// even while broadcasts are registering new links concurrently. Run under
// -race this fails if the snapshot ever aliases the live link table.
func TestStatsSnapshotRace(t *testing.T) {
	delivered := make(chan struct{}, 1024)
	tr, err := New(8, Options{Deliver: func(node int, payload any) {
		select {
		case delivered <- struct{}{}:
		default:
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			items := []Item{
				{Dst: 1 + round%7, Payload: round},
				{Dst: 1 + (round+3)%7, Payload: round},
			}
			tr.Broadcast("race", items)
		}
	}()

	<-delivered // at least one broadcast is in flight before snapshotting
	for i := 0; i < 200; i++ {
		st := tr.Stats()
		// Iterate and mutate the snapshot: both must be invisible to the
		// transport. Without the deep copy the iteration alone races the
		// sender's link-cache writes.
		var total int64
		for lk, ls := range st.PerLink {
			total += ls.Sends + ls.Acks + ls.Retransmits + ls.Drops
			st.PerLink[lk] = LinkStats{}
		}
		if total < 0 {
			t.Fatalf("impossible negative counter total %d", total)
		}
	}
	close(stop)
	wg.Wait()

	st := tr.Stats()
	if len(st.PerLink) == 0 {
		t.Fatal("Stats.PerLink empty after broadcasts")
	}
	if st.PerLink["0->1"].Sends == 0 {
		t.Fatalf("link 0->1 recorded no sends: %+v", st.PerLink)
	}
	// Two snapshots must not share storage.
	a, b := tr.Stats(), tr.Stats()
	a.PerLink["0->1"] = LinkStats{Sends: -1}
	if b.PerLink["0->1"].Sends == -1 {
		t.Fatal("snapshots share PerLink storage; want deep copy")
	}
}
