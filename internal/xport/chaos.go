package xport

import (
	"fmt"
	"time"
)

// ChaosPlan injects deterministic message-level faults into a Transport.
// Every decision — drop this transmission, delay it, duplicate it, let a
// later message overtake it — derives from a seeded hash of the link, the
// message sequence number and the transmission attempt, never from shared
// RNG state or goroutine interleaving. Two transmissions with the same
// (seed, link, seq, attempt) identity meet the same fate in every run, so a
// chaos schedule is a pure function of the plan, not of scheduling luck.
//
// The zero plan (or a nil *ChaosPlan) injects nothing: messages deliver
// immediately and exactly once.
type ChaosPlan struct {
	// Seed keys every per-transmission decision.
	Seed int64
	// Drop is the probability a transmission (data or ack) is lost on a
	// link. Must be < 1: the retransmission layer guarantees eventual
	// delivery only when every attempt has a positive chance of surviving.
	Drop float64
	// Dup is the probability a delivered transmission arrives twice; the
	// receiver deduplicates the copy.
	Dup float64
	// Reorder is the probability a transmission is held an extra DelayMax,
	// letting later messages on the link overtake it.
	Reorder float64
	// DelayMax bounds the uniform per-transmission link delay.
	DelayMax time.Duration
	// Partitions take links down for bounded transmission windows.
	Partitions []Partition
}

// Partition is a bounded outage of the link between nodes A and B (both
// directions): every transmission attempted while the link's lifetime
// transmission count is in [AfterSends, AfterSends+Sends) is lost.
// Retransmission attempts advance the count, so an outage always heals.
type Partition struct {
	A, B       int
	AfterSends int64
	Sends      int64
}

// Validate reports plans whose faults the transport cannot survive.
func (c *ChaosPlan) Validate() error {
	if c == nil {
		return nil
	}
	for name, p := range map[string]float64{"Drop": c.Drop, "Dup": c.Dup, "Reorder": c.Reorder} {
		if p < 0 || p >= 1 {
			return fmt.Errorf("xport: ChaosPlan.%s = %v, want [0, 1): probability 1 would block delivery forever", name, p)
		}
	}
	if c.DelayMax < 0 {
		return fmt.Errorf("xport: ChaosPlan.DelayMax = %v, want >= 0", c.DelayMax)
	}
	for i, p := range c.Partitions {
		if p.AfterSends < 0 || p.Sends < 0 {
			return fmt.Errorf("xport: ChaosPlan.Partitions[%d] has negative window %+v", i, p)
		}
	}
	return nil
}

// Decision salts, one per fault axis, so one (link, seq, attempt) identity
// yields independent rolls for drop, dup, delay and reorder.
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltDelay
	saltReorder
	saltAck
	saltJitter
	saltProbe
	saltProbeAck
)

// splitmix64 is the standard splitmix64 finalizer — a cheap, well-mixed
// hash good enough to turn identities into uniform rolls.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a uniform [0,1) float keyed on the transmission identity.
func (c *ChaosPlan) roll(salt uint64, lk link, seq uint64, attempt int) float64 {
	h := splitmix64(uint64(c.Seed) ^ salt)
	h = splitmix64(h ^ uint64(lk.src)<<32 ^ uint64(uint32(lk.dst)))
	h = splitmix64(h ^ seq ^ uint64(attempt)<<48)
	return float64(h>>11) / (1 << 53)
}

// Frame-level decision surface. The socket-level chaos proxy
// (internal/wire.Proxy) applies the same plan to real TCP traffic: it
// decodes frames off the stream and asks the plan for each frame's fate,
// keyed on the frame's (src, dst, seq, attempt) identity exactly like the
// in-process transport keys its transmissions. The salts are shared, so a
// plan describes one fault schedule regardless of which fabric carries it.

// FrameCut reports whether the directed pair's n-th forwarded frame falls
// inside a partition window (n is the proxy's lifetime frame count for the
// pair, the same clock cut runs on in-process).
func (c *ChaosPlan) FrameCut(src, dst int, n int64) bool {
	return c.cut(link{src: src, dst: dst}, n)
}

// FrameDrop reports whether the frame with the given identity is lost.
func (c *ChaosPlan) FrameDrop(src, dst int, seq uint64, attempt int) bool {
	return c.drop(link{src: src, dst: dst}, seq, attempt)
}

// FrameDelay returns the forwarding delay for the frame with the given
// identity (reorder rolls add a full extra DelayMax, as in-process).
func (c *ChaosPlan) FrameDelay(src, dst int, seq uint64, attempt int) time.Duration {
	return c.delay(link{src: src, dst: dst}, seq, attempt)
}

// cut reports whether the link's n-th lifetime transmission falls inside a
// partition window.
func (c *ChaosPlan) cut(lk link, n int64) bool {
	if c == nil {
		return false
	}
	for _, p := range c.Partitions {
		if (p.A == lk.src && p.B == lk.dst) || (p.A == lk.dst && p.B == lk.src) {
			if n >= p.AfterSends && n < p.AfterSends+p.Sends {
				return true
			}
		}
	}
	return false
}

func (c *ChaosPlan) drop(lk link, seq uint64, attempt int) bool {
	return c != nil && c.Drop > 0 && c.roll(saltDrop, lk, seq, attempt) < c.Drop
}

func (c *ChaosPlan) dropAck(lk link, seq uint64, attempt int) bool {
	return c != nil && c.Drop > 0 && c.roll(saltAck, lk, seq, attempt) < c.Drop
}

// dropProbe / dropProbeAck are the heartbeat-traffic analogs of drop and
// dropAck, salted independently so probe fates never correlate with the
// data messages that happen to share a (link, seq, attempt) identity.
func (c *ChaosPlan) dropProbe(lk link, seq uint64, attempt int) bool {
	return c != nil && c.Drop > 0 && c.roll(saltProbe, lk, seq, attempt) < c.Drop
}

func (c *ChaosPlan) dropProbeAck(lk link, seq uint64, attempt int) bool {
	return c != nil && c.Drop > 0 && c.roll(saltProbeAck, lk, seq, attempt) < c.Drop
}

func (c *ChaosPlan) dup(lk link, seq uint64, attempt int) bool {
	return c != nil && c.Dup > 0 && c.roll(saltDup, lk, seq, attempt) < c.Dup
}

// delay returns the link delay for one transmission: a uniform draw up to
// DelayMax, plus a full extra DelayMax when the reorder roll fires, so
// later transmissions on the link can overtake this one.
func (c *ChaosPlan) delay(lk link, seq uint64, attempt int) time.Duration {
	if c == nil || c.DelayMax <= 0 {
		return 0
	}
	d := time.Duration(c.roll(saltDelay, lk, seq, attempt) * float64(c.DelayMax))
	if c.Reorder > 0 && c.roll(saltReorder, lk, seq, attempt) < c.Reorder {
		d += c.DelayMax
	}
	return d
}

// jitter derives the deterministic retransmission jitter for an attempt:
// up to half the base timeout, keyed like every other decision.
func (c *ChaosPlan) jitter(base time.Duration, lk link, seq uint64, attempt int) time.Duration {
	if c == nil || base <= 0 {
		return 0
	}
	return time.Duration(c.roll(saltJitter, lk, seq, attempt) * float64(base) / 2)
}
