// Package xport is an in-process, deterministic message transport for the
// runtime's centralized (non-DCR) distribution path. The paper's §5
// pipeline ships slices from node 0 through an O(log N) broadcast tree;
// internal/rt previously modeled that as a direct in-process assignment —
// there were no messages, so no message could be lost. This package makes
// the messages explicit so they can fail:
//
//   - a seeded ChaosPlan injects per-link drop, delay, duplication,
//     reordering and bounded partitions, every decision a pure function of
//     (seed, link, sequence, attempt) — never of goroutine interleaving;
//   - every hop is covered by ack/timeout-driven retransmission with capped
//     exponential backoff plus deterministic jitter;
//   - receivers deduplicate by per-link sequence number, so chaos-injected
//     duplicates and timeout-raced retransmissions deliver exactly once;
//   - routing degrades gracefully under node death: the orphaned subtree of
//     a killed interior relay re-parents onto its nearest surviving
//     ancestor, and when fewer than half the nodes survive the tree is
//     abandoned for direct node-0 sends (tree.go).
//
// The net guarantee the chaos property suite leans on: as long as the plan
// admits eventual delivery (Drop < 1, partitions bounded — enforced by
// ChaosPlan.Validate), Broadcast returns only after every payload has been
// delivered exactly once, so the task stream issued on top of the transport
// is identical to a fault-free run's.
package xport

import (
	"fmt"
	"sync"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// link is one directed node pair; data flows src→dst, acks dst→src.
type link struct{ src, dst int }

// RetransmitPolicy tunes the per-hop ack-timeout ladder.
type RetransmitPolicy struct {
	// Timeout is the ack wait before the first retransmission; each
	// further attempt doubles it. Zero defaults to 1ms.
	Timeout time.Duration
	// MaxBackoff caps the doubling; zero defaults to 16ms.
	MaxBackoff time.Duration
}

const (
	defaultTimeout    = time.Millisecond
	defaultMaxBackoff = 16 * time.Millisecond
)

// WaitFor returns the capped ack timeout for the given 1-based attempt.
// Exported so internal/wire's mesh retransmits on the identical ladder.
func (rp RetransmitPolicy) WaitFor(attempt int) time.Duration {
	base := rp.Timeout
	if base <= 0 {
		base = defaultTimeout
	}
	max := rp.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	if attempt < 1 {
		attempt = 1
	}
	shift := uint(attempt - 1)
	if shift >= 63 {
		return max
	}
	d := base << shift
	if d <= 0 || d > max || d>>shift != base {
		return max
	}
	return d
}

// Stats is a snapshot of the transport counters.
type Stats struct {
	// Sends counts hop-level message sends (first transmissions);
	// Retransmits counts timeout-driven re-sends on top of them.
	Sends       int64
	Retransmits int64
	// Drops counts transmissions (data and acks) lost to chaos.
	Drops int64
	// Dedups counts received duplicates suppressed by sequence numbers.
	Dedups int64
	// Reparents counts orphan adoptions: live nodes routed through a
	// surviving ancestor because their broadcast-tree parent is dead,
	// accumulated per broadcast.
	Reparents int64
	// DirectBroadcasts counts broadcasts that abandoned the degraded tree
	// for direct node-0 sends.
	DirectBroadcasts int64
	// PerLink maps each directed link ("src->dst") to its own counters.
	// The map is built fresh on every snapshot — callers may iterate it
	// freely while senders keep transmitting.
	PerLink map[string]LinkStats
}

// LinkStats is one directed link's counter snapshot.
type LinkStats struct {
	Sends       int64
	Acks        int64
	Retransmits int64
	Drops       int64
}

// Options configures a Transport.
type Options struct {
	// Chaos injects message faults; nil runs fault-free.
	Chaos *ChaosPlan
	// Retransmit tunes the ack-timeout ladder; the zero value uses
	// defaults.
	Retransmit RetransmitPolicy
	// Prof records send/recv/retransmit events; nil disables profiling.
	Prof *obs.Recorder
	// Metrics receives the transport's counters: the shared xport_*
	// aggregates (internal/metrics.NameXport*) plus per-link
	// send/ack/retransmit/drop counters and the broadcast fan-out depth
	// gauge. Nil keeps the counters in a private registry, so Stats always
	// works.
	Metrics *metrics.Registry
	// Deliver receives each payload exactly once at its destination node.
	// It may be called from transport goroutines and must be safe for
	// concurrent use.
	Deliver func(node int, payload any)
}

// Item is one payload addressed to a destination node.
type Item struct {
	Dst     int
	Payload any
}

// msg is one in-flight payload with its remaining relay route. tc and
// itemKey are the message header's span context: tc is the broadcast
// parent span (the launch's distribute span) and itemKey disambiguates
// the items of one broadcast, so every hop of every item derives a
// distinct child span. A zero tc is an untraced message.
type msg struct {
	tag     string
	route   []int // remaining hops; the last entry is the destination
	payload any
	done    func()
	tc      obs.TraceRef
	itemKey uint64
}

// hopTC derives the span context for one hop of this message — a pure
// function of (header, link), so sender and receiver agree on the hop
// span without coordination.
func (m *msg) hopTC(lk link) obs.TraceRef {
	return m.tc.Child(m.itemKey<<16 | uint64(lk.dst) + 1)
}

// Transport is the in-process message fabric. One Transport belongs to one
// runtime; Broadcast may only be called by one goroutine at a time (the
// runtime's issuance lock provides that), but the internal machinery —
// relays, retransmission timers, chaos delays — is fully concurrent.
type Transport struct {
	nodes int
	chaos *ChaosPlan
	rp    RetransmitPolicy
	prof  *obs.Recorder
	hand  func(node int, payload any)

	mu        sync.Mutex
	alive     []bool
	nextSeq   map[link]uint64
	sendCount map[link]int64
	seen      map[link]map[uint64]struct{}
	ackWait   map[link]map[uint64]chan struct{}

	// Probe traffic keeps its own per-link sequence numbers and
	// partition-window clocks (probe.go), so heartbeat fates never depend
	// on how data traffic interleaved.
	probeSeq   map[link]uint64
	probeCount map[link]int64

	mx *xportMetrics
}

// New creates a transport over nodes nodes, all initially alive.
func New(nodes int, opts Options) (*Transport, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("xport: transport requires >= 1 node, got %d", nodes)
	}
	if err := opts.Chaos.Validate(); err != nil {
		return nil, err
	}
	if opts.Deliver == nil {
		return nil, fmt.Errorf("xport: Options.Deliver is required")
	}
	t := &Transport{
		nodes: nodes, chaos: opts.Chaos, rp: opts.Retransmit,
		prof: opts.Prof, hand: opts.Deliver,
		alive:      make([]bool, nodes),
		nextSeq:    map[link]uint64{},
		sendCount:  map[link]int64{},
		seen:       map[link]map[uint64]struct{}{},
		ackWait:    map[link]map[uint64]chan struct{}{},
		probeSeq:   map[link]uint64{},
		probeCount: map[link]int64{},
		mx:         newXportMetrics(opts.Metrics),
	}
	for i := range t.alive {
		t.alive[i] = true
	}
	return t, nil
}

// MarkDead removes a node from routing: future broadcasts re-parent its
// orphaned subtree onto surviving ancestors. In-flight messages are not
// recalled — the caller serializes MarkDead against Broadcast.
func (t *Transport) MarkDead(node int) {
	if node < 0 || node >= t.nodes {
		return
	}
	t.mu.Lock()
	t.alive[node] = false
	t.mu.Unlock()
}

// Recycle clears the transport's per-session delivery state — per-link
// data sequence numbers, send counts, dedup sets and ack waiters — so a
// transport reused across many jobs (internal/sched keeps one per executor
// runtime) does not accumulate a sequence-number history per job forever.
// Metrics counters, node liveness and probe-traffic clocks persist across
// the recycle: liveness is a property of the shared machine, not of one
// job, and heartbeat determinism depends on the probe clocks running
// uninterrupted. Resetting the data send counts also restarts the chaos
// plan's per-link decision stream, so every job leased onto the transport
// sees the same deterministic chaos prefix.
//
// The caller must be quiescent: no Broadcast or Probe may be in flight
// (internal/rt guarantees that by recycling only after a fence, between
// jobs).
func (t *Transport) Recycle() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSeq = map[link]uint64{}
	t.sendCount = map[link]int64{}
	t.seen = map[link]map[uint64]struct{}{}
	t.ackWait = map[link]map[uint64]chan struct{}{}
}

// Stats snapshots the transport counters. The values are read from the
// metrics registry the transport records into — there is no second
// bookkeeping path. The per-link table is deep-copied under the link-cache
// lock: the snapshot shares no map with the message path, so iterating it
// while senders run is race-free.
func (t *Transport) Stats() Stats {
	return Stats{
		Sends:            t.mx.sends.Value(),
		Retransmits:      t.mx.retransmits.Value(),
		Drops:            t.mx.drops.Value(),
		Dedups:           t.mx.dedups.Value(),
		Reparents:        t.mx.reparents.Value(),
		DirectBroadcasts: t.mx.directs.Value(),
		PerLink:          t.mx.linkSnapshot(),
	}
}

// Broadcast ships every item from node 0 to its destination through the
// broadcast tree and blocks until each payload has been delivered exactly
// once. Destinations must be live, non-zero nodes — the caller owns the
// liveness snapshot (node-0-local and dead-node payloads never enter the
// transport).
func (t *Transport) Broadcast(tag string, items []Item) {
	t.BroadcastTraced(obs.TraceRef{}, tag, items)
}

// BroadcastTraced is Broadcast with a span context riding the message
// headers: every hop of item i becomes a send span parented on tc (with
// recv and retransmit children), so a traced job's broadcast fan-out
// shows up in its span tree hop by hop. A zero tc is plain Broadcast.
func (t *Transport) BroadcastTraced(tc obs.TraceRef, tag string, items []Item) {
	if len(items) == 0 {
		return
	}
	t.mu.Lock()
	alive := make([]bool, len(t.alive))
	copy(alive, t.alive)
	t.mu.Unlock()

	dsts := make([]int, len(items))
	for i, it := range items {
		dsts[i] = it.Dst
	}
	plan := planRoutes(alive, dsts)
	t.mx.reparents.Add(int64(plan.reparents))
	if plan.direct {
		t.mx.directs.Inc()
	}
	depth := 0
	for _, route := range plan.routes {
		if len(route) > depth {
			depth = len(route)
		}
	}
	t.mx.treeDepth.Set(int64(depth))

	var wg sync.WaitGroup
	wg.Add(len(items))
	for i, it := range items {
		m := &msg{tag: tag, route: plan.routes[it.Dst], payload: it.Payload, done: wg.Done,
			tc: tc, itemKey: uint64(i + 1)}
		go t.ship(0, m)
	}
	wg.Wait()
}

// ship moves m one hop from `from` toward its destination, reliably.
func (t *Transport) ship(from int, m *msg) {
	t.sendReliable(link{src: from, dst: m.route[0]}, m)
}

// sendReliable transmits m over one link and blocks until the hop is
// acked, retransmitting on a capped exponential backoff with deterministic
// jitter.
func (t *Transport) sendReliable(lk link, m *msg) {
	lc := t.mx.link(lk)
	t.mx.sends.Inc()
	lc.sends.Inc()
	t.mu.Lock()
	seq := t.nextSeq[lk]
	t.nextSeq[lk] = seq + 1
	ack := make(chan struct{})
	aw := t.ackWait[lk]
	if aw == nil {
		aw = map[uint64]chan struct{}{}
		t.ackWait[lk] = aw
	}
	aw[seq] = ack
	t.mu.Unlock()

	var start int64
	if t.prof != nil {
		start = t.prof.Now()
	}
	htc := m.hopTC(lk)
	for attempt := 1; ; attempt++ {
		t.transmit(lk, seq, attempt, m)
		wait := t.rp.WaitFor(attempt) + t.chaos.jitter(t.rp.WaitFor(attempt), lk, seq, attempt)
		timer := time.NewTimer(wait)
		select {
		case <-ack:
			timer.Stop()
			if t.prof != nil {
				t.prof.SpanTC(htc, lk.src, obs.StageSend, "xfer", m.tag, domain.Point{}, start, t.prof.Now())
			}
			return
		case <-timer.C:
			t.mx.retransmits.Inc()
			lc.retransmits.Inc()
			if t.prof != nil {
				t.prof.MarkTC(htc.Child(uint64(1+attempt)), lk.src, obs.StageRetransmit, "xfer", m.tag, domain.Point{}, t.prof.Now())
			}
		}
	}
}

// transmit performs one transmission attempt, applying the chaos plan.
func (t *Transport) transmit(lk link, seq uint64, attempt int, m *msg) {
	if t.chaos.cut(lk, t.bumpSendCount(lk)) || t.chaos.drop(lk, seq, attempt) {
		t.mx.drops.Inc()
		t.mx.link(lk).drops.Inc()
		return
	}
	copies := 1
	if t.chaos.dup(lk, seq, attempt) {
		copies = 2
	}
	delay := t.chaos.delay(lk, seq, attempt)
	for i := 0; i < copies; i++ {
		if delay > 0 || i > 0 {
			go func() {
				time.Sleep(delay)
				t.receive(lk, seq, attempt, m)
			}()
			continue
		}
		t.receive(lk, seq, attempt, m)
	}
}

// receive handles one arriving transmission at lk.dst: deduplicate,
// deliver or relay on first receipt, and ack (acks are chaos-subjected
// too — a lost ack triggers a retransmission the dedup layer absorbs).
func (t *Transport) receive(lk link, seq uint64, attempt int, m *msg) {
	t.mu.Lock()
	sn := t.seen[lk]
	if sn == nil {
		sn = map[uint64]struct{}{}
		t.seen[lk] = sn
	}
	_, dup := sn[seq]
	if !dup {
		sn[seq] = struct{}{}
	}
	t.mu.Unlock()

	if dup {
		t.mx.dedups.Inc()
	} else {
		if t.prof != nil {
			t.prof.MarkTC(m.hopTC(lk).Child(1), lk.dst, obs.StageRecv, "xfer", m.tag, domain.Point{}, t.prof.Now())
		}
		if len(m.route) == 1 {
			t.hand(lk.dst, m.payload)
			m.done()
		} else {
			next := &msg{tag: m.tag, route: m.route[1:], payload: m.payload, done: m.done,
				tc: m.tc, itemKey: m.itemKey}
			go t.ship(lk.dst, next)
		}
	}
	t.sendAck(lk, seq, attempt)
}

// sendAck returns an ack to the sender over the reverse link. The ack
// decision is keyed on the data attempt number so a seq whose first ack is
// doomed is not doomed forever.
func (t *Transport) sendAck(lk link, seq uint64, attempt int) {
	rk := link{src: lk.dst, dst: lk.src}
	if t.chaos.cut(rk, t.bumpSendCount(rk)) || t.chaos.dropAck(rk, seq, attempt) {
		t.mx.drops.Inc()
		t.mx.link(rk).drops.Inc()
		return
	}
	if delay := t.chaos.delay(rk, seq, attempt); delay > 0 {
		go func() {
			time.Sleep(delay)
			t.signalAck(lk, seq)
		}()
		return
	}
	t.signalAck(lk, seq)
}

// signalAck completes the sender's wait for (lk, seq); late or duplicate
// acks for an already-acked sequence are ignored.
func (t *Transport) signalAck(lk link, seq uint64) {
	t.mu.Lock()
	var ack chan struct{}
	if aw := t.ackWait[lk]; aw != nil {
		ack = aw[seq]
		delete(aw, seq)
	}
	t.mu.Unlock()
	if ack != nil {
		t.mx.link(lk).acks.Inc()
		close(ack)
	}
}

// bumpSendCount advances the link's lifetime transmission counter and
// returns its pre-increment value — the clock partition windows run on.
func (t *Transport) bumpSendCount(lk link) int64 {
	t.mu.Lock()
	n := t.sendCount[lk]
	t.sendCount[lk] = n + 1
	t.mu.Unlock()
	return n
}
