package xport

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// collector is a Deliver handler recording (node, payload) pairs.
type collector struct {
	mu  sync.Mutex
	got map[int][]any
}

func newCollector() *collector { return &collector{got: map[int][]any{}} }

func (c *collector) deliver(node int, payload any) {
	c.mu.Lock()
	c.got[node] = append(c.got[node], payload)
	c.mu.Unlock()
}

func mustNew(t *testing.T, nodes int, opts Options) *Transport {
	t.Helper()
	tr, err := New(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func allItems(nodes int) []Item {
	items := make([]Item, 0, nodes-1)
	for n := 1; n < nodes; n++ {
		items = append(items, Item{Dst: n, Payload: n * 10})
	}
	return items
}

// checkDelivered asserts every non-root node received exactly its payload.
func checkDelivered(t *testing.T, c *collector, nodes int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for n := 1; n < nodes; n++ {
		ps := c.got[n]
		if len(ps) != 1 || ps[0] != n*10 {
			t.Errorf("node %d received %v, want exactly [%d]", n, ps, n*10)
		}
	}
	if len(c.got) != nodes-1 {
		t.Errorf("deliveries reached %d nodes, want %d", len(c.got), nodes-1)
	}
}

func TestFaultFreeBroadcastDeliversOnce(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver})
	tr.Broadcast("b", allItems(nodes))
	checkDelivered(t, c, nodes)
	st := tr.Stats()
	// 7 destinations routed through the binary tree: depth(1..7) =
	// 1+1+2+2+2+2+3 = 13 hop sends, nothing else.
	if st.Sends != 13 || st.Retransmits != 0 || st.Drops != 0 || st.Dedups != 0 || st.Reparents != 0 {
		t.Errorf("stats = %+v, want 13 clean sends", st)
	}
}

func TestChaosDropsForceRetransmits(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{
		Deliver: c.deliver,
		Chaos:   &ChaosPlan{Seed: 7, Drop: 0.4},
		// Short timeouts keep the test fast; dropped hops re-send quickly.
		Retransmit: RetransmitPolicy{Timeout: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond},
	})
	for round := 0; round < 4; round++ {
		tr.Broadcast("b", allItems(nodes))
	}
	c.mu.Lock()
	for n := 1; n < nodes; n++ {
		if len(c.got[n]) != 4 {
			t.Errorf("node %d received %d payloads, want 4", n, len(c.got[n]))
		}
	}
	c.mu.Unlock()
	st := tr.Stats()
	if st.Drops == 0 || st.Retransmits == 0 {
		t.Errorf("40%% drop produced no faults: %+v", st)
	}
}

func TestChaosDuplicatesAreDeduped(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{
		Deliver: c.deliver,
		Chaos:   &ChaosPlan{Seed: 3, Dup: 0.6},
	})
	for round := 0; round < 4; round++ {
		tr.Broadcast("b", allItems(nodes))
	}
	c.mu.Lock()
	for n := 1; n < nodes; n++ {
		if len(c.got[n]) != 4 {
			t.Errorf("node %d received %d payloads, want 4 (duplicates must dedup)", n, len(c.got[n]))
		}
	}
	c.mu.Unlock()
	if st := tr.Stats(); st.Dedups == 0 {
		t.Errorf("60%% duplication produced no dedups: %+v", st)
	}
}

func TestPartitionHealsAndDelivers(t *testing.T) {
	const nodes = 4
	c := newCollector()
	tr := mustNew(t, nodes, Options{
		Deliver: c.deliver,
		// Link 0–1 is down for its first 3 transmissions: the first sends
		// to node 1 (and relays toward 3) must retransmit through the
		// outage until it heals.
		Chaos:      &ChaosPlan{Seed: 1, Partitions: []Partition{{A: 0, B: 1, AfterSends: 0, Sends: 3}}},
		Retransmit: RetransmitPolicy{Timeout: 100 * time.Microsecond, MaxBackoff: time.Millisecond},
	})
	tr.Broadcast("b", allItems(nodes))
	checkDelivered(t, c, nodes)
	st := tr.Stats()
	if st.Drops < 3 || st.Retransmits < 3 {
		t.Errorf("outage window should cost >= 3 drops and retransmits: %+v", st)
	}
}

func TestDeadInteriorNodeReparentsSubtree(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver})
	// Node 1 is an interior relay for nodes 3, 4 (children) and 7
	// (grandchild via 3). Killing it must re-parent the subtree onto node
	// 0 and still deliver everywhere else.
	tr.MarkDead(1)
	items := []Item{}
	for n := 2; n < nodes; n++ {
		items = append(items, Item{Dst: n, Payload: n * 10})
	}
	tr.Broadcast("b", items)
	c.mu.Lock()
	for n := 2; n < nodes; n++ {
		if len(c.got[n]) != 1 {
			t.Errorf("node %d received %d payloads, want 1", n, len(c.got[n]))
		}
	}
	c.mu.Unlock()
	// Orphans of node 1: nodes 3 and 4 (node 7 keeps its live parent 3).
	if st := tr.Stats(); st.Reparents != 2 {
		t.Errorf("reparents = %d, want 2", st.Reparents)
	}
}

func TestDegradedTreeFallsBackToDirectSends(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver})
	for _, n := range []int{1, 2, 3, 4, 5} {
		tr.MarkDead(n)
	}
	tr.Broadcast("b", []Item{{Dst: 6, Payload: 60}, {Dst: 7, Payload: 70}})
	c.mu.Lock()
	if len(c.got[6]) != 1 || len(c.got[7]) != 1 {
		t.Errorf("direct fallback failed: %v", c.got)
	}
	c.mu.Unlock()
	st := tr.Stats()
	if st.DirectBroadcasts != 1 {
		t.Errorf("direct broadcasts = %d, want 1", st.DirectBroadcasts)
	}
	// Direct routes are single hops: exactly one send per destination.
	if st.Sends != 2 {
		t.Errorf("sends = %d, want 2 single-hop sends", st.Sends)
	}
}

func TestRoutesNeverRelayThroughDeadNodes(t *testing.T) {
	alive := []bool{true, false, true, true, true, true, true, false}
	plan := planRoutes(alive, []int{3, 4, 6})
	for d, route := range plan.routes {
		if route[len(route)-1] != d {
			t.Errorf("route to %d ends at %d", d, route[len(route)-1])
		}
		for _, hop := range route {
			if !alive[hop] {
				t.Errorf("route to %d relays through dead node %d: %v", d, hop, route)
			}
		}
	}
	// Orphans: 3 and 4 (parent 1 dead).
	if plan.reparents != 2 {
		t.Errorf("reparents = %d, want 2", plan.reparents)
	}
	if plan.direct {
		t.Error("6/8 alive should keep the tree")
	}
}

// Chaos decisions must be pure functions of identity — independent of call
// order and of wall time.
func TestChaosDecisionsDeterministic(t *testing.T) {
	c := &ChaosPlan{Seed: 42, Drop: 0.3, Dup: 0.3, Reorder: 0.3, DelayMax: time.Millisecond}
	lk := link{src: 0, dst: 5}
	type fate struct {
		drop, dup bool
		delay     time.Duration
	}
	read := func() []fate {
		var out []fate
		for seq := uint64(0); seq < 64; seq++ {
			for attempt := 1; attempt <= 3; attempt++ {
				out = append(out, fate{c.drop(lk, seq, attempt), c.dup(lk, seq, attempt), c.delay(lk, seq, attempt)})
			}
		}
		return out
	}
	a, b := read(), read()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across reads: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The fates must actually vary (the hash is not constant).
	drops := 0
	for _, f := range a {
		if f.drop {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Errorf("drop rolls degenerate: %d/%d", drops, len(a))
	}
}

func TestChaosPlanValidate(t *testing.T) {
	bad := []*ChaosPlan{
		{Drop: 1.0},
		{Dup: -0.1},
		{Reorder: 1.5},
		{DelayMax: -time.Second},
		{Partitions: []Partition{{A: 0, B: 1, AfterSends: -1}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("plan %d should fail validation: %+v", i, c)
		}
	}
	ok := &ChaosPlan{Seed: 1, Drop: 0.5, Dup: 0.5, Reorder: 0.9, DelayMax: time.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := (*ChaosPlan)(nil).Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestRetransmitPolicyWaitForCaps(t *testing.T) {
	rp := RetransmitPolicy{Timeout: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if got := rp.WaitFor(i + 1); got != w {
			t.Errorf("waitFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Huge attempt counts must stay at the cap, not wrap.
	for _, attempt := range []int{32, 63, 64, 1 << 20} {
		if got := rp.WaitFor(attempt); got != 8*time.Millisecond {
			t.Errorf("waitFor(%d) = %v, want cap", attempt, got)
		}
	}
	var zero RetransmitPolicy
	if zero.WaitFor(1) != defaultTimeout || zero.WaitFor(1000) != defaultMaxBackoff {
		t.Errorf("zero policy defaults wrong: %v, %v", zero.WaitFor(1), zero.WaitFor(1000))
	}
}

// Full-chaos soak: drops + dups + delays + reorders + a partition, many
// rounds, and delivery still happens exactly once per payload per round.
func TestChaosSoakDeliversExactlyOnce(t *testing.T) {
	const nodes, rounds = 8, 6
	c := newCollector()
	tr := mustNew(t, nodes, Options{
		Deliver: c.deliver,
		Chaos: &ChaosPlan{
			Seed: 99, Drop: 0.25, Dup: 0.25, Reorder: 0.3, DelayMax: 100 * time.Microsecond,
			Partitions: []Partition{{A: 0, B: 2, AfterSends: 2, Sends: 4}},
		},
		Retransmit: RetransmitPolicy{Timeout: 300 * time.Microsecond, MaxBackoff: 3 * time.Millisecond},
	})
	for round := 0; round < rounds; round++ {
		tr.Broadcast("soak", allItems(nodes))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var got []int
	for n, ps := range c.got {
		if len(ps) != rounds {
			t.Errorf("node %d received %d payloads, want %d", n, len(ps), rounds)
		}
		got = append(got, n)
	}
	sort.Ints(got)
	if len(got) != nodes-1 {
		t.Errorf("deliveries reached nodes %v, want all of 1..%d", got, nodes-1)
	}
}

// TestRecycleResetsPerJobState: after Recycle, a transport reused for a new
// job accepts re-broadcasts cleanly (fresh sequence/dedup state) while
// cumulative stats keep counting — the shared-transport contract the
// scheduler's executor pool relies on.
func TestRecycleResetsPerJobState(t *testing.T) {
	const nodes = 8
	c := newCollector()
	tr := mustNew(t, nodes, Options{Deliver: c.deliver})
	tr.Broadcast("job1", allItems(nodes))
	checkDelivered(t, c, nodes)

	tr.Recycle()

	// Same tag, same items: with per-job sequence state reset, deliveries
	// are not mistaken for duplicates of the first job's messages.
	c2 := newCollector()
	c.mu.Lock()
	c.got = c2.got
	c.mu.Unlock()
	tr.Broadcast("job2", allItems(nodes))
	checkDelivered(t, c, nodes)

	st := tr.Stats()
	if st.Sends != 26 || st.Dedups != 0 {
		t.Errorf("stats after recycle = %+v, want 26 cumulative sends, 0 dedups", st)
	}
}
