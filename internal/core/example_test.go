package core_test

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/safety"
)

// Example builds the paper's Listing 1: two index launches, one with a
// trivial projection functor and one non-trivial, and verifies both with
// the hybrid analysis.
func Example() {
	fields := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	pTree := region.MustNewTree("p", domain.Range1(0, 99), fields)
	qTree := region.MustNewTree("q", domain.Range1(0, 99), fields)
	p, _ := pTree.PartitionEqual(pTree.Root(), "p", 10)
	q, _ := qTree.PartitionEqual(qTree.Root(), "q", 10)

	// for i = 0, N do foo(p[i]) end
	foo := core.MustForall("foo", 0, domain.Range1(0, 9), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{0},
	})
	// for i = 0, N do bar(q[f(i)]) end with an opaque f
	f := projection.Func("f", 1, 1, func(pt domain.Point) domain.Point {
		return domain.Pt1((pt.X()*3 + 1) % 10)
	})
	bar := core.MustForall("bar", 1, domain.Range1(0, 9), core.Requirement{
		Partition: q, Functor: f,
		Priv: privilege.ReadWrite, Fields: []region.FieldID{0},
	})

	for _, l := range []*core.IndexLaunch{foo, bar} {
		res := l.Verify(safety.Options{})
		fmt.Printf("%s: safe=%v method=%s parallelism=%d\n",
			l.Tag, res.Safe, res.Args[0].Method, l.Parallelism())
	}
	// Output:
	// foo: safe=true method=static parallelism=10
	// bar: safe=true method=dynamic parallelism=10
}

// ExampleIndexLaunch_Each shows lazy expansion of the compact
// representation.
func ExampleIndexLaunch_Each() {
	fields := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("data", domain.Range1(0, 29), fields)
	blocks, _ := tree.PartitionEqual(tree.Root(), "blocks", 3)
	l := core.MustForall("work", 0, domain.Range1(0, 2), core.Requirement{
		Partition: blocks, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{0},
	})
	_ = l.Each(func(pt core.PointTask) bool {
		fmt.Printf("task %v -> %v\n", pt.Point, pt.Regions[0].Domain)
		return true
	})
	// Output:
	// task <0> -> [<0>..<9>]
	// task <1> -> [<10>..<19>]
	// task <2> -> [<20>..<29>]
}
