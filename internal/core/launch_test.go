package core

import (
	"strings"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/safety"
)

func testPartition(t *testing.T, n int64, parts int) *region.Partition {
	t.Helper()
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("line", domain.Range1(0, n-1), fs)
	p, err := tree.PartitionEqual(tree.Root(), "blocks", parts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestForallValidation(t *testing.T) {
	p := testPartition(t, 100, 10)
	good := Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write, Fields: []region.FieldID{0}}

	if _, err := Forall("t", 1, domain.Range1(0, -1), good); err == nil {
		t.Error("empty domain should be rejected")
	}
	bad := good
	bad.Partition = nil
	if _, err := Forall("t", 1, domain.Range1(0, 9), bad); err == nil {
		t.Error("nil partition should be rejected")
	}
	bad = good
	bad.Functor = nil
	if _, err := Forall("t", 1, domain.Range1(0, 9), bad); err == nil {
		t.Error("nil functor should be rejected")
	}
	bad = good
	bad.Fields = nil
	if _, err := Forall("t", 1, domain.Range1(0, 9), bad); err == nil {
		t.Error("empty fields should be rejected")
	}
	bad = good
	bad.Fields = []region.FieldID{99}
	if _, err := Forall("t", 1, domain.Range1(0, 9), bad); err == nil {
		t.Error("unknown field should be rejected")
	}
	bad = good
	bad.Priv = privilege.Reduce
	bad.RedOp = privilege.OpID(9999)
	if _, err := Forall("t", 1, domain.Range1(0, 9), bad); err == nil {
		t.Error("unknown reduction op should be rejected")
	}
	if _, err := Forall("t", 1, domain.Range1(0, 9), good); err != nil {
		t.Errorf("good launch rejected: %v", err)
	}
}

func TestParallelism(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read, Fields: []region.FieldID{0}})
	if l.Parallelism() != 10 {
		t.Errorf("parallelism = %d", l.Parallelism())
	}
}

func TestAtExpansion(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write, Fields: []region.FieldID{0}})
	pt, err := l.At(domain.Pt1(3))
	if err != nil {
		t.Fatal(err)
	}
	// Block 3 of 10 over [0,99] is [30,39].
	want := domain.Range1(30, 39)
	if !pt.Regions[0].Domain.Eq(want) {
		t.Errorf("region = %v, want %v", pt.Regions[0].Domain, want)
	}
	if _, err := l.At(domain.Pt1(10)); err == nil {
		t.Error("point outside domain should error")
	}
}

func TestAtOutOfColorSpace(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Affine1D(1, 5), Priv: privilege.Read, Fields: []region.FieldID{0}})
	if _, err := l.At(domain.Pt1(7)); err == nil {
		t.Error("functor selecting color 12 of 10 should error")
	}
	if _, err := l.At(domain.Pt1(2)); err != nil {
		t.Errorf("color 7 should exist: %v", err)
	}
}

func TestEachLazyExpansion(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write, Fields: []region.FieldID{0}})
	var count int
	err := l.Each(func(pt PointTask) bool {
		count++
		if len(pt.Regions) != 1 {
			t.Errorf("point %v: %d regions", pt.Point, len(pt.Regions))
		}
		return true
	})
	if err != nil || count != 10 {
		t.Errorf("count = %d, err = %v", count, err)
	}
	// Early stop.
	count = 0
	_ = l.Each(func(PointTask) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestEachPropagatesExpansionError(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Affine1D(2, 0), Priv: privilege.Read, Fields: []region.FieldID{0}})
	err := l.Each(func(PointTask) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "no subregion") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifyIntegration(t *testing.T) {
	p := testPartition(t, 100, 10)
	safe := MustForall("safe", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write, Fields: []region.FieldID{0}})
	if res := safe.Verify(safety.Options{}); !res.Safe {
		t.Errorf("identity launch unsafe: %s", res.Reason)
	}
	unsafe := MustForall("unsafe", 1, domain.Range1(0, 4),
		Requirement{Partition: testPartition(t, 30, 3), Functor: projection.Modular1D(1, 0, 3), Priv: privilege.Write, Fields: []region.FieldID{0}})
	if res := unsafe.Verify(safety.Options{}); res.Safe {
		t.Error("i%3 write launch should be unsafe")
	}
}

func TestReprBytesIndependentOfParallelism(t *testing.T) {
	// The O(1) claim: a dense launch of 10 tasks and one of 10M tasks have
	// identical representation sizes.
	small := testPartition(t, 100, 10)
	large := testPartition(t, 100, 10)
	req := func(p *region.Partition) Requirement {
		return Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read, Fields: []region.FieldID{0}}
	}
	l1 := MustForall("small", 1, domain.Range1(0, 9), req(small))
	l2 := MustForall("large", 1, domain.Range1(0, 9_999_999), req(large))
	if l1.ReprBytes() != l2.ReprBytes() {
		t.Errorf("dense repr sizes differ: %d vs %d", l1.ReprBytes(), l2.ReprBytes())
	}
	if l2.Parallelism() != 10_000_000 {
		t.Errorf("parallelism = %d", l2.Parallelism())
	}
}

func TestReprBytesSparseScales(t *testing.T) {
	p := testPartition(t, 100, 10)
	req := Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read, Fields: []region.FieldID{0}}
	sm := MustForall("s", 1, domain.FromPoints([]domain.Point{domain.Pt1(0), domain.Pt1(1)}), req)
	lg := MustForall("l", 1, domain.FromPoints([]domain.Point{
		domain.Pt1(0), domain.Pt1(1), domain.Pt1(2), domain.Pt1(3),
		domain.Pt1(4), domain.Pt1(5), domain.Pt1(6), domain.Pt1(7),
	}), req)
	if sm.ReprBytes() >= lg.ReprBytes() {
		t.Errorf("sparse repr should scale with points: %d vs %d", sm.ReprBytes(), lg.ReprBytes())
	}
}

func TestPointArgs(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("t", 1, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read, Fields: []region.FieldID{0}})
	l.Args = []byte{7}
	if got := l.ArgsAt(domain.Pt1(3)); len(got) != 1 || got[0] != 7 {
		t.Errorf("shared args = %v", got)
	}
	l.PointArgs = func(pt domain.Point) []byte { return []byte{byte(pt.X() * 2)} }
	if got := l.ArgsAt(domain.Pt1(3)); len(got) != 1 || got[0] != 6 {
		t.Errorf("point args = %v", got)
	}
}

func TestStringer(t *testing.T) {
	p := testPartition(t, 100, 10)
	l := MustForall("calc", 7, domain.Range1(0, 9),
		Requirement{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read, Fields: []region.FieldID{0}})
	s := l.String()
	if !strings.Contains(s, "calc") || !strings.Contains(s, "forall") {
		t.Errorf("String = %q", s)
	}
}
