// Package core implements the paper's primary contribution: the index
// launch, an O(1)-size representation of a group of |D| parallel tasks
// (paper §3):
//
//	forall(D, T, ⟨P₁,f₁⟩, …, ⟨Pₙ,fₙ⟩)
//
// where D is the launch domain, T the task, Pᵢ a partition of a collection
// and fᵢ the projection functor selecting which sub-collection of Pᵢ each
// point task receives. The representation stays compact until the runtime's
// distribution stage expands it; expansion is exposed here as lazy per-point
// iteration so no consumer is forced to materialize all |D| tasks.
package core

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/safety"
)

// TaskID names a registered task variant.
type TaskID uint32

// Requirement is one collection argument of an index launch: the
// ⟨partition, projection functor⟩ pair, the declared privilege, and the
// fields accessed.
type Requirement struct {
	Partition *region.Partition
	Functor   projection.Functor
	Priv      privilege.Privilege
	RedOp     privilege.OpID // meaningful only when Priv is Reduce
	Fields    []region.FieldID
}

// Validate checks structural well-formedness of the requirement.
func (r Requirement) Validate() error {
	if r.Partition == nil {
		return fmt.Errorf("core: requirement has nil partition")
	}
	if r.Functor == nil {
		return fmt.Errorf("core: requirement has nil projection functor")
	}
	if !r.Priv.Valid() {
		return fmt.Errorf("core: invalid privilege %d", r.Priv)
	}
	if r.Priv == privilege.Reduce {
		if _, err := privilege.LookupOp(r.RedOp); err != nil {
			return fmt.Errorf("core: reduce requirement: %w", err)
		}
	}
	if len(r.Fields) == 0 {
		return fmt.Errorf("core: requirement selects no fields")
	}
	for _, f := range r.Fields {
		if !r.Partition.Parent.Tree.Fields.Has(f) {
			return fmt.Errorf("core: collection %q has no field %d", r.Partition.Parent.Tree.Name, f)
		}
	}
	return nil
}

// IndexLaunch is the compact representation of a parallel task group. Its
// in-memory size is independent of the number of tasks it represents (for
// dense launch domains; sparse domains carry their point list).
type IndexLaunch struct {
	Task         TaskID
	Tag          string // diagnostic name, e.g. "calc_new_currents"
	Domain       domain.Domain
	Requirements []Requirement
	// Args is an opaque by-value payload delivered to every point task
	// ("non-collection arguments... simply passed to the task by value").
	Args []byte
	// PointArgs, when non-nil, supplies a per-point payload evaluated at
	// expansion time — the analog of Legion's argument maps. It must be a
	// pure function; replicated shards evaluate it independently. When both
	// Args and PointArgs are set, point tasks receive PointArgs' value.
	PointArgs func(domain.Point) []byte
}

// ArgsAt returns the by-value payload for launch point p.
func (l *IndexLaunch) ArgsAt(p domain.Point) []byte {
	if l.PointArgs != nil {
		return l.PointArgs(p)
	}
	return l.Args
}

// Forall constructs an index launch: forall(D, T, reqs...). It validates
// structure (not safety — see Verify) and returns an error for malformed
// requirements or an empty domain.
func Forall(tag string, task TaskID, d domain.Domain, reqs ...Requirement) (*IndexLaunch, error) {
	if d.Empty() {
		return nil, fmt.Errorf("core: index launch %q over empty domain", tag)
	}
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("core: launch %q requirement %d: %w", tag, i, err)
		}
	}
	return &IndexLaunch{Task: task, Tag: tag, Domain: d, Requirements: reqs}, nil
}

// MustForall is Forall that panics on error; for statically correct launches.
func MustForall(tag string, task TaskID, d domain.Domain, reqs ...Requirement) *IndexLaunch {
	l, err := Forall(tag, task, d, reqs...)
	if err != nil {
		panic(err)
	}
	return l
}

// Parallelism returns |D|, the number of point tasks the launch represents
// (the paper's P).
func (l *IndexLaunch) Parallelism() int64 { return l.Domain.Volume() }

// Verify runs the hybrid safety analysis (§3–§4) over the launch. A launch
// whose result is not Safe must not be executed as an index launch; callers
// fall back to a sequential loop of single launches, exactly as the
// generated branch in Listing 3 does.
func (l *IndexLaunch) Verify(opts safety.Options) safety.Result {
	args := make([]safety.Arg, len(l.Requirements))
	for i, r := range l.Requirements {
		args[i] = safety.Arg{Partition: r.Partition, Functor: r.Functor, Priv: r.Priv, RedOp: r.RedOp, Fields: r.Fields}
	}
	return safety.Analyze(l.Domain, args, opts)
}

// PointTask is one expanded task of an index launch.
type PointTask struct {
	Launch *IndexLaunch
	Point  domain.Point
	// Regions holds the sub-collection selected by each requirement's
	// projection functor at this point, in requirement order.
	Regions []*region.Region
}

// At expands the point task for launch point p by evaluating every
// projection functor. It returns an error if p is outside the launch domain
// or a functor selects a color outside its partition's color space.
func (l *IndexLaunch) At(p domain.Point) (PointTask, error) {
	if !l.Domain.Contains(p) {
		return PointTask{}, fmt.Errorf("core: point %v outside launch domain %v of %q", p, l.Domain, l.Tag)
	}
	pt := PointTask{Launch: l, Point: p, Regions: make([]*region.Region, len(l.Requirements))}
	for i, r := range l.Requirements {
		color := r.Functor.Project(p)
		sub, err := r.Partition.Subregion(color)
		if err != nil {
			return PointTask{}, fmt.Errorf("core: launch %q point %v requirement %d: %w", l.Tag, p, i, err)
		}
		pt.Regions[i] = sub
	}
	return pt, nil
}

// Each lazily expands the launch, invoking fn for every point task in
// canonical domain order. Expansion stops at the first error or when fn
// returns false. This is the only way to enumerate an index launch; there is
// deliberately no method materializing all point tasks at once.
func (l *IndexLaunch) Each(fn func(PointTask) bool) error {
	var err error
	l.Domain.Each(func(p domain.Point) bool {
		var pt PointTask
		pt, err = l.At(p)
		if err != nil {
			return false
		}
		return fn(pt)
	})
	return err
}

// ReprBytes estimates the in-memory size of the compact representation.
// For dense launch domains the result is independent of Parallelism() —
// the paper's O(1) claim — while sparse domains pay for their point list.
// The estimate covers the launch struct, requirement slice, and domain.
func (l *IndexLaunch) ReprBytes() int64 {
	const (
		launchHeader = 96 // struct fields, slice headers, tag header
		perReq       = 64 // partition pointer, functor iface, privilege, fields header
		denseDomain  = 64 // two points + flags
		perSparsePt  = 32
	)
	size := int64(launchHeader) + int64(len(l.Requirements))*perReq + int64(len(l.Args))
	if l.Domain.Sparse() {
		size += denseDomain + l.Domain.Volume()*perSparsePt
	} else {
		size += denseDomain
	}
	return size
}

func (l *IndexLaunch) String() string {
	return fmt.Sprintf("forall(%v, %s/%d, %d reqs)", l.Domain, l.Tag, l.Task, len(l.Requirements))
}
