package lang

import (
	"strconv"
	"unicode"
)

// Lex tokenizes src. Comments run from "--" to end of line (Regent style).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	runes := []rune(src)
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if runes[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(runes) {
		c := runes[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < len(runes) && runes[i+1] == '-':
			for i < len(runes) && runes[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(c) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_') {
				j++
			}
			text := string(runes[i:j])
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
			advance(j - i)
		case unicode.IsDigit(c):
			startLine, startCol := line, col
			j := i
			for j < len(runes) && unicode.IsDigit(runes[j]) {
				j++
			}
			text := string(runes[i:j])
			v, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, errf(startLine, startCol, "integer %q out of range", text)
			}
			toks = append(toks, Token{Kind: TokInt, Text: text, Int: v, Line: startLine, Col: startCol})
			advance(j - i)
		default:
			startLine, startCol := line, col
			switch c {
			case '(', ')', '[', ']', ',', '=', '+', '-', '*', '/', '%':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Line: startLine, Col: startCol})
				advance(1)
			default:
				return nil, errf(startLine, startCol, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
