-- The paper's Listings 1 and 2 plus cross-check cases.
task foo(r) where reads(r), writes(r) do end
task bar(q) where reads(q), writes(q) do end
task baz(c1, c2) where reads(c1), writes(c2) do end
task two(a, b) where writes(a), reads(b) do end

var N = 10
for i = 0, N do
  foo(p[i])
end

for i = 0, N do
  bar(q[(3*i+2) % 32])
end

for i = 0, 5 do
  baz(p[i], q[i % 3])
end

for i = 0, 5 do
  two(p[2*i], p[2*i+1])
end

for t = 0, 2 do
  for i = 0, N do
    foo(p[i])
  end
end
