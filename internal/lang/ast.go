package lang

import "indexlaunch/internal/privilege"

// Program is a parsed source file: task declarations plus top-level
// statements.
type Program struct {
	Tasks []*TaskDecl
	Stmts []Stmt
}

// TaskDecl declares a task with its parameters and privileges. Task bodies
// are elided in this DSL — the language describes launch structure; kernels
// are bound at interpretation time.
type TaskDecl struct {
	Name   string
	Params []string
	Privs  []PrivDecl
	Line   int
}

// PrivDecl is one privilege clause: reads(r), writes(s), reduces +(t).
type PrivDecl struct {
	Priv  privilege.Privilege
	RedOp privilege.OpID
	Param string
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// VarDecl binds a name to an integer expression: var N = 10.
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// ForLoop is "for i = lo, hi do ... end" with exclusive hi, matching the
// paper's Listing 1/2 syntax.
type ForLoop struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Line   int
}

// LaunchStmt invokes a task with partition-indexed arguments:
// foo(p[i], q[i%3]).
type LaunchStmt struct {
	Task string
	Args []ArgExpr
	Line int
}

// ArgExpr is one launch argument: partition name plus index expression.
type ArgExpr struct {
	Partition string
	Index     Expr
}

func (*VarDecl) stmtNode()    {}
func (*ForLoop) stmtNode()    {}
func (*LaunchStmt) stmtNode() {}

// Expr is an integer expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// VarRef references a loop variable or declared constant.
type VarRef struct {
	Name string
	Line int
	Col  int
}

// BinOp is a binary arithmetic expression; Op is one of + - * / %.
type BinOp struct {
	Op   string
	L, R Expr
}

func (*IntLit) exprNode() {}
func (*VarRef) exprNode() {}
func (*BinOp) exprNode()  {}
