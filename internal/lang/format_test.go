package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	src := Format(prog)
	prog2, err := Parse(src)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, src)
	}
	// Round-trip fixpoint: formatting the reparsed program is identical.
	if src2 := Format(prog2); src2 != src {
		t.Errorf("format not a fixpoint:\n--- first ---\n%s--- second ---\n%s", src, src2)
	}
}

func TestFormatPrivileges(t *testing.T) {
	prog, err := Parse("task f(a, b, c, d) where reads(a), writes(b), reduces +(c), reduces max(d) do end")
	if err != nil {
		t.Fatal(err)
	}
	out := Format(prog)
	for _, want := range []string{"reads(a)", "writes(b)", "reduces +(c)", "reduces max(d)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Errorf("formatted privileges do not parse: %v", err)
	}
}

// Property: random expressions survive format → parse → classify with the
// same classification.
func TestFormatExprRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 3)
		src := "task f(a) where writes(a) do end\nfor i = 0, 5 do f(p[" + FormatExpr(e) + "]) end"
		prog, err := Parse(src)
		if err != nil {
			return false
		}
		e2 := prog.Stmts[0].(*ForLoop).Body[0].(*LaunchStmt).Args[0].Index
		c1 := Classify(e, "i", nil)
		c2 := Classify(e2, "i", nil)
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
