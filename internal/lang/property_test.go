package lang

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/projection"
)

// randExpr builds a random expression over the loop variable "i" and
// literals, with bounded depth.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &VarRef{Name: "i"}
		}
		return &IntLit{Val: int64(rng.Intn(9) + 1)}
	}
	ops := []string{"+", "-", "*", "%", "/"}
	return &BinOp{
		Op: ops[rng.Intn(len(ops))],
		L:  randExpr(rng, depth-1),
		R:  randExpr(rng, depth-1),
	}
}

// TestClassificationSemanticsProperty: whatever class the optimizer assigns
// to a random expression, the class's closed form must agree with direct
// evaluation at every point — i.e. the static analysis never mis-models an
// expression (Unknown/opaque is always allowed; a wrong affine form never).
func TestClassificationSemanticsProperty(t *testing.T) {
	f := func(seed int64, probe uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 3)
		cls := Classify(e, "i", nil)
		i := int64(probe % 50)
		got, err := Eval(e, map[string]int64{"i": i})
		if err != nil {
			// Division/modulo by a zero subexpression: Classify must not
			// have claimed an analyzable form whose evaluation faults with
			// a *constant* divisor (it only accepts positive constant
			// divisors), so any fault implies a non-constant divisor,
			// which classifies opaque.
			return cls.Kind == projection.KindOpaque
		}
		switch cls.Kind {
		case projection.KindConstant:
			return got == cls.B
		case projection.KindIdentity:
			return got == i
		case projection.KindAffine:
			return got == cls.A*i+cls.B
		case projection.KindModular:
			v := (cls.A*i + cls.B) % cls.Mod
			if v < 0 {
				v += cls.Mod
			}
			return got == v
		default:
			return true // opaque makes no claim
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFunctorMatchesEvalProperty: the projection functor constructed from a
// classified expression computes the same values as the expression itself.
func TestFunctorMatchesEvalProperty(t *testing.T) {
	f := func(seed int64, probe uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 3)
		cls := Classify(e, "i", nil)
		fn := cls.Functor(e, "i", map[string]int64{})
		i := int64(probe % 40)
		want, err := Eval(e, map[string]int64{"i": i})
		got := fn.Project(domain.Pt1(i)).X()
		if err != nil {
			// The opaque closure maps evaluation faults to a sentinel
			// far outside any color space.
			return got < -1<<60
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPlanDecisionsSoundProperty: for random single-argument write launches
// over random static domains, a DecideIndexLaunch verdict implies the
// functor really is injective over the domain.
func TestPlanDecisionsSoundProperty(t *testing.T) {
	f := func(seed int64, span uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, 2)
		hi := int64(span%12) + 1
		src := fmt.Sprintf(
			"task f(a) where reads(a), writes(a) do end\nfor i = 0, %d do f(p[%s]) end",
			hi, render(e))
		plan, err := Compile(src)
		if err != nil {
			return true // un-renderable forms are out of scope
		}
		loop, ok := plan.Ops[0].(*OpCandidateLoop)
		if !ok {
			return true
		}
		lp := loop.Launches[0]
		if lp.Decision != DecideIndexLaunch {
			return true // dynamic/rejected verdicts carry their own checks
		}
		// Statically accepted: brute-force injectivity must hold. A
		// faulting evaluation (e.g. modulo by a zero subexpression) maps
		// to the out-of-bounds sentinel and cannot collide, so it is not
		// an injectivity violation.
		seen := map[int64]bool{}
		for i := int64(0); i < hi; i++ {
			v, err := Eval(lp.Stmt.Args[0].Index, map[string]int64{"i": i})
			if err != nil {
				continue
			}
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// render prints an expression back to source form.
func render(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", ex.Val)
	case *VarRef:
		return ex.Name
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", render(ex.L), ex.Op, render(ex.R))
	}
	return "?"
}
