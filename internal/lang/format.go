package lang

import (
	"fmt"
	"strings"

	"indexlaunch/internal/privilege"
)

// FormatExpr renders an expression back to source form, fully
// parenthesized.
func FormatExpr(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", ex.Val)
	case *VarRef:
		return ex.Name
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(ex.L), ex.Op, FormatExpr(ex.R))
	default:
		return "?"
	}
}

// Format renders the program back to source form. The output parses to an
// equivalent program (round-trip tested), making it usable for plan
// inspection and test-case minimization.
func Format(p *Program) string {
	var b strings.Builder
	for _, td := range p.Tasks {
		fmt.Fprintf(&b, "task %s(%s)", td.Name, strings.Join(td.Params, ", "))
		if len(td.Privs) > 0 {
			var privs []string
			for _, pd := range td.Privs {
				privs = append(privs, formatPriv(pd))
			}
			fmt.Fprintf(&b, " where %s", strings.Join(privs, ", "))
		}
		b.WriteString(" do end\n")
	}
	formatStmts(&b, p.Stmts, 0)
	return b.String()
}

func formatPriv(pd PrivDecl) string {
	switch pd.Priv {
	case privilege.Read:
		return fmt.Sprintf("reads(%s)", pd.Param)
	case privilege.Write:
		return fmt.Sprintf("writes(%s)", pd.Param)
	case privilege.Reduce:
		op := "+"
		switch pd.RedOp {
		case privilege.OpProdF64:
			op = "*"
		case privilege.OpMinF64:
			op = "min"
		case privilege.OpMaxF64:
			op = "max"
		}
		return fmt.Sprintf("reduces %s(%s)", op, pd.Param)
	default:
		return fmt.Sprintf("/*%v*/(%s)", pd.Priv, pd.Param)
	}
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, st := range stmts {
		switch s := st.(type) {
		case *VarDecl:
			fmt.Fprintf(b, "%svar %s = %s\n", indent, s.Name, FormatExpr(s.Init))
		case *ForLoop:
			fmt.Fprintf(b, "%sfor %s = %s, %s do\n", indent, s.Var, FormatExpr(s.Lo), FormatExpr(s.Hi))
			formatStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%send\n", indent)
		case *LaunchStmt:
			var args []string
			for _, a := range s.Args {
				args = append(args, fmt.Sprintf("%s[%s]", a.Partition, FormatExpr(a.Index)))
			}
			fmt.Fprintf(b, "%s%s(%s)\n", indent, s.Task, strings.Join(args, ", "))
		}
	}
}
