package lang

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/safety"
)

// Binding connects a compiled plan to concrete runtime objects: tasks by
// name and partitions by name.
type Binding struct {
	RT    *rt.Runtime
	Tasks map[string]core.TaskID
	Parts map[string]*region.Partition
	// Fields optionally restricts the fields each named partition's
	// launches access; defaults to every field of the partition's tree.
	Fields map[string][]region.FieldID
	// Checks configures the dynamic safety checks (the production-mode
	// switch of §4: disabling them removes the O(|D|) cost without
	// affecting a valid program's results).
	Checks safety.Options
}

// ExecStats counts what the interpreter actually did — which path of the
// generated branch each loop took.
type ExecStats struct {
	IndexLaunches   int64 // loops executed as index launches
	DynamicBranches int64 // dynamic checks evaluated
	TaskLoops       int64 // loops executed as individual launches
	SingleTasks     int64 // tasks issued individually (incl. task loops)
	CheckEvals      int64 // projection-functor evaluations in checks
}

// Exec runs the plan against the binding, waits for completion, and
// returns execution statistics. Errors returned by task bodies are
// surfaced after the fence.
func Exec(p *Plan, b *Binding) (ExecStats, error) {
	in := &interp{plan: p, b: b, env: map[string]int64{}}
	if err := in.ops(p.Ops); err != nil {
		return in.stats, err
	}
	b.RT.Fence()
	for _, wait := range in.waits {
		if err := wait(); err != nil {
			return in.stats, err
		}
	}
	return in.stats, nil
}

type interp struct {
	plan  *Plan
	b     *Binding
	env   map[string]int64
	stats ExecStats
	waits []func() error
}

func (in *interp) ops(ops []PlanOp) error {
	for _, op := range ops {
		switch o := op.(type) {
		case *OpVar:
			v, err := Eval(o.Decl.Init, in.env)
			if err != nil {
				return err
			}
			in.env[o.Decl.Name] = v
		case *OpSingleLaunch:
			if err := in.single(o.Stmt); err != nil {
				return err
			}
		case *OpControlLoop:
			if err := in.controlLoop(o); err != nil {
				return err
			}
		case *OpCandidateLoop:
			if err := in.candidateLoop(o); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lang: unknown plan op %T", op)
		}
	}
	return nil
}

func (in *interp) controlLoop(o *OpControlLoop) error {
	lo, err := Eval(o.Loop.Lo, in.env)
	if err != nil {
		return err
	}
	hi, err := Eval(o.Loop.Hi, in.env)
	if err != nil {
		return err
	}
	saved, had := in.env[o.Loop.Var]
	for i := lo; i < hi; i++ {
		in.env[o.Loop.Var] = i
		if err := in.ops(o.Body); err != nil {
			return err
		}
	}
	if had {
		in.env[o.Loop.Var] = saved
	} else {
		delete(in.env, o.Loop.Var)
	}
	return nil
}

func (in *interp) candidateLoop(o *OpCandidateLoop) error {
	lo, err := Eval(o.Loop.Lo, in.env)
	if err != nil {
		return err
	}
	hi, err := Eval(o.Loop.Hi, in.env)
	if err != nil {
		return err
	}
	if hi <= lo {
		return nil
	}
	d := domain.Range1(lo, hi-1)

	for _, lp := range o.Launches {
		if err := in.launchPlan(o, lp, d); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) launchPlan(o *OpCandidateLoop, lp *LaunchPlan, d domain.Domain) error {
	task, ok := in.b.Tasks[lp.Stmt.Task]
	if !ok {
		return fmt.Errorf("lang: binding has no task %q", lp.Stmt.Task)
	}

	// Build requirements with concrete functors under the current env.
	reqs := make([]core.Requirement, len(lp.Args))
	for i, ap := range lp.Args {
		part, ok := in.b.Parts[ap.Partition]
		if !ok {
			return fmt.Errorf("lang: binding has no partition %q", ap.Partition)
		}
		reqs[i] = core.Requirement{
			Partition: part,
			Functor:   ap.Class.Functor(lp.Stmt.Args[i].Index, o.Loop.Var, in.env),
			Priv:      ap.Priv,
			RedOp:     ap.RedOp,
			Fields:    in.fieldsFor(ap.Partition, part),
		}
	}

	runAsIndex := false
	switch lp.Decision {
	case DecideTaskLoop:
		// Statically rejected: always the original loop.
	case DecideIndexLaunch:
		// Statically verified up to partition disjointness, which depends
		// on the binding.
		runAsIndex = in.disjointnessHolds(lp, reqs)
	case DecideDynamicBranch:
		// Listing 3: evaluate the dynamic check, then branch.
		in.stats.DynamicBranches++
		launch, err := core.Forall(lp.Stmt.Task, task, d, reqs...)
		if err != nil {
			return err
		}
		res := launch.Verify(in.b.Checks)
		in.stats.CheckEvals += res.DynamicEvaluations
		runAsIndex = res.Safe
	}

	if runAsIndex {
		launch, err := core.Forall(lp.Stmt.Task, task, d, reqs...)
		if err != nil {
			return err
		}
		fm, err := in.b.RT.ExecuteIndex(launch)
		if err != nil {
			return err
		}
		in.waits = append(in.waits, fm.Wait)
		in.stats.IndexLaunches++
		return nil
	}

	// The original task loop: issue point tasks individually in loop
	// order; the runtime's dependence analysis serializes any conflicts.
	in.stats.TaskLoops++
	var iterErr error
	d.Each(func(p domain.Point) bool {
		singles := make([]rt.SingleReq, len(reqs))
		for i, r := range reqs {
			color := r.Functor.Project(p)
			sub, err := r.Partition.Subregion(color)
			if err != nil {
				iterErr = fmt.Errorf("lang: %s at %v: %w", lp.Stmt.Task, p, err)
				return false
			}
			singles[i] = rt.SingleReq{Region: sub, Priv: r.Priv, RedOp: r.RedOp, Fields: r.Fields}
		}
		fut, err := in.b.RT.ExecuteSingle(lp.Stmt.Task, task, singles, nil)
		if err != nil {
			iterErr = err
			return false
		}
		in.waits = append(in.waits, func() error {
			_, err := fut.Get()
			return err
		})
		in.stats.SingleTasks++
		return true
	})
	return iterErr
}

// disjointnessHolds applies the bind-time part of the static verdict: every
// write argument's partition must be disjoint.
func (in *interp) disjointnessHolds(lp *LaunchPlan, reqs []core.Requirement) bool {
	for i, ap := range lp.Args {
		if ap.Priv.IsWrite() && ap.Priv != privilege.Reduce && !reqs[i].Partition.Disjoint() {
			return false
		}
	}
	return true
}

func (in *interp) fieldsFor(name string, part *region.Partition) []region.FieldID {
	if fs, ok := in.b.Fields[name]; ok {
		return fs
	}
	all := part.Parent.Tree.Fields.Fields()
	out := make([]region.FieldID, len(all))
	for i, f := range all {
		out[i] = f.ID
	}
	return out
}

func (in *interp) single(ls *LaunchStmt) error {
	task, ok := in.b.Tasks[ls.Task]
	if !ok {
		return fmt.Errorf("lang: binding has no task %q", ls.Task)
	}
	access := in.plan.Checked.Access[ls.Task]
	singles := make([]rt.SingleReq, len(ls.Args))
	for i, a := range ls.Args {
		part, ok := in.b.Parts[a.Partition]
		if !ok {
			return fmt.Errorf("lang: binding has no partition %q", a.Partition)
		}
		idx, err := Eval(a.Index, in.env)
		if err != nil {
			return err
		}
		sub, err := part.Subregion(domain.Pt1(idx))
		if err != nil {
			return err
		}
		singles[i] = rt.SingleReq{
			Region: sub, Priv: access[i].Priv, RedOp: access[i].RedOp,
			Fields: in.fieldsFor(a.Partition, part),
		}
	}
	fut, err := in.b.RT.ExecuteSingle(ls.Task, task, singles, nil)
	if err != nil {
		return err
	}
	in.waits = append(in.waits, func() error {
		_, err := fut.Get()
		return err
	})
	in.stats.SingleTasks++
	return nil
}
