package lang

import "indexlaunch/internal/privilege"

// Parse lexes and parses src into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF) {
		switch {
		case p.cur().Is("task"):
			td, err := p.taskDecl()
			if err != nil {
				return nil, err
			}
			prog.Tasks = append(prog.Tasks, td)
		default:
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			prog.Stmts = append(prog.Stmts, st)
		}
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token        { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(text string) (Token, error) {
	t := p.cur()
	if !t.Is(text) {
		return t, errf(t.Line, t.Col, "expected %q, found %v", text, t)
	}
	return p.next(), nil
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, found %v", t)
	}
	return p.next(), nil
}

// taskDecl := "task" IDENT "(" params ")" [ "where" privs ] "do" "end"
func (p *parser) taskDecl() (*TaskDecl, error) {
	kw, _ := p.expect("task")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	td := &TaskDecl{Name: name.Text, Line: kw.Line}
	for !p.cur().Is(")") {
		param, err := p.ident()
		if err != nil {
			return nil, err
		}
		td.Params = append(td.Params, param.Text)
		if p.cur().Is(",") {
			p.next()
		}
	}
	p.next() // ")"
	if p.cur().Is("where") {
		p.next()
		for {
			pd, err := p.privDecl()
			if err != nil {
				return nil, err
			}
			td.Privs = append(td.Privs, pd)
			if !p.cur().Is(",") {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect("do"); err != nil {
		return nil, err
	}
	if _, err := p.expect("end"); err != nil {
		return nil, err
	}
	return td, nil
}

// privDecl := ("reads"|"writes"|"reduces" op) "(" IDENT ")"
func (p *parser) privDecl() (PrivDecl, error) {
	t := p.cur()
	var pd PrivDecl
	switch {
	case t.Is("reads"):
		pd.Priv = privilege.Read
		p.next()
	case t.Is("writes"):
		pd.Priv = privilege.Write
		p.next()
	case t.Is("reduces"):
		p.next()
		op := p.next()
		switch op.Text {
		case "+":
			pd.RedOp = privilege.OpSumF64
		case "*":
			pd.RedOp = privilege.OpProdF64
		case "min":
			pd.RedOp = privilege.OpMinF64
		case "max":
			pd.RedOp = privilege.OpMaxF64
		default:
			return pd, errf(op.Line, op.Col, "unknown reduction operator %v", op)
		}
		pd.Priv = privilege.Reduce
	default:
		return pd, errf(t.Line, t.Col, "expected privilege, found %v", t)
	}
	if _, err := p.expect("("); err != nil {
		return pd, err
	}
	param, err := p.ident()
	if err != nil {
		return pd, err
	}
	pd.Param = param.Text
	_, err = p.expect(")")
	return pd, err
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Is("var"):
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Init: init, Line: t.Line}, nil
	case t.Is("for"):
		return p.forLoop()
	case t.Kind == TokIdent:
		return p.launch()
	default:
		return nil, errf(t.Line, t.Col, "expected statement, found %v", t)
	}
}

// forLoop := "for" IDENT "=" expr "," expr "do" { stmt } "end"
func (p *parser) forLoop() (*ForLoop, error) {
	kw, _ := p.expect("for")
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(","); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("do"); err != nil {
		return nil, err
	}
	loop := &ForLoop{Var: v.Text, Lo: lo, Hi: hi, Line: kw.Line}
	for !p.cur().Is("end") {
		if p.at(TokEOF) {
			return nil, errf(kw.Line, kw.Col, "unterminated for loop")
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		loop.Body = append(loop.Body, st)
	}
	p.next() // "end"
	return loop, nil
}

// launch := IDENT "(" arg { "," arg } ")" ; arg := IDENT "[" expr "]"
func (p *parser) launch() (*LaunchStmt, error) {
	name, _ := p.ident()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	ls := &LaunchStmt{Task: name.Text, Line: name.Line}
	for !p.cur().Is(")") {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("["); err != nil {
			return nil, err
		}
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		ls.Args = append(ls.Args, ArgExpr{Partition: part.Text, Index: idx})
		if p.cur().Is(",") {
			p.next()
		}
	}
	p.next() // ")"
	return ls, nil
}

// expr := term { ("+"|"-") term } ; term := unary { ("*"|"/"|"%") unary }
func (p *parser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.cur().Is("+") || p.cur().Is("-") {
		op := p.next().Text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) term() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().Is("*") || p.cur().Is("/") || p.cur().Is("%") {
		op := p.next().Text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Is("-"):
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "-", L: &IntLit{Val: 0}, R: e}, nil
	case t.Kind == TokInt:
		p.next()
		return &IntLit{Val: t.Int}, nil
	case t.Kind == TokIdent:
		p.next()
		return &VarRef{Name: t.Text, Line: t.Line, Col: t.Col}, nil
	case t.Is("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errf(t.Line, t.Col, "expected expression, found %v", t)
	}
}
