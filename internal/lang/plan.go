package lang

import (
	"fmt"
	"strings"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
)

// Decision is the optimizer's verdict for one loop launch.
type Decision uint8

// Loop launch decisions.
const (
	// DecideIndexLaunch: statically proven safe; execute as an index
	// launch unconditionally (subject to the partition-disjointness check
	// at binding time).
	DecideIndexLaunch Decision = iota
	// DecideDynamicBranch: emit the Listing-3 dynamic check and branch
	// between the index launch and the fallback task loop at run time.
	DecideDynamicBranch
	// DecideTaskLoop: statically proven unsafe; always run the loop of
	// individual launches.
	DecideTaskLoop
)

// String names the decision as the report prints it.
func (d Decision) String() string {
	switch d {
	case DecideIndexLaunch:
		return "index launch (static)"
	case DecideDynamicBranch:
		return "index launch guarded by dynamic check"
	case DecideTaskLoop:
		return "task loop (statically rejected)"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// Plan is the optimized program.
type Plan struct {
	Checked *Checked
	Ops     []PlanOp
}

// PlanOp is one operation of the plan.
type PlanOp interface{ planOp() }

// OpVar evaluates a variable declaration.
type OpVar struct{ Decl *VarDecl }

// OpSingleLaunch issues one task outside any candidate loop.
type OpSingleLaunch struct{ Stmt *LaunchStmt }

// OpControlLoop is a loop the optimizer left as sequential control flow
// (its body contains nested loops or other non-launch statements).
type OpControlLoop struct {
	Loop *ForLoop
	Body []PlanOp
}

// OpCandidateLoop is a loop whose body is task launches (plus simple
// declarations); each launch carries its own decision.
type OpCandidateLoop struct {
	Loop     *ForLoop
	Decls    []*VarDecl
	Launches []*LaunchPlan
}

func (*OpVar) planOp()           {}
func (*OpSingleLaunch) planOp()  {}
func (*OpControlLoop) planOp()   {}
func (*OpCandidateLoop) planOp() {}

// LaunchPlan is the per-launch analysis result.
type LaunchPlan struct {
	Stmt     *LaunchStmt
	Decision Decision
	Reason   string
	Args     []ArgPlan
}

// ArgPlan is the per-argument analysis result.
type ArgPlan struct {
	Partition string
	Priv      privilege.Privilege
	RedOp     privilege.OpID
	Class     Class
	// Verdict is the static injectivity verdict (meaningful for write
	// privileges).
	Verdict projection.Verdict
	// NeedsDynamic marks arguments the dynamic check must cover.
	NeedsDynamic bool
}

// BuildPlan runs the optimizer of §4 over a checked program: it finds
// candidate loops, classifies every projection expression, applies the
// static self- and cross-checks, and decides per launch between an
// unconditional index launch, a dynamically guarded one, and a task loop.
func BuildPlan(c *Checked) *Plan {
	plan := &Plan{Checked: c}
	consts := map[string]Class{}
	plan.Ops = buildOps(c, c.Program.Stmts, consts, "")
	return plan
}

func buildOps(c *Checked, stmts []Stmt, consts map[string]Class, outerLoopVar string) []PlanOp {
	var ops []PlanOp
	for _, st := range stmts {
		switch s := st.(type) {
		case *VarDecl:
			consts[s.Name] = Classify(s.Init, outerLoopVar, consts)
			ops = append(ops, &OpVar{Decl: s})
		case *LaunchStmt:
			ops = append(ops, &OpSingleLaunch{Stmt: s})
		case *ForLoop:
			ops = append(ops, buildLoop(c, s, consts))
		}
	}
	return ops
}

func buildLoop(c *Checked, loop *ForLoop, consts map[string]Class) PlanOp {
	// Candidate test: body holds only launches and variable declarations
	// ("any loop ... whose body contains a task launch and other simple
	// statements ... is eligible").
	var decls []*VarDecl
	var launches []*LaunchStmt
	candidate := len(loop.Body) > 0
	for _, st := range loop.Body {
		switch s := st.(type) {
		case *VarDecl:
			decls = append(decls, s)
		case *LaunchStmt:
			launches = append(launches, s)
		default:
			candidate = false
		}
	}
	if !candidate || len(launches) == 0 {
		inner := copyClassEnv(consts)
		return &OpControlLoop{Loop: loop, Body: buildOps(c, loop.Body, inner, loop.Var)}
	}

	// Classification environment: outer constants plus body declarations
	// (classified as functions of the loop variable).
	env := copyClassEnv(consts)
	for _, d := range decls {
		env[d.Name] = Classify(d.Init, loop.Var, env)
	}

	// Static loop bounds let the static checks reason over the exact
	// domain; dynamic bounds force Unknown verdicts onto the dynamic path.
	staticDomain, haveDomain := staticLoopDomain(loop, consts)

	op := &OpCandidateLoop{Loop: loop, Decls: decls}
	for _, ls := range launches {
		op.Launches = append(op.Launches, analyzeLaunch(c, loop, ls, env, staticDomain, haveDomain))
	}
	return op
}

func staticLoopDomain(loop *ForLoop, consts map[string]Class) (domain.Domain, bool) {
	lo := Classify(loop.Lo, "", consts)
	hi := Classify(loop.Hi, "", consts)
	if lo.Kind != projection.KindConstant || hi.Kind != projection.KindConstant {
		return domain.Domain{}, false
	}
	return domain.Range1(lo.B, hi.B-1), true
}

func analyzeLaunch(c *Checked, loop *ForLoop, ls *LaunchStmt, env map[string]Class,
	d domain.Domain, haveDomain bool) *LaunchPlan {

	lp := &LaunchPlan{Stmt: ls}
	access := c.Access[ls.Task]
	reject := ""
	needDynamic := false

	for i, arg := range ls.Args {
		ap := ArgPlan{
			Partition: arg.Partition,
			Priv:      access[i].Priv,
			RedOp:     access[i].RedOp,
			Class:     Classify(arg.Index, loop.Var, env),
			Verdict:   projection.Unknown,
		}
		if ap.Priv.IsWrite() && ap.Priv != privilege.Reduce {
			// Self-check: writes need an injective functor over the
			// domain (partition disjointness is verified at bind time).
			if haveDomain {
				f := ap.Class.Functor(arg.Index, loop.Var, nil)
				ap.Verdict = projection.StaticInjective(f, d)
			}
			switch ap.Verdict {
			case projection.NotInjective:
				reject = fmt.Sprintf("argument %d (%s[%s]) is statically non-injective",
					i, arg.Partition, ap.Class)
			case projection.Unknown:
				ap.NeedsDynamic = true
				needDynamic = true
			}
		}
		lp.Args = append(lp.Args, ap)
	}

	// Cross-check: arguments sharing a partition with at least one write
	// need the image-disjointness check unless the images are statically
	// identical reads or the pair is all-read.
	byPart := map[string][]int{}
	for i, ap := range lp.Args {
		byPart[ap.Partition] = append(byPart[ap.Partition], i)
	}
	for _, idxs := range byPart {
		if len(idxs) < 2 {
			continue
		}
		hasWrite := false
		for _, i := range idxs {
			if lp.Args[i].Priv.IsWrite() {
				hasWrite = true
			}
		}
		if !hasWrite {
			continue
		}
		if allSameOpReductions(lp.Args, idxs) {
			continue
		}
		if ok, why := staticImagesDisjoint(lp.Args, idxs); ok {
			continue
		} else if why != "" {
			reject = why
			continue
		}
		for _, i := range idxs {
			lp.Args[i].NeedsDynamic = true
		}
		needDynamic = true
	}

	switch {
	case reject != "":
		lp.Decision = DecideTaskLoop
		lp.Reason = reject
	case needDynamic:
		lp.Decision = DecideDynamicBranch
		lp.Reason = "static analysis incomplete; emitting Listing-3 dynamic check"
	default:
		lp.Decision = DecideIndexLaunch
		lp.Reason = "all arguments statically verified"
	}
	return lp
}

func allSameOpReductions(args []ArgPlan, idxs []int) bool {
	var op privilege.OpID
	for k, i := range idxs {
		if args[i].Priv != privilege.Reduce {
			return false
		}
		if k == 0 {
			op = args[i].RedOp
		} else if args[i].RedOp != op {
			return false
		}
	}
	return true
}

// staticImagesDisjoint proves image disjointness for pairs of affine
// classes with equal strides and distinct offsets mod stride — e.g.
// p[2i] vs p[2i+1]. It returns (false, reason) to reject statically
// identical write images, and (false, "") when the question must go to the
// dynamic check.
func staticImagesDisjoint(args []ArgPlan, idxs []int) (bool, string) {
	for a := 0; a < len(idxs); a++ {
		for b := a + 1; b < len(idxs); b++ {
			ai, bi := args[idxs[a]], args[idxs[b]]
			if !ai.Priv.IsWrite() && !bi.Priv.IsWrite() {
				continue
			}
			ca, cb := ai.Class, bi.Class
			if !affineLike(ca) || !affineLike(cb) {
				return false, ""
			}
			if ca.A == cb.A && ca.B == cb.B {
				return false, fmt.Sprintf("arguments select identical sub-collections of %q", ai.Partition)
			}
			if ca.A != cb.A || ca.A == 0 {
				return false, "" // differing strides: dynamic check decides
			}
			if mod(ca.B-cb.B, abs64(ca.A)) == 0 {
				// Same residue class with the same stride: images collide.
				return false, fmt.Sprintf("argument images on %q statically overlap", ai.Partition)
			}
		}
	}
	return true, ""
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func copyClassEnv(env map[string]Class) map[string]Class {
	out := make(map[string]Class, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Report renders a human-readable summary of every loop decision, in the
// spirit of a compiler's optimization remarks.
func (p *Plan) Report() string {
	var b strings.Builder
	var walk func(ops []PlanOp, depth int)
	walk = func(ops []PlanOp, depth int) {
		indent := strings.Repeat("  ", depth)
		for _, op := range ops {
			switch o := op.(type) {
			case *OpCandidateLoop:
				fmt.Fprintf(&b, "%sloop at line %d over %s:\n", indent, o.Loop.Line, o.Loop.Var)
				for _, lp := range o.Launches {
					fmt.Fprintf(&b, "%s  %s: %s — %s\n", indent, lp.Stmt.Task, lp.Decision, lp.Reason)
					for i, ap := range lp.Args {
						dyn := ""
						if ap.NeedsDynamic {
							dyn = " [dynamic check]"
						}
						fmt.Fprintf(&b, "%s    arg %d: %s[%s] %s%s\n",
							indent, i, ap.Partition, ap.Class, ap.Priv, dyn)
					}
				}
			case *OpControlLoop:
				fmt.Fprintf(&b, "%sloop at line %d over %s: control flow\n", indent, o.Loop.Line, o.Loop.Var)
				walk(o.Body, depth+1)
			case *OpSingleLaunch:
				fmt.Fprintf(&b, "%ssingle launch of %s at line %d\n", indent, o.Stmt.Task, o.Stmt.Line)
			}
		}
	}
	walk(p.Ops, 0)
	return b.String()
}

// Compile parses, checks and optimizes src in one step.
func Compile(src string) (*Plan, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := Check(prog)
	if err != nil {
		return nil, err
	}
	return BuildPlan(checked), nil
}
