package lang

import (
	"fmt"

	"indexlaunch/internal/privilege"
)

// ParamAccess is the merged declared access of one task parameter.
type ParamAccess struct {
	Priv  privilege.Privilege
	RedOp privilege.OpID
}

// Checked is a semantically validated program with resolved task
// signatures.
type Checked struct {
	Program *Program
	// Access[task][param index] is the merged privilege of each parameter.
	Access map[string][]ParamAccess
}

// Check validates the program: unique task names, privileges referencing
// declared parameters, launches of declared tasks with matching arity, and
// variables declared before use.
func Check(prog *Program) (*Checked, error) {
	c := &Checked{Program: prog, Access: map[string][]ParamAccess{}}
	for _, td := range prog.Tasks {
		if _, dup := c.Access[td.Name]; dup {
			return nil, errf(td.Line, 1, "task %q redeclared", td.Name)
		}
		seen := map[string]int{}
		for i, p := range td.Params {
			if _, dup := seen[p]; dup {
				return nil, errf(td.Line, 1, "task %q has duplicate parameter %q", td.Name, p)
			}
			seen[p] = i
		}
		access := make([]ParamAccess, len(td.Params))
		for _, pd := range td.Privs {
			i, ok := seen[pd.Param]
			if !ok {
				return nil, errf(td.Line, 1, "task %q declares privilege on unknown parameter %q", td.Name, pd.Param)
			}
			access[i] = mergeAccess(access[i], pd)
		}
		for i, a := range access {
			if a.Priv == privilege.None {
				return nil, errf(td.Line, 1, "task %q parameter %q has no declared privilege", td.Name, td.Params[i])
			}
		}
		c.Access[td.Name] = access
	}

	scope := map[string]bool{}
	if err := checkStmts(c, prog.Stmts, scope); err != nil {
		return nil, err
	}
	return c, nil
}

func mergeAccess(a ParamAccess, pd PrivDecl) ParamAccess {
	switch {
	case pd.Priv == privilege.Reduce:
		a.Priv = privilege.Reduce
		a.RedOp = pd.RedOp
	case a.Priv == privilege.Read && pd.Priv == privilege.Write,
		a.Priv == privilege.Write && pd.Priv == privilege.Read:
		a.Priv = privilege.ReadWrite
	case a.Priv == privilege.None:
		a.Priv = pd.Priv
	case a.Priv == pd.Priv:
		// duplicate clause, keep
	default:
		a.Priv = privilege.ReadWrite
	}
	return a
}

func checkStmts(c *Checked, stmts []Stmt, scope map[string]bool) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case *VarDecl:
			if err := checkExpr(s.Init, scope); err != nil {
				return err
			}
			scope[s.Name] = true
		case *ForLoop:
			if err := checkExpr(s.Lo, scope); err != nil {
				return err
			}
			if err := checkExpr(s.Hi, scope); err != nil {
				return err
			}
			inner := copyScope(scope)
			inner[s.Var] = true
			if err := checkStmts(c, s.Body, inner); err != nil {
				return err
			}
		case *LaunchStmt:
			access, ok := c.Access[s.Task]
			if !ok {
				return errf(s.Line, 1, "launch of undeclared task %q", s.Task)
			}
			if len(s.Args) != len(access) {
				return errf(s.Line, 1, "task %q expects %d arguments, launch passes %d",
					s.Task, len(access), len(s.Args))
			}
			for _, a := range s.Args {
				if err := checkExpr(a.Index, scope); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("lang: unknown statement %T", st)
		}
	}
	return nil
}

func checkExpr(e Expr, scope map[string]bool) error {
	switch ex := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		if !scope[ex.Name] {
			return errf(ex.Line, ex.Col, "undefined variable %q", ex.Name)
		}
		return nil
	case *BinOp:
		if err := checkExpr(ex.L, scope); err != nil {
			return err
		}
		return checkExpr(ex.R, scope)
	}
	return fmt.Errorf("lang: unknown expression %T", e)
}

func copyScope(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	return out
}
