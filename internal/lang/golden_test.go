package lang

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden report files")

// TestGoldenReports compiles each testdata program and compares the
// optimizer report against its checked-in golden file. Regenerate with
//
//	go test ./internal/lang -run TestGolden -update-golden
func TestGoldenReports(t *testing.T) {
	srcs, err := filepath.Glob("testdata/*.rg")
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, src := range srcs {
		src := src
		t.Run(filepath.Base(src), func(t *testing.T) {
			data, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Compile(string(data))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			report := plan.Report()
			golden := strings.TrimSuffix(src, ".rg") + ".report"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(report), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if report != string(want) {
				t.Errorf("report drifted from golden file %s:\n--- got ---\n%s--- want ---\n%s",
					golden, report, want)
			}
		})
	}
}
