package lang

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/safety"
)

// interpSetup builds a runtime, two 30-element collections partitioned into
// 3 and 21-element/21-block collections, and an increment task that adds 1
// to every element of each region argument it may write.
func interpSetup(t *testing.T) (*Binding, *region.Tree, *region.Tree) {
	t.Helper()
	r := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	fs := func() *region.FieldSpace {
		return region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	}
	ptree := region.MustNewTree("p", domain.Range1(0, 29), fs())
	qtree := region.MustNewTree("q", domain.Range1(0, 20), fs())
	pp, err := ptree.PartitionEqual(ptree.Root(), "p", 10)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := qtree.PartitionEqual(qtree.Root(), "q", 21)
	if err != nil {
		t.Fatal(err)
	}

	inc := r.MustRegisterTask("inc", func(ctx *rt.Context) ([]byte, error) {
		for i := 0; i < ctx.NumRegions(); i++ {
			pr, _ := ctx.Region(i)
			if !pr.Priv.IsWrite() {
				continue
			}
			acc, err := ctx.WriteF64(i, 0)
			if err != nil {
				return nil, err
			}
			// Read-write arguments increment; write-only arguments (which
			// may not read) mark with 1.
			rdr, rdErr := ctx.ReadF64(i, 0)
			pr.Region.Domain.Each(func(pt domain.Point) bool {
				if rdErr == nil {
					acc.Set(pt, rdr.Get(pt)+1)
				} else {
					acc.Set(pt, 1)
				}
				return true
			})
		}
		return nil, nil
	})

	b := &Binding{
		RT:    r,
		Tasks: map[string]core.TaskID{"foo": inc, "bar": inc, "f": inc},
		Parts: map[string]*region.Partition{"p": pp, "q": qp},
	}
	return b, ptree, qtree
}

func TestExecListing1(t *testing.T) {
	b, ptree, qtree := interpSetup(t)
	plan, err := Compile(listing1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	// Loop 1 runs statically as an index launch; loop 2 passes its dynamic
	// check ((2i+1)%21 is injective over [0,10)) and also runs compactly.
	if stats.IndexLaunches != 2 {
		t.Errorf("index launches = %d, want 2", stats.IndexLaunches)
	}
	if stats.DynamicBranches != 1 {
		t.Errorf("dynamic branches = %d, want 1", stats.DynamicBranches)
	}
	if stats.TaskLoops != 0 {
		t.Errorf("task loops = %d, want 0", stats.TaskLoops)
	}
	if stats.CheckEvals == 0 {
		t.Error("dynamic check should have evaluated the functor")
	}
	// Every element of p touched exactly once.
	sum, _ := region.SumF64(ptree.Root(), 0)
	if sum != 30 {
		t.Errorf("sum(p) = %v, want 30", sum)
	}
	// bar touched 10 of q's 21 blocks, 1 element each.
	qsum, _ := region.SumF64(qtree.Root(), 0)
	if qsum != 10 {
		t.Errorf("sum(q) = %v, want 10", qsum)
	}
}

func TestExecListing2FallsBackToTaskLoop(t *testing.T) {
	b, _, qtree := interpSetup(t)
	src := `
task foo(c1, c2) where reads(c1), writes(c2) do end
for i = 0, 5 do
  foo(p[i], q[i % 3])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TaskLoops != 1 || stats.IndexLaunches != 0 {
		t.Errorf("taskLoops=%d indexLaunches=%d, want 1/0", stats.TaskLoops, stats.IndexLaunches)
	}
	if stats.SingleTasks != 5 {
		t.Errorf("single tasks = %d, want 5", stats.SingleTasks)
	}
	// foo's second argument is write-only, so blocks 0..2 are marked 1.
	acc := region.MustFieldF64(qtree.Root(), 0)
	for i := int64(0); i < 3; i++ {
		if got := acc.Get(domain.Pt1(i)); got != 1 {
			t.Errorf("q[%d] = %v, want 1", i, got)
		}
	}
}

func TestExecDynamicCheckCatchesUnsafeAtRuntime(t *testing.T) {
	// (2*i) % 10 over [0,10): within one period, so the static modular
	// analysis says Unknown — but the dynamic check finds the collision
	// (i=0 and i=5 both map to 0). The compiled branch must take the
	// task-loop path and the result must still be correct.
	b, _, qtree := interpSetup(t)
	src := `
task bar(r) where reads(r), writes(r) do end
for i = 0, 10 do
  bar(q[(2*i) % 10])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DynamicBranches != 1 || stats.TaskLoops != 1 || stats.IndexLaunches != 0 {
		t.Errorf("branches=%d taskLoops=%d indexLaunches=%d, want 1/1/0",
			stats.DynamicBranches, stats.TaskLoops, stats.IndexLaunches)
	}
	// Even blocks 0,2,4,6,8 are each hit twice.
	acc := region.MustFieldF64(qtree.Root(), 0)
	for i := int64(0); i < 10; i += 2 {
		if got := acc.Get(domain.Pt1(i)); got != 2 {
			t.Errorf("q[%d] = %v, want 2", i, got)
		}
	}
}

func TestExecChecksDisabledSkipsVerification(t *testing.T) {
	b, ptree, _ := interpSetup(t)
	b.Checks = safety.Options{DisableDynamic: true}
	src := `
task f(r) where reads(r), writes(r) do end
for i = 0, 10 do
  f(p[(3*i+2) % 10])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	// With checks disabled the branch trusts the launch (it is in fact
	// valid: stride 3 and modulus 10 are coprime).
	if stats.IndexLaunches != 1 || stats.CheckEvals != 0 {
		t.Errorf("indexLaunches=%d checkEvals=%d, want 1/0", stats.IndexLaunches, stats.CheckEvals)
	}
	sum, _ := region.SumF64(ptree.Root(), 0)
	if sum != 30 {
		t.Errorf("sum = %v, want 30", sum)
	}
}

func TestExecControlLoopIterates(t *testing.T) {
	b, ptree, _ := interpSetup(t)
	src := `
task f(r) where reads(r), writes(r) do end
var steps = 3
for t = 0, steps do
  for i = 0, 10 do
    f(p[i])
  end
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLaunches != 3 {
		t.Errorf("index launches = %d, want 3", stats.IndexLaunches)
	}
	sum, _ := region.SumF64(ptree.Root(), 0)
	if sum != 90 {
		t.Errorf("sum = %v, want 90", sum)
	}
}

func TestExecSingleLaunchOutsideLoop(t *testing.T) {
	b, ptree, _ := interpSetup(t)
	src := `
task f(r) where reads(r), writes(r) do end
f(p[4])`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SingleTasks != 1 {
		t.Errorf("single tasks = %d", stats.SingleTasks)
	}
	sum, _ := region.SumF64(ptree.Root(), 0)
	if sum != 3 { // block 4 holds elements 12..14
		t.Errorf("sum = %v, want 3", sum)
	}
}

func TestExecMultiLaunchLoopBody(t *testing.T) {
	// A candidate loop with two launch statements becomes two index
	// launches over the same domain, issued in order.
	b, ptree, qtree := interpSetup(t)
	src := `
task f(r) where reads(r), writes(r) do end
for i = 0, 10 do
  f(p[i])
  f(q[2*i])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	loop, ok := plan.Ops[0].(*OpCandidateLoop)
	if !ok || len(loop.Launches) != 2 {
		t.Fatalf("candidate loop with %d launches", len(loop.Launches))
	}
	stats, err := Exec(plan, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLaunches != 2 {
		t.Errorf("index launches = %d, want 2", stats.IndexLaunches)
	}
	psum, _ := region.SumF64(ptree.Root(), 0)
	if psum != 30 {
		t.Errorf("sum(p) = %v, want 30", psum)
	}
	// q's even blocks 0..18 each bumped once (1 element per block).
	qsum, _ := region.SumF64(qtree.Root(), 0)
	if qsum != 10 {
		t.Errorf("sum(q) = %v, want 10", qsum)
	}
}

func TestExecBodyVarDeclInLoop(t *testing.T) {
	// A var declaration inside a candidate loop participates in functor
	// classification: j = i + 3 keeps the launch affine and static.
	b, ptree, _ := interpSetup(t)
	src := `
task f(r) where reads(r), writes(r) do end
for i = 0, 7 do
  var j = i + 3
  f(p[j])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := plan.Ops[0].(*OpCandidateLoop)
	if d := loop.Launches[0].Decision; d != DecideIndexLaunch {
		t.Errorf("decision = %v (%s), want static", d, loop.Launches[0].Reason)
	}
	if _, err := Exec(plan, b); err != nil {
		t.Fatal(err)
	}
	// Blocks 3..9 bumped once: 7 blocks × 3 elements.
	sum, _ := region.SumF64(ptree.Root(), 0)
	if sum != 21 {
		t.Errorf("sum = %v, want 21", sum)
	}
}

func TestExecMissingBindings(t *testing.T) {
	b, _, _ := interpSetup(t)
	plan, err := Compile("task g(r) where reads(r) do end\nfor i = 0, 3 do g(p[i]) end")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(plan, b); err == nil {
		t.Error("unbound task should error")
	}
	plan2, err := Compile("task f(r) where reads(r) do end\nfor i = 0, 3 do f(z[i]) end")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(plan2, b); err == nil {
		t.Error("unbound partition should error")
	}
}
