// Package lang implements a small Regent-like language and the hybrid
// index-launch optimizer of paper §4. Programs declare tasks with
// privileges and launch them from loops:
//
//	task foo(r, s) where reads(r), writes(s) do end
//
//	for i = 0, N do
//	  foo(p[i], q[(i+2) % N])
//	end
//
// The compiler front-end (lexer, parser, semantic checks) builds an AST;
// the optimizer detects loops eligible to become index launches, classifies
// each argument's projection expression (constant / identity / affine /
// modular / opaque), statically proves or refutes safety where it can, and
// emits a plan in which unresolved launches are guarded by the generated
// dynamic check and a fallback task loop — the program transformation of
// Listing 3. The interpreter executes plans against real runtime bindings.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokKeyword
	TokSymbol
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Is reports whether the token is the given keyword or symbol.
func (t Token) Is(text string) bool {
	return (t.Kind == TokKeyword || t.Kind == TokSymbol) && t.Text == text
}

var keywords = map[string]bool{
	"task": true, "where": true, "do": true, "end": true,
	"for": true, "var": true,
	"reads": true, "writes": true, "reduces": true,
}

// Error is a positioned front-end diagnostic.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
