package lang

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/projection"
)

// Class is the optimizer's classification of a projection expression over
// one loop variable — the static-analysis lattice of paper §4 ("constant
// (not injective), identity (injective), or the slightly more general
// affine case"), extended with the modular shapes the dynamic check handles.
type Class struct {
	Kind projection.Kind
	// Affine data: value = A·i + B.
	A, B int64
	// Modular data: value = (A·i + B) mod Mod.
	Mod int64
}

func (c Class) String() string {
	switch c.Kind {
	case projection.KindConstant:
		return fmt.Sprintf("constant %d", c.B)
	case projection.KindIdentity:
		return "identity"
	case projection.KindAffine:
		return fmt.Sprintf("affine %d*i%+d", c.A, c.B)
	case projection.KindModular:
		return fmt.Sprintf("modular (%d*i%+d) mod %d", c.A, c.B, c.Mod)
	default:
		return "opaque"
	}
}

// Classify analyzes e as a function of loopVar, with env supplying the
// classes of other names in scope (declared constants classify as
// KindConstant). Unanalyzable shapes are KindOpaque.
func Classify(e Expr, loopVar string, env map[string]Class) Class {
	opaque := Class{Kind: projection.KindOpaque}
	switch ex := e.(type) {
	case *IntLit:
		return Class{Kind: projection.KindConstant, B: ex.Val}
	case *VarRef:
		if ex.Name == loopVar {
			return Class{Kind: projection.KindIdentity, A: 1}
		}
		if c, ok := env[ex.Name]; ok {
			return c
		}
		return opaque
	case *BinOp:
		l := Classify(ex.L, loopVar, env)
		r := Classify(ex.R, loopVar, env)
		if !affineLike(l) || !affineLike(r) {
			return opaque
		}
		switch ex.Op {
		case "+":
			return canon(Class{Kind: projection.KindAffine, A: l.A + r.A, B: l.B + r.B})
		case "-":
			return canon(Class{Kind: projection.KindAffine, A: l.A - r.A, B: l.B - r.B})
		case "*":
			switch {
			case l.Kind == projection.KindConstant:
				return canon(Class{Kind: projection.KindAffine, A: l.B * r.A, B: l.B * r.B})
			case r.Kind == projection.KindConstant:
				return canon(Class{Kind: projection.KindAffine, A: r.B * l.A, B: r.B * l.B})
			default:
				return opaque // i*i is quadratic
			}
		case "%":
			if r.Kind == projection.KindConstant && r.B > 0 {
				if l.Kind == projection.KindConstant {
					return Class{Kind: projection.KindConstant, B: mod(l.B, r.B)}
				}
				return Class{Kind: projection.KindModular, A: l.A, B: l.B, Mod: r.B}
			}
			return opaque
		case "/":
			if l.Kind == projection.KindConstant && r.Kind == projection.KindConstant && r.B != 0 {
				return Class{Kind: projection.KindConstant, B: l.B / r.B}
			}
			return opaque // integer division is not affine
		}
	}
	return opaque
}

// affineLike reports whether c can participate in affine arithmetic.
func affineLike(c Class) bool {
	switch c.Kind {
	case projection.KindConstant, projection.KindIdentity, projection.KindAffine:
		return true
	}
	return false
}

// canon normalizes degenerate affine forms to constant/identity.
func canon(c Class) Class {
	if c.Kind == projection.KindAffine {
		if c.A == 0 {
			return Class{Kind: projection.KindConstant, B: c.B}
		}
		if c.A == 1 && c.B == 0 {
			return Class{Kind: projection.KindIdentity, A: 1}
		}
	}
	return c
}

func mod(a, m int64) int64 {
	v := a % m
	if v < 0 {
		v += m
	}
	return v
}

// Functor converts the classified expression to a projection functor. For
// opaque classes, the raw expression is wrapped as a dynamic closure
// evaluating under env (loop variable bound per point).
func (c Class) Functor(e Expr, loopVar string, env map[string]int64) projection.Functor {
	switch c.Kind {
	case projection.KindConstant:
		return projection.Constant(domain.Pt1(c.B))
	case projection.KindIdentity:
		return projection.Identity(1)
	case projection.KindAffine:
		return projection.Affine1D(c.A, c.B)
	case projection.KindModular:
		return projection.Modular1D(c.A, c.B, c.Mod)
	default:
		captured := make(map[string]int64, len(env))
		for k, v := range env {
			captured[k] = v
		}
		return projection.Func("expr", 1, 1, func(p domain.Point) domain.Point {
			captured[loopVar] = p.X()
			v, err := Eval(e, captured)
			if err != nil {
				// Projection functors are total; arithmetic faults map to
				// an out-of-bounds color, which the dynamic check and the
				// launch expansion both reject.
				return domain.Pt1(-1 << 62)
			}
			return domain.Pt1(v)
		})
	}
}

// Eval evaluates e under the variable bindings in env.
func Eval(e Expr, env map[string]int64) (int64, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ex.Val, nil
	case *VarRef:
		v, ok := env[ex.Name]
		if !ok {
			return 0, errf(ex.Line, ex.Col, "undefined variable %q", ex.Name)
		}
		return v, nil
	case *BinOp:
		l, err := Eval(ex.L, env)
		if err != nil {
			return 0, err
		}
		r, err := Eval(ex.R, env)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("lang: division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("lang: modulo by zero")
			}
			return mod(l, r), nil
		}
	}
	return 0, fmt.Errorf("lang: cannot evaluate expression")
}
