package lang

import (
	"strings"
	"testing"

	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("for i = 0, 10 do foo(p[i %3]) end -- comment\nvar x = 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"for", "i", "=", "0", ",", "10", "do", "foo", "(", "p", "[", "i", "%", "3", "]", ")", "end", "var", "x", "=", "2"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("tok %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("foo & bar"); err == nil {
		t.Error("bad character should error")
	}
	if _, err := Lex("99999999999999999999999"); err == nil {
		t.Error("overflow should error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

const listing1 = `
task foo(r) where reads(r), writes(r) do end
task bar(q) where reads(q), writes(q) do end

var N = 10
for i = 0, N do -- parallel
  foo(p[i])
end

for i = 0, N do -- parallel
  bar(q[(2*i+1) % 21])
end
`

const listing2 = `
task foo(c1, c2) where reads(c1), writes(c2) do end

for i = 0, 5 do
  foo(p[i], q[i % 3])
end
`

func TestParseListing1(t *testing.T) {
	prog, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Tasks) != 2 || len(prog.Stmts) != 3 {
		t.Fatalf("tasks=%d stmts=%d", len(prog.Tasks), len(prog.Stmts))
	}
	loop, ok := prog.Stmts[1].(*ForLoop)
	if !ok || loop.Var != "i" {
		t.Fatalf("stmt 1 = %T", prog.Stmts[1])
	}
	if len(loop.Body) != 1 {
		t.Fatalf("loop body = %d stmts", len(loop.Body))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"task do end",
		"for i = 0 do end",
		"for i = 0, 5 do foo(p[i])",
		"foo(p[)",
		"task f(r) where reads(r do end",
		"task f(r) where reduces ?(r) do end",
		"var = 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse of %q should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared task":    "for i = 0, 5 do foo(p[i]) end",
		"arity":              "task f(a, b) where reads(a), reads(b) do end\nf(p[0])",
		"unknown param priv": "task f(a) where reads(b) do end",
		"no privilege":       "task f(a) do end",
		"redeclared":         "task f(a) where reads(a) do end\ntask f(a) where reads(a) do end",
		"dup param":          "task f(a, a) where reads(a) do end",
		"undefined var":      "task f(a) where reads(a) do end\nf(p[x])",
	}
	for name, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", name, err)
			continue
		}
		if _, err := Check(prog); err == nil {
			t.Errorf("%s: check should fail", name)
		}
	}
}

func TestCheckMergesPrivileges(t *testing.T) {
	prog, err := Parse("task f(a, b, c) where reads(a), writes(a), reads(b), reduces +(c) do end")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	acc := c.Access["f"]
	if acc[0].Priv != privilege.ReadWrite {
		t.Errorf("a: %v", acc[0].Priv)
	}
	if acc[1].Priv != privilege.Read {
		t.Errorf("b: %v", acc[1].Priv)
	}
	if acc[2].Priv != privilege.Reduce || acc[2].RedOp != privilege.OpSumF64 {
		t.Errorf("c: %v/%v", acc[2].Priv, acc[2].RedOp)
	}
}

func TestClassify(t *testing.T) {
	parse := func(src string) Expr {
		prog, err := Parse("task f(a) where writes(a) do end\nfor i = 0, 5 do f(p[" + src + "]) end")
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		loop := prog.Stmts[0].(*ForLoop)
		return loop.Body[0].(*LaunchStmt).Args[0].Index
	}
	env := map[string]Class{"N": {Kind: projection.KindConstant, B: 7}}
	cases := []struct {
		src     string
		kind    projection.Kind
		a, b, m int64
	}{
		{"i", projection.KindIdentity, 1, 0, 0},
		{"3", projection.KindConstant, 0, 3, 0},
		{"N", projection.KindConstant, 0, 7, 0},
		{"2*i+1", projection.KindAffine, 2, 1, 0},
		{"i+i", projection.KindAffine, 2, 0, 0},
		{"i-i", projection.KindConstant, 0, 0, 0},
		{"(i+2) % 5", projection.KindModular, 1, 2, 5},
		{"i % N", projection.KindModular, 1, 0, 7},
		{"i*i", projection.KindOpaque, 0, 0, 0},
		{"i/2", projection.KindOpaque, 0, 0, 0},
		{"17 % 5", projection.KindConstant, 0, 2, 0},
		{"-i+4", projection.KindAffine, -1, 4, 0},
	}
	for _, c := range cases {
		got := Classify(parse(c.src), "i", env)
		if got.Kind != c.kind {
			t.Errorf("%q: kind = %v, want %v", c.src, got.Kind, c.kind)
			continue
		}
		switch c.kind {
		case projection.KindAffine:
			if got.A != c.a || got.B != c.b {
				t.Errorf("%q: affine %d*i%+d, want %d*i%+d", c.src, got.A, got.B, c.a, c.b)
			}
		case projection.KindConstant:
			if got.B != c.b {
				t.Errorf("%q: constant %d, want %d", c.src, got.B, c.b)
			}
		case projection.KindModular:
			if got.A != c.a || got.B != c.b || got.Mod != c.m {
				t.Errorf("%q: modular (%d,%d,%d), want (%d,%d,%d)", c.src, got.A, got.B, got.Mod, c.a, c.b, c.m)
			}
		}
	}
}

func TestEval(t *testing.T) {
	prog, _ := Parse("task f(a) where writes(a) do end\nfor i = 0, 5 do f(p[(2*i+3) % 4]) end")
	e := prog.Stmts[0].(*ForLoop).Body[0].(*LaunchStmt).Args[0].Index
	v, err := Eval(e, map[string]int64{"i": 5})
	if err != nil || v != 1 {
		t.Errorf("eval = %d, %v (want 1)", v, err)
	}
	if _, err := Eval(e, map[string]int64{}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestPlanListing1Decisions(t *testing.T) {
	plan, err := Compile(listing1)
	if err != nil {
		t.Fatal(err)
	}
	var loops []*OpCandidateLoop
	for _, op := range plan.Ops {
		if l, ok := op.(*OpCandidateLoop); ok {
			loops = append(loops, l)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("candidate loops = %d, want 2", len(loops))
	}
	// foo(p[i]): identity over disjoint partition — static index launch.
	if d := loops[0].Launches[0].Decision; d != DecideIndexLaunch {
		t.Errorf("loop 1 decision = %v, want static index launch", d)
	}
	// bar(q[(2i+1)%21]): modular with stride 2 — dynamic check branch.
	if d := loops[1].Launches[0].Decision; d != DecideDynamicBranch {
		t.Errorf("loop 2 decision = %v, want dynamic branch", d)
	}
}

func TestPlanListing2Rejected(t *testing.T) {
	// The paper's Listing 2 walkthrough: i%3 over [0,5) with writes is
	// statically rejected (modular with |D| > m is a pigeonhole failure).
	plan, err := Compile(listing2)
	if err != nil {
		t.Fatal(err)
	}
	loop := plan.Ops[0].(*OpCandidateLoop)
	lp := loop.Launches[0]
	if lp.Decision != DecideTaskLoop {
		t.Fatalf("decision = %v, want task loop; reason %q", lp.Decision, lp.Reason)
	}
	if !strings.Contains(lp.Reason, "non-injective") {
		t.Errorf("reason = %q", lp.Reason)
	}
}

func TestPlanCrossCheckStaticDisjoint(t *testing.T) {
	// p[2i] write vs p[2i+1] read: same stride, different residue — the
	// static cross-check proves disjoint images, no dynamic check needed.
	src := `
task f(a, b) where writes(a), reads(b) do end
for i = 0, 5 do
  f(p[2*i], p[2*i+1])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Ops[0].(*OpCandidateLoop).Launches[0]
	if lp.Decision != DecideIndexLaunch {
		t.Errorf("decision = %v (%s), want static index launch", lp.Decision, lp.Reason)
	}
}

func TestPlanCrossCheckIdenticalImagesRejected(t *testing.T) {
	src := `
task f(a, b) where writes(a), reads(b) do end
for i = 0, 5 do
  f(p[i], p[i])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Ops[0].(*OpCandidateLoop).Launches[0]
	if lp.Decision != DecideTaskLoop {
		t.Errorf("decision = %v, want task loop", lp.Decision)
	}
}

func TestPlanCrossCheckDynamicFallback(t *testing.T) {
	// Different strides: image disjointness goes to the dynamic check.
	src := `
task f(a, b) where writes(a), reads(b) do end
for i = 0, 4 do
  f(p[2*i], p[3*i+1])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Ops[0].(*OpCandidateLoop).Launches[0]
	if lp.Decision != DecideDynamicBranch {
		t.Errorf("decision = %v, want dynamic branch", lp.Decision)
	}
}

func TestPlanNestedLoopIsControlFlow(t *testing.T) {
	src := `
task f(a) where writes(a) do end
for t = 0, 3 do
  for i = 0, 5 do
    f(p[i])
  end
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := plan.Ops[0].(*OpControlLoop)
	if !ok {
		t.Fatalf("outer = %T, want control loop", plan.Ops[0])
	}
	inner, ok := outer.Body[0].(*OpCandidateLoop)
	if !ok {
		t.Fatalf("inner = %T, want candidate loop", outer.Body[0])
	}
	if inner.Launches[0].Decision != DecideIndexLaunch {
		t.Errorf("inner decision = %v", inner.Launches[0].Decision)
	}
}

func TestPlanDynamicBoundsForceDynamicCheck(t *testing.T) {
	// Loop bound depends on an outer loop variable: the domain is not
	// static, so write-functor verdicts are Unknown.
	src := `
task f(a) where writes(a) do end
for t = 1, 4 do
  for i = 0, t do
    f(p[2*i])
  end
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := plan.Ops[0].(*OpControlLoop)
	inner := outer.Body[0].(*OpCandidateLoop)
	if d := inner.Launches[0].Decision; d != DecideDynamicBranch {
		t.Errorf("decision = %v, want dynamic branch", d)
	}
}

func TestPlanReducesPassSelfCheck(t *testing.T) {
	src := `
task f(a) where reduces +(a) do end
for i = 0, 10 do
  f(p[i % 3])
end`
	plan, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Ops[0].(*OpCandidateLoop).Launches[0]
	if lp.Decision != DecideIndexLaunch {
		t.Errorf("decision = %v (%s), want static (reductions commute)", lp.Decision, lp.Reason)
	}
}

func TestReportMentionsDecisions(t *testing.T) {
	plan, err := Compile(listing1)
	if err != nil {
		t.Fatal(err)
	}
	rep := plan.Report()
	if !strings.Contains(rep, "index launch (static)") {
		t.Errorf("report missing static decision:\n%s", rep)
	}
	if !strings.Contains(rep, "dynamic check") {
		t.Errorf("report missing dynamic decision:\n%s", rep)
	}
}
