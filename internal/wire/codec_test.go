package wire

import (
	"bufio"
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
)

// sampleFrames returns one representative frame per kind, plus edge shapes
// (empty body, empty tag, long route, traced and untraced).
func sampleFrames() []*Frame {
	return []*Frame{
		{Kind: KindHello, Src: 1, Dst: 0, Gen: 7, Body: encodeAddrTable(map[int]string{0: "127.0.0.1:9000", 2: "127.0.0.1:9002"})},
		{Kind: KindWelcome, Src: 0, Dst: 1, Gen: 7},
		{Kind: KindData, Src: 0, Dst: 1, Seq: 42, Gen: 3, Key: 5,
			TC:    obs.TraceRef{Trace: 0xdead, Span: 0xbeef, Parent: 0xcafe},
			Route: []int{1, 3, 7}, Tag: "resync", Body: []byte("payload bytes")},
		{Kind: KindAck, Src: 1, Dst: 0, Seq: 42, Gen: 3},
		{Kind: KindPing, Src: 0, Dst: 2, Seq: 9},
		{Kind: KindPong, Src: 2, Dst: 0, Seq: 9},
		{Kind: KindExec, Src: 0, Dst: 2, Seq: 1, Gen: 1, Key: 4, Route: []int{2},
			Tag: "sched_spin", Body: []byte{1, 2, 3, 4}},
		{Kind: KindResult, Src: 2, Dst: 0, Seq: 0, Gen: 1, Key: 4, Route: []int{0},
			Tag: "sched_spin", Body: bytes.Repeat([]byte{0xAB}, 1024)},
		{Kind: KindData, Src: 3, Dst: 4, Flags: 0xF00D}, // everything empty
	}
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	for _, f := range sampleFrames() {
		buf := EncodeFrame(f)
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", f.Kind, n, len(buf))
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", f.Kind, got, f)
		}
	}
}

func TestCodecDecodeConsumesOneFrameFromConcatenation(t *testing.T) {
	frames := sampleFrames()
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
		buf = buf[n:]
	}
}

// Every single-byte corruption must surface as an error (almost always the
// CRC), never as a silently wrong frame or a panic.
func TestCodecDetectsEveryFlippedBit(t *testing.T) {
	f := sampleFrames()[2] // the data frame exercises every field
	clean := EncodeFrame(f)
	want, _, _ := DecodeFrame(clean)
	for i := range clean {
		corrupt := append([]byte(nil), clean...)
		corrupt[i] ^= 0x40
		got, _, err := DecodeFrame(corrupt)
		if err == nil && reflect.DeepEqual(got, want) {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

// Every truncation of a valid frame must yield ErrShort (more bytes needed)
// or a hard error — never a panic, never a frame.
func TestCodecTornFrames(t *testing.T) {
	clean := EncodeFrame(sampleFrames()[2])
	for n := 0; n < len(clean); n++ {
		got, _, err := DecodeFrame(clean[:n])
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded to %+v", n, got)
		}
	}
	// The canonical torn read: a prefix must report ErrShort so a stream
	// reader knows to wait for more bytes rather than reset the conn.
	if _, _, err := DecodeFrame(clean[:len(clean)/2]); !errors.Is(err, ErrShort) {
		t.Fatalf("half frame: got %v, want ErrShort", err)
	}
}

func TestCodecRejectsOversizeAndAbsurdLengths(t *testing.T) {
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01} // uvarint ~2^63
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("2^63 length: got %v, want ErrTooLarge", err)
	}
	if _, _, err := DecodeFrame([]byte{3, 0, 0, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("length 3: got %v, want ErrCorrupt", err)
	}
	// A frame whose route length claims more entries than bytes remain must
	// be caught by bounds checks, not by a giant allocation.
	f := &Frame{Kind: KindData, Route: []int{1}}
	enc := EncodeFrame(f)
	if _, _, err := DecodeFrame(enc); err != nil {
		t.Fatalf("baseline: %v", err)
	}
}

func TestCodecRejectsWrongVersionAndKind(t *testing.T) {
	mangle := func(mutate func(framed []byte)) error {
		f := &Frame{Kind: KindPing, Src: 1, Dst: 2, Seq: 3}
		enc := EncodeFrame(f)
		// Layout: uvarint len || framed || crc. Re-frame with a mutated
		// header and a recomputed CRC so only the semantic check can fire.
		_, n, err := DecodeFrame(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("baseline: %v", err)
		}
		var lenN int
		for lenN = 0; enc[lenN]&0x80 != 0; lenN++ {
		}
		lenN++
		framed := append([]byte(nil), enc[lenN:len(enc)-4]...)
		mutate(framed)
		out := append([]byte(nil), enc[:lenN]...)
		out = append(out, framed...)
		out = append(out, crcOf(framed)...)
		_, _, derr := DecodeFrame(out)
		return derr
	}
	if err := mangle(func(b []byte) { b[0] = Version + 1 }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: got %v, want ErrCorrupt", err)
	}
	if err := mangle(func(b []byte) { b[1] = 0 }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind 0: got %v, want ErrCorrupt", err)
	}
	if err := mangle(func(b []byte) { b[1] = byte(KindResult) + 1 }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind beyond range: got %v, want ErrCorrupt", err)
	}
}

func crcOf(framed []byte) []byte {
	c := crc32.Checksum(framed, castagnoli)
	return []byte{byte(c), byte(c >> 8), byte(c >> 16), byte(c >> 24)}
}

func TestReadFrameStream(t *testing.T) {
	frames := sampleFrames()
	var stream bytes.Buffer
	for _, f := range frames {
		if _, err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&stream)
	for i := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameMidFrameEOF(t *testing.T) {
	enc := EncodeFrame(sampleFrames()[2])
	br := bufio.NewReader(bytes.NewReader(enc[:len(enc)-3]))
	if _, err := ReadFrame(br); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestExecReqRoundTrip(t *testing.T) {
	pt := domain.Pt3(4, -7, 123456789)
	enc := encodeExecReq(99, "stencil", pt, []byte("args"))
	req, task, point, args, err := decodeExecReq(enc)
	if err != nil {
		t.Fatal(err)
	}
	if req != 99 || task != "stencil" || point != pt || string(args) != "args" {
		t.Fatalf("got (%d, %q, %+v, %q)", req, task, point, args)
	}
	res := execResult{val: []byte("result"), ok: true}
	rr, got, err := decodeExecRes(encodeExecRes(99, res))
	if err != nil || rr != 99 || !got.ok || string(got.val) != "result" {
		t.Fatalf("result round trip: %v %d %+v", err, rr, got)
	}
	fail := execResult{err: "task exploded"}
	_, got, err = decodeExecRes(encodeExecRes(7, fail))
	if err != nil || got.ok || got.err != "task exploded" {
		t.Fatalf("error round trip: %v %+v", err, got)
	}
}
