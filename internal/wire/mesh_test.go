package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/xport"
)

// sink collects deliveries for one mesh node.
type sink struct {
	mu   sync.Mutex
	got  []string // "tag:payload" in arrival order
	tags map[string]int
}

func newSink() *sink { return &sink{tags: map[string]int{}} }

func (s *sink) deliver(node int, tag string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, tag+":"+string(payload))
	s.tags[tag]++
}

func (s *sink) count(tag string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tags[tag]
}

// loopbackMesh builds an n-node loopback mesh; returns the meshes and each
// node's sink.
func loopbackMesh(t *testing.T, n int) ([]*Mesh, []*sink) {
	t.Helper()
	hub := NewHub()
	meshes := make([]*Mesh, n)
	sinks := make([]*sink, n)
	for i := 0; i < n; i++ {
		sinks[i] = newSink()
		m, err := NewMesh(MeshConfig{
			Self: i, Nodes: n, Fabric: hub.Fabric(i),
			Deliver: sinks[i].deliver,
			Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
				if task == "boom" {
					return nil, errors.New("task exploded")
				}
				return []byte(fmt.Sprintf("%s@%d", task, point.X())), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		t.Cleanup(func() { _ = m.Close() })
	}
	return meshes, sinks
}

func TestMeshBroadcastDeliversExactlyOnce(t *testing.T) {
	meshes, sinks := loopbackMesh(t, 7)
	items := make([]Item, 0, 6)
	for d := 1; d < 7; d++ {
		items = append(items, Item{Dst: d, Payload: []byte(fmt.Sprintf("p%d", d))})
	}
	meshes[0].Broadcast("launch", items)
	for d := 1; d < 7; d++ {
		if got := sinks[d].count("launch"); got != 1 {
			t.Fatalf("node %d got %d deliveries, want 1", d, got)
		}
		want := fmt.Sprintf("launch:p%d", d)
		if sinks[d].got[0] != want {
			t.Fatalf("node %d got %q, want %q", d, sinks[d].got[0], want)
		}
	}
	if got := sinks[0].count("launch"); got != 0 {
		t.Fatalf("origin received its own broadcast %d times", got)
	}
	st := meshes[0].Stats()
	if st.Sends == 0 {
		t.Fatal("origin recorded no sends")
	}
}

func TestMeshReparentsAroundDeadRelay(t *testing.T) {
	meshes, sinks := loopbackMesh(t, 7)
	// Node 1 relays to 3 and 4 in the full tree; kill it and its subtree
	// must still be reached (via re-parenting onto node 0).
	meshes[0].MarkDead(1)
	items := []Item{{Dst: 3, Payload: []byte("x")}, {Dst: 4, Payload: []byte("y")}}
	meshes[0].Broadcast("reparented", items)
	if sinks[3].count("reparented") != 1 || sinks[4].count("reparented") != 1 {
		t.Fatalf("orphaned subtree missed the broadcast: %v %v", sinks[3].tags, sinks[4].tags)
	}
	if sinks[1].count("reparented") != 0 {
		t.Fatal("dead node received traffic")
	}
	if meshes[0].Stats().Reparents == 0 {
		t.Fatal("no reparents recorded")
	}
	sh := meshes[0].Shape()
	if sh.Live != 6 {
		t.Fatalf("shape reports %d live, want 6", sh.Live)
	}
	meshes[0].MarkAlive(1)
	if meshes[0].Shape().Live != 7 {
		t.Fatal("MarkAlive did not readmit node")
	}
}

func TestMeshDirectBroadcastUnderMassFailure(t *testing.T) {
	meshes, sinks := loopbackMesh(t, 8)
	for _, d := range []int{1, 2, 3, 5, 6, 7} {
		meshes[0].MarkDead(d)
	}
	meshes[0].Broadcast("direct", []Item{{Dst: 4, Payload: []byte("z")}})
	if sinks[4].count("direct") != 1 {
		t.Fatal("survivor missed direct broadcast")
	}
	if meshes[0].Stats().DirectBroadcasts == 0 {
		t.Fatal("direct-send degradation not recorded")
	}
}

func TestMeshProbeAndRTT(t *testing.T) {
	meshes, _ := loopbackMesh(t, 3)
	if !meshes[0].Probe(2, 3) {
		t.Fatal("probe to live peer failed")
	}
	if meshes[0].Probe(0, 1) {
		t.Fatal("self-probe should fail")
	}
	if meshes[0].Probe(99, 1) {
		t.Fatal("out-of-range probe should fail")
	}
}

func TestMeshExec(t *testing.T) {
	meshes, _ := loopbackMesh(t, 3)
	val, err := meshes[0].Exec(2, "square", domain.Pt1(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "square@12" {
		t.Fatalf("got %q", val)
	}
	// A task error is a task error, not unreachability.
	_, err = meshes[0].Exec(1, "boom", domain.Pt1(0), nil)
	if err == nil || errors.Is(err, ErrUnreachable) {
		t.Fatalf("task failure reported as %v", err)
	}
	// Out-of-range destinations are unreachable.
	if _, err := meshes[0].Exec(99, "square", domain.Pt1(0), nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestMeshExecConcurrent(t *testing.T) {
	meshes, _ := loopbackMesh(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := 1 + i%3
			val, err := meshes[0].Exec(dst, "t", domain.Pt1(int64(i)), nil)
			if err != nil {
				errs <- err
				return
			}
			if want := fmt.Sprintf("t@%d", i); string(val) != want {
				errs <- fmt.Errorf("got %q want %q", val, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMeshRecycleResetsSequences(t *testing.T) {
	meshes, sinks := loopbackMesh(t, 2)
	meshes[0].Broadcast("a", []Item{{Dst: 1, Payload: []byte("1")}})
	meshes[0].Broadcast("a", []Item{{Dst: 1, Payload: []byte("2")}})
	// Recycle on the sender only: the receiver learns the new generation
	// from the next frame and resets its dedup state, so the repeated
	// sequence numbers are NOT treated as duplicates.
	meshes[0].Recycle()
	meshes[0].Broadcast("b", []Item{{Dst: 1, Payload: []byte("3")}})
	meshes[0].Broadcast("b", []Item{{Dst: 1, Payload: []byte("4")}})
	if got := sinks[1].count("a") + sinks[1].count("b"); got != 4 {
		t.Fatalf("got %d deliveries across recycle, want 4", got)
	}
}

func TestMeshStaleGenerationIsDuplicate(t *testing.T) {
	meshes, sinks := loopbackMesh(t, 2)
	meshes[0].Broadcast("fresh", []Item{{Dst: 1, Payload: []byte("x")}})
	// Hand-deliver a frame from an older generation: it must be swallowed.
	stale := &Frame{Kind: KindData, Src: 0, Dst: 1, Seq: 99, Gen: 0, Route: []int{1}, Tag: "stale", Body: []byte("y")}
	meshes[1].handleFrame(stale)
	if sinks[1].count("stale") != 0 {
		t.Fatal("stale-generation frame was delivered")
	}
	if meshes[1].Stats().Dedups == 0 {
		t.Fatal("stale frame not counted as dedup")
	}
}

func TestMeshRetransmitsUntilAcked(t *testing.T) {
	// A fabric that drops the first transmission of every data frame: the
	// ack-timeout ladder must retransmit and the broadcast still complete.
	hub := NewHub()
	drop := &firstDropFabric{inner: hub.Fabric(0)}
	s1 := newSink()
	m0, err := NewMesh(MeshConfig{Self: 0, Nodes: 2, Fabric: drop,
		Retransmit: xport.RetransmitPolicy{Timeout: 2 * time.Millisecond, MaxBackoff: 8 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	m1, err := NewMesh(MeshConfig{Self: 1, Nodes: 2, Fabric: hub.Fabric(1), Deliver: s1.deliver})
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()

	done := make(chan struct{})
	go func() {
		m0.Broadcast("lossy", []Item{{Dst: 1, Payload: []byte("p")}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast never completed over lossy fabric")
	}
	if s1.count("lossy") != 1 {
		t.Fatalf("got %d deliveries, want 1", s1.count("lossy"))
	}
	if m0.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded despite drops")
	}
}

// firstDropFabric swallows the first transmission of every distinct data
// frame (keyed by seq) and forwards everything else.
type firstDropFabric struct {
	inner Fabric
	mu    sync.Mutex
	seen  map[uint64]bool
}

func (f *firstDropFabric) Send(dst int, fr *Frame) error {
	if fr.Kind == KindData {
		f.mu.Lock()
		if f.seen == nil {
			f.seen = map[uint64]bool{}
		}
		first := !f.seen[fr.Seq]
		f.seen[fr.Seq] = true
		f.mu.Unlock()
		if first {
			return nil // dropped on the floor
		}
	}
	return f.inner.Send(dst, fr)
}

func (f *firstDropFabric) SetReceiver(fn func(*Frame)) { f.inner.SetReceiver(fn) }
func (f *firstDropFabric) Peers() []PeerStatus         { return f.inner.Peers() }
func (f *firstDropFabric) Close() error                { return f.inner.Close() }

func TestMeshPeersSorted(t *testing.T) {
	meshes, _ := loopbackMesh(t, 4)
	peers := meshes[2].Peers()
	if len(peers) != 3 {
		t.Fatalf("got %d peers, want 3", len(peers))
	}
	want := []int{0, 1, 3}
	for i, p := range peers {
		if p.Node != want[i] {
			t.Fatalf("peer order %v", peers)
		}
	}
}
