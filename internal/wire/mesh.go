package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/xport"
)

// Mesh is the out-of-process implementation of the delivery contract
// xport.Transport provides in-process. Broadcasts from node 0 route
// through the identical binary broadcast tree (xport.PlanRoutes — the same
// re-parenting and direct-send degradation decisions), every hop is
// covered by ack/timeout retransmission on the shared RetransmitPolicy
// ladder, receivers deduplicate by per-link sequence number, and Broadcast
// returns only when every payload has been delivered exactly once. On top
// of the xport contract the mesh adds what only a real network needs:
// Ping/Pong heartbeats with measured RTT, and Exec/Result remote task
// execution (what cmd/idxnode serves).
//
// One Mesh instance runs in every participating process, all over the same
// Fabric kind: a loopback hub keeps everything deterministic and
// in-process, a TCP fabric crosses machine boundaries. The mesh does not
// care which — loss, duplication and reordering are recovered identically.

// MeshConfig configures a Mesh.
type MeshConfig struct {
	// Self is this process's node id; node 0 is the broadcast origin.
	Self int
	// Nodes is the mesh size (node ids 0..Nodes-1).
	Nodes int
	// Fabric carries encoded frames; required.
	Fabric Fabric
	// Retransmit tunes the per-hop ack-timeout ladder; the zero value uses
	// the xport defaults.
	Retransmit xport.RetransmitPolicy
	// Prof records send/recv/retransmit spans (byte counts ride the tag);
	// nil disables profiling.
	Prof *obs.Recorder
	// Metrics receives the wire_* families; nil keeps them in a private
	// registry so Stats always works.
	Metrics *metrics.Registry
	// Deliver receives each broadcast payload exactly once at its
	// destination node. May be called from fabric goroutines.
	Deliver func(node int, tag string, payload []byte)
	// Exec serves inbound remote-execution requests (idxnode's task
	// registry); nil rejects them.
	Exec func(task string, point domain.Point, args []byte) ([]byte, error)
	// ExecTimeout bounds one remote execution round trip; zero defaults
	// to 30s.
	ExecTimeout time.Duration
}

// ErrUnreachable marks a remote execution that failed at the transport
// layer (peer never answered) rather than in the task body — callers fall
// back to local execution on it.
var ErrUnreachable = errors.New("wire: peer unreachable")

type meshLink struct{ src, dst int }

// Mesh implements reliable tree-routed delivery over a Fabric.
type Mesh struct {
	self  int
	nodes int
	fab   Fabric
	rp    xport.RetransmitPolicy
	prof  *obs.Recorder
	mx    *wireMetrics
	reg   *metrics.Registry

	execFn      func(task string, point domain.Point, args []byte) ([]byte, error)
	execTimeout time.Duration

	mu       sync.Mutex
	alive    []bool
	gen      uint64 // delivery generation, bumped by Recycle
	nextSeq  map[meshLink]uint64
	seen     map[meshLink]map[uint64]struct{}
	seenGen  map[meshLink]uint64 // generation the link's seen-set belongs to
	inflight map[meshLink]map[uint64]struct{}
	ackWait  map[meshLink]map[uint64]chan struct{}

	pingSeq  uint64
	pingWait map[uint64]chan struct{}

	execSeq  uint64
	execWait map[uint64]chan execResult

	deliver func(node int, tag string, payload []byte)

	closed chan struct{}
}

type execResult struct {
	val []byte
	err string
	ok  bool
}

// NewMesh creates a mesh node over the given fabric and installs its frame
// receiver.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("wire: mesh requires >= 1 node, got %d", cfg.Nodes)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("wire: mesh self %d out of range [0, %d)", cfg.Self, cfg.Nodes)
	}
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("wire: MeshConfig.Fabric is required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &Mesh{
		self:        cfg.Self,
		nodes:       cfg.Nodes,
		fab:         cfg.Fabric,
		rp:          cfg.Retransmit,
		prof:        cfg.Prof,
		mx:          newWireMetrics(reg),
		reg:         reg,
		execFn:      cfg.Exec,
		execTimeout: cfg.ExecTimeout,
		alive:       make([]bool, cfg.Nodes),
		gen:         1,
		nextSeq:     map[meshLink]uint64{},
		seen:        map[meshLink]map[uint64]struct{}{},
		seenGen:     map[meshLink]uint64{},
		inflight:    map[meshLink]map[uint64]struct{}{},
		ackWait:     map[meshLink]map[uint64]chan struct{}{},
		pingWait:    map[uint64]chan struct{}{},
		execWait:    map[uint64]chan execResult{},
		deliver:     cfg.Deliver,
		closed:      make(chan struct{}),
	}
	if m.execTimeout <= 0 {
		m.execTimeout = 30 * time.Second
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	if a, ok := cfg.Fabric.(interface{ attach(*wireMetrics) }); ok {
		a.attach(m.mx)
	}
	cfg.Fabric.SetReceiver(m.handleFrame)
	return m, nil
}

// Nodes returns the mesh size.
func (m *Mesh) Nodes() int { return m.nodes }

// Self returns this process's node id.
func (m *Mesh) Self() int { return m.self }

// Metrics returns the registry the mesh records the wire_* families into.
func (m *Mesh) Metrics() *metrics.Registry { return m.reg }

// Peers returns the fabric's peer table for /statusz.
func (m *Mesh) Peers() []PeerStatus { return m.fab.Peers() }

// MarkDead removes a node from routing (same contract as
// xport.Transport.MarkDead: the caller serializes against Broadcast).
func (m *Mesh) MarkDead(node int) {
	if node < 0 || node >= m.nodes {
		return
	}
	m.mu.Lock()
	m.alive[node] = false
	m.mu.Unlock()
}

// MarkAlive readmits a node to routing.
func (m *Mesh) MarkAlive(node int) {
	if node < 0 || node >= m.nodes {
		return
	}
	m.mu.Lock()
	m.alive[node] = true
	m.mu.Unlock()
}

// Shape reports the broadcast tree's current shape — the same computation
// xport.Transport.Shape performs on its liveness snapshot.
func (m *Mesh) Shape() xport.TreeShape {
	m.mu.Lock()
	alive := make([]bool, len(m.alive))
	copy(alive, m.alive)
	m.mu.Unlock()
	return xport.ShapeOf(alive)
}

// Stats snapshots the mesh delivery counters in xport's Stats shape, so
// cluster and in-process callers read the same structure.
func (m *Mesh) Stats() xport.Stats {
	return xport.Stats{
		Sends:            m.mx.sends.Value(),
		Retransmits:      m.mx.retransmits.Value(),
		Dedups:           m.mx.dedups.Value(),
		Reparents:        m.mx.reparents.Value(),
		DirectBroadcasts: m.mx.directs.Value(),
	}
}

// Recycle clears the per-session delivery state by bumping the delivery
// generation: receivers reset a link's dedup set when they see a frame
// from a newer generation, so sequence numbers restart cleanly between
// scheduler jobs without a cross-process round trip. The caller must be
// quiescent (no Broadcast or Probe in flight), as with xport.
func (m *Mesh) Recycle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	m.nextSeq = map[meshLink]uint64{}
	m.seen = map[meshLink]map[uint64]struct{}{}
	m.seenGen = map[meshLink]uint64{}
	m.inflight = map[meshLink]map[uint64]struct{}{}
	m.ackWait = map[meshLink]map[uint64]chan struct{}{}
}

// Close tears the mesh (and its fabric) down.
func (m *Mesh) Close() error {
	select {
	case <-m.closed:
	default:
		close(m.closed)
	}
	return m.fab.Close()
}

// Broadcast ships every item from node 0 through the broadcast tree and
// blocks until each payload has been delivered (and acked) exactly once.
// Same contract as xport.Transport.Broadcast: destinations must be live,
// non-zero nodes; only node 0 broadcasts.
func (m *Mesh) Broadcast(tag string, items []Item) {
	m.BroadcastTraced(obs.TraceRef{}, tag, items)
}

// BroadcastTraced is Broadcast with a span context riding the frame
// headers; every hop records a send span whose tag carries the frame's
// payload byte count.
func (m *Mesh) BroadcastTraced(tc obs.TraceRef, tag string, items []Item) {
	if len(items) == 0 {
		return
	}
	m.mu.Lock()
	alive := make([]bool, len(m.alive))
	copy(alive, m.alive)
	gen := m.gen
	m.mu.Unlock()

	dsts := make([]int, len(items))
	for i, it := range items {
		dsts[i] = it.Dst
	}
	plan := xport.PlanRoutes(alive, dsts)
	m.mx.reparents.Add(int64(plan.Reparents))
	if plan.Direct {
		m.mx.directs.Inc()
	}
	depth := 0
	for _, route := range plan.Routes {
		if len(route) > depth {
			depth = len(route)
		}
	}
	m.mx.treeDepth.Set(int64(depth))

	var wg sync.WaitGroup
	wg.Add(len(items))
	for i, it := range items {
		f := &Frame{
			Kind: KindData, Gen: gen, Key: uint64(i + 1), TC: tc,
			Route: plan.Routes[it.Dst], Tag: tag, Body: it.Payload,
		}
		go func() {
			defer wg.Done()
			m.sendReliable(f.Route[0], f)
		}()
	}
	wg.Wait()
}

// sendReliable transmits f over the (self, dst) link and blocks until the
// hop is acked, retransmitting on the capped-backoff ladder. Returns false
// if the mesh closed before the ack arrived.
func (m *Mesh) sendReliable(dst int, f *Frame) bool {
	lk := meshLink{src: m.self, dst: dst}
	f.Src, f.Dst = m.self, dst
	m.mu.Lock()
	f.Seq = m.nextSeq[lk]
	m.nextSeq[lk] = f.Seq + 1
	ack := make(chan struct{})
	aw := m.ackWait[lk]
	if aw == nil {
		aw = map[uint64]chan struct{}{}
		m.ackWait[lk] = aw
	}
	aw[f.Seq] = ack
	m.mu.Unlock()

	m.mx.sends.Inc()
	var start int64
	if m.prof != nil {
		start = m.prof.Now()
	}
	htc := f.hopTC()
	nbytes := len(f.Body)
	for attempt := 1; ; attempt++ {
		_ = m.fab.Send(dst, f)
		timer := time.NewTimer(m.rp.WaitFor(attempt))
		select {
		case <-ack:
			timer.Stop()
			m.mx.acks.Inc()
			if m.prof != nil {
				m.prof.SpanTC(htc, lk.src, obs.StageSend, "wire",
					fmt.Sprintf("%s#b=%d", f.Tag, nbytes), domain.Point{}, start, m.prof.Now())
			}
			return true
		case <-m.closed:
			timer.Stop()
			return false
		case <-timer.C:
			m.mx.retransmits.Inc()
			if m.prof != nil {
				m.prof.MarkTC(htc.Child(uint64(1+attempt)), lk.src, obs.StageRetransmit, "wire", f.Tag, domain.Point{}, m.prof.Now())
			}
		}
	}
}

// handleFrame is the fabric's receive callback: the mesh's inbound
// dispatch. Runs on fabric goroutines; must not block on the mesh's own
// reliable sends except via goroutines.
func (m *Mesh) handleFrame(f *Frame) {
	switch f.Kind {
	case KindData:
		m.handleData(f)
	case KindAck:
		m.handleAck(f)
	case KindPing:
		// Echo. Unreliable by design: a lost pong fails that probe attempt,
		// which is the signal the failure detector feeds on.
		_ = m.fab.Send(f.Src, &Frame{Kind: KindPong, Src: m.self, Dst: f.Src, Seq: f.Seq, Gen: f.Gen})
	case KindPong:
		m.mu.Lock()
		ch := m.pingWait[f.Seq]
		delete(m.pingWait, f.Seq)
		m.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	case KindExec:
		m.handleExec(f)
	case KindResult:
		m.handleResult(f)
	}
}

// dedupState classifies an inbound reliable frame against the link's
// delivery history.
type dedupState int

const (
	frameFresh      dedupState = iota // first sighting: process it
	frameDupDone                      // processed before: just re-ack
	frameDupPending                   // original still being processed: stay silent
)

// dedup records (link, gen, seq) and classifies the frame. A frame from a
// newer generation resets the link's seen-set (the sender recycled); an
// older generation's frame is a completed duplicate. A fresh frame is also
// marked in flight until the caller's dedupDone — re-acking a duplicate
// before the original finished would let the upstream sender report
// delivery that hasn't happened yet (the end-to-end guarantee Broadcast
// makes rides on relay acks being deferred until the downstream hop acked).
func (m *Mesh) dedup(f *Frame) dedupState {
	lk := meshLink{src: f.Src, dst: m.self}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f.Gen < m.seenGen[lk] {
		return frameDupDone
	}
	if f.Gen > m.seenGen[lk] {
		m.seenGen[lk] = f.Gen
		m.seen[lk] = map[uint64]struct{}{}
		delete(m.inflight, lk)
	}
	sn := m.seen[lk]
	if sn == nil {
		sn = map[uint64]struct{}{}
		m.seen[lk] = sn
	}
	if _, dup := sn[f.Seq]; dup {
		if fl := m.inflight[lk]; fl != nil {
			if _, pending := fl[f.Seq]; pending {
				return frameDupPending
			}
		}
		return frameDupDone
	}
	sn[f.Seq] = struct{}{}
	fl := m.inflight[lk]
	if fl == nil {
		fl = map[uint64]struct{}{}
		m.inflight[lk] = fl
	}
	fl[f.Seq] = struct{}{}
	return frameFresh
}

// dedupDone clears the frame's in-flight mark: later duplicates re-ack.
func (m *Mesh) dedupDone(f *Frame) {
	lk := meshLink{src: f.Src, dst: m.self}
	m.mu.Lock()
	if fl := m.inflight[lk]; fl != nil {
		delete(fl, f.Seq)
	}
	m.mu.Unlock()
}

// ack acknowledges f's hop on the reverse link.
func (m *Mesh) ack(f *Frame) {
	_ = m.fab.Send(f.Src, &Frame{Kind: KindAck, Src: m.self, Dst: f.Src, Seq: f.Seq, Gen: f.Gen})
}

// handleData delivers or relays one broadcast payload. The inbound hop is
// acked only once the payload has actually landed: immediately for a leaf,
// after the onward hop's ack for a relay. That chains acks leaf-to-root, so
// Broadcast's return means every destination delivered, over sockets
// exactly as in-process.
func (m *Mesh) handleData(f *Frame) {
	switch m.dedup(f) {
	case frameDupPending:
		m.mx.dedups.Inc()
		return // the original's completion will trigger the ack
	case frameDupDone:
		m.mx.dedups.Inc()
		m.ack(f)
		return
	}
	if m.prof != nil {
		m.prof.MarkTC(f.hopTC().Child(1), m.self, obs.StageRecv, "wire",
			fmt.Sprintf("%s#b=%d", f.Tag, len(f.Body)), domain.Point{}, m.prof.Now())
	}
	if len(f.Route) <= 1 {
		if m.deliver != nil {
			m.deliver(m.self, f.Tag, f.Body)
		}
		m.ack(f)
		m.dedupDone(f)
		return
	}
	// Relay on a fresh goroutine (the onward hop blocks on its own ack and
	// must not stall the fabric's read loop); our own sequence on the next
	// link.
	next := &Frame{Kind: KindData, Gen: f.Gen, Key: f.Key, TC: f.TC,
		Route: f.Route[1:], Tag: f.Tag, Body: f.Body}
	go func() {
		if m.sendReliable(next.Route[0], next) {
			m.ack(f)
			m.dedupDone(f)
		}
	}()
}

// handleAck completes the sender's wait for (reverse link, seq).
func (m *Mesh) handleAck(f *Frame) {
	lk := meshLink{src: m.self, dst: f.Src}
	m.mu.Lock()
	var ack chan struct{}
	if aw := m.ackWait[lk]; aw != nil {
		ack = aw[f.Seq]
		delete(aw, f.Seq)
	}
	m.mu.Unlock()
	if ack != nil {
		close(ack)
	}
}

// Probe sends one heartbeat ping to dst and reports whether a pong arrived
// within maxAttempts transmissions (the xport.Transport.Probe contract,
// with real RTT: each success lands in wire_ping_rtt_ns). Probes go direct
// rather than through the tree — on sockets the question is "does the peer
// answer", not "does the route relay".
func (m *Mesh) Probe(dst int, maxAttempts int) bool {
	if dst == m.self || dst < 0 || dst >= m.nodes {
		return false
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	m.mu.Lock()
	seq := m.pingSeq
	m.pingSeq++
	ch := make(chan struct{})
	m.pingWait[seq] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pingWait, seq)
		m.mu.Unlock()
	}()

	start := time.Now()
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		_ = m.fab.Send(dst, &Frame{Kind: KindPing, Src: m.self, Dst: dst, Seq: seq})
		timer := time.NewTimer(m.rp.WaitFor(attempt))
		select {
		case <-ch:
			timer.Stop()
			m.mx.pingRTT.Observe(time.Since(start).Nanoseconds())
			return true
		case <-m.closed:
			timer.Stop()
			return false
		case <-timer.C:
		}
	}
	return false
}

// Exec runs a registered task body on peer dst and returns its result. The
// request travels on the reliable link (acked, deduped, retransmitted);
// the bound on the whole round trip is ExecTimeout, after which Exec
// returns ErrUnreachable and the caller may fall back to local execution.
func (m *Mesh) Exec(dst int, task string, point domain.Point, args []byte) ([]byte, error) {
	if dst == m.self || dst < 0 || dst >= m.nodes {
		return nil, fmt.Errorf("%w: exec dst %d out of range", ErrUnreachable, dst)
	}
	m.mx.execs.Inc()
	m.mu.Lock()
	req := m.execSeq
	m.execSeq++
	ch := make(chan execResult, 1)
	m.execWait[req] = ch
	gen := m.gen
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.execWait, req)
		m.mu.Unlock()
	}()

	f := &Frame{Kind: KindExec, Gen: gen, Key: req, Route: []int{dst},
		Tag: task, Body: encodeExecReq(req, task, point, args)}
	done := make(chan bool, 1)
	go func() { done <- m.sendReliable(dst, f) }()

	timer := time.NewTimer(m.execTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if !res.ok {
			m.mx.execErrs.Inc()
			return nil, fmt.Errorf("wire: remote %s on node %d: %s", task, dst, res.err)
		}
		return res.val, nil
	case <-timer.C:
		m.mx.execErrs.Inc()
		return nil, fmt.Errorf("%w: exec %s on node %d timed out after %v", ErrUnreachable, task, dst, m.execTimeout)
	case <-m.closed:
		m.mx.execErrs.Inc()
		return nil, fmt.Errorf("%w: mesh closed", ErrUnreachable)
	case ok := <-done:
		if !ok {
			m.mx.execErrs.Inc()
			return nil, fmt.Errorf("%w: mesh closed mid-send", ErrUnreachable)
		}
		// Send acked; keep waiting for the result.
		select {
		case res := <-ch:
			if !res.ok {
				m.mx.execErrs.Inc()
				return nil, fmt.Errorf("wire: remote %s on node %d: %s", task, dst, res.err)
			}
			return res.val, nil
		case <-timer.C:
			m.mx.execErrs.Inc()
			return nil, fmt.Errorf("%w: exec %s on node %d timed out after %v", ErrUnreachable, task, dst, m.execTimeout)
		case <-m.closed:
			m.mx.execErrs.Inc()
			return nil, fmt.Errorf("%w: mesh closed", ErrUnreachable)
		}
	}
}

// handleExec serves one inbound execution request: run the registered body
// on a fresh goroutine (bodies may take arbitrarily long; the fabric's
// read loop must not stall) and send the Result back on the reliable link.
// The hop was acked by the Data-layer dedup path, so a retransmitted
// request never runs the body twice.
func (m *Mesh) handleExec(f *Frame) {
	// Exec's hop ack carries no end-to-end meaning (completion is the
	// Result frame), so ack immediately and clear the in-flight mark.
	state := m.dedup(f)
	m.ack(f)
	if state != frameFresh {
		m.mx.dedups.Inc()
		return
	}
	m.dedupDone(f)
	req, task, point, args, err := decodeExecReq(f.Body)
	src := f.Src
	go func() {
		var res execResult
		if err != nil {
			res = execResult{err: "malformed exec request: " + err.Error()}
		} else if m.execFn == nil {
			res = execResult{err: "node serves no tasks"}
		} else if val, execErr := m.execFn(task, point, args); execErr != nil {
			res = execResult{err: execErr.Error()}
		} else {
			res = execResult{val: val, ok: true}
		}
		rf := &Frame{Kind: KindResult, Gen: f.Gen, Key: req, Route: []int{src},
			Tag: task, Body: encodeExecRes(req, res)}
		m.sendReliable(src, rf)
	}()
}

// handleResult completes a pending Exec.
func (m *Mesh) handleResult(f *Frame) {
	state := m.dedup(f)
	m.ack(f)
	if state != frameFresh {
		m.mx.dedups.Inc()
		return
	}
	m.dedupDone(f)
	req, res, err := decodeExecRes(f.Body)
	if err != nil {
		return
	}
	m.mu.Lock()
	ch := m.execWait[req]
	delete(m.execWait, req)
	m.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}

// encodeExecReq serializes one execution request body.
func encodeExecReq(req uint64, task string, point domain.Point, args []byte) []byte {
	buf := binary.AppendUvarint(nil, req)
	buf = binary.AppendUvarint(buf, uint64(len(task)))
	buf = append(buf, task...)
	buf = append(buf, byte(point.Dim))
	for i := 0; i < point.Dim; i++ {
		buf = binary.AppendVarint(buf, point.C[i])
	}
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	return append(buf, args...)
}

// decodeExecReq parses one execution request body.
func decodeExecReq(b []byte) (req uint64, task string, point domain.Point, args []byte, err error) {
	d := decoder{b: b}
	req = d.uvarint()
	task = string(d.bytes())
	dim := int(d.u8())
	if d.err == nil && (dim < 0 || dim > len(point.C)) {
		return 0, "", point, nil, fmt.Errorf("%w: point dim %d", ErrCorrupt, dim)
	}
	if d.err == nil {
		point.Dim = dim
		for i := 0; i < dim; i++ {
			point.C[i] = d.varint()
		}
	}
	args = d.bytes()
	if d.err != nil {
		return 0, "", domain.Point{}, nil, d.err
	}
	return req, task, point, args, nil
}

// encodeExecRes serializes one execution result body.
func encodeExecRes(req uint64, res execResult) []byte {
	buf := binary.AppendUvarint(nil, req)
	if res.ok {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(res.val)))
		return append(buf, res.val...)
	}
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(res.err)))
	return append(buf, res.err...)
}

// decodeExecRes parses one execution result body.
func decodeExecRes(b []byte) (uint64, execResult, error) {
	d := decoder{b: b}
	req := d.uvarint()
	ok := d.u8() == 1
	payload := d.bytes()
	if d.err != nil {
		return 0, execResult{}, d.err
	}
	if ok {
		return req, execResult{val: payload, ok: true}, nil
	}
	return req, execResult{err: string(payload)}, nil
}
