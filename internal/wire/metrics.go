package wire

import (
	"strconv"
	"sync"

	"indexlaunch/internal/metrics"
)

// Wire metrics: the wire_* families. Aggregates mirror the xport_* families
// (sends, retransmits, dedups) so cluster-mode dashboards read the same
// shapes, and each peer gets bytes/msgs/reconnect counters (label
// peer="<node id>") resolved once and cached, keeping the frame path free
// of label formatting. The histograms time the codec and the ping round
// trip — serialization cost and socket RTT, the two numbers the in-process
// transport could never show.

type wireMetrics struct {
	sends, retransmits, acks, dedups *metrics.Counter
	reparents, directs               *metrics.Counter
	execs, execErrs                  *metrics.Counter
	badFrames                        *metrics.Counter
	treeDepth                        *metrics.Gauge

	encodeNS, decodeNS, pingRTT *metrics.Histogram

	peerBytesSent, peerBytesRecv *metrics.CounterVec
	peerMsgsSent, peerMsgsRecv   *metrics.CounterVec
	peerReconnects               *metrics.CounterVec

	mu    sync.Mutex
	peers map[int]*peerCounters
}

// peerCounters are one peer's resolved instruments.
type peerCounters struct {
	bytesSent, bytesRecv, msgsSent, msgsRecv, reconnects *metrics.Counter
}

func newWireMetrics(reg *metrics.Registry) *wireMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &wireMetrics{
		sends:       reg.Counter("wire_sends_total", "hop-level frame first transmissions"),
		retransmits: reg.Counter("wire_retransmits_total", "ack-timeout-driven frame re-sends"),
		acks:        reg.Counter("wire_acks_total", "effective acks received"),
		dedups:      reg.Counter("wire_dedups_total", "received duplicate frames suppressed by sequence numbers"),
		reparents:   reg.Counter("wire_reparents_total", "broadcast-tree orphan adoptions"),
		directs:     reg.Counter("wire_direct_broadcasts_total", "broadcasts that abandoned a degraded tree for direct sends"),
		execs:       reg.Counter("wire_execs_total", "remote task executions requested"),
		execErrs:    reg.Counter("wire_exec_errors_total", "remote executions that failed (transport or task error)"),
		badFrames:   reg.Counter("wire_bad_frames_total", "inbound frames rejected by the codec (corrupt, torn, wrong version)"),
		treeDepth:   reg.Gauge("wire_tree_depth", "fan-out depth (max hops) of the last planned broadcast"),

		encodeNS: reg.Histogram("wire_encode_ns", "frame encode latency"),
		decodeNS: reg.Histogram("wire_decode_ns", "frame decode latency"),
		pingRTT:  reg.Histogram("wire_ping_rtt_ns", "heartbeat ping round-trip time over the fabric"),

		peerBytesSent:  reg.CounterVec("wire_peer_bytes_sent_total", "frame bytes sent per peer", "peer"),
		peerBytesRecv:  reg.CounterVec("wire_peer_bytes_recv_total", "frame bytes received per peer", "peer"),
		peerMsgsSent:   reg.CounterVec("wire_peer_msgs_sent_total", "frames sent per peer", "peer"),
		peerMsgsRecv:   reg.CounterVec("wire_peer_msgs_recv_total", "frames received per peer", "peer"),
		peerReconnects: reg.CounterVec("wire_peer_reconnects_total", "connection (re)establishments per peer", "peer"),

		peers: map[int]*peerCounters{},
	}
}

// peer resolves (and caches) the per-peer counters for node id.
func (m *wireMetrics) peer(id int) *peerCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	pc := m.peers[id]
	if pc == nil {
		label := strconv.Itoa(id)
		pc = &peerCounters{
			bytesSent:  m.peerBytesSent.With(label),
			bytesRecv:  m.peerBytesRecv.With(label),
			msgsSent:   m.peerMsgsSent.With(label),
			msgsRecv:   m.peerMsgsRecv.With(label),
			reconnects: m.peerReconnects.With(label),
		}
		m.peers[id] = pc
	}
	return pc
}
