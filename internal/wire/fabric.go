package wire

// Fabric moves encoded frames between mesh peers. The mesh owns all
// delivery semantics — routing, acks, retransmission, dedup — so a fabric
// only has to make a best effort at getting one frame to one peer: a
// dropped, duplicated or reordered frame is recovered above, exactly as a
// lossy socket would be.
type Fabric interface {
	// Send forwards one frame toward peer dst. It may buffer; an error
	// means the frame was certainly not sent (no connection and no way to
	// make one). Safe for concurrent use.
	Send(dst int, f *Frame) error

	// SetReceiver installs the inbound-frame callback. Must be called
	// exactly once, before the first Send anywhere in the mesh; the
	// callback must not block indefinitely (it may be invoked from the
	// fabric's read loops).
	SetReceiver(fn func(f *Frame))

	// Peers snapshots the fabric's per-peer connection state for the
	// /statusz peer table.
	Peers() []PeerStatus

	// Close tears the fabric down; in-flight sends may be lost.
	Close() error
}

// PeerStatus is one row of the /statusz peer table.
type PeerStatus struct {
	// Node is the peer's mesh node id.
	Node int `json:"node"`
	// Addr is the peer's dial address ("local" on a loopback fabric).
	Addr string `json:"addr"`
	// Connected reports a currently-established connection.
	Connected bool `json:"connected"`
	// Reconnects counts connection establishments (1 = first connect).
	Reconnects int64 `json:"reconnects"`
	// BytesSent/BytesRecv/MsgsSent/MsgsRecv are the peer's lifetime frame
	// traffic counters.
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	MsgsSent  int64 `json:"msgs_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
}
