package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format. One frame on the wire is
//
//	uvarint n        total length of the framed bytes that follow
//	n-4 bytes        header + body (layout below)
//	u32le crc        CRC32C (Castagnoli) of the n-4 framed bytes
//
// and the framed bytes are
//
//	u8       version (Version)
//	u8       kind
//	u16le    flags
//	uvarint  src, dst
//	uvarint  seq, gen, key
//	u64le ×3 trace, span, parent (zero triple = untraced)
//	uvarint  route length, then that many uvarint node ids
//	uvarint  tag length, then the tag bytes
//	uvarint  body length, then the body bytes
//
// The CRC covers everything inside the length prefix, so a flipped bit
// anywhere in the header or body is detected before any field is trusted.
// Every length is validated against the enclosing frame before allocation:
// a torn or hostile prefix yields an error, never a panic or an absurd
// allocation — the property the fuzz harness locks in.

// MaxFrameSize bounds one encoded frame. Slices and exec payloads are
// small; anything larger is a corrupt length prefix.
const MaxFrameSize = 1 << 20

// maxRouteLen bounds a relay route; a broadcast tree over n nodes never
// routes deeper than log2(n), so 64 covers any feasible mesh.
const maxRouteLen = 64

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrCorrupt covers CRC mismatches and malformed fields;
// ErrShort means the buffer ends before the frame does (read more bytes and
// retry); ErrTooLarge rejects length prefixes beyond MaxFrameSize.
var (
	ErrCorrupt  = errors.New("wire: corrupt frame")
	ErrShort    = errors.New("wire: short frame")
	ErrTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
)

// AppendFrame encodes f and appends the framed bytes to buf, returning the
// extended slice. Encode cost is one pass plus the CRC; callers reuse buf
// across frames to stay allocation-light.
func AppendFrame(buf []byte, f *Frame) []byte {
	// Encode header+body into scratch after a reserved region so the
	// varint length prefix can be placed without a second copy... the
	// simple route: encode the framed bytes, then prepend.
	framed := make([]byte, 0, 64+len(f.Tag)+len(f.Body))
	framed = append(framed, Version, byte(f.Kind))
	framed = binary.LittleEndian.AppendUint16(framed, f.Flags)
	framed = binary.AppendUvarint(framed, uint64(f.Src))
	framed = binary.AppendUvarint(framed, uint64(f.Dst))
	framed = binary.AppendUvarint(framed, f.Seq)
	framed = binary.AppendUvarint(framed, f.Gen)
	framed = binary.AppendUvarint(framed, f.Key)
	framed = binary.LittleEndian.AppendUint64(framed, f.TC.Trace)
	framed = binary.LittleEndian.AppendUint64(framed, f.TC.Span)
	framed = binary.LittleEndian.AppendUint64(framed, f.TC.Parent)
	framed = binary.AppendUvarint(framed, uint64(len(f.Route)))
	for _, n := range f.Route {
		framed = binary.AppendUvarint(framed, uint64(n))
	}
	framed = binary.AppendUvarint(framed, uint64(len(f.Tag)))
	framed = append(framed, f.Tag...)
	framed = binary.AppendUvarint(framed, uint64(len(f.Body)))
	framed = append(framed, f.Body...)

	total := uint64(len(framed) + 4)
	buf = binary.AppendUvarint(buf, total)
	buf = append(buf, framed...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(framed, castagnoli))
}

// EncodeFrame encodes f into a fresh buffer.
func EncodeFrame(f *Frame) []byte { return AppendFrame(nil, f) }

// DecodeFrame decodes one frame from the front of buf, returning the frame
// and the number of bytes consumed. ErrShort means buf holds a frame
// prefix; every other error means the stream is unrecoverable at this
// offset.
func DecodeFrame(buf []byte) (*Frame, int, error) {
	total, n := binary.Uvarint(buf)
	if n == 0 {
		return nil, 0, ErrShort
	}
	if n < 0 || total > MaxFrameSize {
		return nil, 0, ErrTooLarge
	}
	if total < 4+2 {
		return nil, 0, fmt.Errorf("%w: impossible length %d", ErrCorrupt, total)
	}
	if uint64(len(buf)-n) < total {
		return nil, 0, ErrShort
	}
	framed := buf[n : n+int(total)-4]
	crc := binary.LittleEndian.Uint32(buf[n+int(total)-4 : n+int(total)])
	if crc32.Checksum(framed, castagnoli) != crc {
		return nil, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	f, err := decodeFramed(framed)
	if err != nil {
		return nil, 0, err
	}
	return f, n + int(total), nil
}

// decodeFramed parses the CRC-verified header+body bytes.
func decodeFramed(b []byte) (*Frame, error) {
	d := decoder{b: b}
	ver := d.u8()
	kind := Kind(d.u8())
	var f Frame
	f.Kind = kind
	f.Flags = d.u16()
	f.Src = d.int()
	f.Dst = d.int()
	f.Seq = d.uvarint()
	f.Gen = d.uvarint()
	f.Key = d.uvarint()
	f.TC.Trace = d.u64()
	f.TC.Span = d.u64()
	f.TC.Parent = d.u64()
	routeLen := d.uvarint()
	if d.err == nil && routeLen > maxRouteLen {
		return nil, fmt.Errorf("%w: route length %d", ErrCorrupt, routeLen)
	}
	if d.err == nil && routeLen > 0 {
		f.Route = make([]int, routeLen)
		for i := range f.Route {
			f.Route[i] = d.int()
		}
	}
	f.Tag = string(d.bytes())
	f.Body = d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, ver, Version)
	}
	if !kind.valid() {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
	return &f, nil
}

// decoder is a bounds-checked cursor over framed bytes: the first failed
// read latches err and every later read returns zero, so field parsing
// reads linearly without per-field error plumbing.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated field", ErrCorrupt)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// varint decodes a zigzag-encoded signed value (point coordinates).
func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// int decodes a uvarint bounded to non-negative int range (node ids).
func (d *decoder) int() int {
	v := d.uvarint()
	if d.err == nil && v > 1<<31 {
		d.fail()
		return 0
	}
	return int(v)
}

// bytes decodes a uvarint-prefixed byte field, validated against the
// remaining buffer before any allocation.
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += int(n)
	return out
}

// ReadFrame reads one frame from a buffered stream. io.EOF at a frame
// boundary is returned as io.EOF; EOF mid-frame is io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader) (*Frame, error) {
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if total > MaxFrameSize {
		return nil, ErrTooLarge
	}
	if total < 4+2 {
		return nil, fmt.Errorf("%w: impossible length %d", ErrCorrupt, total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	framed := buf[:total-4]
	crc := binary.LittleEndian.Uint32(buf[total-4:])
	if crc32.Checksum(framed, castagnoli) != crc {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return decodeFramed(framed)
}

// WriteFrame appends f's encoding to w (typically a bufio.Writer whose
// owner coalesces flushes).
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	return w.Write(EncodeFrame(f))
}
