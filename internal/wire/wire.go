// Package wire takes the index-launch transport out of the process: a
// length-prefixed binary codec plus a peer mesh that moves the same
// broadcast-tree traffic internal/xport models in-process over real
// connections.
//
// The package splits into three layers:
//
//   - codec.go: the frame format — varint length prefix, versioned header
//     (kind, hop endpoints, sequence, delivery generation, span context,
//     remaining relay route), opaque body, CRC32C trailer (the same
//     Castagnoli polynomial internal/wal frames with). Decoding never
//     panics on torn or corrupt input; the fuzz harness enforces that.
//
//   - fabric: how encoded frames reach a peer. The Loopback fabric is a
//     deterministic in-memory hub — frames are encoded, decoded and handed
//     to the destination synchronously in the sender's goroutine, so a
//     loopback mesh is as reproducible as the channel transport and every
//     frame still round-trips the codec. The TCP fabric is the real thing:
//     one listener per process, per-peer dialers with capped-backoff
//     reconnect, a handshake exchanging node ID + serving epoch + the peer
//     address table, and write-coalescing send loops (frames queued while a
//     write was in flight flush in one syscall).
//
//   - mesh.go: Mesh, the delivery contract xport.Transport implements
//     in-process, over a fabric. Broadcasts route through the identical
//     binary tree (xport.PlanRoutes — re-parenting and the direct-send
//     degradation are byte-for-byte the same decisions), every hop is
//     covered by ack/timeout retransmission with the shared
//     RetransmitPolicy ladder, receivers dedup by per-link sequence, and
//     heartbeat probes become real Ping/Pong round trips whose RTT lands in
//     a wire_ping_rtt_ns histogram. Exec/Result frames let node 0 run a
//     registered task body on a remote peer — the primitive cmd/idxnode
//     serves.
//
// Chaos against sockets does not re-enter the mesh: a socket-level Proxy
// (proxy.go) decodes frames off a real TCP stream and applies an
// xport.ChaosPlan's pure per-frame decisions — drop, delay, partition
// windows — so the retransmission and re-parenting machinery is exercised
// by genuine loss between processes.
package wire

import (
	"indexlaunch/internal/obs"
)

// Version is the frame-format version stamped into every header; decoders
// reject frames from a different major format.
const Version = 1

// Kind discriminates the frame types the mesh exchanges.
type Kind uint8

const (
	// KindHello opens a connection: the dialer introduces its node ID,
	// serving epoch and (from node 0) the full peer address table.
	KindHello Kind = 1 + iota
	// KindWelcome answers a Hello with the accepter's ID and epoch.
	KindWelcome
	// KindData carries one broadcast payload hop-by-hop along Route.
	KindData
	// KindAck acknowledges one Data/Exec/Result sequence on the reverse
	// link.
	KindAck
	// KindPing is a heartbeat probe; KindPong echoes its sequence.
	KindPing
	KindPong
	// KindExec asks the destination to run a registered task body;
	// KindResult returns the body's value or error.
	KindExec
	KindResult
)

// String names a kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindWelcome:
		return "welcome"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindExec:
		return "exec"
	case KindResult:
		return "result"
	}
	return "invalid"
}

// valid reports whether k is a defined frame kind.
func (k Kind) valid() bool { return k >= KindHello && k <= KindResult }

// Frame is one decoded wire message. Src and Dst are the endpoints of the
// hop the frame is traversing (not the broadcast origin/final destination —
// those are implied by Route), Seq sequences the (Src, Dst) link, and Gen
// is the sender's delivery generation: Mesh.Recycle bumps it so a receiver
// can discard its per-link dedup state between scheduler jobs without a
// second round trip.
type Frame struct {
	Kind  Kind
	Flags uint16
	Src   int
	Dst   int
	Seq   uint64
	Gen   uint64
	// Key disambiguates the items of one broadcast so every hop of every
	// item derives a distinct span (the same itemKey scheme xport uses).
	Key uint64
	// TC is the broadcast's span context; zero when untraced.
	TC obs.TraceRef
	// Route is the remaining relay chain for Data frames; the last entry
	// is the final destination.
	Route []int
	// Tag labels the launch the payload belongs to.
	Tag string
	// Body is the opaque payload (slice bytes, exec request, ...).
	Body []byte
}

// hopTC derives the span context for this frame's current hop — the same
// pure (header, link) function xport's messages use, so loopback and TCP
// runs of one traced job stamp identical transport spans.
func (f *Frame) hopTC() obs.TraceRef {
	return f.TC.Child(f.Key<<16 | uint64(f.Dst) + 1)
}

// Item is one broadcast payload addressed to a destination node, the
// []byte analog of xport.Item.
type Item struct {
	Dst     int
	Payload []byte
}
