package wire

import (
	"fmt"
	"sort"
	"sync"
)

// Loopback fabric: an in-memory hub connecting the meshes of one process.
// Send encodes the frame, decodes it again and hands it to the destination
// synchronously in the sender's goroutine — no sockets, no timers, no
// reordering — so a loopback mesh is exactly as deterministic as the
// in-process channel transport while still exercising the codec on every
// frame. It is the fabric the seed-matrix tests and the loopback half of
// the loopback-vs-TCP benchmark run on, and the baseline a multi-process
// run's trace is compared against.

// Hub is the shared switchboard of one process's loopback fabrics.
type Hub struct {
	mu    sync.Mutex
	ports map[int]*loopbackFabric
}

// NewHub creates an empty loopback switchboard.
func NewHub() *Hub { return &Hub{ports: map[int]*loopbackFabric{}} }

// Fabric returns the hub port for mesh node self, creating it on first use.
func (h *Hub) Fabric(self int) Fabric {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.ports[self]
	if p == nil {
		p = &loopbackFabric{hub: h, self: self}
		h.ports[self] = p
	}
	return p
}

type loopbackFabric struct {
	hub  *Hub
	self int

	mu     sync.Mutex
	recv   func(*Frame)
	mx     *wireMetrics
	closed bool
}

func (l *loopbackFabric) attach(mx *wireMetrics) {
	l.mu.Lock()
	l.mx = mx
	l.mu.Unlock()
}

func (l *loopbackFabric) SetReceiver(fn func(*Frame)) {
	l.mu.Lock()
	l.recv = fn
	l.mu.Unlock()
}

// Send encodes f, routes it through the hub and delivers it synchronously.
// The encode/decode round trip is not an affectation: it keeps the codec on
// the hot path of every deterministic test, so a frame-format bug cannot
// hide behind in-memory shortcuts.
func (l *loopbackFabric) Send(dst int, f *Frame) error {
	l.mu.Lock()
	mx := l.mx
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return fmt.Errorf("wire: loopback fabric %d closed", l.self)
	}

	buf := EncodeFrame(f)
	df, _, err := DecodeFrame(buf)
	if err != nil {
		return fmt.Errorf("wire: loopback self-decode: %w", err)
	}

	l.hub.mu.Lock()
	peer := l.hub.ports[dst]
	l.hub.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("wire: loopback peer %d not attached", dst)
	}
	peer.mu.Lock()
	recv := peer.recv
	peerClosed := peer.closed
	pmx := peer.mx
	peer.mu.Unlock()
	if peerClosed || recv == nil {
		return fmt.Errorf("wire: loopback peer %d not receiving", dst)
	}

	if mx != nil {
		pc := mx.peer(dst)
		pc.msgsSent.Inc()
		pc.bytesSent.Add(int64(len(buf)))
	}
	if pmx != nil {
		pc := pmx.peer(l.self)
		pc.msgsRecv.Inc()
		pc.bytesRecv.Add(int64(len(buf)))
	}
	recv(df)
	return nil
}

func (l *loopbackFabric) Peers() []PeerStatus {
	l.hub.mu.Lock()
	ids := make([]int, 0, len(l.hub.ports))
	for id := range l.hub.ports {
		if id != l.self {
			ids = append(ids, id)
		}
	}
	l.hub.mu.Unlock()
	sort.Ints(ids)

	l.mu.Lock()
	mx := l.mx
	l.mu.Unlock()
	out := make([]PeerStatus, 0, len(ids))
	for _, id := range ids {
		ps := PeerStatus{Node: id, Addr: "local", Connected: true, Reconnects: 1}
		if mx != nil {
			pc := mx.peer(id)
			ps.BytesSent = pc.bytesSent.Value()
			ps.BytesRecv = pc.bytesRecv.Value()
			ps.MsgsSent = pc.msgsSent.Value()
			ps.MsgsRecv = pc.msgsRecv.Value()
		}
		out = append(out, ps)
	}
	return out
}

func (l *loopbackFabric) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return nil
}
