package wire

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"indexlaunch/internal/xport"
)

// Proxy is the socket-level chaos injector: a TCP forwarder that decodes
// frames off the stream and applies an xport.ChaosPlan's pure per-frame
// decisions to real traffic. Place one in front of an idxnode listener and
// the mesh's retransmission/re-parenting machinery is exercised by genuine
// loss between processes:
//
//	drop      the frame is read and discarded; the sender's ack timeout
//	          fires and the hop retransmits
//	delay     forwarding pauses, preserving order (TCP semantics) but
//	          stretching the hop's latency into retransmission territory
//	partition FrameCut windows on the directed pair's lifetime frame
//	          count, so a partition starves data AND probe traffic between
//	          the pair for a bounded frame window, then heals — exactly
//	          the in-process cut semantics
//
// The proxy cannot see the sender's attempt counter (that is private to
// the mesh), so it feeds the pair's lifetime frame count as the decision's
// attempt salt: every retransmission presents a fresh identity and rolls a
// fresh fate, preserving the eventual-delivery guarantee Drop < 1 promises.
//
// Handshake frames are subject to the plan like everything else — a
// partition window can sever connection establishment itself, which the
// dialer's capped-backoff reconnect absorbs.
type Proxy struct {
	ln      net.Listener
	target  string
	plan    *xport.ChaosPlan
	dropped atomic.Int64

	mu    sync.Mutex
	count map[[2]int]int64
	done  chan struct{}
}

// NewProxy listens on listen and forwards framed traffic to target,
// applying plan to every frame in both directions. A nil plan forwards
// faithfully.
func NewProxy(listen, target string, plan *xport.ChaosPlan) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, plan: plan, count: map[[2]int]int64{}, done: make(chan struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the dialing side should
// be pointed at instead of the real peer.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Dropped returns the number of frames the plan has discarded so far.
func (p *Proxy) Dropped() int64 { return p.dropped.Load() }

// Close stops accepting and severs existing flows.
func (p *Proxy) Close() error {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
	return p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

// serve forwards one client connection through to the target.
func (p *Proxy) serve(client net.Conn) {
	server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		_ = client.Close()
		return
	}
	done := make(chan struct{}, 2)
	go func() { p.pump(server, bufio.NewReader(client)); done <- struct{}{} }()
	go func() { p.pump(client, bufio.NewReader(server)); done <- struct{}{} }()
	select {
	case <-done:
	case <-p.done:
	}
	_ = client.Close()
	_ = server.Close()
}

// pump forwards frames one direction, consulting the plan per frame.
func (p *Proxy) pump(dst io.Writer, src *bufio.Reader) {
	for {
		f, err := ReadFrame(src)
		if err != nil {
			return
		}
		n := p.bump(f.Src, f.Dst)
		attempt := int(n%1021) + 1
		if p.plan.FrameCut(f.Src, f.Dst, n) || p.plan.FrameDrop(f.Src, f.Dst, f.Seq, attempt) {
			p.dropped.Add(1)
			continue
		}
		if d := p.plan.FrameDelay(f.Src, f.Dst, f.Seq, attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-p.done:
				return
			}
		}
		if _, err := dst.Write(EncodeFrame(f)); err != nil {
			return
		}
	}
}

// bump advances the directed pair's lifetime frame counter — the clock
// partition windows run on — and returns its pre-increment value.
func (p *Proxy) bump(src, dst int) int64 {
	k := [2]int{src, dst}
	p.mu.Lock()
	n := p.count[k]
	p.count[k] = n + 1
	p.mu.Unlock()
	return n
}
