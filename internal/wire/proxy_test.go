package wire

import (
	"fmt"
	"testing"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/xport"
)

// proxiedPair builds a 2-node TCP mesh where node 0 reaches node 1 only
// through a chaos proxy running plan.
func proxiedPair(t *testing.T, plan *xport.ChaosPlan) ([]*Mesh, *sink, *Proxy) {
	t.Helper()
	// Short handshake timeout: the plan drops Hello/Welcome frames too, and
	// an abandoned handshake must cost milliseconds, not the 5s default.
	worker, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0",
		DialBackoff: 5 * time.Millisecond, HandshakeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy("127.0.0.1:0", worker.Addr(), plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = proxy.Close() })
	launcher, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: proxy.Addr()}, Epoch: 1,
		DialBackoff: 5 * time.Millisecond, HandshakeTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	rp := xport.RetransmitPolicy{Timeout: 15 * time.Millisecond, MaxBackoff: 120 * time.Millisecond}
	s := newSink()
	m0, err := NewMesh(MeshConfig{Self: 0, Nodes: 2, Fabric: launcher, Retransmit: rp, ExecTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m0.Close() })
	m1, err := NewMesh(MeshConfig{Self: 1, Nodes: 2, Fabric: worker, Retransmit: rp,
		Deliver: s.deliver,
		Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%s@%d", task, point.X())), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m1.Close() })
	return []*Mesh{m0, m1}, s, proxy
}

func TestProxyForwardsFaithfullyWithNilPlan(t *testing.T) {
	meshes, s, proxy := proxiedPair(t, nil)
	done := make(chan struct{})
	go func() {
		meshes[0].Broadcast("clean", []Item{{Dst: 1, Payload: []byte("x")}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("broadcast through idle proxy never completed")
	}
	if s.count("clean") != 1 {
		t.Fatalf("got %d deliveries", s.count("clean"))
	}
	if proxy.Dropped() != 0 {
		t.Fatalf("nil plan dropped %d frames", proxy.Dropped())
	}
}

// The acceptance-criterion scenario: a partition window severs the pair
// mid-run; retransmission rides it out and delivery still completes exactly
// once.
func TestProxyPartitionSurvivedByRetransmit(t *testing.T) {
	plan := &xport.ChaosPlan{Partitions: []xport.Partition{
		// Let the handshake and a little traffic through, then cut the next
		// 20 frames in each direction.
		{A: 0, B: 1, AfterSends: 4, Sends: 20},
	}}
	meshes, s, proxy := proxiedPair(t, plan)

	done := make(chan struct{})
	go func() {
		for i := 0; i < 8; i++ {
			meshes[0].Broadcast("part", []Item{{Dst: 1, Payload: []byte{byte(i)}}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("broadcasts never completed through the partition")
	}
	if got := s.count("part"); got != 8 {
		t.Fatalf("got %d deliveries, want 8 (dedup across retransmits failed?)", got)
	}
	if proxy.Dropped() == 0 {
		t.Fatal("partition window never fired — test exercised nothing")
	}
	if meshes[0].Stats().Retransmits == 0 {
		t.Fatal("partition survived without retransmissions?")
	}
}

func TestProxyRandomDropSurvivedByRetransmit(t *testing.T) {
	plan := &xport.ChaosPlan{Seed: 42, Drop: 0.3}
	meshes, s, proxy := proxiedPair(t, plan)

	done := make(chan struct{})
	go func() {
		meshes[0].Broadcast("lossy", []Item{
			{Dst: 1, Payload: []byte("a")},
		})
		for i := 0; i < 4; i++ {
			meshes[0].Broadcast("lossy", []Item{{Dst: 1, Payload: []byte{byte(i)}}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("broadcasts never completed under 30% drop")
	}
	if got := s.count("lossy"); got != 5 {
		t.Fatalf("got %d deliveries, want 5", got)
	}
	t.Logf("proxy dropped %d frames; sender retransmitted %d times",
		proxy.Dropped(), meshes[0].Stats().Retransmits)
}

func TestProxyExecThroughChaos(t *testing.T) {
	plan := &xport.ChaosPlan{Seed: 7, Drop: 0.25, DelayMax: 2 * time.Millisecond}
	meshes, _, _ := proxiedPair(t, plan)
	for i := int64(0); i < 5; i++ {
		val, err := meshes[0].Exec(1, "job", domain.Pt1(i), nil)
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if want := fmt.Sprintf("job@%d", i); string(val) != want {
			t.Fatalf("exec %d: got %q want %q", i, val, want)
		}
	}
}
