package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// TCP fabric: real sockets between mesh peers.
//
// Topology and handshake. Every process runs one listener. Node 0 (the
// launching side) is configured with the full worker address table and
// dials every worker; its Hello carries its node id, serving epoch and the
// address table, so a worker only ever needs its own -listen flag — it
// learns who its siblings are from the handshake and dials them lazily
// when a broadcast route makes it a relay. The accepter answers with a
// Welcome carrying its id and epoch. Epoch rule: a fabric adopts the
// highest epoch it has seen and refuses Hellos from lower ones, so a
// stale launcher that restarts with a bumped epoch can never be shadowed
// by its dead predecessor's half-open connections.
//
// Connection management. Each known peer has one manager goroutine owning
// at most one live connection (preferring the most recently established —
// simultaneous dials from both ends converge because frames are idempotent
// above). Dialing retries with capped exponential backoff; every
// establishment increments wire_peer_reconnects_total.
//
// Write coalescing. Sends enqueue onto the peer's channel; the writer
// drains the channel into a bufio.Writer and flushes only when the queue
// is momentarily empty, so a burst of frames (a broadcast fan-out, an
// ack+relay pair) leaves in one syscall.

// TCPConfig configures a TCP fabric.
type TCPConfig struct {
	// Self is this process's mesh node id.
	Self int
	// Listen is the local listen address (host:port; :0 picks a port).
	Listen string
	// Peers maps node ids to dial addresses. Node 0 passes the full
	// worker table; workers usually pass nothing and learn it from the
	// handshake.
	Peers map[int]string
	// Epoch is the serving epoch announced in handshakes; 0 on workers
	// means "adopt the launcher's".
	Epoch uint64
	// DialBackoff is the initial redial delay (doubled per failure, capped
	// at 64×); zero defaults to 20ms.
	DialBackoff time.Duration
	// HandshakeTimeout bounds the Hello/Welcome exchange on a fresh
	// connection; zero defaults to 5s. Lower it when the path is lossy
	// enough that abandoned handshakes must be cheap (the chaos proxy
	// drops handshake frames like any other).
	HandshakeTimeout time.Duration
}

// TCPFabric is the socket implementation of Fabric.
type TCPFabric struct {
	self      int
	ln        net.Listener
	backoff   time.Duration
	handshake time.Duration

	mu    sync.Mutex
	epoch uint64
	peers map[int]*tcpPeer
	addrs map[int]string
	recv  func(*Frame)
	mx    *wireMetrics
	done  chan struct{}
}

// tcpPeer is the per-peer connection manager state.
type tcpPeer struct {
	id  int
	out chan *Frame

	mu      sync.Mutex
	conn    net.Conn // current live conn, nil while down
	started bool     // manager goroutine running
}

const peerQueue = 256

// NewTCP opens the listener and returns the fabric. Dialing is lazy: the
// first Send to a peer starts its manager.
func NewTCP(cfg TCPConfig) (*TCPFabric, error) {
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Listen, err)
	}
	backoff := cfg.DialBackoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	handshake := cfg.HandshakeTimeout
	if handshake <= 0 {
		handshake = 5 * time.Second
	}
	t := &TCPFabric{
		self:      cfg.Self,
		ln:        ln,
		backoff:   backoff,
		handshake: handshake,
		epoch:     cfg.Epoch,
		peers:     map[int]*tcpPeer{},
		addrs:     map[int]string{},
		done:      make(chan struct{}),
	}
	for id, addr := range cfg.Peers {
		t.addrs[id] = addr
	}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's bound address (useful with Listen ":0").
func (t *TCPFabric) Addr() string { return t.ln.Addr().String() }

func (t *TCPFabric) attach(mx *wireMetrics) {
	t.mu.Lock()
	t.mx = mx
	t.mu.Unlock()
}

func (t *TCPFabric) SetReceiver(fn func(*Frame)) {
	t.mu.Lock()
	t.recv = fn
	t.mu.Unlock()
}

func (t *TCPFabric) closed() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Send enqueues f for peer dst, starting its connection manager on first
// use. The queue is bounded; when it is full Send blocks (backpressure to
// the retransmission layer, which is already pacing on ack timeouts).
func (t *TCPFabric) Send(dst int, f *Frame) error {
	if t.closed() {
		return fmt.Errorf("wire: tcp fabric %d closed", t.self)
	}
	p, err := t.peer(dst, true)
	if err != nil {
		return err
	}
	select {
	case p.out <- f:
		return nil
	case <-t.done:
		return fmt.Errorf("wire: tcp fabric %d closed", t.self)
	}
}

// peer returns dst's manager, creating (and, with start, running) it.
func (t *TCPFabric) peer(dst int, start bool) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[dst]
	if p == nil {
		p = &tcpPeer{id: dst, out: make(chan *Frame, peerQueue)}
		t.peers[dst] = p
	}
	if start && !p.started {
		if _, ok := t.addrs[dst]; !ok {
			// No address and no inbound conn yet: the manager would spin.
			p.mu.Lock()
			hasConn := p.conn != nil
			p.mu.Unlock()
			if !hasConn {
				return nil, fmt.Errorf("wire: no address for peer %d", dst)
			}
		}
		p.started = true
		go t.managePeer(p)
	}
	return p, nil
}

// managePeer owns one peer's connection: (re)establish, then pump the send
// queue through a coalescing writer until the conn dies.
func (t *TCPFabric) managePeer(p *tcpPeer) {
	backoff := t.backoff
	for !t.closed() {
		conn := t.waitConn(p, &backoff)
		if conn == nil {
			return // fabric closed
		}
		t.writeLoop(p, conn)
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.mu.Unlock()
		_ = conn.Close()
	}
}

// waitConn returns a live connection for p: the one an inbound handshake
// installed, or a fresh dial with capped backoff.
func (t *TCPFabric) waitConn(p *tcpPeer, backoff *time.Duration) net.Conn {
	for !t.closed() {
		p.mu.Lock()
		conn := p.conn
		p.mu.Unlock()
		if conn != nil {
			*backoff = t.backoff
			return conn
		}
		t.mu.Lock()
		addr := t.addrs[p.id]
		t.mu.Unlock()
		if addr == "" {
			// Wait for an accepted conn to appear.
			time.Sleep(t.backoff)
			continue
		}
		conn, err := t.dial(p, addr)
		if err == nil {
			*backoff = t.backoff
			return conn
		}
		select {
		case <-t.done:
			return nil
		case <-time.After(*backoff):
		}
		if *backoff < 64*t.backoff {
			*backoff *= 2
		}
	}
	return nil
}

// dial establishes and handshakes one outbound connection to p.
func (t *TCPFabric) dial(p *tcpPeer, addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	epoch := t.epoch
	table := make(map[int]string, len(t.addrs))
	for id, a := range t.addrs {
		table[id] = a
	}
	mx := t.mx
	t.mu.Unlock()

	hello := &Frame{Kind: KindHello, Src: t.self, Dst: p.id, Gen: epoch, Body: encodeAddrTable(table)}
	if err := writeFlush(conn, hello); err != nil {
		_ = conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(t.handshake))
	wf, err := ReadFrame(br)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil || wf.Kind != KindWelcome {
		_ = conn.Close()
		return nil, fmt.Errorf("wire: handshake with peer %d: %v", p.id, err)
	}
	t.adoptEpoch(wf.Gen)
	t.installConn(p, conn)
	if mx != nil {
		mx.peer(p.id).reconnects.Inc()
	}
	go t.readLoop(p, conn, br)
	return conn, nil
}

// acceptLoop serves inbound connections: read the Hello, answer Welcome,
// adopt the address table, install the conn on the peer and start reading.
func (t *TCPFabric) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handleInbound(conn)
	}
}

func (t *TCPFabric) handleInbound(conn net.Conn) {
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(t.handshake))
	hf, err := ReadFrame(br)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil || hf.Kind != KindHello {
		_ = conn.Close()
		return
	}
	t.mu.Lock()
	stale := hf.Gen < t.epoch
	t.mu.Unlock()
	if stale {
		_ = conn.Close() // a dead generation's leftover dialer
		return
	}
	t.adoptEpoch(hf.Gen)
	for id, addr := range decodeAddrTable(hf.Body) {
		if id == t.self {
			continue
		}
		t.mu.Lock()
		if _, known := t.addrs[id]; !known {
			t.addrs[id] = addr
		}
		t.mu.Unlock()
	}
	t.mu.Lock()
	epoch := t.epoch
	mx := t.mx
	t.mu.Unlock()
	if err := writeFlush(conn, &Frame{Kind: KindWelcome, Src: t.self, Dst: hf.Src, Gen: epoch}); err != nil {
		_ = conn.Close()
		return
	}
	p, err := t.peer(hf.Src, false)
	if err != nil {
		_ = conn.Close()
		return
	}
	t.installConn(p, conn)
	if mx != nil {
		mx.peer(p.id).reconnects.Inc()
	}
	// The accept side needs a writer too (acks, pongs, results flow back
	// on whatever conn exists) — start the manager now that a conn is up.
	t.mu.Lock()
	if !p.started {
		p.started = true
		go t.managePeer(p)
	}
	t.mu.Unlock()
	t.readLoop(p, conn, br)
}

// installConn makes conn p's current connection, closing any predecessor.
func (t *TCPFabric) installConn(p *tcpPeer, conn net.Conn) {
	p.mu.Lock()
	old := p.conn
	p.conn = conn
	p.mu.Unlock()
	if old != nil && old != conn {
		_ = old.Close()
	}
}

// readLoop decodes frames off one connection into the receiver until the
// conn dies. Corrupt frames poison the stream (framing is lost), so the
// conn is dropped and redialed.
func (t *TCPFabric) readLoop(p *tcpPeer, conn net.Conn, br *bufio.Reader) {
	for {
		f, err := ReadFrame(br)
		if err != nil {
			t.mu.Lock()
			mx := t.mx
			t.mu.Unlock()
			if mx != nil && (errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTooLarge)) {
				mx.badFrames.Inc()
			}
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
			}
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.mu.Lock()
		recv := t.recv
		mx := t.mx
		t.mu.Unlock()
		if mx != nil {
			pc := mx.peer(p.id)
			pc.msgsRecv.Inc()
			// Approximate: re-encoding for an exact byte count would double
			// the codec cost; header+body dominates.
			pc.bytesRecv.Add(int64(len(f.Body) + len(f.Tag) + 40))
		}
		if recv != nil {
			recv(f)
		}
	}
}

// writeLoop pumps p's queue through a coalescing buffered writer on conn.
func (t *TCPFabric) writeLoop(p *tcpPeer, conn net.Conn) {
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		var f *Frame
		select {
		case f = <-p.out:
		case <-t.done:
			return
		}
		t.mu.Lock()
		mx := t.mx
		t.mu.Unlock()
		for {
			scratch = AppendFrame(scratch[:0], f)
			if mx != nil {
				pc := mx.peer(p.id)
				pc.msgsSent.Inc()
				pc.bytesSent.Add(int64(len(scratch)))
			}
			if _, err := bw.Write(scratch); err != nil {
				return
			}
			// Coalesce: keep writing while more frames are queued; flush
			// only when the queue goes momentarily quiet.
			select {
			case f = <-p.out:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// adoptEpoch raises the fabric's serving epoch to e if higher.
func (t *TCPFabric) adoptEpoch(e uint64) {
	t.mu.Lock()
	if e > t.epoch {
		t.epoch = e
	}
	t.mu.Unlock()
}

// Epoch returns the fabric's current serving epoch.
func (t *TCPFabric) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

func (t *TCPFabric) Peers() []PeerStatus {
	t.mu.Lock()
	ids := make([]int, 0, len(t.peers))
	seen := map[int]bool{}
	for id := range t.peers {
		ids = append(ids, id)
		seen[id] = true
	}
	for id := range t.addrs {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	mx := t.mx
	addrs := make(map[int]string, len(t.addrs))
	for id, a := range t.addrs {
		addrs[id] = a
	}
	peers := make(map[int]*tcpPeer, len(t.peers))
	for id, p := range t.peers {
		peers[id] = p
	}
	t.mu.Unlock()
	sort.Ints(ids)

	out := make([]PeerStatus, 0, len(ids))
	for _, id := range ids {
		ps := PeerStatus{Node: id, Addr: addrs[id]}
		if p := peers[id]; p != nil {
			p.mu.Lock()
			ps.Connected = p.conn != nil
			p.mu.Unlock()
		}
		if mx != nil {
			pc := mx.peer(id)
			ps.Reconnects = pc.reconnects.Value()
			ps.BytesSent = pc.bytesSent.Value()
			ps.BytesRecv = pc.bytesRecv.Value()
			ps.MsgsSent = pc.msgsSent.Value()
			ps.MsgsRecv = pc.msgsRecv.Value()
		}
		out = append(out, ps)
	}
	return out
}

func (t *TCPFabric) Close() error {
	t.mu.Lock()
	select {
	case <-t.done:
	default:
		close(t.done)
	}
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	return err
}

// writeFlush writes one frame directly to a conn (handshake path, before
// the coalescing writer exists).
func writeFlush(conn net.Conn, f *Frame) error {
	_, err := conn.Write(EncodeFrame(f))
	return err
}

// encodeAddrTable serializes a node-id→address table for a Hello body.
func encodeAddrTable(t map[int]string) []byte {
	ids := make([]int, 0, len(t))
	for id := range t {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(len(t[id])))
		buf = append(buf, t[id]...)
	}
	return buf
}

// decodeAddrTable parses a Hello body; malformed tables yield nil.
func decodeAddrTable(b []byte) map[int]string {
	d := decoder{b: b}
	n := d.uvarint()
	if d.err != nil || n > 1<<16 {
		return nil
	}
	out := make(map[int]string, n)
	for i := uint64(0); i < n; i++ {
		id := d.int()
		addr := string(d.bytes())
		if d.err != nil {
			return nil
		}
		out[id] = addr
	}
	return out
}
