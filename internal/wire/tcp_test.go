package wire

import (
	"fmt"
	"testing"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/xport"
)

// tcpCluster builds an n-node mesh over real localhost sockets. Node 0 gets
// the full address table (the launcher role); workers know only their own
// listener and learn the rest from node 0's Hello.
func tcpCluster(t *testing.T, n int) ([]*Mesh, []*sink, []*TCPFabric) {
	t.Helper()
	fabs := make([]*TCPFabric, n)
	addrs := map[int]string{}
	for i := 1; i < n; i++ {
		f, err := NewTCP(TCPConfig{Self: i, Listen: "127.0.0.1:0", DialBackoff: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		fabs[i] = f
		addrs[i] = f.Addr()
	}
	f0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Peers: addrs, Epoch: 1, DialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fabs[0] = f0

	meshes := make([]*Mesh, n)
	sinks := make([]*sink, n)
	rp := xport.RetransmitPolicy{Timeout: 20 * time.Millisecond, MaxBackoff: 160 * time.Millisecond}
	for i := 0; i < n; i++ {
		sinks[i] = newSink()
		m, err := NewMesh(MeshConfig{
			Self: i, Nodes: n, Fabric: fabs[i], Retransmit: rp,
			Deliver: sinks[i].deliver,
			Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
				return []byte(fmt.Sprintf("%s@%d", task, point.X())), nil
			},
			ExecTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		t.Cleanup(func() { _ = m.Close() })
	}
	return meshes, sinks, fabs
}

func TestTCPBroadcastAcrossSockets(t *testing.T) {
	meshes, sinks, _ := tcpCluster(t, 4)
	items := []Item{
		{Dst: 1, Payload: []byte("one")},
		{Dst: 2, Payload: []byte("two")},
		{Dst: 3, Payload: []byte("three")},
	}
	done := make(chan struct{})
	go func() { meshes[0].Broadcast("tcp", items); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("broadcast over TCP never completed")
	}
	wants := []string{"", "tcp:one", "tcp:two", "tcp:three"}
	for d := 1; d < 4; d++ {
		if sinks[d].count("tcp") != 1 || sinks[d].got[0] != wants[d] {
			t.Fatalf("node %d: %v", d, sinks[d].got)
		}
	}
}

// Node 3's route in a 4-node tree is 0→1→3: node 1 must relay, which means
// it has to dial a sibling whose address it only knows from the handshake's
// address table.
func TestTCPWorkerLearnsSiblingsFromHandshake(t *testing.T) {
	meshes, sinks, fabs := tcpCluster(t, 4)
	done := make(chan struct{})
	go func() {
		meshes[0].Broadcast("relay", []Item{{Dst: 3, Payload: []byte("deep")}})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("relayed broadcast never completed")
	}
	if sinks[3].count("relay") != 1 {
		t.Fatal("leaf never received relayed payload")
	}
	// Node 1 must have learned node 3's address (it had no Peers config).
	found := false
	for _, ps := range fabs[1].Peers() {
		if ps.Node == 3 && ps.Addr != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 1 peer table lacks node 3: %+v", fabs[1].Peers())
	}
}

func TestTCPExecAndProbe(t *testing.T) {
	meshes, _, _ := tcpCluster(t, 3)
	val, err := meshes[0].Exec(2, "remote", domain.Pt1(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "remote@5" {
		t.Fatalf("got %q", val)
	}
	if !meshes[0].Probe(1, 5) {
		t.Fatal("probe over TCP failed")
	}
}

func TestTCPReconnectAfterConnDrop(t *testing.T) {
	meshes, _, fabs := tcpCluster(t, 2)
	if _, err := meshes[0].Exec(1, "warm", domain.Pt1(1), nil); err != nil {
		t.Fatal(err)
	}
	// Sever node 1's live connection out from under it; the next exec must
	// succeed via redial + retransmission.
	fabs[1].mu.Lock()
	p := fabs[1].peers[0]
	fabs[1].mu.Unlock()
	if p != nil {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
		}
		p.mu.Unlock()
	}
	val, err := meshes[0].Exec(1, "after", domain.Pt1(2), nil)
	if err != nil {
		t.Fatalf("exec after conn drop: %v", err)
	}
	if string(val) != "after@2" {
		t.Fatalf("got %q", val)
	}
	// The reconnect must be visible in the peer counters.
	recon := false
	for _, ps := range append(fabs[0].Peers(), fabs[1].Peers()...) {
		if ps.Reconnects > 1 {
			recon = true
		}
	}
	if !recon {
		t.Log("note: reconnect landed on a fresh accept; counters:", fabs[0].Peers(), fabs[1].Peers())
	}
}

// A Hello from a lower epoch is a dead generation's leftover dialer and must
// be refused; the current epoch must survive.
func TestTCPStaleEpochRejected(t *testing.T) {
	f1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Epoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f1.SetReceiver(func(*Frame) {})

	stale, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: f1.Addr()}, Epoch: 3, DialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	stale.SetReceiver(func(*Frame) {})

	// The stale dialer's handshake is refused: its sends can't go through.
	errc := make(chan error, 1)
	go func() { errc <- stale.Send(1, &Frame{Kind: KindPing, Src: 0, Dst: 1}) }()
	deadline := time.After(500 * time.Millisecond)
	connected := false
	for !connected {
		select {
		case <-deadline:
			// Expected: never established.
			if got := f1.Epoch(); got != 5 {
				t.Fatalf("victim epoch moved to %d", got)
			}
			return
		case <-time.After(10 * time.Millisecond):
			for _, ps := range f1.Peers() {
				if ps.Node == 0 && ps.Connected {
					connected = true
				}
			}
		}
	}
	t.Fatal("stale-epoch dialer was accepted")
}

// A current-epoch dialer raises a lagging accepter to its epoch.
func TestTCPEpochAdoption(t *testing.T) {
	worker, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	worker.SetReceiver(func(*Frame) {})

	launcher, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: worker.Addr()}, Epoch: 9, DialBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer launcher.Close()
	launcher.SetReceiver(func(*Frame) {})

	_ = launcher.Send(1, &Frame{Kind: KindPing, Src: 0, Dst: 1})
	deadline := time.After(5 * time.Second)
	for worker.Epoch() != 9 {
		select {
		case <-deadline:
			t.Fatalf("worker never adopted epoch 9 (at %d)", worker.Epoch())
		case <-time.After(5 * time.Millisecond):
		}
	}
}
