package wire

import (
	"fmt"
	"testing"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/xport"
)

func benchFrame() *Frame {
	return &Frame{
		Kind: KindData, Src: 0, Dst: 5, Seq: 12345, Gen: 2, Key: 17,
		TC:    obs.TraceRef{Trace: 1, Span: 2, Parent: 3},
		Route: []int{2, 5}, Tag: "bench", Body: make([]byte, 256),
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	f := benchFrame()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], f)
	}
	_ = buf
}

func BenchmarkDecodeFrame(b *testing.B) {
	enc := EncodeFrame(benchFrame())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackExecRTT measures a full request/response round trip over
// the deterministic in-memory fabric: codec both ways, reliable-link
// bookkeeping, no sockets. The TCP variant below is the same round trip
// over real localhost sockets; the delta is the socket tax.
func BenchmarkLoopbackExecRTT(b *testing.B) {
	hub := NewHub()
	m0, err := NewMesh(MeshConfig{Self: 0, Nodes: 2, Fabric: hub.Fabric(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer m0.Close()
	m1, err := NewMesh(MeshConfig{Self: 1, Nodes: 2, Fabric: hub.Fabric(1),
		Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
			return args, nil
		}})
	if err != nil {
		b.Fatal(err)
	}
	defer m1.Close()
	args := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m0.Exec(1, "echo", domain.Pt1(int64(i)), args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPExecRTT(b *testing.B) {
	worker, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	launcher, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0",
		Peers: map[int]string{1: worker.Addr()}, Epoch: 1})
	if err != nil {
		b.Fatal(err)
	}
	rp := xport.RetransmitPolicy{Timeout: 50 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	m0, err := NewMesh(MeshConfig{Self: 0, Nodes: 2, Fabric: launcher, Retransmit: rp, ExecTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer m0.Close()
	m1, err := NewMesh(MeshConfig{Self: 1, Nodes: 2, Fabric: worker, Retransmit: rp,
		Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
			return args, nil
		}})
	if err != nil {
		b.Fatal(err)
	}
	defer m1.Close()
	args := make([]byte, 64)
	// Warm the connection outside the timed region.
	if _, err := m0.Exec(1, "echo", domain.Pt1(0), args); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m0.Exec(1, "echo", domain.Pt1(int64(i)), args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoopbackBroadcast8(b *testing.B) {
	hub := NewHub()
	const n = 8
	meshes := make([]*Mesh, n)
	for i := 0; i < n; i++ {
		m, err := NewMesh(MeshConfig{Self: i, Nodes: n, Fabric: hub.Fabric(i),
			Deliver: func(node int, tag string, payload []byte) {}})
		if err != nil {
			b.Fatal(err)
		}
		meshes[i] = m
		defer m.Close()
	}
	items := make([]Item, 0, n-1)
	for d := 1; d < n; d++ {
		items = append(items, Item{Dst: d, Payload: make([]byte, 128)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meshes[0].Broadcast(fmt.Sprintf("b%d", i), items)
	}
}
