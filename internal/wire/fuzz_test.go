package wire

import (
	"reflect"
	"testing"
)

// FuzzDecodeFrame locks in the codec's safety contract: DecodeFrame never
// panics and never over-allocates regardless of input, and anything it does
// accept re-encodes to a frame that decodes identically (the decoder is a
// function, not a heuristic). The committed corpus under
// testdata/fuzz/FuzzDecodeFrame seeds the interesting shapes — valid frames
// of every kind, torn prefixes, flipped CRCs — and CI runs a short -fuzz
// smoke on top.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(EncodeFrame(fr))
	}
	// Torn, corrupt and degenerate seeds.
	data := EncodeFrame(sampleFrames()[2])
	f.Add(data[:len(data)/2])
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if fr != nil || n != 0 {
				t.Fatalf("error %v returned frame %+v consumed %d", err, fr, n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Accepted frames must round-trip bit-for-bit through the encoder.
		re := EncodeFrame(fr)
		fr2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if n2 != len(re) || !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-encode not canonical:\n got %+v\nwant %+v", fr2, fr)
		}
	})
}
