package trace_test

import (
	"strings"
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
	"indexlaunch/internal/trace"
)

// TestRTSimTraceParity is the tracing face of the rt/sim parity guarantee:
// the same workload — N iterations of one index launch over P points on the
// centralized path — run for real on internal/rt and through the
// internal/sim cost model must reduce to the identical launch-granularity
// span-tree shape for every seed in the matrix. (The centralized path is
// the comparable one: under DCR the simulator replays issuance on every
// node, so its issue-span multiplicity is by design N× rt's.)
func TestRTSimTraceParity(t *testing.T) {
	const nodes, points, iters = 4, 12, 3
	for _, seed := range []uint64{1, 7, 42} {
		rtShape := rtTraceShape(t, seed, nodes, points, iters)
		simShape := simTraceShape(t, seed, nodes, points, iters)
		if rtShape != simShape {
			t.Errorf("seed %d: launch shapes differ:\n  rt:\n%s\n  sim:\n%s", seed, rtShape, simShape)
		}
		want := strings.Count(rtShape, "issue:step execute=12")
		if want != iters {
			t.Errorf("seed %d: rt shape degenerate (%d launches, want %d):\n%s",
				seed, want, iters, rtShape)
		}
	}
}

func rtTraceShape(t *testing.T, seed uint64, nodes, points, iters int) string {
	t.Helper()
	rec := obs.NewRecorder("rt", nodes, 1<<14)
	r := rt.MustNew(rt.Config{
		Nodes: nodes, ProcsPerNode: 2, IndexLaunches: true, Profile: rec,
	})
	defer r.Shutdown()
	id, err := r.RegisterTask("step", func(*rt.Context) ([]byte, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r.SetTraceRef(obs.NewTraceRef(seed))
	for i := 0; i < iters; i++ {
		l, err := core.Forall("step", id, domain.Range1(0, int64(points-1)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err != nil {
		t.Fatal(err)
	}
	return trace.LaunchShape(traced(rec.Snapshot().Events))
}

func simTraceShape(t *testing.T, seed uint64, nodes, points, iters int) string {
	t.Helper()
	rec := obs.NewRecorder("sim", nodes, 1<<14)
	_, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(nodes), Cost: sim.DefaultCosts(),
		IDX: true, Profile: rec, TraceSeed: seed,
	}, sim.Program{
		Name:       "parity",
		Body:       []sim.Launch{{Name: "step", Points: points, ComputeSec: 1e-6}},
		Iterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace.LaunchShape(traced(rec.Snapshot().Events))
}

// traced filters to span-stamped events: the parity contract covers the
// traced tree, not untraced background marks.
func traced(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Trace != 0 {
			out = append(out, ev)
		}
	}
	return out
}
