package trace

import (
	"strconv"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
)

// feed buffers a minimal three-layer trace into tr: an admit span, an
// execute span under a launch child, and a hop mark — enough structure for
// tree assertions without a live scheduler.
func feed(t *testing.T, tr *Tracer, tc obs.TraceRef, jobID uint64) {
	t.Helper()
	tr.Begin(tc, jobID, "a", 0)
	tr.Record(obs.Event{Stage: obs.StageAdmit, Tag: "tenant:a", Start: 1, Dur: 2,
		Trace: tc.Trace, Span: tc.Child(2).Span, Parent: tc.Span})
	ltc := tc.Child(0x104)
	tr.Record(obs.Event{Stage: obs.StageIssue, Task: "spin", Tag: "spin", Start: 3, Dur: 1,
		Trace: tc.Trace, Span: ltc.Span, Parent: ltc.Parent})
	tr.Record(obs.Event{Stage: obs.StageExecute, Task: "spin", Tag: "spin", Point: domain.Pt1(0),
		Start: 4, Dur: 5, Trace: tc.Trace, Span: ltc.Child(16).Span, Parent: ltc.Span})
}

func mustNew(t *testing.T, cfg Config) *Tracer {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDecisionTable(t *testing.T) {
	slow := func() int64 { return 100 }
	cases := []struct {
		name string
		o    Outcome
		slow func() int64
		head float64
		want string
	}{
		{"failed beats all", Outcome{Failed: true, Preempted: true, LatencyNS: 500}, slow, 1, "failed"},
		{"preempted", Outcome{Preempted: true, Retried: true}, slow, 0, "preempted"},
		{"retried", Outcome{Retried: true}, slow, 0, "retried"},
		{"slow", Outcome{LatencyNS: 100}, slow, 0, "slow"},
		{"below threshold drops", Outcome{LatencyNS: 99}, slow, 0, ""},
		{"zero threshold disables slow", Outcome{LatencyNS: 1 << 40}, func() int64 { return 0 }, 0, ""},
		{"nil threshold disables slow", Outcome{LatencyNS: 1 << 40}, nil, 0, ""},
		{"head rate 1 keeps everything", Outcome{}, nil, 1, "head"},
		{"healthy fast drop", Outcome{LatencyNS: 1}, slow, 0, ""},
	}
	for _, c := range cases {
		if got := decide(0x1234, c.o, c.slow, c.head); got != c.want {
			t.Errorf("%s: decide = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestHeadSamplingDeterministicAndProportional(t *testing.T) {
	kept := 0
	const n = 10000
	for i := uint64(1); i <= n; i++ {
		tc := obs.NewTraceRef(i)
		a := decide(tc.Trace, Outcome{}, nil, 0.1)
		b := decide(tc.Trace, Outcome{}, nil, 0.1)
		if a != b {
			t.Fatalf("head sampling not deterministic for trace %#x", tc.Trace)
		}
		if a == "head" {
			kept++
		}
	}
	if kept < n/10-300 || kept > n/10+300 {
		t.Fatalf("head rate 0.1 kept %d of %d", kept, n)
	}
}

func TestFinishRetainsAndGets(t *testing.T) {
	tr := mustNew(t, Config{Registry: metrics.NewRegistry()})
	tc := obs.NewTraceRef(1)
	feed(t, tr, tc, 7)
	retained, why := tr.Finish(tc, 50, Outcome{Failed: true, Err: "boom"})
	if !retained || why != "failed" {
		t.Fatalf("Finish = (%v, %q), want (true, failed)", retained, why)
	}
	// Get by decimal job ID and by hex trace ID.
	byJob, ok := tr.Get("7")
	if !ok {
		t.Fatal("Get(jobID) missed")
	}
	byTrace, ok := tr.Get(strconv.FormatUint(tc.Trace, 16))
	if !ok || byTrace != byJob {
		t.Fatal("Get(hex trace ID) missed or returned a different trace")
	}
	if byJob.Why != "failed" || byJob.Err != "boom" || byJob.Tenant != "a" {
		t.Fatalf("retained trace fields wrong: %+v", byJob)
	}
	// 3 recorded + 1 synthesized root.
	if len(byJob.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(byJob.Spans))
	}
	root := byJob.Spans[0]
	if root.Stage != obs.StageJob || root.Span != tc.Span || root.Dur != 50 {
		t.Fatalf("first span is not the job root: %+v", root)
	}
	// A second Finish for the same trace is a no-op.
	if re, _ := tr.Finish(tc, 60, Outcome{Failed: true}); re {
		t.Fatal("double Finish retained twice")
	}
	// Dropped traces free their buffers and are not queryable.
	tc2 := obs.NewTraceRef(2)
	feed(t, tr, tc2, 8)
	if re, _ := tr.Finish(tc2, 50, Outcome{}); re {
		t.Fatal("healthy fast trace retained with no policy")
	}
	if _, ok := tr.Get("8"); ok {
		t.Fatal("dropped trace still queryable")
	}
}

func TestRetainedRingEvicts(t *testing.T) {
	tr := mustNew(t, Config{MaxRetained: 3})
	for i := uint64(1); i <= 5; i++ {
		tc := obs.NewTraceRef(i)
		tr.Begin(tc, i, "a", 0)
		tr.Finish(tc, 10, Outcome{Failed: true})
	}
	if st := tr.StatusInfo(); st.Retained != 3 {
		t.Fatalf("retained %d, want 3", st.Retained)
	}
	if _, ok := tr.Get("1"); ok {
		t.Fatal("evicted trace still queryable")
	}
	if _, ok := tr.Get("5"); !ok {
		t.Fatal("newest trace missing")
	}
	recent := tr.Recent(10)
	if len(recent) != 3 || recent[0].JobID != 5 || recent[2].JobID != 3 {
		t.Fatalf("Recent order wrong: %+v", recent)
	}
}

func TestOrphanAndTruncation(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := mustNew(t, Config{MaxSpans: 2, Registry: reg})
	// Orphan: no Begin for this trace.
	tr.Record(obs.Event{Trace: 0xbeef, Span: 1})
	tc := obs.NewTraceRef(3)
	tr.Begin(tc, 3, "a", 0)
	for i := uint64(1); i <= 5; i++ {
		tr.Record(obs.Event{Trace: tc.Trace, Span: tc.Child(i).Span, Parent: tc.Span})
	}
	retained, _ := tr.Finish(tc, 10, Outcome{Failed: true})
	if !retained {
		t.Fatal("not retained")
	}
	got, _ := tr.Get("3")
	if got.Truncated != 3 {
		t.Fatalf("Truncated = %d, want 3", got.Truncated)
	}
	if len(got.Spans) != 3 { // 2 kept + root
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
}

func TestAbortDiscards(t *testing.T) {
	tr := mustNew(t, Config{})
	tc := obs.NewTraceRef(4)
	tr.Begin(tc, 4, "a", 0)
	tr.Abort(tc)
	if re, _ := tr.Finish(tc, 10, Outcome{Failed: true}); re {
		t.Fatal("aborted trace still finished")
	}
	if st := tr.StatusInfo(); st.Inflight != 0 {
		t.Fatalf("inflight = %d after abort", st.Inflight)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tc := obs.NewTraceRef(1)
	tr.Begin(tc, 1, "a", 0)
	tr.Record(obs.Event{Trace: tc.Trace})
	tr.Abort(tc)
	tr.SetSlowThreshold(func() int64 { return 1 })
	if re, why := tr.Finish(tc, 1, Outcome{Failed: true}); re || why != "" {
		t.Fatal("nil tracer retained")
	}
	if tr.Sink() != nil {
		t.Fatal("nil tracer returned a sink")
	}
	if _, ok := tr.Get("1"); ok {
		t.Fatal("nil tracer Get hit")
	}
	if got := tr.Recent(5); got != nil {
		t.Fatal("nil tracer Recent non-nil")
	}
	if st := tr.StatusInfo(); st.Inflight != 0 || st.Retained != 0 {
		t.Fatal("nil tracer status non-zero")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkFeedsTracerThroughRecorder(t *testing.T) {
	tr := mustNew(t, Config{})
	rec := obs.NewRecorder("test", 2, 64)
	rec.SetSink(tr.Sink())
	tc := obs.NewTraceRef(9)
	tr.Begin(tc, 9, "b", 0)
	rec.SpanTC(tc.Child(2), 0, obs.StageAdmit, "", "tenant:b", domain.Pt1(9), 0, 3)
	rec.Span(0, obs.StageFence, "", "fence", domain.Point{}, 4, 5) // untraced
	retained, _ := tr.Finish(tc, 10, Outcome{Failed: true})
	if !retained {
		t.Fatal("not retained")
	}
	got, _ := tr.Get("9")
	if len(got.Spans) != 2 { // admit + root, the untraced fence filtered at the tee
		t.Fatalf("spans = %d, want 2", len(got.Spans))
	}
}
