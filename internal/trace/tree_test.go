package trace

import (
	"strings"
	"testing"

	"indexlaunch/internal/obs"
)

// Hand-built span sets exercising tree assembly, canonical shapes, and the
// timeline rendering without a live runtime.

func spanTreeFixture() (obs.TraceRef, []obs.Event) {
	tc := obs.NewTraceRef(11)
	admit := tc.Child(2)
	issue := tc.Child(0x104)
	ex0 := issue.Child(16)
	ex1 := issue.Child(17)
	return tc, []obs.Event{
		{Stage: obs.StageJob, Start: 0, Dur: 100, Trace: tc.Trace, Span: tc.Span},
		{Stage: obs.StageAdmit, Tag: "tenant:a", Start: 1, Dur: 2,
			Trace: tc.Trace, Span: admit.Span, Parent: admit.Parent},
		{Stage: obs.StageIssue, Tag: "spin", Start: 5, Dur: 90,
			Trace: tc.Trace, Span: issue.Span, Parent: issue.Parent},
		{Stage: obs.StageExecute, Tag: "spin", Start: 10, Dur: 40,
			Trace: tc.Trace, Span: ex0.Span, Parent: ex0.Parent},
		{Stage: obs.StageExecute, Tag: "spin", Start: 12, Dur: 44,
			Trace: tc.Trace, Span: ex1.Span, Parent: ex1.Parent},
	}
}

func TestTreeLinksAndOrphans(t *testing.T) {
	_, spans := spanTreeFixture()
	roots := Tree(spans)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	job := roots[0]
	if job.Ev.Stage != obs.StageJob || len(job.Children) != 2 {
		t.Fatalf("root wrong: stage %v, %d children", job.Ev.Stage, len(job.Children))
	}
	// Children ordered by start: admit (1) before issue (5).
	if job.Children[0].Ev.Stage != obs.StageAdmit || job.Children[1].Ev.Stage != obs.StageIssue {
		t.Fatalf("child order wrong: %v, %v", job.Children[0].Ev.Stage, job.Children[1].Ev.Stage)
	}
	if n := len(job.Children[1].Children); n != 2 {
		t.Fatalf("issue has %d children, want 2", n)
	}
	// A span whose parent was dropped becomes a root, not a lost node.
	orphan := obs.Event{Stage: obs.StageSend, Span: 0xdead, Parent: 0xfeed, Start: 50}
	roots = Tree(append(spans, orphan))
	if len(roots) != 2 {
		t.Fatalf("orphaned span did not surface as a root: %d roots", len(roots))
	}
}

func TestShapeCanonical(t *testing.T) {
	_, spans := spanTreeFixture()
	want := "job(admit,issue(execute,execute))"
	if got := Shape(spans); got != want {
		t.Fatalf("Shape = %q, want %q", got, want)
	}
	// Shape is order-independent: reversing the span slice changes nothing.
	rev := make([]obs.Event, len(spans))
	for i, ev := range spans {
		rev[len(spans)-1-i] = ev
	}
	if got := Shape(rev); got != want {
		t.Fatalf("Shape order-sensitive: %q", got)
	}
}

func TestLaunchShapeCountsExecutes(t *testing.T) {
	_, spans := spanTreeFixture()
	if got := LaunchShape(spans); got != "issue:spin execute=2" {
		t.Fatalf("LaunchShape = %q", got)
	}
}

func TestRenderAndStages(t *testing.T) {
	tc, spans := spanTreeFixture()
	tr := &Trace{TraceID: "abc", JobID: 3, Tenant: "a", Why: "slow",
		StartNS: 0, EndNS: 100, Spans: spans, Truncated: 1}
	_ = tc
	var b strings.Builder
	if err := tr.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"job 3", "why=slow", "(1 truncated)", "admit", "issue", "execute"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects depth: the execute stage column sits right of
	// its parent issue span's column.
	var issueCol, exCol int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "issue"); i >= 0 {
			issueCol = i
		}
		if i := strings.Index(line, "execute"); i >= 0 {
			exCol = i
		}
	}
	if issueCol == 0 || exCol <= issueCol {
		t.Fatalf("execute (col %d) not indented below issue (col %d):\n%s", exCol, issueCol, out)
	}
	got := tr.Stages()
	want := []string{"admit", "execute", "issue", "job"}
	if len(got) != len(want) {
		t.Fatalf("Stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages = %v, want %v", got, want)
		}
	}
}
