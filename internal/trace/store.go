package trace

import (
	"encoding/json"
	"fmt"

	"indexlaunch/internal/wal"
)

// Durable trace store, layered on internal/wal exactly like the
// scheduler's job journal:
//
//   - every retained trace is one wal record: the JSON form of Trace;
//   - every SnapshotEvery retains, the whole retained ring is written as
//     a wal snapshot (JSON array, oldest first), which lets the wal
//     compact the per-trace records the snapshot covers;
//   - Open-time recovery replays snapshot-then-records, re-applying ring
//     eviction, so the post-restart ring is exactly the pre-crash ring
//     (modulo the wal's declared durability policy).
//
// The wal.Log is not internally synchronized; the tracer's mutex is the
// store's writer lock.

// openStore opens cfg.Dir and rebuilds the retained ring from it.
func (t *Tracer) openStore() error {
	log, rec, err := wal.Open(t.cfg.Dir, wal.Options{Fsync: t.cfg.Fsync})
	if err != nil {
		return fmt.Errorf("trace: open store: %w", err)
	}
	if rec.Snapshot != nil {
		var ring []*Trace
		if err := json.Unmarshal(rec.Snapshot, &ring); err != nil {
			log.Close()
			return fmt.Errorf("trace: corrupt store snapshot: %w", err)
		}
		for _, tr := range ring {
			t.retain(tr, false)
		}
	}
	for _, payload := range rec.Records {
		var tr Trace
		if err := json.Unmarshal(payload, &tr); err != nil {
			// A record the wal accepted but we cannot parse is a version
			// skew, not corruption (the wal already CRC-checked it);
			// skip it rather than refuse to start.
			continue
		}
		t.retain(&tr, false)
	}
	t.mu.Lock()
	t.log = log
	t.mu.Unlock()
	return nil
}

// persistLocked appends tr and snapshots the ring on schedule. Called
// with t.mu held. Store errors are swallowed after marking the log
// closed: tracing is an observability surface and must never take the
// scheduler down.
func (t *Tracer) persistLocked(tr *Trace) {
	payload, err := tr.marshal()
	if err != nil {
		return
	}
	if _, err := t.log.Append(payload); err != nil {
		t.log.Close()
		t.log = nil
		return
	}
	t.sinceSnap++
	if t.sinceSnap < t.cfg.SnapshotEvery {
		return
	}
	t.sinceSnap = 0
	state, err := json.Marshal(t.retained)
	if err != nil {
		return
	}
	if err := t.log.Snapshot(state); err != nil {
		t.log.Close()
		t.log = nil
	}
}

// StoreStats exposes the underlying wal stats (zero when memory-only).
func (t *Tracer) StoreStats() wal.Stats {
	if t == nil {
		return wal.Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log == nil {
		return wal.Stats{}
	}
	return t.log.Stats()
}
