package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"indexlaunch/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestTraceHandler(t *testing.T) {
	tr := mustNew(t, Config{})
	h := tr.Handler()

	// Empty listing is a JSON array, not null.
	w := get(t, h, "/trace")
	if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != "[]" {
		t.Fatalf("empty listing: %d %q", w.Code, w.Body.String())
	}

	tc := obs.NewTraceRef(1)
	feed(t, tr, tc, 7)
	tr.Finish(tc, 50, Outcome{Failed: true, Err: "boom"})

	// Listing carries the retained summary.
	var sums []Summary
	if err := json.Unmarshal(get(t, h, "/trace").Body.Bytes(), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].JobID != 7 || sums[0].Why != "failed" {
		t.Fatalf("listing = %+v", sums)
	}

	// By job ID, JSON round-trips through the idxprof rendering types.
	var got Trace
	if err := json.Unmarshal(get(t, h, "/trace/7").Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Why != "failed" || len(got.Spans) != 4 {
		t.Fatalf("trace payload wrong: %+v", got)
	}

	// By hex trace ID with the alternate formats.
	hexID := strconv.FormatUint(tc.Trace, 16)
	if w := get(t, h, "/trace/"+hexID+"?format=text"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "why=failed") {
		t.Fatalf("text format: %d %q", w.Code, w.Body.String())
	}
	if w := get(t, h, "/trace/"+hexID+"?format=chrome"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "traceEvents") {
		t.Fatalf("chrome format: %d", w.Code)
	}

	// Unknown ID 404s with a JSON error body.
	if w := get(t, h, "/trace/999"); w.Code != http.StatusNotFound ||
		!strings.Contains(w.Body.String(), "not retained") {
		t.Fatalf("404 path: %d %q", w.Code, w.Body.String())
	}
}

func TestNilTracerHandler(t *testing.T) {
	var tr *Tracer
	h := tr.Handler()
	if w := get(t, h, "/trace"); w.Code != http.StatusOK {
		t.Fatalf("nil tracer listing: %d", w.Code)
	}
	if w := get(t, h, "/trace/1"); w.Code != http.StatusNotFound {
		t.Fatalf("nil tracer lookup: %d", w.Code)
	}
}

// TestConcurrentQueryWhileRecording hammers GET /trace and GET /trace/{id}
// while producers record spans and finish traces — the race-detector proof
// that the query API needs no quiesced tracer.
func TestConcurrentQueryWhileRecording(t *testing.T) {
	tr := mustNew(t, Config{MaxRetained: 8})
	h := tr.Handler()
	const jobs = 200
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= jobs; i++ {
			tc := obs.NewTraceRef(i)
			tr.Begin(tc, i, "a", int64(i))
			for k := uint64(1); k <= 8; k++ {
				c := tc.Child(k)
				tr.Record(obs.Event{Stage: obs.StageExecute, Start: int64(i),
					Dur: 1, Trace: c.Trace, Span: c.Span, Parent: c.Parent})
			}
			tr.Finish(tc, int64(i)+10, Outcome{Failed: i%2 == 0})
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := strconv.Itoa(i%jobs + 1)
				switch i % 3 {
				case 0:
					get(t, h, "/trace")
				case 1:
					get(t, h, "/trace/"+id)
				default:
					get(t, h, "/trace/"+id+"?format=text")
				}
			}
		}(g)
	}
	wg.Wait()

	if st := tr.StatusInfo(); st.Retained == 0 {
		t.Fatal("nothing retained after concurrent run")
	}
}
