// Package trace is the end-to-end job tracing layer: the tail-sampling
// collector that turns the span-stamped obs events flowing out of sched,
// rt and xport into queryable per-job traces.
//
// The division of labor with internal/obs: obs owns the span schema
// (TraceRef, the Trace/Span/Parent fields on Event) and the cheap
// recording path; this package owns trace assembly and retention policy.
// The scheduler derives a root TraceRef per admitted job, every layer the
// job passes through stamps its spans with children of that ref, and the
// obs recorder tees each stamped event into Tracer.Record via its sink.
// When the job finishes, the scheduler reports the outcome and the tracer
// makes the tail-sampling decision: the complete buffered trace is
// retained if the job failed, was preempted, was retried, ran slower than
// a live latency-quantile threshold, or was head-sampled at a configured
// rate — otherwise the buffer is discarded wholesale. Tail sampling is
// what makes always-on tracing affordable: every job is traced, but only
// the interesting ones are kept.
//
// Retained traces live in a bounded in-memory ring for /trace queries and
// are persisted through an internal/wal segment store (one JSON record
// per trace, ring snapshots for compaction), so a restarted server still
// answers GET /trace/{id} for traces retained before the crash.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"indexlaunch/internal/metrics"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/wal"
)

// Config parameterizes a Tracer. The zero value is usable: memory-only
// store, no slow threshold, no head sampling (so only failed, preempted
// and retried jobs are retained).
type Config struct {
	// SlowThreshold returns the current slow-job cutoff in nanoseconds —
	// typically a closure over the live sched_job_latency_ns quantile.
	// A nil function or a non-positive return disables slow retention
	// (an empty histogram yields 0, so warm-up traces are not all "slow").
	SlowThreshold func() int64
	// HeadRate head-samples this fraction of traces (0..1) regardless of
	// outcome, deterministically by trace ID, so a quiet healthy system
	// still retains exemplars.
	HeadRate float64
	// MaxRetained bounds the in-memory retained ring (default 64).
	MaxRetained int
	// MaxSpans bounds one trace's span buffer (default 4096); spans past
	// the cap are dropped and counted in Trace.Truncated.
	MaxSpans int
	// Dir, when non-empty, persists retained traces in a wal segment
	// store rooted there.
	Dir string
	// Fsync is the store's durability policy (wal.SyncInterval default).
	Fsync wal.SyncPolicy
	// SnapshotEvery compacts the store with a ring snapshot every N
	// retained traces (default 16).
	SnapshotEvery int
	// Registry, when non-nil, receives the trace_* metric families.
	Registry *metrics.Registry
}

// Outcome is what the scheduler knows about a finished job at the moment
// the tail-sampling decision is made.
type Outcome struct {
	Failed    bool
	Preempted bool
	Retried   bool
	LatencyNS int64
	Err       string
}

// Trace is one retained job trace: the stored and served record.
type Trace struct {
	// TraceID is the trace identity in hex — the form exemplars and URLs
	// use.
	TraceID string `json:"trace_id"`
	JobID   uint64 `json:"job_id"`
	Tenant  string `json:"tenant,omitempty"`
	// Why names the retention cause: failed, preempted, retried, slow or
	// head.
	Why string `json:"why"`
	// Err carries the job error for failed traces.
	Err     string `json:"err,omitempty"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	// Truncated counts spans dropped over the per-trace cap.
	Truncated int64 `json:"truncated,omitempty"`
	// Spans is the complete span set, root first, sorted by start time.
	// The root is a synthesized "job" stage span covering the whole job.
	Spans []obs.Event `json:"spans"`
}

// LatencyNS returns the root span's duration.
func (t *Trace) LatencyNS() int64 { return t.EndNS - t.StartNS }

// Summary is the listing form of a retained trace.
type Summary struct {
	TraceID string  `json:"trace_id"`
	JobID   uint64  `json:"job_id"`
	Tenant  string  `json:"tenant,omitempty"`
	Why     string  `json:"why"`
	MS      float64 `json:"ms"`
	Spans   int     `json:"spans"`
}

// live is one in-flight job's span buffer.
type live struct {
	jobID   uint64
	tenant  string
	startNS int64
	rootTC  obs.TraceRef
	spans   []obs.Event
	trunc   int64
}

// Tracer buffers spans per trace and applies the tail-sampling policy at
// job finish. A nil *Tracer is the disabled layer: every method is a
// nil-receiver no-op, so sched can thread an optional tracer without
// branching at call sites.
type Tracer struct {
	cfg Config

	mu        sync.Mutex
	inflight  map[uint64]*live // by trace ID
	retained  []*Trace         // ring, oldest first
	byTrace   map[uint64]*Trace
	byJob     map[uint64]*Trace
	log       *wal.Log
	sinceSnap int

	mxRetained *metrics.CounterVec // trace_retained_total{why}
	mxFinished *metrics.Counter    // trace_finished_total
	mxOrphan   *metrics.Counter    // trace_orphan_spans_total
	mxTrunc    *metrics.Counter    // trace_truncated_spans_total
}

// New opens (creating if needed) the tracer and, when cfg.Dir is set,
// recovers previously retained traces from the wal store.
func New(cfg Config) (*Tracer, error) {
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 64
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 4096
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 16
	}
	t := &Tracer{
		cfg:      cfg,
		inflight: map[uint64]*live{},
		byTrace:  map[uint64]*Trace{},
		byJob:    map[uint64]*Trace{},
	}
	if reg := cfg.Registry; reg != nil {
		t.mxRetained = reg.CounterVec("trace_retained_total",
			"Traces retained by the tail sampler, by retention cause.", "why")
		t.mxFinished = reg.Counter("trace_finished_total",
			"Job traces that reached a tail-sampling decision.")
		t.mxOrphan = reg.Counter("trace_orphan_spans_total",
			"Trace-stamped spans arriving for unknown or finished traces.")
		t.mxTrunc = reg.Counter("trace_truncated_spans_total",
			"Spans dropped because a trace hit its per-trace span cap.")
		reg.GaugeFunc("trace_inflight",
			"Jobs currently buffering spans toward a sampling decision.",
			func() int64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return int64(len(t.inflight))
			})
		reg.GaugeFunc("trace_retained",
			"Retained traces currently queryable in the ring.",
			func() int64 {
				t.mu.Lock()
				defer t.mu.Unlock()
				return int64(len(t.retained))
			})
	}
	if cfg.Dir != "" {
		if err := t.openStore(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SetSlowThreshold installs (or replaces) the slow-trace cutoff source —
// the scheduler calls it with a closure over its live job-latency
// quantile, which the tracer cannot know at construction time.
func (t *Tracer) SetSlowThreshold(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cfg.SlowThreshold = fn
	t.mu.Unlock()
}

// Begin registers a job's root span context so subsequent stamped events
// have a buffer to land in. Idempotent per trace: a preempted job's
// re-dispatch keeps its earlier spans.
func (t *Tracer) Begin(tc obs.TraceRef, jobID uint64, tenant string, startNS int64) {
	if t == nil || !tc.Valid() {
		return
	}
	t.mu.Lock()
	if _, ok := t.inflight[tc.Trace]; !ok {
		t.inflight[tc.Trace] = &live{jobID: jobID, tenant: tenant, startNS: startNS, rootTC: tc}
	}
	t.mu.Unlock()
}

// Record buffers one stamped event — the function installed as the obs
// recorder's sink. Events for traces the tracer has never seen (or has
// already decided on) are counted and dropped.
func (t *Tracer) Record(ev obs.Event) {
	if t == nil || ev.Trace == 0 {
		return
	}
	t.mu.Lock()
	l, ok := t.inflight[ev.Trace]
	if !ok {
		t.mu.Unlock()
		t.mxOrphan.Inc()
		return
	}
	if len(l.spans) >= t.cfg.MaxSpans {
		l.trunc++
		t.mu.Unlock()
		t.mxTrunc.Inc()
		return
	}
	l.spans = append(l.spans, ev)
	t.mu.Unlock()
}

// Sink returns the Record method as a recorder sink, or nil for a nil
// tracer (which SetSink treats as "no sink").
func (t *Tracer) Sink() func(obs.Event) {
	if t == nil {
		return nil
	}
	return t.Record
}

// Finish makes the tail-sampling decision for the trace rooted at tc and
// reports whether the trace was retained and why. The synthesized root
// "job" span covers [startNS, endNS]. Decision table, first match wins:
//
//	failed     → retain (job returned an error)
//	preempted  → retain (job was preempted at least once)
//	retried    → retain (job ran more than one attempt)
//	slow       → retain (latency ≥ SlowThreshold(), threshold > 0)
//	head       → retain (deterministic HeadRate draw on the trace ID)
//	(none)     → drop the buffered spans
func (t *Tracer) Finish(tc obs.TraceRef, endNS int64, o Outcome) (retained bool, why string) {
	if t == nil || !tc.Valid() {
		return false, ""
	}
	t.mu.Lock()
	l, ok := t.inflight[tc.Trace]
	if !ok {
		t.mu.Unlock()
		return false, ""
	}
	delete(t.inflight, tc.Trace)
	// Copy the policy knobs under the lock: SetSlowThreshold may replace
	// the threshold source concurrently.
	slowFn, headRate := t.cfg.SlowThreshold, t.cfg.HeadRate
	t.mu.Unlock()
	t.mxFinished.Inc()

	why = decide(tc.Trace, o, slowFn, headRate)
	if why == "" {
		return false, ""
	}

	tr := &Trace{
		TraceID:   strconv.FormatUint(tc.Trace, 16),
		JobID:     l.jobID,
		Tenant:    l.tenant,
		Why:       why,
		Err:       o.Err,
		StartNS:   l.startNS,
		EndNS:     endNS,
		Truncated: l.trunc,
		Spans:     append([]obs.Event{}, l.spans...),
	}
	tr.Spans = append(tr.Spans, obs.Event{
		ID: int64(l.jobID), Stage: obs.StageJob, Task: "job", Tag: "tenant:" + l.tenant,
		Start: l.startNS, Dur: endNS - l.startNS,
		Trace: tc.Trace, Span: tc.Span, Parent: tc.Parent,
	})
	sortSpans(tr.Spans)
	t.mxRetained.With(why).Inc()
	t.retain(tr, true)
	return true, why
}

// Abort discards an in-flight trace without a sampling decision — for
// jobs abandoned at scheduler shutdown, whose traces are noise.
func (t *Tracer) Abort(tc obs.TraceRef) {
	if t == nil || !tc.Valid() {
		return
	}
	t.mu.Lock()
	delete(t.inflight, tc.Trace)
	t.mu.Unlock()
}

// decide applies the decision table. Empty string means drop.
func decide(traceID uint64, o Outcome, slowFn func() int64, headRate float64) string {
	switch {
	case o.Failed:
		return "failed"
	case o.Preempted:
		return "preempted"
	case o.Retried:
		return "retried"
	}
	if slowFn != nil {
		if thr := slowFn(); thr > 0 && o.LatencyNS >= thr {
			return "slow"
		}
	}
	if r := headRate; r > 0 {
		// 53-bit deterministic uniform draw on the trace ID: the same
		// trace is head-sampled on every run of a seeded workload.
		u := float64(obs.Mix64(traceID^0x7261636554726163)>>11) / float64(1<<53)
		if u < r {
			return "head"
		}
	}
	return ""
}

// retain inserts tr into the ring and indexes, evicting the oldest past
// MaxRetained, and (when persist is set and a store is open) appends it
// to the wal, snapshotting the ring every SnapshotEvery retains.
func (t *Tracer) retain(tr *Trace, persist bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retained = append(t.retained, tr)
	if id, err := strconv.ParseUint(tr.TraceID, 16, 64); err == nil {
		t.byTrace[id] = tr
	}
	t.byJob[tr.JobID] = tr
	for len(t.retained) > t.cfg.MaxRetained {
		old := t.retained[0]
		t.retained = t.retained[1:]
		if id, err := strconv.ParseUint(old.TraceID, 16, 64); err == nil && t.byTrace[id] == old {
			delete(t.byTrace, id)
		}
		if t.byJob[old.JobID] == old {
			delete(t.byJob, old.JobID)
		}
	}
	if persist && t.log != nil {
		t.persistLocked(tr)
	}
}

// Get returns a retained trace by hex trace ID or decimal job ID.
func (t *Tracer) Get(key string) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, err := strconv.ParseUint(key, 16, 64); err == nil {
		if tr, ok := t.byTrace[id]; ok {
			return tr, true
		}
	}
	if job, err := strconv.ParseUint(key, 10, 64); err == nil {
		if tr, ok := t.byJob[job]; ok {
			return tr, true
		}
	}
	return nil, false
}

// Recent returns up to n retained traces, newest first.
func (t *Tracer) Recent(n int) []Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.retained) {
		n = len(t.retained)
	}
	out := make([]Summary, 0, n)
	for i := len(t.retained) - 1; i >= 0 && len(out) < n; i-- {
		tr := t.retained[i]
		out = append(out, Summary{
			TraceID: tr.TraceID, JobID: tr.JobID, Tenant: tr.Tenant, Why: tr.Why,
			MS: float64(tr.LatencyNS()) / 1e6, Spans: len(tr.Spans),
		})
	}
	return out
}

// Status is the /statusz recent-traces panel.
type Status struct {
	Inflight int       `json:"inflight"`
	Retained int       `json:"retained"`
	Recent   []Summary `json:"recent,omitempty"`
}

// StatusInfo snapshots the tracer for /statusz; zero value on nil.
func (t *Tracer) StatusInfo() Status {
	if t == nil {
		return Status{}
	}
	t.mu.Lock()
	inflight, retained := len(t.inflight), len(t.retained)
	t.mu.Unlock()
	return Status{Inflight: inflight, Retained: retained, Recent: t.Recent(8)}
}

// Close syncs and closes the store. The tracer stays queryable.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log == nil {
		return nil
	}
	err := t.log.Close()
	t.log = nil
	return err
}

// sortSpans orders spans the way obs snapshots do: start, node, stage —
// with span identity as the final key so concurrent same-instant spans
// serialize deterministically.
func sortSpans(spans []obs.Event) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Span < b.Span
	})
}

// Profile renders a retained trace as an obs.Profile, which is what gives
// /trace its Chrome trace_event export for free.
func (t *Trace) Profile() *obs.Profile {
	p := &obs.Profile{Source: "trace", WallNS: t.EndNS}
	nodes := 1
	for _, ev := range t.Spans {
		if int(ev.Node)+1 > nodes {
			nodes = int(ev.Node) + 1
		}
	}
	p.Nodes = nodes
	p.Events = append(p.Events, t.Spans...)
	return p
}

// marshal is the stored form of one trace record.
func (t *Trace) marshal() ([]byte, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("trace: marshal %s: %w", t.TraceID, err)
	}
	return b, nil
}
