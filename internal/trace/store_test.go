package trace

import (
	"strconv"
	"testing"

	"indexlaunch/internal/obs"
)

// The durable store must rebuild the retained ring — same traces, same
// eviction order — when a Tracer reopens the same directory, which is the
// restart-survival half of the tail-sampling contract.

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	tr := mustNew(t, Config{Dir: dir, MaxRetained: 8})
	for i := uint64(1); i <= 3; i++ {
		tc := obs.NewTraceRef(i)
		feed(t, tr, tc, i)
		if re, _ := tr.Finish(tc, int64(10*i), Outcome{Failed: true, Err: "x"}); !re {
			t.Fatalf("trace %d not retained", i)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustNew(t, Config{Dir: dir, MaxRetained: 8})
	defer re.Close()
	if st := re.StatusInfo(); st.Retained != 3 {
		t.Fatalf("recovered %d traces, want 3", st.Retained)
	}
	for i := uint64(1); i <= 3; i++ {
		got, ok := re.Get(itoa(i))
		if !ok {
			t.Fatalf("job %d trace lost across restart", i)
		}
		if got.Why != "failed" || got.EndNS != int64(10*i) || len(got.Spans) != 4 {
			t.Fatalf("job %d trace mangled across restart: %+v", i, got)
		}
	}
	// New retains keep working against the reopened log.
	tc := obs.NewTraceRef(9)
	re.Begin(tc, 9, "a", 0)
	if re2, _ := re.Finish(tc, 5, Outcome{Preempted: true}); !re2 {
		t.Fatal("post-restart retain failed")
	}
}

func TestStoreSnapshotCompactionPreservesRing(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery 2 with MaxRetained 3: by trace 7 the ring has evicted
	// 1-4 and snapshotted at least twice; recovery must land on exactly
	// {5, 6, 7}.
	tr := mustNew(t, Config{Dir: dir, MaxRetained: 3, SnapshotEvery: 2})
	for i := uint64(1); i <= 7; i++ {
		tc := obs.NewTraceRef(i)
		tr.Begin(tc, i, "a", 0)
		tr.Finish(tc, 10, Outcome{Failed: true})
	}
	stats := tr.StoreStats()
	if stats.Snapshots == 0 {
		t.Fatal("no wal snapshot written")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustNew(t, Config{Dir: dir, MaxRetained: 3, SnapshotEvery: 2})
	defer re.Close()
	if st := re.StatusInfo(); st.Retained != 3 {
		t.Fatalf("recovered %d traces, want 3", st.Retained)
	}
	for i := uint64(5); i <= 7; i++ {
		if _, ok := re.Get(itoa(i)); !ok {
			t.Fatalf("job %d missing after compacted recovery", i)
		}
	}
	if _, ok := re.Get("4"); ok {
		t.Fatal("evicted trace resurrected by recovery")
	}
}

func TestMemoryOnlyStoreStats(t *testing.T) {
	tr := mustNew(t, Config{})
	if s := tr.StoreStats(); s.Appends != 0 || s.Snapshots != 0 {
		t.Fatalf("memory-only tracer reports store stats: %+v", s)
	}
}

func itoa(u uint64) string {
	return strconv.FormatUint(u, 10)
}
