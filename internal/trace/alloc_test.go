package trace

import (
	"testing"

	"indexlaunch/internal/obs"
)

// The disabled-tracing contract, enforced in CI beside the metrics/obs
// zero-alloc gates: with no tracer configured (nil *Tracer, zero TraceRef),
// every hook on the hot path costs one branch and zero allocations.

func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var tr *Tracer
	var zero obs.TraceRef
	ev := obs.Event{Stage: obs.StageExecute, Start: 1, Dur: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		tc := zero.Child(7)
		tr.Begin(tc, 1, "a", 0)
		tr.Record(ev)
		tr.Finish(tc, 3, Outcome{})
		tr.Abort(tc)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

// A live tracer must also ignore untraced events without allocating: the
// sink tee already filters them, but Record itself is reachable.
func TestUntracedRecordAllocatesNothing(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ev := obs.Event{Stage: obs.StageExecute, Start: 1, Dur: 2} // Trace == 0
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(ev)
	})
	if allocs != 0 {
		t.Fatalf("untraced Record allocates %.1f per op, want 0", allocs)
	}
}
