package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"indexlaunch/internal/obs"
)

// Span-tree assembly and rendering: the Parent links stamped on events
// reconstruct the job's cross-layer call tree — job → sched admission →
// per-attempt execution → per-launch pipeline stages → per-point tasks
// and broadcast hops.

// Node is one span with its children, ordered by start time.
type Node struct {
	Ev       obs.Event
	Children []*Node
}

// Tree links spans into their span tree and returns the roots (spans
// whose parent is 0 or absent from the set — absence happens when a
// parent span was ring-dropped or truncated). Roots and children are
// ordered by start time with span identity as the tiebreak, so the tree
// is deterministic for a deterministic span set.
func Tree(spans []obs.Event) []*Node {
	nodes := make(map[uint64]*Node, len(spans))
	ordered := make([]*Node, 0, len(spans))
	for _, ev := range spans {
		n := &Node{Ev: ev}
		ordered = append(ordered, n)
		if ev.Span != 0 {
			// First writer wins on a duplicated span identity; later
			// duplicates still appear in the tree as their parent's
			// children.
			if _, dup := nodes[ev.Span]; !dup {
				nodes[ev.Span] = n
			}
		}
	}
	var roots []*Node
	for _, n := range ordered {
		if p, ok := nodes[n.Ev.Parent]; ok && n.Ev.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].Ev, ns[j].Ev
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Span < b.Span
	})
}

// Shape renders the span tree as a canonical signature string —
// stage names with sorted child shapes, e.g.
// "job(admit,enqueue,issue(logical,distribute,physical(execute)))" —
// the form the golden span-tree tests compare. Sorting children
// lexicographically (not by time) makes the shape a pure function of the
// tree's structure, immune to scheduling jitter.
func Shape(spans []obs.Event) string {
	roots := Tree(spans)
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = shapeOf(r)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func shapeOf(n *Node) string {
	if len(n.Children) == 0 {
		return n.Ev.Stage.String()
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = shapeOf(c)
	}
	sort.Strings(parts)
	return n.Ev.Stage.String() + "(" + strings.Join(parts, ",") + ")"
}

// LaunchShape reduces a trace to launch granularity: one line per
// issue-stage span in start order, "issue:<tag> execute=N", where N
// counts execute-stage descendants. This is the shape the rt/sim parity
// test compares — the two producers agree on launches and per-launch
// execute fan-out even though rt records per-point physical analysis
// while the simulator aggregates per node.
func LaunchShape(spans []obs.Event) string {
	roots := Tree(spans)
	var lines []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Ev.Stage == obs.StageIssue {
			lines = append(lines, fmt.Sprintf("issue:%s execute=%d", n.Ev.Tag, countStage(n, obs.StageExecute)))
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return strings.Join(lines, "\n")
}

func countStage(n *Node, st obs.Stage) int {
	total := 0
	for _, c := range n.Children {
		if c.Ev.Stage == st {
			total++
		}
		total += countStage(c, st)
	}
	return total
}

// Render writes the trace as an indented cross-layer timeline — what
// `idxprof trace` prints. Each line is one span: offset and duration on
// the trace clock, stage, node, and the task/tag/point identity.
func (t *Trace) Render(w io.Writer) error {
	fmt.Fprintf(w, "trace %s  job %d  tenant %q  why=%s  %0.3fms  %d spans",
		t.TraceID, t.JobID, t.Tenant, t.Why, float64(t.LatencyNS())/1e6, len(t.Spans))
	if t.Truncated > 0 {
		fmt.Fprintf(w, "  (%d truncated)", t.Truncated)
	}
	if t.Err != "" {
		fmt.Fprintf(w, "\n  err: %s", t.Err)
	}
	fmt.Fprintln(w)
	var render func(n *Node, depth int) error
	render = func(n *Node, depth int) error {
		ev := n.Ev
		label := ev.Task
		if ev.Tag != "" {
			if label != "" {
				label += " "
			}
			label += ev.Tag
		}
		if ev.Point.Dim > 0 {
			label += " " + ev.Point.String()
		}
		kind := "span"
		if ev.Dur == 0 {
			kind = "mark"
		}
		if _, err := fmt.Fprintf(w, "%10.3fms %9.3fms  %s%-10s n%-3d %s %s\n",
			float64(ev.Start-t.StartNS)/1e6, float64(ev.Dur)/1e6,
			strings.Repeat("  ", depth), ev.Stage, ev.Node, kind, label); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range Tree(t.Spans) {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Stages returns the distinct stage names present in the trace, sorted —
// the quick "did sched, rt and xport all contribute?" check.
func (t *Trace) Stages() []string {
	seen := map[string]bool{}
	for _, ev := range t.Spans {
		seen[ev.Stage.String()] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
