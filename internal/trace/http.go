package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Query API, mounted by the scheduler's HTTP handler beside /jobs and the
// metrics endpoints:
//
//	GET /trace           recent retained traces (JSON summaries)
//	GET /trace/{id}      one trace by hex trace ID or decimal job ID
//	    ?format=chrome   as Chrome trace_event JSON (chrome://tracing)
//	    ?format=text     as the idxprof-style timeline rendering
//
// Traces are retained in a bounded ring, so a 404 means "never retained
// or already evicted", mirroring the job API's retention semantics.

// Handler serves the trace query API. Works on a nil tracer: every trace
// lookup 404s and the listing is empty, so callers can mount it
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, req *http.Request) {
		n, _ := strconv.Atoi(req.URL.Query().Get("n"))
		if n <= 0 {
			n = 32
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		summaries := t.Recent(n)
		if summaries == nil {
			summaries = []Summary{}
		}
		_ = json.NewEncoder(w).Encode(summaries)
	})
	mux.HandleFunc("GET /trace/{id}", func(w http.ResponseWriter, req *http.Request) {
		tr, ok := t.Get(req.PathValue("id"))
		if !ok {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": fmt.Sprintf("trace %q not retained (or evicted)", req.PathValue("id")),
			})
			return
		}
		switch req.URL.Query().Get("format") {
		case "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = tr.Profile().WriteChromeTrace(w)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = tr.Render(w)
		default:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = json.NewEncoder(w).Encode(tr)
		}
	})
	return mux
}
