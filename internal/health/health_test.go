package health

import (
	"strings"
	"testing"
)

func TestDetectorSuspectDeadQuarantineRejoin(t *testing.T) {
	d := New(Options{Nodes: 3, SuspectPhi: 2, DeadPhi: 4, RejoinRounds: 2})
	down := false
	probe := func(node int) bool {
		if node == 1 && down {
			return false
		}
		return true
	}

	// Warm up: everybody answers.
	for i := 0; i < 4; i++ {
		if trs := d.Tick(probe); len(trs) != 0 {
			t.Fatalf("warmup round %d produced transitions %v", i, trs)
		}
	}
	if got := d.State(1); got != Alive {
		t.Fatalf("node 1 state after warmup = %v, want alive", got)
	}

	// Outage: with a mean gap of 1, two missed rounds reach SuspectPhi=2
	// and four reach DeadPhi=4.
	down = true
	var seen []string
	for i := 0; i < 4; i++ {
		for _, tr := range d.Tick(probe) {
			seen = append(seen, tr.String())
		}
	}
	if d.State(1) != Dead {
		t.Fatalf("node 1 state after 4 missed rounds = %v, want dead", d.State(1))
	}
	want := []string{"r6 n1 alive>suspect", "r8 n1 suspect>dead"}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("outage transitions = %v, want %v", seen, want)
	}

	// Recovery: first heartbeat quarantines, RejoinRounds=2 readmits.
	down = false
	trs := d.Tick(probe)
	if len(trs) != 1 || trs[0].To != Quarantined {
		t.Fatalf("first recovered round transitions = %v, want dead>quarantined", trs)
	}
	trs = d.Tick(probe)
	if len(trs) != 1 || trs[0].To != Alive {
		t.Fatalf("second recovered round transitions = %v, want quarantined>alive", trs)
	}
	if c := d.Counts(); c.Alive != 3 || c.Dead != 0 {
		t.Fatalf("counts after rejoin = %+v, want all alive", c)
	}
}

func TestDetectorQuarantineRelapse(t *testing.T) {
	d := New(Options{Nodes: 2, RejoinRounds: 3})
	fail := false
	probe := func(int) bool { return !fail }
	for i := 0; i < 3; i++ {
		d.Tick(probe)
	}
	fail = true
	for i := 0; i < 4; i++ {
		d.Tick(probe)
	}
	if d.State(1) != Dead {
		t.Fatalf("state = %v, want dead", d.State(1))
	}
	fail = false
	d.Tick(probe) // dead > quarantined
	fail = true
	trs := d.Tick(probe)
	if len(trs) != 1 || trs[0].From != Quarantined || trs[0].To != Suspect {
		t.Fatalf("relapse transitions = %v, want quarantined>suspect", trs)
	}
}

// TestDetectorAdaptivity: a node with a history of slow heartbeats (mean
// gap 3) tolerates more missed rounds than a prompt node before suspicion.
func TestDetectorAdaptivity(t *testing.T) {
	// SuspectPhi 4 gives the laggard warmup headroom: before history
	// accrues the mean gap is optimistically 1, so a lower threshold would
	// suspect it during its very first slow cycle.
	d := New(Options{Nodes: 3, SuspectPhi: 4})
	round := 0
	probe := func(node int) bool {
		if node == 1 {
			return true // prompt: answers every round
		}
		return round%3 == 0 // laggard: answers every third round
	}
	for i := 0; i < 24; i++ {
		d.Tick(func(n int) bool { return probe(n) })
		round++
	}
	if d.State(2) != Alive {
		t.Fatalf("laggard was suspected despite its gap history: %v", d.State(2))
	}
	// Now both go silent; the prompt node (mean gap 1) must accrue
	// suspicion faster than the laggard (mean gap ~3).
	silentRounds := 0
	for d.State(1) == Alive {
		d.Tick(func(int) bool { return false })
		silentRounds++
		if silentRounds > 100 {
			t.Fatal("prompt node never suspected")
		}
	}
	if d.State(2) != Alive {
		t.Fatalf("laggard suspected as fast as prompt node (after %d silent rounds)", silentRounds)
	}
}

func TestDetectorDeterministicLog(t *testing.T) {
	run := func() string {
		d := New(Options{Nodes: 5})
		for round := int64(1); round <= 60; round++ {
			d.Tick(func(node int) bool {
				// A fixed bursty pseudo-schedule: node n fails in
				// four-round outage windows staggered by node id.
				return (round/4+int64(node))%3 != 0
			})
		}
		return RenderLog(d.Log())
	}
	first := run()
	if !strings.Contains(first, ">suspect") {
		t.Fatalf("schedule produced no suspects:\n%s", first)
	}
	for i := 0; i < 4; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d log differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestDetectorObserverNeverSuspected(t *testing.T) {
	d := New(Options{Nodes: 4})
	for i := 0; i < 10; i++ {
		d.Tick(func(int) bool { return false })
	}
	if d.State(0) != Alive || d.Phi(0) != 0 {
		t.Fatalf("observer state = %v phi = %v, want alive/0", d.State(0), d.Phi(0))
	}
	c := d.Counts()
	if c.Alive != 1 {
		t.Fatalf("counts = %+v, want exactly the observer alive", c)
	}
	snap := d.Snapshot()
	if snap[0].State != "alive" {
		t.Fatalf("snapshot row 0 = %+v, want alive", snap[0])
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{Alive: 6, Suspect: 1, Dead: 1}
	if got := c.String(); got != "6 alive, 1 suspect, 1 dead" {
		t.Fatalf("Counts.String() = %q", got)
	}
	c.Quarantined = 2
	if got := c.String(); got != "6 alive, 1 suspect, 1 dead, 2 quarantined" {
		t.Fatalf("Counts.String() = %q", got)
	}
}
