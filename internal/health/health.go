// Package health is the runtime's failure detector: a deterministic,
// phi-accrual-style accrual detector over heartbeat probes, shared by the
// real runtime (internal/rt, probing through the message transport) and the
// cluster simulator (internal/sim, probing a modeled outage schedule) so
// the two stacks detect, quarantine and readmit nodes with one state
// machine.
//
// Unlike wall-clock accrual detectors, the detector has no clock of its
// own: time is the heartbeat round number, and rounds advance only when the
// owner calls Tick — in internal/rt that happens at issuance boundaries
// under the issuance lock, so for a fixed seed and chaos plan the whole
// suspect/rejoin transition sequence is a pure function of the program, not
// of goroutine interleaving. The accrual part is the suspicion level: the
// number of rounds since a node's last successful heartbeat, scaled by the
// node's own recent inter-heartbeat gap history, so a node whose probes
// historically straggle (lossy links, long routes) accrues suspicion more
// slowly than one that has always answered promptly.
//
// The state machine:
//
//	        phi >= SuspectPhi          phi >= DeadPhi
//	Alive --------------------> Suspect --------------> Dead
//	  ^                            |  ^                   |
//	  |                 heartbeat  |  | probe fails       | heartbeat
//	  | RejoinRounds consecutive   v  |                   v
//	  +------------------------ Quarantined <-------------+
//	           heartbeats
//
// Suspect and Dead nodes keep being probed — a resumed heartbeat moves them
// to Quarantined, and RejoinRounds consecutive successes readmit them.
package health

import (
	"fmt"
	"strings"
)

// State is one node's position in the detection/recovery state machine.
type State uint8

const (
	// Alive nodes answer probes and hold work.
	Alive State = iota
	// Suspect nodes missed enough heartbeats that the runtime stops
	// assigning work to them; their in-flight tasks are re-mapped.
	Suspect
	// Dead nodes accrued suspicion past DeadPhi while suspect.
	Dead
	// Quarantined nodes resumed heartbeating after being suspect or dead;
	// they are resynced but receive no work until RejoinRounds consecutive
	// heartbeats readmit them.
	Quarantined
)

var stateNames = [...]string{"alive", "suspect", "dead", "quarantined"}

// String renders the state name used in logs and /statusz.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Options tunes the detector. Zero fields take the defaults.
type Options struct {
	// Nodes is the total node count. Node 0 is the observer — the node the
	// probes originate from — and is never probed or suspected.
	Nodes int
	// SuspectPhi is the suspicion level at which an alive node becomes
	// suspect; 0 defaults to 2 (two mean inter-heartbeat gaps missed).
	SuspectPhi float64
	// DeadPhi is the suspicion level at which a suspect node is declared
	// dead; 0 defaults to 4.
	DeadPhi float64
	// Window bounds the per-node gap history the suspicion level is scaled
	// by; 0 defaults to 8.
	Window int
	// RejoinRounds is the number of consecutive successful heartbeats a
	// quarantined node needs to be readmitted; 0 defaults to 2.
	RejoinRounds int
}

const (
	defaultSuspectPhi   = 2
	defaultDeadPhi      = 4
	defaultWindow       = 8
	defaultRejoinRounds = 2
)

func (o Options) withDefaults() Options {
	if o.SuspectPhi <= 0 {
		o.SuspectPhi = defaultSuspectPhi
	}
	if o.DeadPhi <= 0 {
		o.DeadPhi = defaultDeadPhi
	}
	if o.DeadPhi < o.SuspectPhi {
		o.DeadPhi = o.SuspectPhi
	}
	if o.Window <= 0 {
		o.Window = defaultWindow
	}
	if o.RejoinRounds <= 0 {
		o.RejoinRounds = defaultRejoinRounds
	}
	return o
}

// Transition is one observed state change, stamped with the heartbeat round
// it happened in. The rendered form is intentionally canonical — the
// determinism suite compares rendered transition logs byte for byte.
type Transition struct {
	Round int64 `json:"round"`
	Node  int   `json:"node"`
	From  State `json:"from"`
	To    State `json:"to"`
}

// String renders the transition canonically: "r<round> n<node> from>to".
func (tr Transition) String() string {
	return fmt.Sprintf("r%d n%d %s>%s", tr.Round, tr.Node, tr.From, tr.To)
}

// RenderLog renders a transition sequence one line per transition — the
// byte-comparable form of a detector history.
func RenderLog(log []Transition) string {
	var b strings.Builder
	for _, tr := range log {
		b.WriteString(tr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// NodeHealth is one node's row in the live health table (/statusz).
type NodeHealth struct {
	Node  int    `json:"node"`
	State string `json:"state"`
	// Phi is the current suspicion level; 0 for a node whose latest probe
	// succeeded.
	Phi float64 `json:"phi"`
	// LastOK is the round of the node's last successful heartbeat; -1 if it
	// has never answered.
	LastOK int64 `json:"last_ok"`
}

// Counts aggregates the health table for fence diagnostics.
type Counts struct {
	Alive       int `json:"alive"`
	Suspect     int `json:"suspect"`
	Dead        int `json:"dead"`
	Quarantined int `json:"quarantined"`
}

// String renders the counts the way fence errors embed them.
func (c Counts) String() string {
	s := fmt.Sprintf("%d alive, %d suspect, %d dead", c.Alive, c.Suspect, c.Dead)
	if c.Quarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", c.Quarantined)
	}
	return s
}

// nodeState is one probed node's detector state.
type nodeState struct {
	state    State
	lastOK   int64   // round of last successful probe; -1 before the first
	gaps     []int64 // ring of recent inter-success gaps
	gapNext  int
	gapSum   int64
	okStreak int // consecutive successes while quarantined
}

// Detector runs the accrual state machine over heartbeat rounds. It is not
// safe for concurrent use; the owner serializes Tick (internal/rt calls it
// under the issuance lock).
type Detector struct {
	opt   Options
	round int64
	nodes []nodeState
	log   []Transition
}

// New returns a detector for opt.Nodes nodes, all initially alive.
func New(opt Options) *Detector {
	opt = opt.withDefaults()
	if opt.Nodes < 1 {
		opt.Nodes = 1
	}
	d := &Detector{opt: opt, nodes: make([]nodeState, opt.Nodes)}
	for i := range d.nodes {
		d.nodes[i].lastOK = -1
	}
	return d
}

// Options returns the detector's effective (defaulted) options.
func (d *Detector) Options() Options { return d.opt }

// Round returns the number of completed heartbeat rounds.
func (d *Detector) Round() int64 { return d.round }

// meanGap is the node's average inter-success gap, optimistically 1 (a
// heartbeat every round) until history accrues.
func (ns *nodeState) meanGap() float64 {
	if len(ns.gaps) == 0 {
		return 1
	}
	return float64(ns.gapSum) / float64(len(ns.gaps))
}

// phi is the node's suspicion level at round: rounds since the last
// successful heartbeat, in units of the node's mean inter-heartbeat gap. A
// node that has never answered counts from round 0.
func (ns *nodeState) phi(round int64) float64 {
	missed := round - ns.lastOK
	if ns.lastOK < 0 {
		missed = round
	}
	if missed <= 0 {
		return 0
	}
	return float64(missed) / ns.meanGap()
}

// noteOK records a successful probe at round, folding the gap since the
// previous success into the history window.
func (ns *nodeState) noteOK(round int64, window int) {
	gap := int64(1)
	if ns.lastOK >= 0 && round-ns.lastOK > 0 {
		gap = round - ns.lastOK
	}
	if len(ns.gaps) < window {
		ns.gaps = append(ns.gaps, gap)
		ns.gapSum += gap
	} else {
		ns.gapSum += gap - ns.gaps[ns.gapNext]
		ns.gaps[ns.gapNext] = gap
		ns.gapNext = (ns.gapNext + 1) % window
	}
	ns.lastOK = round
}

// Tick runs one heartbeat round: every node except the observer (node 0) is
// probed in node order, suspicion levels are updated, and the resulting
// state transitions are returned in the order they fired (and appended to
// the detector log). The probe function must be deterministic for the
// determinism guarantees to hold; the detector imposes no other contract on
// it.
func (d *Detector) Tick(probe func(node int) bool) []Transition {
	d.round++
	var out []Transition
	move := func(n int, to State) {
		tr := Transition{Round: d.round, Node: n, From: d.nodes[n].state, To: to}
		d.nodes[n].state = to
		d.log = append(d.log, tr)
		out = append(out, tr)
	}
	for n := 1; n < d.opt.Nodes; n++ {
		ns := &d.nodes[n]
		if probe(n) {
			ns.noteOK(d.round, d.opt.Window)
			switch ns.state {
			case Suspect, Dead:
				ns.okStreak = 1
				move(n, Quarantined)
			case Quarantined:
				ns.okStreak++
				if ns.okStreak >= d.opt.RejoinRounds {
					ns.okStreak = 0
					move(n, Alive)
				}
			}
			continue
		}
		phi := ns.phi(d.round)
		switch ns.state {
		case Alive:
			if phi >= d.opt.SuspectPhi {
				move(n, Suspect)
			}
			if ns.state == Suspect && phi >= d.opt.DeadPhi {
				move(n, Dead)
			}
		case Suspect:
			if phi >= d.opt.DeadPhi {
				move(n, Dead)
			}
		case Quarantined:
			// The comeback did not stick: fall back to suspect and let
			// suspicion re-accrue toward Dead.
			ns.okStreak = 0
			move(n, Suspect)
		}
	}
	return out
}

// State returns node's current state; the observer (node 0) and
// out-of-range nodes report Alive.
func (d *Detector) State(node int) State {
	if node <= 0 || node >= len(d.nodes) {
		return Alive
	}
	return d.nodes[node].state
}

// Phi returns node's current suspicion level.
func (d *Detector) Phi(node int) float64 {
	if node <= 0 || node >= len(d.nodes) {
		return 0
	}
	return d.nodes[node].phi(d.round)
}

// Counts aggregates the current state distribution. The observer counts as
// alive.
func (d *Detector) Counts() Counts {
	var c Counts
	c.Alive = 1 // node 0
	for n := 1; n < len(d.nodes); n++ {
		switch d.nodes[n].state {
		case Alive:
			c.Alive++
		case Suspect:
			c.Suspect++
		case Dead:
			c.Dead++
		case Quarantined:
			c.Quarantined++
		}
	}
	return c
}

// Snapshot returns the live health table, one row per node in node order.
func (d *Detector) Snapshot() []NodeHealth {
	out := make([]NodeHealth, len(d.nodes))
	for n := range d.nodes {
		out[n] = NodeHealth{
			Node:   n,
			State:  d.nodes[n].state.String(),
			Phi:    d.Phi(n),
			LastOK: d.nodes[n].lastOK,
		}
		if n == 0 {
			out[n].State = Alive.String()
			out[n].Phi = 0
			out[n].LastOK = d.round
		}
	}
	return out
}

// Log returns a copy of the full transition history.
func (d *Detector) Log() []Transition {
	out := make([]Transition, len(d.log))
	copy(out, d.log)
	return out
}

// DefaultSpecMultiplier scales the execute-latency quantile into the
// straggler-speculation threshold. It lives here so internal/rt's wall-clock
// speculation and internal/sim's cost-model mirror use the same constant.
const DefaultSpecMultiplier = 3.0
