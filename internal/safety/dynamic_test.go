package safety

import (
	"testing"
	"testing/quick"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/projection"
)

func TestDynamicSelfCheckIdentity(t *testing.T) {
	d := domain.Range1(0, 99)
	bounds := domain.Rect1(0, 99)
	r := DynamicSelfCheck(d, bounds, projection.Identity(1))
	if !r.Injective {
		t.Error("identity should be injective")
	}
	if r.Evaluated != 100 {
		t.Errorf("evaluated %d points, want 100", r.Evaluated)
	}
}

func TestDynamicSelfCheckListing2Example(t *testing.T) {
	// The paper's Listing 2: i%3 over [0,5) is not injective.
	d := domain.Range1(0, 4)
	bounds := domain.Rect1(0, 2)
	r := DynamicSelfCheck(d, bounds, projection.Modular1D(1, 0, 3))
	if r.Injective {
		t.Error("i%3 over [0,5) must fail the check")
	}
	// Early exit: the duplicate appears at i=3 (4th evaluation).
	if r.Evaluated != 4 {
		t.Errorf("evaluated %d points, want 4 (early exit)", r.Evaluated)
	}
}

func TestDynamicSelfCheckModularShiftSafe(t *testing.T) {
	// (i+k) mod N over [0,N) is injective — Table 2's modular row.
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 9)
	r := DynamicSelfCheck(d, bounds, projection.Modular1D(1, 7, 10))
	if !r.Injective {
		t.Error("(i+7) mod 10 over [0,10) should be injective")
	}
}

func TestDynamicSelfCheckOutOfBoundsSkipped(t *testing.T) {
	// Functor maps half the domain outside the color bounds; Listing 3
	// skips those values.
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 4)
	r := DynamicSelfCheck(d, bounds, projection.Identity(1))
	if !r.Injective {
		t.Error("in-bounds subset is injective")
	}
	if r.OutOfBounds != 5 {
		t.Errorf("out-of-bounds = %d, want 5", r.OutOfBounds)
	}
}

func TestDynamicSelfCheck2DLinearization(t *testing.T) {
	// A 2-d functor must be linearized over the 2-d color bounds (§4's
	// linearization discussion). The transpose map is injective.
	d := domain.FromRect(domain.Rect2(0, 0, 3, 3))
	bounds := domain.Rect2(0, 0, 3, 3)
	transpose := projection.Func("transpose", 2, 2, func(p domain.Point) domain.Point {
		return domain.Pt2(p.Y(), p.X())
	})
	if r := DynamicSelfCheck(d, bounds, transpose); !r.Injective {
		t.Error("transpose should be injective")
	}
	// Collapsing both coordinates to x is not.
	collapse := projection.Func("collapse", 2, 2, func(p domain.Point) domain.Point {
		return domain.Pt2(p.X(), 0)
	})
	if r := DynamicSelfCheck(d, bounds, collapse); r.Injective {
		t.Error("collapse should conflict")
	}
}

func TestDynamicSelfCheckDiagonalSliceDOM(t *testing.T) {
	// The Soleil-X DOM case (§6.2.3): project a 3-d diagonal slice to the
	// 2-d (x,y) exchange plane. Diagonal slices contain no duplicate (x,y)
	// pairs, so the check passes; a full cube does contain duplicates.
	bounds3 := domain.Rect3(0, 0, 0, 3, 3, 3)
	plane := domain.Rect2(0, 0, 3, 3)
	f := projection.DropTo2D(projection.PlaneXY)
	diag := domain.DiagonalSlice3(bounds3, 4)
	if r := DynamicSelfCheck(diag, plane, f); !r.Injective {
		t.Error("diagonal slice through plane-drop should be injective")
	}
	cube := domain.FromRect(bounds3)
	if r := DynamicSelfCheck(cube, plane, f); r.Injective {
		t.Error("full cube through plane-drop should conflict")
	}
}

func TestDynamicCrossCheckWriteWriteConflict(t *testing.T) {
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 19)
	// Two writes with identical images conflict.
	args := []CrossArg{
		{Functor: projection.Identity(1), Writes: true},
		{Functor: projection.Identity(1), Writes: true},
	}
	if r := DynamicCrossCheck(d, bounds, args); r.Safe {
		t.Error("identical write images must conflict")
	}
	// Two writes with disjoint images are safe.
	args[1] = CrossArg{Functor: projection.Affine1D(1, 10), Writes: true}
	if r := DynamicCrossCheck(d, bounds, args); !r.Safe {
		t.Error("disjoint write images should pass")
	}
}

func TestDynamicCrossCheckWriteReadConflict(t *testing.T) {
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 19)
	// Write image [0,9], read image [5,14]: overlap at 5..9.
	args := []CrossArg{
		{Functor: projection.Identity(1), Writes: true},
		{Functor: projection.Affine1D(1, 5), Writes: false},
	}
	if r := DynamicCrossCheck(d, bounds, args); r.Safe {
		t.Error("write-read overlap must conflict")
	}
	// Read image moved to [10,19]: safe.
	args[1] = CrossArg{Functor: projection.Affine1D(1, 10), Writes: false}
	if r := DynamicCrossCheck(d, bounds, args); !r.Safe {
		t.Error("disjoint write/read images should pass")
	}
}

func TestDynamicCrossCheckReadsMayAlias(t *testing.T) {
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 9)
	// Reads sharing an image are fine as long as no write intersects; a
	// write on a disjoint sub-range coexists.
	args := []CrossArg{
		{Functor: projection.Modular1D(1, 0, 5), Writes: false},
		{Functor: projection.Modular1D(1, 0, 5), Writes: false},
	}
	if r := DynamicCrossCheck(d, bounds, args); !r.Safe {
		t.Error("read-read aliasing should pass")
	}
}

func TestDynamicCrossCheckNonInjectiveWriteCaught(t *testing.T) {
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 9)
	args := []CrossArg{
		{Functor: projection.Modular1D(1, 0, 5), Writes: true},
	}
	if r := DynamicCrossCheck(d, bounds, args); r.Safe {
		t.Error("non-injective write must conflict with itself")
	}
}

func TestDynamicCrossCheckOrderIndependence(t *testing.T) {
	// Read listed before write must still catch the conflict (the
	// algorithm processes writes first regardless of argument order).
	d := domain.Range1(0, 9)
	bounds := domain.Rect1(0, 19)
	args := []CrossArg{
		{Functor: projection.Affine1D(1, 5), Writes: false},
		{Functor: projection.Identity(1), Writes: true},
	}
	if r := DynamicCrossCheck(d, bounds, args); r.Safe {
		t.Error("conflict must be caught regardless of argument order")
	}
}

func TestDynamicCrossCheck2D(t *testing.T) {
	// Multi-dimensional color spaces exercise the generic (linearizing)
	// path. Write the left column, read the right column: disjoint.
	d := domain.FromRect(domain.Rect2(0, 0, 3, 0))
	bounds := domain.Rect2(0, 0, 3, 1)
	left := projection.Func("left", 2, 2, func(p domain.Point) domain.Point {
		return domain.Pt2(p.X(), 0)
	})
	right := projection.Func("right", 2, 2, func(p domain.Point) domain.Point {
		return domain.Pt2(p.X(), 1)
	})
	args := []CrossArg{
		{Functor: left, Writes: true},
		{Functor: right, Writes: false},
	}
	if r := DynamicCrossCheck(d, bounds, args); !r.Safe {
		t.Error("disjoint 2-d columns should pass")
	}
	// Reading the same column conflicts.
	args[1] = CrossArg{Functor: left, Writes: false}
	if r := DynamicCrossCheck(d, bounds, args); r.Safe {
		t.Error("same 2-d column must conflict")
	}
}

func TestDynamicSelfCheckSparseDomainGenericPath(t *testing.T) {
	// Sparse domains bypass every fast path; verify the generic loop still
	// gives exact answers.
	d := domain.FromPoints([]domain.Point{domain.Pt1(0), domain.Pt1(3), domain.Pt1(7)})
	bounds := domain.Rect1(0, 9)
	if r := DynamicSelfCheck(d, bounds, projection.Identity(1)); !r.Injective || r.Evaluated != 3 {
		t.Errorf("sparse identity: injective=%v evaluated=%d", r.Injective, r.Evaluated)
	}
	if r := DynamicSelfCheck(d, bounds, projection.Constant(domain.Pt1(5))); r.Injective {
		t.Error("sparse constant over 3 points must conflict")
	}
}

// Property: the fast specialized paths agree exactly with the generic path
// (forced by wrapping the functor so its description is opaque).
func TestSelfCheckFastPathAgreesWithGenericProperty(t *testing.T) {
	f := func(a int8, b int8, m uint8, span uint8) bool {
		mod := int64(m%16) + 1
		fast := projection.Modular1D(int64(a%5), int64(b), mod)
		// Same function, opaque description: takes the generic loop.
		generic := projection.Func("wrapped", 1, 1, fast.Project)
		d := domain.Range1(0, int64(span%24))
		bounds := domain.Rect1(0, mod-1)
		rf := DynamicSelfCheck(d, bounds, fast)
		rg := DynamicSelfCheck(d, bounds, generic)
		return rf.Injective == rg.Injective && rf.OutOfBounds == rg.OutOfBounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the linear-time cross-check agrees with the naive pairwise
// oracle on random affine argument sets.
func TestCrossCheckAgreesWithPairwiseProperty(t *testing.T) {
	f := func(offsets [4]uint8, writeBits uint8, span uint8) bool {
		d := domain.Range1(0, int64(span%12))
		bounds := domain.Rect1(0, 40)
		args := make([]CrossArg, 0, 4)
		for i, off := range offsets {
			args = append(args, CrossArg{
				Functor: projection.Affine1D(1, int64(off%28)),
				Writes:  writeBits&(1<<uint(i)) != 0,
			})
		}
		fast := DynamicCrossCheck(d, bounds, args)
		slow := PairwiseCrossCheck(d, bounds, args)
		return fast.Safe == slow.Safe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the self-check is sound and complete against brute force.
func TestSelfCheckExactnessProperty(t *testing.T) {
	f := func(a int8, b uint8, m uint8, span uint8) bool {
		mod := int64(m%16) + 1
		fn := projection.Modular1D(int64(a%4), int64(b), mod)
		d := domain.Range1(0, int64(span%24))
		bounds := domain.Rect1(0, mod-1)
		got := DynamicSelfCheck(d, bounds, fn).Injective
		seen := map[int64]bool{}
		want := true
		d.Each(func(p domain.Point) bool {
			v := fn.Project(p).X()
			if seen[v] {
				want = false
				return false
			}
			seen[v] = true
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
