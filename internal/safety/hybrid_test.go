package safety

import (
	"strings"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

func lineTree(t *testing.T, n int64, parts int) (*region.Tree, *region.Partition) {
	t.Helper()
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("line", domain.Range1(0, n-1), fs)
	p, err := tree.PartitionEqual(tree.Root(), "blocks", parts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, p
}

func haloPartition(t *testing.T) *region.Partition {
	t.Helper()
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("grid", domain.FromRect(domain.Rect2(0, 0, 7, 7)), fs)
	p, err := tree.PartitionHalo2D(tree.Root(), "halo", 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeListing1FirstLoop(t *testing.T) {
	// for i = 0, N do foo(p[i]) end — identity functor over a disjoint
	// partition is trivially safe even with writes, resolved statically.
	_, p := lineTree(t, 100, 10)
	d := domain.Range1(0, 9)
	res := Analyze(d, []Arg{{Partition: p, Functor: projection.Identity(1), Priv: privilege.ReadWrite}}, Options{})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
	if res.Args[0].Method != MethodStatic {
		t.Errorf("method = %v, want static", res.Args[0].Method)
	}
	if res.DynamicEvaluations != 0 {
		t.Errorf("dynamic evaluations = %d, want 0", res.DynamicEvaluations)
	}
}

func TestAnalyzeListing2Rejected(t *testing.T) {
	// foo(p[i], q[i%3]) with writes(q) over [0,5): the paper's walkthrough
	// concludes this is ineligible.
	_, p := lineTree(t, 100, 10)
	_, q := lineTree(t, 30, 3)
	d := domain.Range1(0, 4)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read},
		{Partition: q, Functor: projection.Modular1D(1, 0, 3), Priv: privilege.Write},
	}, Options{})
	if res.Safe {
		t.Fatal("Listing 2 example must be rejected")
	}
	if !strings.Contains(res.Reason, "argument 1") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestAnalyzeReadOnlyAlwaysSafe(t *testing.T) {
	// Reads through an aliased partition with a non-injective functor are
	// still safe (self-check passes on privilege).
	halo := haloPartition(t)
	d := domain.FromRect(domain.Rect2(0, 0, 1, 1))
	res := Analyze(d, []Arg{
		{Partition: halo, Functor: projection.Constant(domain.Pt2(0, 0)), Priv: privilege.Read},
	}, Options{})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
	if res.Args[0].Method != MethodPrivilege {
		t.Errorf("method = %v", res.Args[0].Method)
	}
}

func TestAnalyzeWriteThroughAliasedPartitionRejected(t *testing.T) {
	halo := haloPartition(t)
	d := domain.FromRect(domain.Rect2(0, 0, 1, 1))
	res := Analyze(d, []Arg{
		{Partition: halo, Functor: projection.Identity(2), Priv: privilege.Write},
	}, Options{})
	if res.Safe {
		t.Fatal("write through aliased partition must be rejected")
	}
}

func TestAnalyzeReductionSelfCheckPasses(t *testing.T) {
	// Reductions pass the self-check even with a non-injective functor
	// (multiple tasks reducing into the same sub-collection commute).
	_, p := lineTree(t, 30, 3)
	d := domain.Range1(0, 4)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Modular1D(1, 0, 3), Priv: privilege.Reduce, RedOp: privilege.OpSumF64},
	}, Options{})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
}

func TestAnalyzeDynamicFallback(t *testing.T) {
	// A quadratic functor over a small domain: static says Unknown, the
	// dynamic check proves injectivity.
	_, p := lineTree(t, 1000, 100)
	d := domain.Range1(0, 8)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Quadratic1D(1, 1, 0), Priv: privilege.Write},
	}, Options{})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
	if res.Args[0].Method != MethodDynamic {
		t.Errorf("method = %v, want dynamic", res.Args[0].Method)
	}
	if res.DynamicEvaluations == 0 {
		t.Error("expected dynamic evaluations")
	}
}

func TestAnalyzeDisableDynamic(t *testing.T) {
	_, p := lineTree(t, 1000, 100)
	d := domain.Range1(0, 8)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Quadratic1D(1, 1, 0), Priv: privilege.Write},
	}, Options{DisableDynamic: true})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
	if res.Args[0].Method != MethodSkipped {
		t.Errorf("method = %v, want skipped", res.Args[0].Method)
	}
	if res.DynamicEvaluations != 0 {
		t.Error("no dynamic evaluations when disabled")
	}
}

func TestAnalyzeCrossCheckSamePartition(t *testing.T) {
	// Two arguments on one disjoint partition, one write + one read, with
	// shifted functors: requires the dynamic cross-check.
	_, p := lineTree(t, 200, 20)
	d := domain.Range1(0, 9)
	// write p[i], read p[i+10]: disjoint images → safe.
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write},
		{Partition: p, Functor: projection.Affine1D(1, 10), Priv: privilege.Read},
	}, Options{})
	if !res.Safe {
		t.Fatalf("unsafe: %s", res.Reason)
	}
	if res.CrossChecks != 1 {
		t.Errorf("cross checks = %d, want 1", res.CrossChecks)
	}
	// write p[i], read p[i+1]: overlapping images → unsafe.
	res = Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write},
		{Partition: p, Functor: projection.Affine1D(1, 1), Priv: privilege.Read},
	}, Options{})
	if res.Safe {
		t.Fatal("overlapping images must be rejected")
	}
}

func TestAnalyzeCrossCheckAllReadsSkipped(t *testing.T) {
	_, p := lineTree(t, 100, 10)
	d := domain.Range1(0, 9)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read},
		{Partition: p, Functor: projection.Affine1D(1, 1), Priv: privilege.Read},
	}, Options{})
	if !res.Safe || res.CrossChecks != 0 {
		t.Errorf("all-read group should skip cross-check: safe=%v checks=%d", res.Safe, res.CrossChecks)
	}
}

func TestAnalyzeCrossCheckSameOpReductions(t *testing.T) {
	_, p := lineTree(t, 100, 10)
	d := domain.Range1(0, 9)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Reduce, RedOp: privilege.OpSumF64},
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Reduce, RedOp: privilege.OpSumF64},
	}, Options{})
	if !res.Safe {
		t.Fatalf("same-op reductions should commute: %s", res.Reason)
	}
	// Different operators must not.
	res = Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Reduce, RedOp: privilege.OpSumF64},
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Reduce, RedOp: privilege.OpProdF64},
	}, Options{})
	if res.Safe {
		t.Fatal("mixed-op reductions on the same image must be rejected")
	}
}

func TestAnalyzeDistinctCollectionsSafe(t *testing.T) {
	_, p := lineTree(t, 100, 10)
	_, q := lineTree(t, 100, 10)
	d := domain.Range1(0, 9)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write},
		{Partition: q, Functor: projection.Identity(1), Priv: privilege.Write},
	}, Options{})
	if !res.Safe {
		t.Fatalf("distinct collections: %s", res.Reason)
	}
}

func TestAnalyzeDifferentPartitionsSameTreeRejected(t *testing.T) {
	tree, p := lineTree(t, 100, 10)
	q, err := tree.PartitionEqual(tree.Root(), "other", 5)
	if err != nil {
		t.Fatal(err)
	}
	d := domain.Range1(0, 4)
	res := Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Write},
		{Partition: q, Functor: projection.Identity(1), Priv: privilege.Read},
	}, Options{})
	if res.Safe {
		t.Fatal("interfering args through different partitions of one collection must be rejected")
	}
	// But read-read through different partitions is fine.
	res = Analyze(d, []Arg{
		{Partition: p, Functor: projection.Identity(1), Priv: privilege.Read},
		{Partition: q, Functor: projection.Identity(1), Priv: privilege.Read},
	}, Options{})
	if !res.Safe {
		t.Fatalf("read-read: %s", res.Reason)
	}
}

func TestAnalyzeDOMSweepCase(t *testing.T) {
	// End-to-end DOM shape: write through a 2-d plane partition with the
	// 3-d → 2-d drop functor over a diagonal slice. Static: unknown;
	// dynamic: safe.
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "flux", Kind: region.F64})
	plane := region.MustNewTree("plane", domain.FromRect(domain.Rect2(0, 0, 3, 3)), fs)
	pp, err := plane.PartitionBlock2D(plane.Root(), "cells", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	diag := domain.DiagonalSlice3(domain.Rect3(0, 0, 0, 3, 3, 3), 4)
	res := Analyze(diag, []Arg{
		{Partition: pp, Functor: projection.DropTo2D(projection.PlaneXY), Priv: privilege.Write},
	}, Options{})
	if !res.Safe {
		t.Fatalf("DOM sweep projection should pass dynamically: %s", res.Reason)
	}
	if res.Args[0].Method != MethodDynamic {
		t.Errorf("method = %v, want dynamic", res.Args[0].Method)
	}
}
