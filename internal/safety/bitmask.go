// Package safety implements the index-launch safety analysis of paper §3–§4:
// per-argument self-checks, cross-checks between arguments sharing a
// partition, and the hybrid static/dynamic design in which trivial
// projection functors are resolved statically and everything else falls back
// to the precise dynamic bitmask check of Listing 3.
package safety

// bitmask is a dense bit set over linearized partition color indices. The
// dynamic check allocates one mask of |P| bits per partition (the O(|P|)
// space/init term in the paper's complexity analysis).
type bitmask struct {
	words []uint64
}

func newBitmask(n int64) *bitmask {
	return &bitmask{words: make([]uint64, (n+63)/64)}
}

// testAndSet sets bit i and reports whether it was already set.
func (m *bitmask) testAndSet(i int64) bool {
	w, b := i>>6, uint(i&63)
	old := m.words[w]
	m.words[w] = old | (1 << b)
	return old&(1<<b) != 0
}

// test reports whether bit i is set.
func (m *bitmask) test(i int64) bool {
	return m.words[i>>6]&(1<<uint(i&63)) != 0
}

// reset clears every bit, allowing mask reuse across rounds.
func (m *bitmask) reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}
