package safety

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

// Arg is one collection argument of a prospective index launch: the
// ⟨partition, projection functor⟩ pair plus the privilege the task declares
// and the fields it touches.
type Arg struct {
	Partition *region.Partition
	Functor   projection.Functor
	Priv      privilege.Privilege
	RedOp     privilege.OpID // meaningful only when Priv is Reduce
	// Fields restricts the access to specific fields; arguments with
	// disjoint field sets never interfere (a stencil reading `in` through
	// an aliased halo partition while writing `out` through tiles is
	// safe). An empty Fields means "all fields" and interferes with
	// everything on the same collection.
	Fields []region.FieldID
}

func fieldsOverlap(a, b Arg) bool {
	if len(a.Fields) == 0 || len(b.Fields) == 0 {
		return true
	}
	for _, fa := range a.Fields {
		for _, fb := range b.Fields {
			if fa == fb {
				return true
			}
		}
	}
	return false
}

// Method records how an argument's self-check was resolved.
type Method uint8

// Self-check resolution methods.
const (
	// MethodPrivilege: resolved by privilege alone (read or reduce).
	MethodPrivilege Method = iota
	// MethodStatic: resolved by the static functor classifier.
	MethodStatic
	// MethodDynamic: resolved by the dynamic bitmask check.
	MethodDynamic
	// MethodSkipped: dynamic check was required but disabled by options.
	MethodSkipped
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodPrivilege:
		return "privilege"
	case MethodStatic:
		return "static"
	case MethodDynamic:
		return "dynamic"
	case MethodSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// ArgReport describes how one argument's self-check was decided.
type ArgReport struct {
	Index  int
	Method Method
	Safe   bool
	Detail string
}

// Options tune the hybrid analysis.
type Options struct {
	// DisableDynamic elides all dynamic checks (the paper's production
	// mode: "this check can be disabled (if desired) for production runs").
	// Arguments that would need a dynamic check are reported with
	// MethodSkipped and assumed safe; correct execution of a valid program
	// does not depend on the check.
	DisableDynamic bool
	// ForceDynamic skips the static classifier and runs every check
	// dynamically; used by benchmarks to time the dynamic path.
	ForceDynamic bool
}

// Result is the outcome of the hybrid safety analysis of one launch.
type Result struct {
	// Safe is true when every self-check and cross-check passed (or was
	// explicitly skipped via DisableDynamic).
	Safe bool
	// Reason describes the first failure when Safe is false.
	Reason string
	// Args holds one report per argument.
	Args []ArgReport
	// DynamicEvaluations counts projection-functor evaluations performed
	// by dynamic checks (0 when everything resolved statically).
	DynamicEvaluations int64
	// CrossChecks counts partition groups that required a cross-check.
	CrossChecks int
}

// Analyze performs the full hybrid safety analysis of paper §3–§4 for an
// index launch over domain d with the given arguments. It applies, in order:
//
//  1. Per-argument self-checks — read/reduce privileges pass outright;
//     write privileges require a disjoint partition and an injective
//     functor, established statically when possible and dynamically
//     otherwise.
//  2. Cross-checks — for each pair of arguments, both-read / both-same-
//     reduction passes; distinct collections pass; a shared disjoint
//     partition triggers the linear-time multi-argument image-disjointness
//     check; anything else is conservatively unsafe.
func Analyze(d domain.Domain, args []Arg, opts Options) Result {
	res := Result{Safe: true}

	// Self-checks.
	for i, a := range args {
		rep := ArgReport{Index: i, Safe: true}
		switch {
		case !a.Priv.IsWrite():
			rep.Method = MethodPrivilege
			rep.Detail = a.Priv.String()
		case a.Priv == privilege.Reduce:
			// Reductions commute within a launch; self-check passes on
			// privilege, but the argument still participates in
			// cross-checks as a write.
			rep.Method = MethodPrivilege
			rep.Detail = "reduction"
		case !a.Partition.Disjoint():
			rep.Method = MethodStatic
			rep.Safe = false
			rep.Detail = fmt.Sprintf("write through aliased partition %s", a.Partition)
		default:
			rep = selfCheck(i, d, a, opts, &res)
		}
		res.Args = append(res.Args, rep)
		if !rep.Safe && res.Safe {
			res.Safe = false
			res.Reason = fmt.Sprintf("argument %d: %s", i, rep.Detail)
		}
	}
	if !res.Safe {
		return res
	}

	// Cross-checks: group arguments by partition, then by field (arguments
	// on disjoint fields cannot interfere); groups with at least one write
	// and more than one argument need the image-disjointness check.
	groups := map[*region.Partition][]int{}
	for i, a := range args {
		groups[a.Partition] = append(groups[a.Partition], i)
	}
	for part, idxs := range groups {
		if len(idxs) < 2 {
			continue
		}
		for _, cls := range fieldClasses(idxs, args) {
			if len(cls) < 2 {
				continue
			}
			if ok, reason := crossCheckGroup(d, part, cls, args, opts, &res); !ok {
				res.Safe = false
				res.Reason = reason
				return res
			}
		}
	}

	// Arguments on different partitions: safe when the collections are
	// distinct trees (assumed disjoint collections) or neither writes; a
	// write against a different partition of the same collection cannot be
	// proven safe at partition granularity.
	for i := 0; i < len(args); i++ {
		for j := i + 1; j < len(args); j++ {
			ai, aj := args[i], args[j]
			if ai.Partition == aj.Partition {
				continue // handled by the group cross-check
			}
			if !privilege.Interferes(ai.Priv, ai.RedOp, aj.Priv, aj.RedOp) {
				continue
			}
			if ai.Partition.Parent.Tree != aj.Partition.Parent.Tree {
				continue // distinct collections are disjoint
			}
			if !fieldsOverlap(ai, aj) {
				continue // disjoint fields cannot interfere
			}
			res.Safe = false
			res.Reason = fmt.Sprintf(
				"arguments %d and %d interfere through different partitions (%s, %s) of collection %q",
				i, j, ai.Partition, aj.Partition, ai.Partition.Parent.Tree.Name)
			return res
		}
	}
	return res
}

func selfCheck(i int, d domain.Domain, a Arg, opts Options, res *Result) ArgReport {
	rep := ArgReport{Index: i, Safe: true}
	if !opts.ForceDynamic {
		switch projection.StaticInjective(a.Functor, d) {
		case projection.Injective:
			rep.Method = MethodStatic
			rep.Detail = fmt.Sprintf("functor %s statically injective", a.Functor.Name())
			return rep
		case projection.NotInjective:
			rep.Method = MethodStatic
			rep.Safe = false
			rep.Detail = fmt.Sprintf("functor %s statically non-injective over %v", a.Functor.Name(), d)
			return rep
		}
	}
	if opts.DisableDynamic {
		rep.Method = MethodSkipped
		rep.Detail = "dynamic check disabled"
		return rep
	}
	r := DynamicSelfCheck(d, a.Partition.ColorSpace.Bounds(), a.Functor)
	res.DynamicEvaluations += r.Evaluated
	rep.Method = MethodDynamic
	rep.Safe = r.Injective
	if !r.Injective {
		rep.Detail = fmt.Sprintf("functor %s dynamically non-injective over %v", a.Functor.Name(), d)
	} else {
		rep.Detail = fmt.Sprintf("functor %s dynamically injective (%d points)", a.Functor.Name(), r.Evaluated)
	}
	return rep
}

// fieldClasses partitions a same-partition argument group into classes of
// arguments whose field sets are transitively connected; arguments in
// different classes touch disjoint fields and need no mutual check.
func fieldClasses(idxs []int, args []Arg) [][]int {
	var classes [][]int
	for _, i := range idxs {
		placed := -1
		for ci := range classes {
			overlaps := false
			for _, j := range classes[ci] {
				if fieldsOverlap(args[i], args[j]) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				continue
			}
			if placed == -1 {
				classes[ci] = append(classes[ci], i)
				placed = ci
			} else {
				// i bridges two classes: merge.
				classes[placed] = append(classes[placed], classes[ci]...)
				classes[ci] = nil
			}
		}
		if placed == -1 {
			classes = append(classes, []int{i})
		}
	}
	out := classes[:0]
	for _, c := range classes {
		if len(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func crossCheckGroup(d domain.Domain, part *region.Partition, idxs []int, args []Arg, opts Options, res *Result) (bool, string) {
	hasWrite := false
	var redOps []privilege.OpID
	for _, i := range idxs {
		if args[i].Priv.IsWrite() {
			hasWrite = true
		}
		if args[i].Priv == privilege.Reduce {
			redOps = append(redOps, args[i].RedOp)
		}
	}
	if !hasWrite {
		return true, "" // all reads: no cross interference possible
	}
	// All-same-operator reductions commute without an image check.
	if len(redOps) == len(idxs) {
		same := true
		for _, op := range redOps[1:] {
			if op != redOps[0] {
				same = false
			}
		}
		if same {
			return true, ""
		}
	}
	if !part.Disjoint() {
		return false, fmt.Sprintf("cross-check on aliased partition %s with writes", part)
	}
	if opts.DisableDynamic {
		return true, ""
	}
	cross := make([]CrossArg, 0, len(idxs))
	for _, i := range idxs {
		cross = append(cross, CrossArg{Functor: args[i].Functor, Writes: args[i].Priv.IsWrite()})
	}
	r := DynamicCrossCheck(d, part.ColorSpace.Bounds(), cross)
	res.DynamicEvaluations += r.Evaluated
	res.CrossChecks++
	if !r.Safe {
		return false, fmt.Sprintf("projection-functor images conflict on partition %s", part)
	}
	return true, ""
}
