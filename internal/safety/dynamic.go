package safety

import (
	"indexlaunch/internal/domain"
	"indexlaunch/internal/projection"
)

// SelfCheckResult reports the outcome of a dynamic self-check.
type SelfCheckResult struct {
	// Injective is true when no two launch points selected the same color.
	Injective bool
	// Evaluated is the number of functor evaluations performed (early exit
	// on the first conflict stops the scan, as in Listing 3).
	Evaluated int64
	// OutOfBounds counts functor values falling outside the color bounds;
	// such values are skipped by the check, mirroring Listing 3's bounds
	// test.
	OutOfBounds int64
}

// DynamicSelfCheck is the paper's Listing 3: it decides, exactly, whether
// the projection functor f is injective over launch domain d by linearizing
// each projected color within colorBounds and test-and-setting a bitmask.
// Cost is O(|D| + |P|) time and O(|P|) space, where |P| is the color-space
// volume. The check is sound and complete for injectivity.
func DynamicSelfCheck(d domain.Domain, colorBounds domain.Rect, f projection.Functor) SelfCheckResult {
	mask := newBitmask(colorBounds.Volume())
	return selfCheckWithMask(d, colorBounds, f, mask)
}

func selfCheckWithMask(d domain.Domain, colorBounds domain.Rect, f projection.Functor, mask *bitmask) SelfCheckResult {
	// Specialized loops for the trivial functor shapes over dense 1-d
	// domains: the compiler of §4 emits the check inline, so a production
	// implementation evaluates classified functors without per-point
	// dispatch. The generic path below handles everything else.
	if res, ok := selfCheckFast(d, colorBounds, f, mask); ok {
		return res
	}
	res := SelfCheckResult{Injective: true}
	if !d.Sparse() && d.Dim() == 1 && colorBounds.Dim() == 1 {
		// Dense 1-d loop with opaque functor: skip the generic domain
		// iterator but keep the per-point functor call.
		lo, hi := d.Bounds().Lo.X(), d.Bounds().Hi.X()
		cLo, cHi := colorBounds.Lo.X(), colorBounds.Hi.X()
		var evaluated, oob int64
		p := domain.Point{Dim: 1}
		for i := lo; i <= hi; i++ {
			evaluated++
			p.C[0] = i
			value := f.Project(p)
			if value.Dim != 1 || value.C[0] < cLo || value.C[0] > cHi {
				oob++
				continue
			}
			if mask.testAndSet(value.C[0] - cLo) {
				res.Injective = false
				break
			}
		}
		res.Evaluated, res.OutOfBounds = evaluated, oob
		return res
	}
	d.Each(func(p domain.Point) bool {
		res.Evaluated++
		value := f.Project(p)
		if !colorBounds.Contains(value) {
			res.OutOfBounds++
			return true
		}
		idx := colorBounds.Index(value)
		if mask.testAndSet(idx) {
			res.Injective = false
			return false // early exit on first conflict
		}
		return true
	})
	return res
}

// selfCheckFast runs the check with inlined functor evaluation when the
// domain and color space are dense 1-d ranges and the functor's static
// description is constant, identity, affine or modular.
func selfCheckFast(d domain.Domain, colorBounds domain.Rect, f projection.Functor, mask *bitmask) (SelfCheckResult, bool) {
	if d.Sparse() || d.Dim() != 1 || colorBounds.Dim() != 1 {
		return SelfCheckResult{}, false
	}
	desc := f.Describe()
	var a, b, m int64
	switch desc.Kind {
	case projection.KindIdentity:
		a, b = 1, 0
	case projection.KindConstant:
		a, b = 0, f.Project(domain.Pt1(0)).X()
	case projection.KindAffine:
		if desc.InDim != 1 || desc.OutDim != 1 {
			return SelfCheckResult{}, false
		}
		a, b = desc.A[0][0], desc.B[0]
	case projection.KindModular:
		a, b, m = desc.MulA, desc.MulB, desc.Mod
	default:
		return SelfCheckResult{}, false
	}
	lo, hi := d.Bounds().Lo.X(), d.Bounds().Hi.X()
	cLo, cHi := colorBounds.Lo.X(), colorBounds.Hi.X()
	res := SelfCheckResult{Injective: true}
	for i := lo; i <= hi; i++ {
		res.Evaluated++
		v := a*i + b
		if m != 0 {
			v %= m
			if v < 0 {
				v += m
			}
		}
		if v < cLo || v > cHi {
			res.OutOfBounds++
			continue
		}
		if mask.testAndSet(v - cLo) {
			res.Injective = false
			return res, true
		}
	}
	return res, true
}

// CrossArg is one argument of a multi-argument cross-check on a shared
// partition: its projection functor and whether the task writes (or
// reduces — reductions count as writes, §4) through it.
type CrossArg struct {
	Functor projection.Functor
	Writes  bool
}

// CrossCheckResult reports the outcome of a dynamic cross-check.
type CrossCheckResult struct {
	// Safe is true when no write image intersects any other argument's
	// image (write-write and write-read conflicts are both caught).
	Safe bool
	// Evaluated is the total number of functor evaluations performed.
	Evaluated int64
}

// DynamicCrossCheck verifies, in linear time, that the images of multiple
// projection functors on one shared disjoint partition do not conflict:
// writes must be exclusive against everything, reads may share with reads.
//
// Per §4, a single bitmask serves all arguments: write/reduce arguments are
// processed first and set mask bits; read-only arguments are processed after
// and only test bits. Each write argument must itself be injective, which
// the same scan detects. The combined cost is O(n·|D| + |P|) for n arguments
// against the naive pairwise O(n²·|D|) image comparison.
func DynamicCrossCheck(d domain.Domain, colorBounds domain.Rect, args []CrossArg) CrossCheckResult {
	mask := newBitmask(colorBounds.Volume())
	res := CrossCheckResult{Safe: true}

	// Pass 1: write and reduce arguments set the mask; a repeat hit is a
	// write-write conflict (within or across arguments).
	for _, a := range args {
		if !a.Writes {
			continue
		}
		if !crossScan(d, colorBounds, a.Functor, mask, true, &res) {
			res.Safe = false
			return res
		}
	}

	// Pass 2: read-only arguments only test the mask (reads may alias other
	// reads, so they never set bits).
	for _, a := range args {
		if a.Writes {
			continue
		}
		if !crossScan(d, colorBounds, a.Functor, mask, false, &res) {
			res.Safe = false
			return res
		}
	}
	return res
}

// crossScan runs one argument's pass of the cross-check; set selects
// whether hits set the mask (writes) or only probe it (reads). It returns
// false on the first conflict. Dense 1-d domains with classifiable functors
// take the inlined path.
func crossScan(d domain.Domain, colorBounds domain.Rect, f projection.Functor, mask *bitmask, set bool, res *CrossCheckResult) bool {
	if !d.Sparse() && d.Dim() == 1 && colorBounds.Dim() == 1 {
		desc := f.Describe()
		var a, b, m int64
		fast := true
		switch desc.Kind {
		case projection.KindIdentity:
			a, b = 1, 0
		case projection.KindConstant:
			a, b = 0, f.Project(domain.Pt1(0)).X()
		case projection.KindAffine:
			if desc.InDim == 1 && desc.OutDim == 1 {
				a, b = desc.A[0][0], desc.B[0]
			} else {
				fast = false
			}
		case projection.KindModular:
			a, b, m = desc.MulA, desc.MulB, desc.Mod
		default:
			fast = false
		}
		if fast {
			lo, hi := d.Bounds().Lo.X(), d.Bounds().Hi.X()
			cLo, cHi := colorBounds.Lo.X(), colorBounds.Hi.X()
			for i := lo; i <= hi; i++ {
				res.Evaluated++
				v := a*i + b
				if m != 0 {
					v %= m
					if v < 0 {
						v += m
					}
				}
				if v < cLo || v > cHi {
					continue
				}
				if set {
					if mask.testAndSet(v - cLo) {
						return false
					}
				} else if mask.test(v - cLo) {
					return false
				}
			}
			return true
		}
	}
	ok := true
	d.Each(func(p domain.Point) bool {
		res.Evaluated++
		value := f.Project(p)
		if !colorBounds.Contains(value) {
			return true
		}
		idx := colorBounds.Index(value)
		if set {
			if mask.testAndSet(idx) {
				ok = false
				return false
			}
			return true
		}
		if mask.test(idx) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// PairwiseCrossCheck is the naive O(n²·|D|) baseline the paper's linear-time
// algorithm replaces: it materializes each argument's image and intersects
// every write image with every other image. Retained for the ablation
// benchmark and as a differential-testing oracle for DynamicCrossCheck.
func PairwiseCrossCheck(d domain.Domain, colorBounds domain.Rect, args []CrossArg) CrossCheckResult {
	res := CrossCheckResult{Safe: true}
	images := make([]map[int64]int64, len(args)) // linearized color -> hit count
	for i, a := range args {
		img := make(map[int64]int64)
		d.Each(func(p domain.Point) bool {
			res.Evaluated++
			value := a.Functor.Project(p)
			if colorBounds.Contains(value) {
				img[colorBounds.Index(value)]++
			}
			return true
		})
		images[i] = img
	}
	for i, a := range args {
		if !a.Writes {
			continue
		}
		// A write argument must itself be injective...
		for _, hits := range images[i] {
			if hits > 1 {
				res.Safe = false
				return res
			}
		}
		// ...and disjoint from every other argument's image.
		for j, b := range images {
			if j == i {
				continue
			}
			for idx := range images[i] {
				if _, clash := b[idx]; clash {
					res.Safe = false
					return res
				}
			}
		}
	}
	return res
}
