package domain

import (
	"testing"
	"testing/quick"
)

func TestPointConstructors(t *testing.T) {
	cases := []struct {
		p       Point
		dim     int
		x, y, z int64
	}{
		{Pt1(7), 1, 7, 0, 0},
		{Pt2(3, -4), 2, 3, -4, 0},
		{Pt3(1, 2, 3), 3, 1, 2, 3},
		{PtN(9, 8), 2, 9, 8, 0},
	}
	for _, c := range cases {
		if c.p.Dim != c.dim {
			t.Errorf("%v: dim = %d, want %d", c.p, c.p.Dim, c.dim)
		}
		if c.p.X() != c.x || c.p.Y() != c.y || c.p.Z() != c.z {
			t.Errorf("%v: coords = (%d,%d,%d), want (%d,%d,%d)",
				c.p, c.p.X(), c.p.Y(), c.p.Z(), c.x, c.y, c.z)
		}
	}
}

func TestPtNPanics(t *testing.T) {
	for _, coords := range [][]int64{{}, {1, 2, 3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PtN(%v) did not panic", coords)
				}
			}()
			PtN(coords...)
		}()
	}
}

func TestPointArithmetic(t *testing.T) {
	a, b := Pt3(1, 2, 3), Pt3(10, 20, 30)
	if got := a.Add(b); !got.Eq(Pt3(11, 22, 33)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Eq(Pt3(9, 18, 27)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-2); !got.Eq(Pt3(-2, -4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Sum(); got != 6 {
		t.Errorf("Sum = %d", got)
	}
}

func TestPointAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched dims did not panic")
		}
	}()
	Pt1(1).Add(Pt2(1, 2))
}

func TestPointLessTotalOrder(t *testing.T) {
	ordered := []Point{Pt1(5), Pt2(0, 0), Pt2(0, 1), Pt2(1, -5), Pt3(0, 0, 0)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Less(ordered[j])
			want := i < j
			if got != want {
				t.Errorf("Less(%v, %v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestPointString(t *testing.T) {
	if s := Pt3(1, -2, 3).String(); s != "<1,-2,3>" {
		t.Errorf("String = %q", s)
	}
	if s := Pt1(42).String(); s != "<42>" {
		t.Errorf("String = %q", s)
	}
}

// Property: Add and Sub are inverses.
func TestPointAddSubInverseProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int32) bool {
		a := Pt3(int64(ax), int64(ay), int64(az))
		b := Pt3(int64(bx), int64(by), int64(bz))
		return a.Add(b).Sub(b).Eq(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Less is antisymmetric and Eq-consistent.
func TestPointLessAntisymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Pt2(int64(ax), int64(ay))
		b := Pt2(int64(bx), int64(by))
		if a.Eq(b) {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
