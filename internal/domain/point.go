// Package domain provides the index-space geometry used throughout the
// library: N-dimensional points, rectangles, and domains (dense or sparse
// sets of points). Launch domains, partition color spaces, and region index
// spaces are all expressed as domains.
//
// Dimensionality is bounded by MaxDim (3), matching the structured grids,
// unstructured graphs, and discrete-ordinates sweeps exercised by the paper.
// Points are small value types; no package function retains references to
// caller-owned memory.
package domain

import (
	"fmt"
	"strings"
)

// MaxDim is the maximum supported dimensionality of points and domains.
const MaxDim = 3

// Point is an N-dimensional integer coordinate with 1 <= Dim <= MaxDim.
// The zero value is a 0-dimensional point and is only valid as a sentinel.
type Point struct {
	C   [MaxDim]int64 // coordinates; entries at index >= Dim are zero
	Dim int
}

// Pt1 returns a 1-dimensional point.
func Pt1(x int64) Point { return Point{C: [MaxDim]int64{x}, Dim: 1} }

// Pt2 returns a 2-dimensional point.
func Pt2(x, y int64) Point { return Point{C: [MaxDim]int64{x, y}, Dim: 2} }

// Pt3 returns a 3-dimensional point.
func Pt3(x, y, z int64) Point { return Point{C: [MaxDim]int64{x, y, z}, Dim: 3} }

// PtN returns a point with the given coordinates. It panics if the number of
// coordinates is zero or exceeds MaxDim.
func PtN(coords ...int64) Point {
	if len(coords) == 0 || len(coords) > MaxDim {
		panic(fmt.Sprintf("domain: PtN with %d coordinates (want 1..%d)", len(coords), MaxDim))
	}
	var p Point
	p.Dim = len(coords)
	copy(p.C[:], coords)
	return p
}

// X returns the first coordinate.
func (p Point) X() int64 { return p.C[0] }

// Y returns the second coordinate (zero for 1-d points).
func (p Point) Y() int64 { return p.C[1] }

// Z returns the third coordinate (zero for 1- and 2-d points).
func (p Point) Z() int64 { return p.C[2] }

// Eq reports whether p and q have the same dimensionality and coordinates.
func (p Point) Eq(q Point) bool {
	return p.Dim == q.Dim && p.C == q.C
}

// Less imposes a total lexicographic order on points of equal dimension.
// Points of differing dimension order by dimension first.
func (p Point) Less(q Point) bool {
	if p.Dim != q.Dim {
		return p.Dim < q.Dim
	}
	for i := 0; i < p.Dim; i++ {
		if p.C[i] != q.C[i] {
			return p.C[i] < q.C[i]
		}
	}
	return false
}

// Add returns the coordinate-wise sum p + q. It panics on dimension mismatch.
func (p Point) Add(q Point) Point {
	p.checkDim(q)
	for i := 0; i < p.Dim; i++ {
		p.C[i] += q.C[i]
	}
	return p
}

// Sub returns the coordinate-wise difference p - q. It panics on dimension
// mismatch.
func (p Point) Sub(q Point) Point {
	p.checkDim(q)
	for i := 0; i < p.Dim; i++ {
		p.C[i] -= q.C[i]
	}
	return p
}

// Scale returns p with every coordinate multiplied by k.
func (p Point) Scale(k int64) Point {
	for i := 0; i < p.Dim; i++ {
		p.C[i] *= k
	}
	return p
}

// Sum returns the sum of the coordinates of p. Diagonal slices of 3-d sweep
// domains are the sets of points with a fixed coordinate sum.
func (p Point) Sum() int64 {
	var s int64
	for i := 0; i < p.Dim; i++ {
		s += p.C[i]
	}
	return s
}

func (p Point) checkDim(q Point) {
	if p.Dim != q.Dim {
		panic(fmt.Sprintf("domain: dimension mismatch %d vs %d", p.Dim, q.Dim))
	}
}

// String renders the point as "<x,y,z>" with Dim coordinates.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < p.Dim; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p.C[i])
	}
	b.WriteByte('>')
	return b.String()
}
