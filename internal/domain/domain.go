package domain

import (
	"fmt"
	"sort"
)

// Domain is a finite set of N-dimensional points. Dense domains are backed by
// a single rectangle; sparse domains by an explicit, deduplicated, sorted
// point list (used for e.g. the diagonal-slice launch domains of
// discrete-ordinates sweeps). A Domain value is immutable after construction.
type Domain struct {
	rect   Rect
	points []Point // sorted, deduplicated; non-nil iff sparse
	sparse bool
}

// FromRect returns the dense domain covering exactly the points of r.
func FromRect(r Rect) Domain { return Domain{rect: r} }

// FromPoints returns the sparse domain holding the given points. Duplicates
// are removed. All points must share a dimensionality. An empty input yields
// an empty 1-d domain.
func FromPoints(pts []Point) Domain {
	if len(pts) == 0 {
		return Domain{rect: Rect1(0, -1)}
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	out := sorted[:1]
	bounds := Rect{Lo: sorted[0], Hi: sorted[0]}
	for _, p := range sorted[1:] {
		if p.Dim != sorted[0].Dim {
			panic(fmt.Sprintf("domain: mixed dimensionality %d and %d in FromPoints", sorted[0].Dim, p.Dim))
		}
		if !p.Eq(out[len(out)-1]) {
			out = append(out, p)
			bounds = bounds.Union(Rect{Lo: p, Hi: p})
		}
	}
	return Domain{rect: bounds, points: out, sparse: true}
}

// Range1 returns the dense 1-d domain [lo, hi].
func Range1(lo, hi int64) Domain { return FromRect(Rect1(lo, hi)) }

// DiagonalSlice3 returns the sparse 3-d domain of points inside bounds whose
// coordinate sum equals diag. These are the wavefront launch domains of a
// corner-to-corner sweep (paper §6.2.3): as the sweep advances, diag ranges
// over [loSum, hiSum] and each slice is launched as one index launch.
func DiagonalSlice3(bounds Rect, diag int64) Domain {
	if bounds.Dim() != 3 {
		panic("domain: DiagonalSlice3 requires a 3-d bounds rect")
	}
	var pts []Point
	for x := bounds.Lo.C[0]; x <= bounds.Hi.C[0]; x++ {
		for y := bounds.Lo.C[1]; y <= bounds.Hi.C[1]; y++ {
			z := diag - x - y
			if z >= bounds.Lo.C[2] && z <= bounds.Hi.C[2] {
				pts = append(pts, Pt3(x, y, z))
			}
		}
	}
	return FromPoints(pts)
}

// Dim returns the dimensionality of the domain's points.
func (d Domain) Dim() int { return d.rect.Dim() }

// Sparse reports whether the domain is represented by an explicit point list.
func (d Domain) Sparse() bool { return d.sparse }

// Bounds returns the tight bounding rectangle of the domain.
func (d Domain) Bounds() Rect { return d.rect }

// Volume returns the number of points in the domain.
func (d Domain) Volume() int64 {
	if d.sparse {
		return int64(len(d.points))
	}
	return d.rect.Volume()
}

// Empty reports whether the domain contains no points.
func (d Domain) Empty() bool { return d.Volume() == 0 }

// Contains reports whether p is a member of the domain.
func (d Domain) Contains(p Point) bool {
	if !d.sparse {
		return d.rect.Contains(p)
	}
	if p.Dim != d.Dim() {
		return false
	}
	i := sort.Search(len(d.points), func(i int) bool { return !d.points[i].Less(p) })
	return i < len(d.points) && d.points[i].Eq(p)
}

// PointAt returns the i-th point of the domain in row-major (dense) or sorted
// (sparse) order. It panics if i is out of range.
func (d Domain) PointAt(i int64) Point {
	if d.sparse {
		if i < 0 || i >= int64(len(d.points)) {
			panic(fmt.Sprintf("domain: index %d outside sparse domain of %d points", i, len(d.points)))
		}
		return d.points[i]
	}
	return d.rect.PointAt(i)
}

// Each calls fn for every point of the domain in canonical order. Iteration
// stops early if fn returns false.
func (d Domain) Each(fn func(Point) bool) {
	if d.sparse {
		for _, p := range d.points {
			if !fn(p) {
				return
			}
		}
		return
	}
	d.rect.Each(fn)
}

// Points returns a freshly allocated slice of all points in canonical order.
func (d Domain) Points() []Point {
	out := make([]Point, 0, d.Volume())
	d.Each(func(p Point) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Eq reports whether two domains contain exactly the same point set.
func (d Domain) Eq(e Domain) bool {
	if d.Volume() != e.Volume() || d.Dim() != e.Dim() {
		return false
	}
	if !d.sparse && !e.sparse {
		return d.rect == e.rect
	}
	eq := true
	i := int64(0)
	d.Each(func(p Point) bool {
		if !p.Eq(e.PointAt(i)) {
			eq = false
			return false
		}
		i++
		return true
	})
	return eq
}

// Overlaps reports whether the domains share at least one point.
func (d Domain) Overlaps(e Domain) bool {
	if d.Dim() != e.Dim() || !d.rect.Overlaps(e.rect) {
		return false
	}
	if !d.sparse && !e.sparse {
		return true // bounding rects are exact for dense domains
	}
	// Iterate the smaller, probe the larger.
	small, big := d, e
	if small.Volume() > big.Volume() {
		small, big = big, small
	}
	found := false
	small.Each(func(p Point) bool {
		if big.Contains(p) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Intersect returns the domain of points contained in both d and e.
func (d Domain) Intersect(e Domain) Domain {
	if !d.sparse && !e.sparse {
		return FromRect(d.rect.Intersect(e.rect))
	}
	small, big := d, e
	if small.Volume() > big.Volume() {
		small, big = big, small
	}
	var pts []Point
	small.Each(func(p Point) bool {
		if big.Contains(p) {
			pts = append(pts, p)
		}
		return true
	})
	return FromPoints(pts)
}

// Split partitions the domain into n contiguous chunks of near-equal volume,
// in canonical order. Chunks may be empty when n exceeds the volume. Split is
// the building block for slicing functors in non-DCR distribution.
func (d Domain) Split(n int) []Domain {
	if n <= 0 {
		panic("domain: Split with non-positive chunk count")
	}
	vol := d.Volume()
	out := make([]Domain, 0, n)
	if !d.sparse && d.Dim() == 1 {
		// Keep dense 1-d chunks dense.
		lo := d.rect.Lo.C[0]
		for i := 0; i < n; i++ {
			chunk := vol / int64(n)
			if int64(i) < vol%int64(n) {
				chunk++
			}
			out = append(out, Range1(lo, lo+chunk-1))
			lo += chunk
		}
		return out
	}
	pts := d.Points()
	start := int64(0)
	for i := 0; i < n; i++ {
		chunk := vol / int64(n)
		if int64(i) < vol%int64(n) {
			chunk++
		}
		out = append(out, FromPoints(pts[start:start+chunk]))
		start += chunk
	}
	return out
}

// String renders dense domains as their rect and sparse domains as a point
// count plus bounds.
func (d Domain) String() string {
	if d.sparse {
		return fmt.Sprintf("sparse(%d pts in %v)", len(d.points), d.rect)
	}
	return d.rect.String()
}
