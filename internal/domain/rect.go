package domain

import "fmt"

// Rect is a dense N-dimensional rectangle with inclusive bounds Lo..Hi.
// A rectangle is empty when any Hi coordinate is below the corresponding Lo.
type Rect struct {
	Lo, Hi Point
}

// Rect1 returns the 1-d rectangle [lo, hi].
func Rect1(lo, hi int64) Rect { return Rect{Lo: Pt1(lo), Hi: Pt1(hi)} }

// Rect2 returns the 2-d rectangle [lox,hix] x [loy,hiy].
func Rect2(lox, loy, hix, hiy int64) Rect {
	return Rect{Lo: Pt2(lox, loy), Hi: Pt2(hix, hiy)}
}

// Rect3 returns the 3-d rectangle with the given inclusive corners.
func Rect3(lox, loy, loz, hix, hiy, hiz int64) Rect {
	return Rect{Lo: Pt3(lox, loy, loz), Hi: Pt3(hix, hiy, hiz)}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return r.Lo.Dim }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool {
	for i := 0; i < r.Dim(); i++ {
		if r.Hi.C[i] < r.Lo.C[i] {
			return true
		}
	}
	return r.Dim() == 0
}

// Volume returns the number of points contained in the rectangle.
func (r Rect) Volume() int64 {
	if r.Empty() {
		return 0
	}
	v := int64(1)
	for i := 0; i < r.Dim(); i++ {
		v *= r.Hi.C[i] - r.Lo.C[i] + 1
	}
	return v
}

// Contains reports whether p lies inside r. Points of the wrong dimension are
// never contained.
func (r Rect) Contains(p Point) bool {
	if p.Dim != r.Dim() {
		return false
	}
	for i := 0; i < p.Dim; i++ {
		if p.C[i] < r.Lo.C[i] || p.C[i] > r.Hi.C[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether every point of s lies inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Contains(s.Lo) && r.Contains(s.Hi)
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool {
	if r.Dim() != s.Dim() || r.Empty() || s.Empty() {
		return false
	}
	for i := 0; i < r.Dim(); i++ {
		if r.Hi.C[i] < s.Lo.C[i] || s.Hi.C[i] < r.Lo.C[i] {
			return false
		}
	}
	return true
}

// Intersect returns the largest rectangle contained in both r and s.
// The result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	if r.Dim() != s.Dim() {
		panic(fmt.Sprintf("domain: intersect of rects with dims %d and %d", r.Dim(), s.Dim()))
	}
	out := Rect{Lo: Point{Dim: r.Dim()}, Hi: Point{Dim: r.Dim()}}
	for i := 0; i < r.Dim(); i++ {
		out.Lo.C[i] = max64(r.Lo.C[i], s.Lo.C[i])
		out.Hi.C[i] = min64(r.Hi.C[i], s.Hi.C[i])
	}
	return out
}

// Index returns the row-major linearization of p within r, in [0, Volume).
// It panics if p is not contained in r; linearization of out-of-bounds points
// is a program error that must not be silently wrapped.
func (r Rect) Index(p Point) int64 {
	if !r.Contains(p) {
		panic(fmt.Sprintf("domain: point %v outside rect %v", p, r))
	}
	var idx int64
	for i := 0; i < r.Dim(); i++ {
		extent := r.Hi.C[i] - r.Lo.C[i] + 1
		idx = idx*extent + (p.C[i] - r.Lo.C[i])
	}
	return idx
}

// PointAt inverts Index: it returns the point at row-major offset idx within
// r. It panics if idx is outside [0, Volume).
func (r Rect) PointAt(idx int64) Point {
	if idx < 0 || idx >= r.Volume() {
		panic(fmt.Sprintf("domain: index %d outside rect %v of volume %d", idx, r, r.Volume()))
	}
	p := Point{Dim: r.Dim()}
	for i := r.Dim() - 1; i >= 0; i-- {
		extent := r.Hi.C[i] - r.Lo.C[i] + 1
		p.C[i] = r.Lo.C[i] + idx%extent
		idx /= extent
	}
	return p
}

// Union returns the smallest rectangle containing both r and s (their
// bounding box). Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	if r.Dim() != s.Dim() {
		panic(fmt.Sprintf("domain: union of rects with dims %d and %d", r.Dim(), s.Dim()))
	}
	out := Rect{Lo: Point{Dim: r.Dim()}, Hi: Point{Dim: r.Dim()}}
	for i := 0; i < r.Dim(); i++ {
		out.Lo.C[i] = min64(r.Lo.C[i], s.Lo.C[i])
		out.Hi.C[i] = max64(r.Hi.C[i], s.Hi.C[i])
	}
	return out
}

// Each calls fn for every point of r in row-major order. Iteration stops if
// fn returns false.
func (r Rect) Each(fn func(Point) bool) {
	if r.Empty() {
		return
	}
	p := r.Lo
	for {
		if !fn(p) {
			return
		}
		// Row-major increment: bump the last coordinate, carrying leftward.
		i := r.Dim() - 1
		for ; i >= 0; i-- {
			p.C[i]++
			if p.C[i] <= r.Hi.C[i] {
				break
			}
			p.C[i] = r.Lo.C[i]
		}
		if i < 0 {
			return
		}
	}
}

// String renders the rectangle as "[<lo>..<hi>]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v..%v]", r.Lo, r.Hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
