package domain

import (
	"testing"
	"testing/quick"
)

func TestDenseDomainBasics(t *testing.T) {
	d := Range1(0, 9)
	if d.Sparse() {
		t.Error("Range1 should be dense")
	}
	if d.Volume() != 10 || d.Empty() {
		t.Errorf("Volume = %d", d.Volume())
	}
	if !d.Contains(Pt1(0)) || !d.Contains(Pt1(9)) || d.Contains(Pt1(10)) {
		t.Error("containment wrong")
	}
	if got := d.PointAt(3); !got.Eq(Pt1(3)) {
		t.Errorf("PointAt(3) = %v", got)
	}
}

func TestFromPointsDedupAndSort(t *testing.T) {
	d := FromPoints([]Point{Pt2(2, 2), Pt2(0, 1), Pt2(2, 2), Pt2(0, 0)})
	if !d.Sparse() {
		t.Fatal("FromPoints should be sparse")
	}
	if d.Volume() != 3 {
		t.Fatalf("Volume = %d, want 3 (dedup)", d.Volume())
	}
	want := []Point{Pt2(0, 0), Pt2(0, 1), Pt2(2, 2)}
	for i, w := range want {
		if got := d.PointAt(int64(i)); !got.Eq(w) {
			t.Errorf("PointAt(%d) = %v, want %v", i, got, w)
		}
	}
	if got, want := d.Bounds(), Rect2(0, 0, 2, 2); got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
}

func TestFromPointsEmpty(t *testing.T) {
	d := FromPoints(nil)
	if !d.Empty() || d.Volume() != 0 {
		t.Errorf("empty FromPoints: Volume = %d", d.Volume())
	}
}

func TestFromPointsMixedDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mixed-dim FromPoints did not panic")
		}
	}()
	FromPoints([]Point{Pt1(0), Pt2(0, 0)})
}

func TestSparseContains(t *testing.T) {
	d := FromPoints([]Point{Pt1(1), Pt1(5), Pt1(9)})
	for _, x := range []int64{1, 5, 9} {
		if !d.Contains(Pt1(x)) {
			t.Errorf("should contain %d", x)
		}
	}
	for _, x := range []int64{0, 2, 4, 6, 10} {
		if d.Contains(Pt1(x)) {
			t.Errorf("should not contain %d", x)
		}
	}
}

func TestDiagonalSlice3(t *testing.T) {
	bounds := Rect3(0, 0, 0, 2, 2, 2)
	// Slice at diag 0 is just the origin; at diag 3 it is the anti-diagonal
	// plane; at diag 6 the far corner.
	if d := DiagonalSlice3(bounds, 0); d.Volume() != 1 || !d.Contains(Pt3(0, 0, 0)) {
		t.Errorf("diag 0: %v", d)
	}
	if d := DiagonalSlice3(bounds, 6); d.Volume() != 1 || !d.Contains(Pt3(2, 2, 2)) {
		t.Errorf("diag 6: %v", d)
	}
	d := DiagonalSlice3(bounds, 3)
	if d.Volume() != 7 {
		t.Errorf("diag 3 volume = %d, want 7", d.Volume())
	}
	d.Each(func(p Point) bool {
		if p.Sum() != 3 {
			t.Errorf("point %v has sum %d, want 3", p, p.Sum())
		}
		return true
	})
	// Total across all diagonals covers the cube exactly once.
	var total int64
	for diag := int64(0); diag <= 6; diag++ {
		total += DiagonalSlice3(bounds, diag).Volume()
	}
	if total != bounds.Volume() {
		t.Errorf("diagonal slices cover %d points, want %d", total, bounds.Volume())
	}
}

func TestDomainEq(t *testing.T) {
	a := Range1(0, 4)
	b := FromPoints([]Point{Pt1(0), Pt1(1), Pt1(2), Pt1(3), Pt1(4)})
	if !a.Eq(b) || !b.Eq(a) {
		t.Error("dense and equivalent sparse domains should be Eq")
	}
	c := FromPoints([]Point{Pt1(0), Pt1(1), Pt1(2), Pt1(3), Pt1(5)})
	if a.Eq(c) {
		t.Error("different point sets should not be Eq")
	}
}

func TestDomainOverlapsIntersect(t *testing.T) {
	a := Range1(0, 9)
	b := FromPoints([]Point{Pt1(9), Pt1(20)})
	if !a.Overlaps(b) {
		t.Error("should overlap at 9")
	}
	got := a.Intersect(b)
	if got.Volume() != 1 || !got.Contains(Pt1(9)) {
		t.Errorf("Intersect = %v", got)
	}
	c := FromPoints([]Point{Pt1(15)})
	if a.Overlaps(c) {
		t.Error("should not overlap")
	}
}

func TestDomainSplitDense1D(t *testing.T) {
	d := Range1(0, 9)
	chunks := d.Split(3)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	var total int64
	for i, c := range chunks {
		if c.Sparse() {
			t.Errorf("chunk %d should stay dense", i)
		}
		total += c.Volume()
	}
	if total != 10 {
		t.Errorf("chunks cover %d points, want 10", total)
	}
	// Volumes must be near-equal: 4,3,3.
	if chunks[0].Volume() != 4 || chunks[1].Volume() != 3 || chunks[2].Volume() != 3 {
		t.Errorf("chunk volumes = %d,%d,%d", chunks[0].Volume(), chunks[1].Volume(), chunks[2].Volume())
	}
	// Chunks must be disjoint and ordered.
	if chunks[0].Overlaps(chunks[1]) || chunks[1].Overlaps(chunks[2]) {
		t.Error("chunks overlap")
	}
}

func TestDomainSplitSparse(t *testing.T) {
	d := DiagonalSlice3(Rect3(0, 0, 0, 3, 3, 3), 4)
	chunks := d.Split(4)
	var total int64
	for _, c := range chunks {
		total += c.Volume()
	}
	if total != d.Volume() {
		t.Errorf("chunks cover %d, want %d", total, d.Volume())
	}
	for i := 0; i < len(chunks); i++ {
		for j := i + 1; j < len(chunks); j++ {
			if chunks[i].Overlaps(chunks[j]) {
				t.Errorf("chunks %d and %d overlap", i, j)
			}
		}
	}
}

func TestDomainPoints(t *testing.T) {
	d := FromRect(Rect2(0, 0, 1, 1))
	pts := d.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	want := []Point{Pt2(0, 0), Pt2(0, 1), Pt2(1, 0), Pt2(1, 1)}
	for i := range want {
		if !pts[i].Eq(want[i]) {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

// Property: Split never loses or duplicates points.
func TestDomainSplitPartitionProperty(t *testing.T) {
	f := func(size uint8, nChunks uint8) bool {
		n := int(nChunks%8) + 1
		d := Range1(0, int64(size%100))
		chunks := d.Split(n)
		var total int64
		for _, c := range chunks {
			total += c.Volume()
		}
		if total != d.Volume() {
			return false
		}
		for i := 0; i < len(chunks); i++ {
			for j := i + 1; j < len(chunks); j++ {
				if chunks[i].Overlaps(chunks[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sparse and dense representations agree on membership.
func TestDomainSparseDenseAgreementProperty(t *testing.T) {
	f := func(lo int8, span uint8, probe int8) bool {
		hi := int64(lo) + int64(span%20)
		dense := Range1(int64(lo), hi)
		sparse := FromPoints(dense.Points())
		p := Pt1(int64(probe))
		return dense.Contains(p) == sparse.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
