package domain

import (
	"testing"
	"testing/quick"
)

func TestRectVolumeAndEmpty(t *testing.T) {
	cases := []struct {
		r   Rect
		vol int64
	}{
		{Rect1(0, 9), 10},
		{Rect1(5, 5), 1},
		{Rect1(5, 4), 0},
		{Rect2(0, 0, 3, 4), 20},
		{Rect3(0, 0, 0, 1, 1, 1), 8},
		{Rect2(0, 5, 10, 4), 0},
	}
	for _, c := range cases {
		if got := c.r.Volume(); got != c.vol {
			t.Errorf("%v: Volume = %d, want %d", c.r, got, c.vol)
		}
		if got := c.r.Empty(); got != (c.vol == 0) {
			t.Errorf("%v: Empty = %v, want %v", c.r, got, c.vol == 0)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect2(1, 1, 3, 3)
	if !r.Contains(Pt2(1, 1)) || !r.Contains(Pt2(3, 3)) || !r.Contains(Pt2(2, 2)) {
		t.Error("corner/interior points should be contained")
	}
	if r.Contains(Pt2(0, 2)) || r.Contains(Pt2(2, 4)) {
		t.Error("outside points should not be contained")
	}
	if r.Contains(Pt1(2)) {
		t.Error("wrong-dimension point should not be contained")
	}
}

func TestRectOverlapsIntersect(t *testing.T) {
	a := Rect2(0, 0, 5, 5)
	b := Rect2(4, 4, 9, 9)
	c := Rect2(6, 0, 9, 5)
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("a should not overlap c")
	}
	got := a.Intersect(b)
	if want := Rect2(4, 4, 5, 5); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestRectIndexPointAtRoundTrip(t *testing.T) {
	r := Rect3(-1, 2, 0, 1, 4, 2)
	seen := make(map[int64]bool)
	r.Each(func(p Point) bool {
		idx := r.Index(p)
		if idx < 0 || idx >= r.Volume() {
			t.Fatalf("Index(%v) = %d out of range", p, idx)
		}
		if seen[idx] {
			t.Fatalf("Index(%v) = %d duplicated", p, idx)
		}
		seen[idx] = true
		if got := r.PointAt(idx); !got.Eq(p) {
			t.Fatalf("PointAt(%d) = %v, want %v", idx, got, p)
		}
		return true
	})
	if int64(len(seen)) != r.Volume() {
		t.Errorf("iterated %d points, want %d", len(seen), r.Volume())
	}
}

func TestRectIndexRowMajorOrder(t *testing.T) {
	r := Rect2(0, 0, 1, 2)
	want := []Point{Pt2(0, 0), Pt2(0, 1), Pt2(0, 2), Pt2(1, 0), Pt2(1, 1), Pt2(1, 2)}
	for i, p := range want {
		if got := r.Index(p); got != int64(i) {
			t.Errorf("Index(%v) = %d, want %d", p, got, i)
		}
	}
}

func TestRectIndexPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Index outside rect did not panic")
		}
	}()
	Rect1(0, 4).Index(Pt1(5))
}

func TestRectEachEarlyStop(t *testing.T) {
	r := Rect1(0, 99)
	n := 0
	r.Each(func(Point) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d points, want 5", n)
	}
}

func TestRectUnion(t *testing.T) {
	a, b := Rect2(0, 0, 1, 1), Rect2(3, 5, 4, 6)
	if got, want := a.Union(b), Rect2(0, 0, 4, 6); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	empty := Rect2(1, 1, 0, 0)
	if got := empty.Union(a); got != a {
		t.Errorf("empty.Union(a) = %v, want %v", got, a)
	}
	if got := a.Union(empty); got != a {
		t.Errorf("a.Union(empty) = %v, want %v", got, a)
	}
}

// Property: Index is a bijection [rect points] -> [0, Volume).
func TestRectIndexBijectionProperty(t *testing.T) {
	f := func(lox, loy int16, w, h uint8, off uint16) bool {
		r := Rect2(int64(lox), int64(loy), int64(lox)+int64(w%16), int64(loy)+int64(h%16))
		idx := int64(off) % r.Volume()
		return r.Index(r.PointAt(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both operands and symmetric.
func TestRectIntersectContainmentProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		a := Rect1(min64(int64(a1), int64(a2)), max64(int64(a1), int64(a2)))
		b := Rect1(min64(int64(b1), int64(b2)), max64(int64(b1), int64(b2)))
		i := a.Intersect(b)
		j := b.Intersect(a)
		if i != j {
			return false
		}
		if i.Empty() {
			return !a.Overlaps(b)
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
