package soleil

import (
	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

// App binds the mini-Soleil tasks to a runtime.
type App struct {
	S  *Soleil
	RT *rt.Runtime

	fluidTask    core.TaskID
	particleTask core.TaskID
	initFaceTask core.TaskID
	sweepTask    core.TaskID

	// tileLinearize maps a 3-d tile coordinate to its row-major rank — the
	// particle block color. A dimension-reducing affine functor the static
	// analysis cannot resolve; the dynamic check proves it injective.
	tileLinearize projection.Functor
}

// NewApp registers the tasks.
func NewApp(s *Soleil, r *rt.Runtime) *App {
	a := &App{S: s, RT: r}
	a.fluidTask = r.MustRegisterTask("soleil.fluid", a.fluid)
	a.particleTask = r.MustRegisterTask("soleil.particles", a.particles)
	a.initFaceTask = r.MustRegisterTask("soleil.init_face", a.initFace)
	a.sweepTask = r.MustRegisterTask("soleil.sweep", a.sweep)

	var m [domain.MaxDim][domain.MaxDim]int64
	m[0][0] = int64(s.Params.TilesY) * int64(s.Params.TilesZ)
	m[0][1] = int64(s.Params.TilesZ)
	m[0][2] = 1
	a.tileLinearize = projection.Affine(m, [domain.MaxDim]int64{}, 3, 1)
	return a
}

// fluidArgs encodes which field pair a fluid launch reads/writes.
type fluidArgs struct{ From, To region.FieldID }

// Step issues one full iteration: fluid (2 launches), particles (1), and
// one DOM sweep per octant (3 face-init launches plus one launch per
// wavefront).
func (a *App) Step() error {
	s := a.S
	id3 := projection.Identity(3)

	// Fluid ping-pong: Temp -> Temp2 -> Temp.
	for _, fa := range []fluidArgs{{FieldTemp, FieldTemp2}, {FieldTemp2, FieldTemp}} {
		l := core.MustForall("fluid", a.fluidTask, s.TileGrid,
			core.Requirement{Partition: s.Tiles, Functor: id3, Priv: privilege.Write,
				Fields: []region.FieldID{fa.To}},
			core.Requirement{Partition: s.Halos, Functor: id3, Priv: privilege.Read,
				Fields: []region.FieldID{fa.From}},
		)
		l.Args = []byte{byte(fa.From), byte(fa.To)}
		if _, err := a.RT.ExecuteIndex(l); err != nil {
			return err
		}
	}

	// Particles: tile ensembles couple to their tile's temperature.
	pl := core.MustForall("particles", a.particleTask, s.TileGrid,
		core.Requirement{Partition: s.PartBlocks, Functor: a.tileLinearize, Priv: privilege.ReadWrite,
			Fields: []region.FieldID{FieldPTemp}},
		core.Requirement{Partition: s.Tiles, Functor: id3, Priv: privilege.Read,
			Fields: []region.FieldID{FieldTemp}},
	)
	if _, err := a.RT.ExecuteIndex(pl); err != nil {
		return err
	}

	// DOM: sweep each octant corner-to-corner across the tile grid.
	for oi, oct := range Octants(s.Params.Octants) {
		if err := a.sweepOctant(oi, oct); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) sweepOctant(oi int, oct Octant) error {
	s := a.S
	id2 := projection.Identity(2)

	// Reset the three face planes to the boundary intensity.
	inits := []struct {
		part *region.Partition
		grid domain.Domain
	}{
		{s.YZFaces, domain.FromRect(domain.Rect2(0, 0, int64(s.Params.TilesY-1), int64(s.Params.TilesZ-1)))},
		{s.XZFaces, domain.FromRect(domain.Rect2(0, 0, int64(s.Params.TilesX-1), int64(s.Params.TilesZ-1)))},
		{s.XYFaces, domain.FromRect(domain.Rect2(0, 0, int64(s.Params.TilesX-1), int64(s.Params.TilesY-1)))},
	}
	for _, in := range inits {
		l := core.MustForall("init_face", a.initFaceTask, in.grid,
			core.Requirement{Partition: in.part, Functor: id2, Priv: privilege.Write,
				Fields: []region.FieldID{FieldFlux}},
		)
		if _, err := a.RT.ExecuteIndex(l); err != nil {
			return err
		}
	}

	// Wavefront launches over diagonal slices of the tile grid, using the
	// paper's non-trivial plane-projection functors for the exchange
	// faces.
	nx, ny, nz := s.Params.TilesX, s.Params.TilesY, s.Params.TilesZ
	maxDiag := int64(nx + ny + nz - 3)
	for d := int64(0); d <= maxDiag; d++ {
		slice := a.wavefront(oct, d)
		if slice.Empty() {
			continue
		}
		l := core.MustForall("dom_sweep", a.sweepTask, slice,
			core.Requirement{Partition: s.Tiles, Functor: projection.Identity(3), Priv: privilege.ReadWrite,
				Fields: []region.FieldID{FieldIntensity}},
			core.Requirement{Partition: s.Tiles, Functor: projection.Identity(3), Priv: privilege.Read,
				Fields: []region.FieldID{FieldSource}},
			core.Requirement{Partition: s.YZFaces, Functor: projection.DropTo2D(projection.PlaneYZ), Priv: privilege.ReadWrite,
				Fields: []region.FieldID{FieldFlux}},
			core.Requirement{Partition: s.XZFaces, Functor: projection.DropTo2D(projection.PlaneXZ), Priv: privilege.ReadWrite,
				Fields: []region.FieldID{FieldFlux}},
			core.Requirement{Partition: s.XYFaces, Functor: projection.DropTo2D(projection.PlaneXY), Priv: privilege.ReadWrite,
				Fields: []region.FieldID{FieldFlux}},
		)
		l.Args = []byte{byte(oi)}
		if _, err := a.RT.ExecuteIndex(l); err != nil {
			return err
		}
	}
	return nil
}

// wavefront returns the tiles whose sweep-order diagonal equals d for the
// given octant: coordinates are mirrored on axes swept in the negative
// direction before summing.
func (a *App) wavefront(oct Octant, d int64) domain.Domain {
	s := a.S
	var pts []domain.Point
	s.TileGrid.Each(func(t domain.Point) bool {
		u := t.X()
		if oct.Sx < 0 {
			u = int64(s.Params.TilesX-1) - t.X()
		}
		v := t.Y()
		if oct.Sy < 0 {
			v = int64(s.Params.TilesY-1) - t.Y()
		}
		w := t.Z()
		if oct.Sz < 0 {
			w = int64(s.Params.TilesZ-1) - t.Z()
		}
		if u+v+w == d {
			pts = append(pts, t)
		}
		return true
	})
	return domain.FromPoints(pts)
}

// Run executes iters iterations and waits.
func (a *App) Run(iters int) error {
	for i := 0; i < iters; i++ {
		if err := a.Step(); err != nil {
			return err
		}
	}
	a.RT.Fence()
	return nil
}

func (a *App) fluid(ctx *rt.Context) ([]byte, error) {
	from := region.FieldID(ctx.Args[0])
	to := region.FieldID(ctx.Args[1])
	out, err := ctx.WriteF64(0, to)
	if err != nil {
		return nil, err
	}
	in, err := ctx.ReadF64(1, from)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	bounds := a.S.Cells.Root().Domain.Bounds()
	pr.Region.Domain.Each(func(c domain.Point) bool {
		sum := in.Get(c) * 2
		cnt := 2.0
		for _, dlt := range [][3]int64{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
			q := domain.Pt3(c.X()+dlt[0], c.Y()+dlt[1], c.Z()+dlt[2])
			if bounds.Contains(q) {
				sum += in.Get(q)
				cnt++
			}
		}
		out.Set(c, sum/cnt)
		return true
	})
	return nil, nil
}

func (a *App) particles(ctx *rt.Context) ([]byte, error) {
	ptemp, err := ctx.WriteF64(0, FieldPTemp)
	if err != nil {
		return nil, err
	}
	ptempIn, err := ctx.ReadF64(0, FieldPTemp)
	if err != nil {
		return nil, err
	}
	temp, err := ctx.ReadF64(1, FieldTemp)
	if err != nil {
		return nil, err
	}
	cells, _ := ctx.Region(1)
	var avg float64
	var n float64
	cells.Region.Domain.Each(func(c domain.Point) bool {
		avg += temp.Get(c)
		n++
		return true
	})
	avg /= n
	parts, _ := ctx.Region(0)
	parts.Region.Domain.Each(func(p domain.Point) bool {
		ptemp.Set(p, 0.9*ptempIn.Get(p)+0.1*avg)
		return true
	})
	return nil, nil
}

func (a *App) initFace(ctx *rt.Context) ([]byte, error) {
	flux, err := ctx.WriteF64(0, FieldFlux)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(p domain.Point) bool {
		flux.Set(p, 0)
		return true
	})
	return nil, nil
}

// sweep performs the upwind DOM update over one tile in octant order,
// reading and writing the three exchange planes.
func (a *App) sweep(ctx *rt.Context) ([]byte, error) {
	oct := Octants(a.S.Params.Octants)[ctx.Args[0]]
	intens, err := ctx.WriteF64(0, FieldIntensity)
	if err != nil {
		return nil, err
	}
	intensIn, err := ctx.ReadF64(0, FieldIntensity)
	if err != nil {
		return nil, err
	}
	src, err := ctx.ReadF64(1, FieldSource)
	if err != nil {
		return nil, err
	}
	fyzW, err := ctx.WriteF64(2, FieldFlux)
	if err != nil {
		return nil, err
	}
	fyzR, err := ctx.ReadF64(2, FieldFlux)
	if err != nil {
		return nil, err
	}
	fxzW, err := ctx.WriteF64(3, FieldFlux)
	if err != nil {
		return nil, err
	}
	fxzR, err := ctx.ReadF64(3, FieldFlux)
	if err != nil {
		return nil, err
	}
	fxyW, err := ctx.WriteF64(4, FieldFlux)
	if err != nil {
		return nil, err
	}
	fxyR, err := ctx.ReadF64(4, FieldFlux)
	if err != nil {
		return nil, err
	}

	tile, _ := ctx.Region(0)
	b := tile.Region.Domain.Bounds()
	denom := sigma + oct.Wx + oct.Wy + oct.Wz
	eachDir(b.Lo.C[0], b.Hi.C[0], oct.Sx, func(x int64) {
		eachDir(b.Lo.C[1], b.Hi.C[1], oct.Sy, func(y int64) {
			eachDir(b.Lo.C[2], b.Hi.C[2], oct.Sz, func(z int64) {
				c := domain.Pt3(x, y, z)
				yz := domain.Pt2(y, z)
				xz := domain.Pt2(x, z)
				xy := domain.Pt2(x, y)
				val := (src.Get(c) + oct.Wx*fyzR.Get(yz) + oct.Wy*fxzR.Get(xz) + oct.Wz*fxyR.Get(xy)) / denom
				intens.Set(c, intensIn.Get(c)+oct.Wq*val)
				fyzW.Set(yz, val)
				fxzW.Set(xz, val)
				fxyW.Set(xy, val)
			})
		})
	})
	return nil, nil
}

func eachDir(lo, hi, sign int64, fn func(int64)) {
	if sign > 0 {
		for v := lo; v <= hi; v++ {
			fn(v)
		}
		return
	}
	for v := hi; v >= lo; v-- {
		fn(v)
	}
}
