// Package soleil implements a miniature Soleil-X (paper §6.1, §6.2.3): a
// multi-physics code with three modules on a 3-d grid of tiles:
//
//   - fluid: a 7-point stencil relaxation over cell temperatures (two index
//     launches per iteration, ping-ponging between fields),
//   - particles: per-tile particle ensembles coupling to cell temperatures
//     (one index launch whose projection functor is the 3-d → 1-d tile
//     linearization — dynamically verified),
//   - DOM radiation: discrete-ordinates sweeps from each corner of the
//     grid. Sweep launch domains are 3-d *diagonal slices* of the tile
//     grid, and their face-exchange arguments use the paper's non-trivial
//     3-d → 2-d plane projection functors, which only the dynamic check
//     can prove safe (no duplicate (x,y), (y,z), (x,z) pairs on a
//     diagonal slice).
//
// As with the other apps, a real implementation on the rt runtime is
// validated against a sequential reference, and a simulator workload
// regenerates Figures 9–10.
package soleil

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/region"
)

// Cell fields.
const (
	FieldTemp region.FieldID = iota
	FieldTemp2
	FieldIntensity
	FieldSource
)

// Particle fields.
const (
	FieldPTemp region.FieldID = iota
)

// Face field.
const (
	FieldFlux region.FieldID = iota
)

// Params sizes a mini-Soleil run.
type Params struct {
	// TilesX/Y/Z arrange the tile grid (one task per tile per stage).
	TilesX, TilesY, TilesZ int
	// Side is the cell edge length of each (cubic) tile.
	Side int64
	// ParticlesPerTile sizes the particle ensembles.
	ParticlesPerTile int
	// Octants is the number of sweep directions (1..8).
	Octants int
}

// Soleil holds the grids, partitions and launch domains.
type Soleil struct {
	Params Params

	Cells     *region.Tree
	Particles *region.Tree
	// FaceYZ/XZ/XY hold the sweep exchange fluxes on the three global
	// cell planes.
	FaceYZ, FaceXZ, FaceXY *region.Tree

	// Tiles is the disjoint 3-d block partition of cells; Halos the
	// aliased radius-1 partition for the fluid stencil.
	Tiles, Halos *region.Partition
	// PartBlocks is the disjoint particle partition, one block per tile in
	// row-major tile order.
	PartBlocks *region.Partition
	// YZFaces/XZFaces/XYFaces are disjoint 2-d block partitions of the
	// face trees, one subregion per tile column.
	YZFaces, XZFaces, XYFaces *region.Partition

	// TileGrid is the 3-d launch domain of tiles.
	TileGrid domain.Domain
}

// Build allocates grids and partitions and initializes the fields.
func Build(p Params) (*Soleil, error) {
	if p.TilesX < 1 || p.TilesY < 1 || p.TilesZ < 1 || p.Side < 2 ||
		p.ParticlesPerTile < 1 || p.Octants < 1 || p.Octants > 8 {
		return nil, fmt.Errorf("soleil: invalid params %+v", p)
	}
	cx := int64(p.TilesX) * p.Side
	cy := int64(p.TilesY) * p.Side
	cz := int64(p.TilesZ) * p.Side

	cellFields := region.MustFieldSpace(
		region.Field{ID: FieldTemp, Name: "temp", Kind: region.F64},
		region.Field{ID: FieldTemp2, Name: "temp2", Kind: region.F64},
		region.Field{ID: FieldIntensity, Name: "intensity", Kind: region.F64},
		region.Field{ID: FieldSource, Name: "source", Kind: region.F64},
	)
	cells, err := region.NewTree("soleil_cells",
		domain.FromRect(domain.Rect3(0, 0, 0, cx-1, cy-1, cz-1)), cellFields)
	if err != nil {
		return nil, err
	}

	nTiles := p.TilesX * p.TilesY * p.TilesZ
	partFields := region.MustFieldSpace(
		region.Field{ID: FieldPTemp, Name: "ptemp", Kind: region.F64},
	)
	particles, err := region.NewTree("soleil_particles",
		domain.Range1(0, int64(nTiles*p.ParticlesPerTile)-1), partFields)
	if err != nil {
		return nil, err
	}

	faceFields := region.MustFieldSpace(
		region.Field{ID: FieldFlux, Name: "flux", Kind: region.F64},
	)
	faceYZ, err := region.NewTree("soleil_face_yz",
		domain.FromRect(domain.Rect2(0, 0, cy-1, cz-1)), faceFields)
	if err != nil {
		return nil, err
	}
	faceXZ, err := region.NewTree("soleil_face_xz",
		domain.FromRect(domain.Rect2(0, 0, cx-1, cz-1)), faceFields)
	if err != nil {
		return nil, err
	}
	faceXY, err := region.NewTree("soleil_face_xy",
		domain.FromRect(domain.Rect2(0, 0, cx-1, cy-1)), faceFields)
	if err != nil {
		return nil, err
	}

	s := &Soleil{
		Params: p, Cells: cells, Particles: particles,
		FaceYZ: faceYZ, FaceXZ: faceXZ, FaceXY: faceXY,
		TileGrid: domain.FromRect(domain.Rect3(0, 0, 0,
			int64(p.TilesX-1), int64(p.TilesY-1), int64(p.TilesZ-1))),
	}
	if s.Tiles, err = cells.PartitionBlock3D(cells.Root(), "tiles", p.TilesX, p.TilesY, p.TilesZ); err != nil {
		return nil, err
	}
	if s.Halos, err = cells.PartitionHalo3D(cells.Root(), "halos", p.TilesX, p.TilesY, p.TilesZ, 1); err != nil {
		return nil, err
	}
	if s.PartBlocks, err = particles.PartitionEqual(particles.Root(), "ensembles", nTiles); err != nil {
		return nil, err
	}
	if s.YZFaces, err = faceYZ.PartitionBlock2D(faceYZ.Root(), "yz", p.TilesY, p.TilesZ); err != nil {
		return nil, err
	}
	if s.XZFaces, err = faceXZ.PartitionBlock2D(faceXZ.Root(), "xz", p.TilesX, p.TilesZ); err != nil {
		return nil, err
	}
	if s.XYFaces, err = faceXY.PartitionBlock2D(faceXY.Root(), "xy", p.TilesX, p.TilesY); err != nil {
		return nil, err
	}

	// Initial condition: a smooth temperature bump plus a radiation source
	// in the corner region.
	temp := region.MustFieldF64(cells.Root(), FieldTemp)
	src := region.MustFieldF64(cells.Root(), FieldSource)
	cells.Root().Domain.Each(func(pt domain.Point) bool {
		x, y, z := pt.X(), pt.Y(), pt.Z()
		temp.Set(pt, 300+float64((x+2*y+3*z)%17))
		if x < p.Side && y < p.Side && z < p.Side {
			src.Set(pt, 1)
		}
		return true
	})
	ptemp := region.MustFieldF64(particles.Root(), FieldPTemp)
	particles.Root().Domain.Each(func(pt domain.Point) bool {
		ptemp.Set(pt, 250)
		return true
	})
	return s, nil
}

// TileIndex returns the row-major rank of tile (i, j, k) — the color of the
// particle block belonging to that tile.
func (s *Soleil) TileIndex(t domain.Point) int64 {
	return (t.X()*int64(s.Params.TilesY)+t.Y())*int64(s.Params.TilesZ) + t.Z()
}

// Octant describes one sweep direction.
type Octant struct {
	// Sx/Sy/Sz are +1 or -1 per axis.
	Sx, Sy, Sz int64
	// Weights of the direction cosines and the quadrature weight.
	Wx, Wy, Wz, Wq float64
}

// Octants returns the first n of the eight corner directions.
func Octants(n int) []Octant {
	all := make([]Octant, 0, 8)
	for sx := int64(1); sx >= -1; sx -= 2 {
		for sy := int64(1); sy >= -1; sy -= 2 {
			for sz := int64(1); sz >= -1; sz -= 2 {
				all = append(all, Octant{
					Sx: sx, Sy: sy, Sz: sz,
					Wx: 0.5, Wy: 0.35, Wz: 0.15, Wq: 1.0 / 8,
				})
			}
		}
	}
	return all[:n]
}

// sigma is the absorption coefficient of the DOM update.
const sigma = 0.8
