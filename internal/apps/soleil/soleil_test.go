package soleil

import (
	"math"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

func testParams() Params {
	return Params{TilesX: 2, TilesY: 2, TilesZ: 2, Side: 4, ParticlesPerTile: 8, Octants: 2}
}

func TestBuildStructure(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Tiles.Disjoint() || !s.Tiles.Complete() {
		t.Error("tiles must be disjoint and complete")
	}
	if s.Halos.Disjoint() {
		t.Error("halos must be aliased")
	}
	for _, p := range []*region.Partition{s.PartBlocks, s.YZFaces, s.XZFaces, s.XYFaces} {
		if !p.Disjoint() || !p.Complete() {
			t.Errorf("%s must be disjoint and complete", p)
		}
	}
	if s.TileGrid.Volume() != 8 {
		t.Errorf("tile grid volume = %d", s.TileGrid.Volume())
	}
}

func TestBuildValidation(t *testing.T) {
	bad := []Params{
		{},
		{TilesX: 1, TilesY: 1, TilesZ: 1, Side: 1, ParticlesPerTile: 1, Octants: 1},
		{TilesX: 1, TilesY: 1, TilesZ: 1, Side: 4, ParticlesPerTile: 1, Octants: 9},
	}
	for i, p := range bad {
		if _, err := Build(p); err == nil {
			t.Errorf("params %d should be rejected", i)
		}
	}
}

func TestTileIndexBijective(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	s.TileGrid.Each(func(pt domain.Point) bool {
		idx := s.TileIndex(pt)
		if idx < 0 || idx >= 8 || seen[idx] {
			t.Errorf("tile index %d for %v invalid or duplicated", idx, pt)
		}
		seen[idx] = true
		return true
	})
}

func TestOctants(t *testing.T) {
	all := Octants(8)
	if len(all) != 8 {
		t.Fatalf("got %d octants", len(all))
	}
	seen := map[[3]int64]bool{}
	for _, o := range all {
		key := [3]int64{o.Sx, o.Sy, o.Sz}
		if seen[key] {
			t.Errorf("duplicate octant %v", key)
		}
		seen[key] = true
	}
	if len(Octants(3)) != 3 {
		t.Error("prefix selection broken")
	}
}

func maxFieldDiff(a, b *region.Tree, f region.FieldID) float64 {
	accA := region.MustFieldF64(a.Root(), f)
	accB := region.MustFieldF64(b.Root(), f)
	var maxDiff float64
	a.Root().Domain.Each(func(p domain.Point) bool {
		d := math.Abs(accA.Get(p) - accB.Get(p))
		if d > maxDiff {
			maxDiff = d
		}
		return true
	})
	return maxDiff
}

func TestRuntimeMatchesReference(t *testing.T) {
	const iters = 2
	for _, dcr := range []bool{false, true} {
		ref, err := Build(testParams())
		if err != nil {
			t.Fatal(err)
		}
		Reference(ref, iters)

		s, err := Build(testParams())
		if err != nil {
			t.Fatal(err)
		}
		r := rt.MustNew(rt.Config{
			Nodes: 4, ProcsPerNode: 2, DCR: dcr, IndexLaunches: true, VerifyLaunches: true,
		})
		app := NewApp(s, r)
		if err := app.Run(iters); err != nil {
			t.Fatal(err)
		}

		if d := maxFieldDiff(ref.Cells, s.Cells, FieldTemp); d != 0 {
			t.Errorf("dcr=%v: temp diverges by %g", dcr, d)
		}
		if d := maxFieldDiff(ref.Cells, s.Cells, FieldIntensity); d != 0 {
			t.Errorf("dcr=%v: intensity diverges by %g", dcr, d)
		}
		if d := maxFieldDiff(ref.Particles, s.Particles, FieldPTemp); d != 0 {
			t.Errorf("dcr=%v: particle temp diverges by %g", dcr, d)
		}
		// Sanity: the sweep actually deposited radiation.
		sum, _ := region.SumF64(s.Cells.Root(), FieldIntensity)
		if sum <= 0 {
			t.Error("no radiation deposited")
		}
	}
}

func TestSweepLaunchesNeedDynamicChecks(t *testing.T) {
	// The DOM plane-projection functors and the particle linearization are
	// statically unresolvable: the hybrid analysis must fall back to
	// dynamic checks, and all launches must still pass (no fallbacks).
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, VerifyLaunches: true,
	})
	app := NewApp(s, r)
	if err := app.Run(1); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 (all launches are valid)", st.Fallbacks)
	}
	if st.DynamicCheckEvals == 0 {
		t.Error("expected dynamic checks for non-trivial projection functors")
	}
}

func TestChecksDisabledStillCorrect(t *testing.T) {
	// The paper: the dynamic check is advisory; disabling it must not
	// change results of a valid program.
	ref, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	Reference(ref, 1)

	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		VerifyLaunches: true,
	})
	r2cfg := r.Config()
	r2cfg.Checks.DisableDynamic = true
	r2 := rt.MustNew(r2cfg)
	app := NewApp(s, r2)
	if err := app.Run(1); err != nil {
		t.Fatal(err)
	}
	if d := maxFieldDiff(ref.Cells, s.Cells, FieldIntensity); d != 0 {
		t.Errorf("intensity diverges by %g with checks disabled", d)
	}
	if st := r2.Stats(); st.DynamicCheckEvals != 0 {
		t.Errorf("dynamic evaluations = %d with checks disabled", st.DynamicCheckEvals)
	}
}

func TestWavefrontCoversGridOnce(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	app := &App{S: s}
	for _, oct := range Octants(8) {
		var total int64
		for d := int64(0); d <= 3*2-3; d++ {
			total += app.wavefront(oct, d).Volume()
		}
		if total != 8 {
			t.Errorf("octant %+v wavefronts cover %d tiles, want 8", oct, total)
		}
	}
}

func TestSimProgramFluidOnlyShape(t *testing.T) {
	prog := SimProgram(SimParams{Nodes: 8, Iters: 2})
	if len(prog.Body) != fluidStages {
		t.Fatalf("fluid-only body = %d launches", len(prog.Body))
	}
	res, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(8), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, Tracing: true, DynChecks: true,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	tput := IterPerSecondPerNode(2, res.MakespanSec)
	if tput < 2 || tput > 6 {
		t.Errorf("fluid iter/s = %.2f, want ~3.3 (Figure 9 scale)", tput)
	}
}

func TestSimFluidWeakScalingShape(t *testing.T) {
	// Figure 9: DCR+IDX holds high efficiency at 512 nodes; DCR+NoIDX
	// falls well below it.
	run := func(nodes int, idx bool) float64 {
		prog := SimProgram(SimParams{Nodes: nodes, Iters: 5})
		res, err := sim.Run(sim.Config{
			Machine: machine.PizDaint(nodes), Cost: sim.DefaultCosts(),
			DCR: true, IDX: idx, Tracing: true, DynChecks: true,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return IterPerSecondPerNode(5, res.MakespanSec)
	}
	base := run(1, true)
	idx512 := run(512, true)
	noIdx512 := run(512, false)
	eff := idx512 / base
	if eff < 0.6 || eff > 0.95 {
		t.Errorf("DCR+IDX fluid weak efficiency at 512 = %.2f, want ~0.78", eff)
	}
	if noIdx512 >= idx512*0.9 {
		t.Errorf("DCR+NoIDX (%.2f) should fall well below IDX (%.2f) at 512", noIdx512, idx512)
	}
}

func TestSimFullWeakScalingShape(t *testing.T) {
	// Figure 10: the DOM-limited full simulation reaches ~64% efficiency
	// at 32 nodes; dynamic-check and no-check curves are indistinguishable
	// (< 1% apart); No-IDX is clearly worse.
	run := func(nodes int, idx, checks bool) float64 {
		prog := SimProgram(SimParams{Nodes: nodes, DOM: true, Particles: true, Iters: 5})
		res, err := sim.Run(sim.Config{
			Machine: machine.PizDaint(nodes), Cost: sim.DefaultCosts(),
			DCR: true, IDX: idx, Tracing: true, DynChecks: checks,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return IterPerSecondPerNode(5, res.MakespanSec)
	}
	base := run(1, true, true)
	at32 := run(32, true, true)
	eff := at32 / base
	if eff < 0.35 || eff > 0.9 {
		t.Errorf("full weak efficiency at 32 = %.2f, want ~0.64 (sweep-limited)", eff)
	}
	noCheck := run(32, true, false)
	if rel := math.Abs(noCheck-at32) / at32; rel > 0.01 {
		t.Errorf("dynamic-check cost should be negligible: %.4f vs %.4f (%.2f%%)",
			at32, noCheck, rel*100)
	}
	noIdx := run(32, false, true)
	if noIdx >= at32*0.95 {
		t.Errorf("No-IDX (%.3f) should be clearly below IDX (%.3f)", noIdx, at32)
	}
}

func TestSweepCriticalPath(t *testing.T) {
	if got := SweepCriticalPath(8); got != 4 { // 2+2+2-2
		t.Errorf("critical path at 8 nodes = %d, want 4", got)
	}
	if got := SweepCriticalPath(32); got != 8 { // 2+4+4-2
		t.Errorf("critical path at 32 nodes = %d, want 8", got)
	}
}
