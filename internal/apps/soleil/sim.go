package soleil

import (
	"math"

	"indexlaunch/internal/machine"
	"indexlaunch/internal/sim"
)

// Simulated per-stage costs. Soleil's fluid solver runs several launches
// per iteration with dozens of fields each; per-task analysis is
// correspondingly expensive when tasks are issued individually, and the
// DOM sweep tasks carry five region requirements with projection functors.
const (
	fluidStages   = 6
	particleStage = 2

	// Figure 9 runs a fluid-only problem (~3.3 iter/s/node at one node);
	// Figure 10 runs the full multi-physics problem on a smaller per-node
	// grid (~8.5 iter/s/node at one node).
	fluidOnlySecPerIter = 300e-3
	fullFluidSecPerIter = 60e-3
	particleSecPerIter  = 12e-3
	sweepTaskSec        = 6e-3

	fluidHaloBytes = 2.4e6
	sweepFaceBytes = 1.3e5

	// Per-task issuance/analysis costs on the no-IDX path.
	fluidPerTaskIssue  = 380e-6
	fluidPerTaskReplay = 260e-6
	sweepPerTaskIssue  = 800e-6
	sweepPerTaskReplay = 600e-6

	// Load imbalance / communication skew grows slowly with machine size.
	fluidSkewPerLog = 0.035
)

// SimParams sizes a simulated Soleil run.
type SimParams struct {
	Nodes int
	// DOM enables the radiation module (Figure 10); fluid-only otherwise
	// (Figure 9).
	DOM bool
	// Particles enables the particle module (on in Figure 10's runs).
	Particles bool
	Iters     int
}

// IterPerSecondPerNode converts a makespan to the paper's Figures 9–10
// throughput metric.
func IterPerSecondPerNode(iters int, makespan float64) float64 {
	return float64(iters) / makespan
}

// SimProgram builds the simulator workload: per iteration, fluidStages
// stencil-like launches, optionally particle launches, and optionally one
// DOM sweep per octant over the diagonal wavefronts of the near-cubic node
// grid. Sweep launches carry NonTrivialFunctor so the dynamic-check cost is
// charged when enabled — the Figure 10 "dynamic check" vs "no check"
// comparison.
func SimProgram(p SimParams) sim.Program {
	nx, ny, nz := machine.NearCubicFactor(p.Nodes)
	tasks := p.Nodes
	stretch := 1 + fluidSkewPerLog*math.Log2(float64(p.Nodes)+1)
	fluidSec := fluidOnlySecPerIter
	if p.DOM {
		fluidSec = fullFluidSecPerIter
	}

	var body []sim.Launch
	for s := 0; s < fluidStages; s++ {
		body = append(body, sim.Launch{
			Name:          "fluid",
			Points:        tasks,
			ComputeSec:    fluidSec / fluidStages * stretch,
			CommBytes:     fluidHaloBytes / fluidStages,
			Args:          3,
			PerTaskIssue:  fluidPerTaskIssue,
			PerTaskReplay: fluidPerTaskReplay,
			// Halo exchange with the previous stage of spatial neighbors.
			Deps: []sim.DepSpec{neighbors3D(1, nx, ny, nz)},
		})
	}
	if p.Particles {
		for s := 0; s < particleStage; s++ {
			body = append(body, sim.Launch{
				Name:          "particles",
				Points:        tasks,
				ComputeSec:    particleSecPerIter / particleStage * stretch,
				Args:          2,
				PerTaskIssue:  fluidPerTaskIssue,
				PerTaskReplay: fluidPerTaskReplay,
				// The 3-d → 1-d ensemble linearization needs the dynamic
				// check.
				NonTrivialFunctor: true,
				Deps:              []sim.DepSpec{sim.SamePoint(1)},
			})
		}
	}
	if p.DOM {
		body = append(body, sweepLaunches(nx, ny, nz)...)
	}
	return sim.Program{Name: "soleil", Body: body, Iterations: p.Iters}
}

// neighbors3D maps node p (row-major in an nx×ny×nz grid) to itself and its
// six face neighbors in the launch back positions earlier.
func neighbors3D(back, nx, ny, nz int) sim.DepSpec {
	return sim.DepSpec{Back: back, Map: func(p int) []int {
		k := p % nz
		j := (p / nz) % ny
		i := p / (ny * nz)
		out := []int{p}
		if i > 0 {
			out = append(out, p-ny*nz)
		}
		if i < nx-1 {
			out = append(out, p+ny*nz)
		}
		if j > 0 {
			out = append(out, p-nz)
		}
		if j < ny-1 {
			out = append(out, p+nz)
		}
		if k > 0 {
			out = append(out, p-1)
		}
		if k < nz-1 {
			out = append(out, p+1)
		}
		return out
	}}
}

// sweepLaunches emits, for each of the eight octants, one launch per
// diagonal wavefront of the tile grid. Each wavefront task depends on its
// upwind tiles in the previous wavefront, and on its own tile's sweep from
// the previous octant (octants conflict on the intensity field), so octants
// pipeline with a one-wavefront offset — the paper's "sweeps rather than
// forall-style parallelism" limitation (§6.2.3).
func sweepLaunches(nx, ny, nz int) []sim.Launch {
	maxDiag := nx + ny + nz - 3
	// Canonical wavefront layout shared by all octants (mirroring changes
	// neither sizes nor ownership statistics).
	fronts := make([][]int, 0, maxDiag+1)
	for d := 0; d <= maxDiag; d++ {
		fronts = append(fronts, wavefrontTiles(d, nx, ny, nz))
	}
	perOctant := len(fronts)

	var out []sim.Launch
	for oct := 0; oct < 8; oct++ {
		for d, tiles := range fronts {
			tiles := tiles
			deps := []sim.DepSpec{}
			if d > 0 {
				prev := fronts[d-1]
				prevIdx := map[int]int{}
				for i, t := range prev {
					prevIdx[t] = i
				}
				deps = append(deps, sim.DepSpec{Back: 1, Map: func(p int) []int {
					t := tiles[p]
					k := t % nz
					j := (t / nz) % ny
					i := t / (ny * nz)
					var up []int
					if i > 0 {
						if q, ok := prevIdx[t-ny*nz]; ok {
							up = append(up, q)
						}
					}
					if j > 0 {
						if q, ok := prevIdx[t-nz]; ok {
							up = append(up, q)
						}
					}
					if k > 0 {
						if q, ok := prevIdx[t-1]; ok {
							up = append(up, q)
						}
					}
					return up
				}})
			}
			if oct > 0 {
				// Same tile, same wavefront, previous octant.
				deps = append(deps, sim.DepSpec{Back: perOctant, Map: func(p int) []int {
					return []int{p}
				}})
			} else if d == 0 {
				// First sweep of the iteration follows the fluid state.
				deps = append(deps, sim.DepSpec{Back: 1, Map: func(p int) []int { return []int{0} }})
			}
			out = append(out, sim.Launch{
				Name:              "dom_sweep",
				Points:            len(tiles),
				ComputeSec:        sweepTaskSec,
				CommBytes:         sweepFaceBytes,
				Args:              5,
				NonTrivialFunctor: true,
				PerTaskIssue:      sweepPerTaskIssue,
				PerTaskReplay:     sweepPerTaskReplay,
				SubregionCount:    nx * ny * nz,
				Owner: func(p, nodes int) int {
					return tiles[p] % nodes
				},
				Deps: deps,
			})
		}
	}
	return out
}

// wavefrontTiles returns the row-major node ranks on diagonal d of an
// nx×ny×nz grid.
func wavefrontTiles(d, nx, ny, nz int) []int {
	var out []int
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			k := d - i - j
			if k >= 0 && k < nz {
				out = append(out, (i*ny+j)*nz+k)
			}
		}
	}
	return out
}

// SweepCriticalPath returns the ideal sweep step count per octant for an n-
// node machine — used by tests to sanity-check the scaling limit.
func SweepCriticalPath(nodes int) int {
	nx, ny, nz := machine.NearCubicFactor(nodes)
	return nx + ny + nz - 2
}
