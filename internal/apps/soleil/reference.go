package soleil

import (
	"indexlaunch/internal/domain"
	"indexlaunch/internal/region"
)

// Reference runs iters iterations of mini-Soleil sequentially, mutating the
// data in place; the oracle for runtime validation. The flux-chain update
// order is per-column, so the tiled execution produces bitwise-identical
// results.
func Reference(s *Soleil, iters int) {
	temp := region.MustFieldF64(s.Cells.Root(), FieldTemp)
	temp2 := region.MustFieldF64(s.Cells.Root(), FieldTemp2)
	intens := region.MustFieldF64(s.Cells.Root(), FieldIntensity)
	src := region.MustFieldF64(s.Cells.Root(), FieldSource)
	ptemp := region.MustFieldF64(s.Particles.Root(), FieldPTemp)
	fyz := region.MustFieldF64(s.FaceYZ.Root(), FieldFlux)
	fxz := region.MustFieldF64(s.FaceXZ.Root(), FieldFlux)
	fxy := region.MustFieldF64(s.FaceXY.Root(), FieldFlux)

	bounds := s.Cells.Root().Domain.Bounds()
	stencil := func(in, out region.AccF64) {
		s.Cells.Root().Domain.Each(func(c domain.Point) bool {
			sum := in.Get(c) * 2
			cnt := 2.0
			for _, dlt := range [][3]int64{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
				q := domain.Pt3(c.X()+dlt[0], c.Y()+dlt[1], c.Z()+dlt[2])
				if bounds.Contains(q) {
					sum += in.Get(q)
					cnt++
				}
			}
			out.Set(c, sum/cnt)
			return true
		})
	}

	for it := 0; it < iters; it++ {
		// Fluid ping-pong.
		stencil(temp, temp2)
		stencil(temp2, temp)

		// Particles: per-tile ensembles relax toward the tile-average
		// temperature, in the same canonical orders as the tasks.
		s.TileGrid.Each(func(t domain.Point) bool {
			tile := s.Tiles.MustSubregion(t)
			var avg, n float64
			tile.Domain.Each(func(c domain.Point) bool {
				avg += temp.Get(c)
				n++
				return true
			})
			avg /= n
			block := s.PartBlocks.MustSubregion(domain.Pt1(s.TileIndex(t)))
			block.Domain.Each(func(p domain.Point) bool {
				ptemp.Set(p, 0.9*ptemp.Get(p)+0.1*avg)
				return true
			})
			return true
		})

		// DOM sweeps.
		for _, oct := range Octants(s.Params.Octants) {
			s.FaceYZ.Root().Domain.Each(func(p domain.Point) bool { fyz.Set(p, 0); return true })
			s.FaceXZ.Root().Domain.Each(func(p domain.Point) bool { fxz.Set(p, 0); return true })
			s.FaceXY.Root().Domain.Each(func(p domain.Point) bool { fxy.Set(p, 0); return true })
			denom := sigma + oct.Wx + oct.Wy + oct.Wz
			b := bounds
			eachDir(b.Lo.C[0], b.Hi.C[0], oct.Sx, func(x int64) {
				eachDir(b.Lo.C[1], b.Hi.C[1], oct.Sy, func(y int64) {
					eachDir(b.Lo.C[2], b.Hi.C[2], oct.Sz, func(z int64) {
						c := domain.Pt3(x, y, z)
						yz := domain.Pt2(y, z)
						xz := domain.Pt2(x, z)
						xy := domain.Pt2(x, y)
						val := (src.Get(c) + oct.Wx*fyz.Get(yz) + oct.Wy*fxz.Get(xz) + oct.Wz*fxy.Get(xy)) / denom
						intens.Set(c, intens.Get(c)+oct.Wq*val)
						fyz.Set(yz, val)
						fxz.Set(xz, val)
						fxy.Set(xy, val)
					})
				})
			})
		}
	}
}
