package stencil

import (
	"math"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

func testParams() Params { return Params{N: 24, TilesX: 3, TilesY: 2} }

func TestBuildStructure(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Tiles.Disjoint() || !s.Tiles.Complete() {
		t.Error("tiles must be disjoint and complete")
	}
	if s.Halos.Disjoint() {
		t.Error("halos must be aliased")
	}
	if s.LaunchDomain.Volume() != 6 {
		t.Errorf("launch domain volume = %d", s.LaunchDomain.Volume())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{N: 3, TilesX: 1, TilesY: 1}); err == nil {
		t.Error("grid smaller than stencil diameter should be rejected")
	}
	if _, err := Build(Params{N: 24, TilesX: 0, TilesY: 1}); err == nil {
		t.Error("zero tiles should be rejected")
	}
}

func TestWeights(t *testing.T) {
	if w := Weight(1); w != 0.25 {
		t.Errorf("Weight(1) = %v, want 0.25", w)
	}
	if w := Weight(-2); w != 0.125 {
		t.Errorf("Weight(-2) = %v, want 0.125", w)
	}
}

func TestRuntimeMatchesReferenceAllConfigs(t *testing.T) {
	const iters = 4
	for _, dcr := range []bool{false, true} {
		for _, idx := range []bool{false, true} {
			ref, err := Build(testParams())
			if err != nil {
				t.Fatal(err)
			}
			Reference(ref, iters)

			s, err := Build(testParams())
			if err != nil {
				t.Fatal(err)
			}
			r := rt.MustNew(rt.Config{
				Nodes: 3, ProcsPerNode: 2, DCR: dcr, IndexLaunches: idx, VerifyLaunches: true,
			})
			app := NewApp(s, r)
			if err := app.Run(iters); err != nil {
				t.Fatal(err)
			}

			refOut := region.MustFieldF64(ref.Grid.Root(), FieldOut)
			gotOut := region.MustFieldF64(s.Grid.Root(), FieldOut)
			maxDiff := 0.0
			s.Grid.Root().Domain.Each(func(p domain.Point) bool {
				d := math.Abs(refOut.Get(p) - gotOut.Get(p))
				if d > maxDiff {
					maxDiff = d
				}
				return true
			})
			if maxDiff != 0 {
				t.Errorf("dcr=%v idx=%v: max divergence %g (stencil is deterministic, want 0)",
					dcr, idx, maxDiff)
			}
		}
	}
}

func TestLaunchesVerifyStatically(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, VerifyLaunches: true})
	app := NewApp(s, r)
	if err := app.Run(2); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Fallbacks != 0 || st.DynamicCheckEvals != 0 {
		t.Errorf("fallbacks=%d dynamicEvals=%d, want 0/0 (trivial functors)",
			st.Fallbacks, st.DynamicCheckEvals)
	}
}

func TestInteriorOnlyUpdated(t *testing.T) {
	s, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	app := NewApp(s, r)
	if err := app.Run(1); err != nil {
		t.Fatal(err)
	}
	out := region.MustFieldF64(s.Grid.Root(), FieldOut)
	// Boundary ring must stay zero.
	if v := out.Get(domain.Pt2(0, 5)); v != 0 {
		t.Errorf("boundary updated: %v", v)
	}
	if v := out.Get(domain.Pt2(5, 1)); v != 0 {
		t.Errorf("boundary updated: %v", v)
	}
	// Interior must have the full stencil weight sum applied once:
	// sum over 4 directions, d=1..R of w(d) times in-values.
	if v := out.Get(domain.Pt2(5, 5)); v == 0 {
		t.Error("interior not updated")
	}
}

func TestSimProgramShape(t *testing.T) {
	prog := SimProgram(SimParams{Nodes: 16, CellsPerTask: 9e8, Iters: 3})
	if len(prog.Body) != 2 {
		t.Fatalf("body = %d launches", len(prog.Body))
	}
	res, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(16), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, DynChecks: true,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	tput := CellsPerSecond(9e8*16, 3, res.MakespanSec) / 16
	if tput < 5e9 || tput > 15e9 {
		t.Errorf("throughput per node = %.3g cells/s, want ~1e10", tput)
	}
}

func TestSimStrongScalingGapSmallerThanCircuit(t *testing.T) {
	// The paper observes a 1.2× stencil strong-scaling gap vs 1.6× for
	// circuit: the stencil gap at 512 nodes must be modest (< 3×) but
	// present.
	const nodes = 512
	run := func(idx bool) float64 {
		prog := SimProgram(SimParams{Nodes: nodes, CellsPerTask: 9e8 / float64(nodes), Iters: 10})
		res, err := sim.Run(sim.Config{
			Machine: machine.PizDaint(nodes), Cost: sim.DefaultCosts(),
			DCR: true, IDX: idx, Tracing: true, DynChecks: true,
		}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	gap := run(false) / run(true)
	if gap <= 1.02 {
		t.Errorf("no-IDX should be measurably slower: gap = %.3f", gap)
	}
	if gap > 3.5 {
		t.Errorf("stencil strong gap should be modest: %.3f", gap)
	}
}
