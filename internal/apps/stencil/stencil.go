// Package stencil implements the paper's second evaluation code (§6.1): a
// 2-D star stencil adapted from the Parallel Research Kernels, with dense
// block tiles (disjoint partition) and radius-R halos (aliased partition).
// Each iteration is two index launches with trivial projection functors:
//
//	stencil   — reads the halo view of `in`, updates `out` on the tile interior
//	increment — bumps `in` on the tile
//
// Like Circuit, the package provides a real implementation on the rt
// runtime validated against a sequential reference, plus a simulator
// workload used to regenerate Figures 7–8.
package stencil

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

// Fields of the grid.
const (
	FieldIn region.FieldID = iota
	FieldOut
)

// Radius is the stencil radius (PRK default star radius 2).
const Radius = 2

// Params sizes a stencil run.
type Params struct {
	// N is the grid edge length (N×N cells).
	N int64
	// TilesX and TilesY arrange the tiles.
	TilesX, TilesY int
}

// Stencil holds the grid, partitions and launch domain.
type Stencil struct {
	Params Params
	Grid   *region.Tree
	// Tiles is the disjoint block partition.
	Tiles *region.Partition
	// Halos is the aliased partition: each tile grown by Radius.
	Halos *region.Partition
	// LaunchDomain is the 2-d tile grid.
	LaunchDomain domain.Domain
}

// Build allocates the grid and partitions and initializes `in` to the PRK
// pattern in(x, y) = x + y.
func Build(p Params) (*Stencil, error) {
	if p.N < 2*Radius+1 || p.TilesX < 1 || p.TilesY < 1 {
		return nil, fmt.Errorf("stencil: invalid params %+v", p)
	}
	fields := region.MustFieldSpace(
		region.Field{ID: FieldIn, Name: "in", Kind: region.F64},
		region.Field{ID: FieldOut, Name: "out", Kind: region.F64},
	)
	grid, err := region.NewTree("stencil_grid", domain.FromRect(domain.Rect2(0, 0, p.N-1, p.N-1)), fields)
	if err != nil {
		return nil, err
	}
	s := &Stencil{Params: p, Grid: grid}
	if s.Tiles, err = grid.PartitionBlock2D(grid.Root(), "tiles", p.TilesX, p.TilesY); err != nil {
		return nil, err
	}
	if s.Halos, err = grid.PartitionHalo2D(grid.Root(), "halos", p.TilesX, p.TilesY, Radius); err != nil {
		return nil, err
	}
	s.LaunchDomain = domain.FromRect(domain.Rect2(0, 0, int64(p.TilesX-1), int64(p.TilesY-1)))

	in := region.MustFieldF64(grid.Root(), FieldIn)
	grid.Root().Domain.Each(func(pt domain.Point) bool {
		in.Set(pt, float64(pt.X()+pt.Y()))
		return true
	})
	return s, nil
}

// Weight returns the PRK star-stencil weight for axis offset d != 0.
func Weight(d int64) float64 {
	if d < 0 {
		d = -d
	}
	return 1.0 / (2.0 * float64(Radius) * float64(d))
}

// App binds the stencil tasks to a runtime.
type App struct {
	S  *Stencil
	RT *rt.Runtime

	stencilTask core.TaskID
	incTask     core.TaskID
}

// NewApp registers the stencil tasks.
func NewApp(s *Stencil, r *rt.Runtime) *App {
	a := &App{S: s, RT: r}
	a.stencilTask = r.MustRegisterTask("stencil.stencil", a.stencil)
	a.incTask = r.MustRegisterTask("stencil.increment", a.increment)
	return a
}

// Step issues one iteration as two index launches.
func (a *App) Step() error {
	s := a.S
	id := projection.Identity(2)
	st := core.MustForall("stencil", a.stencilTask, s.LaunchDomain,
		core.Requirement{Partition: s.Tiles, Functor: id, Priv: privilege.ReadWrite,
			Fields: []region.FieldID{FieldOut}},
		core.Requirement{Partition: s.Halos, Functor: id, Priv: privilege.Read,
			Fields: []region.FieldID{FieldIn}},
	)
	inc := core.MustForall("increment", a.incTask, s.LaunchDomain,
		core.Requirement{Partition: s.Tiles, Functor: id, Priv: privilege.ReadWrite,
			Fields: []region.FieldID{FieldIn}},
	)
	if _, err := a.RT.ExecuteIndex(st); err != nil {
		return err
	}
	if _, err := a.RT.ExecuteIndex(inc); err != nil {
		return err
	}
	return nil
}

// Run executes iters iterations and waits.
func (a *App) Run(iters int) error {
	for i := 0; i < iters; i++ {
		if err := a.Step(); err != nil {
			return err
		}
	}
	a.RT.Fence()
	return nil
}

func (a *App) stencil(ctx *rt.Context) ([]byte, error) {
	out, err := ctx.WriteF64(0, FieldOut)
	if err != nil {
		return nil, err
	}
	in, err := ctx.ReadF64(1, FieldIn)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	n := a.S.Params.N
	pr.Region.Domain.Each(func(pt domain.Point) bool {
		x, y := pt.X(), pt.Y()
		// PRK computes only the interior.
		if x < Radius || y < Radius || x >= n-Radius || y >= n-Radius {
			return true
		}
		acc := out.Get(pt)
		for d := int64(1); d <= Radius; d++ {
			w := Weight(d)
			acc += w * (in.Get(domain.Pt2(x+d, y)) + in.Get(domain.Pt2(x-d, y)) +
				in.Get(domain.Pt2(x, y+d)) + in.Get(domain.Pt2(x, y-d)))
		}
		out.Set(pt, acc)
		return true
	})
	return nil, nil
}

func (a *App) increment(ctx *rt.Context) ([]byte, error) {
	in, err := ctx.WriteF64(0, FieldIn)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(pt domain.Point) bool {
		in.Set(pt, in.Get(pt)+1)
		return true
	})
	return nil, nil
}

// Reference runs iters iterations sequentially; the oracle for tests.
func Reference(s *Stencil, iters int) {
	in := region.MustFieldF64(s.Grid.Root(), FieldIn)
	out := region.MustFieldF64(s.Grid.Root(), FieldOut)
	n := s.Params.N
	for it := 0; it < iters; it++ {
		for x := int64(Radius); x < n-Radius; x++ {
			for y := int64(Radius); y < n-Radius; y++ {
				pt := domain.Pt2(x, y)
				acc := out.Get(pt)
				for d := int64(1); d <= Radius; d++ {
					w := Weight(d)
					acc += w * (in.Get(domain.Pt2(x+d, y)) + in.Get(domain.Pt2(x-d, y)) +
						in.Get(domain.Pt2(x, y+d)) + in.Get(domain.Pt2(x, y-d)))
				}
				out.Set(pt, acc)
			}
		}
		s.Grid.Root().Domain.Each(func(pt domain.Point) bool {
			in.Set(pt, in.Get(pt)+1)
			return true
		})
	}
}
