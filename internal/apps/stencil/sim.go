package stencil

import (
	"math"

	"indexlaunch/internal/machine"
	"indexlaunch/internal/sim"
)

// Per-stage GPU throughputs in cells/second for one P100-class processor;
// together ≈ 10⁹·10 cells/s/node at full weak-scaling efficiency, matching
// Figure 8's y-axis scale.
const (
	rateStencil = 1.4e10
	rateInc     = 5.0e10

	cellBytes = 8.0

	// Per-task issuance/analysis cost when stencil tasks are issued
	// individually: structured tile requirements are cheap to analyze and
	// tracing memoizes them almost completely.
	perTaskIssue  = 3e-6
	perTaskReplay = 0.4e-6
)

// CellsPerSecond converts a makespan to the paper's throughput metric.
func CellsPerSecond(totalCells float64, iters int, makespan float64) float64 {
	return totalCells * float64(iters) / makespan
}

// SimParams sizes a simulated stencil run.
type SimParams struct {
	Nodes int
	// CellsPerTask is the per-task tile size in cells.
	CellsPerTask float64
	Iters        int
}

// SimProgram builds the simulator workload: two launches per iteration over
// a near-square 2-d node grid, with halo dependencies on the four grid
// neighbors.
func SimProgram(p SimParams) sim.Program {
	nx, ny := machine.NearSquareFactor(p.Nodes)
	tasks := p.Nodes
	side := math.Sqrt(p.CellsPerTask)
	haloBytes := 4 * Radius * side * cellBytes
	// Structured grids balance well; residual skew comes from tile-edge
	// effects and grows weakly with machine size.
	stretch := 1 + 0.02*math.Log2(float64(p.Nodes)+1)

	neighbors := func(q int) []int {
		i, j := q/ny, q%ny
		out := []int{q}
		if i > 0 {
			out = append(out, q-ny)
		}
		if i < nx-1 {
			out = append(out, q+ny)
		}
		if j > 0 {
			out = append(out, q-1)
		}
		if j < ny-1 {
			out = append(out, q+1)
		}
		return out
	}

	body := []sim.Launch{
		{
			Name:          "stencil",
			Points:        tasks,
			ComputeSec:    p.CellsPerTask / rateStencil * stretch,
			CommBytes:     haloBytes,
			Args:          2,
			PerTaskIssue:  perTaskIssue,
			PerTaskReplay: perTaskReplay,
			// Halo cells of `in` come from the previous iteration's
			// increment on the four neighbors (2 launches back).
			Deps: []sim.DepSpec{{Back: 2, Map: neighbors}},
		},
		{
			Name:          "increment",
			Points:        tasks,
			ComputeSec:    p.CellsPerTask / rateInc * stretch,
			Args:          1,
			PerTaskIssue:  perTaskIssue,
			PerTaskReplay: perTaskReplay,
			// WAR on `in`: must follow this iteration's stencil reads.
			Deps: []sim.DepSpec{sim.SamePoint(1)},
		},
	}
	return sim.Program{Name: "stencil", Body: body, Iterations: p.Iters}
}
