package circuit

import (
	"indexlaunch/internal/domain"
	"indexlaunch/internal/region"
)

// Reference runs iters iterations of the circuit simulation sequentially,
// mutating the circuit's data in place. It is the oracle the runtime
// execution is validated against: identical graph + identical iteration
// count must produce voltages equal up to reduction reordering.
func Reference(c *Circuit, iters int) {
	volt := region.MustFieldF64(c.Nodes.Root(), FieldVoltage)
	charge := region.MustFieldF64(c.Nodes.Root(), FieldCharge)
	capac := region.MustFieldF64(c.Nodes.Root(), FieldCapacitance)
	leak := region.MustFieldF64(c.Nodes.Root(), FieldLeakage)
	cur := region.MustFieldF64(c.Wires.Root(), FieldCurrent)
	res := region.MustFieldF64(c.Wires.Root(), FieldResistance)
	in := region.MustFieldI64(c.Wires.Root(), FieldInNode)
	out := region.MustFieldI64(c.Wires.Root(), FieldOutNode)

	wires := c.Wires.Root().Domain
	nodes := c.Nodes.Root().Domain
	for it := 0; it < iters; it++ {
		wires.Each(func(w domain.Point) bool {
			src := domain.Pt1(in.Get(w))
			dst := domain.Pt1(out.Get(w))
			cur.Set(w, (volt.Get(src)-volt.Get(dst))/res.Get(w))
			return true
		})
		wires.Each(func(w domain.Point) bool {
			i := cur.Get(w)
			src := domain.Pt1(in.Get(w))
			dst := domain.Pt1(out.Get(w))
			charge.Set(src, charge.Get(src)-dt*i)
			charge.Set(dst, charge.Get(dst)+dt*i)
			return true
		})
		nodes.Each(func(nd domain.Point) bool {
			v := volt.Get(nd) + charge.Get(nd)/capac.Get(nd)
			v -= v * leak.Get(nd) * dt
			volt.Set(nd, v)
			charge.Set(nd, 0)
			return true
		})
	}
}
