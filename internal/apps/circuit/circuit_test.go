package circuit

import (
	"math"
	"testing"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

func testParams() Params {
	return Params{Pieces: 4, NodesPerPiece: 20, WiresPerPiece: 40, CrossFraction: 0.2, Seed: 42}
}

func TestBuildStructure(t *testing.T) {
	c, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if !c.PrivateNodes.Disjoint() || !c.PrivateNodes.Complete() {
		t.Error("private partition must be disjoint and complete")
	}
	if !c.PieceWires.Disjoint() {
		t.Error("wire partition must be disjoint")
	}
	if c.AllNodes.Disjoint() {
		t.Error("all-nodes partition must be aliased (ghosts overlap privates)")
	}
	// Every ghost node must be outside the piece's own block.
	c.LaunchDomain.Each(func(p domain.Point) bool {
		ghost := c.GhostNodes.MustSubregion(p)
		private := c.PrivateNodes.MustSubregion(p)
		if ghost.Overlaps(private) {
			t.Errorf("piece %v: ghost overlaps private", p)
		}
		return true
	})
	// Wire endpoints must be valid node indices.
	in := region.MustFieldI64(c.Wires.Root(), FieldInNode)
	out := region.MustFieldI64(c.Wires.Root(), FieldOutNode)
	total := int64(c.Params.Pieces * c.Params.NodesPerPiece)
	c.Wires.Root().Domain.Each(func(w domain.Point) bool {
		if in.Get(w) < 0 || in.Get(w) >= total || out.Get(w) < 0 || out.Get(w) >= total {
			t.Fatalf("wire %v endpoints out of range", w)
		}
		return true
	})
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{}); err == nil {
		t.Error("zero params should error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalVoltage() != b.TotalVoltage() {
		t.Error("same seed must produce identical circuits")
	}
}

func runtimeMatchesReference(t *testing.T, cfg rt.Config, iters int) {
	t.Helper()
	ref, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	Reference(ref, iters)

	c, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(cfg)
	app := NewApp(c, r)
	if err := app.Run(iters); err != nil {
		t.Fatal(err)
	}

	refV := region.MustFieldF64(ref.Nodes.Root(), FieldVoltage)
	gotV := region.MustFieldF64(c.Nodes.Root(), FieldVoltage)
	maxDiff := 0.0
	c.Nodes.Root().Domain.Each(func(p domain.Point) bool {
		d := math.Abs(refV.Get(p) - gotV.Get(p))
		if d > maxDiff {
			maxDiff = d
		}
		return true
	})
	// Reduction reordering allows tiny float drift; anything larger means
	// a missed dependency.
	if maxDiff > 1e-9 {
		t.Errorf("max voltage divergence from reference = %g", maxDiff)
	}
}

func TestRuntimeMatchesReferenceAllConfigs(t *testing.T) {
	for _, dcr := range []bool{false, true} {
		for _, idx := range []bool{false, true} {
			cfg := rt.Config{
				Nodes: 2, ProcsPerNode: 2, DCR: dcr, IndexLaunches: idx,
				VerifyLaunches: true,
			}
			name := "noDCR"
			if dcr {
				name = "DCR"
			}
			if idx {
				name += "+IDX"
			} else {
				name += "+noIDX"
			}
			t.Run(name, func(t *testing.T) {
				runtimeMatchesReference(t, cfg, 5)
			})
		}
	}
}

func TestRuntimeWithTracingMatchesReference(t *testing.T) {
	ref, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6
	Reference(ref, iters)

	c, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, Tracing: true})
	app := NewApp(c, r)
	for i := 0; i < iters; i++ {
		if err := r.BeginTrace(100); err != nil {
			t.Fatal(err)
		}
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(100); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	st := r.Stats()
	if st.TraceReplays != iters-1 {
		t.Errorf("replays = %d, want %d", st.TraceReplays, iters-1)
	}

	refV := region.MustFieldF64(ref.Nodes.Root(), FieldVoltage)
	gotV := region.MustFieldF64(c.Nodes.Root(), FieldVoltage)
	maxDiff := 0.0
	c.Nodes.Root().Domain.Each(func(p domain.Point) bool {
		d := math.Abs(refV.Get(p) - gotV.Get(p))
		if d > maxDiff {
			maxDiff = d
		}
		return true
	})
	if maxDiff > 1e-9 {
		t.Errorf("traced run diverges from reference by %g", maxDiff)
	}
}

func TestRuntimeWithBulkTracingMatchesReference(t *testing.T) {
	// The future-work mode: launch-granularity tracing must still produce
	// reference-identical results.
	ref, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	Reference(ref, iters)

	c, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{
		Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Tracing: true, BulkTracing: true,
	})
	app := NewApp(c, r)
	for i := 0; i < iters; i++ {
		if err := r.BeginTrace(200); err != nil {
			t.Fatal(err)
		}
		if err := app.Step(); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(200); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	if st := r.Stats(); st.TraceReplays != iters-1 {
		t.Errorf("replays = %d, want %d", st.TraceReplays, iters-1)
	}

	refV := region.MustFieldF64(ref.Nodes.Root(), FieldVoltage)
	gotV := region.MustFieldF64(c.Nodes.Root(), FieldVoltage)
	maxDiff := 0.0
	c.Nodes.Root().Domain.Each(func(p domain.Point) bool {
		d := math.Abs(refV.Get(p) - gotV.Get(p))
		if d > maxDiff {
			maxDiff = d
		}
		return true
	})
	if maxDiff > 1e-9 {
		t.Errorf("bulk-traced run diverges from reference by %g", maxDiff)
	}
}

func TestLaunchesPassSafetyChecks(t *testing.T) {
	// All circuit launches use identity functors and must verify
	// statically (the paper: "verified entirely by Regent's static checker
	// and does not incur any runtime cost").
	c, err := Build(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r := rt.MustNew(rt.Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, VerifyLaunches: true})
	app := NewApp(c, r)
	if err := app.Run(2); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", st.Fallbacks)
	}
	if st.DynamicCheckEvals != 0 {
		t.Errorf("dynamic evaluations = %d, want 0 (trivial functors)", st.DynamicCheckEvals)
	}
}

func TestSimProgramShape(t *testing.T) {
	prog := SimProgram(SimParams{Nodes: 8, TasksPerNode: 1, WiresPerTask: 2e5, Iters: 3})
	if len(prog.Body) != 3 || prog.Iterations != 3 {
		t.Fatalf("body=%d iters=%d", len(prog.Body), prog.Iterations)
	}
	res, err := sim.Run(sim.Config{
		Machine: machine.PizDaint(8), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, DynChecks: true,
	}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3*3*8 {
		t.Errorf("tasks = %d, want 72", res.Tasks)
	}
	// Throughput should land in the right ballpark (≈ 5e6 wires/s/node).
	tput := WiresPerSecond(2e5*8, 3, res.MakespanSec) / 8
	if tput < 3e6 || tput > 6e6 {
		t.Errorf("throughput per node = %.3g wires/s, want ~5e6", tput)
	}
}

func TestSimWeakScalingOrdering(t *testing.T) {
	// At 512 nodes the four configurations must order as in Figure 5:
	// DCR+IDX fastest, then DCR+NoIDX, then the centralized pair.
	const nodes = 512
	prog := func() sim.Program {
		return SimProgram(SimParams{Nodes: nodes, TasksPerNode: 1, WiresPerTask: 2e5, Iters: 10})
	}
	run := func(dcr, idx bool) float64 {
		res, err := sim.Run(sim.Config{
			Machine: machine.PizDaint(nodes), Cost: sim.DefaultCosts(),
			DCR: dcr, IDX: idx, Tracing: true, DynChecks: true,
		}, prog())
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	dcrIdx := run(true, true)
	dcrNo := run(true, false)
	cenIdx := run(false, true)
	cenNo := run(false, false)
	if !(dcrIdx < dcrNo && dcrNo < cenNo && cenNo < cenIdx) {
		t.Errorf("config ordering violated: DCR+IDX=%.4f DCR+NoIDX=%.4f NoDCR+NoIDX=%.4f NoDCR+IDX=%.4f",
			dcrIdx, dcrNo, cenNo, cenIdx)
	}
}
