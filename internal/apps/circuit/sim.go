package circuit

import (
	"math"

	"indexlaunch/internal/sim"
)

// Per-stage GPU throughputs in wires/second for one P100-class processor.
// Together they yield ≈ 5·10⁶ wires/s/node at full efficiency, matching the
// scale of the paper's Figure 5 y-axis.
const (
	rateCalc   = 1.0e7
	rateDist   = 1.67e7
	rateUpdate = 2.5e7

	// A wire's exchanged state (voltage + charge contributions) in bytes;
	// CrossFraction of wires touch remote nodes.
	wireStateBytes = 16.0
	crossFraction  = 0.05

	// perMessageSec is the software overhead of one point-to-point ghost
	// message; unstructured graphs exchange with many distinct peers.
	perMessageSec = 3e-6

	// Per-task issuance/analysis cost when circuit tasks are issued
	// individually: unstructured ghost region requirements make both the
	// initial analysis and its trace replay expensive relative to
	// structured codes.
	perTaskIssue  = 14e-6
	perTaskReplay = 9e-6
	// skewCoeff scales the load-imbalance model: random graphs give the
	// slowest piece ~skewCoeff·sqrt(ln N / normalized piece size) extra
	// work, which bites exactly when strong scaling shrinks pieces.
	skewCoeff = 0.4
	skewUnit  = 5000.0
)

// imbalance returns the fractional slowdown of the slowest piece.
func imbalance(nodes int, wiresPerTask float64) float64 {
	if wiresPerTask <= 0 {
		return 0
	}
	return skewCoeff * math.Sqrt(math.Log(float64(nodes)+1)*skewUnit/wiresPerTask)
}

// ghostPeers estimates the number of distinct pieces a piece exchanges
// ghost data with: g uniform draws over n-1 targets hit ≈ (n-1)(1-e^(-g/(n-1)))
// distinct pieces.
func ghostPeers(nodes int, wiresPerTask float64) float64 {
	if nodes <= 1 {
		return 0
	}
	g := crossFraction * wiresPerTask
	m := float64(nodes - 1)
	return m * (1 - math.Exp(-g/m))
}

// WiresPerSecond converts a simulated makespan back to the paper's
// throughput metric.
func WiresPerSecond(totalWires float64, iters int, makespan float64) float64 {
	return totalWires * float64(iters) / makespan
}

// SimParams sizes the simulated circuit workload.
type SimParams struct {
	// Nodes is the cluster size.
	Nodes int
	// TasksPerNode is 1 for the paper's main runs (one task per GPU per
	// stage) and 10 for the overdecomposed run of Figure 6.
	TasksPerNode int
	// WiresPerTask is the per-task problem size.
	WiresPerTask float64
	// Iters is the number of timesteps.
	Iters int
}

// SimProgram builds the simulator workload for one circuit run: three index
// launches per iteration with the dependence pattern of the real code
// (currents need last iteration's voltages including ghosts; charge
// distribution follows currents; voltage updates follow charge reductions
// from neighboring pieces).
func SimProgram(p SimParams) sim.Program {
	tasks := p.Nodes * p.TasksPerNode
	ghostBytes := crossFraction * p.WiresPerTask * wireStateBytes
	// Slowest-piece skew and per-peer message software overhead stretch
	// each task; both effects grow as strong scaling shrinks the pieces.
	stretch := 1 + imbalance(p.Nodes, p.WiresPerTask)
	msg := ghostPeers(p.Nodes, p.WiresPerTask) * perMessageSec
	stage := func(rate float64) float64 {
		return p.WiresPerTask/rate*stretch + msg
	}
	body := []sim.Launch{
		{
			Name:          "calc_new_currents",
			Points:        tasks,
			ComputeSec:    stage(rateCalc),
			CommBytes:     ghostBytes,
			Args:          2,
			PerTaskIssue:  perTaskIssue,
			PerTaskReplay: perTaskReplay,
			// Needs the previous iteration's voltages: own piece and the
			// pieces its ghost nodes live in (launch 3 positions back is
			// update_voltages of the previous iteration).
			Deps: []sim.DepSpec{sim.Neighbors1D(3, 1, tasks)},
		},
		{
			Name:          "distribute_charge",
			Points:        tasks,
			ComputeSec:    stage(rateDist),
			CommBytes:     0,
			Args:          2,
			PerTaskIssue:  perTaskIssue,
			PerTaskReplay: perTaskReplay,
			Deps:          []sim.DepSpec{sim.SamePoint(1)},
		},
		{
			Name:          "update_voltages",
			Points:        tasks,
			ComputeSec:    p.WiresPerTask / rateUpdate * stretch,
			CommBytes:     ghostBytes,
			Args:          1,
			PerTaskIssue:  perTaskIssue,
			PerTaskReplay: perTaskReplay,
			// Charge reductions arrive from neighboring pieces.
			Deps: []sim.DepSpec{sim.Neighbors1D(1, 1, tasks)},
		},
	}
	return sim.Program{Name: "circuit", Body: body, Iterations: p.Iters}
}
