// Package circuit implements the paper's first evaluation code (§6.1): a
// simulation of an electrical circuit on an unstructured graph, previously
// used to evaluate dynamic control replication. The circuit is partitioned
// into pieces; each iteration runs three stages as index launches with
// trivial (identity) projection functors:
//
//	calc_new_currents  — reads node voltages (own + ghost), updates wire currents
//	distribute_charge  — reads wire currents, reduces charge into nodes (own + ghost)
//	update_voltages    — updates private node voltages from accumulated charge
//
// The package provides both a real implementation on the rt runtime (used
// by examples and correctness tests, validated against a sequential
// reference) and a workload generator for the cluster simulator (used to
// regenerate Figures 4–6).
package circuit

import (
	"fmt"
	"math/rand"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
	"indexlaunch/internal/rt"
)

// Node fields.
const (
	FieldVoltage region.FieldID = iota
	FieldCharge
	FieldCapacitance
	FieldLeakage
)

// Wire fields.
const (
	FieldCurrent region.FieldID = iota
	FieldResistance
	FieldInNode  // int64: source node index
	FieldOutNode // int64: sink node index
)

// Params sizes a circuit.
type Params struct {
	// Pieces is the number of graph pieces (one task per piece per stage).
	Pieces int
	// NodesPerPiece and WiresPerPiece size each piece.
	NodesPerPiece int
	WiresPerPiece int
	// CrossFraction is the fraction of wires whose sink lies in another
	// piece (creating the ghost regions).
	CrossFraction float64
	// Seed makes graph generation deterministic.
	Seed int64
}

// Circuit holds the built graph: region trees, partitions and launch
// domains ready for execution.
type Circuit struct {
	Params Params

	Nodes *region.Tree
	Wires *region.Tree

	// PrivateNodes is the disjoint partition of nodes by owning piece.
	PrivateNodes *region.Partition
	// GhostNodes is the aliased partition: piece p's subregion holds the
	// remote nodes p's wires touch.
	GhostNodes *region.Partition
	// AllNodes is the aliased partition combining private and ghost nodes
	// per piece — what calc_new_currents reads voltages through.
	AllNodes *region.Partition
	// PieceWires is the disjoint partition of wires by piece.
	PieceWires *region.Partition

	// LaunchDomain is the pieces domain [0, Pieces).
	LaunchDomain domain.Domain
}

// Build generates the graph and its partitions.
func Build(p Params) (*Circuit, error) {
	if p.Pieces < 1 || p.NodesPerPiece < 1 || p.WiresPerPiece < 1 {
		return nil, fmt.Errorf("circuit: invalid params %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	totalNodes := int64(p.Pieces * p.NodesPerPiece)
	totalWires := int64(p.Pieces * p.WiresPerPiece)

	nodeFields := region.MustFieldSpace(
		region.Field{ID: FieldVoltage, Name: "voltage", Kind: region.F64},
		region.Field{ID: FieldCharge, Name: "charge", Kind: region.F64},
		region.Field{ID: FieldCapacitance, Name: "capacitance", Kind: region.F64},
		region.Field{ID: FieldLeakage, Name: "leakage", Kind: region.F64},
	)
	wireFields := region.MustFieldSpace(
		region.Field{ID: FieldCurrent, Name: "current", Kind: region.F64},
		region.Field{ID: FieldResistance, Name: "resistance", Kind: region.F64},
		region.Field{ID: FieldInNode, Name: "in_node", Kind: region.I64},
		region.Field{ID: FieldOutNode, Name: "out_node", Kind: region.I64},
	)

	nodes, err := region.NewTree("circuit_nodes", domain.Range1(0, totalNodes-1), nodeFields)
	if err != nil {
		return nil, err
	}
	wires, err := region.NewTree("circuit_wires", domain.Range1(0, totalWires-1), wireFields)
	if err != nil {
		return nil, err
	}

	c := &Circuit{
		Params:       p,
		Nodes:        nodes,
		Wires:        wires,
		LaunchDomain: domain.Range1(0, int64(p.Pieces)-1),
	}

	// Initialize node state.
	voltage := region.MustFieldF64(nodes.Root(), FieldVoltage)
	charge := region.MustFieldF64(nodes.Root(), FieldCharge)
	capacitance := region.MustFieldF64(nodes.Root(), FieldCapacitance)
	leakage := region.MustFieldF64(nodes.Root(), FieldLeakage)
	for i := int64(0); i < totalNodes; i++ {
		pt := domain.Pt1(i)
		voltage.Set(pt, 2*rng.Float64()-1)
		charge.Set(pt, 0)
		capacitance.Set(pt, 1+0.2*rng.Float64())
		leakage.Set(pt, 0.1*rng.Float64())
	}

	// Wire topology: each wire starts in its own piece; a CrossFraction of
	// sinks land in a random other piece.
	current := region.MustFieldF64(wires.Root(), FieldCurrent)
	resistance := region.MustFieldF64(wires.Root(), FieldResistance)
	inNode := region.MustFieldI64(wires.Root(), FieldInNode)
	outNode := region.MustFieldI64(wires.Root(), FieldOutNode)
	for piece := 0; piece < p.Pieces; piece++ {
		base := int64(piece * p.NodesPerPiece)
		for w := 0; w < p.WiresPerPiece; w++ {
			wi := int64(piece*p.WiresPerPiece + w)
			src := base + rng.Int63n(int64(p.NodesPerPiece))
			var dst int64
			if p.Pieces > 1 && rng.Float64() < p.CrossFraction {
				other := rng.Intn(p.Pieces - 1)
				if other >= piece {
					other++
				}
				dst = int64(other*p.NodesPerPiece) + rng.Int63n(int64(p.NodesPerPiece))
			} else {
				dst = base + rng.Int63n(int64(p.NodesPerPiece))
			}
			pt := domain.Pt1(wi)
			inNode.Set(pt, src)
			outNode.Set(pt, dst)
			current.Set(pt, 0)
			resistance.Set(pt, 1+rng.Float64())
		}
	}

	// Partitions: pieces own contiguous node/wire blocks; ghost regions
	// are *derived from the data* with dependent partitioning, exactly as
	// the real circuit does — each piece's ghosts are the image of its
	// wires' sink field minus its own private nodes, and the view passed
	// to tasks is the union of private and ghost nodes.
	if c.PrivateNodes, err = nodes.PartitionEqual(nodes.Root(), "private", p.Pieces); err != nil {
		return nil, err
	}
	if c.PieceWires, err = wires.PartitionEqual(wires.Root(), "piece_wires", p.Pieces); err != nil {
		return nil, err
	}
	if c.GhostNodes, err = region.PartitionImageI64(nodes, "ghost", c.PieceWires, FieldOutNode, c.PrivateNodes); err != nil {
		return nil, err
	}
	if c.AllNodes, err = region.UnionPartitions("all_nodes", c.PrivateNodes, c.GhostNodes); err != nil {
		return nil, err
	}
	return c, nil
}

// App binds the circuit tasks to a runtime.
type App struct {
	C  *Circuit
	RT *rt.Runtime

	calcCurrents core.TaskID
	distCharge   core.TaskID
	updateVolt   core.TaskID
}

// NewApp registers the circuit tasks on the runtime.
func NewApp(c *Circuit, r *rt.Runtime) *App {
	a := &App{C: c, RT: r}
	a.calcCurrents = r.MustRegisterTask("circuit.calc_new_currents", a.calcNewCurrents)
	a.distCharge = r.MustRegisterTask("circuit.distribute_charge", a.distributeCharge)
	a.updateVolt = r.MustRegisterTask("circuit.update_voltages", a.updateVoltages)
	return a
}

// Step issues one simulation iteration as three index launches.
func (a *App) Step() error {
	c := a.C
	id := projection.Identity(1)
	calc := core.MustForall("calc_new_currents", a.calcCurrents, c.LaunchDomain,
		core.Requirement{Partition: c.PieceWires, Functor: id, Priv: privilege.ReadWrite,
			Fields: []region.FieldID{FieldCurrent, FieldResistance, FieldInNode, FieldOutNode}},
		core.Requirement{Partition: c.AllNodes, Functor: id, Priv: privilege.Read,
			Fields: []region.FieldID{FieldVoltage}},
	)
	dist := core.MustForall("distribute_charge", a.distCharge, c.LaunchDomain,
		core.Requirement{Partition: c.PieceWires, Functor: id, Priv: privilege.Read,
			Fields: []region.FieldID{FieldCurrent, FieldInNode, FieldOutNode}},
		core.Requirement{Partition: c.AllNodes, Functor: id, Priv: privilege.Reduce,
			RedOp: privilege.OpSumF64, Fields: []region.FieldID{FieldCharge}},
	)
	update := core.MustForall("update_voltages", a.updateVolt, c.LaunchDomain,
		core.Requirement{Partition: c.PrivateNodes, Functor: id, Priv: privilege.ReadWrite,
			Fields: []region.FieldID{FieldVoltage, FieldCharge, FieldCapacitance, FieldLeakage}},
	)
	for _, l := range []*core.IndexLaunch{calc, dist, update} {
		if _, err := a.RT.ExecuteIndex(l); err != nil {
			return err
		}
	}
	return nil
}

// Run executes iters iterations and waits for completion.
func (a *App) Run(iters int) error {
	for i := 0; i < iters; i++ {
		if err := a.Step(); err != nil {
			return err
		}
	}
	a.RT.Fence()
	return nil
}

const dt = 0.01

func (a *App) calcNewCurrents(ctx *rt.Context) ([]byte, error) {
	cur, err := ctx.WriteF64(0, FieldCurrent)
	if err != nil {
		return nil, err
	}
	res, err := ctx.ReadF64(0, FieldResistance)
	if err != nil {
		return nil, err
	}
	in, err := ctx.ReadI64(0, FieldInNode)
	if err != nil {
		return nil, err
	}
	out, err := ctx.ReadI64(0, FieldOutNode)
	if err != nil {
		return nil, err
	}
	volt, err := ctx.ReadF64(1, FieldVoltage)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(w domain.Point) bool {
		src := domain.Pt1(in.Get(w))
		dst := domain.Pt1(out.Get(w))
		cur.Set(w, (volt.Get(src)-volt.Get(dst))/res.Get(w))
		return true
	})
	return nil, nil
}

func (a *App) distributeCharge(ctx *rt.Context) ([]byte, error) {
	cur, err := ctx.ReadF64(0, FieldCurrent)
	if err != nil {
		return nil, err
	}
	in, err := ctx.ReadI64(0, FieldInNode)
	if err != nil {
		return nil, err
	}
	out, err := ctx.ReadI64(0, FieldOutNode)
	if err != nil {
		return nil, err
	}
	charge, err := ctx.ReduceF64(1, FieldCharge)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(w domain.Point) bool {
		i := cur.Get(w)
		charge.Fold(domain.Pt1(in.Get(w)), -dt*i)
		charge.Fold(domain.Pt1(out.Get(w)), dt*i)
		return true
	})
	return nil, nil
}

func (a *App) updateVoltages(ctx *rt.Context) ([]byte, error) {
	volt, err := ctx.WriteF64(0, FieldVoltage)
	if err != nil {
		return nil, err
	}
	charge, err := ctx.WriteF64(0, FieldCharge)
	if err != nil {
		return nil, err
	}
	cap, err := ctx.ReadF64(0, FieldCapacitance)
	if err != nil {
		return nil, err
	}
	leak, err := ctx.ReadF64(0, FieldLeakage)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(nd domain.Point) bool {
		v := volt.Get(nd) + charge.Get(nd)/cap.Get(nd)
		v -= v * leak.Get(nd) * dt
		volt.Set(nd, v)
		charge.Set(nd, 0)
		return true
	})
	return nil, nil
}

// TotalVoltage sums node voltages — a cheap integration check.
func (c *Circuit) TotalVoltage() float64 {
	s, err := region.SumF64(c.Nodes.Root(), FieldVoltage)
	if err != nil {
		panic(err)
	}
	return s
}
