package obs

// TraceRef is the span context that rides with a job through every layer:
// the trace identity shared by all of the job's spans, the span's own
// identity, and its parent. It lives in obs — not internal/trace — so the
// runtime, transport, scheduler and simulator can stamp the events they
// already emit without a new import edge; internal/trace consumes the
// stamped events through the recorder's sink.
//
// The zero TraceRef means "untraced": emission sites pass it freely and the
// recorder treats the resulting events exactly like pre-trace events, so
// disabled tracing keeps the one-branch/zero-alloc discipline.
//
// Identities derive from splitmix64, the repo's standard deterministic
// mixer: the same admission seed yields the same span tree on every run,
// which is what the golden span-tree and rt/sim parity tests lock down.
type TraceRef struct {
	// Trace identifies the whole trace (one per job); 0 means untraced.
	Trace uint64
	// Span is this context's own span identity.
	Span uint64
	// Parent is the identity of the enclosing span; 0 at the root.
	Parent uint64
}

// Valid reports whether the ref carries a live trace.
func (t TraceRef) Valid() bool { return t.Trace != 0 }

// Child derives the n-th child context: same trace, a fresh span identity
// mixed from the parent span and n, parented on t. Distinct n values give
// distinct children; the derivation is pure, so concurrent layers can
// partition n-space (e.g. per-attempt offsets) instead of synchronizing on
// a counter.
func (t TraceRef) Child(n uint64) TraceRef {
	if t.Trace == 0 {
		return TraceRef{}
	}
	return TraceRef{
		Trace:  t.Trace,
		Span:   nonZero(Mix64(t.Span ^ (n+1)*0x9e3779b97f4a7c15)),
		Parent: t.Span,
	}
}

// NewTraceRef derives a root span context from a seed (typically the job
// ID mixed with the scheduler's trace seed). The root's Parent is 0.
func NewTraceRef(seed uint64) TraceRef {
	trace := nonZero(Mix64(seed))
	return TraceRef{Trace: trace, Span: nonZero(Mix64(trace))}
}

// Mix64 is the splitmix64 finalizer used across the repo for deterministic
// hashing (chaos plans, jitter, sharding).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nonZero keeps identities out of the reserved "untraced" value.
func nonZero(x uint64) uint64 {
	if x == 0 {
		return 1
	}
	return x
}
