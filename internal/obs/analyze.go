package obs

import (
	"fmt"
	"sort"
	"strings"
)

// StageTotal aggregates one pipeline stage across the profile.
type StageTotal struct {
	Stage   Stage
	Count   int
	TotalNS int64
}

// StageTotals aggregates span counts and durations per stage, in taxonomy
// order; stages with no events are omitted.
func StageTotals(p *Profile) []StageTotal {
	var acc [numStages]StageTotal
	for _, ev := range p.Events {
		acc[ev.Stage].Count++
		acc[ev.Stage].TotalNS += ev.Dur
	}
	out := make([]StageTotal, 0, numStages)
	for i := range acc {
		if acc[i].Count > 0 {
			acc[i].Stage = Stage(i)
			out = append(out, acc[i])
		}
	}
	return out
}

// TagTotal aggregates one launch tag: processor (execute) time vs runtime
// pipeline (issue/logical/distribute/physical/replay) time.
type TagTotal struct {
	Tag       string
	Spans     int
	ExecNS    int64
	RuntimeNS int64
}

// TagTotals aggregates per-launch attribution, sorted by execute time
// descending, then name. Events with no tag (fences, faults) are grouped
// under "(untagged)".
func TagTotals(p *Profile) []TagTotal {
	acc := map[string]*TagTotal{}
	order := []string{}
	for _, ev := range p.Events {
		tag := ev.Tag
		if tag == "" {
			tag = "(untagged)"
		}
		t := acc[tag]
		if t == nil {
			t = &TagTotal{Tag: tag}
			acc[tag] = t
			order = append(order, tag)
		}
		t.Spans++
		switch ev.Stage {
		case StageExecute:
			t.ExecNS += ev.Dur
		case StageIssue, StageLogical, StageDistribute, StagePhysical, StageReplay:
			t.RuntimeNS += ev.Dur
		}
	}
	out := make([]TagTotal, 0, len(order))
	for _, tag := range order {
		out = append(out, *acc[tag])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExecNS != out[j].ExecNS {
			return out[i].ExecNS > out[j].ExecNS
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// NodeBusy is one node's per-stage busy time.
type NodeBusy struct {
	Node      int
	ExecNS    int64
	RuntimeNS int64
}

// NodeTotals aggregates busy time per node.
func NodeTotals(p *Profile) []NodeBusy {
	nodes := p.Nodes
	if nodes < 1 {
		nodes = 1
	}
	out := make([]NodeBusy, nodes)
	for i := range out {
		out[i].Node = i
	}
	for _, ev := range p.Events {
		n := int(ev.Node)
		if n < 0 || n >= nodes {
			continue
		}
		switch ev.Stage {
		case StageExecute:
			out[n].ExecNS += ev.Dur
		case StageIssue, StageLogical, StageDistribute, StagePhysical, StageReplay:
			out[n].RuntimeNS += ev.Dur
		}
	}
	return out
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }

// RenderSummary prints the header line and the per-stage and per-launch
// aggregation tables.
func RenderSummary(p *Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: source=%s nodes=%d events=%d dropped=%d wall=%.6fs\n",
		p.Source, p.Nodes, len(p.Events), p.Dropped, seconds(p.WallNS))

	b.WriteString("\nper-stage totals\n")
	fmt.Fprintf(&b, "%-12s %8s %14s %14s %7s\n", "stage", "spans", "total", "mean", "%wall")
	for _, st := range StageTotals(p) {
		pct := 0.0
		if p.WallNS > 0 {
			pct = float64(st.TotalNS) / float64(p.WallNS) * 100
		}
		fmt.Fprintf(&b, "%-12s %8d %13.6fs %13.9fs %6.1f%%\n",
			st.Stage, st.Count, seconds(st.TotalNS), seconds(st.TotalNS)/float64(st.Count), pct)
	}

	b.WriteString("\nper-launch totals\n")
	fmt.Fprintf(&b, "%-28s %8s %14s %14s\n", "launch", "spans", "execute", "runtime")
	for _, t := range TagTotals(p) {
		fmt.Fprintf(&b, "%-28s %8d %13.6fs %13.6fs\n",
			t.Tag, t.Spans, seconds(t.ExecNS), seconds(t.RuntimeNS))
	}
	return b.String()
}

// stageMarks paints timelines; later entries in paintOrder win when spans
// overlap a column, so execution dominates analysis which dominates
// bookkeeping — the convention of internal/bench's ASCII charts.
var stageMarks = [numStages]byte{
	StageIssue:      'i',
	StageLogical:    'l',
	StageDistribute: 'd',
	StagePhysical:   'p',
	StageExecute:    '#',
	StageRetry:      '!',
	StageFault:      'X',
	StageFence:      'f',
	StageCapture:    'c',
	StageReplay:     'r',
	StageSend:       '>',
	StageRecv:       '<',
	StageRetransmit: '~',
	StageHealth:     'H',
	StageSpeculate:  'S',
	StageEnqueue:    'q',
	StageAdmit:      'a',
	StagePreempt:    'P',
	StageDrain:      'D',
	StageJournal:    'j',
	StageSnapshot:   'z',
	StageRecover:    'R',
}

var paintOrder = []Stage{
	StageDrain, StageEnqueue, StageAdmit,
	StageFence, StageCapture, StageIssue, StageLogical, StageDistribute,
	StageSend, StageRecv, StageRetransmit,
	StageReplay, StagePhysical, StageExecute, StageRetry, StageFault,
	StageHealth, StageSpeculate, StagePreempt,
}

// RenderTimeline draws one row per node: the profile's wall clock scaled to
// width columns, each column showing the highest-priority stage active
// there. The right margin reports the node's execute occupancy.
func RenderTimeline(p *Profile, width int) string {
	if width < 16 {
		width = 16
	}
	nodes := p.Nodes
	if nodes < 1 {
		nodes = 1
	}
	var b strings.Builder
	if p.WallNS <= 0 || len(p.Events) == 0 {
		return "node timelines: no events\n"
	}
	perCol := float64(p.WallNS) / float64(width)
	fmt.Fprintf(&b, "node timelines (1 col = %.6fs)\n", seconds(int64(perCol)))

	rows := make([][]byte, nodes)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	byStage := map[Stage][]Event{}
	for _, ev := range p.Events {
		byStage[ev.Stage] = append(byStage[ev.Stage], ev)
	}
	for _, st := range paintOrder {
		for _, ev := range byStage[st] {
			n := int(ev.Node)
			if n < 0 || n >= nodes {
				continue
			}
			lo := int(float64(ev.Start) / float64(p.WallNS) * float64(width))
			hi := int(float64(ev.End()) / float64(p.WallNS) * float64(width))
			if lo < 0 {
				lo = 0
			}
			if lo >= width {
				lo = width - 1
			}
			if hi <= lo {
				hi = lo + 1 // instants and sub-column spans paint one column
			}
			if hi > width {
				hi = width
			}
			for c := lo; c < hi; c++ {
				rows[n][c] = stageMarks[st]
			}
		}
	}
	busy := NodeTotals(p)
	for n, row := range rows {
		occ := float64(busy[n].ExecNS) / float64(p.WallNS) * 100
		fmt.Fprintf(&b, "node %-4d |%s| exec %5.1f%%\n", n, string(row), occ)
	}
	b.WriteString("          +" + strings.Repeat("-", width) + "+\n")
	b.WriteString("  marks: # execute  p physical  d distribute  l logical  i issue  r replay  ! retry  X fault  f fence  c capture  > send  < recv  ~ retransmit\n")
	return b.String()
}

// CritStep is one span on the critical path with the wait (gap) separating
// it from its binding predecessor.
type CritStep struct {
	Ev     Event
	WaitNS int64
}

// Contribution aggregates critical-path time by task name.
type Contribution struct {
	Task    string
	Count   int
	TotalNS int64
}

// CritPath is the longest dependence chain through the recorded span graph.
type CritPath struct {
	// Steps runs from the chain's root to the last-finishing span.
	Steps []CritStep
	// TotalNS is the completion time of the chain's final span — the
	// profile-clock time the whole run was bound by.
	TotalNS int64
	// SpanNS is the execution time actually on the chain; TotalNS - SpanNS
	// is wait and unattributed (analysis, transfer) time.
	SpanNS int64
	// Contrib breaks SpanNS down by task, largest first.
	Contrib []Contribution
}

// CriticalPath walks the dependence graph backwards from the last-finishing
// identified span, at each step moving to the predecessor with the latest
// completion — the dependence that actually bound the start. Spans without
// IDs (runtime-stage spans) do not participate; their cost shows up as wait
// time between chain steps.
func CriticalPath(p *Profile) CritPath {
	byID := map[int64]Event{}
	var last Event
	for _, ev := range p.Events {
		if ev.ID == 0 {
			continue
		}
		byID[ev.ID] = ev
		if last.ID == 0 || ev.End() > last.End() {
			last = ev
		}
	}
	if last.ID == 0 {
		return CritPath{}
	}
	preds := map[int64][]int64{}
	for _, e := range p.Edges {
		preds[e.To] = append(preds[e.To], e.From)
	}
	var rev []CritStep
	seen := map[int64]bool{}
	cur := last
	for {
		seen[cur.ID] = true
		var best Event
		for _, from := range preds[cur.ID] {
			ev, ok := byID[from]
			if !ok || seen[ev.ID] {
				continue
			}
			if best.ID == 0 || ev.End() > best.End() {
				best = ev
			}
		}
		if best.ID == 0 {
			rev = append(rev, CritStep{Ev: cur, WaitNS: 0})
			break
		}
		wait := cur.Start - best.End()
		if wait < 0 {
			wait = 0
		}
		rev = append(rev, CritStep{Ev: cur, WaitNS: wait})
		cur = best
	}
	cp := CritPath{TotalNS: last.End()}
	contrib := map[string]*Contribution{}
	for i := len(rev) - 1; i >= 0; i-- {
		step := rev[i]
		cp.Steps = append(cp.Steps, step)
		cp.SpanNS += step.Ev.Dur
		name := step.Ev.Task
		if name == "" {
			name = step.Ev.Tag
		}
		c := contrib[name]
		if c == nil {
			c = &Contribution{Task: name}
			contrib[name] = c
		}
		c.Count++
		c.TotalNS += step.Ev.Dur
	}
	for _, c := range contrib {
		cp.Contrib = append(cp.Contrib, *c)
	}
	sort.Slice(cp.Contrib, func(i, j int) bool {
		if cp.Contrib[i].TotalNS != cp.Contrib[j].TotalNS {
			return cp.Contrib[i].TotalNS > cp.Contrib[j].TotalNS
		}
		return cp.Contrib[i].Task < cp.Contrib[j].Task
	})
	return cp
}

// Render prints the critical path: the headline total, the top task
// contributors, and up to maxSteps chain steps.
func (cp CritPath) Render(wallNS int64, maxSteps int) string {
	var b strings.Builder
	if len(cp.Steps) == 0 {
		return "critical path: no identified spans recorded\n"
	}
	pct := 0.0
	if wallNS > 0 {
		pct = float64(cp.TotalNS) / float64(wallNS) * 100
	}
	fmt.Fprintf(&b, "critical path: %d spans, total %.6fs (%.1f%% of %.6fs elapsed); on-chain execute %.6fs, waits %.6fs\n",
		len(cp.Steps), seconds(cp.TotalNS), pct, seconds(wallNS),
		seconds(cp.SpanNS), seconds(cp.TotalNS-cp.SpanNS))
	b.WriteString("  top contributors:\n")
	for i, c := range cp.Contrib {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "    %-28s %6d spans %13.6fs\n", c.Task, c.Count, seconds(c.TotalNS))
	}
	if maxSteps <= 0 {
		maxSteps = 12
	}
	n := len(cp.Steps)
	show := n
	if show > maxSteps {
		show = maxSteps
	}
	fmt.Fprintf(&b, "  chain (last %d of %d):\n", show, n)
	for _, step := range cp.Steps[n-show:] {
		name := step.Ev.Task
		if name == "" {
			name = step.Ev.Tag
		}
		pt := ""
		if step.Ev.Point.Dim > 0 {
			pt = step.Ev.Point.String()
		}
		fmt.Fprintf(&b, "    node %-3d %-28s %-8s wait %10.6fs run %10.6fs end %10.6fs\n",
			step.Ev.Node, name, pt, seconds(step.WaitNS), seconds(step.Ev.Dur), seconds(step.Ev.End()))
	}
	return b.String()
}
