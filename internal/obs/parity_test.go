package obs_test

import (
	"fmt"
	"sort"
	"testing"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

// TestRTSimParity locks in the shared-schema contract: the same small
// circuit workload run for real on internal/rt and through the internal/sim
// cost model must produce event streams with identical launch-tag sets and
// identical stage sets — one tool views both. Ordering and durations differ
// (wall clock vs cost model); the vocabulary may not.
func TestRTSimParity(t *testing.T) {
	const pieces, iters = 4, 3

	// Real run, profiling on.
	rec := obs.NewRecorder("rt", pieces, 1<<12)
	r := rt.MustNew(rt.Config{
		Nodes: pieces, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Profile: rec,
	})
	c, err := circuit.Build(circuit.Params{
		Pieces: pieces, NodesPerPiece: 8, WiresPerPiece: 16, CrossFraction: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := circuit.NewApp(c, r).Run(iters); err != nil {
		t.Fatal(err)
	}
	rtProf := rec.Snapshot()

	// Simulated run of the same workload shape.
	simRec := obs.NewRecorder("sim", pieces, 1<<12)
	_, err = sim.Run(sim.Config{
		Machine: machine.PizDaint(pieces), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, Profile: simRec,
	}, circuit.SimProgram(circuit.SimParams{
		Nodes: pieces, TasksPerNode: 1, WiresPerTask: 1000, Iters: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}
	simProf := simRec.Snapshot()

	if rtProf.Dropped != 0 || simProf.Dropped != 0 {
		t.Fatalf("events dropped (rt=%d sim=%d): rings sized too small for parity check",
			rtProf.Dropped, simProf.Dropped)
	}
	if got, want := tagSet(rtProf), tagSet(simProf); got != want {
		t.Errorf("launch tags differ:\n  rt:  %s\n  sim: %s", got, want)
	}
	if got, want := stageSet(rtProf), stageSet(simProf); got != want {
		t.Errorf("stage sets differ:\n  rt:  %s\n  sim: %s", got, want)
	}

	// Both streams must yield a walkable critical path ending at the wall.
	for _, p := range []*obs.Profile{rtProf, simProf} {
		cp := obs.CriticalPath(p)
		if len(cp.Steps) == 0 {
			t.Errorf("%s profile has no critical path", p.Source)
		}
		if cp.TotalNS > p.WallNS {
			t.Errorf("%s critical path total %d exceeds wall %d", p.Source, cp.TotalNS, p.WallNS)
		}
	}
}

func tagSet(p *obs.Profile) string {
	seen := map[string]bool{}
	for _, ev := range p.Events {
		tag := ev.Tag
		if tag == "" {
			tag = "(untagged)"
		}
		seen[tag] = true
	}
	return setString(seen)
}

func stageSet(p *obs.Profile) string {
	seen := map[string]bool{}
	for _, ev := range p.Events {
		seen[ev.Stage.String()] = true
	}
	return setString(seen)
}

func setString(seen map[string]bool) string {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("%v", keys)
}
