package obs

import (
	"testing"

	"indexlaunch/internal/domain"
)

// The overhead contract: a nil *Recorder (profiling disabled) must cost one
// branch and zero allocations per hook, and an enabled recorder must stay
// cheap enough to leave on during benchmarks.

func TestDisabledRecorderAllocatesNothing(t *testing.T) {
	var r *Recorder
	pt := domain.Pt1(3)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(0, StageExecute, "task", "tag", pt, 0, 10)
		r.SpanID(r.NextID(), 0, StageExecute, "task", "tag", pt, 0, 10)
		r.Mark(0, StageRetry, "task", "tag", pt, 5)
		r.Edge(1, 2)
		_ = r.Now()
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f bytes-events per op, want 0", allocs)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Recorder
	pt := domain.Pt1(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span(0, StageExecute, "task", "tag", pt, int64(i), int64(i)+10)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRecorder("rt", 4, 1<<12)
	pt := domain.Pt1(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span(i%4, StageExecute, "task", "tag", pt, int64(i), int64(i)+10)
	}
}

func BenchmarkSpanEnabledParallel(b *testing.B) {
	r := NewRecorder("rt", 8, 1<<12)
	pt := domain.Pt1(3)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		node := int(r.NextID()) % 8
		i := int64(0)
		for pb.Next() {
			r.Span(node, StageExecute, "task", "tag", pt, i, i+10)
			i++
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRecorder("rt", 4, 1<<12)
	pt := domain.Pt1(3)
	for i := 0; i < 1<<12; i++ {
		r.Span(i%4, StageExecute, "task", "tag", pt, int64(i), int64(i)+10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := r.Snapshot(); len(p.Events) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
