package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"indexlaunch/internal/domain"
)

func TestStageStringRoundTrip(t *testing.T) {
	for _, st := range Stages() {
		name := st.String()
		if name == "unknown" {
			t.Fatalf("stage %d has no name", st)
		}
		got, ok := ParseStage(name)
		if !ok || got != st {
			t.Fatalf("ParseStage(%q) = %v, %v; want %v, true", name, got, ok, st)
		}
	}
	if _, ok := ParseStage("bogus"); ok {
		t.Fatal("ParseStage accepted an unknown name")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 || r.NextID() != 0 {
		t.Fatal("nil recorder clocks/IDs not zero")
	}
	r.Span(0, StageExecute, "t", "g", domain.Pt1(1), 0, 10)
	r.SpanID(1, 0, StageExecute, "t", "g", domain.Pt1(1), 0, 10)
	r.Mark(0, StageRetry, "t", "g", domain.Pt1(1), 5)
	r.Edge(1, 2)
	r.SetWall(99)
	p := r.Snapshot()
	if len(p.Events) != 0 || p.Source != "disabled" {
		t.Fatalf("nil snapshot = %+v", p)
	}
}

func TestSnapshotSortsAndInfersWall(t *testing.T) {
	r := NewRecorder("rt", 2, 64)
	r.Span(1, StageExecute, "b", "g", domain.Pt1(1), 50, 80)
	r.Span(0, StageIssue, "a", "g", domain.Point{}, 0, 10)
	r.Span(0, StageExecute, "a", "g", domain.Pt1(0), 10, 40)
	p := r.Snapshot()
	if len(p.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(p.Events))
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i-1].Start > p.Events[i].Start {
			t.Fatalf("events not sorted by start: %+v", p.Events)
		}
	}
	if p.WallNS != 80 {
		t.Fatalf("inferred wall = %d, want 80", p.WallNS)
	}
	r.SetWall(100)
	if got := r.Snapshot().WallNS; got != 100 {
		t.Fatalf("explicit wall = %d, want 100", got)
	}
}

func TestRingOverflowCountsDropped(t *testing.T) {
	r := NewRecorder("rt", 1, 16)
	for i := 0; i < 40; i++ {
		r.Span(0, StageExecute, "t", "g", domain.Pt1(int64(i)), int64(i), int64(i)+1)
	}
	p := r.Snapshot()
	if len(p.Events) != 16 {
		t.Fatalf("kept %d events, want ring capacity 16", len(p.Events))
	}
	if p.Dropped != 24 {
		t.Fatalf("dropped = %d, want 24", p.Dropped)
	}
	// The survivors must be the newest events (starts 24..39).
	if p.Events[0].Start != 24 || p.Events[15].Start != 39 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", p.Events[0].Start, p.Events[15].Start)
	}
}

func TestConcurrentRecording(t *testing.T) {
	const perG, gs = 200, 8
	r := NewRecorder("rt", 4, perG*gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := r.NextID()
				r.SpanID(id, g%4, StageExecute, "t", "g", domain.Pt1(int64(i)), int64(i), int64(i)+1)
				r.Edge(id, id+1)
			}
		}(g)
	}
	wg.Wait()
	p := r.Snapshot()
	if len(p.Events) != perG*gs {
		t.Fatalf("events = %d, want %d", len(p.Events), perG*gs)
	}
	if len(p.Edges) != perG*gs {
		t.Fatalf("edges = %d, want %d", len(p.Edges), perG*gs)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := NewRecorder("sim", 2, 64)
	id1, id2 := r.NextID(), r.NextID()
	r.Span(0, StageIssue, "calc", "calc", domain.Point{}, 0, 1000)
	r.SpanID(id1, 0, StageExecute, "calc", "calc", domain.Pt1(3), 1000, 5000)
	r.SpanID(id2, 1, StageExecute, "calc", "calc", domain.Pt3(1, 2, 3), 5100, 9000)
	r.Mark(1, StageRetry, "calc", "calc", domain.Pt1(3), 6000)
	r.Edge(id1, id2)
	r.SetWall(9000)
	p := r.Snapshot()

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"cat":"execute"`, `"pid":1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace JSON missing %s:\n%s", want, out)
		}
	}

	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "sim" || got.Nodes != 2 || got.WallNS != 9000 || got.Dropped != 0 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Events) != len(p.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(p.Events))
	}
	for i := range p.Events {
		if got.Events[i] != p.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], p.Events[i])
		}
	}
	if len(got.Edges) != 1 || got.Edges[0] != (Edge{From: id1, To: id2}) {
		t.Fatalf("edges = %+v", got.Edges)
	}
}

func TestParsePoint(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want domain.Point
		ok   bool
	}{
		{"<7>", domain.Pt1(7), true},
		{"<1,2>", domain.Pt2(1, 2), true},
		{"<1,2,3>", domain.Pt3(1, 2, 3), true},
		{"<-4,5>", domain.Pt2(-4, 5), true},
		{"1,2", domain.Point{}, false},
		{"<1,2,3,4>", domain.Point{}, false},
		{"<x>", domain.Point{}, false},
	} {
		got, err := parsePoint(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("parsePoint(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// chainProfile builds a profile with a known longest chain:
// a(0-10) -> b(20-50) -> d(60-100), with c(0-90) a longer-running but
// unbound span feeding d too.
func chainProfile() *Profile {
	r := NewRecorder("sim", 2, 64)
	a, b, c, d := r.NextID(), r.NextID(), r.NextID(), r.NextID()
	r.SpanID(a, 0, StageExecute, "a", "g", domain.Pt1(0), 0, 10)
	r.SpanID(b, 0, StageExecute, "b", "g", domain.Pt1(1), 20, 50)
	r.SpanID(c, 1, StageExecute, "c", "g", domain.Pt1(2), 0, 90)
	r.SpanID(d, 1, StageExecute, "d", "g", domain.Pt1(3), 90, 100)
	r.Edge(a, b)
	r.Edge(b, d)
	r.Edge(c, d)
	r.SetWall(100)
	return r.Snapshot()
}

func TestCriticalPath(t *testing.T) {
	cp := CriticalPath(chainProfile())
	if cp.TotalNS != 100 {
		t.Fatalf("total = %d, want 100", cp.TotalNS)
	}
	// d's binding predecessor is c (ends at 90, later than b's 50).
	var names []string
	for _, s := range cp.Steps {
		names = append(names, s.Ev.Task)
	}
	if got := strings.Join(names, ">"); got != "c>d" {
		t.Fatalf("chain = %s, want c>d", got)
	}
	if cp.SpanNS != 100 {
		t.Fatalf("on-chain time = %d, want 100", cp.SpanNS)
	}
	out := cp.Render(100, 10)
	if !strings.Contains(out, "critical path: 2 spans") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCriticalPathNoSpans(t *testing.T) {
	r := NewRecorder("rt", 1, 16)
	r.Span(0, StageIssue, "a", "g", domain.Point{}, 0, 5)
	cp := CriticalPath(r.Snapshot())
	if len(cp.Steps) != 0 {
		t.Fatalf("steps = %d, want 0", len(cp.Steps))
	}
	if !strings.Contains(cp.Render(5, 5), "no identified spans") {
		t.Fatal("render of empty path missing notice")
	}
}

func TestAggregatesAndRenderers(t *testing.T) {
	p := chainProfile()
	st := StageTotals(p)
	if len(st) != 1 || st[0].Stage != StageExecute || st[0].Count != 4 || st[0].TotalNS != 140 {
		t.Fatalf("stage totals = %+v", st)
	}
	tags := TagTotals(p)
	if len(tags) != 1 || tags[0].Tag != "g" || tags[0].ExecNS != 140 {
		t.Fatalf("tag totals = %+v", tags)
	}
	nodes := NodeTotals(p)
	if nodes[0].ExecNS != 40 || nodes[1].ExecNS != 100 {
		t.Fatalf("node totals = %+v", nodes)
	}
	sum := RenderSummary(p)
	if !strings.Contains(sum, "source=sim") || !strings.Contains(sum, "execute") {
		t.Fatalf("summary:\n%s", sum)
	}
	tl := RenderTimeline(p, 40)
	if !strings.Contains(tl, "node 0") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline:\n%s", tl)
	}
}
