package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"indexlaunch/internal/domain"
)

// Profiles are exported as Chrome trace_event JSON (the object form with a
// "traceEvents" array), directly loadable by chrome://tracing and Perfetto:
// each span becomes a complete ("X") event with pid = node and tid = stage
// lane, so the viewer shows one process per node with the pipeline stages
// stacked as threads. The exact nanosecond times, span IDs and dependence
// edges ride along in args/otherData, so ReadChromeTrace recovers the
// Profile losslessly — the dump is both the interchange format and the
// viewer format.

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
	OtherData       *chromeOther  `json:"otherData,omitempty"`
}

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	// Task, Tag and Point carry the schema fields; NS carries the exact
	// [start, dur] nanoseconds (ts/dur are microseconds and lossy).
	Task  string   `json:"task,omitempty"`
	Tag   string   `json:"tag,omitempty"`
	Point string   `json:"point,omitempty"`
	ID    int64    `json:"id,omitempty"`
	NS    [2]int64 `json:"ns"`
	// Trace, Span and Parent carry the span context as hex strings — JSON
	// numbers are lossy above 2^53, hex round-trips the full uint64.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Name labels metadata ("M") events.
	Name string `json:"name,omitempty"`
}

// hexID renders a trace identity for export; "" for 0 keeps untraced
// events byte-identical to pre-trace dumps.
func hexID(v uint64) string {
	if v == 0 {
		return ""
	}
	return strconv.FormatUint(v, 16)
}

// parseHexID inverts hexID, tolerating absent fields.
func parseHexID(s string) uint64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}

type chromeOther struct {
	Source  string `json:"source"`
	Nodes   int    `json:"nodes"`
	WallNS  int64  `json:"wallNs"`
	Dropped int64  `json:"dropped"`
	Edges   []Edge `json:"edges,omitempty"`
}

// WriteChromeTrace renders the profile as Chrome trace_event JSON.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	t := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: &chromeOther{
			Source: p.Source, Nodes: p.Nodes, WallNS: p.WallNS,
			Dropped: p.Dropped, Edges: p.Edges,
		},
	}
	for n := 0; n < p.Nodes; n++ {
		t.TraceEvents = append(t.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: n,
			Args: &chromeArgs{Name: fmt.Sprintf("node %d", n)},
		})
	}
	for _, ev := range p.Events {
		name := ev.Task
		if name == "" {
			name = ev.Tag
		}
		if name == "" {
			name = ev.Stage.String()
		}
		ce := chromeEvent{
			Name: name,
			Cat:  ev.Stage.String(),
			Ph:   "X",
			TS:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			PID:  int(ev.Node),
			TID:  int(ev.Stage),
			Args: &chromeArgs{Task: ev.Task, Tag: ev.Tag, ID: ev.ID, NS: [2]int64{ev.Start, ev.Dur},
				Trace: hexID(ev.Trace), Span: hexID(ev.Span), Parent: hexID(ev.Parent)},
		}
		if ev.Point.Dim > 0 {
			ce.Args.Point = ev.Point.String()
		}
		t.TraceEvents = append(t.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// WriteFile writes the profile to path as Chrome trace JSON.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadChromeTrace parses a profile previously written by WriteChromeTrace.
// Metadata events and events of unknown categories (e.g. hand-added ones)
// are skipped.
func ReadChromeTrace(r io.Reader) (*Profile, error) {
	var t chromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: parsing trace: %w", err)
	}
	p := &Profile{}
	if t.OtherData != nil {
		p.Source = t.OtherData.Source
		p.Nodes = t.OtherData.Nodes
		p.WallNS = t.OtherData.WallNS
		p.Dropped = t.OtherData.Dropped
		p.Edges = t.OtherData.Edges
	}
	for _, ce := range t.TraceEvents {
		if ce.Ph != "X" {
			continue
		}
		st, ok := ParseStage(ce.Cat)
		if !ok {
			continue
		}
		ev := Event{Node: int32(ce.PID), Stage: st}
		if ce.Args != nil {
			ev.Task = ce.Args.Task
			ev.Tag = ce.Args.Tag
			ev.ID = ce.Args.ID
			ev.Start, ev.Dur = ce.Args.NS[0], ce.Args.NS[1]
			ev.Trace = parseHexID(ce.Args.Trace)
			ev.Span = parseHexID(ce.Args.Span)
			ev.Parent = parseHexID(ce.Args.Parent)
			if ce.Args.Point != "" {
				pt, err := parsePoint(ce.Args.Point)
				if err != nil {
					return nil, err
				}
				ev.Point = pt
			}
		} else {
			ev.Start = int64(ce.TS * 1e3)
			ev.Dur = int64(ce.Dur * 1e3)
		}
		if int(ev.Node) >= p.Nodes {
			p.Nodes = int(ev.Node) + 1
		}
		p.Events = append(p.Events, ev)
	}
	sortEvents(p.Events)
	if p.WallNS == 0 {
		for _, ev := range p.Events {
			if ev.End() > p.WallNS {
				p.WallNS = ev.End()
			}
		}
	}
	return p, nil
}

// ReadFile loads a profile dumped by WriteFile.
func ReadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadChromeTrace(f)
}

// parsePoint inverts domain.Point.String ("<1,2,3>").
func parsePoint(s string) (domain.Point, error) {
	body, ok := strings.CutPrefix(s, "<")
	if ok {
		body, ok = strings.CutSuffix(body, ">")
	}
	if !ok {
		return domain.Point{}, fmt.Errorf("obs: malformed point %q", s)
	}
	var p domain.Point
	for _, part := range strings.Split(body, ",") {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil || p.Dim >= domain.MaxDim {
			return domain.Point{}, fmt.Errorf("obs: malformed point %q", s)
		}
		p.C[p.Dim] = v
		p.Dim++
	}
	return p, nil
}
