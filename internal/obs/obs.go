// Package obs is the runtime's observability layer: a low-overhead span
// recorder with a single event schema shared by the real runtime
// (internal/rt) and the cluster simulator (internal/sim), so real and
// simulated executions are profiled, exported and analyzed with one tool.
//
// The schema mirrors the paper's pipeline (§5): every span carries the node
// it is attributed to, the pipeline stage (issuance → logical analysis →
// distribution → physical analysis → execute, plus retry/fault/fence and
// trace capture/replay events), the task variant, the launch tag, and the
// launch point. Execution spans additionally carry a span ID, and recorded
// dependence edges between span IDs form the graph the critical-path walker
// (analyze.go) traverses.
//
// Recording is lock-light: one fixed-capacity ring buffer per node, each
// guarded by its own mutex, so workers on different nodes never contend.
// When a ring fills, the oldest events are overwritten and counted as
// dropped. A nil *Recorder is the disabled profiler: every method is
// nil-receiver-safe, costs one branch, and allocates nothing, which is what
// lets the runtime keep its hooks inline on the hot path.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"indexlaunch/internal/domain"
)

// Stage identifies the pipeline stage (or runtime incident) a span belongs
// to. The first five values are the paper's pipeline stages in order; the
// rest are runtime incidents that ride on the same stream.
type Stage uint8

const (
	// StageIssue is launch issuance: the O(1) runtime call that creates the
	// launch (minus time accounted to the finer stages below).
	StageIssue Stage = iota
	// StageLogical is whole-launch logical analysis, including dynamic
	// safety checks.
	StageLogical
	// StageDistribute is distribution: sharding- or slicing-functor
	// evaluation and slice/broadcast handling.
	StageDistribute
	// StagePhysical is per-point physical dependence analysis.
	StagePhysical
	// StageExecute is task-body execution on a processor.
	StageExecute
	// StageRetry marks one re-execution of a failed attempt.
	StageRetry
	// StageFault marks a fault incident: a node kill, a re-mapped point, or
	// a task skipped because an upstream task failed.
	StageFault
	// StageFence is an execution fence wait.
	StageFence
	// StageCapture marks a completed trace capture episode.
	StageCapture
	// StageReplay is trace-replay work standing in for skipped analysis.
	StageReplay
	// StageSend is one reliable hop send on the message transport: the span
	// covers first transmission through ack receipt.
	StageSend
	// StageRecv marks a message arriving (first receipt) at a node.
	StageRecv
	// StageRetransmit marks one ack-timeout-driven re-send of a hop.
	StageRetransmit
	// StageHealth marks a failure-detector transition: a node turning
	// suspect, dead, quarantined, or rejoining the node set.
	StageHealth
	// StageSpeculate marks a straggler-speculation incident: a backup
	// launch, a backup that won, or a losing attempt being discarded.
	StageSpeculate
	// StageEnqueue marks a job accepted into a scheduler queue
	// (internal/sched).
	StageEnqueue
	// StageAdmit is a job's queue residency: the span from enqueue to the
	// moment the scheduler dispatched it onto an executor.
	StageAdmit
	// StagePreempt marks a running job yielding its executor to a
	// higher-priority arrival and returning to the queue.
	StagePreempt
	// StageDrain is a scheduler drain: the span from the drain request to
	// the last job completing.
	StageDrain
	// StageJournal marks one scheduler decision appended to the write-ahead
	// job journal (internal/wal via internal/sched).
	StageJournal
	// StageSnapshot is a journal snapshot: the span covering state capture,
	// the atomic snapshot write and log compaction.
	StageSnapshot
	// StageRecover is startup recovery: the span from opening the journal
	// to the rebuilt scheduler state (snapshot load plus log replay).
	StageRecover
	// StageJob is a whole job's root span: admission to completion. It is
	// synthesized by the trace layer (internal/trace) when a job finishes,
	// and every other span of the job's trace descends from it.
	StageJob

	numStages = int(StageJob) + 1
)

var stageNames = [numStages]string{
	"issue", "logical", "distribute", "physical", "execute",
	"retry", "fault", "fence", "capture", "replay",
	"send", "recv", "retransmit", "health", "speculate",
	"enqueue", "admit", "preempt", "drain",
	"journal", "snapshot", "recover",
	"job",
}

// String renders the stage name used in exports and reports.
func (s Stage) String() string {
	if int(s) < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// ParseStage inverts String. It reports false for unknown names.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Stages returns every stage in taxonomy order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Event is one recorded span. Start and Dur are nanoseconds on the
// profile's clock: wall time since the recorder's epoch for real runs,
// simulated time for simulator runs — the analysis code never needs to know
// which. Instant events (retries, faults, captures) have Dur == 0.
type Event struct {
	// ID is the span's identity in the dependence graph; 0 for spans that
	// take no part in it (only execute spans carry IDs).
	ID int64
	// Node is the node the span is attributed to.
	Node int32
	// Stage is the pipeline stage.
	Stage Stage
	// Task is the task variant name; empty for launch-level events.
	Task string
	// Tag is the launch tag the span belongs to; empty for runtime-level
	// events such as fences.
	Tag string
	// Point is the launch point for per-point spans; the zero Point (Dim 0)
	// for launch-level spans.
	Point domain.Point
	// Start and Dur are nanoseconds on the profile clock.
	Start int64
	Dur   int64
	// Trace, Span and Parent are the distributed-trace identities
	// (TraceRef); all zero on untraced events.
	Trace  uint64
	Span   uint64
	Parent uint64
}

// Ref returns the event's span context.
func (e Event) Ref() TraceRef { return TraceRef{Trace: e.Trace, Span: e.Span, Parent: e.Parent} }

// End returns the span's completion time.
func (e Event) End() int64 { return e.Start + e.Dur }

// Edge is one dependence edge between execute-span IDs: the task recorded
// as To waited on the task recorded as From.
type Edge struct {
	From int64 `json:"f"`
	To   int64 `json:"t"`
}

// Profile is an immutable snapshot of a recording: the input to export and
// analysis. Events are sorted by start time.
type Profile struct {
	// Source names the producer, "rt" or "sim".
	Source string
	// Nodes is the machine size the profile was recorded on.
	Nodes int
	// WallNS is the run's elapsed (or simulated makespan) time in
	// nanoseconds.
	WallNS int64
	// Dropped counts events lost to ring overflow.
	Dropped int64
	Events  []Event
	Edges   []Edge
}

// ring is one node's event buffer.
type ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended
}

// add appends ev, reporting whether it overwrote an unconsumed event.
func (rg *ring) add(ev Event) bool {
	rg.mu.Lock()
	overwrote := rg.next >= uint64(len(rg.buf))
	rg.buf[rg.next%uint64(len(rg.buf))] = ev
	rg.next++
	rg.mu.Unlock()
	return overwrote
}

// Recorder collects spans from concurrent producers. The zero value is not
// usable; create recorders with NewRecorder. A nil *Recorder is the
// disabled profiler: all methods are no-ops that allocate nothing.
type Recorder struct {
	source string
	epoch  time.Time
	rings  []*ring

	edgeMu sync.Mutex
	edges  []Edge

	nextID  atomic.Int64
	wallNS  atomic.Int64
	dropped atomic.Int64

	// sink, when set, receives every trace-stamped event as it is recorded
	// — the tee internal/trace buffers complete traces from. The rings stay
	// the lossy profile path; the sink sees events before any overwrite.
	sink atomic.Pointer[func(Event)]
}

// NewRecorder returns a recorder with one ring of perNode events for each
// of nodes nodes. Out-of-range node attributions clamp to the edge rings.
func NewRecorder(source string, nodes, perNode int) *Recorder {
	if nodes < 1 {
		nodes = 1
	}
	if perNode < 16 {
		perNode = 16
	}
	r := &Recorder{source: source, epoch: time.Now(), rings: make([]*ring, nodes)}
	for i := range r.rings {
		r.rings[i] = &ring{buf: make([]Event, perNode)}
	}
	return r
}

// Now returns nanoseconds since the recorder's epoch — the Start clock for
// real-time producers. Returns 0 on a nil recorder.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// NextID allocates a span ID for the dependence graph (IDs start at 1).
// Returns 0 on a nil recorder.
func (r *Recorder) NextID() int64 {
	if r == nil {
		return 0
	}
	return r.nextID.Add(1)
}

// Span records a span from start to end on the profile clock. No-op on a
// nil recorder.
func (r *Recorder) Span(node int, st Stage, task, tag string, point domain.Point, start, end int64) {
	if r == nil {
		return
	}
	r.record(Event{Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point,
		Start: start, Dur: end - start})
}

// SpanID is Span carrying a dependence-graph identity.
func (r *Recorder) SpanID(id int64, node int, st Stage, task, tag string, point domain.Point, start, end int64) {
	if r == nil {
		return
	}
	r.record(Event{ID: id, Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point,
		Start: start, Dur: end - start})
}

// Mark records an instant event at time at. No-op on a nil recorder.
func (r *Recorder) Mark(node int, st Stage, task, tag string, point domain.Point, at int64) {
	if r == nil {
		return
	}
	r.record(Event{Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point, Start: at})
}

// SpanTC is Span stamped with a trace context. A zero TraceRef degrades to
// a plain Span. No-op on a nil recorder.
func (r *Recorder) SpanTC(tc TraceRef, node int, st Stage, task, tag string, point domain.Point, start, end int64) {
	if r == nil {
		return
	}
	r.record(Event{Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point,
		Start: start, Dur: end - start, Trace: tc.Trace, Span: tc.Span, Parent: tc.Parent})
}

// SpanIDTC is SpanID stamped with a trace context.
func (r *Recorder) SpanIDTC(tc TraceRef, id int64, node int, st Stage, task, tag string, point domain.Point, start, end int64) {
	if r == nil {
		return
	}
	r.record(Event{ID: id, Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point,
		Start: start, Dur: end - start, Trace: tc.Trace, Span: tc.Span, Parent: tc.Parent})
}

// MarkTC is Mark stamped with a trace context.
func (r *Recorder) MarkTC(tc TraceRef, node int, st Stage, task, tag string, point domain.Point, at int64) {
	if r == nil {
		return
	}
	r.record(Event{Node: int32(node), Stage: st, Task: task, Tag: tag, Point: point, Start: at,
		Trace: tc.Trace, Span: tc.Span, Parent: tc.Parent})
}

// SetSink installs (or, with nil, removes) the trace tee. The sink must be
// safe for concurrent calls; it runs inline on the recording path, so it
// should be cheap.
func (r *Recorder) SetSink(fn func(Event)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&fn)
}

// Dropped returns the number of events lost to ring overflow so far — the
// live counterpart of Profile.Dropped, cheap enough to export as a gauge.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Edge records a dependence edge between two span IDs; edges with a zero
// endpoint are dropped. No-op on a nil recorder.
func (r *Recorder) Edge(from, to int64) {
	if r == nil || from == 0 || to == 0 {
		return
	}
	r.edgeMu.Lock()
	r.edges = append(r.edges, Edge{From: from, To: to})
	r.edgeMu.Unlock()
}

// SetWall fixes the profile's elapsed time. Without it, Snapshot infers the
// wall from the latest event end.
func (r *Recorder) SetWall(ns int64) {
	if r == nil {
		return
	}
	r.wallNS.Store(ns)
}

func (r *Recorder) record(ev Event) {
	n := int(ev.Node)
	if n < 0 {
		n = 0
	}
	if n >= len(r.rings) {
		n = len(r.rings) - 1
	}
	if r.rings[n].add(ev) {
		r.dropped.Add(1)
	}
	if s := r.sink.Load(); s != nil && ev.Trace != 0 {
		(*s)(ev)
	}
}

// Snapshot copies the recording into an immutable Profile, oldest event
// first per ring, globally sorted by start time. The recorder keeps
// recording; snapshots are cheap enough to take mid-run.
func (r *Recorder) Snapshot() *Profile {
	if r == nil {
		return &Profile{Source: "disabled"}
	}
	p := &Profile{Source: r.source, Nodes: len(r.rings), WallNS: r.wallNS.Load()}
	for _, rg := range r.rings {
		rg.mu.Lock()
		capacity := uint64(len(rg.buf))
		kept := rg.next
		if kept > capacity {
			p.Dropped += int64(kept - capacity)
			kept = capacity
		}
		for i := rg.next - kept; i < rg.next; i++ {
			p.Events = append(p.Events, rg.buf[i%capacity])
		}
		rg.mu.Unlock()
	}
	r.edgeMu.Lock()
	p.Edges = append(p.Edges, r.edges...)
	r.edgeMu.Unlock()
	sortEvents(p.Events)
	if p.WallNS == 0 {
		for _, ev := range p.Events {
			if ev.End() > p.WallNS {
				p.WallNS = ev.End()
			}
		}
	}
	return p
}

// sortEvents orders events by start time, then node, then stage, keeping
// snapshots deterministic for equal-start events.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Stage < b.Stage
	})
}
