package obs

import (
	"bytes"
	"testing"

	"indexlaunch/internal/domain"
)

// TraceRef is the span-context currency every layer trades in, so its
// derivation must be deterministic, collision-resistant across the child
// keys the layers reserve, and free on the disabled path.

func TestNewTraceRefDeterministic(t *testing.T) {
	a, b := NewTraceRef(42), NewTraceRef(42)
	if a != b {
		t.Fatalf("NewTraceRef(42) not deterministic: %+v vs %+v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("NewTraceRef(42) invalid: %+v", a)
	}
	if a.Parent != 0 {
		t.Fatalf("root has parent %#x, want 0", a.Parent)
	}
	if c := NewTraceRef(43); c.Trace == a.Trace {
		t.Fatalf("seeds 42 and 43 collide on trace ID %#x", a.Trace)
	}
	// Seed 0 must still produce a valid (non-zero) context.
	if z := NewTraceRef(0); !z.Valid() {
		t.Fatalf("NewTraceRef(0) invalid: %+v", z)
	}
}

func TestChildDerivation(t *testing.T) {
	root := NewTraceRef(7)
	seen := map[uint64]uint64{}
	for n := uint64(0); n < 4096; n++ {
		c := root.Child(n)
		if c.Trace != root.Trace {
			t.Fatalf("child %d changed trace ID", n)
		}
		if c.Parent != root.Span {
			t.Fatalf("child %d parent = %#x, want %#x", n, c.Parent, root.Span)
		}
		if !c.Valid() {
			t.Fatalf("child %d invalid", n)
		}
		if prev, dup := seen[c.Span]; dup {
			t.Fatalf("children %d and %d collide on span %#x", prev, n, c.Span)
		}
		seen[c.Span] = n
	}
	if c1, c2 := root.Child(5), root.Child(5); c1 != c2 {
		t.Fatalf("Child not deterministic: %+v vs %+v", c1, c2)
	}
	// An invalid context derives only invalid children: untraced stays
	// untraced through every layer without call-site branching.
	var zero TraceRef
	if c := zero.Child(3); c.Valid() || c != (TraceRef{}) {
		t.Fatalf("zero ref derived non-zero child %+v", c)
	}
}

func TestTraceRefDisabledAllocatesNothing(t *testing.T) {
	var r *Recorder
	var zero TraceRef
	pt := domain.Pt1(3)
	allocs := testing.AllocsPerRun(1000, func() {
		tc := zero.Child(1)
		r.SpanTC(tc, 0, StageExecute, "task", "tag", pt, 0, 10)
		r.SpanIDTC(tc, 7, 0, StageExecute, "task", "tag", pt, 0, 10)
		r.MarkTC(tc, 0, StageRetry, "task", "tag", pt, 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled TC hooks allocate %.1f per op, want 0", allocs)
	}
}

func TestRecorderSinkSeesOnlyTracedEvents(t *testing.T) {
	r := NewRecorder("test", 1, 64)
	var got []Event
	r.SetSink(func(ev Event) { got = append(got, ev) })
	tc := NewTraceRef(1)
	r.SpanTC(tc, 0, StageIssue, "a", "a", domain.Point{}, 0, 5)
	r.Span(0, StageIssue, "b", "b", domain.Point{}, 0, 5) // untraced: must not reach the sink
	r.MarkTC(tc.Child(1), 0, StageRecv, "c", "c", domain.Point{}, 6)
	if len(got) != 2 {
		t.Fatalf("sink saw %d events, want 2 (traced only)", len(got))
	}
	if got[0].Trace != tc.Trace || got[0].Span != tc.Span {
		t.Fatalf("sink event 0 lost its stamp: %+v", got[0])
	}
	if got[1].Parent != tc.Span {
		t.Fatalf("sink event 1 parent = %#x, want %#x", got[1].Parent, tc.Span)
	}
	r.SetSink(nil)
	r.SpanTC(tc, 0, StageIssue, "d", "d", domain.Point{}, 7, 9)
	if len(got) != 2 {
		t.Fatalf("events reached a removed sink")
	}
}

func TestRecorderDroppedCountsRingOverflow(t *testing.T) {
	r := NewRecorder("test", 1, 16) // minimum ring
	for i := 0; i < 40; i++ {
		r.Span(0, StageExecute, "t", "t", domain.Point{}, int64(i), int64(i)+1)
	}
	if d := r.Dropped(); d != 40-16 {
		t.Fatalf("Dropped() = %d, want %d", d, 40-16)
	}
	var nilRec *Recorder
	if d := nilRec.Dropped(); d != 0 {
		t.Fatalf("nil recorder Dropped() = %d, want 0", d)
	}
}

func TestChromeTraceRoundTripsTraceStamps(t *testing.T) {
	r := NewRecorder("test", 2, 64)
	tc := NewTraceRef(99)
	r.SpanTC(tc, 0, StageIssue, "launch", "tag", domain.Point{}, 0, 10)
	r.SpanTC(tc.Child(1), 1, StageExecute, "launch", "tag", domain.Pt1(4), 2, 8)
	r.Span(1, StageFence, "", "fence", domain.Point{}, 10, 11) // untraced rides along
	p := r.Snapshot()

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byStage := map[Stage]Event{}
	for _, ev := range back.Events {
		byStage[ev.Stage] = ev
	}
	is := byStage[StageIssue]
	if is.Trace != tc.Trace || is.Span != tc.Span || is.Parent != 0 {
		t.Fatalf("issue span stamps lost in round trip: %+v", is)
	}
	ex := byStage[StageExecute]
	if ex.Parent != tc.Span {
		t.Fatalf("execute span parent = %#x, want %#x", ex.Parent, tc.Span)
	}
	if f := byStage[StageFence]; f.Trace != 0 || f.Span != 0 {
		t.Fatalf("untraced span grew stamps in round trip: %+v", f)
	}
}
