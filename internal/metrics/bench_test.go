package metrics

import "testing"

// The overhead contract, mirroring internal/obs: a nil *Registry (metrics
// disabled) must cost one branch and zero allocations per hook, and enabled
// instruments must stay single-atomic-op cheap. CI runs the benchmarks in
// its smoke pass, so a regression in either direction shows up as allocs/op.

func TestDisabledMetricsAllocatesNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "")
	cv := r.CounterVec("cv_total", "", "k")
	hv := r.HistogramVec("hv_ns", "", "k")
	if NewPipeline(r) != nil {
		t.Fatal("NewPipeline(nil) != nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(5)
		g.Set(3)
		g.Add(-1)
		h.Observe(1234)
		cv.With("x").Inc()
		hv.With("x").Observe(99)
		_ = c.Value()
		_ = h.Count()
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocate %.1f per op, want 0", allocs)
	}
}

// Enabled instruments must not allocate either: recording is atomic ops on
// pre-resolved pointers.
func TestEnabledRecordingAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(4096)
	})
	if allocs != 0 {
		t.Fatalf("enabled recording allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabledParallel(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h_ns", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h_ns", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabledParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_ns", "")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			h.Observe(i)
			i++
		}
	})
}

func BenchmarkVecWithResolution(b *testing.B) {
	v := NewRegistry().CounterVec("v_total", "", "stage")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("issue").Inc()
	}
}

func BenchmarkGather(b *testing.B) {
	r := NewRegistry()
	p := NewPipeline(r)
	for i := int64(0); i < 1000; i++ {
		p.LaunchCalls.Inc()
		p.LatIssue.Observe(i * 100)
		p.LatExecute.Observe(i * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := r.Gather(); len(snap.Families) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
