// Package metrics is the runtime's live-metrics layer: a lock-light
// registry of atomic counters, gauges and log-bucketed (HDR-style) latency
// histograms, paired with internal/obs the way metrics pair with traces in
// Legion's runtime profiler or HPX's performance-counter interface — obs
// answers "where did this run's time go, span by span", metrics answer
// "what are the rates and distributions right now, cheaply, forever".
//
// The overhead contract matches obs: a nil *Registry is the disabled
// state. Every instrument obtained from a nil registry is nil, and every
// method of a nil instrument is a nil-receiver no-op costing one branch and
// zero allocations — enforced by test and benchmark (bench_test.go) — so
// instrumented code keeps its hooks inline on the hot path.
//
// Registration is locked; recording is lock-free. Counter.Add, Gauge.Set
// and Histogram.Observe are single atomic operations on pre-resolved
// instruments; labeled families (CounterVec etc.) resolve a label value to
// an instrument once, at setup time, and hot paths hold the resolved
// pointer. Snapshots (Gather) read the same atomics, so a snapshot taken
// mid-run is never torn: every value it contains was current at some moment
// during the call, and successive snapshots are monotonic for counters and
// histograms.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically non-decreasing atomic counter. A nil *Counter
// is the disabled instrument: Add and Inc are one-branch no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is the disabled
// instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Type is the metric family type.
type Type uint8

const (
	TypeCounter Type = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (label values → instrument) entry of a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
	// fn, when set on a gauge series, is evaluated at Gather time instead
	// of reading g — the pull-style gauge GaugeFunc registers.
	fn func() int64
}

// family is one named metric with a fixed type and label-key schema.
type family struct {
	name      string
	help      string
	typ       Type
	labelKeys []string

	mu     sync.Mutex
	series map[string]*series
	order  []*series
}

// get returns the series for the given label values, creating it on first
// use. Label-value count mismatches panic: they are programmer errors, like
// a malformed format string.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labelKeys) {
		panic(fmt.Sprintf("metrics: %s expects %d label value(s), got %d",
			f.name, len(f.labelKeys), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelVals: append([]string(nil), vals...)}
		switch f.typ {
		case TypeCounter:
			s.c = &Counter{}
		case TypeGauge:
			s.g = &Gauge{}
		case TypeHistogram:
			s.h = &Histogram{}
		}
		f.series[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Registry holds metric families in registration order. A nil *Registry is
// the disabled metrics layer: every constructor returns a nil instrument
// (or nil Vec) whose methods are one-branch no-ops.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
	epoch time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}, epoch: time.Now()}
}

// Epoch returns the registry's creation time (the zero time on nil).
func (r *Registry) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// family registers (or re-fetches) a family. Registration is idempotent:
// the same name returns the same family, so two subsystems naming the same
// metric share one instrument — which is exactly how rt.Stats reads the
// transport's counters without dual bookkeeping. A name re-registered with
// a different type or label schema panics.
func (r *Registry) family(name, help string, typ Type, labelKeys []string) *family {
	mustValidName(name)
	for _, k := range labelKeys {
		mustValidLabel(k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ,
			labelKeys: append([]string(nil), labelKeys...), series: map[string]*series{}}
		r.fams[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, typ, f.typ))
	}
	if len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("metrics: %s re-registered with %d label key(s), was %d",
			name, len(labelKeys), len(f.labelKeys)))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("metrics: %s re-registered with label %q, was %q",
				name, k, f.labelKeys[i]))
		}
	}
	return f
}

// Counter registers (or re-fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeCounter, nil).get(nil).c
}

// Gauge registers (or re-fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeGauge, nil).get(nil).g
}

// GaugeFunc registers a pull-style gauge: fn is evaluated at every Gather
// instead of the instrument being pushed to. It suits values some other
// subsystem already tracks (e.g. obs ring-overflow drops) where mirroring
// into a pushed gauge would mean polling. Re-registering the same name
// replaces the function. fn must be safe for concurrent calls. No-op on a
// nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	f := r.family(name, help, TypeGauge, nil)
	s := f.get(nil)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or re-fetches) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, help, TypeHistogram, nil).get(nil).h
}

// CounterVec is a counter family with one or more label keys. A nil Vec is
// disabled: With returns a nil instrument.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, TypeCounter, labelKeys)}
}

// With resolves one label combination to its counter. Resolution takes the
// family lock; hot paths should resolve once and keep the pointer.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).c
}

// GaugeVec is a gauge family with label keys.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, TypeGauge, labelKeys)}
}

// With resolves one label combination to its gauge.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).g
}

// HistogramVec is a histogram family with label keys.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labelKeys)}
}

// With resolves one label combination to its histogram.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).h
}

// Label is one label pair of a snapshot series.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SeriesSnapshot is one series of a family at snapshot time. Counter and
// gauge series carry Value; histogram series carry Count, Sum and
// cumulative Buckets.
type SeriesSnapshot struct {
	Labels  []Label  `json:"labels,omitempty"`
	Value   int64    `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family at snapshot time.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is an immutable copy of a registry's state: the input to every
// exposition format (Prometheus text, JSON, terminal watch, bench deltas).
type Snapshot struct {
	TakenUnixNS int64            `json:"taken_unix_ns"`
	Families    []FamilySnapshot `json:"families"`
}

// Gather snapshots the registry in registration order. On a nil registry it
// returns an empty snapshot. Counters and histogram buckets are monotonic
// across successive snapshots; a snapshot concurrent with recording derives
// each histogram's count from its buckets, so the exposed `+Inf` bucket
// always equals the exposed count.
func (r *Registry) Gather() Snapshot {
	snap := Snapshot{TakenUnixNS: time.Now().UnixNano()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		order := append([]*series(nil), f.order...)
		fns := make([]func() int64, len(order))
		for i, s := range order {
			fns[i] = s.fn
		}
		f.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ.String()}
		for si, s := range order {
			ss := SeriesSnapshot{}
			for i, k := range f.labelKeys {
				ss.Labels = append(ss.Labels, Label{Key: k, Value: s.labelVals[i]})
			}
			switch f.typ {
			case TypeCounter:
				ss.Value = s.c.Value()
			case TypeGauge:
				if fn := fns[si]; fn != nil {
					ss.Value = fn()
				} else {
					ss.Value = s.g.Value()
				}
			case TypeHistogram:
				ss.Buckets, ss.Count, ss.Sum = s.h.snapshot()
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Scalar is one flattened snapshot value, for terminal rendering and bench
// snapshots: "name{label="v"}" plus derived "_count"/"_sum"/"_p50"/"_p95"/
// "_p99" entries for histograms.
type Scalar struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Scalars flattens a snapshot into named scalar values, in family order.
func (s Snapshot) Scalars() []Scalar {
	var out []Scalar
	for _, f := range s.Families {
		for _, ss := range f.Series {
			base := f.Name + labelSuffix(ss.Labels)
			if f.Type != TypeHistogram.String() {
				out = append(out, Scalar{Name: base, Value: float64(ss.Value)})
				continue
			}
			out = append(out,
				Scalar{Name: base + "_count", Value: float64(ss.Count)},
				Scalar{Name: base + "_sum", Value: float64(ss.Sum)},
				Scalar{Name: base + "_p50", Value: float64(BucketQuantile(ss.Buckets, ss.Count, 0.50))},
				Scalar{Name: base + "_p95", Value: float64(BucketQuantile(ss.Buckets, ss.Count, 0.95))},
				Scalar{Name: base + "_p99", Value: float64(BucketQuantile(ss.Buckets, ss.Count, 0.99))},
			)
		}
	}
	return out
}

func labelSuffix(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Names returns the sorted metric family names — the vocabulary the rt/sim
// metric parity test compares.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.order))
	for _, f := range r.order {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// mustValidName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

// mustValidLabel enforces the Prometheus label-name charset
// [a-zA-Z_][a-zA-Z0-9_]*.
func mustValidLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("metrics: invalid label name %q", name))
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
