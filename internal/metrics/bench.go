package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// Benchmark snapshots: the machine-readable perf trajectory. `idxbench
// -json` writes one BENCH_<name>.json per figure; `idxprof diff` compares
// two snapshots and flags values that moved in their worse direction beyond
// a threshold, which is what CI gates on. Every value carries its own
// orientation (Better: "lower" for costs like makespans, "higher" for
// throughputs), so the comparator needs no out-of-band knowledge.

// BenchValue is one named benchmark measurement.
type BenchValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Better is "lower" (a cost: makespan, ns/op) or "higher" (a
	// throughput). Empty values are informational: diffed but never flagged.
	Better string `json:"better,omitempty"`
}

// BenchSnapshot is one BENCH_<name>.json file.
type BenchSnapshot struct {
	Name        string            `json:"name"`
	CreatedUnix int64             `json:"created_unix,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
	Values      []BenchValue      `json:"values"`
}

// WriteFile writes the snapshot as indented JSON.
func (b BenchSnapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile parses a BENCH_<name>.json file.
func ReadBenchFile(path string) (BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchSnapshot{}, err
	}
	var b BenchSnapshot
	if err := json.Unmarshal(data, &b); err != nil {
		return BenchSnapshot{}, fmt.Errorf("metrics: parsing bench snapshot %s: %w", path, err)
	}
	return b, nil
}

// BenchDelta is one compared value of a bench diff.
type BenchDelta struct {
	Name     string
	Old, New float64
	// Rel is (new-old)/|old|; ±Inf when old is zero and new is not.
	Rel float64
	// Regression reports the value moved in its worse direction by more
	// than the comparator's threshold.
	Regression bool
	// Improvement reports the value moved in its better direction by more
	// than the threshold.
	Improvement bool
}

// BenchDiff compares two snapshots value by value. Values present in only
// one snapshot are skipped (the workload set changed; nothing comparable).
// threshold is the relative change beyond which a move counts, e.g. 0.05
// for 5%.
func BenchDiff(old, cur BenchSnapshot, threshold float64) []BenchDelta {
	oldVals := map[string]BenchValue{}
	for _, v := range old.Values {
		oldVals[v.Name] = v
	}
	var out []BenchDelta
	for _, v := range cur.Values {
		o, ok := oldVals[v.Name]
		if !ok {
			continue
		}
		d := BenchDelta{Name: v.Name, Old: o.Value, New: v.Value}
		switch {
		case o.Value != 0:
			d.Rel = (v.Value - o.Value) / math.Abs(o.Value)
		case v.Value > 0:
			d.Rel = math.Inf(1)
		case v.Value < 0:
			d.Rel = math.Inf(-1)
		}
		worse := d.Rel > threshold
		better := d.Rel < -threshold
		if v.Better == "higher" {
			worse, better = better, worse
		}
		if v.Better != "" {
			d.Regression, d.Improvement = worse, better
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Regressions counts the flagged regressions in a diff.
func Regressions(deltas []BenchDelta) int {
	n := 0
	for _, d := range deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// RenderBenchDiff renders a diff as an aligned table: regressions and
// improvements first, then (unless onlyFlagged) the unchanged values.
func RenderBenchDiff(old, cur BenchSnapshot, deltas []BenchDelta, onlyFlagged bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: %s -> %s (%d comparable values)\n", old.Name, cur.Name, len(deltas))
	flagged := 0
	for _, d := range deltas {
		if !d.Regression && !d.Improvement {
			continue
		}
		flagged++
		verdict := "IMPROVED"
		if d.Regression {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(&b, "  %-10s %-56s %14.6g -> %-14.6g (%+.1f%%)\n",
			verdict, d.Name, d.Old, d.New, d.Rel*100)
	}
	if flagged == 0 {
		b.WriteString("  no values moved beyond the threshold\n")
	}
	if onlyFlagged {
		return b.String()
	}
	for _, d := range deltas {
		if d.Regression || d.Improvement {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %-56s %14.6g -> %-14.6g (%+.1f%%)\n",
			"ok", d.Name, d.Old, d.New, d.Rel*100)
	}
	return b.String()
}
