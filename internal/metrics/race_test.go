package metrics

import (
	"sync"
	"testing"
)

// Snapshot-while-recording semantics, exercised under -race in CI: Gather
// may run concurrently with Observe/Inc from many goroutines, successive
// snapshots must be monotonic for counters and histograms, and every
// snapshot must satisfy the histogram invariant that the +Inf bucket (the
// derived count) equals the last cumulative bucket.

func TestConcurrentRecordingAndSnapshots(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
	)
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat_ns", "")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				// Spread observations across octaves so snapshots see the
				// bucket array mid-update.
				h.Observe(int64(i%1000) * int64(w+1))
				g.Add(-1)
			}
		}(w)
	}

	snapshotter := func() {
		defer wg.Done()
		<-start
		var prevCount, prevSum, prevC int64
		var prevBuckets map[int64]int64
		for i := 0; i < 200; i++ {
			snap := r.Gather()
			var hs SeriesSnapshot
			var cv int64
			for _, f := range snap.Families {
				switch f.Name {
				case "lat_ns":
					hs = f.Series[0]
				case "ops_total":
					cv = f.Series[0].Value
				}
			}
			if cv < prevC {
				t.Errorf("counter went backwards: %d -> %d", prevC, cv)
				return
			}
			prevC = cv
			if hs.Count < prevCount {
				t.Errorf("histogram count went backwards: %d -> %d", prevCount, hs.Count)
				return
			}
			if hs.Sum < prevSum {
				t.Errorf("histogram sum went backwards: %d -> %d", prevSum, hs.Sum)
				return
			}
			prevCount, prevSum = hs.Count, hs.Sum
			// Cumulative within one snapshot; the derived count equals the
			// last cumulative bucket by construction — verify anyway.
			var cum int64
			cur := map[int64]int64{}
			var prevLe int64 = -1
			for _, b := range hs.Buckets {
				if b.Le <= prevLe {
					t.Errorf("bucket bounds not increasing: %d after %d", b.Le, prevLe)
					return
				}
				if b.Count < cum {
					t.Errorf("bucket counts not cumulative at le=%d", b.Le)
					return
				}
				prevLe = b.Le
				cum = b.Count
				cur[b.Le] = b.Count
			}
			if cum != hs.Count {
				t.Errorf("+Inf bucket %d != count %d", cum, hs.Count)
				return
			}
			// Per-bucket monotonicity across snapshots: a bound's cumulative
			// count never decreases. (Compare per bound; new bounds appear as
			// buckets fill in.)
			for le, prev := range prevBuckets {
				// The cumulative count at bound le in the current snapshot is
				// the count of the last bucket with Le <= le.
				var now int64
				for _, b := range hs.Buckets {
					if b.Le > le {
						break
					}
					now = b.Count
				}
				if now < prev {
					t.Errorf("cumulative count at le=%d went backwards: %d -> %d", le, prev, now)
					return
				}
			}
			prevBuckets = cur
		}
	}
	wg.Add(1)
	go snapshotter()

	close(start)
	wg.Wait()

	// Final consistency: every write landed exactly once.
	const total = writers * perWriter
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0 after balanced adds", got)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var wantSum int64
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			wantSum += int64(i%1000) * int64(w+1)
		}
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

// TestConcurrentRegistration hammers idempotent registration from many
// goroutines: everyone must get the same instrument, and concurrent Vec
// label resolution must never mint duplicate series.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	counters := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("shared_total", "")
			v := r.CounterVec("vec_total", "", "k")
			v.With("a").Inc()
			v.With("b").Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if counters[i] != counters[0] {
			t.Fatalf("goroutine %d got a different instrument for shared_total", i)
		}
	}
	for _, f := range r.Gather().Families {
		if f.Name == "vec_total" {
			if len(f.Series) != 2 {
				t.Fatalf("vec_total has %d series, want 2", len(f.Series))
			}
			for _, s := range f.Series {
				if s.Value != goroutines {
					t.Errorf("vec_total%v = %d, want %d", s.Labels, s.Value, goroutines)
				}
			}
		}
	}
}
