package metrics

import (
	"io"
	"net/http"
	"sync"
	"testing"
)

// Concurrent-scrape safety, exercised under -race in CI: many /metrics,
// /metrics.json and /statusz requests racing live recording must all
// succeed, render well-formed payloads, and never trip the race detector.
// This is the HTTP-layer complement of TestConcurrentRecordingAndSnapshots.
func TestConcurrentScrapesWhileRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scrape_ops_total", "")
	h := r.Histogram("scrape_lat_ns", "")
	v := r.CounterVec("scrape_vec_total", "", "tenant")
	srv, err := Serve("127.0.0.1:0", r, func() any {
		return map[string]int64{"ops": c.Value()}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		writers    = 4
		perWriter  = 5000
		scrapers   = 4
		perScraper = 25
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(int64(i % 4096))
				v.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(w)
	}
	paths := []string{"/metrics", "/metrics.json", "/statusz"}
	errc := make(chan error, scrapers*perScraper)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for i := 0; i < perScraper; i++ {
				resp, err := http.Get(srv.URL() + paths[(s+i)%len(paths)])
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- &statusErr{resp.StatusCode}
					return
				}
				if len(body) == 0 {
					errc <- io.ErrUnexpectedEOF
					return
				}
			}
		}(s)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
}

type statusErr struct{ code int }

func (e *statusErr) Error() string { return http.StatusText(e.code) }
