package metrics_test

import (
	"fmt"
	"testing"

	"indexlaunch/internal/apps/circuit"
	"indexlaunch/internal/machine"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/rt"
	"indexlaunch/internal/sim"
)

// TestRTSimMetricParity is the metrics face of the rt/sim parity guarantee
// (the spans face lives in internal/obs): the same circuit workload run for
// real on internal/rt and through the internal/sim cost model must register
// the identical metric-family vocabulary, and the counters with exact
// semantics in both worlds must agree. One dashboard reads both.
func TestRTSimMetricParity(t *testing.T) {
	const pieces, iters = 4, 3

	// Real run, metrics on.
	rtReg := metrics.NewRegistry()
	r := rt.MustNew(rt.Config{
		Nodes: pieces, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Metrics: rtReg,
	})
	c, err := circuit.Build(circuit.Params{
		Pieces: pieces, NodesPerPiece: 8, WiresPerPiece: 16, CrossFraction: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := circuit.NewApp(c, r).Run(iters); err != nil {
		t.Fatal(err)
	}

	// Simulated run of the same workload shape, metrics on.
	simReg := metrics.NewRegistry()
	_, err = sim.Run(sim.Config{
		Machine: machine.PizDaint(pieces), Cost: sim.DefaultCosts(),
		DCR: true, IDX: true, Metrics: simReg,
	}, circuit.SimProgram(circuit.SimParams{
		Nodes: pieces, TasksPerNode: 1, WiresPerTask: 1000, Iters: iters,
	}))
	if err != nil {
		t.Fatal(err)
	}

	rtNames, simNames := rtReg.Names(), simReg.Names()
	if got, want := fmt.Sprint(rtNames), fmt.Sprint(simNames); got != want {
		t.Errorf("metric vocabularies differ:\n  rt:  %s\n  sim: %s", got, want)
	}
	if len(rtNames) == 0 {
		t.Fatal("rt registered no metric families")
	}

	// Both worlds saw index launches and executed tasks.
	for _, reg := range []struct {
		name string
		reg  *metrics.Registry
	}{{"rt", rtReg}, {"sim", simReg}} {
		vals := scalarMap(reg.reg)
		if vals["idx_launch_calls_total"] == 0 {
			t.Errorf("%s: no launch calls recorded", reg.name)
		}
		if vals["idx_index_launched_total"] == 0 {
			t.Errorf("%s: no index launches recorded", reg.name)
		}
		if vals["idx_tasks_executed_total"] == 0 {
			t.Errorf("%s: no tasks recorded", reg.name)
		}
		// Stage latency histograms populated on the hot stages.
		for _, stage := range []string{"issue", "execute"} {
			key := fmt.Sprintf("idx_stage_latency_ns{stage=%q}_count", stage)
			if vals[key] == 0 {
				t.Errorf("%s: stage %s latency histogram is empty", reg.name, stage)
			}
		}
	}
}

func scalarMap(r *metrics.Registry) map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Gather().Scalars() {
		out[s.Name] = s.Value
	}
	return out
}
