package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Embedded HTTP exposition: an optional listener serving the registry three
// ways —
//
//	/metrics       Prometheus text format 0.0.4
//	/metrics.json  JSON snapshot (what `idxprof watch` polls)
//	/statusz       live introspection: the StatusFunc's view of the running
//	               system (node liveness, broadcast-tree shape, in-flight
//	               launches) plus registry metadata
//
// The listener is opt-in (the -metrics flag of the CLIs); nothing in the
// hot path knows it exists.

// StatusFunc produces the live-introspection payload for /statusz. It is
// called per request from HTTP goroutines and must be safe for concurrent
// use; nil serves an empty status.
type StatusFunc func() any

// Handler serves /metrics, /metrics.json and /statusz over reg.
func Handler(reg *Registry, status StatusFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			serveJSON(w, reg)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, reg.Gather())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		serveJSON(w, reg)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		payload := struct {
			Status      any    `json:"status,omitempty"`
			TakenUnixNS int64  `json:"taken_unix_ns"`
			UptimeSec   string `json:"uptime,omitempty"`
			Metrics     int    `json:"metric_families"`
		}{TakenUnixNS: time.Now().UnixNano()}
		if status != nil {
			payload.Status = status()
		}
		if !reg.Epoch().IsZero() {
			payload.UptimeSec = time.Since(reg.Epoch()).Round(time.Millisecond).String()
		}
		payload.Metrics = len(reg.Gather().Families)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "endpoints: /metrics /metrics.json /statusz\n")
	})
	return mux
}

func serveJSON(w http.ResponseWriter, reg *Registry) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = WriteJSON(w, reg.Gather())
}

// Server is an embedded metrics listener started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP listener on addr (":0" selects an ephemeral port)
// serving Handler(reg, status) until Close.
func Serve(addr string, reg *Registry, status StatusFunc) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, status)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's resolved address, e.g. "127.0.0.1:43210".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
