package metrics

// Scheduler is the canonical metric set of the multi-tenant job scheduler
// (internal/sched), registered through the same nil-disabled registry
// pattern as Pipeline: NewScheduler(nil) returns nil, every record on the
// resulting nil instruments is a one-branch no-op, and the live scheduler —
// like internal/rt — keeps the counters in a private registry when no
// caller registry is attached, so its Stats/Status read-through always
// works.
//
// Naming scheme: `sched_` prefix, `_total` on counters, `_ns` on
// nanosecond histograms. Per-tenant families are labeled by `tenant`;
// rejections additionally carry the admission `reason` (queue-full,
// tenant-queue-full, rate-limited, no-capacity, draining).
type Scheduler struct {
	// Queue state gauges: jobs queued (global and per tenant) and jobs
	// currently occupying an executor.
	QueueDepth       *Gauge
	TenantQueueDepth *GaugeVec
	RunningJobs      *Gauge

	// Admission outcomes per tenant. Enqueued counts accepted submissions;
	// Admitted counts dispatches onto an executor; Rejected counts
	// backpressured submissions by reason.
	Enqueued *CounterVec
	Admitted *CounterVec
	Rejected *CounterVec

	// Completion outcomes per tenant.
	Completed *CounterVec
	Failed    *CounterVec

	// Incident counters: cooperative preemptions, deadline expiries in
	// queue, and drain requests.
	Preemptions *Counter
	Expired     *Counter
	Drains      *Counter

	// CapacityPermille is the admission capacity factor fed back from the
	// health layer, in thousandths (1000 = all nodes live).
	CapacityPermille *Gauge

	// Latency distributions: time from enqueue to dispatch, and from
	// enqueue to completion.
	QueueWait  *Histogram
	JobLatency *Histogram
}

// NewScheduler registers the canonical scheduler metrics on r. Returns nil
// on a nil registry (the caller's disabled state).
func NewScheduler(r *Registry) *Scheduler {
	if r == nil {
		return nil
	}
	return &Scheduler{
		QueueDepth:       r.Gauge("sched_queue_depth", "jobs queued across all tenants"),
		TenantQueueDepth: r.GaugeVec("sched_tenant_queue_depth", "jobs queued per tenant", "tenant"),
		RunningJobs:      r.Gauge("sched_running_jobs", "jobs currently occupying an executor"),

		Enqueued: r.CounterVec("sched_enqueued_total", "submissions accepted into the queue", "tenant"),
		Admitted: r.CounterVec("sched_admitted_total", "jobs dispatched onto an executor", "tenant"),
		Rejected: r.CounterVec("sched_rejected_total", "submissions rejected by admission control", "tenant", "reason"),

		Completed: r.CounterVec("sched_completed_total", "jobs completed successfully", "tenant"),
		Failed:    r.CounterVec("sched_failed_total", "jobs that finished with an error", "tenant"),

		Preemptions: r.Counter("sched_preemptions_total", "running jobs preempted back into the queue"),
		Expired:     r.Counter("sched_expired_total", "queued jobs dropped at dispatch because their deadline passed"),
		Drains:      r.Counter("sched_drains_total", "graceful drain requests"),

		CapacityPermille: r.Gauge("sched_capacity_permille", "admission capacity factor from node health, in thousandths"),

		QueueWait:  r.Histogram("sched_queue_wait_ns", "enqueue-to-dispatch wait in nanoseconds"),
		JobLatency: r.Histogram("sched_job_latency_ns", "enqueue-to-completion latency in nanoseconds"),
	}
}
