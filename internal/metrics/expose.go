package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Exposition formats: Prometheus text format 0.0.4 (WriteProm), JSON
// (WriteJSON) and a fixed-width terminal rendering with optional deltas
// against a previous snapshot (RenderDelta) — the watch mode of the CLIs.

// WriteProm writes the snapshot in Prometheus text format: one HELP and
// TYPE line per family followed by its samples; histograms expose
// cumulative `_bucket{le="..."}` samples ending in `+Inf`, plus `_sum` and
// `_count`, with `_count` always equal to the `+Inf` bucket.
func WriteProm(w io.Writer, s Snapshot) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, ss := range f.Series {
			if f.Type == TypeHistogram.String() {
				if err := writePromHistogram(w, f.Name, ss); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, promLabels(ss.Labels, "", 0), ss.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, ss SeriesSnapshot) error {
	for _, b := range ss.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(ss.Labels, "le", b.Le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabelsInf(ss.Labels), ss.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(ss.Labels, "", 0), ss.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(ss.Labels, "", 0), ss.Count)
	return err
}

// promLabels renders a label set, optionally with a trailing numeric `le`.
func promLabels(labels []Label, le string, bound int64) string {
	var parts []string
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", l.Key, escapeLabel(l.Value)))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("%s=\"%d\"", le, bound))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promLabelsInf(labels []Label) string {
	var parts []string
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", l.Key, escapeLabel(l.Value)))
	}
	parts = append(parts, `le="+Inf"`)
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteJSON writes the snapshot as indented JSON — the `/metrics.json`
// payload idxprof's watch mode polls.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSONSnapshot parses a WriteJSON payload.
func ReadJSONSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: parsing JSON snapshot: %w", err)
	}
	return s, nil
}

// RenderDelta renders the snapshot as an aligned terminal table. With a
// non-zero previous snapshot, a third column shows the per-scalar delta
// since prev — the CLIs' watch tick. Zero-valued scalars with zero delta
// are elided to keep the live view short.
func RenderDelta(prev, cur Snapshot) string {
	prevVals := map[string]float64{}
	for _, sc := range prev.Scalars() {
		prevVals[sc.Name] = sc.Value
	}
	var b strings.Builder
	for _, sc := range cur.Scalars() {
		d := sc.Value - prevVals[sc.Name]
		if sc.Value == 0 && d == 0 {
			continue
		}
		if len(prev.Families) > 0 {
			fmt.Fprintf(&b, "%-64s %16.6g %+14.6g\n", sc.Name, sc.Value, d)
		} else {
			fmt.Fprintf(&b, "%-64s %16.6g\n", sc.Name, sc.Value)
		}
	}
	return b.String()
}
