package metrics

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// Histogram is a log-linear (HDR-style) latency histogram over non-negative
// int64 values, nanoseconds by convention. Buckets split each power-of-two
// octave into 2^histSubBits sub-buckets, bounding the relative quantization
// error at 1/2^histSubBits (12.5% with the 3 sub-bits used here) while
// keeping Observe a pure bit-twiddle plus two atomic adds — no locks, no
// allocation, no floating point. A nil *Histogram is the disabled
// instrument: Observe is a one-branch no-op.
//
// Snapshot consistency: Observe increments the value's bucket before the
// sum, and snapshot derives the count from the buckets, so a snapshot taken
// mid-recording always satisfies the Prometheus histogram invariant that
// the +Inf bucket equals the count, and successive snapshots are monotonic
// per bucket.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	// exemplars holds, per bucket, the trace ID of the most recent
	// observation that landed there via ObserveExemplar — the link from a
	// slow bucket to a concrete trace. Plain Observe never touches it, so
	// exemplar support costs untraced callers nothing.
	exemplars [histBuckets]atomic.Uint64
}

const (
	// histSubBits sub-buckets per octave: 8 → at most 12.5% relative error.
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	// Index layout: values < histSubCount map to themselves; a value with
	// bit length n ≥ histSubBits+1 lands in octave [2^(n-1), 2^n), which is
	// split into histSubCount buckets of width 2^(n-1-histSubBits). Values
	// are clamped non-negative int64s, so n ≤ 63 and the top index is
	// (63-histSubBits)·histSubCount + histSubCount - 1 = histBuckets - 1.
	histBuckets = (64 - histSubBits) * histSubCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	n := bits.Len64(u)
	sub := int(u>>uint(n-1-histSubBits)) - histSubCount
	return (n-histSubBits)*histSubCount + sub
}

// bucketUpper returns the largest value mapping to bucket i — the bucket's
// inclusive `le` bound in the exposition formats.
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	n := i/histSubCount + histSubBits
	sub := i % histSubCount
	width := uint64(1) << uint(n-1-histSubBits)
	upper := uint64(1)<<uint(n-1) + uint64(sub+1)*width - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one value. Negative values clamp to zero. No-op on a nil
// histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveExemplar is Observe plus an exemplar: the bucket the value lands
// in remembers traceID (last-writer-wins), so the exposition formats can
// point from a latency bucket at a concrete trace. traceID 0 records no
// exemplar. Still lock-free, 0 allocs: at most three atomic operations.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.buckets[i].Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[i].Store(traceID)
	}
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one cumulative histogram bucket of a snapshot: Count
// observations were ≤ Le.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
	// Exemplar is the hex trace ID of a recent observation in this bucket
	// (non-cumulative: this bucket specifically); empty when none was
	// recorded.
	Exemplar string `json:"exemplar,omitempty"`
}

// snapshot returns the non-empty cumulative buckets, the total count
// (derived from the buckets, so it always matches the last cumulative
// entry) and the sum.
func (h *Histogram) snapshot() (buckets []Bucket, count, sum int64) {
	if h == nil {
		return nil, 0, 0
	}
	sum = h.sum.Load()
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		b := Bucket{Le: bucketUpper(i), Count: cum}
		if ex := h.exemplars[i].Load(); ex != 0 {
			b.Exemplar = strconv.FormatUint(ex, 16)
		}
		buckets = append(buckets, b)
	}
	return buckets, cum, sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded
// distribution from the live buckets: the upper bound of the first bucket
// whose cumulative count reaches q·count. Returns 0 on a nil or empty
// histogram.
func (h *Histogram) Quantile(q float64) int64 {
	buckets, count, _ := h.snapshot()
	return BucketQuantile(buckets, count, q)
}

// BucketQuantile is Quantile over an already-taken snapshot.
func BucketQuantile(buckets []Bucket, count int64, q float64) int64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.Count >= rank {
			return b.Le
		}
	}
	return buckets[len(buckets)-1].Le
}
