package metrics

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Prometheus text-format conformance for WriteProm: valid metric and label
// names, HELP/TYPE exactly once per family and before its samples,
// cumulative non-decreasing _bucket series ending in +Inf, _bucket{+Inf} ==
// _count, and proper label-value escaping. The parser here is deliberately
// independent of the writer: it checks the emitted text, not the code path.

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+)$`)
	promPairRe   = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

func promText(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestPromFormatConformance(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	p.LaunchCalls.Add(3)
	p.TasksExecuted.Add(12)
	p.InflightTasks.Set(2)
	for i := int64(1); i <= 100; i++ {
		p.LatIssue.Observe(i * 1000)
		p.LatExecute.Observe(i * 50000)
	}
	p.FenceWait.Observe(123456)
	r.CounterVec("escape_total", "tricky \"help\"\nline", "who").
		With(`a"b\c` + "\nd").Inc()

	text := promText(t, r)
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")

	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	sampleSeen := map[string]bool{}
	// familyOf maps a sample name to the family that must own it (histogram
	// samples use the family name + _bucket/_sum/_count).
	typeOf := map[string]string{}
	bucketCum := map[string]int64{} // series key -> last cumulative bucket
	bucketLe := map[string]int64{}  // series key -> last le bound
	infCount := map[string]int64{}  // series key -> +Inf bucket value
	countVal := map[string]int64{}  // series key -> _count value

	for _, line := range lines {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", text)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			if !promMetricRe.MatchString(name) {
				t.Errorf("HELP for invalid metric name %q", name)
			}
			if helpSeen[name] {
				t.Errorf("duplicate HELP for %s", name)
			}
			if strings.ContainsAny(help, "\n") {
				t.Errorf("unescaped newline in HELP for %s", name)
			}
			helpSeen[name] = true
			if sampleSeen[name] {
				t.Errorf("HELP for %s appears after its samples", name)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := fields[0], fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("TYPE %s has unknown type %q", name, typ)
			}
			if typeSeen[name] {
				t.Errorf("duplicate TYPE for %s", name)
			}
			typeSeen[name] = true
			typeOf[name] = typ
			if sampleSeen[name] {
				t.Errorf("TYPE for %s appears after its samples", name)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, labels := m[1], m[3]
		val, _ := strconv.ParseInt(m[4], 10, 64)
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typeOf[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		sampleSeen[base] = true
		if _, ok := typeOf[base]; !ok {
			t.Errorf("sample %s has no TYPE line", name)
		}

		var le string
		var nonLe []string
		if labels != "" {
			for _, pair := range splitPromPairs(labels) {
				pm := promPairRe.FindStringSubmatch(pair)
				if pm == nil {
					t.Fatalf("malformed label pair %q in %q", pair, line)
				}
				if !promLabelRe.MatchString(pm[1]) {
					t.Errorf("invalid label name %q in %q", pm[1], line)
				}
				if pm[1] == "le" {
					le = pm[2]
				} else {
					nonLe = append(nonLe, pair)
				}
			}
		}
		seriesKey := base + "{" + strings.Join(nonLe, ",") + "}"
		switch {
		case strings.HasSuffix(name, "_bucket") && typeOf[base] == "histogram":
			if le == "" {
				t.Errorf("bucket sample without le label: %q", line)
			}
			if val < bucketCum[seriesKey] {
				t.Errorf("bucket counts decrease for %s at le=%s", seriesKey, le)
			}
			bucketCum[seriesKey] = val
			if le == "+Inf" {
				infCount[seriesKey] = val
			} else {
				bound, err := strconv.ParseInt(le, 10, 64)
				if err != nil {
					t.Errorf("non-numeric le %q in %q", le, line)
				}
				if bound <= bucketLe[seriesKey] && bucketLe[seriesKey] != 0 {
					t.Errorf("le bounds not increasing for %s", seriesKey)
				}
				bucketLe[seriesKey] = bound
			}
		case strings.HasSuffix(name, "_count") && typeOf[base] == "histogram":
			countVal[seriesKey] = val
		}
	}

	for name := range helpSeen {
		if !typeSeen[name] {
			t.Errorf("HELP without TYPE for %s", name)
		}
	}
	if len(infCount) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, inf := range infCount {
		if countVal[key] != inf {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, inf, countVal[key])
		}
	}
	// The escaped label round-trips: backslash, quote and newline escaped.
	if !strings.Contains(text, `who="a\"b\\c\nd"`) {
		t.Errorf("label escaping wrong; exposition:\n%s", grepLines(text, "escape_total"))
	}
	if !strings.Contains(text, `# HELP escape_total tricky "help"\nline`) {
		t.Errorf("HELP escaping wrong; exposition:\n%s", grepLines(text, "# HELP escape_total"))
	}
}

// splitPromPairs splits a label body on commas not inside quoted values.
func splitPromPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, c := range s {
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(c)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	p.LaunchCalls.Add(5)
	p.LatIssue.Observe(1000)
	p.LatIssue.Observe(2000)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Gather()
	if len(got.Families) != len(want.Families) {
		t.Fatalf("round trip lost families: %d != %d", len(got.Families), len(want.Families))
	}
	gotScalars := got.Scalars()
	wantScalars := want.Scalars()
	if len(gotScalars) != len(wantScalars) {
		t.Fatalf("round trip lost scalars: %d != %d", len(gotScalars), len(wantScalars))
	}
	for i := range wantScalars {
		if gotScalars[i] != wantScalars[i] {
			t.Errorf("scalar %d: %+v != %+v", i, gotScalars[i], wantScalars[i])
		}
	}
}

func TestRenderDeltaElidesZeroes(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	p.LaunchCalls.Add(2)
	first := r.Gather()
	out := RenderDelta(Snapshot{}, first)
	if !strings.Contains(out, "idx_launch_calls_total") {
		t.Errorf("render missing non-zero scalar:\n%s", out)
	}
	if strings.Contains(out, "idx_panics_total") {
		t.Errorf("render shows zero scalar:\n%s", out)
	}
	p.LaunchCalls.Add(3)
	out = RenderDelta(first, r.Gather())
	if !strings.Contains(out, "+3") {
		t.Errorf("delta column missing +3:\n%s", out)
	}
}
