package metrics

import (
	"math"
	"strings"
	"testing"
)

// Registration is idempotent: the same name returns the same instrument, so
// two subsystems naming the same metric share one counter — the mechanism
// behind rt.Stats reading the transport's counters.

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("idx_test_total", "a")
	b := r.Counter("idx_test_total", "other help is ignored")
	if a != b {
		t.Fatal("re-registering idx_test_total returned a different counter")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Errorf("shared counter reads %d through second handle, want 3", got)
	}

	g1 := r.Gauge("idx_test_gauge", "g")
	g2 := r.Gauge("idx_test_gauge", "g")
	if g1 != g2 {
		t.Fatal("re-registering a gauge returned a different instrument")
	}

	h1 := r.Histogram("idx_test_ns", "h")
	h2 := r.Histogram("idx_test_ns", "h")
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a different instrument")
	}

	v := r.CounterVec("idx_test_vec_total", "v", "stage")
	if v.With("issue") != v.With("issue") {
		t.Fatal("resolving the same label value returned a different counter")
	}
	if v.With("issue") == v.With("execute") {
		t.Fatal("distinct label values resolved to the same counter")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"counter-as-gauge", func(r *Registry) {
			r.Counter("m_total", "")
			r.Gauge("m_total", "")
		}},
		{"gauge-as-histogram", func(r *Registry) {
			r.Gauge("m", "")
			r.Histogram("m", "")
		}},
		{"label-count-changed", func(r *Registry) {
			r.CounterVec("m_total", "", "stage")
			r.Counter("m_total", "")
		}},
		{"label-key-changed", func(r *Registry) {
			r.CounterVec("m_total", "", "stage")
			r.CounterVec("m_total", "", "node")
		}},
		{"invalid-name", func(r *Registry) { r.Counter("bad name", "") }},
		{"invalid-leading-digit", func(r *Registry) { r.Counter("0bad", "") }},
		{"invalid-label", func(r *Registry) { r.CounterVec("m_total", "", "bad-label") }},
		{"label-value-count", func(r *Registry) {
			r.CounterVec("m_total", "", "stage").With("a", "b")
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("schema violation did not panic")
				}
			}()
			c.f(NewRegistry())
		})
	}
}

func TestCounterIsMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(4)
	c.Add(-100) // negative deltas are ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

// TestBucketMathRoundTrip sweeps values across every octave and checks the
// index/bound pair: a value lands in a bucket whose upper bound is the
// smallest bound at or above it, bounds are strictly increasing, and the
// quantization error is within the documented 1/2^histSubBits.
func TestBucketMathRoundTrip(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 64; i++ {
		vals = append(vals, i)
	}
	for shift := uint(3); shift < 63; shift++ {
		base := int64(1) << shift
		vals = append(vals, base-1, base, base+1, base+base/2, base+base/3)
	}
	vals = append(vals, math.MaxInt64)
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, histBuckets)
		}
		upper := bucketUpper(i)
		if upper < v {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d < value", v, upper)
		}
		if i > 0 {
			lower := bucketUpper(i - 1)
			if lower >= v {
				t.Errorf("value %d at index %d but previous bound %d already covers it", v, i, lower)
			}
			// Relative quantization error: bucket width over value.
			if v >= histSubCount {
				relErr := float64(upper-lower) / float64(v)
				if relErr > 1.0/float64(histSubCount)+1e-9 {
					t.Errorf("value %d: bucket [%d,%d] rel error %.4f > %.4f",
						v, lower+1, upper, relErr, 1.0/float64(histSubCount))
				}
			}
		}
	}
	// Bounds are strictly increasing across the whole range.
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucketUpper not strictly increasing at %d: %d <= %d",
				i, bucketUpper(i), bucketUpper(i-1))
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "")
	// 1..1000: quantiles are known, quantization error bounded at 12.5%.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	if got := h.Count(); got != 1001 {
		t.Fatalf("count = %d, want 1001", got)
	}
	if got := h.Sum(); got != 500500 {
		t.Fatalf("sum = %d, want 500500", got)
	}
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.125+1 {
			t.Errorf("q%.2f = %d, want within [%d, %.0f]", c.q, got, c.want, float64(c.want)*1.125+1)
		}
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %d, want 0", got)
	}
}

func TestSnapshotInvariants(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "counts")
	h := r.Histogram("b_ns", "lat")
	c.Add(2)
	for _, v := range []int64{1, 10, 100, 1000, 1000} {
		h.Observe(v)
	}
	snap := r.Gather()
	if len(snap.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(snap.Families))
	}
	// Registration order is preserved.
	if snap.Families[0].Name != "a_total" || snap.Families[1].Name != "b_ns" {
		t.Errorf("family order = %s, %s", snap.Families[0].Name, snap.Families[1].Name)
	}
	hs := snap.Families[1].Series[0]
	if hs.Count != 5 || hs.Sum != 2111 {
		t.Errorf("histogram snapshot count=%d sum=%d, want 5, 2111", hs.Count, hs.Sum)
	}
	// Buckets are cumulative and the last equals the count.
	for i := 1; i < len(hs.Buckets); i++ {
		if hs.Buckets[i].Count < hs.Buckets[i-1].Count {
			t.Errorf("bucket counts not cumulative at %d", i)
		}
		if hs.Buckets[i].Le <= hs.Buckets[i-1].Le {
			t.Errorf("bucket bounds not increasing at %d", i)
		}
	}
	if last := hs.Buckets[len(hs.Buckets)-1].Count; last != hs.Count {
		t.Errorf("last cumulative bucket %d != count %d", last, hs.Count)
	}
}

func TestScalarsFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.CounterVec("v_total", "", "stage").With("issue").Add(3)
	h := r.Histogram("h_ns", "")
	h.Observe(100)
	scalars := r.Gather().Scalars()
	byName := map[string]float64{}
	for _, s := range scalars {
		byName[s.Name] = s.Value
	}
	if byName["c_total"] != 7 {
		t.Errorf("c_total = %g, want 7", byName["c_total"])
	}
	if byName[`v_total{stage="issue"}`] != 3 {
		t.Errorf(`v_total{stage="issue"} = %g, want 3`, byName[`v_total{stage="issue"}`])
	}
	if byName["h_ns_count"] != 1 || byName["h_ns_sum"] != 100 {
		t.Errorf("h_ns count/sum = %g/%g, want 1/100", byName["h_ns_count"], byName["h_ns_sum"])
	}
	for _, q := range []string{"h_ns_p50", "h_ns_p95", "h_ns_p99"} {
		if _, ok := byName[q]; !ok {
			t.Errorf("scalars missing %s", q)
		}
	}
}

func TestNilRegistryIsFullyDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "")
	cv := r.CounterVec("cv_total", "", "k")
	gv := r.GaugeVec("gv", "", "k")
	hv := r.HistogramVec("hv_ns", "", "k")
	if c != nil || g != nil || h != nil || cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry handed out a non-nil instrument")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(10)
	cv.With("x").Inc()
	gv.With("x").Set(2)
	hv.With("x").Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	snap := r.Gather()
	if len(snap.Families) != 0 {
		t.Fatal("nil registry gathered families")
	}
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names = %v, want nil", names)
	}
	if !r.Epoch().IsZero() {
		t.Fatal("nil registry has a non-zero epoch")
	}
}

func TestNamesAreSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "")
	r.Gauge("m", "")
	names := r.Names()
	want := []string{"a_total", "m", "z_total"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestPipelineRegistersCanonicalSchema(t *testing.T) {
	if NewPipeline(nil) != nil {
		t.Fatal("NewPipeline(nil) != nil: disabled state broken")
	}
	r := NewRegistry()
	p := NewPipeline(r)
	// Every stage label is pre-resolved and distinct.
	stages := []*Histogram{p.LatIssue, p.LatLogical, p.LatDistribute, p.LatPhysical, p.LatExecute}
	seen := map[*Histogram]bool{}
	for i, h := range stages {
		if h == nil {
			t.Fatalf("stage %s not resolved", PipelineStages[i])
		}
		if seen[h] {
			t.Fatalf("stage %s shares a histogram with another stage", PipelineStages[i])
		}
		seen[h] = true
	}
	// Registering the pipeline twice is harmless and shares instruments.
	p2 := NewPipeline(r)
	if p.LaunchCalls != p2.LaunchCalls || p.LatExecute != p2.LatExecute {
		t.Fatal("second NewPipeline on the same registry returned fresh instruments")
	}
	// Naming conventions: counters end in _total, histograms in _ns.
	for _, f := range r.Gather().Families {
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("counter %s does not end in _total", f.Name)
			}
		case "histogram":
			if !strings.HasSuffix(f.Name, "_ns") {
				t.Errorf("histogram %s does not end in _ns", f.Name)
			}
		}
	}
}
