package metrics

// Durability is the canonical metric set of the scheduler's write-ahead
// journal (internal/wal wired through internal/sched), registered with the
// same nil-disabled pattern as Pipeline and Scheduler: NewDurability(nil)
// returns nil and every record on the resulting nil instruments is a
// one-branch no-op.
//
// Naming scheme: `wal_` for live journal activity, `recover_` for
// startup-replay outcomes; `_total` on counters, `_ns` on nanosecond
// histograms.
type Durability struct {
	// AppendNS is the per-record journal append latency (framing + write +
	// any policy-driven fsync). Only observed when the scheduler is timed
	// (a caller registry or profiler is attached), like every histogram.
	AppendNS *Histogram

	// Journal write activity.
	Appends       *Counter // records appended
	AppendedBytes *Counter // payload bytes appended
	Fsyncs        *Counter // fsync calls (appends, rotations, snapshots)
	Rotations     *Counter // segment rotations
	Snapshots     *Counter // snapshots written

	// SnapshotAgeOps gauges how many journal records the newest snapshot is
	// behind — the replay debt a crash right now would incur.
	SnapshotAgeOps *Gauge
	// Segments gauges live segment files (bounded by snapshot cadence).
	Segments *Gauge

	// Recovery outcomes, counted once per process at startup.
	Recoveries      *Counter // recoveries that found durable state
	ReplayedRecords *Counter // journal records replayed after snapshot load
	SnapshotLoads   *Counter // snapshots loaded
	TruncatedBytes  *Counter // torn-tail bytes discarded on open
	RequeuedJobs    *Counter // queued jobs restored into the queue
	ResumedJobs     *Counter // running jobs handed back to executors
}

// NewDurability registers the canonical durability metrics on r. Returns
// nil on a nil registry (the caller's disabled state).
func NewDurability(r *Registry) *Durability {
	if r == nil {
		return nil
	}
	return &Durability{
		AppendNS: r.Histogram("wal_append_ns", "journal record append latency in nanoseconds"),

		Appends:       r.Counter("wal_appends_total", "journal records appended"),
		AppendedBytes: r.Counter("wal_appended_bytes_total", "journal payload bytes appended"),
		Fsyncs:        r.Counter("wal_fsyncs_total", "journal fsync calls"),
		Rotations:     r.Counter("wal_segment_rotations_total", "journal segment rotations"),
		Snapshots:     r.Counter("wal_snapshots_total", "journal snapshots written"),

		SnapshotAgeOps: r.Gauge("wal_snapshot_age_ops", "journal records appended since the newest snapshot"),
		Segments:       r.Gauge("wal_segments", "live journal segment files"),

		Recoveries:      r.Counter("recover_total", "startup recoveries that found durable scheduler state"),
		ReplayedRecords: r.Counter("recover_replayed_records_total", "journal records replayed at startup"),
		SnapshotLoads:   r.Counter("recover_snapshot_loads_total", "snapshots loaded at startup"),
		TruncatedBytes:  r.Counter("recover_truncated_bytes_total", "torn-tail bytes discarded at startup"),
		RequeuedJobs:    r.Counter("recover_requeued_jobs_total", "queued jobs restored into the queue at startup"),
		ResumedJobs:     r.Counter("recover_resumed_jobs_total", "running jobs handed back to executors at startup"),
	}
}
