package metrics

import (
	"strings"
	"testing"
)

// The sched_* family contract: every scheduler family appears in the
// Prometheus rendering with its labels, NewScheduler is nil-disabled, and —
// the same overhead invariant the pipeline families carry — recording on
// instruments resolved from a disabled registry allocates nothing.

func TestSchedulerFamiliesInProm(t *testing.T) {
	r := NewRegistry()
	s := NewScheduler(r)
	if s == nil {
		t.Fatal("NewScheduler(registry) = nil")
	}
	s.QueueDepth.Set(3)
	s.TenantQueueDepth.With("a").Set(2)
	s.RunningJobs.Set(1)
	s.Enqueued.With("a").Inc()
	s.Admitted.With("a").Inc()
	s.Rejected.With("a", "queue-full").Inc()
	s.Completed.With("a").Inc()
	s.Failed.With("b").Inc()
	s.Preemptions.Inc()
	s.Expired.Inc()
	s.Drains.Inc()
	s.CapacityPermille.Set(750)
	s.QueueWait.Observe(1000)
	s.JobLatency.Observe(5000)

	var b strings.Builder
	if err := WriteProm(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sched_queue_depth 3",
		`sched_tenant_queue_depth{tenant="a"} 2`,
		"sched_running_jobs 1",
		`sched_enqueued_total{tenant="a"} 1`,
		`sched_admitted_total{tenant="a"} 1`,
		`sched_completed_total{tenant="a"} 1`,
		`sched_failed_total{tenant="b"} 1`,
		"sched_preemptions_total 1",
		"sched_expired_total 1",
		"sched_drains_total 1",
		"sched_capacity_permille 750",
		"sched_queue_wait_ns_count 1",
		"sched_job_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
	// The reason label renders alongside tenant (order is canonicalized by
	// the exposition layer; accept either).
	if !strings.Contains(out, `sched_rejected_total{reason="queue-full",tenant="a"} 1`) &&
		!strings.Contains(out, `sched_rejected_total{tenant="a",reason="queue-full"} 1`) {
		t.Errorf("prom output missing sched_rejected_total series:\n%s", out)
	}
}

func TestDisabledSchedulerMetricsAllocatesNothing(t *testing.T) {
	if NewScheduler(nil) != nil {
		t.Fatal("NewScheduler(nil) != nil")
	}
	// What a scheduler resolves per tenant on a disabled registry: nil
	// instruments whose record path must stay a one-branch no-op.
	var r *Registry
	depth := r.Gauge("sched_queue_depth", "")
	enq := r.CounterVec("sched_enqueued_total", "", "tenant").With("a")
	rej := r.CounterVec("sched_rejected_total", "", "tenant", "reason").With("a", "queue-full")
	wait := r.Histogram("sched_queue_wait_ns", "")
	allocs := testing.AllocsPerRun(1000, func() {
		depth.Set(7)
		enq.Inc()
		rej.Inc()
		wait.Observe(4096)
	})
	if allocs != 0 {
		t.Fatalf("disabled scheduler metrics allocate %.1f per op, want 0", allocs)
	}
}

func BenchmarkSchedulerMetricsDisabled(b *testing.B) {
	var r *Registry
	enq := r.CounterVec("sched_enqueued_total", "", "tenant").With("a")
	wait := r.Histogram("sched_queue_wait_ns", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enq.Inc()
		wait.Observe(int64(i))
	}
}

func BenchmarkSchedulerMetricsEnabled(b *testing.B) {
	s := NewScheduler(NewRegistry())
	enq := s.Enqueued.With("a")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enq.Inc()
		s.QueueWait.Observe(int64(i))
	}
}
