package metrics

// Pipeline is the canonical metric set of the runtime pipeline, registered
// identically by internal/rt (measured on the wall clock) and internal/sim
// (derived from the cost model on the simulated clock) — the metrics face
// of the rt/sim parity guarantee, mirroring the shared span schema of
// internal/obs. Both producers register every instrument, even ones they
// never increment, so the registered name sets are equal by construction;
// internal/metrics's parity test locks that in.
//
// Naming scheme: `idx_` for the runtime pipeline, `xport_` for the message
// transport, `_total` suffix on counters, `_ns` on nanosecond histograms.
// The aggregate `xport_*` counters here are the same families
// internal/xport registers — registration is idempotent, so a transport
// sharing the runtime's registry shares the runtime's counters, which is
// what lets rt.Stats read transport counts with no dual bookkeeping.
type Pipeline struct {
	// Issuance counters, one per rt.Stats field.
	LaunchCalls   *Counter
	SingleCalls   *Counter
	IndexLaunched *Counter
	Expanded      *Counter
	Fallbacks     *Counter

	// Execution counters.
	TasksExecuted *Counter
	TasksFailed   *Counter
	TasksSkipped  *Counter
	Retries       *Counter
	Panics        *Counter

	// Fault counters.
	NodeFailures *Counter
	Remapped     *Counter

	// Self-healing counters (internal/health): heartbeat probe outcomes and
	// detector transitions.
	HealthProbes     *Counter
	HealthProbeFails *Counter
	HealthSuspects   *Counter
	HealthDeaths     *Counter
	HealthRejoins    *Counter

	// Straggler-speculation counters: backup launches, backups that
	// committed first, and attempts whose result was discarded because the
	// other attempt won.
	SpecLaunched *Counter
	SpecWon      *Counter
	SpecWasted   *Counter

	// Analysis counters.
	VersionQueries    *Counter
	DepEdges          *Counter
	DynamicCheckEvals *Counter
	TraceCaptures     *Counter
	TraceReplays      *Counter
	AnalysisSkipped   *Counter

	// Live state gauges: tasks issued but not completed, and task bodies
	// currently occupying a processor slot (the worker queue depth pair).
	InflightTasks *Gauge
	BusyProcs     *Gauge

	// Stage latencies, labeled by pipeline stage; LatIssue..LatExecute are
	// the pre-resolved per-stage instruments the hot paths record into.
	StageLatency  *HistogramVec
	LatIssue      *Histogram
	LatLogical    *Histogram
	LatDistribute *Histogram
	LatPhysical   *Histogram
	LatExecute    *Histogram

	// Incident latencies.
	FenceWait *Histogram
	CheckEval *Histogram

	// Message-transport aggregates (shared with internal/xport when the
	// transport uses the same registry).
	Sends            *Counter
	Retransmits      *Counter
	Drops            *Counter
	Dedups           *Counter
	Reparents        *Counter
	DirectBroadcasts *Counter
	TreeDepth        *Gauge
}

// PipelineStages are the label values of idx_stage_latency_ns, in pipeline
// order — the same first five stages as the obs span taxonomy.
var PipelineStages = []string{"issue", "logical", "distribute", "physical", "execute"}

// Shared transport family names: internal/xport registers these same
// families, so a transport given the runtime's registry shares the
// runtime's counters (registration is idempotent) and rt.Stats reads
// transport counts with no second bookkeeping path.
// Shared health-probe family names: internal/xport counts probe round
// trips on the same registry the runtime reads, like the transport
// aggregates below.
const (
	NameHealthProbes     = "health_probes_total"
	NameHealthProbeFails = "health_probe_failures_total"
)

const (
	NameXportSends            = "xport_sends_total"
	NameXportRetransmits      = "xport_retransmits_total"
	NameXportDrops            = "xport_drops_total"
	NameXportDedups           = "xport_dedups_total"
	NameXportReparents        = "xport_reparents_total"
	NameXportDirectBroadcasts = "xport_direct_broadcasts_total"
	NameXportTreeDepth        = "xport_tree_depth"
)

// NewPipeline registers the canonical pipeline metrics on r. Returns nil on
// a nil registry (the caller's disabled state).
func NewPipeline(r *Registry) *Pipeline {
	if r == nil {
		return nil
	}
	p := &Pipeline{
		LaunchCalls:   r.Counter("idx_launch_calls_total", "ExecuteIndex invocations"),
		SingleCalls:   r.Counter("idx_single_calls_total", "ExecuteSingle invocations"),
		IndexLaunched: r.Counter("idx_index_launched_total", "launches processed compactly as index launches"),
		Expanded:      r.Counter("idx_expanded_total", "launches expanded into individual tasks at issuance"),
		Fallbacks:     r.Counter("idx_fallbacks_total", "launches demoted to task loops by a failed safety check"),

		TasksExecuted: r.Counter("idx_tasks_executed_total", "completed point tasks"),
		TasksFailed:   r.Counter("idx_tasks_failed_total", "tasks failed terminally after retries"),
		TasksSkipped:  r.Counter("idx_tasks_skipped_total", "tasks skipped because an upstream task failed"),
		Retries:       r.Counter("idx_retries_total", "re-executions of failed task attempts"),
		Panics:        r.Counter("idx_panics_total", "task-body panics recovered by the executor"),

		NodeFailures: r.Counter("idx_node_failures_total", "simulated node kills"),
		Remapped:     r.Counter("idx_remapped_total", "point tasks re-mapped off a dead node at issuance"),

		HealthProbes:     r.Counter(NameHealthProbes, "heartbeat probe round trips attempted"),
		HealthProbeFails: r.Counter(NameHealthProbeFails, "heartbeat probes that exhausted their attempt budget"),
		HealthSuspects:   r.Counter("health_suspects_total", "detector transitions into the suspect state"),
		HealthDeaths:     r.Counter("health_deaths_total", "detector transitions into the dead state"),
		HealthRejoins:    r.Counter("health_rejoins_total", "quarantined nodes readmitted to the node set"),

		SpecLaunched: r.Counter("spec_launched_total", "speculative backup launches of straggling tasks"),
		SpecWon:      r.Counter("spec_won_total", "backup launches that committed before the original attempt"),
		SpecWasted:   r.Counter("spec_wasted_total", "speculation attempts discarded because the other attempt won"),

		VersionQueries:    r.Counter("idx_version_queries_total", "version-map dependence queries"),
		DepEdges:          r.Counter("idx_dep_edges_total", "dependence edges returned by the version map"),
		DynamicCheckEvals: r.Counter("idx_dynamic_check_evals_total", "projection-functor evaluations spent in dynamic safety checks"),
		TraceCaptures:     r.Counter("idx_trace_captures_total", "completed trace capture episodes"),
		TraceReplays:      r.Counter("idx_trace_replays_total", "completed trace replay episodes"),
		AnalysisSkipped:   r.Counter("idx_analysis_skipped_total", "point tasks whose analysis was satisfied from a trace template"),

		InflightTasks: r.Gauge("idx_inflight_tasks", "point tasks issued but not yet completed"),
		BusyProcs:     r.Gauge("idx_busy_procs", "task bodies currently occupying a processor slot"),

		StageLatency: r.HistogramVec("idx_stage_latency_ns", "pipeline stage latency in nanoseconds", "stage"),
		FenceWait:    r.Histogram("idx_fence_wait_ns", "execution fence wait in nanoseconds"),
		CheckEval:    r.Histogram("idx_check_eval_ns", "dynamic safety-check evaluation cost per launch in nanoseconds"),

		Sends:            r.Counter(NameXportSends, "hop-level message first transmissions"),
		Retransmits:      r.Counter(NameXportRetransmits, "ack-timeout-driven hop re-sends"),
		Drops:            r.Counter(NameXportDrops, "transmissions (data and acks) lost to chaos"),
		Dedups:           r.Counter(NameXportDedups, "received duplicates suppressed by sequence numbers"),
		Reparents:        r.Counter(NameXportReparents, "broadcast-tree orphan adoptions"),
		DirectBroadcasts: r.Counter(NameXportDirectBroadcasts, "broadcasts that abandoned a degraded tree for direct sends"),
		TreeDepth:        r.Gauge(NameXportTreeDepth, "fan-out depth (max hops) of the last planned broadcast"),
	}
	p.LatIssue = p.StageLatency.With("issue")
	p.LatLogical = p.StageLatency.With("logical")
	p.LatDistribute = p.StageLatency.With("distribute")
	p.LatPhysical = p.StageLatency.With("physical")
	p.LatExecute = p.StageLatency.With("execute")
	return p
}
