package rt

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/metrics"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

// Stats is a read-through view over the metrics registry — there is no
// second bookkeeping path. These tests pin that down: every Stats field must
// equal the registry's value for its family, with and without a
// caller-provided registry.

func runMetricsWorkload(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r := MustNew(cfg)
	tid := r.MustRegisterTask("inc", incrementTask)
	_, p := lineSetup(t, 100, 10)
	launch := core.MustForall("inc", tid, domain.Range1(0, 9), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	for i := 0; i < 3; i++ {
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	return r
}

func TestStatsReadsThroughRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	r := runMetricsWorkload(t, Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true, Metrics: reg,
	})
	if r.Metrics() != reg {
		t.Fatal("Runtime.Metrics() is not the configured registry")
	}
	st := r.Stats()
	vals := map[string]int64{}
	for _, f := range reg.Gather().Families {
		if f.Type == metrics.TypeCounter.String() || f.Type == metrics.TypeGauge.String() {
			if len(f.Series) == 1 && len(f.Series[0].Labels) == 0 {
				vals[f.Name] = f.Series[0].Value
			}
		}
	}
	checks := []struct {
		name string
		got  int64
	}{
		{"idx_launch_calls_total", st.LaunchCalls},
		{"idx_single_calls_total", st.SingleCalls},
		{"idx_index_launched_total", st.IndexLaunched},
		{"idx_expanded_total", st.Expanded},
		{"idx_fallbacks_total", st.Fallbacks},
		{"idx_tasks_executed_total", st.TasksExecuted},
		{"idx_tasks_failed_total", st.TasksFailed},
		{"idx_tasks_skipped_total", st.TasksSkipped},
		{"idx_retries_total", st.Retries},
		{"idx_panics_total", st.Panics},
		{"idx_node_failures_total", st.NodeFailures},
		{"idx_remapped_total", st.Remapped},
		{"idx_version_queries_total", st.VersionQueries},
		{"idx_dep_edges_total", st.DepEdges},
		{"idx_dynamic_check_evals_total", st.DynamicCheckEvals},
		{"idx_trace_captures_total", st.TraceCaptures},
		{"idx_trace_replays_total", st.TraceReplays},
		{"idx_analysis_skipped_total", st.AnalysisSkipped},
		{"xport_sends_total", st.MsgSends},
		{"xport_retransmits_total", st.MsgRetransmits},
		{"xport_drops_total", st.MsgDrops},
		{"xport_dedups_total", st.MsgDedups},
		{"xport_reparents_total", st.Reparents},
		{"xport_direct_broadcasts_total", st.DirectBroadcasts},
	}
	for _, c := range checks {
		if want, ok := vals[c.name]; !ok {
			t.Errorf("registry has no family %s", c.name)
		} else if c.got != want {
			t.Errorf("Stats.%s = %d, registry = %d", c.name, c.got, want)
		}
	}
	// The workload really moved the interesting counters.
	if st.LaunchCalls != 3 || st.IndexLaunched != 3 || st.TasksExecuted != 30 {
		t.Errorf("workload counters off: %+v", st)
	}
	// The runtime's wall-clock stage histograms populated (metrics enabled).
	hist := map[string]int64{}
	for _, f := range reg.Gather().Families {
		if f.Name != "idx_stage_latency_ns" {
			continue
		}
		for _, s := range f.Series {
			hist[s.Labels[0].Value] = s.Count
		}
	}
	for _, stage := range []string{"issue", "logical", "distribute", "physical", "execute"} {
		if hist[stage] == 0 {
			t.Errorf("stage %s latency histogram empty with metrics enabled", stage)
		}
	}
	if ff := reg.Gather(); len(ff.Families) == 0 {
		t.Fatal("empty gather")
	}
}

// Without a configured registry the runtime still counts (Stats works) in a
// private registry, but does not take stage timing observations — that is
// the disabled-clock state.
func TestStatsWorksWithoutConfiguredRegistry(t *testing.T) {
	r := runMetricsWorkload(t, Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
	})
	st := r.Stats()
	if st.LaunchCalls != 3 || st.TasksExecuted != 30 {
		t.Errorf("counters off without registry: %+v", st)
	}
	reg := r.Metrics()
	if reg == nil {
		t.Fatal("private registry missing")
	}
	for _, f := range reg.Gather().Families {
		if f.Name == "idx_stage_latency_ns" {
			for _, s := range f.Series {
				if s.Count != 0 {
					t.Errorf("stage %s histogram populated without Config.Metrics", s.Labels[0].Value)
				}
			}
		}
	}
}

func TestStatusSnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	r := runMetricsWorkload(t, Config{
		Nodes: 4, ProcsPerNode: 2, IndexLaunches: true, Metrics: reg,
	})
	st := r.Status()
	if st.Nodes != 4 || st.ProcsPerNode != 2 || st.DCR || !st.IndexLaunches {
		t.Errorf("config echo wrong: %+v", st)
	}
	if st.LiveNodes != 4 || len(st.DeadNodes) != 0 {
		t.Errorf("liveness wrong: %+v", st)
	}
	if st.LaunchCalls != 3 || st.TasksExecuted != 30 {
		t.Errorf("progress wrong: %+v", st)
	}
	if st.InflightTasks != 0 || st.BusyProcs != 0 {
		t.Errorf("in-flight gauges nonzero after fence: %+v", st)
	}
	if st.OutstandingFence != 0 {
		t.Errorf("outstanding fence = %d after fence", st.OutstandingFence)
	}
	// Non-DCR runtimes carry a slice transport: the tree shape is served.
	if st.Tree == nil {
		t.Fatal("non-DCR status has no broadcast-tree shape")
	}
	if st.Tree.Live != 4 || st.Tree.Depth < 1 || len(st.Tree.Parents) != 4 {
		t.Errorf("tree shape wrong: %+v", st.Tree)
	}

	// DCR mode has no transport; Tree must be nil.
	dcr := runMetricsWorkload(t, Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
	})
	if s := dcr.Status(); s.Tree != nil {
		t.Errorf("DCR status has a tree shape: %+v", s.Tree)
	}
	if !dcr.Status().DCR {
		t.Error("DCR flag not echoed")
	}
}

func TestNodeFailureShowsInStatus(t *testing.T) {
	reg := metrics.NewRegistry()
	r := MustNew(Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true, Metrics: reg,
	})
	r.KillNode(2)
	st := r.Status()
	if st.LiveNodes != 3 || len(st.DeadNodes) != 1 || st.DeadNodes[0] != 2 {
		t.Errorf("killed node not reflected: %+v", st)
	}
	if got := r.Stats().NodeFailures; got != 1 {
		t.Errorf("node failures = %d, want 1", got)
	}
}
