package rt

import (
	"fmt"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

// TaskFn is the body of a task variant. It receives a Context giving access
// to the task's point, by-value arguments, and privileged region views, and
// returns an optional result payload.
type TaskFn func(ctx *Context) ([]byte, error)

// PhysicalRegion is a region view handed to a running task together with the
// privilege it was requested under. Accessor methods enforce the privilege:
// reading through a write-only view or writing through a read-only view is a
// programming error reported at accessor acquisition.
type PhysicalRegion struct {
	Region *region.Region
	Priv   privilege.Privilege
	RedOp  privilege.OpID
	Fields []region.FieldID
}

func (pr PhysicalRegion) hasField(id region.FieldID) bool {
	for _, f := range pr.Fields {
		if f == id {
			return true
		}
	}
	return false
}

// Context is passed to every executing task.
type Context struct {
	// Point is the task's index within its launch domain (the zero Point
	// for single launches).
	Point domain.Point
	// Node is the simulated node the task was assigned to.
	Node int
	// Task is the executing task's ID.
	Task core.TaskID
	// Args is the launch's by-value payload.
	Args []byte

	regions     []PhysicalRegion
	reducers    []*ReducerF64
	reducersI64 []*ReducerI64
	cancel      <-chan struct{}
}

// Cancelled returns a channel that closes when a competing speculative
// attempt of the same point task committed first — the body should stop
// and return, its result will be discarded either way. For tasks that are
// not speculated the channel is nil and blocks forever, so it is always
// safe to select on.
func (c *Context) Cancelled() <-chan struct{} { return c.cancel }

// NumRegions returns the number of region arguments.
func (c *Context) NumRegions() int { return len(c.regions) }

// Region returns the i-th region argument.
func (c *Context) Region(i int) (PhysicalRegion, error) {
	if i < 0 || i >= len(c.regions) {
		return PhysicalRegion{}, fmt.Errorf("rt: task has %d region args, requested %d", len(c.regions), i)
	}
	return c.regions[i], nil
}

// ReadF64 returns a read accessor for field on region argument i. The
// declared privilege must include read access.
func (c *Context) ReadF64(i int, field region.FieldID) (region.AccF64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool { return p.IsRead() }, "read")
	if err != nil {
		return region.AccF64{}, err
	}
	return region.FieldF64(pr.Region, field)
}

// WriteF64 returns a write accessor for field on region argument i. The
// declared privilege must include write access (reductions excluded: use
// ReduceF64).
func (c *Context) WriteF64(i int, field region.FieldID) (region.AccF64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool {
		return p == privilege.Write || p == privilege.ReadWrite
	}, "write")
	if err != nil {
		return region.AccF64{}, err
	}
	return region.FieldF64(pr.Region, field)
}

// ReduceF64 returns a fold-only reduction view for field on region argument
// i, which must have been requested with Reduce privilege.
//
// The view is a private reduction instance: folds accumulate in a per-task
// buffer and are applied to the shared collection only after the task body
// returns, under a runtime-wide fold lock. This is what lets same-operator
// reductions from parallel tasks commute without racing — the analog of
// Legion's reduction instances.
func (c *Context) ReduceF64(i int, field region.FieldID) (*ReducerF64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool { return p == privilege.Reduce }, "reduce")
	if err != nil {
		return nil, err
	}
	acc, err := region.FieldF64(pr.Region, field)
	if err != nil {
		return nil, err
	}
	op, err := privilege.LookupOp(pr.RedOp)
	if err != nil {
		return nil, err
	}
	r := &ReducerF64{acc: acc, op: op}
	c.reducers = append(c.reducers, r)
	return r, nil
}

// ReadI64 returns a read accessor for an int64 field on region argument i.
func (c *Context) ReadI64(i int, field region.FieldID) (region.AccI64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool { return p.IsRead() }, "read")
	if err != nil {
		return region.AccI64{}, err
	}
	return region.FieldI64(pr.Region, field)
}

// WriteI64 returns a write accessor for an int64 field on region argument i.
func (c *Context) WriteI64(i int, field region.FieldID) (region.AccI64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool {
		return p == privilege.Write || p == privilege.ReadWrite
	}, "write")
	if err != nil {
		return region.AccI64{}, err
	}
	return region.FieldI64(pr.Region, field)
}

func (c *Context) checked(i int, field region.FieldID, ok func(privilege.Privilege) bool, what string) (PhysicalRegion, error) {
	pr, err := c.Region(i)
	if err != nil {
		return PhysicalRegion{}, err
	}
	if !pr.hasField(field) {
		return PhysicalRegion{}, fmt.Errorf("rt: region arg %d was not requested with field %d", i, field)
	}
	if !ok(pr.Priv) {
		return PhysicalRegion{}, fmt.Errorf("rt: region arg %d declared %q, cannot %s", i, pr.Priv, what)
	}
	return pr, nil
}

// ReduceI64 returns a fold-only reduction view for an int64 field on region
// argument i, which must have been requested with Reduce privilege. Like
// ReduceF64, folds buffer in a private reduction instance until the task
// completes.
func (c *Context) ReduceI64(i int, field region.FieldID) (*ReducerI64, error) {
	pr, err := c.checked(i, field, func(p privilege.Privilege) bool { return p == privilege.Reduce }, "reduce")
	if err != nil {
		return nil, err
	}
	acc, err := region.FieldI64(pr.Region, field)
	if err != nil {
		return nil, err
	}
	op, err := privilege.LookupOp(pr.RedOp)
	if err != nil {
		return nil, err
	}
	r := &ReducerI64{acc: acc, op: op}
	c.reducersI64 = append(c.reducersI64, r)
	return r, nil
}

// ReducerI64 is the int64 analog of ReducerF64.
type ReducerI64 struct {
	acc region.AccI64
	op  privilege.ReductionOp
	buf []foldItemI64
}

type foldItemI64 struct {
	p domain.Point
	v int64
}

// Fold combines v into the element at p with the declared operator.
func (r *ReducerI64) Fold(p domain.Point, v int64) {
	r.buf = append(r.buf, foldItemI64{p: p, v: v})
}

func (r *ReducerI64) flush() {
	for _, it := range r.buf {
		r.acc.Reduce(r.op, it.p, it.v)
	}
	r.buf = nil
}

// ReducerF64 is a fold-only view of a float64 field: tasks holding Reduce
// privilege may only combine values with the declared operator, never read
// or overwrite them. Folds are buffered until task completion.
type ReducerF64 struct {
	acc region.AccF64
	op  privilege.ReductionOp
	buf []foldItem
}

type foldItem struct {
	p domain.Point
	v float64
}

// Fold combines v into the element at p with the declared operator.
func (r *ReducerF64) Fold(p domain.Point, v float64) {
	r.buf = append(r.buf, foldItem{p: p, v: v})
}

// flush applies the buffered folds to the shared collection. The caller
// serializes flushes.
func (r *ReducerF64) flush() {
	for _, it := range r.buf {
		r.acc.Reduce(r.op, it.p, it.v)
	}
	r.buf = nil
}

// flushReductions applies every reducer's pending folds.
func (c *Context) flushReductions() {
	for _, r := range c.reducers {
		r.flush()
	}
	for _, r := range c.reducersI64 {
		r.flush()
	}
	c.reducers = nil
	c.reducersI64 = nil
}
