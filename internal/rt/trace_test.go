package rt

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

func traceRuntime(t *testing.T) (*Runtime, *region.Tree, *core.IndexLaunch) {
	t.Helper()
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, Tracing: true})
	tree, p := lineSetup(t, 40, 4)
	inc := r.MustRegisterTask("inc", incrementTask)
	launch := core.MustForall("inc", inc, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	return r, tree, launch
}

func TestTraceCaptureThenReplay(t *testing.T) {
	r, tree, launch := traceRuntime(t)
	const iters = 5
	for i := 0; i < iters; i++ {
		if err := r.BeginTrace(1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(1); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 40*iters {
		t.Errorf("sum = %v, want %d", sum, 40*iters)
	}
	st := r.Stats()
	if st.TraceCaptures != 1 {
		t.Errorf("captures = %d, want 1", st.TraceCaptures)
	}
	if st.TraceReplays != iters-1 {
		t.Errorf("replays = %d, want %d", st.TraceReplays, iters-1)
	}
	// Replays skip version-map analysis: 4 point tasks per replayed
	// iteration.
	if st.AnalysisSkipped != int64(4*(iters-1)) {
		t.Errorf("analysis skipped = %d, want %d", st.AnalysisSkipped, 4*(iters-1))
	}
}

func TestTraceReplayOrdersAgainstOutsideWork(t *testing.T) {
	// Write through an un-traced launch between two trace episodes; the
	// replay must order after it (external boundary), and un-traced work
	// after the replay must order after the replay (bulk update).
	r, tree, launch := traceRuntime(t)

	// Capture.
	if err := r.BeginTrace(7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(7); err != nil {
		t.Fatal(err)
	}

	// Un-traced interleaving write.
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}

	// Replay, then another un-traced round.
	if err := r.BeginTrace(7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}

	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 160 { // 4 increments of 40 elements
		t.Errorf("sum = %v, want 160", sum)
	}
}

func TestTraceErrors(t *testing.T) {
	r, _, launch := traceRuntime(t)
	noTrace := MustNew(Config{Nodes: 1, ProcsPerNode: 1})
	if err := noTrace.BeginTrace(1); err == nil {
		t.Error("BeginTrace with tracing disabled should error")
	}
	if err := r.EndTrace(1); err == nil {
		t.Error("EndTrace without BeginTrace should error")
	}
	if err := r.BeginTrace(1); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTrace(2); err == nil {
		t.Error("nested BeginTrace should error")
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(1); err != nil {
		t.Fatal(err)
	}
	// Replay issuing fewer ops than captured must error at EndTrace.
	if err := r.BeginTrace(1); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(1); err == nil {
		t.Error("incomplete replay should error")
	}
	r.Fence()
}

func TestTraceReplayDivergencePanics(t *testing.T) {
	r, _, launch := traceRuntime(t)
	other := r.MustRegisterTask("other", func(*Context) ([]byte, error) { return nil, nil })
	if err := r.BeginTrace(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	if err := r.EndTrace(3); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginTrace(3); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("divergent replay should panic")
		}
	}()
	_, p := lineSetup(t, 40, 4)
	diverged := core.MustForall("other", other, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	_, _ = r.ExecuteIndex(diverged)
}

func TestTraceWithSingleTasks(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true, Tracing: true})
	tree, _ := lineSetup(t, 10, 1)
	inc := r.MustRegisterTask("inc1", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, acc.Get(p)+1)
			return true
		})
		return nil, nil
	})
	req := []SingleReq{{Region: tree.Root(), Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal}}}
	for i := 0; i < 3; i++ {
		if err := r.BeginTrace(9); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteSingle("inc1", inc, req, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ExecuteSingle("inc1", inc, req, nil); err != nil {
			t.Fatal(err)
		}
		if err := r.EndTrace(9); err != nil {
			t.Fatal(err)
		}
	}
	r.Fence()
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 60 { // 6 increments of 10 elements
		t.Errorf("sum = %v, want 60", sum)
	}
}
