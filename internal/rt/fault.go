package rt

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
)

// This file is the runtime's fault model. The paper's pipeline (§5) assumes
// every point task of an index launch completes; here that assumption is
// relaxed along three axes, in the spirit of task-based middlewares that
// treat worker failure and re-execution as scheduling concerns:
//
//   - task failure: a task body that returns an error or panics poisons its
//     completion event instead of crashing the process; dependents observe
//     ErrUpstreamFailed through the same dependence edges that order
//     execution, and either skip or run per Config.OnUpstreamFailure.
//   - transient failure: Config.Retry re-executes a failed attempt on the
//     task's original node, with bounded exponential backoff. Reductions
//     buffer in private instances and flush only on success, so a failed
//     attempt leaves no partial folds behind.
//   - node failure: a FaultInjector (or Runtime.KillNode) marks a simulated
//     node dead at a deterministic issuance boundary. The dead node drains
//     work it already accepted but accepts no new tasks: every subsequently
//     issued point task the mapper assigns to it is re-mapped onto the
//     surviving nodes through the Mapper interface (the sharding functor
//     evaluated over the surviving-node count), on both the DCR and the
//     centralized path.
//
// All kill decisions happen under issueMu, in program order, so for a fixed
// seed and Config the fault counters in Stats are fully deterministic.

// ErrUpstreamFailed marks a task that was skipped because a task it depends
// on failed. Errors returned by Future.Get, FutureMap.WaitErr and FenceErr
// match it with errors.Is.
var ErrUpstreamFailed = errors.New("rt: upstream task failed")

// FailurePolicy selects what dependents of a failed task do.
type FailurePolicy int

const (
	// SkipDependents (the default) skips tasks whose preconditions are
	// poisoned: their futures fail with ErrUpstreamFailed wrapping the
	// upstream cause, and the skip cascades downstream.
	SkipDependents FailurePolicy = iota
	// RunDependents executes dependents normally even when an upstream
	// task failed — the caller takes responsibility for interpreting
	// partial data.
	RunDependents
)

// String renders the policy name.
func (p FailurePolicy) String() string {
	if p == RunDependents {
		return "RunDependents"
	}
	return "SkipDependents"
}

// RetryPolicy bounds re-execution of failed point tasks.
type RetryPolicy struct {
	// Max is the number of re-executions allowed per task after the first
	// attempt; 0 disables retry.
	Max int
	// Backoff is the sleep before the first re-execution; each further
	// attempt doubles it. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubling; zero defaults to one minute. The cap
	// wins even when it is below Backoff.
	MaxBackoff time.Duration
}

// defaultMaxBackoff caps retry backoff when RetryPolicy.MaxBackoff is zero.
const defaultMaxBackoff = time.Minute

// backoffFor returns the sleep before re-execution attempt (1-based). The
// doubling is capped at MaxBackoff: large attempt counts saturate at the
// cap rather than overflowing the shift.
func (rp RetryPolicy) backoffFor(attempt int) time.Duration {
	if rp.Backoff <= 0 || attempt < 1 {
		return 0
	}
	max := rp.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	shift := uint(attempt - 1)
	if shift >= 63 {
		return max
	}
	d := rp.Backoff << shift
	if d <= 0 || d>>shift != rp.Backoff || d > max {
		return max
	}
	return d
}

// TaskError describes a terminally failed or skipped point task: which task
// variant, which launch point, which node, and why.
type TaskError struct {
	// Task is the registered task name; Tag is the launch tag.
	Task string
	Tag  string
	// Point is the task's launch point; Node the node it ran on.
	Point domain.Point
	Node  int
	// Attempts is how many executions were tried (0 for skipped tasks).
	Attempts int
	// PanicValue is the recovered panic value when the task panicked.
	PanicValue any
	// Err is the underlying cause: the body's returned error, or
	// ErrUpstreamFailed (wrapping the upstream error) for skipped tasks.
	Err error
}

// Error implements error.
func (e *TaskError) Error() string {
	switch {
	case e.PanicValue != nil:
		return fmt.Sprintf("rt: task %q point %v (node %d) panicked after %d attempt(s): %v",
			e.Task, e.Point, e.Node, e.Attempts, e.PanicValue)
	case e.Attempts == 0:
		return fmt.Sprintf("rt: task %q point %v (node %d) skipped: %v",
			e.Task, e.Point, e.Node, e.Err)
	default:
		return fmt.Sprintf("rt: task %q point %v (node %d) failed after %d attempt(s): %v",
			e.Task, e.Point, e.Node, e.Attempts, e.Err)
	}
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// FaultInjector schedules deterministic simulated node failures. Kills
// trigger at issuance boundaries: a kill with AfterIssued = n fires once the
// runtime has issued n point tasks (runtime-wide, in program order), so
// repeated runs of the same program with the same injector plan fail
// identically. An injector belongs to one Runtime; build a fresh one per
// run.
type FaultInjector struct {
	seed    int64
	rng     *rand.Rand
	kills   []nodeKill
	revives []nodeKill
}

type nodeKill struct {
	node        int
	afterIssued int64
	applied     bool
}

// NewFaultInjector returns an injector whose random choices (KillRandomNode)
// derive from seed.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the injector's seed.
func (fi *FaultInjector) Seed() int64 { return fi.seed }

// KillNode schedules node to die once afterIssued point tasks have been
// issued. Returns the injector for chaining.
func (fi *FaultInjector) KillNode(node int, afterIssued int64) *FaultInjector {
	fi.kills = append(fi.kills, nodeKill{node: node, afterIssued: afterIssued})
	return fi
}

// KillRandomNode schedules a seeded-random node in [0, nodes) to die once
// afterIssued point tasks have been issued.
func (fi *FaultInjector) KillRandomNode(nodes int, afterIssued int64) *FaultInjector {
	return fi.KillNode(fi.rng.Intn(nodes), afterIssued)
}

// ReviveNode schedules a previously killed node to come back once
// afterIssued point tasks have been issued — with a HeartbeatPolicy the
// node resumes heartbeating and the detector quarantines and readmits it;
// without one it rejoins immediately. Returns the injector for chaining.
func (fi *FaultInjector) ReviveNode(node int, afterIssued int64) *FaultInjector {
	fi.revives = append(fi.revives, nodeKill{node: node, afterIssued: afterIssued})
	return fi
}

// faultCheck is the per-point issuance hook: it re-maps the point off a dead
// node, counts the issue, and applies any injector kills whose threshold
// this issue reached. Caller holds issueMu; d is the launch domain (used by
// the sharding functor when re-mapping).
func (r *Runtime) faultCheck(d domain.Domain, p domain.Point, node int) int {
	if r.dead[node] {
		node = r.remapPoint(d, p, node)
		r.mx.Remapped.Inc()
		if prof := r.cfg.Profile; prof != nil {
			prof.Mark(node, obs.StageFault, "remap", "", p, prof.Now())
		}
	}
	r.issuedTotal++
	if fi := r.cfg.Fault; fi != nil {
		for i := range fi.kills {
			k := &fi.kills[i]
			if !k.applied && r.issuedTotal >= k.afterIssued {
				k.applied = true
				r.killNodeLocked(k.node)
			}
		}
		for i := range fi.revives {
			k := &fi.revives[i]
			if !k.applied && r.issuedTotal >= k.afterIssued {
				k.applied = true
				r.reviveNodeLocked(k.node)
			}
		}
	}
	if r.hm != nil && r.issuedTotal%r.cfg.Heartbeat.Every == 0 {
		// One heartbeat round per Every issued points: detection, like
		// fault injection, happens at deterministic issuance boundaries.
		r.healthTick()
	}
	return node
}

// remapPoint re-maps a point assigned to a dead node onto the surviving
// nodes: the mapper's sharding functor is evaluated over the surviving-node
// count and the result indexes the sorted list of live nodes. Caller holds
// issueMu.
func (r *Runtime) remapPoint(d domain.Domain, p domain.Point, orig int) int {
	alive := make([]int, 0, r.cfg.Nodes)
	for n, dead := range r.dead {
		if !dead {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return orig // unreachable: the last live node cannot be killed
	}
	i := r.mapper.ShardPoint(d, p, len(alive))
	return alive[clampNode(i, len(alive))]
}

// killNodeLocked marks node dead, refusing out-of-range nodes, repeat
// kills, and killing the last surviving node. With a failure detector the
// kill is indirect: the node merely stops heartbeating (kill-as-silence)
// and keeps relaying messages until the detector suspects it. Caller holds
// issueMu.
func (r *Runtime) killNodeLocked(node int) bool {
	if r.hm != nil {
		return r.silenceNodeLocked(node)
	}
	if node < 0 || node >= len(r.dead) || r.dead[node] {
		return false
	}
	live := 0
	for _, dead := range r.dead {
		if !dead {
			live++
		}
	}
	if live <= 1 {
		return false
	}
	r.dead[node] = true
	r.mx.NodeFailures.Inc()
	if r.xp != nil {
		// Future broadcasts re-parent the node's orphaned subtree onto
		// surviving ancestors (or fall back to direct node-0 sends).
		r.xp.MarkDead(node)
	}
	if prof := r.cfg.Profile; prof != nil {
		prof.Mark(node, obs.StageFault, "node-kill", "", domain.Point{}, prof.Now())
	}
	return true
}

// KillNode marks a simulated node dead at the next issuance boundary:
// tasks the node already accepted drain, but every point task issued
// afterwards is re-mapped to a surviving node. Returns false if the node is
// out of range, already dead, or the last one alive. With a
// HeartbeatPolicy configured the kill only silences the node's heartbeats;
// re-mapping starts once the detector suspects it.
func (r *Runtime) KillNode(node int) bool {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	return r.killNodeLocked(node)
}

// AliveNodes returns the ids of nodes still accepting work, in order.
func (r *Runtime) AliveNodes() []int {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	alive := make([]int, 0, r.cfg.Nodes)
	for n, dead := range r.dead {
		if !dead {
			alive = append(alive, n)
		}
	}
	return alive
}
