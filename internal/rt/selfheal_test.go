package rt

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/health"
	"indexlaunch/internal/region"
	"indexlaunch/internal/xport"
)

// testHeartbeat is the policy the self-heal tests run under: one detector
// round every 4 issued points, single-attempt probes so partitions starve
// heartbeats immediately.
var testHeartbeat = HeartbeatPolicy{Every: 4, ProbeAttempts: 1}

// selfHealRun executes the reference workload — six index launches of 16
// points over a 160-element line on an 8-node centralized runtime — under
// the given chaos plan, with the failure detector on, and returns the field
// sum, the stats and the rendered detector log. No node is ever killed
// explicitly: any liveness transitions come from the detector observing the
// plan's effect on heartbeat probes.
func selfHealRun(t *testing.T, plan *xport.ChaosPlan) (float64, Stats, string) {
	t.Helper()
	r := MustNew(Config{
		Nodes: 8, ProcsPerNode: 2, IndexLaunches: true,
		Chaos: plan, Retransmit: fastRetransmit,
		Heartbeat: testHeartbeat,
	})
	defer r.Shutdown()
	tree, part := lineSetup(t, 160, 16)
	inc := r.MustRegisterTask("inc", incrementTask)
	for round := 0; round < 6; round++ {
		if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err != nil {
		t.Fatalf("self-heal run failed: %v", err)
	}
	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		t.Fatal(err)
	}
	return sum, r.Stats(), health.RenderLog(r.HealthLog())
}

// selfHealPlan partitions the 0<->1 link for a window of probe traffic: the
// detector must notice node 1 (and the subtree it relays for) going silent,
// quarantine it when the window heals, and readmit it — all without any
// KillNode call.
func selfHealPlan(seed int64) *xport.ChaosPlan {
	return &xport.ChaosPlan{
		Seed:       seed,
		Partitions: []xport.Partition{{A: 0, B: 1, AfterSends: 0, Sends: 16}},
	}
}

// The tentpole's end-to-end property: with the detector enabled and no
// external kill, a chaos partition causes suspect → re-map → heal →
// quarantine → rejoin, and the program's results are identical to the
// fault-free run.
func TestSelfHealPartitionSuspectRejoin(t *testing.T) {
	refSum, refSt, refLog := selfHealRun(t, nil)
	if refLog != "" {
		t.Fatalf("fault-free run produced health transitions:\n%s", refLog)
	}
	if refSt.HealthProbes == 0 {
		t.Fatal("fault-free run sent no heartbeat probes")
	}

	sum, st, log := selfHealRun(t, selfHealPlan(3))
	if sum != refSum {
		t.Errorf("partitioned run sum = %v, fault-free = %v", sum, refSum)
	}
	if st.TasksExecuted != refSt.TasksExecuted {
		t.Errorf("tasks executed = %d, fault-free = %d", st.TasksExecuted, refSt.TasksExecuted)
	}
	if st.HealthSuspects == 0 {
		t.Errorf("partition produced no suspects; log:\n%s", log)
	}
	if st.HealthRejoins == 0 {
		t.Errorf("healed partition produced no rejoins; log:\n%s", log)
	}
	if st.Remapped == 0 {
		t.Error("no points were re-mapped off the suspected node")
	}
	if st.NodeFailures != 0 {
		t.Errorf("NodeFailures = %d: nothing was killed, only detected", st.NodeFailures)
	}
	if !strings.Contains(log, "n1 alive>suspect") {
		t.Errorf("node 1 was never suspected; log:\n%s", log)
	}
	if !strings.Contains(log, "n1 quarantined>alive") {
		t.Errorf("node 1 never rejoined; log:\n%s", log)
	}
}

// Detector determinism (satellite): the same seed and chaos plan produce a
// byte-identical suspect/rejoin event sequence on every run. The Chaos name
// prefix keeps this test in CI's seed-matrix runs.
func TestChaosSelfHealDeterministicLog(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			_, _, first := selfHealRun(t, selfHealPlan(seed))
			if first == "" {
				t.Fatal("plan produced no health transitions; schedule too weak")
			}
			for i := 0; i < 4; i++ {
				_, _, log := selfHealRun(t, selfHealPlan(seed))
				if log != first {
					t.Fatalf("run %d transition log differs.\nfirst:\n%s\ngot:\n%s", i+2, first, log)
				}
			}
		})
	}
}

// An injector kill under the detector is kill-as-silence: the node stops
// heartbeating, the detector suspects it, and an injector revive brings it
// back through quarantine — on the DCR path, whose probe-only transport
// exists solely for the heartbeats.
func TestDetectorKillSilenceAndInjectedRevive(t *testing.T) {
	fi := NewFaultInjector(1).KillNode(3, 8).ReviveNode(3, 60)
	r := MustNew(Config{
		Nodes: 8, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Heartbeat: testHeartbeat, Fault: fi,
	})
	defer r.Shutdown()
	tree, part := lineSetup(t, 160, 16)
	inc := r.MustRegisterTask("inc", incrementTask)
	for round := 0; round < 8; round++ {
		if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err != nil {
		t.Fatal(err)
	}
	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		t.Fatal(err)
	}
	if want := 160.0 * 8; sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	st := r.Stats()
	if st.NodeFailures != 1 {
		t.Errorf("NodeFailures = %d, want 1 (the silenced kill)", st.NodeFailures)
	}
	if st.HealthSuspects == 0 || st.HealthRejoins == 0 {
		t.Errorf("suspects = %d, rejoins = %d; want both > 0; log:\n%s",
			st.HealthSuspects, st.HealthRejoins, health.RenderLog(r.HealthLog()))
	}
	if c := r.HealthCounts(); c.Alive != 8 {
		t.Errorf("final health = %v, want all 8 alive", c)
	}
	if got := len(r.AliveNodes()); got != 8 {
		t.Errorf("alive nodes = %d, want 8", got)
	}
	status := r.Status()
	if len(status.Health) != 8 || status.ResyncEpoch == 0 {
		t.Errorf("status health rows = %d, resync epoch = %d; want 8 rows, epoch > 0",
			len(status.Health), status.ResyncEpoch)
	}
}

// Without a detector, ReviveNode readmits a killed node immediately.
func TestReviveNodeDirectWithoutDetector(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	if !r.KillNode(2) {
		t.Fatal("KillNode(2) refused")
	}
	if got := len(r.AliveNodes()); got != 3 {
		t.Fatalf("alive = %d after kill, want 3", got)
	}
	if r.ReviveNode(2) != true {
		t.Fatal("ReviveNode(2) refused")
	}
	if r.ReviveNode(2) {
		t.Fatal("double revive should report false")
	}
	if got := len(r.AliveNodes()); got != 4 {
		t.Fatalf("alive = %d after revive, want 4", got)
	}
}

// Satellite: a fence abandoned by Shutdown fails with ErrShutdown (not a
// generic deadline error) and names the unfinished task plus the liveness
// snapshot.
func TestShutdownDuringFenceReturnsErrShutdown(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	release := make(chan struct{})
	hang := r.MustRegisterTask("hang", func(ctx *Context) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	if _, err := r.ExecuteSingle("hang-launch", hang, nil, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		r.Shutdown()
	}()
	start := time.Now()
	err := r.FenceTimeout(30 * time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fence returned only after %v; Shutdown did not cancel the wait", elapsed)
	}
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("fence error = %v, want ErrShutdown", err)
	}
	for _, want := range []string{"unfinished", `task "hang"`, `launch "hang-launch"`, "liveness:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("fence error %q missing %q", err, want)
		}
	}
	r.Shutdown() // double Shutdown is a no-op
}

// Satellite: fence timeout errors embed the node-liveness snapshot.
func TestFenceTimeoutIncludesLiveness(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	defer r.Shutdown()
	release := make(chan struct{})
	hang := r.MustRegisterTask("hang", func(ctx *Context) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	if _, err := r.ExecuteSingle("hang-launch", hang, nil, nil); err != nil {
		t.Fatal(err)
	}
	r.KillNode(3)
	err := r.FenceTimeout(30 * time.Millisecond)
	if err == nil {
		t.Fatal("fence with a hung task returned nil")
	}
	if !strings.Contains(err.Error(), "liveness: 3 alive, 0 suspect, 1 dead") {
		t.Errorf("fence error %q missing liveness snapshot", err)
	}
}

// Satellite: Shutdown racing in-flight heartbeat rounds (and the rejoins
// they trigger) must be clean — run under -race.
func TestShutdownRacesHeartbeatRounds(t *testing.T) {
	for i := 0; i < 5; i++ {
		fi := NewFaultInjector(7).KillNode(2, 4).ReviveNode(2, 24)
		r := MustNew(Config{
			Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
			Heartbeat: HeartbeatPolicy{Every: 2}, Fault: fi,
		})
		_, part := lineSetup(t, 64, 16)
		inc := r.MustRegisterTask("inc", incrementTask)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for round := 0; round < 6; round++ {
				if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
					t.Error(err)
					return
				}
			}
			r.Fence()
		}()
		time.Sleep(time.Duration(i) * time.Millisecond)
		r.Shutdown()
		r.Shutdown()
		<-done
	}
}
