package rt

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/region"
	"indexlaunch/internal/xport"
)

var errTransient = errors.New("transient")

// chaosSeeds returns the seed matrix for the chaos property suite. CI
// overrides the default with a comma-separated CHAOS_SEEDS list.
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []int64{1, 7, 42, 99}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// fastRetransmit keeps chaos tests quick: dropped hops re-send after 200µs.
var fastRetransmit = xport.RetransmitPolicy{
	Timeout:    200 * time.Microsecond,
	MaxBackoff: 2 * time.Millisecond,
}

// chaosRun executes the reference workload — four index launches of 16
// points over a 160-element line on an 8-node centralized runtime — under
// the given chaos plan and fault injector, and returns the field sum plus
// the runtime stats.
func chaosRun(t *testing.T, plan *xport.ChaosPlan, fi *FaultInjector, prof *obs.Recorder) (float64, Stats) {
	t.Helper()
	r := MustNew(Config{
		Nodes: 8, ProcsPerNode: 2, IndexLaunches: true,
		Chaos: plan, Retransmit: fastRetransmit, Fault: fi, Profile: prof,
	})
	tree, part := lineSetup(t, 160, 16)
	inc := r.MustRegisterTask("inc", incrementTask)
	for round := 0; round < 4; round++ {
		if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FenceErr(); err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	sum, err := region.SumF64(tree.Root(), fieldVal)
	if err != nil {
		t.Fatal(err)
	}
	return sum, r.Stats()
}

// The chaos property: for any seeded chaos schedule that admits eventual
// delivery, results and Stats-visible task counts are identical to the
// fault-free run — the transport's retransmission and dedup machinery is
// invisible to the program.
func TestChaosPropertyResultsMatchFaultFree(t *testing.T) {
	refSum, refSt := chaosRun(t, nil, nil, nil)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			plan := &xport.ChaosPlan{
				Seed: seed, Drop: 0.15, Dup: 0.2, Reorder: 0.3,
				DelayMax: 100 * time.Microsecond,
				Partitions: []xport.Partition{
					{A: 0, B: 2, AfterSends: 1, Sends: 3},
				},
			}
			sum, st := chaosRun(t, plan, nil, nil)
			if sum != refSum {
				t.Errorf("seed %d: sum = %v, fault-free = %v", seed, sum, refSum)
			}
			if st.TasksExecuted != refSt.TasksExecuted || st.TasksFailed != refSt.TasksFailed ||
				st.TasksSkipped != refSt.TasksSkipped || st.IndexLaunched != refSt.IndexLaunched {
				t.Errorf("seed %d: task counts diverged:\nchaos:      %+v\nfault-free: %+v", seed, st, refSt)
			}
			if st.MsgSends == 0 {
				t.Error("centralized run shipped no slices through the transport")
			}
			// A repeat of the same seed delivers the same results and task
			// counts. (Transport counters may differ: how many retransmit
			// timers fire before an ack lands is a wall-clock race — only
			// the delivered outcome is guaranteed deterministic.)
			sum2, st2 := chaosRun(t, plan, nil, nil)
			if sum2 != refSum || st2.TasksExecuted != refSt.TasksExecuted {
				t.Errorf("seed %d: repeat run diverged: sum %v tasks %d", seed, sum2, st2.TasksExecuted)
			}
		})
	}
}

// The acceptance scenario of ISSUE 3: >= 10% per-link drop plus one
// interior-node kill on an 8-node centralized run. Every launch completes
// identically to the fault-free run, the transport counters show the
// machinery actually engaged, and the profile timeline carries the new
// communication stages.
func TestChaosWithInteriorKillAcceptance(t *testing.T) {
	refSum, refSt := chaosRun(t, nil, nil, nil)

	plan := &xport.ChaosPlan{
		Seed: 42, Drop: 0.15, Dup: 0.25, Reorder: 0.3,
		DelayMax:   100 * time.Microsecond,
		Partitions: []xport.Partition{{A: 0, B: 2, AfterSends: 1, Sends: 3}},
	}
	// Node 1 is an interior relay (children 3 and 4); killing it after 20
	// issued points — mid-way through the second launch — forces the later
	// broadcasts to re-parent its subtree.
	prof := obs.NewRecorder("rt", 8, 4096)
	sum, st := chaosRun(t, plan, NewFaultInjector(42).KillNode(1, 20), prof)

	if sum != refSum {
		t.Errorf("degraded chaos sum = %v, fault-free = %v", sum, refSum)
	}
	if st.TasksExecuted != refSt.TasksExecuted {
		t.Errorf("tasks executed = %d, fault-free = %d", st.TasksExecuted, refSt.TasksExecuted)
	}
	if st.NodeFailures != 1 {
		t.Errorf("node failures = %d, want 1", st.NodeFailures)
	}
	if st.MsgRetransmits == 0 || st.MsgDedups == 0 || st.Reparents == 0 {
		t.Errorf("robustness machinery idle: retransmits=%d dedups=%d reparents=%d",
			st.MsgRetransmits, st.MsgDedups, st.Reparents)
	}
	if st.MsgDrops == 0 {
		t.Errorf("15%% drop plan lost nothing: %+v", st)
	}

	// The timeline shows the communication stages.
	p := prof.Snapshot()
	stages := map[obs.Stage]int{}
	for _, ev := range p.Events {
		stages[ev.Stage]++
	}
	for _, st := range []obs.Stage{obs.StageSend, obs.StageRecv, obs.StageRetransmit} {
		if stages[st] == 0 {
			t.Errorf("profile has no %v events: %v", st, stages)
		}
	}
}

// A chaos plan on the DCR path is a configuration error: control
// replication sends no slice messages for the plan to act on.
func TestChaosRequiresCentralizedPath(t *testing.T) {
	_, err := New(Config{
		Nodes: 2, ProcsPerNode: 1, DCR: true,
		Chaos: &xport.ChaosPlan{Seed: 1, Drop: 0.5},
	})
	if err == nil || !strings.Contains(err.Error(), "DCR") {
		t.Errorf("New accepted Chaos with DCR: err = %v", err)
	}
	// Invalid plans are rejected at construction, not at first broadcast.
	_, err = New(Config{
		Nodes: 2, ProcsPerNode: 1,
		Chaos: &xport.ChaosPlan{Drop: 1.0},
	})
	if err == nil {
		t.Error("New accepted a Drop=1 plan that can never deliver")
	}
}

// KillNode landing mid-slice on the centralized path: slices already
// shipped to the victim drain, later points re-map, and the result matches
// the fault-free run.
func TestKillNodeMidSliceCentralized(t *testing.T) {
	run := func(fi *FaultInjector) (float64, Stats) {
		r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true, Fault: fi})
		tree, part := lineSetup(t, 160, 16)
		inc := r.MustRegisterTask("inc", incrementTask)
		for round := 0; round < 3; round++ {
			if _, err := r.ExecuteIndex(core.MustForall("inc", inc, domain.Range1(0, 15), identityRW(part))); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.FenceErr(); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		sum, err := region.SumF64(tree.Root(), fieldVal)
		if err != nil {
			t.Fatal(err)
		}
		return sum, r.Stats()
	}
	ref, _ := run(nil)
	// The kill threshold lands on the 6th of 16 points — mid-slice within
	// the first launch, after its slices were already broadcast.
	sum, st := run(NewFaultInjector(3).KillNode(2, 6))
	if sum != ref {
		t.Errorf("mid-slice kill sum = %v, fault-free = %v", sum, ref)
	}
	if st.NodeFailures != 1 {
		t.Errorf("node failures = %d, want 1", st.NodeFailures)
	}
	// Node 2 owns 4 of 16 points per launch: its points in launches 2 and
	// 3 re-map (launch 1's were issued before or accepted by the draining
	// node).
	if st.Remapped == 0 {
		t.Error("mid-slice kill re-mapped no points")
	}
}

// FenceContext cancellation while a kill-triggered remap storm is in
// flight: the fence returns promptly with a descriptive error, the
// unfinished tasks stay fence-able, and the released run completes with
// fault-free results.
func TestFenceContextCancelDuringRemapStorm(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true,
		Fault: NewFaultInjector(11).KillNode(1, 10).KillNode(2, 30)})
	tree, part := lineSetup(t, 160, 16)
	release := make(chan struct{})
	gated := r.MustRegisterTask("gated", func(ctx *Context) ([]byte, error) {
		<-release
		return incrementTask(ctx)
	})
	// Three launches with two kills landing mid-stream: most of the 48
	// points re-map or queue behind the gate.
	for round := 0; round < 3; round++ {
		if _, err := r.ExecuteIndex(core.MustForall("gated", gated, domain.Range1(0, 15), identityRW(part))); err != nil {
			t.Fatal(err)
		}
	}
	err := r.FenceTimeout(10 * time.Millisecond)
	if err == nil {
		t.Fatal("FenceContext under a gated remap storm returned nil")
	}
	if !strings.Contains(err.Error(), "unfinished") {
		t.Errorf("cancellation error not descriptive: %v", err)
	}

	close(release)
	if err := r.FenceErr(); err != nil {
		t.Fatalf("fence after release: %v", err)
	}
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 3*160 {
		t.Errorf("sum = %v, want %v", sum, 3*160)
	}
	st := r.Stats()
	if st.NodeFailures != 2 || st.Remapped == 0 {
		t.Errorf("kills = %d remapped = %d, want 2 kills and nonzero remaps", st.NodeFailures, st.Remapped)
	}
}

// Shutdown cancels a retry backoff in flight: a task sleeping out a long
// ladder fails immediately instead of holding the fence for the rest of
// the wait.
func TestShutdownCancelsRetryBackoff(t *testing.T) {
	r := MustNew(Config{
		Nodes: 1, ProcsPerNode: 1,
		Retry: RetryPolicy{Max: 3, Backoff: time.Hour, MaxBackoff: time.Hour},
	})
	always := r.MustRegisterTask("always-fails", func(ctx *Context) ([]byte, error) {
		return nil, errTransient
	})
	fut, err := r.ExecuteSingle("doomed", always, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Give the first attempt time to fail and enter its hour-long backoff.
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	r.Shutdown()
	if _, err := fut.Get(); err == nil {
		t.Error("cancelled retry ladder returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Shutdown took %v to cancel the backoff", elapsed)
	}
	r.Shutdown() // idempotent
}
