package rt

import (
	"sync/atomic"
	"testing"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/privilege"
	"indexlaunch/internal/projection"
	"indexlaunch/internal/region"
)

const fieldVal region.FieldID = 0

func lineSetup(t *testing.T, n int64, parts int) (*region.Tree, *region.Partition) {
	t.Helper()
	fs := region.MustFieldSpace(region.Field{ID: fieldVal, Name: "v", Kind: region.F64})
	tree := region.MustNewTree("line", domain.Range1(0, n-1), fs)
	p, err := tree.PartitionEqual(tree.Root(), "blocks", parts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, p
}

func allConfigs() []Config {
	var out []Config
	for _, dcr := range []bool{false, true} {
		for _, idx := range []bool{false, true} {
			out = append(out, Config{
				Nodes: 4, ProcsPerNode: 2, DCR: dcr, IndexLaunches: idx,
				VerifyLaunches: true,
			})
		}
	}
	return out
}

func cfgName(c Config) string {
	name := "noDCR"
	if c.DCR {
		name = "DCR"
	}
	if c.IndexLaunches {
		return name + "+IDX"
	}
	return name + "+noIDX"
}

// incrementTask adds 1 to every element of its read-write region argument.
func incrementTask(ctx *Context) ([]byte, error) {
	acc, err := ctx.WriteF64(0, fieldVal)
	if err != nil {
		return nil, err
	}
	pr, _ := ctx.Region(0)
	pr.Region.Domain.Each(func(p domain.Point) bool {
		acc.Set(p, acc.Get(p)+1)
		return true
	})
	return nil, nil
}

func TestExecuteIndexAllConfigs(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			r := MustNew(cfg)
			tid := r.MustRegisterTask("inc", incrementTask)
			tree, p := lineSetup(t, 100, 10)
			launch := core.MustForall("inc", tid, domain.Range1(0, 9), core.Requirement{
				Partition: p, Functor: projection.Identity(1),
				Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
			})
			// Three dependent rounds: every element must end at exactly 3.
			for i := 0; i < 3; i++ {
				fm, err := r.ExecuteIndex(launch)
				if err != nil {
					t.Fatal(err)
				}
				_ = fm
			}
			r.Fence()
			sum, err := region.SumF64(tree.Root(), fieldVal)
			if err != nil {
				t.Fatal(err)
			}
			if sum != 300 {
				t.Errorf("sum = %v, want 300", sum)
			}
			st := r.Stats()
			if st.TasksExecuted != 30 {
				t.Errorf("tasks executed = %d, want 30", st.TasksExecuted)
			}
			if cfg.IndexLaunches && st.IndexLaunched != 3 {
				t.Errorf("index launched = %d, want 3", st.IndexLaunched)
			}
			if !cfg.IndexLaunches && st.Expanded != 3 {
				t.Errorf("expanded = %d, want 3", st.Expanded)
			}
		})
	}
}

func TestDependentLaunchesAreOrdered(t *testing.T) {
	// Producer writes block values; consumer reads producer's block i and
	// writes into a second collection. Verifies cross-launch RAW ordering.
	r := MustNew(Config{Nodes: 3, ProcsPerNode: 4, DCR: true, IndexLaunches: true})
	src, srcPart := lineSetup(t, 60, 6)
	dst, dstPart := lineSetup(t, 60, 6)
	_ = src

	produce := r.MustRegisterTask("produce", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			acc.Set(p, float64(ctx.Point.X()+1))
			return true
		})
		return nil, nil
	})
	consume := r.MustRegisterTask("consume", func(ctx *Context) ([]byte, error) {
		in, err := ctx.ReadF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		out, err := ctx.WriteF64(1, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			out.Set(p, in.Get(p)*2)
			return true
		})
		return nil, nil
	})

	d := domain.Range1(0, 5)
	lp := core.MustForall("produce", produce, d, core.Requirement{
		Partition: srcPart, Functor: projection.Identity(1),
		Priv: privilege.Write, Fields: []region.FieldID{fieldVal},
	})
	lc := core.MustForall("consume", consume, d,
		core.Requirement{Partition: srcPart, Functor: projection.Identity(1),
			Priv: privilege.Read, Fields: []region.FieldID{fieldVal}},
		core.Requirement{Partition: dstPart, Functor: projection.Identity(1),
			Priv: privilege.Write, Fields: []region.FieldID{fieldVal}},
	)
	if _, err := r.ExecuteIndex(lp); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ExecuteIndex(lc); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	acc := region.MustFieldF64(dst.Root(), fieldVal)
	for b := int64(0); b < 6; b++ {
		want := float64(b+1) * 2
		for x := b * 10; x < (b+1)*10; x++ {
			if got := acc.Get(domain.Pt1(x)); got != want {
				t.Fatalf("dst[%d] = %v, want %v", x, got, want)
			}
		}
	}
}

func TestUnsafeLaunchFallsBackAndStaysCorrect(t *testing.T) {
	// The Listing 2 pattern: write through q[i%3] over [0,6). As an index
	// launch this is unsafe; the runtime demotes it to a task loop whose
	// version-map analysis serializes the conflicting writers, so the
	// result is deterministic.
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 4, DCR: true, IndexLaunches: true, VerifyLaunches: true})
	tree, p := lineSetup(t, 30, 3)
	add := r.MustRegisterTask("add", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.WriteF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(pt domain.Point) bool {
			acc.Set(pt, acc.Get(pt)+float64(int64(1)<<uint(ctx.Point.X())))
			return true
		})
		return nil, nil
	})
	launch := core.MustForall("add", add, domain.Range1(0, 5), core.Requirement{
		Partition: p, Functor: projection.Modular1D(1, 0, 3),
		Priv: privilege.ReadWrite, Fields: []region.FieldID{fieldVal},
	})
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	st := r.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}
	// Block b receives contributions from launch points b and b+3:
	// 2^b + 2^(b+3), applied to each of its 10 elements.
	acc := region.MustFieldF64(tree.Root(), fieldVal)
	for b := int64(0); b < 3; b++ {
		want := float64((int64(1) << uint(b)) + (int64(1) << uint(b+3)))
		for x := b * 10; x < (b+1)*10; x++ {
			if got := acc.Get(domain.Pt1(x)); got != want {
				t.Fatalf("elem %d = %v, want %v", x, got, want)
			}
		}
	}
}

func TestReductionLaunch(t *testing.T) {
	// Overlapping reductions through a constant functor: all launch points
	// reduce into block 0. Same-op reducers commute; the total must be the
	// sum of all contributions.
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 4, DCR: true, IndexLaunches: true, VerifyLaunches: true})
	tree, p := lineSetup(t, 10, 1)
	red := r.MustRegisterTask("reduce", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.ReduceF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(pt domain.Point) bool {
			acc.Fold(pt, float64(ctx.Point.X()+1))
			return true
		})
		return nil, nil
	})
	launch := core.MustForall("reduce", red, domain.Range1(0, 4), core.Requirement{
		Partition: p, Functor: projection.Constant(domain.Pt1(0)),
		Priv: privilege.Reduce, RedOp: privilege.OpSumF64, Fields: []region.FieldID{fieldVal},
	})
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	// Each of 10 elements accumulates 1+2+3+4+5 = 15.
	sum, _ := region.SumF64(tree.Root(), fieldVal)
	if sum != 150 {
		t.Errorf("sum = %v, want 150", sum)
	}
}

func TestPointArgsDeliveredPerTask(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 40, 4)
	task := r.MustRegisterTask("echo", func(ctx *Context) ([]byte, error) {
		return EncodeF64(float64(ctx.Args[0])), nil
	})
	launch := core.MustForall("echo", task, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{fieldVal},
	})
	launch.PointArgs = func(pt domain.Point) []byte { return []byte{byte(pt.X() * 3)} }
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		fut, err := fm.At(domain.Pt1(i))
		if err != nil {
			t.Fatal(err)
		}
		v, err := fut.GetF64()
		if err != nil || v != float64(i*3) {
			t.Errorf("point %d args = %v, want %d", i, v, i*3)
		}
	}
}

func TestReductionLaunchI64(t *testing.T) {
	// Int64 reductions through a constant functor: all points fold into
	// block 0 with max.
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 4, DCR: true, IndexLaunches: true})
	fs := region.MustFieldSpace(region.Field{ID: 0, Name: "m", Kind: region.I64})
	tree := region.MustNewTree("maxes", domain.Range1(0, 4), fs)
	part, err := tree.PartitionEqual(tree.Root(), "one", 1)
	if err != nil {
		t.Fatal(err)
	}
	task := r.MustRegisterTask("imax", func(ctx *Context) ([]byte, error) {
		red, err := ctx.ReduceI64(0, 0)
		if err != nil {
			return nil, err
		}
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			red.Fold(p, ctx.Point.X()*10)
			return true
		})
		return nil, nil
	})
	// Identity fold baseline: int64 max identity is MinInt64, so seed 0s.
	if err := region.FillI64(tree.Root(), 0, 0); err != nil {
		t.Fatal(err)
	}
	launch := core.MustForall("imax", task, domain.Range1(0, 6), core.Requirement{
		Partition: part, Functor: projection.Constant(domain.Pt1(0)),
		Priv: privilege.Reduce, RedOp: privilege.OpMaxI64, Fields: []region.FieldID{0},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
	acc := region.MustFieldI64(tree.Root(), 0)
	for i := int64(0); i < 5; i++ {
		if got := acc.Get(domain.Pt1(i)); got != 60 {
			t.Errorf("elem %d = %d, want 60 (max of 0..60)", i, got)
		}
	}
}

func TestReduceViewForbidsReadWrite(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 10, 1)
	task := r.MustRegisterTask("bad", func(ctx *Context) ([]byte, error) {
		if _, err := ctx.ReadF64(0, fieldVal); err == nil {
			t.Error("read through reduce privilege should fail")
		}
		if _, err := ctx.WriteF64(0, fieldVal); err == nil {
			t.Error("write through reduce privilege should fail")
		}
		return nil, nil
	})
	launch := core.MustForall("bad", task, domain.Range1(0, 0), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Reduce, RedOp: privilege.OpSumF64, Fields: []region.FieldID{fieldVal},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPrivilegeEnforcement(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 10, 1)
	task := r.MustRegisterTask("probe", func(ctx *Context) ([]byte, error) {
		if _, err := ctx.WriteF64(0, fieldVal); err == nil {
			t.Error("write through read privilege should fail")
		}
		if _, err := ctx.ReadF64(0, fieldVal); err != nil {
			t.Errorf("read through read privilege failed: %v", err)
		}
		if _, err := ctx.ReadF64(0, region.FieldID(42)); err == nil {
			t.Error("unrequested field should fail")
		}
		if _, err := ctx.Region(5); err == nil {
			t.Error("out-of-range region should fail")
		}
		return nil, nil
	})
	launch := core.MustForall("probe", task, domain.Range1(0, 0), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{fieldVal},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 80, 8)
	var concurrent, peak atomic.Int64
	gate := make(chan struct{})
	task := r.MustRegisterTask("block", func(ctx *Context) ([]byte, error) {
		n := concurrent.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		<-gate
		concurrent.Add(-1)
		return nil, nil
	})
	launch := core.MustForall("block", task, domain.Range1(0, 7), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Write, Fields: []region.FieldID{fieldVal},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	// All 8 tasks are independent; 4 nodes × 2 procs can hold all 8.
	for i := 0; i < 100 && concurrent.Load() < 8; i++ {
		waitABit()
	}
	got := concurrent.Load()
	close(gate)
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("concurrent peak = %d, want 8", got)
	}
}

func TestProcessorSlotsBoundConcurrency(t *testing.T) {
	// One node with one processor: tasks serialize even when independent.
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 40, 4)
	var concurrent, peak atomic.Int64
	task := r.MustRegisterTask("busy", func(ctx *Context) ([]byte, error) {
		n := concurrent.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		waitABit()
		concurrent.Add(-1)
		return nil, nil
	})
	launch := core.MustForall("busy", task, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Write, Fields: []region.FieldID{fieldVal},
	})
	fm, _ := r.ExecuteIndex(launch)
	if err := fm.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Errorf("peak concurrency = %d, want 1", peak.Load())
	}
}

func TestExecuteSingle(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	tree, _ := lineSetup(t, 10, 1)
	task := r.MustRegisterTask("sum", func(ctx *Context) ([]byte, error) {
		acc, err := ctx.ReadF64(0, fieldVal)
		if err != nil {
			return nil, err
		}
		var s float64
		pr, _ := ctx.Region(0)
		pr.Region.Domain.Each(func(p domain.Point) bool {
			s += acc.Get(p)
			return true
		})
		return EncodeF64(s), nil
	})
	if err := region.FillF64(tree.Root(), fieldVal, 2); err != nil {
		t.Fatal(err)
	}
	fut, err := r.ExecuteSingle("sum", task, []SingleReq{{
		Region: tree.Root(), Priv: privilege.Read, Fields: []region.FieldID{fieldVal},
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fut.GetF64()
	if err != nil || v != 20 {
		t.Errorf("sum = %v, %v", v, err)
	}
}

func TestFutureMapSumF64(t *testing.T) {
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 2, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 40, 4)
	task := r.MustRegisterTask("pointval", func(ctx *Context) ([]byte, error) {
		return EncodeF64(float64(ctx.Point.X())), nil
	})
	launch := core.MustForall("pv", task, domain.Range1(0, 3), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{fieldVal},
	})
	fm, err := r.ExecuteIndex(launch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fm.SumF64()
	if err != nil || s != 6 {
		t.Errorf("SumF64 = %v, %v", s, err)
	}
	if _, err := fm.At(domain.Pt1(2)); err != nil {
		t.Errorf("At(2): %v", err)
	}
	if _, err := fm.At(domain.Pt1(9)); err == nil {
		t.Error("At(9) should fail")
	}
}

func TestUnregisteredTaskRejected(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true})
	_, p := lineSetup(t, 10, 1)
	launch := core.MustForall("ghost", core.TaskID(99), domain.Range1(0, 0), core.Requirement{
		Partition: p, Functor: projection.Identity(1),
		Priv: privilege.Read, Fields: []region.FieldID{fieldVal},
	})
	if _, err := r.ExecuteIndex(launch); err == nil {
		t.Error("unregistered task should be rejected")
	}
	if _, err := r.ExecuteSingle("ghost", core.TaskID(99), nil, nil); err == nil {
		t.Error("unregistered single task should be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, ProcsPerNode: 1}); err == nil {
		t.Error("zero nodes should be rejected")
	}
	if _, err := New(Config{Nodes: 1, ProcsPerNode: 0}); err == nil {
		t.Error("zero procs should be rejected")
	}
}

func TestDuplicateTaskNameRejected(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1})
	r.MustRegisterTask("t", func(*Context) ([]byte, error) { return nil, nil })
	if _, err := r.RegisterTask("t", func(*Context) ([]byte, error) { return nil, nil }); err == nil {
		t.Error("duplicate name should be rejected")
	}
}

func TestDynamicCheckStatsExposed(t *testing.T) {
	r := MustNew(Config{Nodes: 1, ProcsPerNode: 1, DCR: true, IndexLaunches: true, VerifyLaunches: true})
	_, p := lineSetup(t, 100, 10)
	task := r.MustRegisterTask("t", func(*Context) ([]byte, error) { return nil, nil })
	launch := core.MustForall("quad", task, domain.Range1(0, 2), core.Requirement{
		Partition: p, Functor: projection.Quadratic1D(1, 1, 0),
		Priv: privilege.Write, Fields: []region.FieldID{fieldVal},
	})
	if _, err := r.ExecuteIndex(launch); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	if st := r.Stats(); st.DynamicCheckEvals == 0 {
		t.Error("quadratic functor should have triggered a dynamic check")
	}
}

func waitABit() { time.Sleep(time.Millisecond) }
