package rt

import (
	"fmt"
	"testing"
	"time"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
)

// testSpeculation trusts the baseline after 16 samples and speculates
// quickly so the straggler tests stay fast.
var testSpeculation = SpeculationPolicy{
	Quantile: 0.9, Multiplier: 2, MinSamples: 16, MinDelay: 5 * time.Millisecond,
}

// A task that straggles on its originally mapped node gets a backup launch
// on another node; the backup's result commits and the straggling original
// is cancelled and counted wasted. Speculated bodies are pure (they return
// payloads), as the policy requires.
func TestSpeculationRescuesStraggler(t *testing.T) {
	r := MustNew(Config{
		Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
		Speculate: testSpeculation,
	})
	defer r.Shutdown()

	echo := r.MustRegisterTask("echo", func(ctx *Context) ([]byte, error) {
		return []byte{byte(ctx.Point.X())}, nil
	})
	// Point 3 maps to node 3 under BlockMapper; the body only straggles
	// there, so the backup attempt (on another node) returns promptly.
	slow := r.MustRegisterTask("slow", func(ctx *Context) ([]byte, error) {
		if ctx.Point.X() == 3 && ctx.Node == 3 {
			select {
			case <-ctx.Cancelled():
				return nil, fmt.Errorf("cancelled straggler")
			case <-time.After(10 * time.Second):
			}
		}
		return []byte{byte(ctx.Point.X())}, nil
	})

	// Warm up the latency baseline past MinSamples with fast tasks.
	if _, err := r.ExecuteIndex(core.MustForall("warmup", echo, domain.Range1(0, 31))); err != nil {
		t.Fatal(err)
	}
	r.Fence()

	fm, err := r.ExecuteIndex(core.MustForall("straggle", slow, domain.Range1(0, 3)))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fm.WaitErr(); err != nil {
		t.Fatalf("speculated launch failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("launch took %v; speculation never rescued the straggler", elapsed)
	}
	for x := int64(0); x <= 3; x++ {
		f, err := fm.At(domain.Pt1(x))
		if err != nil {
			t.Fatalf("no future for point %d: %v", x, err)
		}
		val, err := f.Get()
		if err != nil || len(val) != 1 || val[0] != byte(x) {
			t.Errorf("point %d = %v, %v; want [%d]", x, val, err, x)
		}
	}

	// The future completes as soon as the backup commits; the cancelled
	// original drains asynchronously, so poll briefly for its accounting.
	deadline := time.Now().Add(5 * time.Second)
	st := r.Stats()
	for st.SpecWasted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		st = r.Stats()
	}
	if st.SpecLaunched == 0 {
		t.Error("no speculative backup was launched")
	}
	if st.SpecWon == 0 {
		t.Error("no backup won: the straggler's future waited for the original")
	}
	if st.SpecWasted == 0 {
		t.Error("the cancelled original was never counted wasted")
	}
	if st.TasksFailed != 0 {
		t.Errorf("TasksFailed = %d: a discarded loser leaked into failure counts", st.TasksFailed)
	}
}

// Below MinSamples there is no baseline, so nothing speculates, however
// slow a task is relative to its peers.
func TestSpeculationNeedsBaseline(t *testing.T) {
	r := MustNew(Config{
		Nodes: 2, ProcsPerNode: 1, DCR: true, IndexLaunches: true,
		Speculate: SpeculationPolicy{Quantile: 0.9, MinSamples: 1000},
	})
	defer r.Shutdown()
	echo := r.MustRegisterTask("echo", func(ctx *Context) ([]byte, error) { return nil, nil })
	if _, err := r.ExecuteIndex(core.MustForall("w", echo, domain.Range1(0, 15))); err != nil {
		t.Fatal(err)
	}
	r.Fence()
	if st := r.Stats(); st.SpecLaunched != 0 {
		t.Errorf("SpecLaunched = %d without a trusted baseline", st.SpecLaunched)
	}
}

// Config validation: a quantile outside [0, 1) is rejected.
func TestSpeculationQuantileValidated(t *testing.T) {
	for _, q := range []float64{-0.1, 1, 1.5} {
		_, err := New(Config{Nodes: 2, ProcsPerNode: 1, DCR: true,
			Speculate: SpeculationPolicy{Quantile: q}})
		if err == nil {
			t.Errorf("Quantile %v accepted", q)
		}
	}
	if _, err := New(Config{Nodes: 2, ProcsPerNode: 1, DCR: true, Heartbeat: HeartbeatPolicy{Every: -1}}); err == nil {
		t.Error("negative Heartbeat.Every accepted")
	}
}
