package rt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
	"indexlaunch/internal/wire"
)

// testCluster stands up an n-node wire mesh over the in-process loopback
// hub: node 0 is returned for the runtime, nodes 1..n-1 act as workers
// whose Exec handler runs fn and whose deliveries are collected.
type testCluster struct {
	meshes   []*wire.Mesh
	executed []atomic.Int64 // per-node remote executions

	mu     sync.Mutex
	slices map[int][]ClusterMsg // node -> received slice messages
}

func newTestCluster(t *testing.T, n int, fn func(task string, point domain.Point, args []byte) ([]byte, error)) *testCluster {
	t.Helper()
	hub := wire.NewHub()
	tc := &testCluster{
		meshes:   make([]*wire.Mesh, n),
		executed: make([]atomic.Int64, n),
		slices:   map[int][]ClusterMsg{},
	}
	for i := 0; i < n; i++ {
		m, err := wire.NewMesh(wire.MeshConfig{
			Self: i, Nodes: n, Fabric: hub.Fabric(i),
			Deliver: func(node int, tag string, payload []byte) {
				msg, err := DecodeClusterPayload(payload)
				if err != nil {
					t.Errorf("node %d: bad cluster payload: %v", node, err)
					return
				}
				tc.mu.Lock()
				tc.slices[node] = append(tc.slices[node], msg)
				tc.mu.Unlock()
			},
			Exec: func(task string, point domain.Point, args []byte) ([]byte, error) {
				tc.executed[i].Add(1)
				return fn(task, point, args)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.meshes[i] = m
		t.Cleanup(func() { _ = m.Close() })
	}
	return tc
}

func (tc *testCluster) remoteExecs() int64 {
	var total int64
	for i := range tc.executed {
		total += tc.executed[i].Load()
	}
	return total
}

func TestClusterLoopbackRemoteExecution(t *testing.T) {
	const nodes = 3
	body := func(task string, point domain.Point, args []byte) ([]byte, error) {
		return EncodeF64(float64(point.X() * point.X())), nil
	}
	tc := newTestCluster(t, nodes, body)
	r := MustNew(Config{Nodes: nodes, ProcsPerNode: 2, IndexLaunches: true, Cluster: tc.meshes[0]})
	defer r.Shutdown()

	// The registered body is what node-0-local points run; workers run the
	// mesh Exec handler above. Both compute x².
	id := r.MustRegisterTask("square", func(ctx *Context) ([]byte, error) {
		return EncodeF64(float64(ctx.Point.X() * ctx.Point.X())), nil
	})

	fm, err := r.ExecuteIndex(&core.IndexLaunch{
		Task:   id,
		Tag:    "squares",
		Domain: domain.Range1(0, 29),
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := fm.SumF64()
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, p := range domain.Range1(0, 29).Points() {
		want += float64(p.X() * p.X())
	}
	if fm.Len() != 30 || sum != want {
		t.Fatalf("got %d results summing %v, want 30 summing %v", fm.Len(), sum, want)
	}
	r.Fence()

	// Most points belong to worker nodes (block mapping over 3 nodes →
	// ~20 of 30 points) and must have executed in the "worker" meshes.
	if got := tc.remoteExecs(); got == 0 {
		t.Fatal("no remote executions: cluster mode ran everything locally")
	}
	if tc.executed[0].Load() != 0 {
		t.Fatal("node 0 received Exec requests; local points must run locally")
	}

	// Workers received their slice descriptors.
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for n := 1; n < nodes; n++ {
		found := false
		for _, m := range tc.slices[n] {
			if m.Kind == "slice" && m.Slice.Node == n && !m.Slice.Domain.Empty() {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d received no slice descriptor: %+v", n, tc.slices[n])
		}
	}
}

func TestClusterRemoteTaskErrorFeedsRetryLadder(t *testing.T) {
	var failures atomic.Int64
	body := func(task string, point domain.Point, args []byte) ([]byte, error) {
		if failures.Add(1) <= 2 {
			return nil, errors.New("transient worker failure")
		}
		return EncodeF64(1), nil
	}
	tc := newTestCluster(t, 2, body)
	r := MustNew(Config{Nodes: 2, ProcsPerNode: 1, IndexLaunches: true,
		Cluster: tc.meshes[0], Retry: RetryPolicy{Max: 3}})
	defer r.Shutdown()
	id := r.MustRegisterTask("flaky", func(ctx *Context) ([]byte, error) {
		return EncodeF64(1), nil
	})
	fm, err := r.ExecuteIndex(&core.IndexLaunch{Task: id, Tag: "t", Domain: domain.Range1(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if werr := fm.Wait(); werr != nil {
		t.Fatalf("points failed despite retries: %v", werr)
	}
	if r.Stats().Retries == 0 {
		t.Fatal("remote failures did not drive the retry ladder")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	tc := newTestCluster(t, 3, func(string, domain.Point, []byte) ([]byte, error) { return nil, nil })
	cases := []struct {
		name string
		cfg  Config
	}{
		{"dcr", Config{Nodes: 3, ProcsPerNode: 1, DCR: true, Cluster: tc.meshes[0]}},
		{"node-count", Config{Nodes: 5, ProcsPerNode: 1, Cluster: tc.meshes[0]}},
		{"not-node-zero", Config{Nodes: 3, ProcsPerNode: 1, Cluster: tc.meshes[1]}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Fatalf("%s: config accepted", c.name)
		}
	}
}

func TestClusterPayloadRoundTrip(t *testing.T) {
	dense := Slice{Domain: domain.Range1(5, 25), Node: 2}
	b := encodeClusterPayload(sliceMsg{idx: 7, s: dense})
	msg, err := DecodeClusterPayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "slice" || msg.Index != 7 || msg.Slice.Node != 2 || !msg.Slice.Domain.Eq(dense.Domain) {
		t.Fatalf("dense round trip: %+v", msg)
	}

	sparse := Slice{Domain: domain.DiagonalSlice3(domain.Rect{Lo: domain.Pt3(0, 0, 0), Hi: domain.Pt3(3, 3, 3)}, 4), Node: 1}
	b = encodeClusterPayload(sliceMsg{idx: 0, s: sparse})
	msg, err = DecodeClusterPayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "slice" || !msg.Slice.Domain.Eq(sparse.Domain) || !msg.Slice.Domain.Sparse() {
		t.Fatalf("sparse round trip: %+v", msg)
	}

	b = encodeClusterPayload(resyncMsg{epoch: -9})
	msg, err = DecodeClusterPayload(b)
	if err != nil || msg.Kind != "resync" || msg.Epoch != -9 {
		t.Fatalf("resync round trip: %v %+v", err, msg)
	}

	for _, bad := range [][]byte{nil, {99}, {1, 0x80}, {2}} {
		if _, err := DecodeClusterPayload(bad); err == nil {
			t.Fatalf("payload %v accepted", bad)
		}
	}
}
