package rt

import (
	"testing"
	"time"
)

func TestEventTriggerDone(t *testing.T) {
	e := NewEvent()
	if e.Done() {
		t.Error("new event should not be done")
	}
	e.Trigger()
	if !e.Done() {
		t.Error("triggered event should be done")
	}
	e.Trigger() // idempotent
	e.Wait()    // returns immediately
}

func TestCompletedEvent(t *testing.T) {
	if !Completed().Done() {
		t.Error("Completed should be done")
	}
}

func TestMergeZeroAndOne(t *testing.T) {
	if !Merge().Done() {
		t.Error("merge of nothing is complete")
	}
	e := NewEvent()
	if Merge(e) != e {
		t.Error("merge of one event is itself")
	}
}

func TestMergeWaitsForAll(t *testing.T) {
	a, b := NewEvent(), NewEvent()
	m := Merge(a, b)
	a.Trigger()
	select {
	case <-time.After(10 * time.Millisecond):
	case <-waitCh(m):
		t.Fatal("merge fired before all inputs")
	}
	b.Trigger()
	select {
	case <-waitCh(m):
	case <-time.After(time.Second):
		t.Fatal("merge never fired")
	}
}

func waitCh(e *Event) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		e.Wait()
		close(ch)
	}()
	return ch
}

func TestFutureGetF64(t *testing.T) {
	f := newFuture()
	go f.complete(EncodeF64(3.5), nil)
	v, err := f.GetF64()
	if err != nil || v != 3.5 {
		t.Errorf("GetF64 = %v, %v", v, err)
	}
}

func TestFutureGetF64BadPayload(t *testing.T) {
	f := newFuture()
	f.complete([]byte{1, 2}, nil)
	if _, err := f.GetF64(); err == nil {
		t.Error("short payload should error")
	}
}
