package rt

import (
	"fmt"

	"indexlaunch/internal/domain"
	"indexlaunch/internal/health"
	"indexlaunch/internal/obs"
	"indexlaunch/internal/xport"
)

// This file wires the failure detector (internal/health) into the runtime.
// With a HeartbeatPolicy configured, liveness stops being an input: instead
// of an external KillNode call *telling* the runtime a node died, the
// runtime probes its nodes with heartbeat messages over the transport's
// broadcast tree and the detector turns missed heartbeats into state
// transitions. The injector's kill becomes just one way a node stops
// heartbeating (it is silenced, not declared dead), and a chaos partition
// that starves a node's probes is another — both are *detected*, at an
// issuance boundary, through the same machinery.
//
// Determinism: heartbeat rounds are driven by the issuance counter, not a
// timer. Every HeartbeatPolicy.Every issued point tasks, the issuing
// goroutine runs one detector tick under issueMu — probing every node
// synchronously through xport.Probe, whose outcome is a pure function of
// the chaos plan and the probe order. For a fixed seed, program and
// policy, the full suspect/rejoin transition log is therefore byte-for-byte
// identical across runs, which the chaos determinism suite enforces.
//
// Recovery: a suspect/dead node that answers a probe again is quarantined;
// after RejoinRounds consecutive answers it rejoins — the runtime bumps the
// resync epoch, announces it to the node (a resync message on the
// centralized path; each later launch re-ships slices to live nodes, so
// the rejoined node's state refreshes naturally), readmits the node to the
// mapper's node set, and re-parents the broadcast tree back toward its
// denser original shape via xport.MarkAlive.

// HeartbeatPolicy enables and tunes the self-healing failure detector.
type HeartbeatPolicy struct {
	// Every is the heartbeat period in issued point tasks: one detector
	// round runs each time the runtime-wide issuance counter crosses a
	// multiple of Every. 0 disables detection.
	Every int64
	// ProbeAttempts bounds per-hop transmissions of one heartbeat probe
	// before the probe is declared failed; 0 defaults to 3.
	ProbeAttempts int
	// SuspectPhi / DeadPhi / Window / RejoinRounds tune the accrual
	// detector; zeros take the internal/health defaults.
	SuspectPhi   float64
	DeadPhi      float64
	Window       int
	RejoinRounds int
}

// Enabled reports whether the policy turns detection on.
func (hp HeartbeatPolicy) Enabled() bool { return hp.Every > 0 }

func (hp HeartbeatPolicy) probeAttempts() int {
	if hp.ProbeAttempts <= 0 {
		return 3
	}
	return hp.ProbeAttempts
}

// healthManager is the runtime's detector state, guarded by issueMu.
type healthManager struct {
	det *health.Detector
	// silenced marks nodes that stopped heartbeating without the detector
	// knowing yet — the self-healing replacement for an immediate kill.
	silenced []bool
	// epoch is the resync epoch, bumped on every rejoin.
	epoch int64
}

// resyncMsg announces a rejoining node's new resync epoch through the
// transport on the centralized path.
type resyncMsg struct{ epoch int64 }

func newHealthManager(cfg Config) *healthManager {
	if !cfg.Heartbeat.Enabled() {
		return nil
	}
	return &healthManager{
		det: health.New(health.Options{
			Nodes:        cfg.Nodes,
			SuspectPhi:   cfg.Heartbeat.SuspectPhi,
			DeadPhi:      cfg.Heartbeat.DeadPhi,
			Window:       cfg.Heartbeat.Window,
			RejoinRounds: cfg.Heartbeat.RejoinRounds,
		}),
		silenced: make([]bool, cfg.Nodes),
	}
}

// healthTick runs one heartbeat round and applies the resulting
// transitions. Caller holds issueMu. Shutdown stops the rounds so a
// Shutdown racing an in-flight rejoin never probes a closed runtime.
func (r *Runtime) healthTick() {
	hm := r.hm
	select {
	case <-r.stop:
		return
	default:
	}
	attempts := r.cfg.Heartbeat.probeAttempts()
	trs := hm.det.Tick(func(node int) bool {
		if hm.silenced[node] {
			// A silenced node's responder is down: the probe route may be
			// fine, the answer never comes. The transport never sees the
			// probe, so count it here on the same shared-registry counters
			// xport.Probe increments for transported probes.
			r.mx.HealthProbes.Inc()
			r.mx.HealthProbeFails.Inc()
			return false
		}
		return r.xp.Probe(node, attempts)
	})
	for _, tr := range trs {
		r.applyTransition(tr)
	}
}

// applyTransition maps one detector transition onto runtime state. Caller
// holds issueMu.
func (r *Runtime) applyTransition(tr health.Transition) {
	switch tr.To {
	case health.Suspect:
		// Entering suspicion (from alive or from a failed quarantine):
		// stop assigning work — subsequently issued points re-map exactly
		// as the kill path's do — and route broadcasts around the node.
		r.mx.HealthSuspects.Inc()
		if !r.dead[tr.Node] {
			r.dead[tr.Node] = true
			r.xp.MarkDead(tr.Node)
		}
	case health.Dead:
		r.mx.HealthDeaths.Inc()
	case health.Quarantined:
		// The node answers again but is not yet trusted: it stays out of
		// the mapper's node set until RejoinRounds consecutive heartbeats.
	case health.Alive:
		// Rejoin: resync, readmit, re-parent.
		r.hm.epoch++
		r.mx.HealthRejoins.Inc()
		r.dead[tr.Node] = false
		r.xp.MarkAlive(tr.Node)
		if !r.cfg.DCR {
			// Announce the new epoch through the transport; the next
			// launch's slice broadcast re-ships the node's slices over the
			// re-parented (denser) tree.
			r.xp.Broadcast("resync", []xport.Item{{Dst: tr.Node, Payload: resyncMsg{epoch: r.hm.epoch}}})
		}
	}
	if prof := r.cfg.Profile; prof != nil {
		label := tr.To.String()
		if tr.To == health.Alive {
			label = "rejoin"
		}
		prof.Mark(tr.Node, obs.StageHealth, label, "health", domain.Point{}, prof.Now())
	}
}

// silenceNodeLocked is the detector-mode kill: the node stops answering
// heartbeats but nothing is declared dead until the detector says so.
// Caller holds issueMu.
func (r *Runtime) silenceNodeLocked(node int) bool {
	if node <= 0 || node >= r.cfg.Nodes || r.hm.silenced[node] {
		// Node 0 is the observer: silencing it would be undetectable.
		return false
	}
	r.hm.silenced[node] = true
	r.mx.NodeFailures.Inc()
	if prof := r.cfg.Profile; prof != nil {
		prof.Mark(node, obs.StageFault, "node-kill", "", domain.Point{}, prof.Now())
	}
	return true
}

// reviveNodeLocked restores a killed node. With the detector enabled it
// resumes the node's heartbeats — quarantine and rejoin follow through the
// normal detection path. Without a detector it readmits the node directly.
// Caller holds issueMu.
func (r *Runtime) reviveNodeLocked(node int) bool {
	if node < 0 || node >= r.cfg.Nodes {
		return false
	}
	if r.hm != nil {
		if !r.hm.silenced[node] {
			return false
		}
		r.hm.silenced[node] = false
		return true
	}
	if !r.dead[node] {
		return false
	}
	r.dead[node] = false
	if r.xp != nil {
		r.xp.MarkAlive(node)
	}
	return true
}

// ReviveNode restores a previously killed node at the next issuance
// boundary. With a HeartbeatPolicy configured the node merely resumes
// heartbeating — the detector quarantines and readmits it over the
// following rounds; without one the node rejoins the mapper's node set
// immediately. Returns false if the node is out of range or was not down.
func (r *Runtime) ReviveNode(node int) bool {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	return r.reviveNodeLocked(node)
}

// HealthLog returns the detector's transition history; nil when no
// HeartbeatPolicy is configured. The rendered form (health.RenderLog) is
// byte-identical across runs for a fixed seed, program and policy.
func (r *Runtime) HealthLog() []health.Transition {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	if r.hm == nil {
		return nil
	}
	return r.hm.det.Log()
}

// HealthCounts aggregates the current node-health table. Without a
// detector it is derived from the kill-path liveness flags.
func (r *Runtime) HealthCounts() health.Counts {
	r.issueMu.Lock()
	defer r.issueMu.Unlock()
	return r.healthCountsLocked()
}

func (r *Runtime) healthCountsLocked() health.Counts {
	if r.hm != nil {
		return r.hm.det.Counts()
	}
	var c health.Counts
	for _, dead := range r.dead {
		if dead {
			c.Dead++
		} else {
			c.Alive++
		}
	}
	return c
}

// livenessSummary renders the liveness snapshot fence errors embed.
func (r *Runtime) livenessSummary() string {
	return fmt.Sprintf("liveness: %s", r.HealthCounts())
}
