package rt

import (
	"indexlaunch/internal/health"
	"indexlaunch/internal/wire"
	"indexlaunch/internal/xport"
)

// Status is a point-in-time introspection snapshot of a running runtime:
// the /statusz payload. It is deliberately JSON-shaped — metrics.Serve
// callers pass Runtime.Status as the StatusFunc.
type Status struct {
	// Configuration echo: enough to tell which of the paper's four
	// evaluation configurations is running.
	Nodes         int  `json:"nodes"`
	ProcsPerNode  int  `json:"procs_per_node"`
	DCR           bool `json:"dcr"`
	IndexLaunches bool `json:"index_launches"`
	Tracing       bool `json:"tracing,omitempty"`

	// Node liveness under fault injection.
	LiveNodes int   `json:"live_nodes"`
	DeadNodes []int `json:"dead_nodes,omitempty"`

	// Launch and task progress.
	LaunchCalls   int64 `json:"launch_calls"`
	TasksExecuted int64 `json:"tasks_executed"`
	InflightTasks int64 `json:"inflight_tasks"`
	BusyProcs     int64 `json:"busy_procs"`

	// OutstandingFence counts issued tasks a fence would currently wait on
	// (completed tasks not yet pruned are excluded).
	OutstandingFence int `json:"outstanding_fence"`

	// Tree is the broadcast tree's current shape; nil in DCR mode, which
	// has no slice transport (unless a HeartbeatPolicy attached a
	// probe-only transport).
	Tree *xport.TreeShape `json:"tree,omitempty"`

	// Health is the live per-node health table (state, phi, last-OK
	// round); nil without a HeartbeatPolicy. HealthSummary aggregates it,
	// and ResyncEpoch counts completed rejoins.
	Health        []health.NodeHealth `json:"health,omitempty"`
	HealthSummary string              `json:"health_summary,omitempty"`
	ResyncEpoch   int64               `json:"resync_epoch,omitempty"`

	// Peers is the cluster mesh's per-peer connection table (address,
	// connectivity, byte/message counters); nil outside cluster mode.
	Peers []wire.PeerStatus `json:"peers,omitempty"`
}

// Status snapshots the runtime for live introspection. Safe for concurrent
// use with issuing goroutines; intended to be served as a metrics.StatusFunc.
func (r *Runtime) Status() Status {
	st := Status{
		Nodes:         r.cfg.Nodes,
		ProcsPerNode:  r.cfg.ProcsPerNode,
		DCR:           r.cfg.DCR,
		IndexLaunches: r.cfg.IndexLaunches,
		Tracing:       r.cfg.Tracing,
		LaunchCalls:   r.mx.LaunchCalls.Value(),
		TasksExecuted: r.mx.TasksExecuted.Value(),
		InflightTasks: r.mx.InflightTasks.Value(),
		BusyProcs:     r.mx.BusyProcs.Value(),
	}
	r.issueMu.Lock()
	for n, d := range r.dead {
		if d {
			st.DeadNodes = append(st.DeadNodes, n)
		}
	}
	for _, pt := range r.outstanding {
		if !pt.ev.Done() {
			st.OutstandingFence++
		}
	}
	if r.hm != nil {
		st.Health = r.hm.det.Snapshot()
		st.HealthSummary = r.hm.det.Counts().String()
		st.ResyncEpoch = r.hm.epoch
	}
	r.issueMu.Unlock()
	st.LiveNodes = st.Nodes - len(st.DeadNodes)
	if r.xp != nil {
		sh := r.xp.Shape()
		st.Tree = &sh
	}
	if r.cluster != nil {
		st.Peers = r.cluster.Peers()
	}
	return st
}
