package rt

import (
	"testing"

	"indexlaunch/internal/core"
	"indexlaunch/internal/domain"
)

// The executor-pool support surface: TaskNamed lookup, CapacityFactor
// health read-through, and Recycle's reuse contract (quiescent-only reset
// of per-job bookkeeping while registered tasks and config survive).

func TestRecycleBetweenJobs(t *testing.T) {
	r := MustNew(Config{Nodes: 4, ProcsPerNode: 2, IndexLaunches: true})
	defer r.Shutdown()
	id := r.MustRegisterTask("noop", func(ctx *Context) ([]byte, error) {
		return EncodeF64(float64(ctx.Point.X())), nil
	})
	if got, ok := r.TaskNamed("noop"); !ok || got != id {
		t.Fatalf("TaskNamed = %v, %v; want %v, true", got, ok, id)
	}
	if _, ok := r.TaskNamed("missing"); ok {
		t.Fatal("TaskNamed found an unregistered task")
	}
	if f := r.CapacityFactor(); f != 1 {
		t.Fatalf("CapacityFactor = %v on a healthy machine, want 1", f)
	}
	for job := 0; job < 3; job++ {
		launch := core.MustForall("noop", id, domain.Range1(0, 15))
		if _, err := r.ExecuteIndex(launch); err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if err := r.FenceErr(); err != nil {
			t.Fatalf("job %d fence: %v", job, err)
		}
		if err := r.Recycle(); err != nil {
			t.Fatalf("job %d recycle: %v", job, err)
		}
	}
	// Tasks registered before recycling still resolve.
	if _, ok := r.TaskNamed("noop"); !ok {
		t.Fatal("registered task lost across Recycle")
	}
	if st := r.Stats(); st.TasksExecuted != 48 {
		t.Fatalf("TasksExecuted = %d across 3 recycled jobs, want 48", st.TasksExecuted)
	}
}
