package rt

import (
	"fmt"
	"testing"

	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

func ivs(pairs ...int64) []region.Interval {
	out := make([]region.Interval, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, region.Interval{Lo: pairs[i], Hi: pairs[i+1]})
	}
	return out
}

func containsEvent(deps []*Event, e *Event) bool {
	for _, d := range deps {
		if d == e {
			return true
		}
	}
	return false
}

func TestVersionMapReadAfterWrite(t *testing.T) {
	vm := newVersionMap()
	w := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	if len(deps) != 0 {
		t.Errorf("first write deps = %d", len(deps))
	}
	r := NewEvent()
	deps = vm.access(1, 0, ivs(5, 14), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w) {
		t.Error("read overlapping write must depend on it")
	}
	// Read of a disjoint range has no deps.
	r2 := NewEvent()
	deps = vm.access(1, 0, ivs(20, 29), privilege.Read, privilege.OpNone, r2)
	if len(deps) != 0 {
		t.Errorf("disjoint read deps = %d", len(deps))
	}
}

func TestVersionMapWriteAfterRead(t *testing.T) {
	vm := newVersionMap()
	r1, r2 := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r1)
	vm.access(1, 0, ivs(5, 14), privilege.Read, privilege.OpNone, r2)
	w := NewEvent()
	deps := vm.access(1, 0, ivs(7, 7), privilege.Write, privilege.OpNone, w)
	if !containsEvent(deps, r1) || !containsEvent(deps, r2) {
		t.Error("write must depend on both overlapping readers")
	}
}

func TestVersionMapWriteAfterWrite(t *testing.T) {
	vm := newVersionMap()
	w1 := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w1)
	w2 := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w2)
	if !containsEvent(deps, w1) {
		t.Error("WAW must serialize")
	}
	// Third writer depends only on the second (epoch advanced).
	w3 := NewEvent()
	deps = vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w3)
	if containsEvent(deps, w1) || !containsEvent(deps, w2) {
		t.Errorf("third write should depend only on second")
	}
}

func TestVersionMapReadersDoNotDependOnEachOther(t *testing.T) {
	vm := newVersionMap()
	r1 := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r1)
	r2 := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r2)
	if len(deps) != 0 {
		t.Errorf("read-read deps = %d", len(deps))
	}
}

func TestVersionMapSameOpReductionsCommute(t *testing.T) {
	vm := newVersionMap()
	a, b := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, b)
	if containsEvent(deps, a) {
		t.Error("same-op reductions must not serialize")
	}
	// A read after the reductions depends on both.
	r := NewEvent()
	deps = vm.access(1, 0, ivs(3, 4), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, a) || !containsEvent(deps, b) {
		t.Error("read after reductions must depend on all reducers")
	}
}

func TestVersionMapDifferentOpReductionsSerialize(t *testing.T) {
	vm := newVersionMap()
	a, b := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpProdF64, b)
	if !containsEvent(deps, a) {
		t.Error("different-op reductions must serialize")
	}
}

func TestVersionMapReduceAfterWriteAndRead(t *testing.T) {
	vm := newVersionMap()
	w, r := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	red := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, red)
	if !containsEvent(deps, w) || !containsEvent(deps, r) {
		t.Error("reduce must depend on prior writer and readers")
	}
}

func TestVersionMapSegmentSplitting(t *testing.T) {
	vm := newVersionMap()
	w := NewEvent()
	vm.access(1, 0, ivs(0, 99), privilege.Write, privilege.OpNone, w)
	// Write to the middle: splits [0,99] into three segments.
	w2 := NewEvent()
	vm.access(1, 0, ivs(40, 59), privilege.Write, privilege.OpNone, w2)
	if n := vm.segmentCount(); n != 3 {
		t.Errorf("segments = %d, want 3", n)
	}
	// A read of the left part depends on w only.
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 39), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w) || containsEvent(deps, w2) {
		t.Errorf("left read deps wrong")
	}
	// A read of the middle depends on w2 only.
	r2 := NewEvent()
	deps = vm.access(1, 0, ivs(45, 50), privilege.Read, privilege.OpNone, r2)
	if containsEvent(deps, w) || !containsEvent(deps, w2) {
		t.Errorf("middle read deps wrong")
	}
}

func TestVersionMapFieldsIndependent(t *testing.T) {
	vm := newVersionMap()
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(1, 1, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 0 {
		t.Error("different fields must not interfere")
	}
}

func TestVersionMapTreesIndependent(t *testing.T) {
	vm := newVersionMap()
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(2, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 0 {
		t.Error("different trees must not interfere")
	}
}

func TestVersionMapCompletedDepsRetained(t *testing.T) {
	// The dependence edge set must not depend on execution timing: an
	// already-triggered upstream event is still returned (waiting on it is
	// free), so trace capture sees every edge and dependents issued after
	// an upstream failure still observe its poison.
	vm := newVersionMap()
	w := NewEvent()
	w.Trigger()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 1 || deps[0] != w {
		t.Errorf("deps = %v, want the completed writer retained", deps)
	}

	vm2 := newVersionMap()
	p := NewEvent()
	p.Poison(fmt.Errorf("upstream died"))
	vm2.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, p)
	r2 := NewEvent()
	deps = vm2.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r2)
	if err := WaitAllErr(deps); err == nil {
		t.Error("poison from a completed upstream writer must reach later dependents")
	}
}

func TestVersionMapLastEventsAndBulkWrite(t *testing.T) {
	vm := newVersionMap()
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	evs := vm.lastEvents(1, 0, ivs(0, 9))
	if len(evs) != 1 || evs[0] != w {
		t.Errorf("lastEvents = %v", evs)
	}
	bulk := NewEvent()
	vm.bulkWrite(1, 0, ivs(0, 9), bulk)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, bulk) || containsEvent(deps, w) {
		t.Error("bulkWrite should replace the epoch")
	}
}

func TestVersionMapNonePrivilegeNoop(t *testing.T) {
	vm := newVersionMap()
	e := NewEvent()
	if deps := vm.access(1, 0, ivs(0, 9), privilege.None, privilege.OpNone, e); deps != nil {
		t.Error("None access should be a no-op")
	}
}

func TestVersionMapMultiIntervalAccess(t *testing.T) {
	vm := newVersionMap()
	w1, w2 := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w1)
	vm.access(1, 0, ivs(20, 29), privilege.Write, privilege.OpNone, w2)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(5, 6, 25, 26), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w1) || !containsEvent(deps, w2) {
		t.Error("multi-interval read must collect deps from every interval")
	}
}
