package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"indexlaunch/internal/privilege"
	"indexlaunch/internal/region"
)

func ivs(pairs ...int64) []region.Interval {
	out := make([]region.Interval, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, region.Interval{Lo: pairs[i], Hi: pairs[i+1]})
	}
	return out
}

func containsEvent(deps []*Event, e *Event) bool {
	for _, d := range deps {
		if d == e {
			return true
		}
	}
	return false
}

func TestVersionMapReadAfterWrite(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	if len(deps) != 0 {
		t.Errorf("first write deps = %d", len(deps))
	}
	r := NewEvent()
	deps = vm.access(1, 0, ivs(5, 14), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w) {
		t.Error("read overlapping write must depend on it")
	}
	// Read of a disjoint range has no deps.
	r2 := NewEvent()
	deps = vm.access(1, 0, ivs(20, 29), privilege.Read, privilege.OpNone, r2)
	if len(deps) != 0 {
		t.Errorf("disjoint read deps = %d", len(deps))
	}
}

func TestVersionMapWriteAfterRead(t *testing.T) {
	vm := newVersionMap(nil, nil)
	r1, r2 := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r1)
	vm.access(1, 0, ivs(5, 14), privilege.Read, privilege.OpNone, r2)
	w := NewEvent()
	deps := vm.access(1, 0, ivs(7, 7), privilege.Write, privilege.OpNone, w)
	if !containsEvent(deps, r1) || !containsEvent(deps, r2) {
		t.Error("write must depend on both overlapping readers")
	}
}

func TestVersionMapWriteAfterWrite(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w1 := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w1)
	w2 := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w2)
	if !containsEvent(deps, w1) {
		t.Error("WAW must serialize")
	}
	// Third writer depends only on the second (epoch advanced).
	w3 := NewEvent()
	deps = vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w3)
	if containsEvent(deps, w1) || !containsEvent(deps, w2) {
		t.Errorf("third write should depend only on second")
	}
}

func TestVersionMapReadersDoNotDependOnEachOther(t *testing.T) {
	vm := newVersionMap(nil, nil)
	r1 := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r1)
	r2 := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r2)
	if len(deps) != 0 {
		t.Errorf("read-read deps = %d", len(deps))
	}
}

func TestVersionMapSameOpReductionsCommute(t *testing.T) {
	vm := newVersionMap(nil, nil)
	a, b := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, b)
	if containsEvent(deps, a) {
		t.Error("same-op reductions must not serialize")
	}
	// A read after the reductions depends on both.
	r := NewEvent()
	deps = vm.access(1, 0, ivs(3, 4), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, a) || !containsEvent(deps, b) {
		t.Error("read after reductions must depend on all reducers")
	}
}

func TestVersionMapDifferentOpReductionsSerialize(t *testing.T) {
	vm := newVersionMap(nil, nil)
	a, b := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpProdF64, b)
	if !containsEvent(deps, a) {
		t.Error("different-op reductions must serialize")
	}
}

func TestVersionMapLaterReducersStillOrderAfterReaders(t *testing.T) {
	// Regression: a reduce used to clear the segment's readers after
	// depending on them, so a *later* same-operator reducer — which has no
	// edge through the pending reducers (they commute) — was left unordered
	// against the read (observed as a read racing a reducer's flush).
	vm := newVersionMap(nil, nil)
	r := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	a := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	b := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, b)
	if !containsEvent(deps, r) {
		t.Error("second same-op reduce must still be ordered after the earlier read")
	}
	if containsEvent(deps, a) {
		t.Error("same-op reductions must not serialize")
	}
}

func TestVersionMapOpSwitchKeepsDisplacedReducersOrdered(t *testing.T) {
	// When the reduction operator changes, the displaced reducers must keep
	// ordering later reducers of the new operator (which commute with each
	// other, so there is no transitive path through the first new-op
	// reducer).
	vm := newVersionMap(nil, nil)
	a := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, a)
	b := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpProdF64, b)
	c := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpProdF64, c)
	if !containsEvent(deps, a) {
		t.Error("new-op reduce must be ordered after the displaced old-op reducer")
	}
	if containsEvent(deps, b) {
		t.Error("same-op reductions must not serialize")
	}
}

// TestVersionMapConflictOrderingProperty checks the map's core guarantee on
// random access sequences: every pair of conflicting accesses (overlapping
// intervals, not read‖read, not same-operator reduce‖reduce) ends up
// transitively ordered by the returned dependence edges. Any dropped edge —
// like the two regressions above — shows up as an unreachable predecessor.
func TestVersionMapConflictOrderingProperty(t *testing.T) {
	type vmOp struct {
		lo, hi int64
		priv   privilege.Privilege
		redOp  privilege.OpID
	}
	privs := []privilege.Privilege{privilege.Read, privilege.Write, privilege.ReadWrite, privilege.Reduce}
	redOps := []privilege.OpID{privilege.OpSumF64, privilege.OpProdF64}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const n = 30
		ops := make([]vmOp, n)
		for i := range ops {
			lo := rng.Int63n(32)
			op := vmOp{lo: lo, hi: lo + rng.Int63n(32-lo), priv: privs[rng.Intn(len(privs))]}
			if op.priv == privilege.Reduce {
				op.redOp = redOps[rng.Intn(len(redOps))]
			}
			ops[i] = op
		}
		vm := newVersionMap(nil, nil)
		deps := make([][]*Event, n)
		idx := map[*Event]int{}
		for i, op := range ops {
			ev := NewEvent()
			idx[ev] = i
			deps[i] = vm.access(1, 0, ivs(op.lo, op.hi), op.priv, op.redOp, ev)
		}
		conflict := func(a, b vmOp) bool {
			switch {
			case a.hi < b.lo || b.hi < a.lo:
				return false
			case a.priv == privilege.Read && b.priv == privilege.Read:
				return false
			case a.priv == privilege.Reduce && b.priv == privilege.Reduce && a.redOp == b.redOp:
				return false
			}
			return true
		}
		for j := 0; j < n; j++ {
			reach := map[int]bool{}
			stack := []int{}
			for _, d := range deps[j] {
				stack = append(stack, idx[d])
			}
			for len(stack) > 0 {
				k := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if reach[k] {
					continue
				}
				reach[k] = true
				for _, d := range deps[k] {
					stack = append(stack, idx[d])
				}
			}
			for i := 0; i < j; i++ {
				if conflict(ops[i], ops[j]) && !reach[i] {
					t.Fatalf("seed %d: op %d (%+v) not ordered after conflicting op %d (%+v)",
						seed, j, ops[j], i, ops[i])
				}
			}
		}
	}
}

func TestVersionMapReduceAfterWriteAndRead(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w, r := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	red := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Reduce, privilege.OpSumF64, red)
	if !containsEvent(deps, w) || !containsEvent(deps, r) {
		t.Error("reduce must depend on prior writer and readers")
	}
}

func TestVersionMapSegmentSplitting(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	vm.access(1, 0, ivs(0, 99), privilege.Write, privilege.OpNone, w)
	// Write to the middle: splits [0,99] into three segments.
	w2 := NewEvent()
	vm.access(1, 0, ivs(40, 59), privilege.Write, privilege.OpNone, w2)
	if n := vm.segmentCount(); n != 3 {
		t.Errorf("segments = %d, want 3", n)
	}
	// A read of the left part depends on w only.
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 39), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w) || containsEvent(deps, w2) {
		t.Errorf("left read deps wrong")
	}
	// A read of the middle depends on w2 only.
	r2 := NewEvent()
	deps = vm.access(1, 0, ivs(45, 50), privilege.Read, privilege.OpNone, r2)
	if containsEvent(deps, w) || !containsEvent(deps, w2) {
		t.Errorf("middle read deps wrong")
	}
}

func TestVersionMapSplitSegmentsHaveIndependentEpochs(t *testing.T) {
	// Regression: splitting a segment used to copy the struct without
	// cloning its readers/reducers slices, so both halves shared one backing
	// array. An append through one half with spare capacity then overwrote
	// an event the sibling still referenced, silently dropping a dependence
	// edge (observed as a read racing a reducer's flush under -race).
	vm := newVersionMap(nil, nil)
	e1, e2, e3 := NewEvent(), NewEvent(), NewEvent()
	// Three same-op reductions: reducers slice ends with spare capacity.
	vm.access(1, 0, ivs(0, 7), privilege.Reduce, privilege.OpSumF64, e1)
	vm.access(1, 0, ivs(0, 7), privilege.Reduce, privilege.OpSumF64, e2)
	vm.access(1, 0, ivs(0, 7), privilege.Reduce, privilege.OpSumF64, e3)
	// Split [0,7] into [0,3] and [4,7].
	r1 := NewEvent()
	vm.access(1, 0, ivs(0, 3), privilege.Read, privilege.OpNone, r1)
	// Append a reducer to each half; with a shared backing array the second
	// append clobbers the first half's new entry.
	e4, e5 := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 3), privilege.Reduce, privilege.OpSumF64, e4)
	vm.access(1, 0, ivs(4, 7), privilege.Reduce, privilege.OpSumF64, e5)
	r2 := NewEvent()
	deps := vm.access(1, 0, ivs(0, 3), privilege.Read, privilege.OpNone, r2)
	if !containsEvent(deps, e4) {
		t.Error("read must depend on its half's own reducer (lost to sibling clobber?)")
	}
	if containsEvent(deps, e5) {
		t.Error("read must not depend on the other half's reducer")
	}
}

func TestVersionMapFieldsIndependent(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(1, 1, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 0 {
		t.Error("different fields must not interfere")
	}
}

func TestVersionMapTreesIndependent(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(2, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 0 {
		t.Error("different trees must not interfere")
	}
}

func TestVersionMapCompletedDepsRetained(t *testing.T) {
	// The dependence edge set must not depend on execution timing: an
	// already-triggered upstream event is still returned (waiting on it is
	// free), so trace capture sees every edge and dependents issued after
	// an upstream failure still observe its poison.
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	w.Trigger()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if len(deps) != 1 || deps[0] != w {
		t.Errorf("deps = %v, want the completed writer retained", deps)
	}

	vm2 := newVersionMap(nil, nil)
	p := NewEvent()
	p.Poison(fmt.Errorf("upstream died"))
	vm2.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, p)
	r2 := NewEvent()
	deps = vm2.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r2)
	if err := WaitAllErr(deps); err == nil {
		t.Error("poison from a completed upstream writer must reach later dependents")
	}
}

func TestVersionMapLastEventsAndBulkWrite(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w := NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w)
	evs := vm.lastEvents(1, 0, ivs(0, 9))
	if len(evs) != 1 || evs[0] != w {
		t.Errorf("lastEvents = %v", evs)
	}
	bulk := NewEvent()
	vm.bulkWrite(1, 0, ivs(0, 9), bulk)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(0, 9), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, bulk) || containsEvent(deps, w) {
		t.Error("bulkWrite should replace the epoch")
	}
}

func TestVersionMapNonePrivilegeNoop(t *testing.T) {
	vm := newVersionMap(nil, nil)
	e := NewEvent()
	if deps := vm.access(1, 0, ivs(0, 9), privilege.None, privilege.OpNone, e); deps != nil {
		t.Error("None access should be a no-op")
	}
}

func TestVersionMapMultiIntervalAccess(t *testing.T) {
	vm := newVersionMap(nil, nil)
	w1, w2 := NewEvent(), NewEvent()
	vm.access(1, 0, ivs(0, 9), privilege.Write, privilege.OpNone, w1)
	vm.access(1, 0, ivs(20, 29), privilege.Write, privilege.OpNone, w2)
	r := NewEvent()
	deps := vm.access(1, 0, ivs(5, 6, 25, 26), privilege.Read, privilege.OpNone, r)
	if !containsEvent(deps, w1) || !containsEvent(deps, w2) {
		t.Error("multi-interval read must collect deps from every interval")
	}
}
