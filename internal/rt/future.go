package rt

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"indexlaunch/internal/domain"
)

// Future is the eventual result of a single task: an opaque byte payload or
// an error. Futures are safe for concurrent use.
type Future struct {
	ev  *Event
	mu  sync.Mutex
	val []byte
	err error
}

func newFuture() *Future { return &Future{ev: NewEvent()} }

func (f *Future) complete(val []byte, err error) {
	f.mu.Lock()
	f.val, f.err = val, err
	f.mu.Unlock()
	f.ev.Trigger()
}

// Event returns the future's completion event.
func (f *Future) Event() *Event { return f.ev }

// Get blocks until the task completes and returns its payload.
func (f *Future) Get() ([]byte, error) {
	f.ev.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.err
}

// GetF64 decodes the payload as a little-endian float64.
func (f *Future) GetF64() (float64, error) {
	b, err := f.Get()
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("rt: future payload is %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// EncodeF64 renders v as a task result payload decodable by GetF64.
func EncodeF64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// FutureMap is the result of an index launch: one future per launch point.
type FutureMap struct {
	futures map[domain.Point]*Future
	done    *Event
}

func newFutureMap() *FutureMap {
	return &FutureMap{futures: map[domain.Point]*Future{}}
}

// At returns the future for launch point p.
func (m *FutureMap) At(p domain.Point) (*Future, error) {
	f, ok := m.futures[p]
	if !ok {
		return nil, fmt.Errorf("rt: future map has no point %v", p)
	}
	return f, nil
}

// Event returns an event that triggers when every point task completes.
func (m *FutureMap) Event() *Event { return m.done }

// Wait blocks until every point task completes and returns the first error
// encountered (in canonical point order), if any.
func (m *FutureMap) Wait() error {
	m.done.Wait()
	for _, f := range m.futures {
		if _, err := f.Get(); err != nil {
			return err
		}
	}
	return nil
}

// SumF64 waits for every point task and sums their float64 payloads — the
// common "future map reduction" idiom for residuals and diagnostics.
func (m *FutureMap) SumF64() (float64, error) {
	if err := m.Wait(); err != nil {
		return 0, err
	}
	var s float64
	for _, f := range m.futures {
		v, err := f.GetF64()
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}

func (m *FutureMap) seal() {
	evs := make([]*Event, 0, len(m.futures))
	for _, f := range m.futures {
		evs = append(evs, f.ev)
	}
	m.done = Merge(evs...)
}
