package rt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"indexlaunch/internal/domain"
)

// Future is the eventual result of a single task: an opaque byte payload or
// an error. Futures are safe for concurrent use.
type Future struct {
	ev  *Event
	mu  sync.Mutex
	val []byte
	err error
}

func newFuture() *Future { return &Future{ev: NewEvent()} }

// complete records the task's result. A failure poisons the completion
// event so the error propagates along dependence edges.
func (f *Future) complete(val []byte, err error) {
	f.mu.Lock()
	f.val, f.err = val, err
	f.mu.Unlock()
	if err != nil {
		f.ev.Poison(err)
		return
	}
	f.ev.Trigger()
}

// Event returns the future's completion event.
func (f *Future) Event() *Event { return f.ev }

// Get blocks until the task completes and returns its payload.
func (f *Future) Get() ([]byte, error) {
	f.ev.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val, f.err
}

// GetContext is Get bounded by a context, so a hung task cannot block the
// caller forever.
func (f *Future) GetContext(ctx context.Context) ([]byte, error) {
	if err := f.ev.WaitContext(ctx); err != nil && !f.ev.Done() {
		return nil, fmt.Errorf("rt: future: %w", err)
	}
	return f.Get()
}

// GetTimeout is Get with a deadline.
func (f *Future) GetTimeout(d time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return f.GetContext(ctx)
}

// GetF64 decodes the payload as a little-endian float64.
func (f *Future) GetF64() (float64, error) {
	b, err := f.Get()
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("rt: future payload is %d bytes, want 8", len(b))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// EncodeF64 renders v as a task result payload decodable by GetF64.
func EncodeF64(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// FutureMap is the result of an index launch: one future per launch point,
// in canonical (issuance) point order.
type FutureMap struct {
	points  []domain.Point
	futures map[domain.Point]*Future
	done    *Event
}

func newFutureMap() *FutureMap {
	return &FutureMap{futures: map[domain.Point]*Future{}}
}

func (m *FutureMap) add(p domain.Point, f *Future) {
	if _, dup := m.futures[p]; !dup {
		m.points = append(m.points, p)
	}
	m.futures[p] = f
}

// At returns the future for launch point p.
func (m *FutureMap) At(p domain.Point) (*Future, error) {
	f, ok := m.futures[p]
	if !ok {
		return nil, fmt.Errorf("rt: future map has no point %v", p)
	}
	return f, nil
}

// Len returns the number of point tasks in the map.
func (m *FutureMap) Len() int { return len(m.points) }

// Event returns an event that triggers when every point task completes; it
// is poisoned if any task failed.
func (m *FutureMap) Event() *Event { return m.done }

// Wait blocks until every point task completes and returns the first error
// encountered (in canonical point order), if any.
func (m *FutureMap) Wait() error {
	m.done.Wait()
	for _, p := range m.points {
		if _, err := m.futures[p].Get(); err != nil {
			return err
		}
	}
	return nil
}

// WaitErr blocks until every point task completes and returns the joined
// errors of every failed point, in canonical point order.
func (m *FutureMap) WaitErr() error {
	m.done.Wait()
	var errs []error
	for _, p := range m.points {
		if _, err := m.futures[p].Get(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// WaitTimeout is Wait with a deadline: if some point task has not completed
// within d, it returns an error naming the first unfinished point instead
// of blocking forever.
func (m *FutureMap) WaitTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	if err := m.done.WaitContext(ctx); err != nil && !m.done.Done() {
		unfinished := 0
		var first domain.Point
		for _, p := range m.points {
			if !m.futures[p].ev.Done() {
				if unfinished == 0 {
					first = p
				}
				unfinished++
			}
		}
		if unfinished > 0 {
			return fmt.Errorf("rt: future map: %w; %d point task(s) unfinished, first: point %v",
				err, unfinished, first)
		}
	}
	return m.Wait()
}

// SumF64 waits for every point task and sums their float64 payloads — the
// common "future map reduction" idiom for residuals and diagnostics.
func (m *FutureMap) SumF64() (float64, error) {
	if err := m.Wait(); err != nil {
		return 0, err
	}
	var s float64
	for _, p := range m.points {
		v, err := m.futures[p].GetF64()
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}

func (m *FutureMap) seal() {
	evs := make([]*Event, 0, len(m.points))
	for _, p := range m.points {
		evs = append(evs, m.futures[p].ev)
	}
	m.done = Merge(evs...)
}
