package rt

import (
	"testing"

	"indexlaunch/internal/obs"
)

// BenchmarkExecuteIndexProfile measures the issuance path with profiling
// disabled (Config.Profile nil — the default everyone runs with) against
// profiling enabled. The "off" variant is the overhead guard: it must track
// BenchmarkIndexLaunchIssuance/indexlaunch, since the disabled hooks are a
// predictable branch per site.
func BenchmarkExecuteIndexProfile(b *testing.B) {
	for _, mode := range []struct {
		name string
		rec  *obs.Recorder
	}{
		{"off", nil},
		{"on", obs.NewRecorder("rt", 4, 1<<14)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			r := MustNew(Config{
				Nodes: 4, ProcsPerNode: 2, DCR: true, IndexLaunches: true,
				Profile: mode.rec,
			})
			task := r.MustRegisterTask("noop", func(*Context) ([]byte, error) { return nil, nil })
			launch := benchLaunch(b, r, task)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ExecuteIndex(launch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r.Fence()
		})
	}
}
